(* Timing probe: run Abs_cache.analyze on one stock app's generated
   CFG and report wall time and solver statistics.  Useful when tuning
   the fixpoint engine — the nine apps are the realistic workload, and
   regressions here show up as minutes in the lint CI job. *)
module W = Ripple_workloads
module Abs = Ripple_analysis.Abs_cache

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "cassandra" in
  let model =
    match W.Apps.by_name name with Some m -> m | None -> failwith "unknown app"
  in
  let workload = W.Cfg_gen.generate model in
  let program = workload.W.Cfg_gen.program in
  let blocks = Ripple_isa.Program.blocks program in
  let entry = Ripple_isa.Program.entry program in
  let n = Array.length blocks in
  let lines = Hashtbl.create 1024 in
  Array.iter
    (fun b ->
      List.iter (fun l -> Hashtbl.replace lines l ()) (Ripple_isa.Basic_block.lines b))
    blocks;
  Printf.printf "app=%s blocks=%d lines=%d\n%!" name n (Hashtbl.length lines);
  let t0 = Unix.gettimeofday () in
  let abs = Abs.analyze ~geometry:Ripple_cache.Geometry.l1i ~entry blocks in
  let t1 = Unix.gettimeofday () in
  let st = Abs.solver_stats abs in
  Printf.printf "analyze: %.2fs iterations=%d visits=%d widenings=%d\n%!" (t1 -. t0)
    st.Ripple_analysis.Fixpoint.iterations st.Ripple_analysis.Fixpoint.visits
    st.Ripple_analysis.Fixpoint.widenings
