(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md for the experiment index).

     dune exec bench/main.exe -- [all|fig1|fig2|fig3|fig6|fig7|fig8|fig9|
                                  fig10|fig11|fig12|fig13|tab1|tab2|
                                  ablation|micro] ...

   The per-(application, prefetcher) simulation matrix is computed once
   and memoized; figures are views over it.  Trace length is controlled
   with RIPPLE_BENCH_INSTRS (default 4,000,000 original instructions; the
   paper used 100 M on real hardware — scaled down for a laptop-class
   reproduction, see EXPERIMENTS.md). *)

module W = Ripple_workloads
module Cache = Ripple_cache
module Cpu = Ripple_cpu
module Core = Ripple_core
module Table = Ripple_util.Table
module Summary = Ripple_util.Summary

let n_instrs =
  match Sys.getenv_opt "RIPPLE_BENCH_INSTRS" with
  | Some s -> int_of_string s
  | None -> 4_000_000

let threshold_candidates = [ 0.5; 0.65 ]
let apps = W.Apps.all
let prefetches = [ Core.Pipeline.No_prefetch; Core.Pipeline.Nlp; Core.Pipeline.Fdip ]

let pct x = Printf.sprintf "%+.2f%%" (100.0 *. x)
let pct0 x = Printf.sprintf "%.1f%%" (100.0 *. x)

let speedup ~base (r : Cpu.Simulator.result) =
  (r.Cpu.Simulator.ipc /. base.Cpu.Simulator.ipc) -. 1.0

let miss_reduction ~base (r : Cpu.Simulator.result) =
  if base.Cpu.Simulator.demand_misses = 0 then 0.0
  else
    1.0
    -. (Float.of_int r.Cpu.Simulator.demand_misses
       /. Float.of_int base.Cpu.Simulator.demand_misses)

(* ------------------------------------------------------------------ *)
(* The simulation matrix                                               *)
(* ------------------------------------------------------------------ *)

type workload_data = {
  workload : W.Cfg_gen.t;
  train : int array;  (** profiling trace *)
  eval : int array;  (** evaluation trace (input #0) *)
  warmup : int;
}

let workload_cache : (string, workload_data) Hashtbl.t = Hashtbl.create 16

let workload_of (model : W.App_model.t) =
  let name = model.W.App_model.name in
  match Hashtbl.find_opt workload_cache name with
  | Some data -> data
  | None ->
    let workload = W.Cfg_gen.generate model in
    let train = W.Executor.run workload ~input:W.Executor.train ~n_instrs in
    let eval = W.Executor.run workload ~input:W.Executor.eval_inputs.(0) ~n_instrs in
    let data = { workload; train; eval; warmup = Array.length eval / 2 } in
    Hashtbl.add workload_cache name data;
    data

type ripple_result = { threshold : float; ev : Core.Pipeline.evaluation }

type cell = {
  lru : Cpu.Simulator.result;
  random : Cpu.Simulator.result;
  srrip : Cpu.Simulator.result;
  drrip : Cpu.Simulator.result;
  ghrp : Cpu.Simulator.result;
  hawkeye : Cpu.Simulator.result;
  ideal_cache : Cpu.Simulator.result;
  oracle : Cpu.Simulator.result;  (** ideal replacement (MIN / Demand-MIN) *)
  ripple_lru : ripple_result;
  ripple_random : Core.Pipeline.evaluation;
}

let cell_cache : (string * string, cell) Hashtbl.t = Hashtbl.create 64

let log fmt =
  Printf.ksprintf
    (fun s ->
      if Sys.getenv_opt "RIPPLE_BENCH_QUIET" = None then Printf.eprintf "[bench] %s\n%!" s)
    fmt

let cell_of model prefetch =
  let key = (model.W.App_model.name, Core.Pipeline.prefetch_name prefetch) in
  match Hashtbl.find_opt cell_cache key with
  | Some cell -> cell
  | None ->
    let t0 = Unix.gettimeofday () in
    let { workload; train; eval; warmup } = workload_of model in
    let program = workload.W.Cfg_gen.program in
    let prefetcher = Core.Pipeline.prefetcher_of prefetch in
    let run policy =
      Cpu.Simulator.run ~warmup ~program ~trace:eval ~policy ~prefetcher ()
    in
    let lru = run Cache.Lru.make in
    let random = run (Cache.Random_policy.make ~seed:1234) in
    let srrip = run Cache.Srrip.make in
    let drrip = run Cache.Drrip.make in
    let ghrp = run (Cache.Ghrp.make ()) in
    let hawkeye = run (Cache.Hawkeye.make ()) in
    let ideal_cache = Cpu.Simulator.ideal_cache ~warmup ~program ~trace:eval () in
    let oracle =
      Cpu.Simulator.oracle ~warmup ~mode:(Core.Pipeline.belady_mode_of prefetch) ~program
        ~trace:eval ~prefetcher ()
    in
    (* Per-application invalidation threshold (§III-C): best-performing
       candidate. *)
    let exclude_prefetch_covered = false in
    let threshold, ev =
      Core.Pipeline.search_threshold ~warmup ~candidates:threshold_candidates
        ~exclude_prefetch_covered ~program ~profile_trace:train ~eval_trace:eval
        ~policy:Cache.Lru.make ~prefetch ()
    in
    let instrumented, _ =
      Core.Pipeline.instrument ~threshold ~exclude_prefetch_covered ~program
        ~profile_trace:train ~prefetch ()
    in
    let ripple_random =
      Core.Pipeline.evaluate ~warmup ~original:program ~instrumented ~trace:eval
        ~policy:(Cache.Random_policy.make ~seed:1234) ~prefetch ()
    in
    let cell =
      {
        lru;
        random;
        srrip;
        drrip;
        ghrp;
        hawkeye;
        ideal_cache;
        oracle;
        ripple_lru = { threshold; ev };
        ripple_random;
      }
    in
    Hashtbl.add cell_cache key cell;
    log "%s/%s done in %.1fs" (fst key) (snd key) (Unix.gettimeofday () -. t0);
    cell

(* ------------------------------------------------------------------ *)
(* Tables and figures                                                  *)
(* ------------------------------------------------------------------ *)

let app_rows f =
  (* Rows for all nine apps plus a mean row. *)
  let acc : (string * float list) list ref = ref [] in
  List.iter (fun model -> acc := (model.W.App_model.name, f model) :: !acc) apps;
  List.rev !acc

let print_per_app ~title ~columns ~fmt rows =
  let table = Table.create ~title ~columns:(("application", Table.Left) :: columns) in
  let sums = Array.make (List.length columns) (Summary.create ()) in
  Array.iteri (fun i _ -> sums.(i) <- Summary.create ()) sums;
  List.iter
    (fun (name, values) ->
      List.iteri (fun i v -> Summary.add sums.(i) v) values;
      Table.add_row table (name :: List.map fmt values))
    rows;
  Table.add_sep table;
  Table.add_row table ("mean" :: Array.to_list (Array.map (fun s -> fmt (Summary.mean s)) sums));
  Table.print table;
  print_newline ()

let tab2 () =
  Format.printf "%a@.@." Cpu.Config.pp_table Cpu.Config.default

let tab1 () =
  let geometry = Cpu.Config.default.Cpu.Config.l1i in
  let sets = Cache.Geometry.sets geometry and ways = geometry.Cache.Geometry.ways in
  let policies =
    [
      ("LRU", (Cache.Lru.make ~sets ~ways).Cache.Policy.storage_bits, "1 bit per line");
      ( "GHRP",
        (Cache.Ghrp.make () ~sets ~ways).Cache.Policy.storage_bits,
        "3 KiB tables, dead bits, signatures, history" );
      ("SRRIP", (Cache.Srrip.make ~sets ~ways).Cache.Policy.storage_bits, "2 bits per line");
      ("DRRIP", (Cache.Drrip.make ~sets ~ways).Cache.Policy.storage_bits, "2 bits per line + PSEL");
      ( "Hawkeye/Harmony",
        (Cache.Hawkeye.make () ~sets ~ways).Cache.Policy.storage_bits,
        "sampler, occupancy vectors, predictor, RRIP counters" );
      ("Random", (Cache.Random_policy.make ~seed:0 ~sets ~ways).Cache.Policy.storage_bits, "none");
      ("Ripple (software)", 0, "no hardware metadata beyond the base policy");
    ]
  in
  let table =
    Table.create ~title:"Table I: replacement metadata for a 32 KiB, 8-way, 64 B-line I-cache"
      ~columns:[ ("policy", Table.Left); ("overhead", Table.Right); ("notes", Table.Left) ]
  in
  List.iter
    (fun (name, bits, notes) ->
      let bytes = Float.of_int bits /. 8.0 in
      let overhead =
        if bytes >= 1024.0 then Printf.sprintf "%.2f KiB" (bytes /. 1024.0)
        else Printf.sprintf "%.0f B" bytes
      in
      Table.add_row table [ name; overhead; notes ])
    policies;
  Table.print table;
  print_newline ()

let fig1 () =
  let rows =
    app_rows (fun model ->
        let cell = cell_of model Core.Pipeline.No_prefetch in
        [ speedup ~base:cell.lru cell.ideal_cache ])
  in
  print_per_app
    ~title:
      "Fig. 1: ideal I-cache (no misses) speedup over LRU, no prefetching\n\
       (paper: 11-47%, mean 17.7%)"
    ~columns:[ ("ideal $ speedup", Table.Right) ]
    ~fmt:pct rows

let fig2 () =
  let rows =
    app_rows (fun model ->
        let none = cell_of model Core.Pipeline.No_prefetch in
        let fdip = cell_of model Core.Pipeline.Fdip in
        let base = none.lru in
        [ speedup ~base fdip.lru; speedup ~base fdip.oracle; speedup ~base none.ideal_cache ])
  in
  print_per_app
    ~title:
      "Fig. 2: FDIP speedup over the no-prefetch LRU baseline\n\
       (paper: FDIP+LRU 13.4%, FDIP+ideal-replacement 16.6%, ideal cache 17.7%)"
    ~columns:
      [
        ("FDIP+LRU", Table.Right);
        ("FDIP+ideal repl", Table.Right);
        ("ideal $", Table.Right);
      ]
    ~fmt:pct rows

let fig3 () =
  let rows =
    app_rows (fun model ->
        let cell = cell_of model Core.Pipeline.Fdip in
        let base = cell.lru in
        [
          speedup ~base cell.ghrp;
          speedup ~base cell.hawkeye;
          speedup ~base cell.srrip;
          speedup ~base cell.drrip;
          speedup ~base cell.oracle;
        ])
  in
  print_per_app
    ~title:
      "Fig. 3: prior replacement policies over LRU, with FDIP\n\
       (paper: none beat LRU; ideal replacement +3.16% mean)"
    ~columns:
      [
        ("GHRP", Table.Right);
        ("Hawkeye", Table.Right);
        ("SRRIP", Table.Right);
        ("DRRIP", Table.Right);
        ("ideal repl", Table.Right);
      ]
    ~fmt:pct rows

let fig6 () =
  (* Coverage/accuracy trade-off for finagle-http under FDIP. *)
  let model = W.Apps.finagle_http in
  let { workload; train; eval; warmup } = workload_of model in
  let program = workload.W.Cfg_gen.program in
  let table =
    Table.create
      ~title:
        "Fig. 6: Ripple coverage vs accuracy across invalidation thresholds\n\
         (finagle-http, FDIP; paper: coverage ~100% at low thresholds, accuracy\n\
         near-perfect at high thresholds, sweet spot at 40-60%)"
      ~columns:
        [
          ("threshold", Table.Right);
          ("coverage", Table.Right);
          ("accuracy", Table.Right);
          ("speedup vs LRU", Table.Right);
        ]
  in
  let base = (cell_of model Core.Pipeline.Fdip).lru in
  List.iter
    (fun threshold ->
      let instrumented, _ =
        Core.Pipeline.instrument ~threshold ~program ~profile_trace:train
          ~prefetch:Core.Pipeline.Fdip ()
      in
      let ev =
        Core.Pipeline.evaluate ~warmup ~original:program ~instrumented ~trace:eval
          ~policy:Cache.Lru.make ~prefetch:Core.Pipeline.Fdip ()
      in
      Table.add_row table
        [
          Printf.sprintf "%.0f%%" (100.0 *. threshold);
          pct0 ev.Core.Pipeline.coverage;
          pct0 ev.Core.Pipeline.accuracy;
          pct (speedup ~base ev.Core.Pipeline.result);
        ])
    [ 0.05; 0.2; 0.35; 0.5; 0.65; 0.8; 0.95 ];
  Table.print table;
  print_newline ()

let fig7_8 which () =
  List.iter
    (fun prefetch ->
      let pf = Core.Pipeline.prefetch_name prefetch in
      let metric ~base r = match which with
        | `Speedup -> speedup ~base r
        | `Mpki -> miss_reduction ~base r
      in
      let rows =
        app_rows (fun model ->
            let cell = cell_of model prefetch in
            let base = cell.lru in
            [
              metric ~base cell.oracle;
              metric ~base cell.ripple_lru.ev.Core.Pipeline.result;
              metric ~base cell.ripple_random.Core.Pipeline.result;
              metric ~base cell.ghrp;
              metric ~base cell.hawkeye;
              metric ~base cell.srrip;
              metric ~base cell.drrip;
              metric ~base cell.random;
            ])
      in
      let what, paper =
        match which with
        | `Speedup ->
          ( "Fig. 7: speedup over LRU",
            "paper means: none 1.25%/3.36%, NLP 2.13%/3.87%, FDIP 1.4%/3.16% (Ripple-LRU/ideal)" )
        | `Mpki ->
          ( "Fig. 8: L1I miss reduction vs LRU",
            "paper means: none 9.57%/28.88%, NLP 28.6%/53.66%, FDIP 18.61%/45% (Ripple-LRU/ideal)"
          )
      in
      print_per_app
        ~title:(Printf.sprintf "%s — prefetcher: %s\n(%s)" what pf paper)
        ~columns:
          [
            ("ideal repl", Table.Right);
            ("Ripple-LRU", Table.Right);
            ("Ripple-Rand", Table.Right);
            ("GHRP", Table.Right);
            ("Hawkeye", Table.Right);
            ("SRRIP", Table.Right);
            ("DRRIP", Table.Right);
            ("Random", Table.Right);
          ]
        ~fmt:pct rows)
    prefetches

let fig9_12 () =
  let rows =
    app_rows (fun model ->
        let cell = cell_of model Core.Pipeline.Fdip in
        let ev = cell.ripple_lru.ev in
        [
          ev.Core.Pipeline.coverage;
          ev.Core.Pipeline.accuracy;
          ev.Core.Pipeline.static_overhead;
          ev.Core.Pipeline.dynamic_overhead;
          cell.ripple_lru.threshold;
        ])
  in
  print_per_app
    ~title:
      "Figs. 9-12: Ripple-LRU coverage, accuracy and overheads (FDIP)\n\
       (paper: coverage >50% mean, <50% for the JIT/HHVM apps; accuracy 92% mean;\n\
       static <4.4%; dynamic 2.2% mean, ~10% for verilator)"
    ~columns:
      [
        ("coverage", Table.Right);
        ("accuracy", Table.Right);
        ("static ovh", Table.Right);
        ("dynamic ovh", Table.Right);
        ("threshold", Table.Right);
      ]
    ~fmt:(fun v -> pct0 v)
    rows

let fig13 () =
  (* Cross-input generality: profile on input #0's profile vs an
     input-specific profile, evaluated on inputs #1..#3 under FDIP. *)
  let chosen = [ W.Apps.cassandra; W.Apps.finagle_http; W.Apps.tomcat; W.Apps.verilator ] in
  let table =
    Table.create
      ~title:
        "Fig. 13: Ripple-LRU speedup with a generic (input #0) profile vs an\n\
         input-specific profile, FDIP (paper: input-specific profiles give ~17%\n\
         more IPC gain)"
      ~columns:
        [
          ("application", Table.Left);
          ("input", Table.Left);
          ("#0 profile", Table.Right);
          ("own profile", Table.Right);
        ]
  in
  let gains = Summary.create () and gains_own = Summary.create () in
  List.iter
    (fun model ->
      let { workload; eval = eval0; _ } = workload_of model in
      let program = workload.W.Cfg_gen.program in
      let instr profile_trace =
        fst
          (Core.Pipeline.instrument ~threshold:0.5 ~program ~profile_trace
             ~prefetch:Core.Pipeline.Fdip ())
      in
      let generic = instr eval0 in
      Array.iteri
        (fun i input ->
          if i >= 1 then begin
            let trace = W.Executor.run workload ~input ~n_instrs in
            let warmup = Array.length trace / 2 in
            let base =
              Cpu.Simulator.run ~warmup ~program ~trace ~policy:Cache.Lru.make
                ~prefetcher:(Core.Pipeline.prefetcher_of Core.Pipeline.Fdip) ()
            in
            let eval_with instrumented =
              Core.Pipeline.evaluate ~warmup ~original:program ~instrumented ~trace
                ~policy:Cache.Lru.make ~prefetch:Core.Pipeline.Fdip ()
            in
            let cross = eval_with generic in
            let own = eval_with (instr trace) in
            let s_cross = speedup ~base cross.Core.Pipeline.result in
            let s_own = speedup ~base own.Core.Pipeline.result in
            Summary.add gains s_cross;
            Summary.add gains_own s_own;
            Table.add_row table
              [ model.W.App_model.name; input.W.Executor.label; pct s_cross; pct s_own ]
          end)
        W.Executor.eval_inputs)
    chosen;
  Table.add_sep table;
  Table.add_row table [ "mean"; ""; pct (Summary.mean gains); pct (Summary.mean gains_own) ];
  Table.print table;
  print_newline ()

let ablation () =
  (* §IV "Invalidation vs. reducing LRU priority", injection granularity,
     and the prefetch-covered-window filter (DESIGN.md abl1/disc1). *)
  let table =
    Table.create
      ~title:
        "Ablations (FDIP, Ripple-LRU speedup over LRU):\n\
         invalidate vs demote (paper: demote slightly better on LRU, 1.6%->1.7%),\n\
         per-block hint cap, NLP window filter"
      ~columns:
        [
          ("application", Table.Left);
          ("invalidate", Table.Right);
          ("demote", Table.Right);
          ("cap=1", Table.Right);
          ("nlp+filter", Table.Right);
          ("nlp-filter", Table.Right);
        ]
  in
  let cols = Array.init 5 (fun _ -> Summary.create ()) in
  List.iter
    (fun model ->
      let { workload; train; eval; warmup } = workload_of model in
      let program = workload.W.Cfg_gen.program in
      let fdip_base = (cell_of model Core.Pipeline.Fdip).lru in
      let nlp_base = (cell_of model Core.Pipeline.Nlp).lru in
      let run ?mode ?max_hints_per_block ?(exclude = false) ~prefetch ~base () =
        let threshold = (cell_of model prefetch).ripple_lru.threshold in
        let instrumented, _ =
          Core.Pipeline.instrument ?mode ?max_hints_per_block ~threshold
            ~exclude_prefetch_covered:exclude ~program ~profile_trace:train ~prefetch ()
        in
        let ev =
          Core.Pipeline.evaluate ~warmup ~original:program ~instrumented ~trace:eval
            ~policy:Cache.Lru.make ~prefetch ()
        in
        speedup ~base ev.Core.Pipeline.result
      in
      let inv = run ~prefetch:Core.Pipeline.Fdip ~base:fdip_base () in
      let dem = run ~mode:Core.Injector.Demote ~prefetch:Core.Pipeline.Fdip ~base:fdip_base () in
      let cap1 = run ~max_hints_per_block:1 ~prefetch:Core.Pipeline.Fdip ~base:fdip_base () in
      let nlp_f = run ~exclude:true ~prefetch:Core.Pipeline.Nlp ~base:nlp_base () in
      let nlp_nf = run ~exclude:false ~prefetch:Core.Pipeline.Nlp ~base:nlp_base () in
      let vals = [ inv; dem; cap1; nlp_f; nlp_nf ] in
      List.iteri (fun i v -> Summary.add cols.(i) v) vals;
      Table.add_row table (model.W.App_model.name :: List.map pct vals))
    apps;
  Table.add_sep table;
  Table.add_row table
    ("mean" :: Array.to_list (Array.map (fun s -> pct (Summary.mean s)) cols));
  Table.print table;
  print_newline ()

let lbr () =
  (* §III-A: PT vs LBR-sampled profiling.  Stitched LBR samples see only
     a fraction of execution; Ripple's coverage and gains degrade
     accordingly — the quantitative case for PT-based profiling. *)
  let table =
    Table.create
      ~title:
        "Profiling source ablation (FDIP, Ripple-LRU): full PT trace vs stitched\n\
         LBR samples (period 120 blocks, depth 16)"
      ~columns:
        [
          ("application", Table.Left);
          ("LBR sees", Table.Right);
          ("PT speedup", Table.Right);
          ("PT coverage", Table.Right);
          ("LBR speedup", Table.Right);
          ("LBR coverage", Table.Right);
        ]
  in
  List.iter
    (fun model ->
      let { workload; train; eval; warmup } = workload_of model in
      let program = workload.W.Cfg_gen.program in
      let base = (cell_of model Core.Pipeline.Fdip).lru in
      let evaluate instrumented =
        Core.Pipeline.evaluate ~warmup ~original:program ~instrumented ~trace:eval
          ~policy:Cache.Lru.make ~prefetch:Core.Pipeline.Fdip ()
      in
      let pt_ev =
        evaluate
          (fst
             (Core.Pipeline.instrument ~program ~profile_trace:train
                ~prefetch:Core.Pipeline.Fdip ()))
      in
      let samples = Ripple_trace.Lbr.capture program ~trace:train ~period:120 ~depth:16 in
      let stitched = Ripple_trace.Lbr.stitched_trace samples in
      let lbr_ev =
        evaluate
          (fst
             (Core.Pipeline.instrument ~pt_roundtrip:false ~program ~profile_trace:stitched
                ~prefetch:Core.Pipeline.Fdip ()))
      in
      Table.add_row table
        [
          model.W.App_model.name;
          pct0 (Ripple_trace.Lbr.coverage_fraction samples ~trace_length:(Array.length train));
          pct (speedup ~base pt_ev.Core.Pipeline.result);
          pct0 pt_ev.Core.Pipeline.coverage;
          pct (speedup ~base lbr_ev.Core.Pipeline.result);
          pct0 lbr_ev.Core.Pipeline.coverage;
        ])
    [ W.Apps.cassandra; W.Apps.tomcat; W.Apps.verilator ];
  Table.print table;
  print_newline ()

let geometry () =
  (* §V: Ripple emits binaries per target I-cache geometry.  Analyze and
     evaluate at matched geometries, plus one deliberate mismatch. *)
  let geometries =
    [
      ("16 KiB / 4-way", Cache.Geometry.v ~size_bytes:(16 * 1024) ~ways:4);
      ("32 KiB / 8-way", Cache.Geometry.l1i);
      ("64 KiB / 8-way", Cache.Geometry.v ~size_bytes:(64 * 1024) ~ways:8);
    ]
  in
  let model = W.Apps.tomcat in
  let { workload; train; eval; warmup } = workload_of model in
  let program = workload.W.Cfg_gen.program in
  let table =
    Table.create
      ~title:
        "Target-geometry sensitivity (tomcat, FDIP, Ripple-LRU): profiles are\n\
         analyzed for the geometry they run on, plus one mismatched pair (§V)"
      ~columns:
        [
          ("analyzed for", Table.Left);
          ("runs on", Table.Left);
          ("LRU MPKI", Table.Right);
          ("Ripple speedup", Table.Right);
        ]
  in
  let run ~analysis_geom ~run_geom ~alabel ~rlabel =
    let config_a = { Cpu.Config.default with Cpu.Config.l1i = analysis_geom } in
    let config_r = { Cpu.Config.default with Cpu.Config.l1i = run_geom } in
    let instrumented, _ =
      Core.Pipeline.instrument ~config:config_a ~program ~profile_trace:train
        ~prefetch:Core.Pipeline.Fdip ()
    in
    let base =
      Cpu.Simulator.run ~config:config_r ~warmup ~program ~trace:eval ~policy:Cache.Lru.make
        ~prefetcher:(Core.Pipeline.prefetcher_of ~config:config_r Core.Pipeline.Fdip) ()
    in
    let ev =
      Core.Pipeline.evaluate ~config:config_r ~warmup ~original:program ~instrumented
        ~trace:eval ~policy:Cache.Lru.make ~prefetch:Core.Pipeline.Fdip ()
    in
    Table.add_row table
      [
        alabel;
        rlabel;
        Printf.sprintf "%.3f" base.Cpu.Simulator.mpki;
        pct (speedup ~base ev.Core.Pipeline.result);
      ]
  in
  List.iter
    (fun (label, geom) -> run ~analysis_geom:geom ~run_geom:geom ~alabel:label ~rlabel:label)
    geometries;
  Table.add_sep table;
  run
    ~analysis_geom:Cache.Geometry.l1i
    ~run_geom:(Cache.Geometry.v ~size_bytes:(16 * 1024) ~ways:4)
    ~alabel:"32 KiB / 8-way" ~rlabel:"16 KiB / 4-way (mismatch)";
  Table.print table;
  print_newline ()

let extras () =
  (* Beyond the paper's matrix: the SHiP policy (§VI related work) and
     the RDIP prefetcher (§I/§VI), for context. *)
  let table =
    Table.create
      ~title:
        "Extra comparison points: SHiP replacement (vs LRU, FDIP) and the RDIP\n\
         prefetcher (vs no-prefetch LRU baseline)"
      ~columns:
        [
          ("application", Table.Left);
          ("SHiP speedup", Table.Right);
          ("RDIP speedup", Table.Right);
          ("RDIP MPKI", Table.Right);
          ("FDIP MPKI", Table.Right);
        ]
  in
  let s1 = Summary.create () and s2 = Summary.create () in
  List.iter
    (fun model ->
      let { workload; eval; warmup; _ } = workload_of model in
      let program = workload.W.Cfg_gen.program in
      let fdip_cell = cell_of model Core.Pipeline.Fdip in
      let none_cell = cell_of model Core.Pipeline.No_prefetch in
      let ship =
        Cpu.Simulator.run ~warmup ~program ~trace:eval ~policy:Cache.Ship.make
          ~prefetcher:(Core.Pipeline.prefetcher_of Core.Pipeline.Fdip) ()
      in
      let rdip =
        Cpu.Simulator.run ~warmup ~program ~trace:eval ~policy:Cache.Lru.make
          ~prefetcher:(fun program -> Ripple_prefetch.Rdip.create ~program ()) ()
      in
      let ship_speedup = speedup ~base:fdip_cell.lru ship in
      let rdip_speedup = speedup ~base:none_cell.lru rdip in
      Summary.add s1 ship_speedup;
      Summary.add s2 rdip_speedup;
      Table.add_row table
        [
          model.W.App_model.name;
          pct ship_speedup;
          pct rdip_speedup;
          Printf.sprintf "%.2f" rdip.Cpu.Simulator.mpki;
          Printf.sprintf "%.2f" fdip_cell.lru.Cpu.Simulator.mpki;
        ])
    apps;
  Table.add_sep table;
  Table.add_row table [ "mean"; pct (Summary.mean s1); pct (Summary.mean s2); ""; "" ];
  Table.print table;
  print_newline ()

let micro () =
  (* Bechamel microbenchmarks of the simulator hot paths. *)
  let open Bechamel in
  let model = W.Apps.kafka in
  let { workload; eval; _ } = workload_of model in
  let program = workload.W.Cfg_gen.program in
  let short = Array.sub eval 0 (min 20_000 (Array.length eval)) in
  let stream =
    Cpu.Simulator.record_stream ~program ~trace:short
      ~prefetcher:Cpu.Simulator.prefetcher_none ()
  in
  let cache_access () =
    let cache =
      Cache.Cache.create ~geometry:Cache.Geometry.l1i ~policy:Cache.Lru.make ()
    in
    Array.iter (fun acc -> ignore (Cache.Cache.access cache acc)) stream
  in
  let belady_replay () =
    ignore (Cache.Belady.simulate Cache.Geometry.l1i ~mode:Cache.Belady.Min stream)
  in
  let pt_roundtrip () =
    let encoded = Ripple_trace.Pt.encode program short in
    ignore (Ripple_trace.Pt.decode program encoded)
  in
  let tests =
    Test.make_grouped ~name:"ripple" ~fmt:"%s/%s"
      [
        Test.make ~name:"l1i-lru-access-stream" (Staged.stage cache_access);
        Test.make ~name:"belady-min-replay" (Staged.stage belady_replay);
        Test.make ~name:"pt-encode-decode" (Staged.stage pt_roundtrip);
      ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 2.0) () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| "run" |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf "Microbenchmarks (monotonic clock, ns per run):\n";
  Hashtbl.iter
    (fun name (estimate : Analyze.OLS.t) ->
      match Analyze.OLS.estimates estimate with
      | Some (v :: _) -> Printf.printf "  %-32s %12.0f ns\n" name v
      | Some [] | None -> Printf.printf "  %-32s (no estimate)\n" name)
    results;
  print_newline ()

let all () =
  tab2 ();
  tab1 ();
  fig1 ();
  fig2 ();
  fig3 ();
  fig6 ();
  fig7_8 `Speedup ();
  fig7_8 `Mpki ();
  fig9_12 ();
  fig13 ();
  ablation ();
  lbr ();
  geometry ();
  extras ()

let () =
  let commands =
    [
      ("tab1", tab1);
      ("tab2", tab2);
      ("fig1", fig1);
      ("fig2", fig2);
      ("fig3", fig3);
      ("fig6", fig6);
      ("fig7", fig7_8 `Speedup);
      ("fig8", fig7_8 `Mpki);
      ("fig9", fig9_12);
      ("fig10", fig9_12);
      ("fig11", fig9_12);
      ("fig12", fig9_12);
      ("fig13", fig13);
      ("ablation", ablation);
      ("lbr", lbr);
      ("geometry", geometry);
      ("extras", extras);
      ("micro", micro);
      ("all", all);
    ]
  in
  let args = List.tl (Array.to_list Sys.argv) in
  let args = if args = [] then [ "all" ] else args in
  List.iter
    (fun arg ->
      match List.assoc_opt arg commands with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown target %S; available: %s\n" arg
          (String.concat ", " (List.map fst commands));
        exit 1)
    args
