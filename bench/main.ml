(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md for the experiment index).

     dune exec bench/main.exe -- [--jobs N] [--out cells.jsonl]
                                 [all|smoke|fig1|fig2|fig3|fig6|fig7|fig8|
                                  fig9|fig10|fig11|fig12|fig13|tab1|tab2|
                                  ablation|micro] ...

   The per-(application, prefetcher) simulation matrix is expressed as
   experiment specs and fanned out over the Ripple_exp domain pool
   (--jobs, default: the runtime's recommended domain count; results are
   identical at any pool size), then memoized; figures are views over
   it.  --out appends every computed cell as JSON lines, keyed and
   sorted by spec, so bench trajectories can be diffed across PRs.
   Trace length is controlled with RIPPLE_BENCH_INSTRS (default
   4,000,000 original instructions; the paper used 100 M on real
   hardware — scaled down for a laptop-class reproduction, see
   EXPERIMENTS.md). *)

module W = Ripple_workloads
module Cache = Ripple_cache
module Cpu = Ripple_cpu
module Core = Ripple_core
module Exp = Ripple_exp
module Registry = Ripple_cache.Registry
module Table = Ripple_util.Table
module Summary = Ripple_util.Summary

let n_instrs =
  ref
    (match Sys.getenv_opt "RIPPLE_BENCH_INSTRS" with
    | Some s -> int_of_string s
    | None -> 4_000_000)

let jobs =
  ref (Option.map int_of_string (Sys.getenv_opt "RIPPLE_BENCH_JOBS"))

let out_path = ref None
let metrics_path = ref None

let threshold_candidates = [ 0.5; 0.65 ]
let apps = W.Apps.all
let prefetches = [ Core.Pipeline.No_prefetch; Core.Pipeline.Nlp; Core.Pipeline.Fdip ]

let pct x = Printf.sprintf "%+.2f%%" (100.0 *. x)
let pct0 x = Printf.sprintf "%.1f%%" (100.0 *. x)

let speedup ~base (r : Cpu.Simulator.result) =
  (r.Cpu.Simulator.ipc /. base.Cpu.Simulator.ipc) -. 1.0

let miss_reduction ~base (r : Cpu.Simulator.result) =
  if base.Cpu.Simulator.demand_misses = 0 then 0.0
  else
    1.0
    -. (Float.of_int r.Cpu.Simulator.demand_misses
       /. Float.of_int base.Cpu.Simulator.demand_misses)

(* ------------------------------------------------------------------ *)
(* The simulation matrix                                               *)
(* ------------------------------------------------------------------ *)

type workload_data = {
  workload : W.Cfg_gen.t;
  train : int array;  (** profiling trace *)
  eval : int array;  (** evaluation trace (input #0) *)
  warmup : int;
}

let workload_cache : (string, workload_data) Hashtbl.t = Hashtbl.create 16

let workload_of (model : W.App_model.t) =
  let name = model.W.App_model.name in
  match Hashtbl.find_opt workload_cache name with
  | Some data -> data
  | None ->
    let n_instrs = !n_instrs in
    let workload = W.Cfg_gen.generate model in
    let train = W.Executor.run workload ~input:W.Executor.train ~n_instrs in
    let eval = W.Executor.run workload ~input:W.Executor.eval_inputs.(0) ~n_instrs in
    let data = { workload; train; eval; warmup = Array.length eval / 2 } in
    Hashtbl.add workload_cache name data;
    data

type ripple_result = { threshold : float; ev : Core.Pipeline.evaluation }

type cell = {
  lru : Cpu.Simulator.result;
  random : Cpu.Simulator.result;
  srrip : Cpu.Simulator.result;
  drrip : Cpu.Simulator.result;
  ghrp : Cpu.Simulator.result;
  hawkeye : Cpu.Simulator.result;
  trrip : Cpu.Simulator.result;
  ehc_hawkeye : Cpu.Simulator.result;
  ship_sb : Cpu.Simulator.result;
  ideal_cache : Cpu.Simulator.result;
  oracle : Cpu.Simulator.result;  (** ideal replacement (MIN / Demand-MIN) *)
  ripple_lru : ripple_result;
  ripple_random : Core.Pipeline.evaluation;
}

let cell_cache : (string * string, cell) Hashtbl.t = Hashtbl.create 64

let log fmt =
  Printf.ksprintf
    (fun s ->
      if Sys.getenv_opt "RIPPLE_BENCH_QUIET" = None then Printf.eprintf "[bench] %s\n%!" s)
    fmt

(* The matrix is computed by submitting experiment specs to the
   Ripple_exp domain pool rather than looping inline: every hardware
   policy, both ideal bounds and every Ripple threshold candidate of a
   bench cell is one independent spec, so a single `ensure_cells` call
   over several (app, prefetcher) pairs saturates the pool.  Aggregation
   is keyed by spec — completion order never matters — and the Ripple
   random-policy evaluation is a second wave, because it reuses the
   invalidation threshold the LRU search selects (§III-C). *)

let all_cells : Exp.Runner.cell list ref = ref []

(* Include per-cell GC allocation stats in the --out JSONL.  Off by
   default so figure/table sweeps stay byte-identical across runs and
   pool sizes; `smoke` turns it on as the quick memory health check. *)
let gc_in_jsonl = ref false

let run_specs specs =
  let quiet = Sys.getenv_opt "RIPPLE_BENCH_QUIET" <> None in
  let cells = Exp.Runner.run ?jobs:!jobs ~quiet specs in
  all_cells := !all_cells @ cells;
  cells

(* Every figure assumes its cells succeeded; a failed cell means the
   figure is wrong, so abort with the offending spec. *)
let require cell =
  match Exp.Runner.result cell with
  | Ok o -> o
  | Error e ->
    failwith (Printf.sprintf "%s: %s" (Exp.Spec.to_string cell.Exp.Runner.spec) e)

let write_cells () =
  match !out_path with
  | None -> ()
  | Some path ->
    let sorted =
      List.sort_uniq
        (fun (a : Exp.Runner.cell) b -> Exp.Spec.compare a.Exp.Runner.spec b.Exp.Runner.spec)
        !all_cells
    in
    Exp.Report.write_jsonl ~gc:!gc_in_jsonl path sorted;
    log "wrote %s (%d cells)" path (List.length sorted)

let write_metrics () =
  match !metrics_path with
  | None -> ()
  | Some path ->
    (* Merge over the spec-sorted, deduplicated cell list — the same
       normalization as the JSONL — so the aggregate is independent of
       figure order and pool size. *)
    let sorted =
      List.sort_uniq
        (fun (a : Exp.Runner.cell) b -> Exp.Spec.compare a.Exp.Runner.spec b.Exp.Runner.spec)
        !all_cells
    in
    let oc = open_out path in
    output_string oc (Ripple_obs.Snapshot.to_openmetrics (Exp.Report.merged_metrics sorted));
    close_out oc;
    log "wrote %s" path

let cell_policies =
  [ "lru"; "random"; "srrip"; "drrip"; "ghrp"; "hawkeye"; "trrip"; "ehc-hawkeye"; "ship-sb" ]

let ensure_cells pairs =
  let key (model, prefetch) =
    (model.W.App_model.name, Core.Pipeline.prefetch_name prefetch)
  in
  let missing =
    List.filter (fun pair -> not (Hashtbl.mem cell_cache (key pair))) pairs
    |> List.sort_uniq (fun a b -> compare (key a) (key b))
  in
  if missing <> [] then begin
    let t0 = Unix.gettimeofday () in
    let spec_of (model, prefetch) kind =
      Exp.Spec.v ~n_instrs:!n_instrs ~seed:1234 ~prefetch ~app:model.W.App_model.name kind
    in
    let phase1 =
      List.concat_map
        (fun pair ->
          List.map (fun p -> spec_of pair (Exp.Spec.Policy p)) cell_policies
          @ [ spec_of pair Exp.Spec.Ideal_cache; spec_of pair Exp.Spec.Oracle ]
          @ List.map
              (fun threshold ->
                spec_of pair (Exp.Spec.Ripple { policy = "lru"; threshold }))
              threshold_candidates)
        missing
    in
    let cells1 = run_specs phase1 in
    let outcome_of cells pair kind =
      match Exp.Runner.find cells (spec_of pair kind) with
      | Some cell -> require cell
      | None ->
        failwith (Printf.sprintf "bench: missing cell %s" (Exp.Spec.to_string (spec_of pair kind)))
    in
    (* Per-application invalidation threshold (§III-C): best-performing
       candidate under LRU, first candidate winning ties. *)
    let best_ripple pair =
      List.fold_left
        (fun acc threshold ->
          let o = outcome_of cells1 pair (Exp.Spec.Ripple { policy = "lru"; threshold }) in
          match acc with
          | Some (_, best) when best.Core.Pipeline.result.Cpu.Simulator.ipc
                                >= o.Exp.Runner.result.Cpu.Simulator.ipc -> acc
          | _ -> Some (threshold, Option.get o.Exp.Runner.evaluation))
        None threshold_candidates
      |> Option.get
    in
    let chosen = List.map (fun pair -> (pair, best_ripple pair)) missing in
    let phase2 =
      List.map
        (fun (pair, (threshold, _)) ->
          spec_of pair (Exp.Spec.Ripple { policy = "random"; threshold }))
        chosen
    in
    let cells2 = run_specs phase2 in
    List.iter
      (fun (pair, (threshold, ev)) ->
        let result kind = (outcome_of cells1 pair kind).Exp.Runner.result in
        let ripple_random =
          Option.get
            (outcome_of cells2 pair (Exp.Spec.Ripple { policy = "random"; threshold }))
              .Exp.Runner.evaluation
        in
        let cell =
          {
            lru = result (Exp.Spec.Policy "lru");
            random = result (Exp.Spec.Policy "random");
            srrip = result (Exp.Spec.Policy "srrip");
            drrip = result (Exp.Spec.Policy "drrip");
            ghrp = result (Exp.Spec.Policy "ghrp");
            hawkeye = result (Exp.Spec.Policy "hawkeye");
            trrip = result (Exp.Spec.Policy "trrip");
            ehc_hawkeye = result (Exp.Spec.Policy "ehc-hawkeye");
            ship_sb = result (Exp.Spec.Policy "ship-sb");
            ideal_cache = result Exp.Spec.Ideal_cache;
            oracle = result Exp.Spec.Oracle;
            ripple_lru = { threshold; ev };
            ripple_random;
          }
        in
        Hashtbl.add cell_cache (key pair) cell)
      chosen;
    log "%d cell(s) done in %.1fs" (List.length missing) (Unix.gettimeofday () -. t0)
  end

let cell_of model prefetch =
  ensure_cells [ (model, prefetch) ];
  Hashtbl.find cell_cache (model.W.App_model.name, Core.Pipeline.prefetch_name prefetch)

let prewarm prefetches = ensure_cells (List.concat_map (fun pf -> List.map (fun m -> (m, pf)) apps) prefetches)

(* ------------------------------------------------------------------ *)
(* Tables and figures                                                  *)
(* ------------------------------------------------------------------ *)

let app_rows f =
  (* Rows for all nine apps plus a mean row. *)
  let acc : (string * float list) list ref = ref [] in
  List.iter (fun model -> acc := (model.W.App_model.name, f model) :: !acc) apps;
  List.rev !acc

let print_per_app ~title ~columns ~fmt rows =
  let table = Table.create ~title ~columns:(("application", Table.Left) :: columns) in
  let sums = Array.make (List.length columns) (Summary.create ()) in
  Array.iteri (fun i _ -> sums.(i) <- Summary.create ()) sums;
  List.iter
    (fun (name, values) ->
      List.iteri (fun i v -> Summary.add sums.(i) v) values;
      Table.add_row table (name :: List.map fmt values))
    rows;
  Table.add_sep table;
  Table.add_row table ("mean" :: Array.to_list (Array.map (fun s -> fmt (Summary.mean s)) sums));
  Table.print table;
  print_newline ()

let tab2 () =
  Format.printf "%a@.@." Cpu.Config.pp_table Cpu.Config.default

let tab1 () =
  (* Every row but the software one comes from the policy registry, so a
     newly registered policy appears here automatically. *)
  let geometry = Cpu.Config.default.Cpu.Config.l1i in
  let sets = Cache.Geometry.sets geometry and ways = geometry.Cache.Geometry.ways in
  let policies =
    List.map
      (fun (e : Registry.entry) ->
        ( e.Registry.display,
          (e.Registry.factory ~seed:0
             ~params:(Registry.Param.defaults e.Registry.params)
             ~sets ~ways)
            .Cache.Policy.storage_bits,
          e.Registry.storage_note ))
      Registry.all
    @ [ ("Ripple (software)", 0, "no hardware metadata beyond the base policy") ]
  in
  let table =
    Table.create ~title:"Table I: replacement metadata for a 32 KiB, 8-way, 64 B-line I-cache"
      ~columns:[ ("policy", Table.Left); ("overhead", Table.Right); ("notes", Table.Left) ]
  in
  List.iter
    (fun (name, bits, notes) ->
      let bytes = Float.of_int bits /. 8.0 in
      let overhead =
        if bytes >= 1024.0 then Printf.sprintf "%.2f KiB" (bytes /. 1024.0)
        else Printf.sprintf "%.0f B" bytes
      in
      Table.add_row table [ name; overhead; notes ])
    policies;
  Table.print table;
  print_newline ()

let fig1 () =
  prewarm [ Core.Pipeline.No_prefetch ];
  let rows =
    app_rows (fun model ->
        let cell = cell_of model Core.Pipeline.No_prefetch in
        [ speedup ~base:cell.lru cell.ideal_cache ])
  in
  print_per_app
    ~title:
      "Fig. 1: ideal I-cache (no misses) speedup over LRU, no prefetching\n\
       (paper: 11-47%, mean 17.7%)"
    ~columns:[ ("ideal $ speedup", Table.Right) ]
    ~fmt:pct rows

let fig2 () =
  prewarm [ Core.Pipeline.No_prefetch; Core.Pipeline.Fdip ];
  let rows =
    app_rows (fun model ->
        let none = cell_of model Core.Pipeline.No_prefetch in
        let fdip = cell_of model Core.Pipeline.Fdip in
        let base = none.lru in
        [ speedup ~base fdip.lru; speedup ~base fdip.oracle; speedup ~base none.ideal_cache ])
  in
  print_per_app
    ~title:
      "Fig. 2: FDIP speedup over the no-prefetch LRU baseline\n\
       (paper: FDIP+LRU 13.4%, FDIP+ideal-replacement 16.6%, ideal cache 17.7%)"
    ~columns:
      [
        ("FDIP+LRU", Table.Right);
        ("FDIP+ideal repl", Table.Right);
        ("ideal $", Table.Right);
      ]
    ~fmt:pct rows

let fig3 () =
  prewarm [ Core.Pipeline.Fdip ];
  let rows =
    app_rows (fun model ->
        let cell = cell_of model Core.Pipeline.Fdip in
        let base = cell.lru in
        [
          speedup ~base cell.ghrp;
          speedup ~base cell.hawkeye;
          speedup ~base cell.srrip;
          speedup ~base cell.drrip;
          speedup ~base cell.trrip;
          speedup ~base cell.ehc_hawkeye;
          speedup ~base cell.ship_sb;
          speedup ~base cell.oracle;
        ])
  in
  print_per_app
    ~title:
      "Fig. 3: prior and modern replacement policies over LRU, with FDIP\n\
       (paper: none beat LRU; ideal replacement +3.16% mean)"
    ~columns:
      [
        ("GHRP", Table.Right);
        ("Hawkeye", Table.Right);
        ("SRRIP", Table.Right);
        ("DRRIP", Table.Right);
        ("TRRIP", Table.Right);
        ("EHC-Hawkeye", Table.Right);
        ("SHiP-SB", Table.Right);
        ("ideal repl", Table.Right);
      ]
    ~fmt:pct rows

let fig6 () =
  (* Coverage/accuracy trade-off for finagle-http under FDIP.  Each
     threshold is one Ripple spec, so the whole sweep fans out at once. *)
  let model = W.Apps.finagle_http in
  let table =
    Table.create
      ~title:
        "Fig. 6: Ripple coverage vs accuracy across invalidation thresholds\n\
         (finagle-http, FDIP; paper: coverage ~100% at low thresholds, accuracy\n\
         near-perfect at high thresholds, sweet spot at 40-60%)"
      ~columns:
        [
          ("threshold", Table.Right);
          ("coverage", Table.Right);
          ("accuracy", Table.Right);
          ("speedup vs LRU", Table.Right);
        ]
  in
  let base = (cell_of model Core.Pipeline.Fdip).lru in
  let thresholds = [ 0.05; 0.2; 0.35; 0.5; 0.65; 0.8; 0.95 ] in
  let specs =
    List.map
      (fun threshold ->
        Exp.Spec.v ~n_instrs:!n_instrs ~seed:1234 ~prefetch:Core.Pipeline.Fdip
          ~app:model.W.App_model.name
          (Exp.Spec.Ripple { policy = "lru"; threshold }))
      thresholds
  in
  let cells = run_specs specs in
  List.iter2
    (fun threshold cell ->
      let ev = Option.get (require cell).Exp.Runner.evaluation in
      Table.add_row table
        [
          Printf.sprintf "%.0f%%" (100.0 *. threshold);
          pct0 ev.Core.Pipeline.coverage;
          pct0 ev.Core.Pipeline.accuracy;
          pct (speedup ~base ev.Core.Pipeline.result);
        ])
    thresholds cells;
  Table.print table;
  print_newline ()

let fig7_8 which () =
  prewarm prefetches;
  List.iter
    (fun prefetch ->
      let pf = Core.Pipeline.prefetch_name prefetch in
      let metric ~base r = match which with
        | `Speedup -> speedup ~base r
        | `Mpki -> miss_reduction ~base r
      in
      let rows =
        app_rows (fun model ->
            let cell = cell_of model prefetch in
            let base = cell.lru in
            [
              metric ~base cell.oracle;
              metric ~base cell.ripple_lru.ev.Core.Pipeline.result;
              metric ~base cell.ripple_random.Core.Pipeline.result;
              metric ~base cell.ghrp;
              metric ~base cell.hawkeye;
              metric ~base cell.srrip;
              metric ~base cell.drrip;
              metric ~base cell.trrip;
              metric ~base cell.ehc_hawkeye;
              metric ~base cell.ship_sb;
              metric ~base cell.random;
            ])
      in
      let what, paper =
        match which with
        | `Speedup ->
          ( "Fig. 7: speedup over LRU",
            "paper means: none 1.25%/3.36%, NLP 2.13%/3.87%, FDIP 1.4%/3.16% (Ripple-LRU/ideal)" )
        | `Mpki ->
          ( "Fig. 8: L1I miss reduction vs LRU",
            "paper means: none 9.57%/28.88%, NLP 28.6%/53.66%, FDIP 18.61%/45% (Ripple-LRU/ideal)"
          )
      in
      print_per_app
        ~title:(Printf.sprintf "%s — prefetcher: %s\n(%s)" what pf paper)
        ~columns:
          [
            ("ideal repl", Table.Right);
            ("Ripple-LRU", Table.Right);
            ("Ripple-Rand", Table.Right);
            ("GHRP", Table.Right);
            ("Hawkeye", Table.Right);
            ("SRRIP", Table.Right);
            ("DRRIP", Table.Right);
            ("TRRIP", Table.Right);
            ("EHC-Hawkeye", Table.Right);
            ("SHiP-SB", Table.Right);
            ("Random", Table.Right);
          ]
        ~fmt:pct rows)
    prefetches

let zoo_policies =
  [ ("TRRIP", "trrip"); ("EHC-Hawkeye", "ehc-hawkeye"); ("SHiP-SB", "ship-sb") ]

let zoo () =
  (* "Modern policies vs Ripple hints": each policy-zoo newcomer runs
     plain and with Ripple's hint stream layered on top, at the
     invalidation threshold the per-app LRU search already chose
     (Â§III-C) â answering the question the paper leaves open: do
     profile-guided hints still pay once the base policy is smarter
     than LRU? *)
  prewarm [ Core.Pipeline.Fdip ];
  let spec_of model p threshold =
    Exp.Spec.v ~n_instrs:!n_instrs ~seed:1234 ~prefetch:Core.Pipeline.Fdip
      ~app:model.W.App_model.name
      (Exp.Spec.Ripple { policy = p; threshold })
  in
  let specs =
    List.concat_map
      (fun model ->
        let cell = cell_of model Core.Pipeline.Fdip in
        List.map
          (fun (_, p) -> spec_of model p cell.ripple_lru.threshold)
          zoo_policies)
      apps
  in
  let cells = run_specs specs in
  let hinted model p threshold =
    match Exp.Runner.find cells (spec_of model p threshold) with
    | Some cell -> (require cell).Exp.Runner.result
    | None ->
      failwith
        (Printf.sprintf "zoo: missing hinted cell %s/%s" model.W.App_model.name p)
  in
  let plain_of cell p =
    match p with
    | "trrip" -> cell.trrip
    | "ehc-hawkeye" -> cell.ehc_hawkeye
    | "ship-sb" -> cell.ship_sb
    | _ -> invalid_arg p
  in
  let rows =
    app_rows (fun model ->
        let cell = cell_of model Core.Pipeline.Fdip in
        let base = cell.lru in
        let threshold = cell.ripple_lru.threshold in
        List.concat_map
          (fun (_, p) ->
            [
              speedup ~base (plain_of cell p);
              speedup ~base (hinted model p threshold);
            ])
          zoo_policies)
  in
  print_per_app
    ~title:
      "Modern policies vs Ripple hints (FDIP; speedup over LRU)\n\
       (each policy plain, then with Ripple invalidation/demotion hints at\n\
       the per-app threshold the LRU search chose)"
    ~columns:
      (List.concat_map
         (fun (label, _) -> [ (label, Table.Right); (label ^ "+hints", Table.Right) ])
         zoo_policies)
    ~fmt:pct rows

let fig9_12 () =
  prewarm [ Core.Pipeline.Fdip ];
  let rows =
    app_rows (fun model ->
        let cell = cell_of model Core.Pipeline.Fdip in
        let ev = cell.ripple_lru.ev in
        [
          ev.Core.Pipeline.coverage;
          ev.Core.Pipeline.accuracy;
          ev.Core.Pipeline.static_overhead;
          ev.Core.Pipeline.dynamic_overhead;
          cell.ripple_lru.threshold;
        ])
  in
  print_per_app
    ~title:
      "Figs. 9-12: Ripple-LRU coverage, accuracy and overheads (FDIP)\n\
       (paper: coverage >50% mean, <50% for the JIT/HHVM apps; accuracy 92% mean;\n\
       static <4.4%; dynamic 2.2% mean, ~10% for verilator)"
    ~columns:
      [
        ("coverage", Table.Right);
        ("accuracy", Table.Right);
        ("static ovh", Table.Right);
        ("dynamic ovh", Table.Right);
        ("threshold", Table.Right);
      ]
    ~fmt:(fun v -> pct0 v)
    rows

let fig13 () =
  (* Cross-input generality: profile on input #0's profile vs an
     input-specific profile, evaluated on inputs #1..#3 under FDIP. *)
  let chosen = [ W.Apps.cassandra; W.Apps.finagle_http; W.Apps.tomcat; W.Apps.verilator ] in
  let table =
    Table.create
      ~title:
        "Fig. 13: Ripple-LRU speedup with a generic (input #0) profile vs an\n\
         input-specific profile, FDIP (paper: input-specific profiles give ~17%\n\
         more IPC gain)"
      ~columns:
        [
          ("application", Table.Left);
          ("input", Table.Left);
          ("#0 profile", Table.Right);
          ("own profile", Table.Right);
        ]
  in
  let gains = Summary.create () and gains_own = Summary.create () in
  List.iter
    (fun model ->
      let { workload; eval = eval0; _ } = workload_of model in
      let program = workload.W.Cfg_gen.program in
      Array.iteri
        (fun i input ->
          if i >= 1 then begin
            let trace = W.Executor.run workload ~input ~n_instrs:!n_instrs in
            let warmup = Array.length trace / 2 in
            let base =
              Cpu.Simulator.run ~warmup ~program ~trace ~policy:Cache.Lru.make
                ~prefetcher:(Core.Pipeline.prefetcher_of Core.Pipeline.Fdip) ()
            in
            (* One façade call per (profile, eval-input) pair: the profile
               input and the evaluation trace are independent axes of
               Pipeline.run, which is exactly Fig. 13's experiment. *)
            let eval_on profile_trace =
              let oc =
                Core.Pipeline.run
                  {
                    Core.Pipeline.Options.default with
                    threshold = 0.5;
                    prefetch = Core.Pipeline.Fdip;
                    eval =
                      Some (Core.Pipeline.Eval.v ~warmup ~trace ~policy:Cache.Lru.make ());
                  }
                  ~source:program (Core.Pipeline.Trace profile_trace)
              in
              Option.get oc.Core.Pipeline.evaluation
            in
            let cross = eval_on eval0 in
            let own = eval_on trace in
            let s_cross = speedup ~base cross.Core.Pipeline.result in
            let s_own = speedup ~base own.Core.Pipeline.result in
            Summary.add gains s_cross;
            Summary.add gains_own s_own;
            Table.add_row table
              [ model.W.App_model.name; input.W.Executor.label; pct s_cross; pct s_own ]
          end)
        W.Executor.eval_inputs)
    chosen;
  Table.add_sep table;
  Table.add_row table [ "mean"; ""; pct (Summary.mean gains); pct (Summary.mean gains_own) ];
  Table.print table;
  print_newline ()

let ablation () =
  (* §IV "Invalidation vs. reducing LRU priority", injection granularity,
     and the prefetch-covered-window filter (DESIGN.md abl1/disc1). *)
  let table =
    Table.create
      ~title:
        "Ablations (FDIP, Ripple-LRU speedup over LRU):\n\
         invalidate vs demote (paper: demote slightly better on LRU, 1.6%->1.7%),\n\
         per-block hint cap, NLP window filter"
      ~columns:
        [
          ("application", Table.Left);
          ("invalidate", Table.Right);
          ("demote", Table.Right);
          ("cap=1", Table.Right);
          ("nlp+filter", Table.Right);
          ("nlp-filter", Table.Right);
        ]
  in
  let cols = Array.init 5 (fun _ -> Summary.create ()) in
  prewarm [ Core.Pipeline.Fdip; Core.Pipeline.Nlp ];
  List.iter
    (fun model ->
      let { workload; train; eval; warmup } = workload_of model in
      let program = workload.W.Cfg_gen.program in
      let fdip_base = (cell_of model Core.Pipeline.Fdip).lru in
      let nlp_base = (cell_of model Core.Pipeline.Nlp).lru in
      let run ?(mode = Core.Injector.Invalidate)
          ?(max_hints_per_block = Core.Injector.default_max_hints_per_block)
          ?(exclude = false) ~prefetch ~base () =
        let threshold = (cell_of model prefetch).ripple_lru.threshold in
        let oc =
          Core.Pipeline.run
            {
              Core.Pipeline.Options.default with
              threshold;
              mode;
              max_hints_per_block;
              exclude_prefetch_covered = exclude;
              prefetch;
              eval = Some (Core.Pipeline.Eval.v ~warmup ~trace:eval ~policy:Cache.Lru.make ());
            }
            ~source:program (Core.Pipeline.Trace train)
        in
        speedup ~base (Option.get oc.Core.Pipeline.evaluation).Core.Pipeline.result
      in
      let inv = run ~prefetch:Core.Pipeline.Fdip ~base:fdip_base () in
      let dem = run ~mode:Core.Injector.Demote ~prefetch:Core.Pipeline.Fdip ~base:fdip_base () in
      let cap1 = run ~max_hints_per_block:1 ~prefetch:Core.Pipeline.Fdip ~base:fdip_base () in
      let nlp_f = run ~exclude:true ~prefetch:Core.Pipeline.Nlp ~base:nlp_base () in
      let nlp_nf = run ~exclude:false ~prefetch:Core.Pipeline.Nlp ~base:nlp_base () in
      let vals = [ inv; dem; cap1; nlp_f; nlp_nf ] in
      List.iteri (fun i v -> Summary.add cols.(i) v) vals;
      Table.add_row table (model.W.App_model.name :: List.map pct vals))
    apps;
  Table.add_sep table;
  Table.add_row table
    ("mean" :: Array.to_list (Array.map (fun s -> pct (Summary.mean s)) cols));
  Table.print table;
  print_newline ()

let lbr () =
  (* §III-A: PT vs LBR-sampled profiling.  Stitched LBR samples see only
     a fraction of execution; Ripple's coverage and gains degrade
     accordingly — the quantitative case for PT-based profiling. *)
  let table =
    Table.create
      ~title:
        "Profiling source ablation (FDIP, Ripple-LRU): full PT trace vs stitched\n\
         LBR samples (period 120 blocks, depth 16)"
      ~columns:
        [
          ("application", Table.Left);
          ("LBR sees", Table.Right);
          ("PT speedup", Table.Right);
          ("PT coverage", Table.Right);
          ("LBR speedup", Table.Right);
          ("LBR coverage", Table.Right);
        ]
  in
  let lbr_apps = [ W.Apps.cassandra; W.Apps.tomcat; W.Apps.verilator ] in
  ensure_cells (List.map (fun m -> (m, Core.Pipeline.Fdip)) lbr_apps);
  List.iter
    (fun model ->
      let { workload; train; eval; warmup } = workload_of model in
      let program = workload.W.Cfg_gen.program in
      let base = (cell_of model Core.Pipeline.Fdip).lru in
      let eval_profile ?(pt_roundtrip = true) profile_trace =
        let oc =
          Core.Pipeline.run
            {
              Core.Pipeline.Options.default with
              pt_roundtrip;
              prefetch = Core.Pipeline.Fdip;
              eval = Some (Core.Pipeline.Eval.v ~warmup ~trace:eval ~policy:Cache.Lru.make ());
            }
            ~source:program (Core.Pipeline.Trace profile_trace)
        in
        Option.get oc.Core.Pipeline.evaluation
      in
      let pt_ev = eval_profile train in
      let samples = Ripple_trace.Lbr.capture program ~trace:train ~period:120 ~depth:16 in
      let stitched = Ripple_trace.Lbr.stitched_trace samples in
      let lbr_ev = eval_profile ~pt_roundtrip:false stitched in
      Table.add_row table
        [
          model.W.App_model.name;
          pct0 (Ripple_trace.Lbr.coverage_fraction samples ~trace_length:(Array.length train));
          pct (speedup ~base pt_ev.Core.Pipeline.result);
          pct0 pt_ev.Core.Pipeline.coverage;
          pct (speedup ~base lbr_ev.Core.Pipeline.result);
          pct0 lbr_ev.Core.Pipeline.coverage;
        ])
    lbr_apps;
  Table.print table;
  print_newline ()

let geometry () =
  (* §V: Ripple emits binaries per target I-cache geometry.  Analyze and
     evaluate at matched geometries, plus one deliberate mismatch. *)
  let geometries =
    [
      ("16 KiB / 4-way", Cache.Geometry.v ~size_bytes:(16 * 1024) ~ways:4);
      ("32 KiB / 8-way", Cache.Geometry.l1i);
      ("64 KiB / 8-way", Cache.Geometry.v ~size_bytes:(64 * 1024) ~ways:8);
    ]
  in
  let model = W.Apps.tomcat in
  let { workload; train; eval; warmup } = workload_of model in
  let program = workload.W.Cfg_gen.program in
  let table =
    Table.create
      ~title:
        "Target-geometry sensitivity (tomcat, FDIP, Ripple-LRU): profiles are\n\
         analyzed for the geometry they run on, plus one mismatched pair (§V)"
      ~columns:
        [
          ("analyzed for", Table.Left);
          ("runs on", Table.Left);
          ("LRU MPKI", Table.Right);
          ("Ripple speedup", Table.Right);
        ]
  in
  let run ~analysis_geom ~run_geom ~alabel ~rlabel =
    let config_a = { Cpu.Config.default with Cpu.Config.l1i = analysis_geom } in
    let config_r = { Cpu.Config.default with Cpu.Config.l1i = run_geom } in
    (* Analysis and execution geometries differ here by design, which one
       Pipeline.run (one config per run) cannot express: instrument under
       config_a via the façade, then time the shipped binary under
       config_r with a plain simulator run (speedup only needs IPC). *)
    let instrumented =
      (Core.Pipeline.run
         { Core.Pipeline.Options.default with config = config_a; prefetch = Core.Pipeline.Fdip }
         ~source:program (Core.Pipeline.Trace train))
        .Core.Pipeline.program
    in
    let base =
      Cpu.Simulator.run ~config:config_r ~warmup ~program ~trace:eval ~policy:Cache.Lru.make
        ~prefetcher:(Core.Pipeline.prefetcher_of ~config:config_r Core.Pipeline.Fdip) ()
    in
    let ripple =
      Cpu.Simulator.run ~config:config_r ~warmup ~program:instrumented ~trace:eval
        ~policy:Cache.Lru.make
        ~prefetcher:(Core.Pipeline.prefetcher_of ~config:config_r Core.Pipeline.Fdip) ()
    in
    Table.add_row table
      [
        alabel;
        rlabel;
        Printf.sprintf "%.3f" base.Cpu.Simulator.mpki;
        pct (speedup ~base ripple);
      ]
  in
  List.iter
    (fun (label, geom) -> run ~analysis_geom:geom ~run_geom:geom ~alabel:label ~rlabel:label)
    geometries;
  Table.add_sep table;
  run
    ~analysis_geom:Cache.Geometry.l1i
    ~run_geom:(Cache.Geometry.v ~size_bytes:(16 * 1024) ~ways:4)
    ~alabel:"32 KiB / 8-way" ~rlabel:"16 KiB / 4-way (mismatch)";
  Table.print table;
  print_newline ()

let extras () =
  (* Beyond the paper's matrix: the SHiP policy (§VI related work) and
     the RDIP prefetcher (§I/§VI), for context. *)
  let table =
    Table.create
      ~title:
        "Extra comparison points: SHiP replacement (vs LRU, FDIP) and the RDIP\n\
         prefetcher (vs no-prefetch LRU baseline)"
      ~columns:
        [
          ("application", Table.Left);
          ("SHiP speedup", Table.Right);
          ("RDIP speedup", Table.Right);
          ("RDIP MPKI", Table.Right);
          ("FDIP MPKI", Table.Right);
        ]
  in
  let s1 = Summary.create () and s2 = Summary.create () in
  prewarm [ Core.Pipeline.Fdip; Core.Pipeline.No_prefetch ];
  (* SHiP is a registry policy, so it runs as one spec per app through
     the pool; RDIP has no prefetch variant in the spec vocabulary and
     stays inline. *)
  let ship_spec model =
    Exp.Spec.v ~n_instrs:!n_instrs ~seed:1234 ~prefetch:Core.Pipeline.Fdip
      ~app:model.W.App_model.name (Exp.Spec.Policy "ship")
  in
  let ship_cells = run_specs (List.map ship_spec apps) in
  List.iter
    (fun model ->
      let { workload; eval; warmup; _ } = workload_of model in
      let program = workload.W.Cfg_gen.program in
      let fdip_cell = cell_of model Core.Pipeline.Fdip in
      let none_cell = cell_of model Core.Pipeline.No_prefetch in
      let ship =
        (require (Option.get (Exp.Runner.find ship_cells (ship_spec model))))
          .Exp.Runner.result
      in
      let rdip =
        Cpu.Simulator.run ~warmup ~program ~trace:eval ~policy:Cache.Lru.make
          ~prefetcher:(fun program -> Ripple_prefetch.Rdip.create ~program ()) ()
      in
      let ship_speedup = speedup ~base:fdip_cell.lru ship in
      let rdip_speedup = speedup ~base:none_cell.lru rdip in
      Summary.add s1 ship_speedup;
      Summary.add s2 rdip_speedup;
      Table.add_row table
        [
          model.W.App_model.name;
          pct ship_speedup;
          pct rdip_speedup;
          Printf.sprintf "%.2f" rdip.Cpu.Simulator.mpki;
          Printf.sprintf "%.2f" fdip_cell.lru.Cpu.Simulator.mpki;
        ])
    apps;
  Table.add_sep table;
  Table.add_row table [ "mean"; pct (Summary.mean s1); pct (Summary.mean s2); ""; "" ];
  Table.print table;
  print_newline ()

let micro () =
  (* Bechamel microbenchmarks of the simulator hot paths. *)
  let open Bechamel in
  let model = W.Apps.kafka in
  let { workload; eval; _ } = workload_of model in
  let program = workload.W.Cfg_gen.program in
  let short = Array.sub eval 0 (min 20_000 (Array.length eval)) in
  let stream =
    Cpu.Simulator.record_stream ~program ~trace:short
      ~prefetcher:Cpu.Simulator.prefetcher_none ()
  in
  let cache_access () =
    let cache =
      Cache.Cache.create ~geometry:Cache.Geometry.l1i ~policy:Cache.Lru.make ()
    in
    Cache.Access_stream.iter
      (fun acc -> ignore (Cache.Cache.access_packed cache acc))
      stream
  in
  let belady_replay () =
    ignore (Cache.Belady.simulate Cache.Geometry.l1i ~mode:Cache.Belady.Min stream)
  in
  let pt_roundtrip () =
    let encoded = Ripple_trace.Pt.encode program short in
    ignore (Ripple_trace.Pt.decode program encoded)
  in
  let tests =
    Test.make_grouped ~name:"ripple" ~fmt:"%s/%s"
      [
        Test.make ~name:"l1i-lru-access-stream" (Staged.stage cache_access);
        Test.make ~name:"belady-min-replay" (Staged.stage belady_replay);
        Test.make ~name:"pt-encode-decode" (Staged.stage pt_roundtrip);
      ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 2.0) () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| "run" |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf "Microbenchmarks (monotonic clock, ns per run):\n";
  Hashtbl.iter
    (fun name (estimate : Analyze.OLS.t) ->
      match Analyze.OLS.estimates estimate with
      | Some (v :: _) -> Printf.printf "  %-32s %12.0f ns\n" name v
      | Some [] | None -> Printf.printf "  %-32s (no estimate)\n" name)
    results;
  print_newline ()

let smoke () =
  (* End-to-end exercise of the experiment runner at tiny instruction
     budgets — the full cell pipeline (policy fan-out, ideal bounds,
     Ripple threshold search, random-policy second wave, aggregation)
     over three apps and FDIP, sized to finish in seconds.  `--jobs`
     scales it across domains; results are identical at any pool size. *)
  n_instrs := min !n_instrs 150_000;
  gc_in_jsonl := true;
  let smoke_apps = [ W.Apps.cassandra; W.Apps.finagle_http; W.Apps.verilator ] in
  (* Table I is free (no simulation) and covers every registry policy,
     so the smoke artefact pins the storage accounting too. *)
  tab1 ();
  ensure_cells (List.map (fun m -> (m, Core.Pipeline.Fdip)) smoke_apps);
  let table =
    Table.create ~title:"smoke sweep (FDIP, tiny budgets — shape check only)"
      ~columns:
        [
          ("application", Table.Left);
          ("lru mpki", Table.Right);
          ("ideal $", Table.Right);
          ("ideal repl", Table.Right);
          ("Ripple-LRU", Table.Right);
          ("Ripple-Rand", Table.Right);
          ("trrip", Table.Right);
          ("ehc-hawkeye", Table.Right);
          ("ship-sb", Table.Right);
          ("coverage", Table.Right);
        ]
  in
  List.iter
    (fun model ->
      let cell = cell_of model Core.Pipeline.Fdip in
      let base = cell.lru in
      Table.add_row table
        [
          model.W.App_model.name;
          Printf.sprintf "%.2f" base.Cpu.Simulator.mpki;
          pct (speedup ~base cell.ideal_cache);
          pct (speedup ~base cell.oracle);
          pct (speedup ~base cell.ripple_lru.ev.Core.Pipeline.result);
          pct (speedup ~base cell.ripple_random.Core.Pipeline.result);
          pct (speedup ~base cell.trrip);
          pct (speedup ~base cell.ehc_hawkeye);
          pct (speedup ~base cell.ship_sb);
          pct0 cell.ripple_lru.ev.Core.Pipeline.coverage;
        ])
    smoke_apps;
  Table.print table;
  print_newline ()

let all () =
  prewarm prefetches;
  tab2 ();
  tab1 ();
  fig1 ();
  fig2 ();
  fig3 ();
  fig6 ();
  fig7_8 `Speedup ();
  fig7_8 `Mpki ();
  zoo ();
  fig9_12 ();
  fig13 ();
  ablation ();
  lbr ();
  geometry ();
  extras ()

let () =
  let commands =
    [
      ("tab1", tab1);
      ("tab2", tab2);
      ("fig1", fig1);
      ("fig2", fig2);
      ("fig3", fig3);
      ("fig6", fig6);
      ("fig7", fig7_8 `Speedup);
      ("fig8", fig7_8 `Mpki);
      ("fig9", fig9_12);
      ("fig10", fig9_12);
      ("fig11", fig9_12);
      ("fig12", fig9_12);
      ("fig13", fig13);
      ("zoo", zoo);
      ("ablation", ablation);
      ("lbr", lbr);
      ("geometry", geometry);
      ("extras", extras);
      ("micro", micro);
      ("smoke", smoke);
      ("all", all);
    ]
  in
  let rec split_flags targets = function
    | "--jobs" :: n :: rest ->
      jobs := Some (int_of_string n);
      split_flags targets rest
    | "--out" :: path :: rest ->
      out_path := Some path;
      split_flags targets rest
    | "--metrics" :: path :: rest ->
      metrics_path := Some path;
      split_flags targets rest
    | arg :: rest -> split_flags (arg :: targets) rest
    | [] -> List.rev targets
  in
  let args = split_flags [] (List.tl (Array.to_list Sys.argv)) in
  let args = if args = [] then [ "all" ] else args in
  List.iter
    (fun arg ->
      match List.assoc_opt arg commands with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown target %S; available: %s\n" arg
          (String.concat ", " (List.map fst commands));
        exit 1)
    args;
  write_cells ();
  write_metrics ()
