(* Peak-memory / allocation probe for the access-stream pipeline.

     dune exec bench/memstat.exe -- [n_instrs] [heap|mmap] [sample_windows]

   Measures, for one (application, prefetcher) configuration at the
   given trace length: words allocated, top-heap words and the process
   peak RSS (VmHWM) reached by (1) generating the block trace,
   (2) recording the LRU reference access stream, (3) the Belady
   Demand-MIN replay over it, and (4) a full Simulator run — the four
   hot paths of the pipeline — under either stream backing.  With
   [sample_windows > 0] the simulator pass also runs sampled from a
   checkpoint and reports the sampled-vs-full IPC/MPKI error, the
   artifact CI's large-trace smoke job archives.  Numbers feed
   EXPERIMENTS.md's peak-memory table; the out-of-core acceptance
   criteria are judged against them. *)

module W = Ripple_workloads
module Cache = Ripple_cache
module Cpu = Ripple_cpu
module Int_stream = Ripple_util.Int_stream

let words stat = stat.Gc.minor_words +. stat.Gc.major_words -. stat.Gc.promoted_words

(* Peak resident set of this process so far, in KiB — the watermark the
   out-of-core acceptance budget is asserted against.  0 where the
   kernel does not provide /proc/self/status. *)
let vm_hwm_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
    let rec loop () =
      match input_line ic with
      | line when String.length line > 6 && String.sub line 0 6 = "VmHWM:" ->
        Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d" Fun.id
      | _ -> loop ()
      | exception End_of_file -> 0
    in
    let kb = loop () in
    close_in ic;
    kb

let measure name f =
  Gc.compact ();
  let before = Gc.quick_stat () in
  let x = f () in
  let after = Gc.quick_stat () in
  Printf.printf "%-24s allocated_words=%14.0f top_heap_words=%10d live_words=%10d vm_hwm_kb=%8d\n%!"
    name
    (words after -. words before)
    after.Gc.top_heap_words
    (let s = Gc.quick_stat () in
     s.Gc.heap_words)
    (vm_hwm_kb ());
  x

let () =
  let n_instrs =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2_000_000
  in
  let backing =
    if Array.length Sys.argv > 2 then
      match Int_stream.backing_of_string Sys.argv.(2) with
      | Ok b -> b
      | Error msg -> failwith msg
    else Int_stream.Heap
  in
  let sample_windows = if Array.length Sys.argv > 3 then int_of_string Sys.argv.(3) else 0 in
  Printf.printf "memstat: n_instrs=%d backing=%s sample_windows=%d\n%!" n_instrs
    (Int_stream.backing_name backing)
    sample_windows;
  let model = W.Apps.kafka in
  let workload = W.Cfg_gen.generate model in
  let program = workload.W.Cfg_gen.program in
  let blocks =
    measure "trace (block ids)" (fun () ->
        W.Executor.run_stream ~backing workload ~input:W.Executor.eval_inputs.(0) ~n_instrs)
  in
  let n = Int_stream.length blocks in
  let warmup = n / 2 in
  Printf.printf "trace blocks: %d (spill: %b)\n%!" n (Int_stream.is_spill blocks);
  let trace = Cpu.Simulator.Trace.of_stream blocks in
  let stream, pos =
    measure "record_stream" (fun () ->
        Cpu.Simulator.record_stream_indexed_trace ~backing ~program ~trace
          ~prefetcher:Cpu.Simulator.prefetcher_fdip ())
  in
  Int_stream.close pos;
  Printf.printf "stream accesses: %d\n%!" (Cache.Access_stream.length stream);
  ignore
    (measure "belady demand-min" (fun () ->
         let tables = Cache.Belady.prepare ~backing stream in
         Fun.protect
           ~finally:(fun () -> Cache.Belady.close_tables tables)
           (fun () ->
             (* Counters only — the oracle timing path never keeps the
                boxed eviction records, so neither does the probe. *)
             Cache.Belady.simulate ~tables ~record_evictions:false Cache.Geometry.l1i
               ~mode:Cache.Belady.Demand_min stream)));
  Cache.Access_stream.close stream;
  let full =
    measure "simulator lru+fdip" (fun () ->
        fst
          (Cpu.Simulator.run_trace ~warmup ~program ~trace ~policy:Cache.Lru.make
             ~prefetcher:Cpu.Simulator.prefetcher_fdip ()))
  in
  Printf.printf "full ipc=%.6f mpki=%.4f\n%!" full.Cpu.Simulator.ipc full.Cpu.Simulator.mpki;
  if sample_windows > 0 then begin
    let sampling =
      Cpu.Simulator.Sampling.v ~windows:sample_windows
        ~window_blocks:(max 1 ((n - warmup) / (4 * sample_windows)))
        ()
    in
    let sampled, report =
      measure "simulator sampled" (fun () ->
          Cpu.Simulator.run_trace ~warmup ~sampling ~program ~trace ~policy:Cache.Lru.make
            ~prefetcher:Cpu.Simulator.prefetcher_fdip ())
    in
    let rel a b = if b = 0.0 then 0.0 else Float.abs (a -. b) /. b in
    let coverage =
      match report with Some r -> r.Cpu.Simulator.Sampling.coverage | None -> 1.0
    in
    Printf.printf "sampled ipc=%.6f mpki=%.4f coverage=%.4f\n%!" sampled.Cpu.Simulator.ipc
      sampled.Cpu.Simulator.mpki coverage;
    Printf.printf "ipc_rel_error=%.6f mpki_rel_error=%.6f\n%!"
      (rel sampled.Cpu.Simulator.ipc full.Cpu.Simulator.ipc)
      (rel sampled.Cpu.Simulator.mpki full.Cpu.Simulator.mpki)
  end;
  Cpu.Simulator.Trace.close trace;
  Printf.printf "peak vm_hwm_kb=%d\n%!" (vm_hwm_kb ())
