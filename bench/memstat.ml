(* Peak-memory / allocation probe for the access-stream pipeline.

     dune exec bench/memstat.exe -- [n_instrs]

   Measures, for one (application, prefetcher) configuration at the
   given trace length: words allocated and top-heap words reached by
   (1) recording the LRU reference access stream, (2) the Belady
   Demand-MIN replay over it, and (3) a full Simulator.run — the three
   hot paths of the pipeline.  Numbers feed EXPERIMENTS.md's
   peak-memory table; the streaming-representation acceptance criteria
   are judged against them. *)

module W = Ripple_workloads
module Cache = Ripple_cache
module Cpu = Ripple_cpu

let words stat = stat.Gc.minor_words +. stat.Gc.major_words -. stat.Gc.promoted_words

let measure name f =
  Gc.compact ();
  let before = Gc.quick_stat () in
  let x = f () in
  let after = Gc.quick_stat () in
  Printf.printf "%-24s allocated_words=%14.0f top_heap_words=%10d live_words=%10d\n%!" name
    (words after -. words before)
    after.Gc.top_heap_words
    (let s = Gc.quick_stat () in s.Gc.heap_words);
  x

let () =
  let n_instrs =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2_000_000
  in
  let model = W.Apps.kafka in
  let workload = W.Cfg_gen.generate model in
  let program = workload.W.Cfg_gen.program in
  let trace =
    measure "trace (block ids)" (fun () ->
        W.Executor.run workload ~input:W.Executor.eval_inputs.(0) ~n_instrs)
  in
  Printf.printf "trace blocks: %d\n%!" (Array.length trace);
  let stream =
    measure "record_stream" (fun () ->
        Cpu.Simulator.record_stream ~program ~trace ~prefetcher:Cpu.Simulator.prefetcher_fdip ())
  in
  Printf.printf "stream accesses: %d\n%!" (Cache.Access_stream.length stream);
  ignore
    (measure "belady demand-min" (fun () ->
         Cache.Belady.simulate Cache.Geometry.l1i ~mode:Cache.Belady.Demand_min stream));
  ignore
    (measure "simulator lru+fdip" (fun () ->
         Cpu.Simulator.run ~program ~trace ~policy:Cache.Lru.make
           ~prefetcher:Cpu.Simulator.prefetcher_fdip ()))
