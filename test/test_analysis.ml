(* Tests for ripple.analysis: the static verifier — structural CFG
   checks, dominators, hit-liveness, hint classification, the lint
   front door — plus the provenance/drop-accounting satellites it rides
   with (Injector placements, Cue_block.analyze_report, the pipeline
   verify gate). *)

module Addr = Ripple_isa.Addr
module Basic_block = Ripple_isa.Basic_block
module Program = Ripple_isa.Program
module Builder = Ripple_isa.Builder
module Geometry = Ripple_cache.Geometry
module Access = Ripple_cache.Access
module Json = Ripple_util.Json
module Finding = Ripple_analysis.Finding
module Cfg = Ripple_analysis.Cfg
module Dominance = Ripple_analysis.Dominance
module Liveness = Ripple_analysis.Liveness
module Icheck = Ripple_analysis.Invalidation_check
module Lint = Ripple_analysis.Lint
module Eviction_window = Ripple_core.Eviction_window
module Cue_block = Ripple_core.Cue_block
module Injector = Ripple_core.Injector
module Pipeline = Ripple_core.Pipeline
module W = Ripple_workloads

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checkf = check (Alcotest.float 1e-9)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let ub = Program.user_base

(* A block record with addresses assigned by hand, bypassing layout so
   deliberately broken inputs can be expressed. *)
let mk ?(bytes = 64) ?(privilege = Basic_block.User) ?(jit = false) ?(hints = [||]) ~id ~addr
    term =
  {
    Basic_block.id;
    addr;
    bytes;
    n_instrs = max 1 (bytes / 4);
    privilege;
    jit;
    term;
    hints;
  }

(* Blocks on consecutive cache lines from user_base. *)
let at k = ub + (k * Addr.line_size)
let line_at k = Addr.line_of (at k)
let has code (s : Lint.summary) = List.exists (fun f -> f.Finding.code = code) s.Lint.findings

let flagged code ~block (s : Lint.summary) =
  List.exists
    (fun f -> f.Finding.code = code && f.Finding.block = Some block)
    s.Lint.findings

(* --------------------------- structural ----------------------------- *)

let test_structural_dangling () =
  let s = Lint.check_blocks ~entry:0 [| mk ~id:0 ~addr:(at 0) (Basic_block.Jump 7) |] in
  checkb "dangling successor flagged" true (has Finding.Dangling_successor s);
  checki "is an error" 2 (Lint.exit_code s);
  checkb "gates semantic layers" true s.Lint.structural_gate;
  let s =
    Lint.check_blocks ~entry:0
      [|
        mk ~id:0 ~addr:(at 0) (Basic_block.Call { callee = 1; return_to = 9 });
        mk ~id:1 ~addr:(at 1) Basic_block.Return;
      |]
  in
  checkb "dangling return_to flagged" true (has Finding.Dangling_return s)

let test_structural_entry_and_ids () =
  let s = Lint.check_blocks ~entry:5 [| mk ~id:0 ~addr:(at 0) Basic_block.Halt |] in
  checkb "entry out of range" true (has Finding.Entry_out_of_range s);
  let s = Lint.check_blocks ~entry:0 [| mk ~id:1 ~addr:(at 0) Basic_block.Halt |] in
  checkb "id mismatch" true (has Finding.Id_mismatch s);
  let s = Lint.check_blocks ~entry:0 [| mk ~bytes:0 ~id:0 ~addr:(at 0) Basic_block.Halt |] in
  checkb "nonpositive extent" true (has Finding.Nonpositive_extent s)

let test_structural_layout () =
  (* User block below its region. *)
  let s =
    Lint.check_blocks ~entry:0 [| mk ~id:0 ~addr:(ub - Addr.line_size) Basic_block.Halt |]
  in
  checkb "region violation" true (has Finding.Region_violation s);
  (* Two blocks sharing bytes. *)
  let s =
    Lint.check_blocks ~entry:0
      [|
        mk ~id:0 ~addr:(at 0) (Basic_block.Fallthrough 1);
        mk ~id:1 ~addr:(at 0 + 32) Basic_block.Halt;
      |]
  in
  checkb "overlap" true (has Finding.Overlapping_blocks s);
  (* Alignment requested but not honoured. *)
  let s =
    Lint.check_blocks ~entry:0 ~aligned:[| true |]
      [| mk ~id:0 ~addr:(at 0 + 8) Basic_block.Halt |]
  in
  checkb "misaligned" true (has Finding.Misaligned_block s)

let test_structural_orphan_is_info () =
  let s =
    Lint.check_blocks ~entry:0
      [|
        mk ~id:0 ~addr:(at 0) (Basic_block.Jump 0);
        mk ~id:1 ~addr:(at 1) Basic_block.Halt;
      |]
  in
  checkb "orphan flagged" true (flagged Finding.Unreachable_block ~block:1 s);
  checki "as info only" 0 (Lint.exit_code s);
  checki "no errors" 0 s.Lint.errors;
  checki "no warnings" 0 s.Lint.warnings;
  checki "one info" 1 s.Lint.infos

let test_structural_gate_skips_hints () =
  (* A broken graph carrying a hint: the hint must not be classified. *)
  let s =
    Lint.check_blocks ~entry:0
      [| mk ~hints:[| Basic_block.Invalidate (line_at 1) |] ~id:0 ~addr:(at 0) (Basic_block.Jump 9) |]
  in
  checkb "gate set" true s.Lint.structural_gate;
  checki "no hints classified" 0 s.Lint.hints.Lint.total

(* ---------------------------- dominance ----------------------------- *)

let test_dominance_diamond () =
  let succs = [| [ 1; 2 ]; [ 3 ]; [ 3 ]; [] |] in
  let d = Dominance.compute ~n:4 ~entry:0 ~succs:(fun i -> succs.(i)) in
  checkb "idom 1 = 0" true (Dominance.idom d 1 = Some 0);
  checkb "idom 2 = 0" true (Dominance.idom d 2 = Some 0);
  checkb "join dominated by fork" true (Dominance.idom d 3 = Some 0);
  checkb "entry has no idom" true (Dominance.idom d 0 = None);
  checkb "0 dominates 3" true (Dominance.dominates d ~dom:0 3);
  checkb "1 does not dominate 3" false (Dominance.dominates d ~dom:1 3);
  checkb "reflexive" true (Dominance.dominates d ~dom:3 3)

let test_dominance_loop_and_unreachable () =
  let succs = [| [ 1 ]; [ 2 ]; [ 1; 3 ]; []; [ 0 ] |] in
  let d = Dominance.compute ~n:5 ~entry:0 ~succs:(fun i -> succs.(i)) in
  checkb "idom of loop body" true (Dominance.idom d 2 = Some 1);
  checkb "loop head dominates exit" true (Dominance.dominates d ~dom:1 3);
  checkb "node 4 unreachable" false (Dominance.is_reachable d 4);
  checkb "unreachable has no idom" true (Dominance.idom d 4 = None);
  checkb "nothing dominates unreachable" false (Dominance.dominates d ~dom:0 4)

let test_post_dominance () =
  let blocks =
    [|
      mk ~id:0 ~addr:(at 0) (Basic_block.Cond { taken = 1; fallthrough = 2 });
      mk ~id:1 ~addr:(at 1) (Basic_block.Jump 3);
      mk ~id:2 ~addr:(at 2) (Basic_block.Jump 3);
      mk ~id:3 ~addr:(at 3) Basic_block.Return;
    |]
  in
  let pd = Dominance.post_of_blocks blocks in
  checkb "join post-dominates fork" true (Dominance.dominates pd ~dom:3 0);
  checkb "arm does not post-dominate fork" false (Dominance.dominates pd ~dom:1 0);
  (* The virtual exit (index n) post-dominates everything. *)
  checkb "virtual exit post-dominates" true (Dominance.dominates pd ~dom:4 0)

(* ---------------------------- liveness ------------------------------ *)

let test_liveness_chain () =
  let blocks =
    [|
      mk ~id:0 ~addr:(at 0) (Basic_block.Fallthrough 1);
      mk ~id:1 ~addr:(at 1) (Basic_block.Fallthrough 2);
      mk ~id:2 ~addr:(at 2) Basic_block.Halt;
    |]
  in
  let l = Liveness.compute ~blocks ~tracked:[| line_at 2 |] in
  checkb "live at distance" true (Liveness.live_in l ~block:0 ~line:(line_at 2));
  checkb "live at use" true (Liveness.live_in l ~block:2 ~line:(line_at 2));
  checkb "dead past last use" false (Liveness.live_out l ~block:2 ~line:(line_at 2));
  checkb "untracked line is dead" false (Liveness.live_in l ~block:0 ~line:(line_at 1))

let test_liveness_hint_kills () =
  let blocks =
    [|
      mk ~id:0 ~addr:(at 0) (Basic_block.Fallthrough 1);
      mk
        ~hints:[| Basic_block.Invalidate (line_at 2) |]
        ~id:1 ~addr:(at 1) (Basic_block.Fallthrough 2);
      mk ~id:2 ~addr:(at 2) Basic_block.Halt;
    |]
  in
  let l = Liveness.compute ~blocks ~tracked:[| line_at 2 |] in
  checkb "hint kills upstream liveness" false (Liveness.live_in l ~block:0 ~line:(line_at 2));
  checkb "use below hint still live" true (Liveness.live_in l ~block:2 ~line:(line_at 2))

let test_liveness_gen_beats_kill () =
  (* A block that references then invalidates a line still exposes the
     reference to its predecessors (code runs before hints). *)
  let blocks =
    [|
      mk ~id:0 ~addr:(at 0) (Basic_block.Fallthrough 1);
      mk ~hints:[| Basic_block.Invalidate (line_at 1) |] ~id:1 ~addr:(at 1) Basic_block.Halt;
    |]
  in
  let l = Liveness.compute ~blocks ~tracked:[| line_at 1 |] in
  checkb "self-reference wins" true (Liveness.live_in l ~block:1 ~line:(line_at 1));
  checkb "propagates upstream" true (Liveness.live_in l ~block:0 ~line:(line_at 1))

(* ------------------------- classification --------------------------- *)

(* Tiny cache: 2 ways x 4 sets, so blocks 4 lines apart conflict. *)
let tiny_geometry = Geometry.v ~size_bytes:(2 * 4 * Addr.line_size) ~ways:2

let classify blocks = Icheck.classify ~geometry:tiny_geometry ~entry:0 blocks

let test_classify_harmful_direct () =
  let blocks =
    [|
      mk
        ~hints:[| Basic_block.Invalidate (line_at 1) |]
        ~id:0 ~addr:(at 0) (Basic_block.Fallthrough 1);
      mk ~id:1 ~addr:(at 1) Basic_block.Halt;
    |]
  in
  match classify blocks with
  | [ (site, Icheck.Harmful { reuse_block; conflicts }) ] ->
    checki "site block" 0 site.Icheck.block;
    checkb "site line" true (site.Icheck.line = line_at 1);
    checki "reused by successor" 1 reuse_block;
    checki "no conflicts on the path" 0 conflicts
  | _ -> Alcotest.fail "expected one harmful classification"

let test_classify_safe_dead () =
  (* Victim line belongs to a block no path from the hint reaches. *)
  let blocks =
    [|
      mk ~hints:[| Basic_block.Invalidate (line_at 1) |] ~id:0 ~addr:(at 0) Basic_block.Halt;
      mk ~id:1 ~addr:(at 1) Basic_block.Halt;
    |]
  in
  (match classify blocks with
  | [ (_, Icheck.Safe_dead) ] -> ()
  | _ -> Alcotest.fail "expected safe (dead)")

let test_classify_safe_pressure () =
  (* Reuse exists, but both paths first touch [ways] = 2 distinct lines
     of the victim's set (blocks 4 and 8 lines in, same set as 12). *)
  let blocks =
    [|
      mk
        ~hints:[| Basic_block.Invalidate (line_at 12) |]
        ~id:0 ~addr:(at 0) (Basic_block.Fallthrough 1);
      mk ~id:1 ~addr:(at 4) (Basic_block.Fallthrough 2);
      mk ~id:2 ~addr:(at 8) (Basic_block.Fallthrough 3);
      mk ~id:3 ~addr:(at 12) Basic_block.Halt;
    |]
  in
  (match classify blocks with
  | [ (_, Icheck.Safe_pressure) ] -> ()
  | _ -> Alcotest.fail "expected safe (pressure)");
  (* Remove one conflicting block: 1 < ways conflicts, harmful again. *)
  let blocks =
    [|
      mk
        ~hints:[| Basic_block.Invalidate (line_at 12) |]
        ~id:0 ~addr:(at 0) (Basic_block.Fallthrough 1);
      mk ~id:1 ~addr:(at 4) (Basic_block.Fallthrough 2);
      mk ~id:2 ~addr:(at 12) Basic_block.Halt;
    |]
  in
  match classify blocks with
  | [ (_, Icheck.Harmful { conflicts; _ }) ] -> checki "one conflict" 1 conflicts
  | _ -> Alcotest.fail "expected harmful with one conflict"

let test_classify_redundant () =
  let l = line_at 100 in
  let blocks =
    [|
      mk ~hints:[| Basic_block.Invalidate l |] ~id:0 ~addr:(at 0) (Basic_block.Fallthrough 1);
      mk ~hints:[| Basic_block.Invalidate l |] ~id:1 ~addr:(at 1) Basic_block.Halt;
    |]
  in
  (match classify blocks with
  | [ (_, Icheck.Safe_dead); (site, Icheck.Redundant { earlier }) ] ->
    checki "redundant site" 1 site.Icheck.block;
    checki "witness" 0 earlier
  | _ -> Alcotest.fail "expected dead + redundant");
  (* Degenerate case: a duplicate inside one block. *)
  let blocks =
    [| mk ~hints:[| Basic_block.Invalidate l; Basic_block.Invalidate l |] ~id:0 ~addr:(at 0) Basic_block.Halt |]
  in
  match classify blocks with
  | [ (_, Icheck.Safe_dead); (_, Icheck.Redundant { earlier }) ] -> checki "same block" 0 earlier
  | _ -> Alcotest.fail "expected dead + same-block redundant"

let test_classify_reference_defeats_redundancy () =
  (* The second hint's own block re-references the line first, so it is
     not redundant (and, having no successors, it is dead). *)
  let blocks =
    [|
      mk
        ~hints:[| Basic_block.Invalidate (line_at 1) |]
        ~id:0 ~addr:(at 0) (Basic_block.Fallthrough 1);
      mk ~hints:[| Basic_block.Invalidate (line_at 1) |] ~id:1 ~addr:(at 1) Basic_block.Halt;
    |]
  in
  match classify blocks with
  | [ (_, Icheck.Harmful _); (_, Icheck.Safe_dead) ] -> ()
  | _ -> Alcotest.fail "expected harmful then safe (dead)"

let test_classify_prunes_at_reinvalidation () =
  (* A second hint on the same line between hint and reuse shields the
     upstream hint (past the re-invalidation the line misses regardless
     of what the first hint did), and the second hint is itself
     redundant: the dominating first hint already left the line
     invalid.  The reuse at bb2 misses either way; neither hint alone
     converts a hit. *)
  let blocks =
    [|
      mk
        ~hints:[| Basic_block.Invalidate (line_at 12) |]
        ~id:0 ~addr:(at 0) (Basic_block.Fallthrough 1);
      mk
        ~hints:[| Basic_block.Invalidate (line_at 12) |]
        ~id:1 ~addr:(at 1) (Basic_block.Fallthrough 2);
      mk ~id:2 ~addr:(at 12) Basic_block.Halt;
    |]
  in
  match classify blocks with
  | [ (_, Icheck.Safe_dead); (site, Icheck.Redundant { earlier }) ] ->
    checki "redundant site" 1 site.Icheck.block;
    checki "dominating witness" 0 earlier
  | _ -> Alcotest.fail "expected shielded dead + redundant"

(* ------------------------------ lint -------------------------------- *)

let harmful_blocks ~demote =
  let hint =
    if demote then Basic_block.Demote (line_at 1) else Basic_block.Invalidate (line_at 1)
  in
  [|
    mk ~hints:[| hint |] ~id:0 ~addr:(at 0) (Basic_block.Fallthrough 1);
    mk ~id:1 ~addr:(at 1) Basic_block.Halt;
  |]

let test_lint_harmful_severity () =
  (* Unjustified harmful invalidation: an error. *)
  let s =
    Lint.check_blocks ~geometry:tiny_geometry ~entry:0 (harmful_blocks ~demote:false)
  in
  checki "error without provenance" 2 (Lint.exit_code s);
  checki "harmful counted" 1 s.Lint.hints.Lint.harmful;
  (* The same hint with quoted profile evidence: an audit warning. *)
  let provenance =
    [ { Lint.block = 0; line = line_at 1; probability = 0.9; windows = 5 } ]
  in
  let s =
    Lint.check_blocks ~geometry:tiny_geometry ~provenance ~entry:0
      (harmful_blocks ~demote:false)
  in
  checki "warning with provenance" 1 (Lint.exit_code s);
  checki "no errors" 0 s.Lint.errors;
  (match s.Lint.findings with
  | [ f ] -> checkb "quotes the evidence" true (contains f.Finding.message "P=0.90")
  | _ -> Alcotest.fail "expected exactly one finding");
  (* A harmful demotion never errors. *)
  let s = Lint.check_blocks ~geometry:tiny_geometry ~entry:0 (harmful_blocks ~demote:true) in
  checki "demotion is a warning" 1 (Lint.exit_code s)

let test_lint_outside_footprint () =
  let blocks =
    [| mk ~hints:[| Basic_block.Invalidate (line_at 4096) |] ~id:0 ~addr:(at 0) Basic_block.Halt |]
  in
  let s = Lint.check_blocks ~entry:0 blocks in
  checkb "flagged" true (has Finding.Hint_outside_footprint s);
  checki "warning" 1 (Lint.exit_code s)

let test_lint_clean_program () =
  let b = Builder.create () in
  let b0 = Builder.block b ~bytes:64 ~term:Basic_block.Halt () in
  let b1 = Builder.block b ~bytes:64 ~term:Basic_block.Halt () in
  Builder.set_term b b0 (Basic_block.Fallthrough b1);
  let program = Builder.finish b ~entry:b0 in
  let s = Lint.check_program program in
  checki "no findings" 0 (List.length s.Lint.findings);
  checki "exit 0" 0 (Lint.exit_code s);
  checkb "no max severity" true (Lint.max_severity s = None)

let test_lint_json () =
  let s = Lint.check_blocks ~geometry:tiny_geometry ~entry:0 (harmful_blocks ~demote:false) in
  let j = Lint.to_json s in
  checkb "errors field" true (Json.member "errors" j = Some (Json.Int 1));
  checkb "gate field" true (Json.member "structural_gate" j = Some (Json.Bool false));
  match Json.member "hints" j with
  | Some h -> checkb "hint totals" true (Json.member "total" h = Some (Json.Int 1))
  | None -> Alcotest.fail "missing hints object"

(* --------------------- qcheck: mutation flagging -------------------- *)

let tiny_model seed =
  {
    W.Apps.verilator with
    W.App_model.name = "tiny";
    seed;
    n_functions = 12;
    hot_functions = 4;
    handler_blocks = 8;
    blocks_per_function = 6;
  }

let tiny_program seed = (W.Cfg_gen.generate (tiny_model seed)).W.Cfg_gen.program

let lint_mutated program blocks =
  Lint.check_blocks ~entry:(Program.entry program) blocks

let prop_mutation_dangling =
  QCheck.Test.make ~count:15 ~name:"lint flags a dangling successor"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let program = tiny_program seed in
      let blocks = Array.copy (Program.blocks program) in
      let n = Array.length blocks in
      let i = seed mod n in
      blocks.(i) <- { blocks.(i) with Basic_block.term = Basic_block.Jump (n + 5) };
      has Finding.Dangling_successor (lint_mutated program blocks))

let prop_mutation_overlap =
  QCheck.Test.make ~count:15 ~name:"lint flags overlapping byte ranges"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let program = tiny_program seed in
      let blocks = Array.copy (Program.blocks program) in
      let n = Array.length blocks in
      let i = seed mod n in
      (* Land on another block of the same privilege so the only broken
         invariant is the overlap. *)
      let j = ref ((i + 1) mod n) in
      while
        blocks.(!j).Basic_block.privilege <> blocks.(i).Basic_block.privilege || !j = i
      do
        j := (!j + 1) mod n
      done;
      blocks.(i) <- { blocks.(i) with Basic_block.addr = blocks.(!j).Basic_block.addr };
      has Finding.Overlapping_blocks (lint_mutated program blocks))

let prop_mutation_orphan =
  QCheck.Test.make ~count:15 ~name:"lint flags an appended orphan block"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let program = tiny_program seed in
      let old = Program.blocks program in
      let n = Array.length old in
      let max_end =
        Array.fold_left
          (fun acc (b : Basic_block.t) ->
            if b.Basic_block.privilege = Basic_block.User then
              max acc (b.Basic_block.addr + b.Basic_block.bytes)
            else acc)
          ub old
      in
      let orphan = mk ~id:n ~addr:(max_end + Addr.line_size) Basic_block.Halt in
      let blocks = Array.append old [| orphan |] in
      flagged Finding.Unreachable_block ~block:n (lint_mutated program blocks))

(* ------------------- nine apps, paper defaults ---------------------- *)

let test_nine_apps_no_errors () =
  List.iter
    (fun (m : W.App_model.t) ->
      let w = W.Cfg_gen.generate m in
      let program = w.W.Cfg_gen.program in
      let profile = W.Executor.run w ~input:W.Executor.train ~n_instrs:100_000 in
      let analysis =
        (Pipeline.run
           { Pipeline.Options.default with verify = true; prefetch = Pipeline.Fdip }
           ~source:program (Pipeline.Trace profile))
          .Pipeline.analysis
      in
      match analysis.Pipeline.lint with
      | None -> Alcotest.fail "verify = true must attach a lint summary"
      | Some s ->
        checki (m.W.App_model.name ^ ": no error findings") 0 s.Lint.errors;
        checki
          (m.W.App_model.name ^ ": hints all classified")
          analysis.Pipeline.injection.Injector.injected s.Lint.hints.Lint.total)
    W.Apps.all

(* ----------------- satellite: cue-block drop report ----------------- *)

(* The Fig. 5 scenario from test_core: victim line 100 evicted twice,
   block 2 the best cue in both windows at P = 1.0. *)
let drops_scenario () =
  let d ~line ~block = Access.demand ~line ~block in
  let stream =
    [|
      d ~line:50 ~block:9; d ~line:100 ~block:5; d ~line:60 ~block:1; d ~line:61 ~block:2;
      d ~line:62 ~block:3; d ~line:60 ~block:1; d ~line:62 ~block:3; d ~line:62 ~block:3;
      d ~line:100 ~block:5; d ~line:60 ~block:1; d ~line:61 ~block:2; d ~line:62 ~block:3;
      d ~line:60 ~block:1; d ~line:62 ~block:3; d ~line:62 ~block:3;
    |]
  in
  let windows =
    [|
      { Eviction_window.victim = 100; start = 1; stop = 4 };
      { Eviction_window.victim = 100; start = 8; stop = 11 };
    |]
  in
  let exec_counts = Array.make 10 0 in
  Array.iter
    (fun (a : Access.t) -> exec_counts.(a.Access.block) <- exec_counts.(a.Access.block) + 1)
    stream;
  (Ripple_cache.Access_stream.of_array stream, windows, exec_counts)

let partition_holds (d : Cue_block.drops) =
  d.Cue_block.no_candidate + d.Cue_block.below_support + d.Cue_block.below_threshold
  + d.Cue_block.selected
  = d.Cue_block.windows_total

let test_drop_report () =
  let stream, windows, exec_counts = drops_scenario () in
  let report threshold min_support =
    snd (Cue_block.analyze_report ~min_support ~stream ~windows ~exec_counts ~threshold ())
  in
  let d = report 0.6 2 in
  checki "total" 2 d.Cue_block.windows_total;
  checki "selected" 2 d.Cue_block.selected;
  checki "none dropped" 0
    (d.Cue_block.no_candidate + d.Cue_block.below_support + d.Cue_block.below_threshold);
  checkb "partition" true (partition_holds d);
  (* Impossible threshold: same windows fall out for the threshold. *)
  let d = report 1.01 2 in
  checki "below threshold" 2 d.Cue_block.below_threshold;
  checki "nothing selected" 0 d.Cue_block.selected;
  checkb "partition" true (partition_holds d);
  (* Unreachable support floor. *)
  let d = report 0.6 99 in
  checki "below support" 2 d.Cue_block.below_support;
  checkb "partition" true (partition_holds d);
  (* No executed candidate at all. *)
  let stream, windows, _ = drops_scenario () in
  let d =
    snd
      (Cue_block.analyze_report ~min_support:2 ~stream ~windows
         ~exec_counts:(Array.make 10 0) ~threshold:0.6 ())
  in
  checki "no candidate" 2 d.Cue_block.no_candidate;
  checkb "partition" true (partition_holds d)

let test_drop_report_agrees_with_analyze () =
  let stream, windows, exec_counts = drops_scenario () in
  let decisions =
    Cue_block.analyze ~min_support:2 ~stream ~windows ~exec_counts ~threshold:0.6 ()
  in
  let decisions', d =
    Cue_block.analyze_report ~min_support:2 ~stream ~windows ~exec_counts ~threshold:0.6 ()
  in
  checkb "same decisions" true (decisions = decisions');
  checki "selected windows behind the decisions" 2 d.Cue_block.selected

(* ---------------- satellite: injector provenance -------------------- *)

let test_injector_placements () =
  let b = Builder.create () in
  let b0 = Builder.block b ~bytes:64 ~term:Basic_block.Halt () in
  let b1 = Builder.block b ~bytes:64 ~term:Basic_block.Halt () in
  let b2 = Builder.block b ~bytes:64 ~term:Basic_block.Halt () in
  Builder.set_term b b0 (Basic_block.Fallthrough b1);
  Builder.set_term b b1 (Basic_block.Fallthrough b2);
  let program = Builder.finish b ~entry:b0 in
  let victim = Addr.line_of (Program.block program b2).Basic_block.addr in
  let decisions =
    [ { Cue_block.cue_block = b0; victim; probability = 0.8; windows = 4 } ]
  in
  let instrumented, _, stats = Injector.inject ~program ~decisions () in
  match stats.Injector.placements with
  | [ p ] ->
    checki "cue block" b0 p.Injector.block;
    checkf "probability" 0.8 p.Injector.probability;
    checki "window support" 4 p.Injector.windows;
    (* The placement's line is the post-remap operand actually injected. *)
    let hints = (Program.block instrumented b0).Basic_block.hints in
    checki "one hint placed" 1 (Array.length hints);
    checkb "operand matches" true (Basic_block.hint_line hints.(0) = p.Injector.line)
  | _ -> Alcotest.fail "expected exactly one placement"

(* ------------------ satellite: pipeline verify gate ----------------- *)

let test_pipeline_verify_gate () =
  let w = W.Cfg_gen.generate (tiny_model 17) in
  let program = w.W.Cfg_gen.program in
  let profile = W.Executor.run w ~input:W.Executor.train ~n_instrs:100_000 in
  let instrument verify =
    (Pipeline.run
       { Pipeline.Options.default with verify; prefetch = Pipeline.No_prefetch }
       ~source:program (Pipeline.Trace profile))
      .Pipeline.analysis
  in
  let off = instrument false in
  checkb "off by default" true (off.Pipeline.lint = None);
  let on = instrument true in
  (match on.Pipeline.lint with
  | None -> Alcotest.fail "verify must attach a summary"
  | Some s -> checki "no errors on its own output" 0 s.Lint.errors);
  (* Drop accounting covers every window either way. *)
  checki "drops cover all windows" on.Pipeline.n_windows
    on.Pipeline.drops.Cue_block.windows_total;
  checkb "partition" true (partition_holds on.Pipeline.drops)

(* --------------- layer 4: the dataflow engine (Fixpoint) ------------- *)

module Fixpoint = Ripple_analysis.Fixpoint
module Abs = Ripple_analysis.Abs_cache
module Cache = Ripple_cache.Cache
module Registry = Ripple_cache.Registry
module Simulator = Ripple_cpu.Simulator

(* Integers under [max]: the simplest tall chain, enough to exercise
   plain convergence, joins and widening. *)
module FMax = Fixpoint.Make (struct
  type t = int

  let equal = Int.equal
  let join = max
end)

let test_fixpoint_straight_line () =
  (* 0 -> 1 -> 2 counts path length; node 3 is disconnected. *)
  let r =
    FMax.solve ~n:4 ~entries:[ (0, 0) ]
      ~preds:[| []; [ 0 ]; [ 1 ]; [] |]
      ~transfer:(fun _ x -> x + 1)
      ()
  in
  checkb "entry in" true (r.FMax.in_.(0) = Some 0);
  checkb "entry out" true (r.FMax.out.(0) = Some 1);
  checkb "chain end" true (r.FMax.out.(2) = Some 3);
  checkb "disconnected node stays bottom" true
    (r.FMax.in_.(3) = None && r.FMax.out.(3) = None)

let test_fixpoint_diamond_join () =
  (* Arms add 1 and 5: the merge point must see the lub, not an arm. *)
  let r =
    FMax.solve ~n:4 ~entries:[ (0, 0) ]
      ~preds:[| []; [ 0 ]; [ 0 ]; [ 1; 2 ] |]
      ~transfer:(fun v x -> if v = 1 then x + 1 else if v = 2 then x + 5 else x)
      ()
  in
  checkb "join of arms" true (r.FMax.in_.(3) = Some 5)

let test_fixpoint_loop_saturates () =
  (* A self loop under a capped increment climbs to the cap and stops,
     with no widening involved. *)
  let r =
    FMax.solve ~n:1 ~entries:[ (0, 0) ]
      ~preds:[| [ 0 ] |]
      ~transfer:(fun _ x -> min (x + 1) 10)
      ()
  in
  checkb "reaches the cap" true (r.FMax.in_.(0) = Some 10);
  checkb "climbed, not guessed" true (r.FMax.stats.Fixpoint.iterations > 5);
  checki "no widening configured" 0 r.FMax.stats.Fixpoint.widenings

let test_fixpoint_widening () =
  (* The same loop with a 1e6 cap would take ~1e6 refreshes; a
     jump-to-cap widening after 3 must terminate it almost at once. *)
  let cap = 1_000_000 in
  let r =
    FMax.solve
      ~widen:(fun old fresh -> if fresh > old then cap else old)
      ~widen_after:3 ~n:1 ~entries:[ (0, 0) ]
      ~preds:[| [ 0 ] |]
      ~transfer:(fun _ x -> min (x + 1) cap)
      ()
  in
  checkb "widened to the cap" true (r.FMax.in_.(0) = Some cap);
  checkb "widening fired" true (r.FMax.stats.Fixpoint.widenings > 0);
  checkb "terminated early" true (r.FMax.stats.Fixpoint.iterations < 100)

(* --------------- layer 4: abstract cache interpretation -------------- *)

let abs_analyze blocks = Abs.analyze ~geometry:tiny_geometry ~entry:0 blocks
let fact abs ~block ~index = (Abs.facts abs).(block).(index)
let set_of line = Geometry.set_of_line tiny_geometry line

let test_abs_must_hit_and_always_miss () =
  (* Two half-line blocks sharing one line; the second invalidates it.
     Set 0's only reachable line is that one, so it is persistent. *)
  let with_hint hints =
    [|
      mk ~bytes:32 ~id:0 ~addr:(at 0) (Basic_block.Fallthrough 1);
      mk ~bytes:32 ~hints ~id:1 ~addr:(at 0 + 32) Basic_block.Halt;
    |]
  in
  let abs = abs_analyze (with_hint [| Basic_block.Invalidate (line_at 0) |]) in
  let f1 = fact abs ~block:1 ~index:0 in
  checkb "hit after the touch" true f1.Abs.must_hit;
  checkb "must implies must-LRU" true f1.Abs.must_hit_lru;
  (* The invalidation flows around the halt-to-entry closure edge, so
     block 0's access is may-absent on every incoming path. *)
  let f0 = fact abs ~block:0 ~index:0 in
  checkb "guaranteed cold miss" true f0.Abs.always_miss;
  checkb "not a must hit" false f0.Abs.must_hit;
  checkb "invalidation defeats first-miss-only" false (Abs.first_miss_only abs (line_at 0));
  (* Without the hint the closure loop keeps the line may-resident. *)
  let abs = abs_analyze (with_hint [||]) in
  let f0 = fact abs ~block:0 ~index:0 in
  checkb "no longer always-miss" false f0.Abs.always_miss;
  checkb "persistent set" true (Abs.persistent abs ~set:(set_of (line_at 0)));
  checkb "first-miss-only" true (Abs.first_miss_only abs (line_at 0))

let test_abs_conflict_vs_fit () =
  (* Three set-0 lines across a diamond overflow 2 ways: no
     policy-independent must fact survives the join, but the LRU age
     bound (one conflict on either arm) still proves the re-reference
     hits under LRU specifically. *)
  let diamond arm1 arm2 =
    [|
      mk ~bytes:32 ~id:0 ~addr:(at 0) (Basic_block.Cond { taken = 1; fallthrough = 2 });
      mk ~id:1 ~addr:arm1 (Basic_block.Jump 3);
      mk ~id:2 ~addr:arm2 (Basic_block.Jump 3);
      mk ~bytes:32 ~id:3 ~addr:(at 0 + 32) Basic_block.Halt;
    |]
  in
  let abs = abs_analyze (diamond (at 4) (at 8)) in
  let f = fact abs ~block:3 ~index:0 in
  checkb "no policy-independent proof" false f.Abs.must_hit;
  checkb "LRU age bound proves it" true f.Abs.must_hit_lru;
  checkb "set overflows" false (Abs.persistent abs ~set:(set_of (line_at 0)));
  (* Move the arms to other sets: the whole set-0 working set fits. *)
  let abs = abs_analyze (diamond (at 1) (at 2)) in
  let f = fact abs ~block:3 ~index:0 in
  checkb "must hit under every policy" true f.Abs.must_hit;
  checkb "set fits" true (Abs.persistent abs ~set:(set_of (line_at 0)))

let test_abs_verdicts () =
  let l = line_at 0 in
  (* Dead: a second invalidation of the same line later in the block
     shields the first; the second then finds the line may-absent. *)
  let abs =
    abs_analyze
      [|
        mk ~bytes:32 ~id:0 ~addr:(at 0) (Basic_block.Fallthrough 1);
        mk ~bytes:32
          ~hints:[| Basic_block.Invalidate l; Basic_block.Invalidate l |]
          ~id:1 ~addr:(at 0 + 32) Basic_block.Halt;
      |]
  in
  checkb "first is dead" true (Abs.prove abs ~block:1 ~index:0 = Abs.Proved_dead);
  checkb "second is a no-op" true (Abs.prove abs ~block:1 ~index:1 = Abs.Proved_noop);
  checkb "dead is safe" true (Abs.proved_safe Abs.Proved_dead);
  checkb "no-op is not kept" false (Abs.proved_safe Abs.Proved_noop);
  (* Persistent: a demotion in a set that fits never costs anything —
     the victim preference it expresses is never consulted. *)
  let abs =
    abs_analyze
      [|
        mk ~bytes:32 ~id:0 ~addr:(at 0) (Basic_block.Fallthrough 1);
        mk ~bytes:32 ~hints:[| Basic_block.Demote l |] ~id:1 ~addr:(at 0 + 32)
          Basic_block.Halt;
      |]
  in
  checkb "demote in a fitting set" true
    (Abs.prove abs ~block:1 ~index:0 = Abs.Proved_persistent);
  (* Pressure: both conflicting lines (= ways) precede the only
     re-reference, mirroring the path-search safe-pressure scenario. *)
  let abs =
    abs_analyze
      [|
        mk
          ~hints:[| Basic_block.Invalidate (line_at 12) |]
          ~id:0 ~addr:(at 0) (Basic_block.Fallthrough 1);
        mk ~id:1 ~addr:(at 4) (Basic_block.Fallthrough 2);
        mk ~id:2 ~addr:(at 8) (Basic_block.Fallthrough 3);
        mk ~id:3 ~addr:(at 12) Basic_block.Halt;
      |]
  in
  checkb "evicted anyway" true (Abs.prove abs ~block:0 ~index:0 = Abs.Proved_pressure);
  (* An operand outside the text can never change cache contents. *)
  let abs =
    abs_analyze
      [|
        mk ~hints:[| Basic_block.Invalidate (line_at 4096) |] ~id:0 ~addr:(at 0)
          Basic_block.Halt;
      |]
  in
  checkb "outside footprint is a no-op" true
    (Abs.prove abs ~block:0 ~index:0 = Abs.Proved_noop)

let test_lint_classifier_disagreement () =
  (* Reuse that flows only through the Return resumption: the path
     search (bare flow graph, Return is a sink) calls the hint dead,
     the abstract proofs (closed graph) prove it converts a guaranteed
     hit into a guaranteed miss.  The cross-check must fire as an
     error. *)
  let blocks =
    [|
      mk ~id:0 ~addr:(at 0) (Basic_block.Call { callee = 1; return_to = 2 });
      mk ~hints:[| Basic_block.Invalidate (line_at 0) |] ~id:1 ~addr:(at 1) Basic_block.Return;
      mk ~id:2 ~addr:(at 2) Basic_block.Halt;
    |]
  in
  (match Icheck.classify_proved ~geometry:tiny_geometry ~entry:0 blocks with
  | [ (_, Icheck.Safe_dead, Abs.Proved_harmful) ] -> ()
  | [ (_, c, v) ] ->
    Alcotest.failf "expected safe_dead/proved_harmful, got %s/%s"
      (Icheck.classification_name c) (Abs.verdict_name v)
  | _ -> Alcotest.fail "expected exactly one hint site");
  checkb "pair is a disagreement" true
    (Icheck.disagreement Icheck.Safe_dead Abs.Proved_harmful);
  let s = Lint.check_blocks ~geometry:tiny_geometry ~entry:0 blocks in
  checkb "cross-check fired" true (has Finding.Classifier_disagreement s);
  checki "as an error" 2 (Lint.exit_code s);
  checki "counted" 1 s.Lint.proofs.Lint.disagreements;
  checki "harmful proof counted" 1 s.Lint.proofs.Lint.proved_harmful

let test_lint_proof_counters () =
  let s = Lint.check_blocks ~geometry:tiny_geometry ~entry:0 (harmful_blocks ~demote:false) in
  (* The path-search harmful verdict rests on a forward-slice witness
     the abstract domains cannot reproduce through the closure loop:
     unproved, and explicitly not a disagreement. *)
  checki "no disagreement" 0 s.Lint.proofs.Lint.disagreements;
  checki "unproved" 1 s.Lint.proofs.Lint.unproved;
  checki "none safe" 0 (Lint.proved_safe s.Lint.proofs);
  checkb "abstract summary attached" true (s.Lint.abstract <> None);
  (* The new sections render deterministically. *)
  let j1 = Json.to_string (Lint.to_json s) in
  let s2 = Lint.check_blocks ~geometry:tiny_geometry ~entry:0 (harmful_blocks ~demote:false) in
  let j2 = Json.to_string (Lint.to_json s2) in
  checkb "byte-deterministic" true (String.equal j1 j2);
  checkb "proofs section" true (contains j1 "\"proofs\"");
  checkb "abstract section" true (contains j1 "\"abstract\"")

(* ------------- qcheck: abstract facts vs concrete replay ------------- *)

(* Sprinkle deterministic hints over a generated program so the
   invalidate/demote transfer edges are exercised. *)
let with_random_hints seed program =
  let blocks = Program.blocks program in
  let n = Array.length blocks in
  let line_of i = List.hd (Basic_block.lines blocks.(i mod n)) in
  let hints =
    Array.init n (fun i ->
        if i = seed mod n then [ Basic_block.Invalidate (line_of (seed * 7)) ]
        else if i = ((seed * 3) + 1) mod n then [ Basic_block.Demote (line_of (seed * 13)) ]
        else [])
  in
  fst (Program.with_hints program ~hints)

(* Replay a concrete executor trace against the abstract facts.  The
   trace is a legal path of the closed graph (execution resumes at the
   dispatcher, which is the entry block), so every per-site claim must
   hold at every dynamic occurrence, from a cold cache. *)
let replay_agrees ~lru abs blocks trace ~geometry ~policy =
  let facts = Abs.facts abs in
  let cache = Cache.create ~geometry ~policy () in
  (* Must-hit facts assume install-on-miss; a bypassing policy (ship-sb)
     can legally miss on them.  Always-miss facts stay sound either way:
     bypassing only removes resident lines. *)
  let installs = not (Cache.may_bypass cache) in
  Array.for_all
    (fun b ->
      let fs = facts.(b) in
      let ok = ref true in
      List.iteri
        (fun index line ->
          let r = Cache.access cache (Access.demand ~line ~block:b) in
          if index < Array.length fs then begin
            let f = fs.(index) in
            if installs && f.Abs.must_hit && r <> Cache.Hit then ok := false;
            if installs && lru && f.Abs.must_hit_lru && r <> Cache.Hit then ok := false;
            if f.Abs.always_miss && r <> Cache.Miss then ok := false
          end)
        (Basic_block.lines blocks.(b));
      Array.iter
        (function
          | Basic_block.Invalidate l -> Cache.invalidate cache l
          | Basic_block.Demote l -> Cache.demote cache l)
        blocks.(b).Basic_block.hints;
      !ok)
    trace

let prop_abs_soundness =
  QCheck.Test.make ~count:8 ~name:"abstract facts sound in concrete replay (every policy)"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let w = W.Cfg_gen.generate (tiny_model seed) in
      let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:20_000 in
      let program = with_random_hints seed w.W.Cfg_gen.program in
      let blocks = Program.blocks program in
      List.for_all
        (fun geometry ->
          let abs = Abs.analyze ~geometry ~entry:(Program.entry program) blocks in
          List.for_all
            (fun (e : Registry.entry) ->
              replay_agrees
                ~lru:(String.equal e.Registry.name "lru")
                abs blocks trace ~geometry
                ~policy:(Registry.factory e.Registry.name))
            Registry.all)
        [ tiny_geometry; Geometry.l1i ])

let prop_abs_agreement =
  QCheck.Test.make ~count:8 ~name:"abstract never blesses a path-search harmful hint"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let program = with_random_hints seed (tiny_program seed) in
      List.for_all
        (fun (_, c, v) ->
          match c with
          | Icheck.Harmful _ -> not (Abs.proved_safe v)
          | _ -> true)
        (Icheck.classify_proved ~geometry:tiny_geometry ~entry:(Program.entry program)
           (Program.blocks program)))

(* -------------- nine apps: static bounds bracket reality ------------- *)

let test_nine_apps_bounds_bracket () =
  List.iter
    (fun (m : W.App_model.t) ->
      let w = W.Cfg_gen.generate m in
      let program = w.W.Cfg_gen.program in
      let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:100_000 in
      (* Evaluate on the very trace the profile (and hence the bounds'
         exec counts) came from, demand fetches only, cold start: the
         static bracket must contain the simulated miss count. *)
      let outcome =
        Pipeline.run
          {
            Pipeline.Options.default with
            verify = true;
            prefetch = Pipeline.No_prefetch;
            pt_roundtrip = false;
            eval = Some (Pipeline.Eval.v ~trace ~policy:(Registry.factory "lru") ());
          }
          ~source:program (Pipeline.Trace trace)
      in
      let name = m.W.App_model.name in
      let s =
        match outcome.Pipeline.analysis.Pipeline.lint with
        | Some s -> s
        | None -> Alcotest.fail (name ^ ": missing lint summary")
      in
      checkb (name ^ ": no cross-check finding") false
        (has Finding.Classifier_disagreement s);
      let a =
        match s.Lint.abstract with
        | Some a -> a
        | None -> Alcotest.fail (name ^ ": missing abstract summary")
      in
      let b =
        match a.Abs.bounds with
        | Some b -> b
        | None -> Alcotest.fail (name ^ ": missing static bounds")
      in
      let r =
        match outcome.Pipeline.evaluation with
        | Some e -> e.Pipeline.result
        | None -> Alcotest.fail (name ^ ": missing evaluation")
      in
      let misses = r.Simulator.demand_misses in
      checkb
        (Printf.sprintf "%s: %d <= %d <= %d" name b.Abs.lower_misses misses
           b.Abs.upper_misses)
        true
        (b.Abs.lower_misses <= misses && misses <= b.Abs.upper_misses);
      checkb (name ^ ": mpki bracket") true
        (b.Abs.mpki_lower <= r.Simulator.mpki +. 1e-9
        && r.Simulator.mpki <= b.Abs.mpki_upper +. 1e-9))
    W.Apps.all

(* ------------- degradation ladder: proven-safe allowlist ------------- *)

let test_proven_safe_ladder () =
  let w = W.Cfg_gen.generate (tiny_model 23) in
  let program = w.W.Cfg_gen.program in
  let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:100_000 in
  (* Salvage 0.9: good enough to keep hints (>= min_salvage) but below
     the full-trust bar, so the ladder lands on Safe_only. *)
  let profile = { Pipeline.trace; source = program; salvage = 0.9; pt_errors = 3 } in
  let run proven_safe =
    Pipeline.run
      {
        Pipeline.Options.default with
        degrade = true;
        proven_safe;
        verify = true;
        prefetch = Pipeline.No_prefetch;
      }
      ~source:program (Pipeline.Profile profile)
  in
  let legacy = run false in
  let proven = run true in
  let level (o : Pipeline.outcome) =
    o.Pipeline.analysis.Pipeline.degrade.Pipeline.Degrade.level
  in
  checkb "legacy lands on safe-only" true (level legacy = Pipeline.Degrade.Safe_only);
  checkb "proven lands on safe-only" true (level proven = Pipeline.Degrade.Safe_only);
  (* The allowlist run ships only hints with a positive safety proof. *)
  let verdicts (o : Pipeline.outcome) =
    Icheck.classify_proved ~geometry:Geometry.l1i
      ~entry:(Program.entry o.Pipeline.program)
      (Program.blocks o.Pipeline.program)
  in
  checkb "all shipped hints proved safe" true
    (List.for_all (fun (_, _, v) -> Abs.proved_safe v) (verdicts proven));
  (* The allowlist is a refinement: it strips at least as much as the
     legacy denylist ever did. *)
  let stripped (o : Pipeline.outcome) =
    o.Pipeline.analysis.Pipeline.degrade.Pipeline.Degrade.stripped
  in
  checkb "allowlist strips at least as much" true (stripped proven >= stripped legacy)

let suites =
  [
    ( "analysis.structural",
      [
        Alcotest.test_case "dangling edges" `Quick test_structural_dangling;
        Alcotest.test_case "entry and ids" `Quick test_structural_entry_and_ids;
        Alcotest.test_case "layout invariants" `Quick test_structural_layout;
        Alcotest.test_case "orphan is info" `Quick test_structural_orphan_is_info;
        Alcotest.test_case "errors gate hints" `Quick test_structural_gate_skips_hints;
      ] );
    ( "analysis.dominance",
      [
        Alcotest.test_case "diamond" `Quick test_dominance_diamond;
        Alcotest.test_case "loop and unreachable" `Quick test_dominance_loop_and_unreachable;
        Alcotest.test_case "post-dominators" `Quick test_post_dominance;
      ] );
    ( "analysis.liveness",
      [
        Alcotest.test_case "chain" `Quick test_liveness_chain;
        Alcotest.test_case "hint kills" `Quick test_liveness_hint_kills;
        Alcotest.test_case "gen beats kill" `Quick test_liveness_gen_beats_kill;
      ] );
    ( "analysis.classify",
      [
        Alcotest.test_case "harmful direct reuse" `Quick test_classify_harmful_direct;
        Alcotest.test_case "safe dead" `Quick test_classify_safe_dead;
        Alcotest.test_case "safe pressure" `Quick test_classify_safe_pressure;
        Alcotest.test_case "redundant" `Quick test_classify_redundant;
        Alcotest.test_case "reference defeats redundancy" `Quick
          test_classify_reference_defeats_redundancy;
        Alcotest.test_case "prunes at re-invalidation" `Quick
          test_classify_prunes_at_reinvalidation;
      ] );
    ( "analysis.lint",
      [
        Alcotest.test_case "harmful severity vs provenance" `Quick test_lint_harmful_severity;
        Alcotest.test_case "hint outside footprint" `Quick test_lint_outside_footprint;
        Alcotest.test_case "clean program" `Quick test_lint_clean_program;
        Alcotest.test_case "json shape" `Quick test_lint_json;
        Alcotest.test_case "nine apps, paper defaults: no errors" `Slow
          test_nine_apps_no_errors;
      ]
      @ List.map QCheck_alcotest.to_alcotest
          [ prop_mutation_dangling; prop_mutation_overlap; prop_mutation_orphan ] );
    ( "analysis.satellites",
      [
        Alcotest.test_case "cue-block drop report" `Quick test_drop_report;
        Alcotest.test_case "drop report agrees with analyze" `Quick
          test_drop_report_agrees_with_analyze;
        Alcotest.test_case "injector placements" `Quick test_injector_placements;
        Alcotest.test_case "pipeline verify gate" `Quick test_pipeline_verify_gate;
      ] );
    ( "analysis.fixpoint",
      [
        Alcotest.test_case "straight line" `Quick test_fixpoint_straight_line;
        Alcotest.test_case "diamond join" `Quick test_fixpoint_diamond_join;
        Alcotest.test_case "loop saturates" `Quick test_fixpoint_loop_saturates;
        Alcotest.test_case "widening" `Quick test_fixpoint_widening;
      ] );
    ( "analysis.abs_cache",
      [
        Alcotest.test_case "must hit and always miss" `Quick
          test_abs_must_hit_and_always_miss;
        Alcotest.test_case "conflict vs fit" `Quick test_abs_conflict_vs_fit;
        Alcotest.test_case "hint verdicts" `Quick test_abs_verdicts;
        Alcotest.test_case "classifier disagreement" `Quick test_lint_classifier_disagreement;
        Alcotest.test_case "proof counters and json" `Quick test_lint_proof_counters;
        Alcotest.test_case "proven-safe ladder" `Quick test_proven_safe_ladder;
        Alcotest.test_case "nine apps: bounds bracket simulation" `Slow
          test_nine_apps_bounds_bracket;
      ]
      @ List.map QCheck_alcotest.to_alcotest [ prop_abs_soundness; prop_abs_agreement ] );
  ]
