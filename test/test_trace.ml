(* Tests for ripple.trace: PT packets, trace encode/decode and basic
   block trace utilities. *)

module Addr = Ripple_isa.Addr
module Basic_block = Ripple_isa.Basic_block
module Builder = Ripple_isa.Builder
module Program = Ripple_isa.Program
module Packet = Ripple_trace.Packet
module Pt = Ripple_trace.Pt
module Bb_trace = Ripple_trace.Bb_trace
module W = Ripple_workloads

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* ------------------------------ Packet ------------------------------ *)

let roundtrip packets =
  let buf = Buffer.create 64 in
  List.iter (Packet.write buf) packets;
  let data = Buffer.to_bytes buf in
  let rec read pos acc =
    if pos >= Bytes.length data then List.rev acc
    else begin
      let p, next = Packet.read data ~pos in
      read next (p :: acc)
    end
  in
  read 0 []

let packet_eq a b =
  match (a, b) with
  | Packet.Tnt x, Packet.Tnt y -> x = y
  | Packet.Tip x, Packet.Tip y -> x = y
  | Packet.End_of_trace, Packet.End_of_trace -> true
  | _ -> false

let test_packet_tnt_roundtrip () =
  for n = 1 to Packet.max_tnt_bits do
    let bits = Array.init n (fun i -> i mod 2 = 0) in
    match roundtrip [ Packet.Tnt bits ] with
    | [ Packet.Tnt decoded ] -> check (Alcotest.array Alcotest.bool) "bits" bits decoded
    | _ -> Alcotest.fail "bad roundtrip"
  done

let test_packet_tip_roundtrip () =
  List.iter
    (fun addr ->
      match roundtrip [ Packet.Tip addr ] with
      | [ Packet.Tip decoded ] -> checki "addr" addr decoded
      | _ -> Alcotest.fail "bad roundtrip")
    [ 0; 1; 127; 128; 0x400000; 0x4000_0000; max_int / 2 ]

let test_packet_end () =
  match roundtrip [ Packet.End_of_trace ] with
  | [ Packet.End_of_trace ] -> ()
  | _ -> Alcotest.fail "bad roundtrip"

let test_packet_sequence () =
  let seq =
    [
      Packet.Tip 0x400000;
      Packet.Tnt [| true; false; true |];
      Packet.Tip 0x400040;
      Packet.Tnt [| false |];
      Packet.End_of_trace;
    ]
  in
  let decoded = roundtrip seq in
  checki "length" (List.length seq) (List.length decoded);
  List.iter2 (fun a b -> checkb "packet equal" true (packet_eq a b)) seq decoded

let prop_packet_roundtrip =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 30)
        (oneof
           [
             map (fun n -> Packet.Tip (abs n)) nat;
             map
               (fun bits -> Packet.Tnt (Array.of_list (true :: bits)))
               (list_size (int_range 0 (Packet.max_tnt_bits - 1)) bool);
           ]))
  in
  QCheck.Test.make ~count:200 ~name:"packet stream roundtrip" (QCheck.make gen) (fun packets ->
      let decoded = roundtrip packets in
      List.length decoded = List.length packets && List.for_all2 packet_eq packets decoded)

(* -------------------------------- Pt -------------------------------- *)

(* A small branchy program plus a legal trace through it. *)
let branchy_program () =
  let b = Builder.create () in
  let entry = Builder.block b ~aligned:true ~bytes:20 ~term:Basic_block.Halt () in
  let left = Builder.block b ~bytes:24 ~term:Basic_block.Halt () in
  let right = Builder.block b ~bytes:28 ~term:Basic_block.Halt () in
  let join = Builder.block b ~bytes:16 ~term:Basic_block.Halt () in
  let callee = Builder.block b ~aligned:true ~bytes:32 ~term:Basic_block.Return () in
  Builder.set_term b entry (Basic_block.Cond { taken = left; fallthrough = right });
  Builder.set_term b left (Basic_block.Jump join);
  Builder.set_term b right (Basic_block.Fallthrough join);
  Builder.set_term b join (Basic_block.Call { callee; return_to = entry });
  (Builder.finish b ~entry, entry, left, right, join, callee)

let test_pt_roundtrip_manual () =
  let program, entry, left, right, join, callee = branchy_program () in
  let trace =
    [| entry; left; join; callee; entry; right; join; callee; entry; left; join |]
  in
  let decoded = Pt.decode program (Pt.encode program trace) in
  check (Alcotest.array Alcotest.int) "roundtrip" trace decoded

let test_pt_empty () =
  let program, _, _, _, _, _ = branchy_program () in
  let decoded = Pt.decode program (Pt.encode program [||]) in
  checki "empty" 0 (Array.length decoded)

let test_pt_single_block () =
  let program, entry, _, _, _, _ = branchy_program () in
  let decoded = Pt.decode program (Pt.encode program [| entry |]) in
  check (Alcotest.array Alcotest.int) "single" [| entry |] decoded

let test_pt_rejects_broken_edge () =
  let program, entry, _, _, join, _ = branchy_program () in
  (* entry -> join is not an edge. *)
  Alcotest.check_raises "broken edge" (Invalid_argument "Pt.encode: broken conditional edge")
    (fun () -> ignore (Pt.encode program [| entry; join |]))

let test_pt_workload_roundtrip () =
  (* End-to-end: encode/decode a real executor trace. *)
  let w = W.Cfg_gen.generate { W.Apps.kafka with W.App_model.seed = 5 } in
  let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:60_000 in
  let program = w.W.Cfg_gen.program in
  let decoded = Pt.decode program (Pt.encode program trace) in
  check (Alcotest.array Alcotest.int) "roundtrip" trace decoded

let test_pt_compression () =
  let w = W.Cfg_gen.generate W.Apps.kafka in
  let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:60_000 in
  let ratio = Pt.compression_ratio w.W.Cfg_gen.program trace in
  (* The PT promise: well under a byte per basic block. *)
  checkb "under 1 byte per block" true (ratio < 1.0);
  checkb "positive" true (ratio > 0.0)

(* ----------------------------- Bb_trace ----------------------------- *)

let test_bb_trace_counts () =
  let program, entry, left, _, join, callee = branchy_program () in
  let trace = [| entry; left; join; callee; entry |] in
  let counts = Bb_trace.exec_counts program trace in
  checki "entry twice" 2 counts.(entry);
  checki "left once" 1 counts.(left);
  let per_block id = (Program.block program id).Basic_block.n_instrs in
  checki "instr total"
    (per_block entry + per_block left + per_block join + per_block callee + per_block entry)
    (Bb_trace.n_instrs program trace)

let test_bb_trace_hint_instrs () =
  let program, entry, _, _, _, _ = branchy_program () in
  let hints = Array.make (Program.n_blocks program) [] in
  hints.(entry) <- [ Basic_block.Invalidate 1; Basic_block.Invalidate 2 ];
  let instrumented, _ = Program.with_hints program ~hints in
  checki "hint execs" 4 (Bb_trace.n_hint_instrs instrumented [| entry; entry |]);
  checki "plain program zero" 0 (Bb_trace.n_hint_instrs program [| entry; entry |])

let test_bb_trace_demand_stream () =
  let program, entry, left, _, _, _ = branchy_program () in
  let trace = [| entry; left |] in
  let stream = Bb_trace.demand_stream program trace in
  let expected =
    List.length (Basic_block.lines (Program.block program entry))
    + List.length (Basic_block.lines (Program.block program left))
  in
  checki "stream length" expected (Ripple_trace.Access_stream.length stream);
  Ripple_trace.Access_stream.iter
    (fun acc -> checkb "all demand" true (Ripple_cache.Access.packed_is_demand acc))
    stream;
  checki "first access block" entry
    (Ripple_cache.Access.packed_block (Ripple_trace.Access_stream.get stream 0))

let test_bb_trace_kernel_fraction () =
  let b = Builder.create () in
  let u = Builder.block b ~bytes:16 ~term:Basic_block.Halt () in
  let k = Builder.block b ~privilege:Basic_block.Kernel ~bytes:16 ~term:Basic_block.Halt () in
  let program = Builder.finish b ~entry:u in
  check (Alcotest.float 1e-9) "half kernel" 0.5
    (Bb_trace.kernel_fraction program [| u; k; k; u |]);
  check (Alcotest.float 1e-9) "empty" 0.0 (Bb_trace.kernel_fraction program [||])

let qcheck = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "trace.packet",
      [
        Alcotest.test_case "tnt roundtrip" `Quick test_packet_tnt_roundtrip;
        Alcotest.test_case "tip roundtrip" `Quick test_packet_tip_roundtrip;
        Alcotest.test_case "end" `Quick test_packet_end;
        Alcotest.test_case "sequence" `Quick test_packet_sequence;
        qcheck prop_packet_roundtrip;
      ] );
    ( "trace.pt",
      [
        Alcotest.test_case "manual roundtrip" `Quick test_pt_roundtrip_manual;
        Alcotest.test_case "empty" `Quick test_pt_empty;
        Alcotest.test_case "single block" `Quick test_pt_single_block;
        Alcotest.test_case "rejects broken edge" `Quick test_pt_rejects_broken_edge;
        Alcotest.test_case "workload roundtrip" `Quick test_pt_workload_roundtrip;
        Alcotest.test_case "compression" `Quick test_pt_compression;
      ] );
    ( "trace.bb_trace",
      [
        Alcotest.test_case "counts" `Quick test_bb_trace_counts;
        Alcotest.test_case "hint instrs" `Quick test_bb_trace_hint_instrs;
        Alcotest.test_case "demand stream" `Quick test_bb_trace_demand_stream;
        Alcotest.test_case "kernel fraction" `Quick test_bb_trace_kernel_fraction;
      ] );
  ]
