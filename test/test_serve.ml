(* The continuous-profiling layer: incremental PT sessions (chunking
   equivalence), the framed wire protocol, the rolling windowed profile,
   and the daemon's drift-gated re-emission loop — all in-process, no
   sockets. *)

module Basic_block = Ripple_isa.Basic_block
module Program = Ripple_isa.Program
module Pt = Ripple_trace.Pt
module W = Ripple_workloads
module Core = Ripple_core
module Obs = Ripple_obs
module Fault = Ripple_fault.Fault
module Json = Ripple_util.Json
module Protocol = Ripple_serve.Protocol
module Rolling = Ripple_serve.Rolling
module Session = Ripple_serve.Session
module Server = Ripple_serve.Server

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checkf = check (Alcotest.float 1e-9)
let checks = check Alcotest.string

let workload_fixture =
  lazy
    (let w = W.Cfg_gen.generate { W.Apps.kafka with W.App_model.seed = 5 } in
     let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:40_000 in
     (w.W.Cfg_gen.program, trace))

let clean_capture =
  lazy
    (let program, trace = Lazy.force workload_fixture in
     (program, Pt.encode program trace))

(* ------------------- chunking equivalence (tentpole) ------------------ *)

let fault_menu =
  [|
    Fault.Clean;
    Fault.Flip_tnt { flips = 32 };
    Fault.Flip_tnt { flips = 256 };
    Fault.Drop_tip { count = 8 };
    Fault.Garbage_tip { count = 8 };
    Fault.Truncate_pt { keep = 0.6 };
    Fault.Truncate_pt { keep = 0.05 };
  |]

let capture_for fidx seed =
  let program, clean = Lazy.force clean_capture in
  let data =
    match fault_menu.(fidx) with
    | Fault.Clean -> clean
    | fault -> Fault.corrupt_pt ~seed fault clean
  in
  (program, data)

(* Feed [data] split at the given byte offsets (deduplicated, sorted)
   and finish; the empty list is the one-chunk case. *)
let session_of_cuts program data cuts =
  let len = Bytes.length data in
  let cuts = List.sort_uniq compare (List.filter (fun c -> c > 0 && c < len) cuts) in
  let s = Pt.Session.create program in
  let prev = ref 0 in
  List.iter
    (fun cut ->
      Pt.Session.feed s (Bytes.sub data !prev (cut - !prev));
      prev := cut)
    (cuts @ [ len ]);
  Pt.Session.finish s;
  s

let same_recovery label (a : Pt.recovery) (b : Pt.recovery) =
  check (Alcotest.array Alcotest.int) (label ^ ": trace") a.Pt.trace b.Pt.trace;
  checki (label ^ ": expected") a.Pt.expected b.Pt.expected;
  checkf (label ^ ": salvage") a.Pt.salvage b.Pt.salvage;
  checki (label ^ ": resyncs") a.Pt.resyncs b.Pt.resyncs;
  checki (label ^ ": error count") (List.length a.Pt.errors) (List.length b.Pt.errors);
  List.iter2
    (fun (x : Pt.decode_error) (y : Pt.decode_error) ->
      checki (label ^ ": error pos") x.Pt.pos y.Pt.pos;
      checki (label ^ ": error decoded") x.Pt.decoded y.Pt.decoded;
      checks (label ^ ": error kind") (Pt.error_kind_name x.Pt.kind) (Pt.error_kind_name y.Pt.kind))
    a.Pt.errors b.Pt.errors

let chunking_prop =
  QCheck.Test.make ~count:60 ~name:"any chunking decodes identically to one-shot"
    QCheck.(
      triple (int_bound (Array.length fault_menu - 1)) small_int
        (list_of_size Gen.(int_range 0 48) small_nat))
    (fun (fidx, seed, raw_cuts) ->
      let program, data = capture_for fidx seed in
      let len = max 1 (Bytes.length data) in
      (* Spread the raw offsets over the whole stream so cuts land
         mid-packet, mid-TNT-byte-run and inside the header. *)
      let cuts = List.map (fun c -> 1 + ((c * 7919) mod len)) raw_cuts in
      let s = session_of_cuts program data cuts in
      let one_shot = Pt.decode_result program data in
      same_recovery (Printf.sprintf "fault %d" fidx) one_shot (Pt.Session.result s);
      true)

let test_byte_by_byte () =
  let program, clean = Lazy.force clean_capture in
  List.iter
    (fun (label, data) ->
      let s = Pt.Session.create program in
      Bytes.iter (fun c -> Pt.Session.feed s (Bytes.make 1 c)) data;
      Pt.Session.finish s;
      same_recovery label (Pt.decode_result program data) (Pt.Session.result s))
    [
      ("clean 1-byte chunks", clean);
      ("garbage 1-byte chunks", Fault.corrupt_pt ~seed:11 (Fault.Garbage_tip { count = 16 }) clean);
      ("truncated 1-byte chunks", Fault.corrupt_pt ~seed:11 (Fault.Truncate_pt { keep = 0.4 }) clean);
    ]

let test_session_drain () =
  let program, data = Lazy.force clean_capture in
  let s = Pt.Session.create program in
  let drained = ref 0 in
  let half = Bytes.length data / 2 in
  Pt.Session.feed s (Bytes.sub data 0 half);
  drained := !drained + Array.length (Pt.Session.drain s);
  checki "mid-stream drain matches decoded" !drained (Pt.Session.decoded s);
  Pt.Session.feed s (Bytes.sub data half (Bytes.length data - half));
  Pt.Session.finish s;
  drained := !drained + Array.length (Pt.Session.drain s);
  checki "drains cover the whole capture" (Array.length (Pt.Session.result s).Pt.trace) !drained;
  checki "drain after exhaustion is empty" 0 (Array.length (Pt.Session.drain s))

(* --------------------------- wire protocol --------------------------- *)

let test_protocol_roundtrip () =
  let frames =
    [
      Protocol.Hello "cassandra";
      Protocol.Chunk (Bytes.of_string "\x00\x01\x02\xff");
      Protocol.Flush;
      Protocol.Status;
      Protocol.Chunk Bytes.empty;
      Protocol.Bye;
    ]
  in
  let buf = Buffer.create 128 in
  List.iter (Protocol.write_frame buf) frames;
  let wire = Buffer.to_bytes buf in
  (* Deliver in 3-byte pieces: every frame header straddles a chunk. *)
  let reader = Protocol.Reader.create () in
  let got = ref [] in
  let pos = ref 0 in
  while !pos < Bytes.length wire do
    let n = min 3 (Bytes.length wire - !pos) in
    Protocol.Reader.add reader (Bytes.sub wire !pos n) n;
    pos := !pos + n;
    let rec drain () =
      match Protocol.Reader.pop_frame reader with
      | `Frame f ->
        got := f :: !got;
        drain ()
      | `Awaiting -> ()
      | `Corrupt msg -> Alcotest.failf "unexpected corrupt: %s" msg
    in
    drain ()
  done;
  checki "all frames recovered" (List.length frames) (List.length !got);
  List.iter2
    (fun sent got ->
      checks "frame kind" (Protocol.frame_name sent) (Protocol.frame_name got);
      match (sent, got) with
      | Protocol.Chunk a, Protocol.Chunk b -> checkb "chunk payload" true (Bytes.equal a b)
      | Protocol.Hello a, Protocol.Hello b -> checks "hello payload" a b
      | _ -> ())
    frames (List.rev !got)

let test_protocol_corrupt () =
  let reader = Protocol.Reader.create () in
  let junk = Bytes.of_string "Z\x00\x00\x00\x00" in
  Protocol.Reader.add reader junk (Bytes.length junk);
  (match Protocol.Reader.pop_frame reader with
  | `Corrupt _ -> ()
  | `Awaiting | `Frame _ -> Alcotest.fail "unknown tag must be corrupt");
  let reader = Protocol.Reader.create () in
  (* Length prefix far beyond the cap: rejected before buffering. *)
  let oversized = Bytes.of_string "C\x7f\xff\xff\xff" in
  Protocol.Reader.add reader oversized (Bytes.length oversized);
  (match Protocol.Reader.pop_frame reader with
  | `Corrupt _ -> ()
  | `Awaiting | `Frame _ -> Alcotest.fail "oversized frame must be corrupt")

let test_protocol_reply () =
  let buf = Buffer.create 64 in
  Protocol.write_reply buf (Protocol.Ok (Json.Obj [ ("decoded", Json.Int 7) ]));
  Protocol.write_reply buf (Protocol.Error "nope");
  let wire = Buffer.to_bytes buf in
  let reader = Protocol.Reader.create () in
  Protocol.Reader.add reader wire (Bytes.length wire);
  (match Protocol.Reader.pop_reply reader with
  | `Reply (Protocol.Ok json) -> checkb "ok payload" true (Json.member "decoded" json = Some (Json.Int 7))
  | _ -> Alcotest.fail "expected ok reply");
  match Protocol.Reader.pop_reply reader with
  | `Reply (Protocol.Error msg) -> checks "error payload" "nope" msg
  | _ -> Alcotest.fail "expected error reply"

(* --------------------------- rolling window -------------------------- *)

let test_rolling_empty () =
  let r = Rolling.create ~window:100 () in
  checkf "empty window salvage is 0.0, not NaN" 0.0 (Rolling.salvage r);
  checki "no blocks" 0 (Rolling.blocks r);
  checki "no errors" 0 (Rolling.errors r);
  checki "empty trace" 0 (Array.length (Rolling.trace r));
  Alcotest.check_raises "non-positive window rejected"
    (Invalid_argument "Rolling.create: window must be positive") (fun () ->
      ignore (Rolling.create ~window:0 () : Rolling.t))

let test_rolling_clean_empty_generation () =
  let r = Rolling.create ~window:100 () in
  Rolling.add r ~blocks:[||] ~expected:0 ~errors:0;
  checkf "empty-but-clean capture is salvage 1.0" 1.0 (Rolling.salvage r);
  Rolling.add r ~blocks:[||] ~expected:0 ~errors:1;
  checkf "empty capture with errors is salvage 0.0" 0.0 (Rolling.salvage r)

let test_rolling_eviction () =
  let r = Rolling.create ~window:10 () in
  let gen tag n = Array.init n (fun i -> (tag * 100) + i) in
  Rolling.add r ~blocks:(gen 1 6) ~expected:6 ~errors:0;
  Rolling.add r ~blocks:(gen 2 6) ~expected:8 ~errors:1;
  (* 12 > 10: the oldest generation goes, whole. *)
  checki "oldest generation evicted" 6 (Rolling.blocks r);
  checki "one generation left" 1 (Rolling.generations r);
  checki "advertised follows eviction" 8 (Rolling.advertised r);
  checki "errors follow eviction" 1 (Rolling.errors r);
  checkf "salvage over retained generations" 0.75 (Rolling.salvage r);
  check (Alcotest.array Alcotest.int) "trace is the retained generation" (gen 2 6) (Rolling.trace r)

let test_rolling_oversized_generation_kept () =
  let r = Rolling.create ~window:4 () in
  Rolling.add r ~blocks:(Array.init 9 Fun.id) ~expected:9 ~errors:0;
  checki "sole oversized generation survives" 9 (Rolling.blocks r);
  Rolling.add r ~blocks:[| 1; 2 |] ~expected:2 ~errors:0;
  checki "next add evicts down to the newcomer" 2 (Rolling.blocks r);
  checki "one generation" 1 (Rolling.generations r)

let test_rolling_order () =
  let r = Rolling.create ~window:100 () in
  Rolling.add r ~blocks:[| 1; 2 |] ~expected:2 ~errors:0;
  Rolling.add r ~blocks:[| 3 |] ~expected:1 ~errors:0;
  Rolling.add r ~blocks:[| 4; 5 |] ~expected:2 ~errors:0;
  check (Alcotest.array Alcotest.int) "oldest-first concatenation" [| 1; 2; 3; 4; 5 |]
    (Rolling.trace r)

(* ------------------------ daemon sessions ---------------------------- *)

let serve_options =
  {
    Core.Pipeline.Options.default with
    Core.Pipeline.Options.degrade = true;
    prefetch = Core.Pipeline.No_prefetch;
  }

let push_capture ?(chunk = 1500) session data =
  let len = Bytes.length data in
  let pos = ref 0 in
  while !pos < len do
    let n = min chunk (len - !pos) in
    ignore (Session.feed session (Bytes.sub data !pos n) : int);
    pos := !pos + n
  done;
  Session.flush session

(* The drift-gated ladder over a live session: trust is earned by a
   clean flush, stepped down as corrupted captures take over the
   window, and re-earned when clean captures evict them. *)
let test_session_ladder () =
  let program, clean = Lazy.force clean_capture in
  let blocks = Array.length (snd (Lazy.force workload_fixture)) in
  let obs = Obs.Run.create () in
  (* Window sized so each flush's generation evicts the previous one:
     the ladder then tracks the quality of the latest capture. *)
  let s =
    Session.create ~obs ~options:serve_options ~window:blocks ~reemit_every:0 ~name:"kafka"
      ~program
  in
  checkb "starts with hints off" true (Session.level s = Core.Pipeline.Degrade.Hints_off);
  push_capture s clean;
  checkb "clean flush earns full hints" true (Session.level s = Core.Pipeline.Degrade.Full);
  checki "hints-off -> full counts one transition" 1 (Session.transitions s);
  push_capture s (Fault.corrupt_pt ~seed:3 (Fault.Truncate_pt { keep = 0.7 }) clean);
  checkb "moderate salvage steps down to safe-only" true
    (Session.level s = Core.Pipeline.Degrade.Safe_only);
  push_capture s (Fault.corrupt_pt ~seed:3 (Fault.Truncate_pt { keep = 0.05 }) clean);
  checkb "heavy loss turns hints off" true (Session.level s = Core.Pipeline.Degrade.Hints_off);
  push_capture s clean;
  checkb "clean capture re-earns full hints" true (Session.level s = Core.Pipeline.Degrade.Full);
  checki "four ladder transitions" 4 (Session.transitions s);
  checki "one emission per flush" 4 (Session.emissions s)

(* Acceptance: a chunked session and a one-shot Pipeline.run over the
   same capture produce byte-identical hint output. *)
let test_session_matches_one_shot () =
  let program, data = Lazy.force clean_capture in
  let obs = Obs.Run.create () in
  let s =
    Session.create ~obs ~options:serve_options ~window:max_int ~reemit_every:0 ~name:"kafka"
      ~program
  in
  push_capture ~chunk:777 s data;
  let one_shot = Core.Pipeline.run serve_options ~source:program (Core.Pipeline.Pt_bytes data) in
  let session_program = Session.program s in
  checki "same hint count" (Program.static_hints one_shot.Core.Pipeline.program)
    (Program.static_hints session_program);
  Array.iteri
    (fun i (b : Basic_block.t) ->
      let b' = Program.block session_program i in
      checkb "identical hints per block" true (b.Basic_block.hints = b'.Basic_block.hints))
    (Program.blocks one_shot.Core.Pipeline.program);
  let d level = level.Core.Pipeline.degrade.Core.Pipeline.Degrade.level in
  checkb "same ladder level" true
    (d one_shot.Core.Pipeline.analysis = d (Option.get (Session.last_outcome s)).Core.Pipeline.analysis)

let test_session_reemit_mid_capture () =
  let program, data = Lazy.force clean_capture in
  let obs = Obs.Run.create () in
  let s =
    Session.create ~obs ~options:serve_options ~window:max_int ~reemit_every:500 ~name:"kafka"
      ~program
  in
  let len = Bytes.length data in
  let pos = ref 0 in
  while !pos < len do
    let n = min 512 (len - !pos) in
    ignore (Session.feed s (Bytes.sub data !pos n) : int);
    pos := !pos + n
  done;
  checkb "re-emitted before any flush" true (Session.emissions s > 1);
  checkb "mid-capture clean stream already earns trust" true
    (Session.level s = Core.Pipeline.Degrade.Full);
  Session.flush s;
  checkb "flush still lands at full" true (Session.level s = Core.Pipeline.Degrade.Full)

(* ------------------------ daemon, in-process ------------------------- *)

let mini_program () = fst (Lazy.force workload_fixture)

let mini_server () =
  Server.create
    {
      Server.default_config with
      Server.options = serve_options;
      lookup =
        (fun name ->
          if name = "kafka" || name = "zippy" then Some (mini_program ()) else None);
    }

let expect_ok label = function
  | Protocol.Ok json, disposition -> (json, disposition)
  | Protocol.Error msg, _ -> Alcotest.failf "%s: unexpected error %s" label msg

let expect_error label = function
  | Protocol.Error _, `Keep -> ()
  | Protocol.Error _, `Close -> Alcotest.failf "%s: error should keep the connection" label
  | Protocol.Ok _, _ -> Alcotest.failf "%s: expected an error reply" label

let test_server_frames () =
  let t = mini_server () in
  let conn = Server.Conn.create () in
  expect_error "chunk before hello" (Server.Conn.handle t conn (Protocol.Chunk (Bytes.create 4)));
  expect_error "flush before hello" (Server.Conn.handle t conn Protocol.Flush);
  expect_error "unknown app" (Server.Conn.handle t conn (Protocol.Hello "nope"));
  let json, _ = expect_ok "hello" (Server.Conn.handle t conn (Protocol.Hello "kafka")) in
  checkb "hello returns status for the app" true
    (Json.member "app" json = Some (Json.String "kafka"));
  let _, data = Lazy.force clean_capture in
  let json, _ = expect_ok "chunk" (Server.Conn.handle t conn (Protocol.Chunk data)) in
  (match Json.member "decoded" json with
  | Some (Json.Int n) -> checkb "chunk reports decoded blocks" true (n > 0)
  | _ -> Alcotest.fail "chunk reply lacks decoded count");
  let json, _ = expect_ok "flush" (Server.Conn.handle t conn Protocol.Flush) in
  checkb "flush reports a generation" true (Json.member "generations" json = Some (Json.Int 1));
  let _, disposition = expect_ok "bye" (Server.Conn.handle t conn Protocol.Bye) in
  checkb "bye closes" true (disposition = `Close)

let test_server_two_sessions () =
  let t = mini_server () in
  let a = Server.Conn.create () and b = Server.Conn.create () in
  let _, data = Lazy.force clean_capture in
  ignore (expect_ok "hello a" (Server.Conn.handle t a (Protocol.Hello "kafka")));
  ignore (expect_ok "hello b" (Server.Conn.handle t b (Protocol.Hello "zippy")));
  checki "two sessions registered" 2 (List.length (Server.sessions t));
  (* Interleave the two apps on the same daemon. *)
  let half = Bytes.length data / 2 in
  ignore (expect_ok "a chunk" (Server.Conn.handle t a (Protocol.Chunk (Bytes.sub data 0 half))));
  ignore (expect_ok "b chunk" (Server.Conn.handle t b (Protocol.Chunk data)));
  ignore
    (expect_ok "a chunk 2"
       (Server.Conn.handle t a (Protocol.Chunk (Bytes.sub data half (Bytes.length data - half)))));
  ignore (expect_ok "a flush" (Server.Conn.handle t a Protocol.Flush));
  ignore (expect_ok "b flush" (Server.Conn.handle t b Protocol.Flush));
  List.iter
    (fun name ->
      match Server.find_session t name with
      | None -> Alcotest.failf "session %s missing" name
      | Some s ->
        checkb (name ^ " earned full hints") true (Session.level s = Core.Pipeline.Degrade.Full))
    [ "kafka"; "zippy" ];
  (* A second Hello for a known app rebinds to the same session. *)
  let c = Server.Conn.create () in
  ignore (expect_ok "hello c" (Server.Conn.handle t c (Protocol.Hello "kafka")));
  checki "no duplicate session" 2 (List.length (Server.sessions t))

(* The live scrape carries the complete pinned vocabulary: pipeline
   families are pre-registered, serve families come from the daemon
   itself. *)
let test_server_scrape_schema () =
  let t = mini_server () in
  let conn = Server.Conn.create () in
  let _, data = Lazy.force clean_capture in
  ignore (expect_ok "hello" (Server.Conn.handle t conn (Protocol.Hello "kafka")));
  ignore (expect_ok "chunk" (Server.Conn.handle t conn (Protocol.Chunk data)));
  ignore (expect_ok "flush" (Server.Conn.handle t conn Protocol.Flush));
  let type_lines =
    List.filter_map
      (fun line ->
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; name; kind ] -> Some (name ^ " " ^ kind)
        | _ -> None)
      (String.split_on_char '\n' (Server.metrics_body t))
  in
  let ic = open_in "../docs/metrics.schema" in
  let rec read acc =
    match input_line ic with
    | line -> read (if String.trim line = "" then acc else String.trim line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  check (Alcotest.list Alcotest.string) "scrape carries the full pinned schema" (read [])
    type_lines

let suites =
  [
    ( "serve",
      [
        QCheck_alcotest.to_alcotest chunking_prop;
        Alcotest.test_case "byte-by-byte chunking" `Quick test_byte_by_byte;
        Alcotest.test_case "session drain" `Quick test_session_drain;
        Alcotest.test_case "protocol roundtrip" `Quick test_protocol_roundtrip;
        Alcotest.test_case "protocol corrupt frames" `Quick test_protocol_corrupt;
        Alcotest.test_case "protocol replies" `Quick test_protocol_reply;
        Alcotest.test_case "rolling empty" `Quick test_rolling_empty;
        Alcotest.test_case "rolling clean empty generation" `Quick
          test_rolling_clean_empty_generation;
        Alcotest.test_case "rolling eviction" `Quick test_rolling_eviction;
        Alcotest.test_case "rolling oversized generation" `Quick
          test_rolling_oversized_generation_kept;
        Alcotest.test_case "rolling order" `Quick test_rolling_order;
        Alcotest.test_case "session ladder transitions" `Slow test_session_ladder;
        Alcotest.test_case "session matches one-shot run" `Slow test_session_matches_one_shot;
        Alcotest.test_case "session mid-capture re-emission" `Slow test_session_reemit_mid_capture;
        Alcotest.test_case "server frame handling" `Slow test_server_frames;
        Alcotest.test_case "server two concurrent sessions" `Slow test_server_two_sessions;
        Alcotest.test_case "server scrape schema" `Slow test_server_scrape_schema;
      ] );
  ]
