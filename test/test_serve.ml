(* The continuous-profiling layer: incremental PT sessions (chunking
   equivalence), the framed wire protocol, the rolling windowed profile,
   and the daemon's drift-gated re-emission loop — all in-process, no
   sockets. *)

module Basic_block = Ripple_isa.Basic_block
module Program = Ripple_isa.Program
module Pt = Ripple_trace.Pt
module W = Ripple_workloads
module Core = Ripple_core
module Obs = Ripple_obs
module Fault = Ripple_fault.Fault
module Json = Ripple_util.Json
module Protocol = Ripple_serve.Protocol
module Rolling = Ripple_serve.Rolling
module Session = Ripple_serve.Session
module Server = Ripple_serve.Server

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checkf = check (Alcotest.float 1e-9)
let checks = check Alcotest.string

let workload_fixture =
  lazy
    (let w = W.Cfg_gen.generate { W.Apps.kafka with W.App_model.seed = 5 } in
     let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:40_000 in
     (w.W.Cfg_gen.program, trace))

let clean_capture =
  lazy
    (let program, trace = Lazy.force workload_fixture in
     (program, Pt.encode program trace))

(* ------------------- chunking equivalence (tentpole) ------------------ *)

let fault_menu =
  [|
    Fault.Clean;
    Fault.Flip_tnt { flips = 32 };
    Fault.Flip_tnt { flips = 256 };
    Fault.Drop_tip { count = 8 };
    Fault.Garbage_tip { count = 8 };
    Fault.Truncate_pt { keep = 0.6 };
    Fault.Truncate_pt { keep = 0.05 };
  |]

let capture_for fidx seed =
  let program, clean = Lazy.force clean_capture in
  let data =
    match fault_menu.(fidx) with
    | Fault.Clean -> clean
    | fault -> Fault.corrupt_pt ~seed fault clean
  in
  (program, data)

(* Feed [data] split at the given byte offsets (deduplicated, sorted)
   and finish; the empty list is the one-chunk case. *)
let session_of_cuts program data cuts =
  let len = Bytes.length data in
  let cuts = List.sort_uniq compare (List.filter (fun c -> c > 0 && c < len) cuts) in
  let s = Pt.Session.create program in
  let prev = ref 0 in
  List.iter
    (fun cut ->
      Pt.Session.feed s (Bytes.sub data !prev (cut - !prev));
      prev := cut)
    (cuts @ [ len ]);
  Pt.Session.finish s;
  s

let same_recovery label (a : Pt.recovery) (b : Pt.recovery) =
  check (Alcotest.array Alcotest.int) (label ^ ": trace") a.Pt.trace b.Pt.trace;
  checki (label ^ ": expected") a.Pt.expected b.Pt.expected;
  checkf (label ^ ": salvage") a.Pt.salvage b.Pt.salvage;
  checki (label ^ ": resyncs") a.Pt.resyncs b.Pt.resyncs;
  checki (label ^ ": error count") (List.length a.Pt.errors) (List.length b.Pt.errors);
  List.iter2
    (fun (x : Pt.decode_error) (y : Pt.decode_error) ->
      checki (label ^ ": error pos") x.Pt.pos y.Pt.pos;
      checki (label ^ ": error decoded") x.Pt.decoded y.Pt.decoded;
      checks (label ^ ": error kind") (Pt.error_kind_name x.Pt.kind) (Pt.error_kind_name y.Pt.kind))
    a.Pt.errors b.Pt.errors

let chunking_prop =
  QCheck.Test.make ~count:60 ~name:"any chunking decodes identically to one-shot"
    QCheck.(
      triple (int_bound (Array.length fault_menu - 1)) small_int
        (list_of_size Gen.(int_range 0 48) small_nat))
    (fun (fidx, seed, raw_cuts) ->
      let program, data = capture_for fidx seed in
      let len = max 1 (Bytes.length data) in
      (* Spread the raw offsets over the whole stream so cuts land
         mid-packet, mid-TNT-byte-run and inside the header. *)
      let cuts = List.map (fun c -> 1 + ((c * 7919) mod len)) raw_cuts in
      let s = session_of_cuts program data cuts in
      let one_shot = Pt.decode_result program data in
      same_recovery (Printf.sprintf "fault %d" fidx) one_shot (Pt.Session.result s);
      true)

let test_byte_by_byte () =
  let program, clean = Lazy.force clean_capture in
  List.iter
    (fun (label, data) ->
      let s = Pt.Session.create program in
      Bytes.iter (fun c -> Pt.Session.feed s (Bytes.make 1 c)) data;
      Pt.Session.finish s;
      same_recovery label (Pt.decode_result program data) (Pt.Session.result s))
    [
      ("clean 1-byte chunks", clean);
      ("garbage 1-byte chunks", Fault.corrupt_pt ~seed:11 (Fault.Garbage_tip { count = 16 }) clean);
      ("truncated 1-byte chunks", Fault.corrupt_pt ~seed:11 (Fault.Truncate_pt { keep = 0.4 }) clean);
    ]

let test_session_drain () =
  let program, data = Lazy.force clean_capture in
  let s = Pt.Session.create program in
  let drained = ref 0 in
  let half = Bytes.length data / 2 in
  Pt.Session.feed s (Bytes.sub data 0 half);
  drained := !drained + Array.length (Pt.Session.drain s);
  checki "mid-stream drain matches decoded" !drained (Pt.Session.decoded s);
  Pt.Session.feed s (Bytes.sub data half (Bytes.length data - half));
  Pt.Session.finish s;
  drained := !drained + Array.length (Pt.Session.drain s);
  checki "drains cover the whole capture" (Array.length (Pt.Session.result s).Pt.trace) !drained;
  checki "drain after exhaustion is empty" 0 (Array.length (Pt.Session.drain s))

(* --------------------------- wire protocol --------------------------- *)

let test_protocol_roundtrip () =
  let frames =
    [
      Protocol.Hello "cassandra";
      Protocol.Chunk (Bytes.of_string "\x00\x01\x02\xff");
      Protocol.Flush;
      Protocol.Status;
      Protocol.Chunk Bytes.empty;
      Protocol.Bye;
    ]
  in
  let buf = Buffer.create 128 in
  List.iter (Protocol.write_frame buf) frames;
  let wire = Buffer.to_bytes buf in
  (* Deliver in 3-byte pieces: every frame header straddles a chunk. *)
  let reader = Protocol.Reader.create () in
  let got = ref [] in
  let pos = ref 0 in
  while !pos < Bytes.length wire do
    let n = min 3 (Bytes.length wire - !pos) in
    Protocol.Reader.add reader (Bytes.sub wire !pos n) n;
    pos := !pos + n;
    let rec drain () =
      match Protocol.Reader.pop_frame reader with
      | `Frame f ->
        got := f :: !got;
        drain ()
      | `Awaiting -> ()
      | `Corrupt msg -> Alcotest.failf "unexpected corrupt: %s" msg
    in
    drain ()
  done;
  checki "all frames recovered" (List.length frames) (List.length !got);
  List.iter2
    (fun sent got ->
      checks "frame kind" (Protocol.frame_name sent) (Protocol.frame_name got);
      match (sent, got) with
      | Protocol.Chunk a, Protocol.Chunk b -> checkb "chunk payload" true (Bytes.equal a b)
      | Protocol.Hello a, Protocol.Hello b -> checks "hello payload" a b
      | _ -> ())
    frames (List.rev !got)

let test_protocol_corrupt () =
  let reader = Protocol.Reader.create () in
  let junk = Bytes.of_string "Z\x00\x00\x00\x00" in
  Protocol.Reader.add reader junk (Bytes.length junk);
  (match Protocol.Reader.pop_frame reader with
  | `Corrupt _ -> ()
  | `Awaiting | `Frame _ -> Alcotest.fail "unknown tag must be corrupt");
  let reader = Protocol.Reader.create () in
  (* Length prefix far beyond the cap: rejected before buffering. *)
  let oversized = Bytes.of_string "C\x7f\xff\xff\xff" in
  Protocol.Reader.add reader oversized (Bytes.length oversized);
  (match Protocol.Reader.pop_frame reader with
  | `Corrupt _ -> ()
  | `Awaiting | `Frame _ -> Alcotest.fail "oversized frame must be corrupt")

let test_protocol_reply () =
  let buf = Buffer.create 64 in
  Protocol.write_reply buf (Protocol.Ok (Json.Obj [ ("decoded", Json.Int 7) ]));
  Protocol.write_reply buf (Protocol.Error "nope");
  let wire = Buffer.to_bytes buf in
  let reader = Protocol.Reader.create () in
  Protocol.Reader.add reader wire (Bytes.length wire);
  (match Protocol.Reader.pop_reply reader with
  | `Reply (Protocol.Ok json) -> checkb "ok payload" true (Json.member "decoded" json = Some (Json.Int 7))
  | _ -> Alcotest.fail "expected ok reply");
  match Protocol.Reader.pop_reply reader with
  | `Reply (Protocol.Error msg) -> checks "error payload" "nope" msg
  | _ -> Alcotest.fail "expected error reply"

(* --------------------------- rolling window -------------------------- *)

let test_rolling_empty () =
  let r = Rolling.create ~window:100 () in
  checkf "empty window salvage is 0.0, not NaN" 0.0 (Rolling.salvage r);
  checki "no blocks" 0 (Rolling.blocks r);
  checki "no errors" 0 (Rolling.errors r);
  checki "empty trace" 0 (Array.length (Rolling.trace r));
  Alcotest.check_raises "non-positive window rejected"
    (Invalid_argument "Rolling.create: window must be positive") (fun () ->
      ignore (Rolling.create ~window:0 () : Rolling.t))

let test_rolling_clean_empty_generation () =
  let r = Rolling.create ~window:100 () in
  Rolling.add r ~blocks:[||] ~expected:0 ~errors:0;
  checkf "empty-but-clean capture is salvage 1.0" 1.0 (Rolling.salvage r);
  Rolling.add r ~blocks:[||] ~expected:0 ~errors:1;
  checkf "empty capture with errors is salvage 0.0" 0.0 (Rolling.salvage r)

let test_rolling_eviction () =
  let r = Rolling.create ~window:10 () in
  let gen tag n = Array.init n (fun i -> (tag * 100) + i) in
  Rolling.add r ~blocks:(gen 1 6) ~expected:6 ~errors:0;
  Rolling.add r ~blocks:(gen 2 6) ~expected:8 ~errors:1;
  (* 12 > 10: the oldest generation goes, whole. *)
  checki "oldest generation evicted" 6 (Rolling.blocks r);
  checki "one generation left" 1 (Rolling.generations r);
  checki "advertised follows eviction" 8 (Rolling.advertised r);
  checki "errors follow eviction" 1 (Rolling.errors r);
  checkf "salvage over retained generations" 0.75 (Rolling.salvage r);
  check (Alcotest.array Alcotest.int) "trace is the retained generation" (gen 2 6) (Rolling.trace r)

let test_rolling_oversized_generation_kept () =
  let r = Rolling.create ~window:4 () in
  Rolling.add r ~blocks:(Array.init 9 Fun.id) ~expected:9 ~errors:0;
  checki "sole oversized generation survives" 9 (Rolling.blocks r);
  Rolling.add r ~blocks:[| 1; 2 |] ~expected:2 ~errors:0;
  checki "next add evicts down to the newcomer" 2 (Rolling.blocks r);
  checki "one generation" 1 (Rolling.generations r)

let test_rolling_order () =
  let r = Rolling.create ~window:100 () in
  Rolling.add r ~blocks:[| 1; 2 |] ~expected:2 ~errors:0;
  Rolling.add r ~blocks:[| 3 |] ~expected:1 ~errors:0;
  Rolling.add r ~blocks:[| 4; 5 |] ~expected:2 ~errors:0;
  check (Alcotest.array Alcotest.int) "oldest-first concatenation" [| 1; 2; 3; 4; 5 |]
    (Rolling.trace r)

(* ------------------------ daemon sessions ---------------------------- *)

let serve_options =
  {
    Core.Pipeline.Options.default with
    Core.Pipeline.Options.degrade = true;
    prefetch = Core.Pipeline.No_prefetch;
  }

let push_capture ?(chunk = 1500) session data =
  let len = Bytes.length data in
  let pos = ref 0 in
  while !pos < len do
    let n = min chunk (len - !pos) in
    ignore (Session.feed session (Bytes.sub data !pos n) : int);
    pos := !pos + n
  done;
  Session.flush session

(* The drift-gated ladder over a live session: trust is earned by a
   clean flush, stepped down as corrupted captures take over the
   window, and re-earned when clean captures evict them. *)
let test_session_ladder () =
  let program, clean = Lazy.force clean_capture in
  let blocks = Array.length (snd (Lazy.force workload_fixture)) in
  let obs = Obs.Run.create () in
  (* Window sized so each flush's generation evicts the previous one:
     the ladder then tracks the quality of the latest capture. *)
  let s =
    Session.create ~obs ~options:serve_options ~window:blocks ~reemit_every:0 ~name:"kafka"
      ~program ()
  in
  checkb "starts with hints off" true (Session.level s = Core.Pipeline.Degrade.Hints_off);
  push_capture s clean;
  checkb "clean flush earns full hints" true (Session.level s = Core.Pipeline.Degrade.Full);
  checki "hints-off -> full counts one transition" 1 (Session.transitions s);
  push_capture s (Fault.corrupt_pt ~seed:3 (Fault.Truncate_pt { keep = 0.7 }) clean);
  checkb "moderate salvage steps down to safe-only" true
    (Session.level s = Core.Pipeline.Degrade.Safe_only);
  push_capture s (Fault.corrupt_pt ~seed:3 (Fault.Truncate_pt { keep = 0.05 }) clean);
  checkb "heavy loss turns hints off" true (Session.level s = Core.Pipeline.Degrade.Hints_off);
  push_capture s clean;
  checkb "clean capture re-earns full hints" true (Session.level s = Core.Pipeline.Degrade.Full);
  checki "four ladder transitions" 4 (Session.transitions s);
  checki "one emission per flush" 4 (Session.emissions s)

(* Acceptance: a chunked session and a one-shot Pipeline.run over the
   same capture produce byte-identical hint output. *)
let test_session_matches_one_shot () =
  let program, data = Lazy.force clean_capture in
  let obs = Obs.Run.create () in
  let s =
    Session.create ~obs ~options:serve_options ~window:max_int ~reemit_every:0 ~name:"kafka"
      ~program ()
  in
  push_capture ~chunk:777 s data;
  let one_shot = Core.Pipeline.run serve_options ~source:program (Core.Pipeline.Pt_bytes data) in
  let session_program = Session.program s in
  checki "same hint count" (Program.static_hints one_shot.Core.Pipeline.program)
    (Program.static_hints session_program);
  Array.iteri
    (fun i (b : Basic_block.t) ->
      let b' = Program.block session_program i in
      checkb "identical hints per block" true (b.Basic_block.hints = b'.Basic_block.hints))
    (Program.blocks one_shot.Core.Pipeline.program);
  let d level = level.Core.Pipeline.degrade.Core.Pipeline.Degrade.level in
  checkb "same ladder level" true
    (d one_shot.Core.Pipeline.analysis = d (Option.get (Session.last_outcome s)).Core.Pipeline.analysis)

let test_session_reemit_mid_capture () =
  let program, data = Lazy.force clean_capture in
  let obs = Obs.Run.create () in
  let s =
    Session.create ~obs ~options:serve_options ~window:max_int ~reemit_every:500 ~name:"kafka"
      ~program ()
  in
  let len = Bytes.length data in
  let pos = ref 0 in
  while !pos < len do
    let n = min 512 (len - !pos) in
    ignore (Session.feed s (Bytes.sub data !pos n) : int);
    pos := !pos + n
  done;
  checkb "re-emitted before any flush" true (Session.emissions s > 1);
  checkb "mid-capture clean stream already earns trust" true
    (Session.level s = Core.Pipeline.Degrade.Full);
  Session.flush s;
  checkb "flush still lands at full" true (Session.level s = Core.Pipeline.Degrade.Full)

(* ------------------------ daemon, in-process ------------------------- *)

let mini_program () = fst (Lazy.force workload_fixture)

let mini_server () =
  Server.create
    {
      Server.default_config with
      Server.options = serve_options;
      lookup =
        (fun name ->
          if name = "kafka" || name = "zippy" then Some (mini_program ()) else None);
    }

let expect_ok label = function
  | Protocol.Ok json, disposition -> (json, disposition)
  | Protocol.Error msg, _ -> Alcotest.failf "%s: unexpected error %s" label msg

let expect_error label = function
  | Protocol.Error _, `Keep -> ()
  | Protocol.Error _, `Close -> Alcotest.failf "%s: error should keep the connection" label
  | Protocol.Ok _, _ -> Alcotest.failf "%s: expected an error reply" label

let test_server_frames () =
  let t = mini_server () in
  let conn = Server.Conn.create () in
  expect_error "chunk before hello" (Server.Conn.handle t conn (Protocol.Chunk (Bytes.create 4)));
  expect_error "flush before hello" (Server.Conn.handle t conn Protocol.Flush);
  expect_error "unknown app" (Server.Conn.handle t conn (Protocol.Hello "nope"));
  let json, _ = expect_ok "hello" (Server.Conn.handle t conn (Protocol.Hello "kafka")) in
  checkb "hello returns status for the app" true
    (Json.member "app" json = Some (Json.String "kafka"));
  let _, data = Lazy.force clean_capture in
  let json, _ = expect_ok "chunk" (Server.Conn.handle t conn (Protocol.Chunk data)) in
  (match Json.member "decoded" json with
  | Some (Json.Int n) -> checkb "chunk reports decoded blocks" true (n > 0)
  | _ -> Alcotest.fail "chunk reply lacks decoded count");
  let json, _ = expect_ok "flush" (Server.Conn.handle t conn Protocol.Flush) in
  checkb "flush reports a generation" true (Json.member "generations" json = Some (Json.Int 1));
  let _, disposition = expect_ok "bye" (Server.Conn.handle t conn Protocol.Bye) in
  checkb "bye closes" true (disposition = `Close)

let test_server_two_sessions () =
  let t = mini_server () in
  let a = Server.Conn.create () and b = Server.Conn.create () in
  let _, data = Lazy.force clean_capture in
  ignore (expect_ok "hello a" (Server.Conn.handle t a (Protocol.Hello "kafka")));
  ignore (expect_ok "hello b" (Server.Conn.handle t b (Protocol.Hello "zippy")));
  checki "two sessions registered" 2 (List.length (Server.sessions t));
  (* Interleave the two apps on the same daemon. *)
  let half = Bytes.length data / 2 in
  ignore (expect_ok "a chunk" (Server.Conn.handle t a (Protocol.Chunk (Bytes.sub data 0 half))));
  ignore (expect_ok "b chunk" (Server.Conn.handle t b (Protocol.Chunk data)));
  ignore
    (expect_ok "a chunk 2"
       (Server.Conn.handle t a (Protocol.Chunk (Bytes.sub data half (Bytes.length data - half)))));
  ignore (expect_ok "a flush" (Server.Conn.handle t a Protocol.Flush));
  ignore (expect_ok "b flush" (Server.Conn.handle t b Protocol.Flush));
  List.iter
    (fun name ->
      match Server.find_session t name with
      | None -> Alcotest.failf "session %s missing" name
      | Some s ->
        checkb (name ^ " earned full hints") true (Session.level s = Core.Pipeline.Degrade.Full))
    [ "kafka"; "zippy" ];
  (* A second Hello for a known app rebinds to the same session. *)
  let c = Server.Conn.create () in
  ignore (expect_ok "hello c" (Server.Conn.handle t c (Protocol.Hello "kafka")));
  checki "no duplicate session" 2 (List.length (Server.sessions t))

(* The live scrape carries the complete pinned vocabulary: pipeline
   families are pre-registered, serve families come from the daemon
   itself. *)
let test_server_scrape_schema () =
  let t = mini_server () in
  let conn = Server.Conn.create () in
  let _, data = Lazy.force clean_capture in
  ignore (expect_ok "hello" (Server.Conn.handle t conn (Protocol.Hello "kafka")));
  ignore (expect_ok "chunk" (Server.Conn.handle t conn (Protocol.Chunk data)));
  ignore (expect_ok "flush" (Server.Conn.handle t conn Protocol.Flush));
  let type_lines =
    List.filter_map
      (fun line ->
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; name; kind ] -> Some (name ^ " " ^ kind)
        | _ -> None)
      (String.split_on_char '\n' (Server.metrics_body t))
  in
  let ic = open_in "../docs/metrics.schema" in
  let rec read acc =
    match input_line ic with
    | line -> read (if String.trim line = "" then acc else String.trim line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  check (Alcotest.list Alcotest.string) "scrape carries the full pinned schema" (read [])
    type_lines

(* --------------------- durability: snapshot codec -------------------- *)

module Snapshot = Ripple_serve.Snapshot
module Net_fault = Ripple_fault.Net_fault
module Client = Ripple_serve.Client

let state_gen =
  QCheck.Gen.(
    let gen_gen =
      map3
        (fun blocks expected errors ->
          { Snapshot.g_blocks = Array.of_list blocks; g_expected = expected; g_errors = errors })
        (list_size (int_bound 40) (int_bound 0xFFFF))
        (int_bound 10_000) (int_bound 50)
    in
    (* Counters are u64 on disk: exercise values past the u32 boundary
       so a regression to 32-bit truncation fails the round-trip. *)
    let counter = oneof [ int_bound 10_000; map (fun k -> 0xFFFF_FFFF + k) (int_bound 10_000) ] in
    map
      (fun (app, (level, transitions, emissions, next_seq), gens) ->
        { Snapshot.app; level; transitions; emissions; next_seq; gens })
      (triple (string_size ~gen:printable (int_range 0 12))
         (quad (int_bound 2) counter counter counter)
         (list_size (int_bound 5) gen_gen)))

let state_arb = QCheck.make ~print:(fun s -> s.Snapshot.app) state_gen

let snapshot_roundtrip_prop =
  QCheck.Test.make ~count:200 ~name:"snapshot encode/decode round-trips" state_arb (fun st ->
      match Snapshot.decode (Snapshot.encode st) with
      | Result.Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
      | Result.Ok got ->
        got.Snapshot.app = st.Snapshot.app
        && got.Snapshot.level = st.Snapshot.level
        && got.Snapshot.transitions = st.Snapshot.transitions
        && got.Snapshot.emissions = st.Snapshot.emissions
        && got.Snapshot.next_seq = st.Snapshot.next_seq
        && List.length got.Snapshot.gens = List.length st.Snapshot.gens
        && List.for_all2
             (fun (a : Snapshot.gen) (b : Snapshot.gen) ->
               a.Snapshot.g_blocks = b.Snapshot.g_blocks
               && a.Snapshot.g_expected = b.Snapshot.g_expected
               && a.Snapshot.g_errors = b.Snapshot.g_errors)
             got.Snapshot.gens st.Snapshot.gens)

(* Any truncation or byte flip must surface as [Error], never as an
   exception or a silently-wrong state: a half-written or bit-rotted
   snapshot loads as "no durable state". *)
let snapshot_corruption_prop =
  QCheck.Test.make ~count:200 ~name:"snapshot tolerates truncation and corruption"
    QCheck.(triple state_arb small_nat small_nat)
    (fun (st, cut_raw, flip_raw) ->
      let b = Snapshot.encode st in
      let len = Bytes.length b in
      let truncated = Bytes.sub b 0 (cut_raw mod len) in
      (match Snapshot.decode truncated with
      | Result.Error _ -> ()
      | Result.Ok _ -> QCheck.Test.fail_report "truncated snapshot decoded");
      let flipped = Bytes.copy b in
      let i = flip_raw mod len in
      Bytes.set flipped i (Char.chr (Char.code (Bytes.get flipped i) lxor 0x40));
      (match Snapshot.decode flipped with
      | Result.Error _ -> ()
      | Result.Ok _ -> QCheck.Test.fail_report "corrupted snapshot decoded");
      true)

let journal_tail_prop =
  QCheck.Test.make ~count:200 ~name:"journal keeps the longest valid prefix"
    QCheck.(pair (list_of_size Gen.(int_range 0 8) (pair small_nat small_string)) small_nat)
    (fun (records, cut_raw) ->
      let buf = Buffer.create 256 in
      List.iteri
        (fun i (_, data) ->
          Buffer.add_bytes buf (Snapshot.journal_record ~seq:i (Bytes.of_string data)))
        records;
      let wire = Buffer.to_bytes buf in
      let full = Snapshot.journal_decode wire in
      if List.length full <> List.length records then
        QCheck.Test.fail_reportf "full journal lost records: %d of %d" (List.length full)
          (List.length records);
      (* A crash-truncated tail drops whole records from the end, never
         from the middle, and never raises. *)
      let cut = if Bytes.length wire = 0 then 0 else cut_raw mod Bytes.length wire in
      let partial = Snapshot.journal_decode (Bytes.sub wire 0 cut) in
      List.length partial <= List.length full
      && List.for_all2
           (fun (sa, da) (sb, db) -> sa = sb && Bytes.equal da db)
           partial
           (List.filteri (fun i _ -> i < List.length partial) full))

(* Pin the u32→u64 widening deterministically: a session horizon past
   2^32 must survive both the snapshot and the journal verbatim, never
   wrap into a live-looking but wrong dedup horizon. *)
let test_wide_counters () =
  let st =
    {
      Snapshot.app = "wide";
      level = 1;
      transitions = 0x1_0000_0001;
      emissions = 0x2_0000_0002;
      next_seq = 0x3_0000_0003;
      gens = [];
    }
  in
  (match Snapshot.decode (Snapshot.encode st) with
  | Result.Error e -> Alcotest.failf "wide snapshot decode failed: %s" e
  | Result.Ok got ->
    Alcotest.(check int) "transitions" st.Snapshot.transitions got.Snapshot.transitions;
    Alcotest.(check int) "emissions" st.Snapshot.emissions got.Snapshot.emissions;
    Alcotest.(check int) "next_seq" st.Snapshot.next_seq got.Snapshot.next_seq);
  let seq = 0x1_0000_0005 in
  match Snapshot.journal_decode (Snapshot.journal_record ~seq (Bytes.of_string "abc")) with
  | [ (got, data) ] ->
    Alcotest.(check int) "journal seq" seq got;
    Alcotest.(check string) "journal data" "abc" (Bytes.to_string data)
  | records -> Alcotest.failf "wide journal decode: %d records" (List.length records)

(* The wire keeps seqs at u32: sending one past that must be an
   explicit error, not a silent alias of seq mod 2^32. *)
let test_seq_overflow_rejected () =
  let buf = Buffer.create 64 in
  (match
     Protocol.write_frame buf (Protocol.Flush_seq { seq = 0x1_0000_0000 })
   with
  | () -> Alcotest.fail "overflowing flush seq must be rejected"
  | exception Invalid_argument _ -> ());
  match
    Protocol.write_frame buf (Protocol.Chunk_seq { seq = 0x1_0000_0000; data = Bytes.create 1 })
  with
  | () -> Alcotest.fail "overflowing chunk seq must be rejected"
  | exception Invalid_argument _ -> ()

(* ------------------- v2 frames and wire-level faults ------------------ *)

let frames_equal a b =
  match (a, b) with
  | Protocol.Hello x, Protocol.Hello y -> x = y
  | ( Protocol.Hello_v { app = a1; version = v1 },
      Protocol.Hello_v { app = a2; version = v2 } ) ->
    a1 = a2 && v1 = v2
  | Protocol.Chunk x, Protocol.Chunk y -> Bytes.equal x y
  | ( Protocol.Chunk_seq { seq = s1; data = d1 },
      Protocol.Chunk_seq { seq = s2; data = d2 } ) ->
    s1 = s2 && Bytes.equal d1 d2
  | Protocol.Flush, Protocol.Flush | Protocol.Status, Protocol.Status | Protocol.Bye, Protocol.Bye
    ->
    true
  | Protocol.Flush_seq { seq = s1 }, Protocol.Flush_seq { seq = s2 } -> s1 = s2
  | _ -> false

let test_protocol_v2_roundtrip () =
  let frames =
    [
      Protocol.Hello_v { app = "kafka"; version = 2 };
      Protocol.Chunk_seq { seq = 0; data = Bytes.of_string "\x01\x02" };
      Protocol.Chunk_seq { seq = 0xFFFF; data = Bytes.empty };
      Protocol.Flush_seq { seq = 3 };
      Protocol.Hello_v { app = ""; version = 250 };
    ]
  in
  let buf = Buffer.create 128 in
  List.iter (Protocol.write_frame buf) frames;
  let wire = Buffer.to_bytes buf in
  let reader = Protocol.Reader.create () in
  let got = ref [] in
  (* Byte-by-byte: every header and payload straddles a delivery. *)
  Bytes.iter
    (fun c ->
      Protocol.Reader.add reader (Bytes.make 1 c) 1;
      match Protocol.Reader.pop_frame reader with
      | `Frame f -> got := f :: !got
      | `Awaiting -> ()
      | `Corrupt msg -> Alcotest.failf "unexpected corrupt: %s" msg)
    wire;
  checki "all v2 frames recovered" (List.length frames) (List.length !got);
  List.iter2
    (fun sent got -> checkb "v2 frame round-trips" true (frames_equal sent got))
    frames (List.rev !got)

(* Torn and duplicated frames through the net-fault planner: tearing
   never changes what the reader yields, duplication yields the victim
   exactly twice — the transport property the resumable push's dedup
   depends on. *)
let torn_duplicate_prop =
  QCheck.Test.make ~count:120 ~name:"torn/duplicated frames parse as planned"
    QCheck.(triple (int_bound 1000) (int_bound 5) bool)
    (fun (seed, victim, duplicate) ->
      let frames =
        [
          Protocol.Hello_v { app = "kafka"; version = 2 };
          Protocol.Chunk_seq { seq = 0; data = Bytes.of_string "abcdef" };
          Protocol.Chunk_seq { seq = 1; data = Bytes.make 300 'x' };
          Protocol.Chunk_seq { seq = 2; data = Bytes.empty };
          Protocol.Flush_seq { seq = 3 };
          Protocol.Status;
        ]
      in
      let fault = if duplicate then Net_fault.Duplicate_frame else Net_fault.Torn_frame in
      let reader = Protocol.Reader.create () in
      let got = ref [] in
      let feed run =
        Protocol.Reader.add reader run (Bytes.length run);
        let rec drain () =
          match Protocol.Reader.pop_frame reader with
          | `Frame f ->
            got := f :: !got;
            drain ()
          | `Awaiting -> ()
          | `Corrupt msg -> Alcotest.failf "corrupt under %s: %s" (Net_fault.name fault) msg
        in
        drain ()
      in
      List.iteri
        (fun index frame ->
          let buf = Buffer.create 64 in
          Protocol.write_frame buf frame;
          let raw = Buffer.to_bytes buf in
          match Net_fault.plan ~seed fault ~victim ~index raw with
          | Net_fault.Deliver runs -> List.iter feed runs
          | Net_fault.Deliver_then_cut runs -> List.iter feed runs
          | Net_fault.Delay (_, run) -> feed run)
        frames;
      let expected =
        List.concat
          (List.mapi
             (fun i f -> if duplicate && i = victim && victim < List.length frames then [ f; f ] else [ f ])
             frames)
      in
      List.length !got = List.length expected
      && List.for_all2 frames_equal expected (List.rev !got))

(* ------------------ durable sessions and v2 serving ------------------- *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "ripple-test-serve-%d-%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

(* The kafka fixture captures to ~1.1 KB, so split small: the
   mid-capture window must hold several chunks for half-pushed state to
   mean anything. *)
let chunks_of ?(chunk = 97) data =
  let len = Bytes.length data in
  let n = (len + chunk - 1) / chunk in
  List.init n (fun i -> Bytes.sub data (i * chunk) (min chunk (len - (i * chunk))))

(* Status comparison strips nothing: every field — profile digest,
   ladder level, counters, sequence horizon — must match. *)
let check_status_equal label control live =
  if not (Json.equal control live) then
    Alcotest.failf "%s: control=%s live=%s" label (Json.to_string control) (Json.to_string live)

let test_session_persistence () =
  let program, data = Lazy.force clean_capture in
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let mk ?store obs =
        Session.create ?store ~obs ~options:serve_options ~window:max_int ~reemit_every:0
          ~name:"kafka" ~program ()
      in
      (* Control: every chunk and the flush, uninterrupted, no store. *)
      let control =
        let s = mk (Obs.Run.create ()) in
        List.iteri
          (fun i c ->
            match Session.apply_chunk s ~seq:i c with
            | `Applied _ -> ()
            | `Duplicate _ | `Gap _ -> Alcotest.fail "control apply rejected")
          (chunks_of data);
        (match Session.apply_flush s ~seq:(List.length (chunks_of data)) with
        | `Applied -> ()
        | `Duplicate | `Gap _ -> Alcotest.fail "control flush rejected");
        Session.status s
      in
      (* Live: half the chunks into a durable session, then "crash"
         (drop the session on the floor), restore, finish, flush. *)
      let store = Snapshot.Store.open_dir dir in
      let s1 = mk ~store (Obs.Run.create ()) in
      let chunks = chunks_of data in
      let k = List.length chunks / 2 in
      List.iteri
        (fun i c -> if i < k then ignore (Session.apply_chunk s1 ~seq:i c))
        chunks;
      (* Dedup and gap answers while we are here. *)
      (match Session.apply_chunk s1 ~seq:0 (List.hd chunks) with
      | `Duplicate _ -> ()
      | `Applied _ | `Gap _ -> Alcotest.fail "replayed seq 0 must be a duplicate");
      (match Session.apply_chunk s1 ~seq:9999 (List.hd chunks) with
      | `Gap expected -> checki "gap names the horizon" k expected
      | `Applied _ | `Duplicate _ -> Alcotest.fail "far-future seq must be a gap");
      Snapshot.Store.close store;
      (* Recovery: fresh store handle, load, restore, resume. *)
      let store = Snapshot.Store.open_dir dir in
      (match Snapshot.Store.load store "kafka" with
      | None -> Alcotest.fail "no durable state found"
      | Some (state, journal) ->
        checki "journal holds the in-flight chunks" k (List.length journal);
        let s2 =
          Session.restore ~store ~obs:(Obs.Run.create ()) ~options:serve_options ~window:max_int
            ~reemit_every:0 ~program state journal
        in
        checki "recovered sequence horizon" k (Session.next_seq s2);
        List.iteri (fun i c -> if i >= k then ignore (Session.apply_chunk s2 ~seq:i c)) chunks;
        (match Session.apply_flush s2 ~seq:(List.length chunks) with
        | `Applied -> ()
        | `Duplicate | `Gap _ -> Alcotest.fail "resumed flush rejected");
        check_status_equal "recovered session" control (Session.status s2);
        Session.close s2))

let test_server_v2_frames () =
  let t = mini_server () in
  let conn = Server.Conn.create () in
  let _, data = Lazy.force clean_capture in
  let json, _ =
    expect_ok "hello_v" (Server.Conn.handle t conn (Protocol.Hello_v { app = "kafka"; version = 9 }))
  in
  checkb "server grants its own version, not the requested one" true
    (Json.member "version" json = Some (Json.Int Protocol.version));
  checkb "hello reply carries the sequence horizon" true
    (Json.member "next_seq" json = Some (Json.Int 0));
  let json, _ =
    expect_ok "chunk 0" (Server.Conn.handle t conn (Protocol.Chunk_seq { seq = 0; data }))
  in
  checkb "applied chunk echoes its seq" true (Json.member "seq" json = Some (Json.Int 0));
  checkb "applied chunk is not a dup" true (Json.member "dup" json = None);
  let json, _ =
    expect_ok "chunk 0 again" (Server.Conn.handle t conn (Protocol.Chunk_seq { seq = 0; data }))
  in
  checkb "replayed chunk is acknowledged as dup" true
    (Json.member "dup" json = Some (Json.Bool true));
  (match Server.Conn.handle t conn (Protocol.Chunk_seq { seq = 5; data }) with
  | Protocol.Error msg, `Keep ->
    checkb "gap error names the expected seq" true
      (msg = Printf.sprintf "gap: expected seq %d" 1)
  | _ -> Alcotest.fail "out-of-order chunk must be a gap error");
  let json, _ =
    expect_ok "flush_seq" (Server.Conn.handle t conn (Protocol.Flush_seq { seq = 1 }))
  in
  checkb "flush echoes its seq" true (Json.member "seq" json = Some (Json.Int 1));
  let json, _ =
    expect_ok "flush_seq dup" (Server.Conn.handle t conn (Protocol.Flush_seq { seq = 1 }))
  in
  checkb "replayed flush is a dup, not a second emission" true
    (Json.member "dup" json = Some (Json.Bool true));
  checkb "flush dup did not re-emit" true
    (Json.member "emissions" (Session.status (List.hd (Server.sessions t)))
    = Some (Json.Int 1))

let test_server_overload () =
  let t =
    Server.create
      {
        Server.default_config with
        Server.options = serve_options;
        max_sessions = 1;
        lookup = (fun _ -> Some (mini_program ()));
      }
  in
  let a = Server.Conn.create () and b = Server.Conn.create () in
  ignore (expect_ok "first app" (Server.Conn.handle t a (Protocol.Hello "kafka")));
  (match Server.Conn.handle t b (Protocol.Hello "zippy") with
  | Protocol.Error "overloaded", `Keep -> ()
  | Protocol.Error msg, _ -> Alcotest.failf "expected overloaded, got %s" msg
  | Protocol.Ok _, _ -> Alcotest.fail "session past max-sessions must be refused");
  (* A re-hello to the existing session still works at the cap. *)
  ignore (expect_ok "rebind" (Server.Conn.handle t b (Protocol.Hello "kafka")));
  checki "one session registered" 1 (List.length (Server.sessions t))

(* The end-to-end kill -9 / restart / resume acceptance test lives in
   its own executable (test_recover.ml): it forks real daemon
   processes, and OCaml forbids [Unix.fork] in a process that has ever
   spawned domains — which this binary has, via the experiment-pool
   suites. *)

let suites =
  [
    ( "serve",
      [
        QCheck_alcotest.to_alcotest chunking_prop;
        Alcotest.test_case "byte-by-byte chunking" `Quick test_byte_by_byte;
        Alcotest.test_case "session drain" `Quick test_session_drain;
        Alcotest.test_case "protocol roundtrip" `Quick test_protocol_roundtrip;
        Alcotest.test_case "protocol corrupt frames" `Quick test_protocol_corrupt;
        Alcotest.test_case "protocol replies" `Quick test_protocol_reply;
        Alcotest.test_case "rolling empty" `Quick test_rolling_empty;
        Alcotest.test_case "rolling clean empty generation" `Quick
          test_rolling_clean_empty_generation;
        Alcotest.test_case "rolling eviction" `Quick test_rolling_eviction;
        Alcotest.test_case "rolling oversized generation" `Quick
          test_rolling_oversized_generation_kept;
        Alcotest.test_case "rolling order" `Quick test_rolling_order;
        Alcotest.test_case "session ladder transitions" `Slow test_session_ladder;
        Alcotest.test_case "session matches one-shot run" `Slow test_session_matches_one_shot;
        Alcotest.test_case "session mid-capture re-emission" `Slow test_session_reemit_mid_capture;
        Alcotest.test_case "server frame handling" `Slow test_server_frames;
        Alcotest.test_case "server two concurrent sessions" `Slow test_server_two_sessions;
        Alcotest.test_case "server scrape schema" `Slow test_server_scrape_schema;
        QCheck_alcotest.to_alcotest snapshot_roundtrip_prop;
        QCheck_alcotest.to_alcotest snapshot_corruption_prop;
        QCheck_alcotest.to_alcotest journal_tail_prop;
        Alcotest.test_case "snapshot/journal counters are u64" `Quick test_wide_counters;
        Alcotest.test_case "wire seq overflow rejected" `Quick test_seq_overflow_rejected;
        Alcotest.test_case "protocol v2 roundtrip" `Quick test_protocol_v2_roundtrip;
        QCheck_alcotest.to_alcotest torn_duplicate_prop;
        Alcotest.test_case "session persistence across restore" `Slow test_session_persistence;
        Alcotest.test_case "server v2 frame handling" `Slow test_server_v2_frames;
        Alcotest.test_case "server session overload" `Slow test_server_overload;
      ] );
  ]
