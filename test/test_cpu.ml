(* Tests for ripple.cpu: configuration, hierarchy and the trace-driven
   simulator. *)

module Basic_block = Ripple_isa.Basic_block
module Builder = Ripple_isa.Builder
module Program = Ripple_isa.Program
module Cache = Ripple_cache
module Config = Ripple_cpu.Config
module Hierarchy = Ripple_cpu.Hierarchy
module Simulator = Ripple_cpu.Simulator
module W = Ripple_workloads

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checkf = check (Alcotest.float 1e-6)

let test_config_defaults () =
  let c = Config.default in
  checki "l1 latency" 3 c.Config.l1_latency;
  checki "l2 latency" 12 c.Config.l2_latency;
  checki "l3 latency" 36 c.Config.l3_latency;
  checki "memory latency" 260 c.Config.memory_latency;
  checki "cores" 20 c.Config.cores_per_socket;
  checki "l1i sets" 64 (Cache.Geometry.sets c.Config.l1i)

let test_config_penalties () =
  let c = Config.default in
  checki "l2 penalty" (12 - 3 + c.Config.frontend_bubble) (Config.miss_penalty c ~hit_level:`L2);
  checki "memory penalty" (260 - 3 + c.Config.frontend_bubble)
    (Config.miss_penalty c ~hit_level:`Memory)

let test_config_table_renders () =
  let s = Format.asprintf "%a" Config.pp_table Config.default in
  checkb "mentions 32 KiB" true
    (let needle = "32 KiB" in
     let nl = String.length needle and hl = String.length s in
     let rec go i = i + nl <= hl && (String.sub s i nl = needle || go (i + 1)) in
     go 0)

let test_hierarchy_levels () =
  let h = Hierarchy.create Config.default in
  checkb "first fetch from memory" true (Hierarchy.fetch h 1000 = Hierarchy.Memory);
  checkb "second fetch hits l2" true (Hierarchy.fetch h 1000 = Hierarchy.L2);
  checki "penalty l2" (Config.miss_penalty Config.default ~hit_level:`L2)
    (Hierarchy.penalty Config.default Hierarchy.L2)

let test_hierarchy_l3_capture () =
  (* Touch enough distinct lines to overflow L2 (1 MiB = 16384 lines) but
     not L3; re-touching them should then hit L3. *)
  let h = Hierarchy.create Config.default in
  let n = 20_000 in
  for line = 0 to n - 1 do
    ignore (Hierarchy.fetch h line)
  done;
  (* Line 0 was evicted from L2 (LRU) but lives in L3. *)
  checkb "old line in l3" true (Hierarchy.fetch h 0 = Hierarchy.L3)

(* A trivial two-block program for controlled timing checks. *)
let tiny_program () =
  let b = Builder.create () in
  let first = Builder.block b ~bytes:64 ~n_instrs:16 ~term:Basic_block.Halt () in
  let second = Builder.block b ~bytes:64 ~n_instrs:16 ~term:Basic_block.Halt () in
  Builder.set_term b first (Basic_block.Fallthrough second);
  Builder.set_term b second (Basic_block.Jump first);
  Builder.finish b ~entry:first

let test_ideal_cache_cycles () =
  let program = tiny_program () in
  let trace = Array.init 100 (fun i -> i mod 2) in
  let r = Simulator.ideal_cache ~program ~trace () in
  checki "instructions" 1600 r.Simulator.instructions;
  checkf "cycles = cpi * instrs" (Config.default.Config.cpi_base *. 1600.0) r.Simulator.cycles;
  checki "no misses" 0 r.Simulator.demand_misses

let test_run_counts_misses_and_cycles () =
  let program = tiny_program () in
  let trace = Array.init 100 (fun i -> i mod 2) in
  let r =
    Simulator.run ~program ~trace ~policy:Cache.Lru.make
      ~prefetcher:Simulator.prefetcher_none ()
  in
  (* Two lines, both cold-miss once then always hit. *)
  checki "two misses" 2 r.Simulator.demand_misses;
  checki "served by memory" 2 r.Simulator.served_memory;
  checkb "slower than ideal" true
    (r.Simulator.cycles > (Simulator.ideal_cache ~program ~trace ()).Simulator.cycles);
  checkb "ipc sane" true (r.Simulator.ipc > 0.0 && r.Simulator.ipc < 2.0)

let test_run_warmup_excludes () =
  let program = tiny_program () in
  let trace = Array.init 100 (fun i -> i mod 2) in
  let r =
    Simulator.run ~warmup:50 ~program ~trace ~policy:Cache.Lru.make
      ~prefetcher:Simulator.prefetcher_none ()
  in
  checki "half the instructions" 800 r.Simulator.instructions;
  checki "cold misses fell in warmup" 0 r.Simulator.demand_misses

let test_run_executes_hints () =
  let program = tiny_program () in
  let line0 = List.hd (Basic_block.lines (Program.block program 0)) in
  let hints = Array.make (Program.n_blocks program) [] in
  hints.(1) <- [ Basic_block.Invalidate line0 ];
  (* Block 1 invalidates block 0's line each time: every visit to block 0
     misses again. *)
  let instrumented, _ = Program.with_hints program ~hints in
  checki "hint targets block 0's line" line0
    (Basic_block.hint_line (Program.block instrumented 1).Basic_block.hints.(0));
  let trace = Array.init 100 (fun i -> i mod 2) in
  let fired = ref 0 in
  let resident_count = ref 0 in
  let r =
    Simulator.run
      ~on_hint:(fun ~at:_ _ ~resident -> incr fired; if resident then incr resident_count)
      ~program:instrumented ~trace ~policy:Cache.Lru.make
      ~prefetcher:Simulator.prefetcher_none ()
  in
  checki "hint fired every visit" 50 !fired;
  checki "hint always found the line" 50 !resident_count;
  checki "hint instructions counted" 50 r.Simulator.hint_instructions;
  (* 50 misses on line0 (re-fetched after each invalidation) + 1 cold on
     line1. *)
  checki "misses from invalidation" 51 r.Simulator.demand_misses

let test_record_stream_demand_content () =
  let program = tiny_program () in
  let trace = [| 0; 1; 0 |] in
  let stream, pos =
    Simulator.record_stream_indexed ~program ~trace ~prefetcher:Simulator.prefetcher_none ()
  in
  checki "three accesses" 3 (Cache.Access_stream.length stream);
  check (Alcotest.array Alcotest.int) "trace positions" [| 0; 1; 2 |] pos;
  checkb "all demand" true
    (Array.for_all Cache.Access.is_demand (Cache.Access_stream.to_array stream))

let test_record_stream_includes_prefetches () =
  let program = tiny_program () in
  let trace = Array.init 20 (fun i -> i mod 2) in
  let stream =
    Simulator.record_stream ~program ~trace
      ~prefetcher:(Simulator.prefetcher_nlp ?config:None) ()
  in
  checkb "has prefetch entries" true
    (Array.exists Cache.Access.is_prefetch (Cache.Access_stream.to_array stream))

let test_oracle_not_worse_than_lru () =
  let w = W.Cfg_gen.generate W.Apps.kafka in
  let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:200_000 in
  let program = w.W.Cfg_gen.program in
  let lru =
    Simulator.run ~program ~trace ~policy:Cache.Lru.make
      ~prefetcher:Simulator.prefetcher_none ()
  in
  let oracle =
    Simulator.oracle ~mode:Cache.Belady.Min ~program ~trace
      ~prefetcher:Simulator.prefetcher_none ()
  in
  checkb "oracle <= lru misses" true (oracle.Simulator.demand_misses <= lru.Simulator.demand_misses);
  checkb "oracle >= cold misses" true
    (oracle.Simulator.demand_misses >= lru.Simulator.l1i.Cache.Stats.demand_misses_cold)

let test_oracle_warmup_consistent () =
  let w = W.Cfg_gen.generate W.Apps.kafka in
  let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:200_000 in
  let program = w.W.Cfg_gen.program in
  let warmup = Array.length trace / 2 in
  let full =
    Simulator.oracle ~mode:Cache.Belady.Min ~program ~trace
      ~prefetcher:Simulator.prefetcher_none ()
  in
  let steady =
    Simulator.oracle ~warmup ~mode:Cache.Belady.Min ~program ~trace
      ~prefetcher:Simulator.prefetcher_none ()
  in
  checkb "steady-state misses below full-trace misses" true
    (steady.Simulator.demand_misses < full.Simulator.demand_misses);
  checkb "steady-state instructions below total" true
    (steady.Simulator.instructions < full.Simulator.instructions)

(* Window placement: deterministic in (spec, warmup, n), one span per
   stratum, ordered, disjoint, inside the steady-state region, and
   moved by the seed. *)
let test_sampling_select_properties () =
  let sampling = Simulator.Sampling.v ~seed:7 ~windows:5 ~window_blocks:100 () in
  let spans = Simulator.Sampling.select sampling ~warmup:1_000 ~n:10_000 in
  checki "five spans" 5 (Array.length spans);
  Array.iteri
    (fun i (lo, hi) ->
      checkb "span non-empty" true (lo < hi);
      checkb "span inside steady state" true (lo >= 1_000 && hi <= 10_000);
      if i > 0 then
        checkb "spans ordered and disjoint" true (snd spans.(i - 1) <= lo))
    spans;
  check (Alcotest.array (Alcotest.pair Alcotest.int Alcotest.int))
    "placement deterministic" spans
    (Simulator.Sampling.select sampling ~warmup:1_000 ~n:10_000);
  checkb "seed moves the windows" true
    (spans
    <> Simulator.Sampling.select
         { sampling with Simulator.Sampling.seed = 8 }
         ~warmup:1_000 ~n:10_000);
  let r = Simulator.Sampling.report_of_spans ~warmup:1_000 ~n:10_000 spans in
  checki "measured blocks" 500 r.Simulator.Sampling.measured_blocks;
  checki "total blocks" 9_000 r.Simulator.Sampling.total_blocks

(* Windows covering the whole steady-state region degenerate to — and
   must equal, field for field — the full run: same checkpoint/restore
   machinery, zero sampling error by construction. *)
let test_sampling_degenerate_exact () =
  let w = W.Cfg_gen.generate W.Apps.kafka in
  let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:120_000 in
  let program = w.W.Cfg_gen.program in
  let warmup = Array.length trace / 2 in
  let policy = Cache.Lru.make and prefetcher = Simulator.prefetcher_fdip in
  let full = Simulator.run ~warmup ~program ~trace ~policy ~prefetcher () in
  let sampling = Simulator.Sampling.v ~windows:1 ~window_blocks:(Array.length trace) () in
  let sampled, report =
    Simulator.run_trace ~warmup ~sampling ~program ~trace:(Simulator.Trace.Blocks trace)
      ~policy ~prefetcher ()
  in
  checkb "degenerate sampled run equals full run" true (sampled = full);
  match report with
  | Some r -> checkf "coverage 1.0" 1.0 r.Simulator.Sampling.coverage
  | None -> Alcotest.fail "sampled run must return a report"

(* A genuinely sampled run measures less, stays deterministic, and its
   IPC lands near the full run's. *)
let test_sampling_run_deterministic () =
  let w = W.Cfg_gen.generate W.Apps.kafka in
  let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:120_000 in
  let program = w.W.Cfg_gen.program in
  let warmup = Array.length trace / 2 in
  let policy = Cache.Lru.make and prefetcher = Simulator.prefetcher_fdip in
  let sampling = Simulator.Sampling.v ~windows:4 ~window_blocks:1_000 () in
  let run () =
    Simulator.run_trace ~warmup ~sampling ~program ~trace:(Simulator.Trace.Blocks trace)
      ~policy ~prefetcher ()
  in
  let a, ra = run () in
  let b, _ = run () in
  checkb "sampled run deterministic" true (a = b);
  (match ra with
  | Some r ->
    checki "measured what was asked" 4_000 r.Simulator.Sampling.measured_blocks;
    checkb "partial coverage" true (r.Simulator.Sampling.coverage < 1.0)
  | None -> Alcotest.fail "sampled run must return a report");
  let full = Simulator.run ~warmup ~program ~trace ~policy ~prefetcher () in
  checkb "sampled IPC within 15% of full" true
    (Float.abs (a.Simulator.ipc -. full.Simulator.ipc) /. full.Simulator.ipc < 0.15)

(* The trace representation is invisible: a run over an mmap-backed
   Int_stream equals the run over the int array it came from. *)
let test_run_trace_stream_equivalence () =
  let module Int_stream = Ripple_util.Int_stream in
  let w = W.Cfg_gen.generate W.Apps.kafka in
  let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:60_000 in
  let program = w.W.Cfg_gen.program in
  let warmup = Array.length trace / 2 in
  let policy = Cache.Lru.make and prefetcher = Simulator.prefetcher_fdip in
  let from_blocks = Simulator.run ~warmup ~program ~trace ~policy ~prefetcher () in
  let stream = Int_stream.of_array ~backing:(Int_stream.spill ()) trace in
  let from_stream =
    fst
      (Simulator.run_trace ~warmup ~program ~trace:(Simulator.Trace.Stream stream) ~policy
         ~prefetcher ())
  in
  Int_stream.close stream;
  checkb "stream trace equals block trace" true (from_stream = from_blocks)

let suites =
  [
    ( "cpu.config",
      [
        Alcotest.test_case "defaults" `Quick test_config_defaults;
        Alcotest.test_case "penalties" `Quick test_config_penalties;
        Alcotest.test_case "table renders" `Quick test_config_table_renders;
      ] );
    ( "cpu.hierarchy",
      [
        Alcotest.test_case "levels" `Quick test_hierarchy_levels;
        Alcotest.test_case "l3 capture" `Quick test_hierarchy_l3_capture;
      ] );
    ( "cpu.simulator",
      [
        Alcotest.test_case "ideal cache cycles" `Quick test_ideal_cache_cycles;
        Alcotest.test_case "run counts" `Quick test_run_counts_misses_and_cycles;
        Alcotest.test_case "warmup excludes" `Quick test_run_warmup_excludes;
        Alcotest.test_case "executes hints" `Quick test_run_executes_hints;
        Alcotest.test_case "record stream demand" `Quick test_record_stream_demand_content;
        Alcotest.test_case "record stream prefetches" `Quick test_record_stream_includes_prefetches;
        Alcotest.test_case "oracle vs lru" `Quick test_oracle_not_worse_than_lru;
        Alcotest.test_case "oracle warmup" `Quick test_oracle_warmup_consistent;
        Alcotest.test_case "sampling window placement" `Quick test_sampling_select_properties;
        Alcotest.test_case "sampling degenerate = full" `Slow test_sampling_degenerate_exact;
        Alcotest.test_case "sampling deterministic" `Slow test_sampling_run_deterministic;
        Alcotest.test_case "stream trace = block trace" `Slow test_run_trace_stream_equivalence;
      ] );
  ]
