(* Tests for ripple.isa: addresses, basic blocks, builder and program
   layout. *)

module Addr = Ripple_isa.Addr
module Basic_block = Ripple_isa.Basic_block
module Builder = Ripple_isa.Builder
module Program = Ripple_isa.Program

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* ------------------------------- Addr ------------------------------- *)

let test_addr_line_arithmetic () =
  checki "line size" 64 Addr.line_size;
  checki "line of 0" 0 (Addr.line_of 0);
  checki "line of 63" 0 (Addr.line_of 63);
  checki "line of 64" 1 (Addr.line_of 64);
  checki "base of line 2" 128 (Addr.base_of_line 2);
  checki "offset" 5 (Addr.offset 69)

let test_addr_lines_of_range () =
  check (Alcotest.list Alcotest.int) "within one line" [ 1 ] (Addr.lines_of_range 64 ~bytes:64);
  check (Alcotest.list Alcotest.int) "crosses boundary" [ 0; 1 ] (Addr.lines_of_range 60 ~bytes:8);
  check (Alcotest.list Alcotest.int) "empty" [] (Addr.lines_of_range 100 ~bytes:0);
  check (Alcotest.list Alcotest.int) "three lines" [ 0; 1; 2 ]
    (Addr.lines_of_range 10 ~bytes:130)

let test_addr_count_matches_list () =
  for addr = 0 to 200 do
    let bytes = (addr * 7 mod 90) + 1 in
    checki "count = list length"
      (List.length (Addr.lines_of_range addr ~bytes))
      (Addr.count_lines_of_range addr ~bytes)
  done

let test_addr_set_index () =
  checki "set of line 0" 0 (Addr.set_index 0 ~sets:64);
  checki "set of line 64" 0 (Addr.set_index 64 ~sets:64);
  checki "set of line 65" 1 (Addr.set_index 65 ~sets:64)

let prop_lines_contiguous =
  QCheck.Test.make ~count:500 ~name:"lines_of_range is contiguous and covers the range"
    QCheck.(pair (int_range 0 100_000) (int_range 1 1_000))
    (fun (addr, bytes) ->
      let lines = Addr.lines_of_range addr ~bytes in
      let first = Addr.line_of addr and last = Addr.line_of (addr + bytes - 1) in
      lines = List.init (last - first + 1) (fun i -> first + i))

(* --------------------------- Basic_block ---------------------------- *)

let block ?(addr = 0) ?(bytes = 40) ?(hints = [||]) term =
  {
    Basic_block.id = 0;
    addr;
    bytes;
    n_instrs = 10;
    privilege = Basic_block.User;
    jit = false;
    term;
    hints;
  }

let test_block_totals () =
  let b = block ~hints:[| Basic_block.Invalidate 3; Basic_block.Demote 4 |] Basic_block.Return in
  checki "total bytes includes hints" (40 + (2 * Basic_block.hint_bytes)) (Basic_block.total_bytes b);
  checki "total instrs includes hints" 12 (Basic_block.total_instrs b)

let test_block_lines_ignore_hints () =
  (* Layout-preserving injection: lines depend on code bytes only. *)
  let plain = block ~addr:100 Basic_block.Return in
  let hinted = block ~addr:100 ~hints:[| Basic_block.Invalidate 9 |] Basic_block.Return in
  check (Alcotest.list Alcotest.int) "same lines" (Basic_block.lines plain)
    (Basic_block.lines hinted)

let test_block_successors () =
  check (Alcotest.list Alcotest.int) "cond" [ 3; 4 ]
    (Basic_block.successors (block (Basic_block.Cond { taken = 3; fallthrough = 4 })));
  check (Alcotest.list Alcotest.int) "call" [ 7 ]
    (Basic_block.successors (block (Basic_block.Call { callee = 7; return_to = 8 })));
  check (Alcotest.list Alcotest.int) "return" [] (Basic_block.successors (block Basic_block.Return))

let test_block_classification () =
  checkb "cond is conditional" true
    (Basic_block.is_conditional (block (Basic_block.Cond { taken = 0; fallthrough = 0 })));
  checkb "return is indirect" true (Basic_block.is_indirect (block Basic_block.Return));
  checkb "jump is not indirect" false (Basic_block.is_indirect (block (Basic_block.Jump 0)))

let test_hint_line () =
  checki "invalidate" 5 (Basic_block.hint_line (Basic_block.Invalidate 5));
  checki "demote" 6 (Basic_block.hint_line (Basic_block.Demote 6))

(* ------------------------ Builder / Program ------------------------- *)

let small_program () =
  let b = Builder.create () in
  let entry = Builder.block b ~aligned:true ~bytes:32 ~term:Basic_block.Halt () in
  let loop = Builder.block b ~bytes:48 ~term:Basic_block.Halt () in
  let exit = Builder.block b ~bytes:16 ~term:Basic_block.Halt () in
  Builder.set_term b entry (Basic_block.Fallthrough loop);
  Builder.set_term b loop (Basic_block.Cond { taken = loop; fallthrough = exit });
  (Builder.finish b ~entry, entry, loop, exit)

let test_builder_layout () =
  let program, entry, loop, exit = small_program () in
  checki "three blocks" 3 (Program.n_blocks program);
  let be = Program.block program entry in
  let bl = Program.block program loop in
  let bx = Program.block program exit in
  checki "entry at user base" Program.user_base be.Basic_block.addr;
  checki "loop packed after entry" (Program.user_base + 32) bl.Basic_block.addr;
  checki "exit packed after loop" (Program.user_base + 32 + 48) bx.Basic_block.addr

let test_builder_alignment () =
  let b = Builder.create () in
  let first = Builder.block b ~bytes:10 ~term:Basic_block.Halt () in
  let second = Builder.block b ~aligned:true ~bytes:10 ~term:Basic_block.Halt () in
  let program = Builder.finish b ~entry:first in
  let addr = (Program.block program second).Basic_block.addr in
  checki "aligned to 16" 0 (addr mod Program.block_alignment)

let test_builder_kernel_region () =
  let b = Builder.create () in
  let user = Builder.block b ~bytes:10 ~term:Basic_block.Halt () in
  let kernel =
    Builder.block b ~privilege:Basic_block.Kernel ~bytes:10 ~term:Basic_block.Halt ()
  in
  let program = Builder.finish b ~entry:user in
  checkb "kernel above kernel_base" true
    ((Program.block program kernel).Basic_block.addr >= Program.kernel_base);
  checkb "user below kernel_base" true
    ((Program.block program user).Basic_block.addr < Program.kernel_base)

let test_builder_straight_line () =
  let b = Builder.create () in
  let first, last = Builder.straight_line b ~bytes_per_block:20 ~n:5 () in
  let program = Builder.finish b ~entry:first in
  checki "five blocks" 5 (Program.n_blocks program);
  checki "ids contiguous" (first + 4) last;
  (* All but the last fall through to the next. *)
  for i = first to last - 1 do
    match (Program.block program i).Basic_block.term with
    | Basic_block.Fallthrough next -> checki "chain" (i + 1) next
    | _ -> Alcotest.fail "expected fallthrough"
  done

let test_program_block_at () =
  let program, entry, loop, _ = small_program () in
  let be = Program.block program entry in
  (match Program.block_at program be.Basic_block.addr with
  | Some b -> checki "exact start" entry b.Basic_block.id
  | None -> Alcotest.fail "not found");
  (match Program.block_at program (be.Basic_block.addr + 31) with
  | Some b -> checki "last byte" entry b.Basic_block.id
  | None -> Alcotest.fail "not found");
  (match Program.block_at program (be.Basic_block.addr + 32) with
  | Some b -> checki "next block start" loop b.Basic_block.id
  | None -> Alcotest.fail "not found");
  check Alcotest.bool "below text" true (Program.block_at program 0 = None)

let test_program_statics () =
  let program, _, _, _ = small_program () in
  checki "static bytes" (32 + 48 + 16) (Program.static_bytes program);
  checki "no hints yet" 0 (Program.static_hints program);
  checkb "footprint lines positive" true (Program.footprint_lines program > 0)

let test_program_with_hints () =
  let program, entry, loop, _ = small_program () in
  let hints = Array.make (Program.n_blocks program) [] in
  hints.(loop) <- [ Basic_block.Invalidate 123 ];
  let instrumented, remap = Program.with_hints program ~hints in
  checki "hint count" 1 (Program.static_hints instrumented);
  checki "static bytes grow" (Program.static_bytes program + Basic_block.hint_bytes)
    (Program.static_bytes instrumented);
  (* Layout-preserving: addresses unchanged, remap is identity. *)
  let old_addr = (Program.block program entry).Basic_block.addr in
  checki "addresses unchanged" old_addr (Program.block instrumented entry).Basic_block.addr;
  checki "remap identity" 12345 (remap 12345);
  (* The original program is untouched. *)
  checki "original keeps no hints" 0 (Program.static_hints program)

let qcheck = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "isa.addr",
      [
        Alcotest.test_case "line arithmetic" `Quick test_addr_line_arithmetic;
        Alcotest.test_case "lines_of_range" `Quick test_addr_lines_of_range;
        Alcotest.test_case "count matches list" `Quick test_addr_count_matches_list;
        Alcotest.test_case "set index" `Quick test_addr_set_index;
        qcheck prop_lines_contiguous;
      ] );
    ( "isa.basic_block",
      [
        Alcotest.test_case "totals" `Quick test_block_totals;
        Alcotest.test_case "lines ignore hints" `Quick test_block_lines_ignore_hints;
        Alcotest.test_case "successors" `Quick test_block_successors;
        Alcotest.test_case "classification" `Quick test_block_classification;
        Alcotest.test_case "hint line" `Quick test_hint_line;
      ] );
    ( "isa.program",
      [
        Alcotest.test_case "layout" `Quick test_builder_layout;
        Alcotest.test_case "alignment" `Quick test_builder_alignment;
        Alcotest.test_case "kernel region" `Quick test_builder_kernel_region;
        Alcotest.test_case "straight line" `Quick test_builder_straight_line;
        Alcotest.test_case "block_at" `Quick test_program_block_at;
        Alcotest.test_case "statics" `Quick test_program_statics;
        Alcotest.test_case "with_hints" `Quick test_program_with_hints;
      ] );
  ]
