(* Property tests for the packed access-stream representation: the
   packing round-trips, the chunked stream is observationally equal to a
   materialized array, cursors replay identically after a rewind, and —
   the load-bearing property — oracle results computed over the
   streaming path match the materialized path exactly. *)

module Access = Ripple_cache.Access
module Access_stream = Ripple_cache.Access_stream
module Belady = Ripple_cache.Belady
module Geometry = Ripple_cache.Geometry
module Simulator = Ripple_cpu.Simulator
module Lru = Ripple_cache.Lru
module Pipeline = Ripple_core.Pipeline
module W = Ripple_workloads

(* Accesses over a deliberately small line space so random streams have
   reuse (hits, evictions, next-use structure), not just cold misses. *)
let arb_access =
  QCheck.map
    (fun (line, block, pf) ->
      if pf then Access.prefetch ~line ~block else Access.demand ~line ~block)
    QCheck.(triple (int_range 0 512) (int_range (-1) 300) bool)

let arb_accesses = QCheck.(list_of_size (Gen.int_range 0 2000) arb_access)

let prop_pack_roundtrip =
  QCheck.Test.make ~count:500 ~name:"pack/unpack round-trips" arb_access (fun a ->
      Access.unpack (Access.pack a) = a)

let prop_pack_bounds =
  (* The extremes of the documented ranges survive; line and kind are
     recoverable independently of block. *)
  QCheck.Test.make ~count:200 ~name:"packed accessors agree with record fields"
    arb_access (fun a ->
      let p = Access.pack a in
      Access.packed_line p = a.Access.line
      && Access.packed_block p = a.Access.block
      && Access.packed_pc p = a.Access.pc
      && Access.packed_is_demand p = Access.is_demand a
      && Access.packed_is_prefetch p = Access.is_prefetch a)

let prop_stream_materializes =
  QCheck.Test.make ~count:100 ~name:"of_list/to_array round-trips" arb_accesses
    (fun accs ->
      let stream = Access_stream.of_list accs in
      Access_stream.length stream = List.length accs
      && Array.to_list (Access_stream.to_array stream) = accs)

let prop_stream_iteration_orders =
  (* get, iter, iteri, fold_left and iteri_rev all observe the same
     sequence, across chunk boundaries. *)
  QCheck.Test.make ~count:60 ~name:"iteration orders agree" arb_accesses (fun accs ->
      let stream = Access_stream.of_list accs in
      let n = Access_stream.length stream in
      let by_get = Array.init n (Access_stream.get stream) in
      let by_iter = ref [] in
      Access_stream.iter (fun p -> by_iter := p :: !by_iter) stream;
      let by_rev = ref [] in
      Access_stream.iteri_rev (fun i p -> by_rev := (i, p) :: !by_rev) stream;
      let folded = Access_stream.fold_left (fun acc p -> p :: acc) [] stream in
      Array.to_list by_get = List.rev !by_iter
      && Array.to_list by_get = List.rev folded
      && !by_rev = List.mapi (fun i p -> (i, p)) (Array.to_list by_get))

let prop_cursor_rewind =
  QCheck.Test.make ~count:60 ~name:"cursor rewind replays identically" arb_accesses
    (fun accs ->
      let stream = Access_stream.of_list accs in
      let cursor = Access_stream.Cursor.create stream in
      let drain () =
        let out = ref [] in
        while Access_stream.Cursor.has_next cursor do
          out := Access_stream.Cursor.next cursor :: !out
        done;
        List.rev !out
      in
      let first = drain () in
      Access_stream.Cursor.rewind cursor;
      let second = drain () in
      first = second
      && List.length first = Access_stream.length stream
      && Access_stream.Cursor.pos cursor = Access_stream.length stream)

let prop_builder_chunking =
  (* A stream built incrementally equals one built in bulk, across sizes
     that straddle the chunk boundary. *)
  QCheck.Test.make ~count:20 ~name:"builder equals bulk construction around chunk edges"
    QCheck.(int_range 0 3)
    (fun delta ->
      let n = Access_stream.chunk_entries + delta - 2 in
      let accs = List.init n (fun i -> Access.demand ~line:(i land 1023) ~block:(-1)) in
      let b = Access_stream.Builder.create () in
      List.iter (Access_stream.Builder.add_access b) accs;
      let incremental = Access_stream.Builder.finish b in
      let bulk = Access_stream.of_list accs in
      Access_stream.length incremental = n
      && Access_stream.to_array incremental = Access_stream.to_array bulk)

(* ----------------- heap vs mmap spill backing ----------------------- *)

let tiny = Geometry.v ~size_bytes:(4 * 2 * 64) ~ways:2
let belady_equal (a : Belady.result) (b : Belady.result) = a = b

module Int_stream = Ripple_util.Int_stream

let spill_backing = Access_stream.Spill { dir = None }

let prop_spill_backing_unobservable =
  (* Every accessor observes the identical sequence whether the words
     live in heap chunks or in an mmap-backed spill file. *)
  QCheck.Test.make ~count:60 ~name:"mmap backing is unobservable" arb_accesses
    (fun accs ->
      let heap = Access_stream.of_list accs in
      let spill = Access_stream.of_list ~backing:spill_backing accs in
      let n = Access_stream.length heap in
      let same_forward =
        Access_stream.length spill = n
        && Array.init n (Access_stream.get heap) = Array.init n (Access_stream.get spill)
        && Access_stream.to_array heap = Access_stream.to_array spill
      in
      let rev_h = ref [] and rev_s = ref [] in
      Access_stream.iteri_rev (fun i p -> rev_h := (i, p) :: !rev_h) heap;
      Access_stream.iteri_rev (fun i p -> rev_s := (i, p) :: !rev_s) spill;
      let spilled = n = 0 || Access_stream.is_spill spill in
      Access_stream.close spill;
      same_forward && spilled && !rev_h = !rev_s)

let prop_spill_chunk_edges =
  (* Write-through buffering around the chunk boundary: spill streams
     whose lengths straddle the Builder's flush size equal their heap
     twins entry for entry. *)
  QCheck.Test.make ~count:8 ~name:"spill builder equals heap around chunk edges"
    QCheck.(int_range 0 4)
    (fun delta ->
      let n = Access_stream.chunk_entries + delta - 2 in
      let accs = List.init n (fun i -> Access.demand ~line:(i land 1023) ~block:(-1)) in
      let heap = Access_stream.of_list accs in
      let spill = Access_stream.of_list ~backing:spill_backing accs in
      let equal =
        Access_stream.length spill = n
        && Access_stream.to_array spill = Access_stream.to_array heap
      in
      Access_stream.close spill;
      equal)

let prop_belady_backing_equivalence =
  (* The oracle is backing-blind: identical result records (counters and
     the full eviction log) over heap and spill streams, in both modes. *)
  QCheck.Test.make ~count:20 ~name:"belady: heap backing = mmap backing" arb_accesses
    (fun accs ->
      let heap = Access_stream.of_list accs in
      let spill = Access_stream.of_list ~backing:spill_backing accs in
      let equal =
        belady_equal
          (Belady.simulate tiny ~mode:Belady.Min heap)
          (Belady.simulate tiny ~mode:Belady.Min spill)
        && belady_equal
             (Belady.simulate tiny ~mode:Belady.Demand_min heap)
             (Belady.simulate tiny ~mode:Belady.Demand_min spill)
      in
      Access_stream.close spill;
      equal)

let test_spill_lifecycle () =
  (* Spill files are registered while live, unlinked exactly once by
     Cursor.close / close, and reads survive the unlink. *)
  let accs = List.init 1000 (fun i -> Access.demand ~line:(i land 63) ~block:(-1)) in
  let s = Access_stream.of_list ~backing:spill_backing accs in
  let path =
    match Int_stream.spill_path (Access_stream.raw s) with
    | Some p -> p
    | None -> Alcotest.fail "spill stream has no backing file"
  in
  Alcotest.(check bool) "file exists while live" true (Sys.file_exists path);
  Alcotest.(check bool) "registry lists it" true (List.mem path (Int_stream.Spill.live ()));
  let cursor = Access_stream.Cursor.create s in
  Access_stream.Cursor.close cursor;
  Alcotest.(check bool) "file unlinked on cursor close" false (Sys.file_exists path);
  Alcotest.(check bool) "registry dropped it" false
    (List.mem path (Int_stream.Spill.live ()));
  Access_stream.close s;
  (* Reads stay valid after the unlink: the mapping outlives the name. *)
  Alcotest.(check int) "reads survive unlink" (List.length accs) (Access_stream.length s);
  Alcotest.(check bool) "contents survive unlink" true
    (Access_stream.to_array s = Array.of_list accs)

let test_spill_sweep () =
  (* The failure-path hook unlinks every still-registered spill file. *)
  let mk () =
    Access_stream.of_list ~backing:spill_backing
      (List.init 100 (fun i -> Access.demand ~line:i ~block:(-1)))
  in
  let a = mk () and b = mk () in
  let live = Int_stream.Spill.live () in
  Alcotest.(check bool) "at least two live spill files" true (List.length live >= 2);
  let swept = Int_stream.Spill.sweep () in
  Alcotest.(check bool) "sweep removed them" true (swept >= 2);
  Alcotest.(check (list string)) "registry empty" [] (Int_stream.Spill.live ());
  List.iter
    (fun p -> Alcotest.(check bool) ("gone: " ^ p) false (Sys.file_exists p))
    live;
  (* Idempotent: closing after a sweep is a no-op. *)
  Access_stream.close a;
  Access_stream.close b

let prop_scratch_backing_equivalence =
  (* Read-write scratch tables behave like int arrays on both backings. *)
  QCheck.Test.make ~count:40 ~name:"scratch: heap = mmap"
    QCheck.(pair (int_range 1 5000) (list_of_size (Gen.int_range 0 200) (pair small_nat int)))
    (fun (n, writes) ->
      let heap = Int_stream.Scratch.make n (-1) in
      let spill = Int_stream.Scratch.make ~backing:(Int_stream.spill ()) n (-1) in
      List.iter
        (fun (i, x) ->
          let i = i mod n in
          Int_stream.Scratch.set heap i x;
          Int_stream.Scratch.set spill i x)
        writes;
      let equal =
        Int_stream.Scratch.length spill = n
        && Array.init n (Int_stream.Scratch.get heap)
           = Array.init n (Int_stream.Scratch.get spill)
      in
      Int_stream.Scratch.close heap;
      Int_stream.Scratch.close spill;
      equal)

(* ----------------- streaming vs materialized oracle ----------------- *)

let prop_belady_stream_equivalence =
  (* Belady over the chunked stream vs over a stream rebuilt from the
     materialized boxed array: identical result records (counters and
     the full eviction log), in both modes. *)
  QCheck.Test.make ~count:40 ~name:"belady: streaming path = materialized path"
    arb_accesses (fun accs ->
      let streaming = Access_stream.of_list accs in
      let materialized = Access_stream.of_array (Access_stream.to_array streaming) in
      belady_equal
        (Belady.simulate tiny ~mode:Belady.Min streaming)
        (Belady.simulate tiny ~mode:Belady.Min materialized)
      && belady_equal
           (Belady.simulate tiny ~mode:Belady.Demand_min streaming)
           (Belady.simulate tiny ~mode:Belady.Demand_min materialized))

let prop_oracle_recorded_stream_equivalence =
  (* The end-to-end streaming contract: [Simulator.oracle] fed a
     pre-recorded packed stream must equal the oracle left to record its
     own — same Simulator.result, workload by workload. *)
  QCheck.Test.make ~count:4 ~name:"oracle: cached stream = fresh recording"
    QCheck.(int_range 1 500)
    (fun seed ->
      let w = W.Cfg_gen.generate { W.Apps.kafka with W.App_model.seed } in
      let program = w.W.Cfg_gen.program in
      let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:40_000 in
      let prefetcher = Simulator.prefetcher_fdip in
      let stream = Simulator.record_stream_indexed ~program ~trace ~prefetcher () in
      let with_stream =
        Simulator.oracle ~warmup:1_000 ~stream ~mode:Belady.Demand_min ~program ~trace
          ~prefetcher ()
      in
      let fresh =
        Simulator.oracle ~warmup:1_000 ~mode:Belady.Demand_min ~program ~trace ~prefetcher
          ()
      in
      with_stream = fresh)

let suites =
  [
    ( "stream",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_pack_roundtrip;
          prop_pack_bounds;
          prop_stream_materializes;
          prop_stream_iteration_orders;
          prop_cursor_rewind;
          prop_builder_chunking;
          prop_belady_stream_equivalence;
          prop_oracle_recorded_stream_equivalence;
        ]
      @ List.map QCheck_alcotest.to_alcotest
          [
            prop_spill_backing_unobservable;
            prop_spill_chunk_edges;
            prop_belady_backing_equivalence;
            prop_scratch_backing_equivalence;
          ]
      @ [
          Alcotest.test_case "spill lifecycle (close/unlink)" `Quick test_spill_lifecycle;
          Alcotest.test_case "spill sweep (failure-path cleanup)" `Quick test_spill_sweep;
        ] );
  ]
