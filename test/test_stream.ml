(* Property tests for the packed access-stream representation: the
   packing round-trips, the chunked stream is observationally equal to a
   materialized array, cursors replay identically after a rewind, and —
   the load-bearing property — oracle results computed over the
   streaming path match the materialized path exactly. *)

module Access = Ripple_cache.Access
module Access_stream = Ripple_cache.Access_stream
module Belady = Ripple_cache.Belady
module Geometry = Ripple_cache.Geometry
module Simulator = Ripple_cpu.Simulator
module Lru = Ripple_cache.Lru
module Pipeline = Ripple_core.Pipeline
module W = Ripple_workloads

(* Accesses over a deliberately small line space so random streams have
   reuse (hits, evictions, next-use structure), not just cold misses. *)
let arb_access =
  QCheck.map
    (fun (line, block, pf) ->
      if pf then Access.prefetch ~line ~block else Access.demand ~line ~block)
    QCheck.(triple (int_range 0 512) (int_range (-1) 300) bool)

let arb_accesses = QCheck.(list_of_size (Gen.int_range 0 2000) arb_access)

let prop_pack_roundtrip =
  QCheck.Test.make ~count:500 ~name:"pack/unpack round-trips" arb_access (fun a ->
      Access.unpack (Access.pack a) = a)

let prop_pack_bounds =
  (* The extremes of the documented ranges survive; line and kind are
     recoverable independently of block. *)
  QCheck.Test.make ~count:200 ~name:"packed accessors agree with record fields"
    arb_access (fun a ->
      let p = Access.pack a in
      Access.packed_line p = a.Access.line
      && Access.packed_block p = a.Access.block
      && Access.packed_pc p = a.Access.pc
      && Access.packed_is_demand p = Access.is_demand a
      && Access.packed_is_prefetch p = Access.is_prefetch a)

let prop_stream_materializes =
  QCheck.Test.make ~count:100 ~name:"of_list/to_array round-trips" arb_accesses
    (fun accs ->
      let stream = Access_stream.of_list accs in
      Access_stream.length stream = List.length accs
      && Array.to_list (Access_stream.to_array stream) = accs)

let prop_stream_iteration_orders =
  (* get, iter, iteri, fold_left and iteri_rev all observe the same
     sequence, across chunk boundaries. *)
  QCheck.Test.make ~count:60 ~name:"iteration orders agree" arb_accesses (fun accs ->
      let stream = Access_stream.of_list accs in
      let n = Access_stream.length stream in
      let by_get = Array.init n (Access_stream.get stream) in
      let by_iter = ref [] in
      Access_stream.iter (fun p -> by_iter := p :: !by_iter) stream;
      let by_rev = ref [] in
      Access_stream.iteri_rev (fun i p -> by_rev := (i, p) :: !by_rev) stream;
      let folded = Access_stream.fold_left (fun acc p -> p :: acc) [] stream in
      Array.to_list by_get = List.rev !by_iter
      && Array.to_list by_get = List.rev folded
      && !by_rev = List.mapi (fun i p -> (i, p)) (Array.to_list by_get))

let prop_cursor_rewind =
  QCheck.Test.make ~count:60 ~name:"cursor rewind replays identically" arb_accesses
    (fun accs ->
      let stream = Access_stream.of_list accs in
      let cursor = Access_stream.Cursor.create stream in
      let drain () =
        let out = ref [] in
        while Access_stream.Cursor.has_next cursor do
          out := Access_stream.Cursor.next cursor :: !out
        done;
        List.rev !out
      in
      let first = drain () in
      Access_stream.Cursor.rewind cursor;
      let second = drain () in
      first = second
      && List.length first = Access_stream.length stream
      && Access_stream.Cursor.pos cursor = Access_stream.length stream)

let prop_builder_chunking =
  (* A stream built incrementally equals one built in bulk, across sizes
     that straddle the chunk boundary. *)
  QCheck.Test.make ~count:20 ~name:"builder equals bulk construction around chunk edges"
    QCheck.(int_range 0 3)
    (fun delta ->
      let n = Access_stream.chunk_entries + delta - 2 in
      let accs = List.init n (fun i -> Access.demand ~line:(i land 1023) ~block:(-1)) in
      let b = Access_stream.Builder.create () in
      List.iter (Access_stream.Builder.add_access b) accs;
      let incremental = Access_stream.Builder.finish b in
      let bulk = Access_stream.of_list accs in
      Access_stream.length incremental = n
      && Access_stream.to_array incremental = Access_stream.to_array bulk)

(* ----------------- streaming vs materialized oracle ----------------- *)

let tiny = Geometry.v ~size_bytes:(4 * 2 * 64) ~ways:2

let belady_equal (a : Belady.result) (b : Belady.result) = a = b

let prop_belady_stream_equivalence =
  (* Belady over the chunked stream vs over a stream rebuilt from the
     materialized boxed array: identical result records (counters and
     the full eviction log), in both modes. *)
  QCheck.Test.make ~count:40 ~name:"belady: streaming path = materialized path"
    arb_accesses (fun accs ->
      let streaming = Access_stream.of_list accs in
      let materialized = Access_stream.of_array (Access_stream.to_array streaming) in
      belady_equal
        (Belady.simulate tiny ~mode:Belady.Min streaming)
        (Belady.simulate tiny ~mode:Belady.Min materialized)
      && belady_equal
           (Belady.simulate tiny ~mode:Belady.Demand_min streaming)
           (Belady.simulate tiny ~mode:Belady.Demand_min materialized))

let prop_oracle_recorded_stream_equivalence =
  (* The end-to-end streaming contract: [Simulator.oracle] fed a
     pre-recorded packed stream must equal the oracle left to record its
     own — same Simulator.result, workload by workload. *)
  QCheck.Test.make ~count:4 ~name:"oracle: cached stream = fresh recording"
    QCheck.(int_range 1 500)
    (fun seed ->
      let w = W.Cfg_gen.generate { W.Apps.kafka with W.App_model.seed } in
      let program = w.W.Cfg_gen.program in
      let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:40_000 in
      let prefetcher = Simulator.prefetcher_fdip in
      let stream = Simulator.record_stream_indexed ~program ~trace ~prefetcher () in
      let with_stream =
        Simulator.oracle ~warmup:1_000 ~stream ~mode:Belady.Demand_min ~program ~trace
          ~prefetcher ()
      in
      let fresh =
        Simulator.oracle ~warmup:1_000 ~mode:Belady.Demand_min ~program ~trace ~prefetcher
          ()
      in
      with_stream = fresh)

let suites =
  [
    ( "stream",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_pack_roundtrip;
          prop_pack_bounds;
          prop_stream_materializes;
          prop_stream_iteration_orders;
          prop_cursor_rewind;
          prop_builder_chunking;
          prop_belady_stream_equivalence;
          prop_oracle_recorded_stream_equivalence;
        ] );
  ]
