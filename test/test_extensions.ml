(* Tests for the beyond-the-matrix extensions: SHiP replacement, the
   RDIP prefetcher, and LBR-sampled profiling. *)

module Basic_block = Ripple_isa.Basic_block
module Builder = Ripple_isa.Builder
module Program = Ripple_isa.Program
module Access = Ripple_cache.Access
module Geometry = Ripple_cache.Geometry
module Cache = Ripple_cache.Cache
module Stats = Ripple_cache.Stats
module Ship = Ripple_cache.Ship
module Lru = Ripple_cache.Lru
module Rdip = Ripple_prefetch.Rdip
module Prefetcher = Ripple_prefetch.Prefetcher
module Lbr = Ripple_trace.Lbr
module Simulator = Ripple_cpu.Simulator
module Pipeline = Ripple_core.Pipeline
module W = Ripple_workloads

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

let tiny = Geometry.v ~size_bytes:(2 * 2 * 64) ~ways:2
let demand line = Access.demand ~line ~block:line

(* ------------------------------- SHiP ------------------------------- *)

let test_ship_basic_operation () =
  let c = Cache.create ~geometry:tiny ~policy:Ship.make () in
  ignore (Cache.access c (demand 0));
  checkb "hit after fill" true (Cache.access c (demand 0) = Cache.Hit);
  ignore (Cache.access c (demand 2));
  ignore (Cache.access c (demand 4));
  checki "set stays full" 2 (Cache.occupancy c ~set:0)

let test_ship_learns_streaming_signature () =
  (* Line 0 is hot; a stream of one-shot lines flows past it.  After the
     predictor learns the streaming signatures are never reused, the hot
     line stops being evicted. *)
  let c = Cache.create ~geometry:tiny ~policy:Ship.make () in
  let misses_on_0 = ref 0 in
  for i = 1 to 600 do
    if Cache.access c (demand 0) = Cache.Miss then incr misses_on_0;
    ignore (Cache.access c (demand (2 * i)))
  done;
  (* LRU would miss on 0 every other round (2-way set shared with the
     stream); SHiP must do clearly better in the steady state. *)
  checkb "hot line mostly resident" true (!misses_on_0 < 150)

let test_ship_storage_positive () =
  let p = Ship.make ~sets:64 ~ways:8 in
  checkb "accounts metadata" true (p.Ripple_cache.Policy.storage_bits > 0)

(* ------------------------------- RDIP ------------------------------- *)

(* A program whose function f misses the same lines on every call: RDIP
   should learn the (call-site -> miss set) mapping. *)
let rdip_program () =
  let b = Builder.create () in
  let main = Builder.block b ~bytes:64 ~term:Basic_block.Halt () in
  let f0 = Builder.block b ~bytes:64 ~term:Basic_block.Halt () in
  let f1 = Builder.block b ~bytes:64 ~term:Basic_block.Return () in
  Builder.set_term b main (Basic_block.Call { callee = f0; return_to = main });
  Builder.set_term b f0 (Basic_block.Fallthrough f1);
  (Builder.finish b ~entry:main, main, f0, f1)

let test_rdip_learns_callsite_misses () =
  let program, main, f0, _ = rdip_program () in
  let pf = Rdip.create ~program () in
  let f0_line = List.hd (Basic_block.lines (Program.block program f0)) in
  (* First call: record misses under main's signature. *)
  let issued1 = pf.Prefetcher.on_block (Program.block program main) in
  checki "nothing known yet" 0 (List.length issued1);
  ignore (pf.Prefetcher.on_demand ~line:f0_line ~missed:true);
  (* Return, then call again: the signature recurs and f0's line is
     prefetched. *)
  ignore (pf.Prefetcher.on_block (Program.block program f0));
  ignore (pf.Prefetcher.on_block (Program.block program (Program.n_blocks program - 1)));
  let issued2 = pf.Prefetcher.on_block (Program.block program main) in
  checkb "prefetches the recorded miss" true
    (List.exists (fun a -> Access.packed_line a = f0_line) issued2)

let test_rdip_end_to_end_helps () =
  (* On a call-heavy workload RDIP must remove some misses vs no
     prefetching. *)
  let w = W.Cfg_gen.generate { W.Apps.finagle_http with W.App_model.seed = 21 } in
  let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:300_000 in
  let program = w.W.Cfg_gen.program in
  let none =
    Simulator.run ~program ~trace ~policy:Lru.make ~prefetcher:Simulator.prefetcher_none ()
  in
  let rdip =
    Simulator.run ~program ~trace ~policy:Lru.make
      ~prefetcher:(fun program -> Rdip.create ~program ()) ()
  in
  checkb "rdip cuts misses" true (rdip.Simulator.demand_misses < none.Simulator.demand_misses)

let test_rdip_storage_accounting () =
  checki "entry cost" (2048 * (16 + (6 * 26)))
    (Rdip.storage_bits ~table_entries:2048 ~lines_per_signature:6)

(* -------------------------------- LBR ------------------------------- *)

let lbr_setup () =
  let w = W.Cfg_gen.generate { W.Apps.kafka with W.App_model.seed = 33 } in
  let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:120_000 in
  (w.W.Cfg_gen.program, trace)

let test_lbr_sampling_period () =
  let program, trace = lbr_setup () in
  let samples = Lbr.capture program ~trace ~period:500 ~depth:8 in
  checki "one sample per period" (Array.length trace / 500) (Array.length samples);
  Array.iter
    (fun (s : Lbr.sample) ->
      checkb "path nonempty" true (Array.length s.Lbr.path > 0);
      checkb "path ends at the interrupt" true
        (s.Lbr.path.(Array.length s.Lbr.path - 1) = trace.(s.Lbr.at)))
    samples

let test_lbr_paths_are_subpaths () =
  let program, trace = lbr_setup () in
  let samples = Lbr.capture program ~trace ~period:700 ~depth:4 in
  Array.iter
    (fun (s : Lbr.sample) ->
      let n = Array.length s.Lbr.path in
      for i = 0 to n - 1 do
        checki "sample mirrors the trace" trace.(s.Lbr.at - n + 1 + i) s.Lbr.path.(i)
      done)
    samples

let test_lbr_depth_bounds_branches () =
  let program, trace = lbr_setup () in
  let depth = 5 in
  let samples = Lbr.capture program ~trace ~period:900 ~depth in
  Array.iter
    (fun (s : Lbr.sample) ->
      let branches = ref 0 in
      for i = 0 to Array.length s.Lbr.path - 2 do
        let prev = s.Lbr.path.(i) and next = s.Lbr.path.(i + 1) in
        (* Re-derive "taken transfer" from the program. *)
        let taken =
          match (Program.block program prev).Basic_block.term with
          | Basic_block.Fallthrough _ -> false
          | Basic_block.Cond { taken; _ } -> next = taken
          | _ -> true
        in
        if taken then incr branches
      done;
      checkb "at most depth taken branches" true (!branches <= depth))
    samples

let test_lbr_coverage_fraction () =
  let program, trace = lbr_setup () in
  let sparse = Lbr.capture program ~trace ~period:2_000 ~depth:8 in
  let dense = Lbr.capture program ~trace ~period:200 ~depth:8 in
  let f_sparse = Lbr.coverage_fraction sparse ~trace_length:(Array.length trace) in
  let f_dense = Lbr.coverage_fraction dense ~trace_length:(Array.length trace) in
  checkb "denser sampling sees more" true (f_dense > f_sparse);
  checkb "fractions in (0,1]" true (f_sparse > 0.0 && f_dense <= 1.0)

let test_lbr_profile_feeds_pipeline () =
  let program, trace = lbr_setup () in
  let samples = Lbr.capture program ~trace ~period:150 ~depth:16 in
  let stitched = Lbr.stitched_trace samples in
  let oc =
    Pipeline.run
      {
        Pipeline.Options.default with
        pt_roundtrip = false;
        prefetch = Pipeline.No_prefetch;
      }
      ~source:program (Pipeline.Trace stitched)
  in
  checkb "analysis runs on stitched samples" true (oc.Pipeline.analysis.Pipeline.n_windows > 0);
  checkb "program valid" true (Program.static_hints oc.Pipeline.program >= 0)

let suites =
  [
    ( "extensions.ship",
      [
        Alcotest.test_case "basic operation" `Quick test_ship_basic_operation;
        Alcotest.test_case "learns streaming" `Quick test_ship_learns_streaming_signature;
        Alcotest.test_case "storage" `Quick test_ship_storage_positive;
      ] );
    ( "extensions.rdip",
      [
        Alcotest.test_case "learns callsite misses" `Quick test_rdip_learns_callsite_misses;
        Alcotest.test_case "end to end" `Quick test_rdip_end_to_end_helps;
        Alcotest.test_case "storage" `Quick test_rdip_storage_accounting;
      ] );
    ( "extensions.lbr",
      [
        Alcotest.test_case "sampling period" `Quick test_lbr_sampling_period;
        Alcotest.test_case "paths are subpaths" `Quick test_lbr_paths_are_subpaths;
        Alcotest.test_case "depth bounds" `Quick test_lbr_depth_bounds_branches;
        Alcotest.test_case "coverage fraction" `Quick test_lbr_coverage_fraction;
        Alcotest.test_case "feeds pipeline" `Quick test_lbr_profile_feeds_pipeline;
      ] );
  ]

(* --------------------------- pipeline fuzz -------------------------- *)

(* Whole-pipeline invariant fuzz: for arbitrary workload seeds and
   thresholds, instrument+evaluate must not raise and every reported
   metric must be in range. *)
let prop_pipeline_invariants =
  QCheck.Test.make ~count:6 ~name:"pipeline metrics stay in range across seeds"
    QCheck.(pair (int_range 1 1000) (int_range 30 90))
    (fun (seed, threshold_pct) ->
      let model =
        {
          W.Apps.kafka with
          W.App_model.name = "fuzz";
          seed;
          n_functions = 150;
          hot_functions = 25;
          handler_blocks = 60;
        }
      in
      let w = W.Cfg_gen.generate model in
      let program = w.W.Cfg_gen.program in
      let profile = W.Executor.run w ~input:W.Executor.train ~n_instrs:60_000 in
      let eval = W.Executor.run w ~input:W.Executor.eval_inputs.(1) ~n_instrs:60_000 in
      let oc =
        Pipeline.run
          {
            Pipeline.Options.default with
            threshold = Float.of_int threshold_pct /. 100.0;
            prefetch = Pipeline.Nlp;
            eval = Some (Pipeline.Eval.v ~trace:eval ~policy:Lru.make ());
          }
          ~source:program (Pipeline.Trace profile)
      in
      let analysis = oc.Pipeline.analysis in
      let ev = Option.get oc.Pipeline.evaluation in
      analysis.Pipeline.n_decisions >= 0
      && ev.Pipeline.coverage >= 0.0
      && ev.Pipeline.coverage <= 1.0
      && ev.Pipeline.accuracy >= 0.0
      && ev.Pipeline.accuracy <= 1.0
      && ev.Pipeline.static_overhead >= 0.0
      && ev.Pipeline.dynamic_overhead >= 0.0
      && ev.Pipeline.result.Simulator.ipc > 0.0)

let suites =
  suites
  @ [
      ( "extensions.fuzz",
        [ QCheck_alcotest.to_alcotest prop_pipeline_invariants ] );
    ]
