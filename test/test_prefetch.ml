(* Tests for ripple.prefetch: branch predictors, NLP and FDIP. *)

module Basic_block = Ripple_isa.Basic_block
module Builder = Ripple_isa.Builder
module Program = Ripple_isa.Program
module Access = Ripple_cache.Access
module Branch_pred = Ripple_prefetch.Branch_pred
module Prefetcher = Ripple_prefetch.Prefetcher
module Nlp = Ripple_prefetch.Nlp
module Fdip = Ripple_prefetch.Fdip

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* ----------------------------- Gshare ------------------------------- *)

let test_gshare_learns_bias () =
  let g = Branch_pred.Gshare.create () in
  for _ = 1 to 200 do
    Branch_pred.Gshare.train g ~pc:42 ~taken:true
  done;
  checkb "predicts taken" true (Branch_pred.Gshare.predict g ~pc:42);
  checkb "good accuracy" true (Branch_pred.Gshare.accuracy g > 0.9)

let test_gshare_relearns () =
  let g = Branch_pred.Gshare.create () in
  for _ = 1 to 100 do
    Branch_pred.Gshare.train g ~pc:7 ~taken:true
  done;
  for _ = 1 to 100 do
    Branch_pred.Gshare.train g ~pc:7 ~taken:false
  done;
  checkb "flips to not-taken" false (Branch_pred.Gshare.predict g ~pc:7)

let test_gshare_alternating_pattern () =
  (* Global history lets gshare nail a strict alternation. *)
  let g = Branch_pred.Gshare.create () in
  let correct = ref 0 in
  for i = 1 to 2_000 do
    let taken = i mod 2 = 0 in
    if Branch_pred.Gshare.predict g ~pc:9 = taken then incr correct;
    Branch_pred.Gshare.train g ~pc:9 ~taken
  done;
  checkb "learns alternation" true (!correct > 1_800)

(* ------------------------------- Btb -------------------------------- *)

let test_btb_store_predict () =
  let btb = Branch_pred.Btb.create () in
  check (Alcotest.option Alcotest.int) "cold" None (Branch_pred.Btb.predict btb ~pc:5);
  Branch_pred.Btb.train btb ~pc:5 ~target:99;
  check (Alcotest.option Alcotest.int) "hit" (Some 99) (Branch_pred.Btb.predict btb ~pc:5);
  Branch_pred.Btb.train btb ~pc:5 ~target:7;
  check (Alcotest.option Alcotest.int) "last target wins" (Some 7)
    (Branch_pred.Btb.predict btb ~pc:5)

(* ------------------------------- Ras -------------------------------- *)

let test_ras_lifo () =
  let ras = Branch_pred.Ras.create ~depth:4 () in
  Branch_pred.Ras.push ras 1;
  Branch_pred.Ras.push ras 2;
  check (Alcotest.option Alcotest.int) "pop 2" (Some 2) (Branch_pred.Ras.pop ras);
  check (Alcotest.option Alcotest.int) "pop 1" (Some 1) (Branch_pred.Ras.pop ras);
  check (Alcotest.option Alcotest.int) "empty" None (Branch_pred.Ras.pop ras)

let test_ras_overflow_wraps () =
  let ras = Branch_pred.Ras.create ~depth:2 () in
  List.iter (Branch_pred.Ras.push ras) [ 1; 2; 3 ];
  check (Alcotest.option Alcotest.int) "newest" (Some 3) (Branch_pred.Ras.pop ras);
  check (Alcotest.option Alcotest.int) "second" (Some 2) (Branch_pred.Ras.pop ras);
  check (Alcotest.option Alcotest.int) "oldest lost" None (Branch_pred.Ras.pop ras)

let test_ras_copy () =
  let a = Branch_pred.Ras.create ~depth:4 () in
  let b = Branch_pred.Ras.create ~depth:4 () in
  Branch_pred.Ras.push a 11;
  Branch_pred.Ras.copy_into ~src:a ~dst:b;
  Branch_pred.Ras.push a 22;
  check (Alcotest.option Alcotest.int) "copy isolated" (Some 11) (Branch_pred.Ras.pop b)

(* ------------------------------- Nlp -------------------------------- *)

let test_nlp_prefetches_on_miss () =
  let nlp = Nlp.create ~degree:2 () in
  let on_miss = nlp.Prefetcher.on_demand ~line:10 ~missed:true in
  check (Alcotest.list Alcotest.int) "next two lines" [ 11; 12 ]
    (List.map Access.packed_line on_miss);
  checkb "all prefetch kind" true (List.for_all Access.packed_is_prefetch on_miss);
  checki "nothing on hit" 0 (List.length (nlp.Prefetcher.on_demand ~line:10 ~missed:false))

(* ------------------------------- Fdip ------------------------------- *)

(* Straight-line program: FDIP should run ahead perfectly after the
   first block. *)
let straight_program n =
  let b = Builder.create () in
  let first, last = Builder.straight_line b ~bytes_per_block:64 ~n () in
  Builder.set_term b last (Basic_block.Jump first);
  Builder.finish b ~entry:first

let test_fdip_runs_ahead () =
  let program = straight_program 40 in
  let pf, internals = Fdip.create_instrumented ~program () in
  (* Execute the chain once; collect prefetched lines. *)
  let prefetched = Hashtbl.create 64 in
  for id = 0 to 39 do
    List.iter
      (fun a -> Hashtbl.replace prefetched (Access.packed_line a) ())
      (pf.Prefetcher.on_block (Program.block program id))
  done;
  checkb "issued prefetches" true (internals.Fdip.issued () > 0);
  (* Block 10's line should have been prefetched before reaching it. *)
  let line10 = List.hd (Basic_block.lines (Program.block program 10)) in
  checkb "future line prefetched" true (Hashtbl.mem prefetched line10);
  checki "no mispredicts on straight line" 0 (internals.Fdip.mispredicts ())

let test_fdip_mispredict_flush () =
  (* A conditional bouncing both ways forces flushes. *)
  let b = Builder.create () in
  let entry = Builder.block b ~bytes:64 ~term:Basic_block.Halt () in
  let left = Builder.block b ~bytes:64 ~term:Basic_block.Halt () in
  let right = Builder.block b ~bytes:64 ~term:Basic_block.Halt () in
  Builder.set_term b entry (Basic_block.Cond { taken = left; fallthrough = right });
  Builder.set_term b left (Basic_block.Jump entry);
  Builder.set_term b right (Basic_block.Jump entry);
  let program = Builder.finish b ~entry in
  let pf, internals = Fdip.create_instrumented ~program () in
  let rng = Ripple_util.Prng.create ~seed:4 in
  let current = ref entry in
  for _ = 1 to 2_000 do
    ignore (pf.Prefetcher.on_block (Program.block program !current));
    current :=
      (match (Program.block program !current).Basic_block.term with
      | Basic_block.Cond { taken; fallthrough } ->
        if Ripple_util.Prng.bool rng then taken else fallthrough
      | Basic_block.Jump t -> t
      | _ -> entry)
  done;
  checkb "mispredicts happen on random branch" true (internals.Fdip.mispredicts () > 100)

let test_fdip_issue_width_cap () =
  let program = straight_program 60 in
  let pf, _ = Fdip.create_instrumented ~issue_width:2 ~program () in
  for id = 0 to 59 do
    let issued = pf.Prefetcher.on_block (Program.block program id) in
    checkb "at most issue_width per block" true (List.length issued <= 2)
  done

let test_fdip_reduces_misses_end_to_end () =
  (* Integration: on a predictable workload FDIP must cut misses vs no
     prefetching. *)
  let module W = Ripple_workloads in
  let module Simulator = Ripple_cpu.Simulator in
  let w = W.Cfg_gen.generate W.Apps.verilator in
  let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:300_000 in
  let program = w.W.Cfg_gen.program in
  let none =
    Simulator.run ~program ~trace ~policy:Ripple_cache.Lru.make
      ~prefetcher:Simulator.prefetcher_none ()
  in
  let fdip =
    Simulator.run ~program ~trace ~policy:Ripple_cache.Lru.make
      ~prefetcher:(Simulator.prefetcher_fdip ?config:None) ()
  in
  checkb "fdip cuts misses by >2x" true
    (fdip.Simulator.demand_misses * 2 < none.Simulator.demand_misses);
  checkb "fdip faster" true (fdip.Simulator.ipc > none.Simulator.ipc)

let suites =
  [
    ( "prefetch.gshare",
      [
        Alcotest.test_case "learns bias" `Quick test_gshare_learns_bias;
        Alcotest.test_case "relearns" `Quick test_gshare_relearns;
        Alcotest.test_case "alternating" `Quick test_gshare_alternating_pattern;
      ] );
    ("prefetch.btb", [ Alcotest.test_case "store/predict" `Quick test_btb_store_predict ]);
    ( "prefetch.ras",
      [
        Alcotest.test_case "lifo" `Quick test_ras_lifo;
        Alcotest.test_case "overflow wraps" `Quick test_ras_overflow_wraps;
        Alcotest.test_case "copy" `Quick test_ras_copy;
      ] );
    ("prefetch.nlp", [ Alcotest.test_case "on miss" `Quick test_nlp_prefetches_on_miss ]);
    ( "prefetch.fdip",
      [
        Alcotest.test_case "runs ahead" `Quick test_fdip_runs_ahead;
        Alcotest.test_case "mispredict flush" `Quick test_fdip_mispredict_flush;
        Alcotest.test_case "issue width" `Quick test_fdip_issue_width_cap;
        Alcotest.test_case "reduces misses" `Quick test_fdip_reduces_misses_end_to_end;
      ] );
  ]
