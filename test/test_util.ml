(* Unit and property tests for ripple.util: PRNG, ring queue, summary
   statistics and table rendering. *)

module Prng = Ripple_util.Prng
module Ring_queue = Ripple_util.Ring_queue
module Summary = Ripple_util.Summary
module Table = Ripple_util.Table

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checkf = check (Alcotest.float 1e-9)

(* ------------------------------- Prng ------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.bits64 a <> Prng.bits64 b then differs := true
  done;
  checkb "different seeds differ" true !differs

let test_prng_int_range () =
  let rng = Prng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 17 in
    checkb "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_prng_int_covers () =
  let rng = Prng.create ~seed:8 in
  let seen = Array.make 8 false in
  for _ = 1 to 5_000 do
    seen.(Prng.int rng 8) <- true
  done;
  Array.iteri (fun i s -> checkb (Printf.sprintf "value %d seen" i) true s) seen

let test_prng_float_range () =
  let rng = Prng.create ~seed:9 in
  for _ = 1 to 1_000 do
    let v = Prng.float rng 3.5 in
    checkb "0 <= v < 3.5" true (v >= 0.0 && v < 3.5)
  done

let test_prng_chance_extremes () =
  let rng = Prng.create ~seed:10 in
  checkb "p=0 never" false (Prng.chance rng 0.0);
  checkb "p=1 always" true (Prng.chance rng 1.0)

let test_prng_chance_frequency () =
  let rng = Prng.create ~seed:11 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.chance rng 0.3 then incr hits
  done;
  let f = Float.of_int !hits /. Float.of_int n in
  checkb "within 3 sigma of 0.3" true (Float.abs (f -. 0.3) < 0.02)

let test_prng_geometric_mean () =
  let rng = Prng.create ~seed:12 in
  let total = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    total := !total + Prng.geometric rng ~p:0.5
  done;
  let mean = Float.of_int !total /. Float.of_int n in
  (* Mean of failures-before-success at p = 0.5 is 1. *)
  checkb "mean close to 1" true (Float.abs (mean -. 1.0) < 0.1)

let test_prng_zipf_bounds () =
  let rng = Prng.create ~seed:13 in
  for _ = 1 to 5_000 do
    let v = Prng.zipf rng ~n:50 ~s:1.1 in
    checkb "in range" true (v >= 0 && v < 50)
  done

let test_prng_zipf_skew () =
  let rng = Prng.create ~seed:14 in
  let counts = Array.make 100 0 in
  for _ = 1 to 50_000 do
    let v = Prng.zipf rng ~n:100 ~s:1.2 in
    counts.(v) <- counts.(v) + 1
  done;
  checkb "rank 0 more popular than rank 50" true (counts.(0) > counts.(50));
  checkb "rank 0 dominates" true (counts.(0) > 5_000)

let test_prng_shuffle_permutation () =
  let rng = Prng.create ~seed:15 in
  let a = Array.init 100 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "still a permutation" (Array.init 100 (fun i -> i)) sorted

let test_prng_split_independent () =
  let a = Prng.create ~seed:16 in
  let b = Prng.split a in
  checkb "split streams differ" true (Prng.bits64 a <> Prng.bits64 b)

(* ---------------------------- Ring_queue ---------------------------- *)

let test_rq_fifo_order () =
  let q = Ring_queue.create ~capacity:4 ~dummy:0 in
  List.iter (fun x -> checkb "push ok" true (Ring_queue.push q x)) [ 1; 2; 3 ];
  check (Alcotest.option Alcotest.int) "pop 1" (Some 1) (Ring_queue.pop q);
  check (Alcotest.option Alcotest.int) "pop 2" (Some 2) (Ring_queue.pop q);
  checkb "push 4" true (Ring_queue.push q 4);
  check (Alcotest.list Alcotest.int) "rest" [ 3; 4 ] (Ring_queue.to_list q)

let test_rq_capacity () =
  let q = Ring_queue.create ~capacity:2 ~dummy:0 in
  checkb "1" true (Ring_queue.push q 1);
  checkb "2" true (Ring_queue.push q 2);
  checkb "full rejects" false (Ring_queue.push q 3);
  checki "len" 2 (Ring_queue.length q);
  checkb "is_full" true (Ring_queue.is_full q)

let test_rq_overwrite () =
  let q = Ring_queue.create ~capacity:2 ~dummy:0 in
  Ring_queue.push_overwrite q 1;
  Ring_queue.push_overwrite q 2;
  Ring_queue.push_overwrite q 3;
  check (Alcotest.list Alcotest.int) "oldest evicted" [ 2; 3 ] (Ring_queue.to_list q)

let test_rq_clear_and_peek () =
  let q = Ring_queue.create ~capacity:3 ~dummy:0 in
  ignore (Ring_queue.push q 5);
  check (Alcotest.option Alcotest.int) "peek" (Some 5) (Ring_queue.peek q);
  checki "peek does not pop" 1 (Ring_queue.length q);
  Ring_queue.clear q;
  checkb "empty" true (Ring_queue.is_empty q);
  check (Alcotest.option Alcotest.int) "pop empty" None (Ring_queue.pop q)

let test_rq_wraparound () =
  let q = Ring_queue.create ~capacity:3 ~dummy:0 in
  for i = 1 to 50 do
    ignore (Ring_queue.push q i);
    if i mod 2 = 0 then ignore (Ring_queue.pop q)
  done;
  (* Whatever the content, invariants hold. *)
  checkb "len <= capacity" true (Ring_queue.length q <= 3);
  let l = Ring_queue.to_list q in
  checki "to_list matches length" (Ring_queue.length q) (List.length l)

(* Model-based property: the ring queue behaves like a bounded list. *)
let prop_rq_model =
  QCheck.Test.make ~count:300 ~name:"ring queue vs list model"
    QCheck.(pair (int_range 1 8) (small_list (pair bool small_int)))
    (fun (capacity, ops) ->
      let q = Ring_queue.create ~capacity ~dummy:0 in
      let model = ref [] in
      List.iter
        (fun (is_push, x) ->
          if is_push then begin
            if List.length !model < capacity then
              if Ring_queue.push q x then model := !model @ [ x ] else failwith "push refused"
            else if Ring_queue.push q x then failwith "push beyond capacity"
          end
          else begin
            match (Ring_queue.pop q, !model) with
            | None, [] -> ()
            | Some v, x :: rest when v = x -> model := rest
            | _ -> failwith "pop mismatch"
          end)
        ops;
      Ring_queue.to_list q = !model)

(* ----------------------------- Summary ------------------------------ *)

let test_summary_empty () =
  let s = Summary.create () in
  checki "count" 0 (Summary.count s);
  checkf "mean" 0.0 (Summary.mean s)

let test_summary_moments () =
  let s = Summary.of_list [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  checki "count" 8 (Summary.count s);
  checkf "mean" 5.0 (Summary.mean s);
  check (Alcotest.float 1e-6) "stddev" 2.138089935 (Summary.stddev s);
  checkf "min" 2.0 (Summary.min s);
  checkf "max" 9.0 (Summary.max s)

let test_summary_geomean () =
  check (Alcotest.float 1e-9) "geomean" 4.0 (Summary.geomean_of [ 2.0; 8.0 ]);
  checkf "geomean empty" 0.0 (Summary.geomean_of [])

let test_summary_mean_of () = checkf "mean_of" 2.0 (Summary.mean_of [ 1.0; 2.0; 3.0 ])

(* ------------------------------ Table ------------------------------- *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_table_renders () =
  let t = Table.create ~title:"T" ~columns:[ ("a", Table.Left); ("b", Table.Right) ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_sep t;
  Table.add_row t [ "longer"; "22" ];
  let s = Table.render t in
  checkb "has title" true (String.length s > 0 && String.sub s 0 1 = "T");
  checkb "mentions longer" true (contains ~needle:"longer" s);
  checkb "right-aligned cell padded" true (contains ~needle:" 1 |" s)

let test_table_formats () =
  check Alcotest.string "fpct" "+2.13%" (Table.fpct 0.0213);
  check Alcotest.string "fpct negative" "-1.00%" (Table.fpct (-0.01));
  check Alcotest.string "fnum" "3.142" (Table.fnum 3.14159)

(* ------------------------------- Json ------------------------------- *)

module Json = Ripple_util.Json

(* The parser is total: any byte string yields [Ok] or [Error], never an
   exception.  This is what lets the recovery paths feed it untrusted
   result files. *)
let prop_json_parse_total =
  QCheck.Test.make ~count:2_000 ~name:"Json.parse never raises"
    QCheck.(make ~print:Print.string Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 64)))
    (fun s ->
      match Json.parse s with
      | Ok _ | Error _ -> true)

(* render ∘ parse is the identity on every value the printer can emit
   (non-finite floats excepted — JSON has no spelling for them, so the
   generator stays finite). *)
let json_gen =
  QCheck.Gen.(
    sized_size (int_range 0 5) @@ fix (fun self n ->
        let str = string_size ~gen:(char_range '\000' '\255') (int_range 0 12) in
        let leaf =
          oneof
            [
              return Json.Null;
              map (fun b -> Json.Bool b) bool;
              map (fun i -> Json.Int i) small_signed_int;
              map (fun f -> Json.Float f) (float_bound_inclusive 1e6);
              map (fun s -> Json.String s) str;
            ]
        in
        if n <= 0 then leaf
        else
          oneof
            [
              leaf;
              map (fun l -> Json.List l) (list_size (int_range 0 4) (self (n - 1)));
              map
                (fun l -> Json.Obj l)
                (list_size (int_range 0 4) (pair str (self (n - 1))));
            ]))

let prop_json_roundtrip =
  QCheck.Test.make ~count:1_000 ~name:"Json render/parse round-trip"
    (QCheck.make ~print:Json.to_string json_gen) (fun v ->
      match Json.parse (Json.to_string v) with
      | Ok parsed -> Json.equal v parsed
      | Error _ -> false)

let qcheck = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "util.prng",
      [
        Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
        Alcotest.test_case "int range" `Quick test_prng_int_range;
        Alcotest.test_case "int covers" `Quick test_prng_int_covers;
        Alcotest.test_case "float range" `Quick test_prng_float_range;
        Alcotest.test_case "chance extremes" `Quick test_prng_chance_extremes;
        Alcotest.test_case "chance frequency" `Quick test_prng_chance_frequency;
        Alcotest.test_case "geometric mean" `Quick test_prng_geometric_mean;
        Alcotest.test_case "zipf bounds" `Quick test_prng_zipf_bounds;
        Alcotest.test_case "zipf skew" `Quick test_prng_zipf_skew;
        Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
        Alcotest.test_case "split independent" `Quick test_prng_split_independent;
      ] );
    ( "util.ring_queue",
      [
        Alcotest.test_case "fifo order" `Quick test_rq_fifo_order;
        Alcotest.test_case "capacity" `Quick test_rq_capacity;
        Alcotest.test_case "overwrite" `Quick test_rq_overwrite;
        Alcotest.test_case "clear and peek" `Quick test_rq_clear_and_peek;
        Alcotest.test_case "wraparound" `Quick test_rq_wraparound;
        qcheck prop_rq_model;
      ] );
    ( "util.summary",
      [
        Alcotest.test_case "empty" `Quick test_summary_empty;
        Alcotest.test_case "moments" `Quick test_summary_moments;
        Alcotest.test_case "geomean" `Quick test_summary_geomean;
        Alcotest.test_case "mean_of" `Quick test_summary_mean_of;
      ] );
    ( "util.table",
      [
        Alcotest.test_case "renders" `Quick test_table_renders;
        Alcotest.test_case "formats" `Quick test_table_formats;
      ] );
    ( "util.json",
      [
        qcheck prop_json_parse_total;
        qcheck prop_json_roundtrip;
      ] );
  ]
