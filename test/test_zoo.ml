(* Tests for the set-dueling substrate, the parameterized policy
   registry, and the policy zoo that rides on both: the DRRIP port is
   pinned byte-identical to its historical inline implementation, every
   registry entry (at default and non-default parameters) satisfies the
   policy contract under random traffic, and the fill-decision bypass
   hook is accounted correctly by the cache core. *)

module Geometry = Ripple_cache.Geometry
module Cache = Ripple_cache.Cache
module Access = Ripple_cache.Access
module Stats = Ripple_cache.Stats
module Policy = Ripple_cache.Policy
module Dueling = Ripple_cache.Dueling
module Registry = Ripple_cache.Registry
module Srrip = Ripple_cache.Srrip
module Drrip = Ripple_cache.Drrip

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checks = check Alcotest.string

(* ----------------------------- Dueling ------------------------------ *)

let test_dueling_roles () =
  let d = Dueling.make ~sets:64 () in
  let expect set role = Dueling.role d ~set = role in
  List.iter
    (fun set -> checkb (Printf.sprintf "set %d leads A" set) true (expect set Dueling.Leader_a))
    [ 0; 16; 32; 48 ];
  List.iter
    (fun set -> checkb (Printf.sprintf "set %d leads B" set) true (expect set Dueling.Leader_b))
    [ 8; 24; 40; 56 ];
  List.iter
    (fun set -> checkb (Printf.sprintf "set %d follows" set) true (expect set Dueling.Follower))
    [ 1; 7; 9; 15; 17; 63 ];
  (* Tiny caches still get their one A leader even when sets < spacing. *)
  let tiny = Dueling.make ~sets:2 () in
  checkb "set 0 leads A in a 2-set cache" true (Dueling.role tiny ~set:0 = Dueling.Leader_a);
  checkb "set 1 follows" true (Dueling.role tiny ~set:1 = Dueling.Follower)

let test_dueling_training_and_flips () =
  let d = Dueling.make ~sets:64 () in
  let mid = ((1 lsl Dueling.psel_bits d) - 1) / 2 in
  checki "psel starts at midpoint" mid (Dueling.psel d);
  checkb "followers start on A" false (Dueling.selects_b d ~set:1);
  checkb "A leader pinned to A" false (Dueling.selects_b d ~set:0);
  checkb "B leader pinned to B" true (Dueling.selects_b d ~set:8);
  Dueling.train_miss d ~set:0;
  (* One A-leader miss pushes PSEL past the midpoint: followers flip. *)
  checki "a_misses" 1 (Dueling.a_misses d);
  checkb "followers now on B" true (Dueling.selects_b d ~set:1);
  checki "one flip" 1 (Dueling.flips d);
  Dueling.train_miss d ~set:8;
  checki "b_misses" 1 (Dueling.b_misses d);
  checkb "followers back on A" false (Dueling.selects_b d ~set:1);
  checki "two flips" 2 (Dueling.flips d);
  Dueling.train_miss d ~set:1;
  checki "follower misses train nothing" mid (Dueling.psel d)

let test_dueling_saturation () =
  let d = Dueling.make ~sets:64 ~psel_bits:4 () in
  let max = (1 lsl 4) - 1 in
  for _ = 1 to 100 do
    Dueling.train_miss d ~set:0
  done;
  checki "psel saturates high" max (Dueling.psel d);
  for _ = 1 to 200 do
    Dueling.train_miss d ~set:8
  done;
  checki "psel floors at zero" 0 (Dueling.psel d);
  checki "storage is the psel counter" 4 (Dueling.storage_bits d)

let test_dueling_save_restore () =
  let d = Dueling.make ~sets:64 () in
  Dueling.train_miss d ~set:0;
  Dueling.train_miss d ~set:0;
  let restore = Dueling.save d in
  let psel = Dueling.psel d and a = Dueling.a_misses d and f = Dueling.flips d in
  for _ = 1 to 50 do
    Dueling.train_miss d ~set:8
  done;
  restore ();
  checki "psel restored" psel (Dueling.psel d);
  checki "a_misses restored" a (Dueling.a_misses d);
  checki "b_misses restored" 0 (Dueling.b_misses d);
  checki "flips restored" f (Dueling.flips d)

(* ----------------------- Registry spec parsing ----------------------- *)

let test_spec_parse_and_canonical () =
  checks "bare name" "drrip" (Registry.canonical "drrip");
  checks "default-valued override dropped" "drrip" (Registry.canonical "drrip:spacing=16");
  checks "overrides sort by key" "drrip:psel_bits=8,throttle=16"
    (Registry.canonical "drrip:throttle=16,psel_bits=8");
  checks "'+' separates pairs too" "drrip:psel_bits=8,throttle=16"
    (Registry.canonical "drrip:throttle=16+psel_bits=8");
  checks "bool override" "ship-sb:bypass=false" (Registry.canonical "ship-sb:bypass=false");
  checks "case-insensitive name" "lru" (Registry.canonical "LRU")

let expect_error spec fragment =
  match Registry.parse_spec spec with
  | Ok _ -> Alcotest.failf "%S unexpectedly parsed" spec
  | Error msg ->
    let has_sub s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    if not (has_sub msg fragment) then
      Alcotest.failf "error for %S lacks %S: %s" spec fragment msg

let test_spec_errors () =
  expect_error "nosuch" "unknown policy";
  expect_error "nosuch" "drrip" (* lists the known names *);
  expect_error "drrip:nokey=1" "unknown parameter";
  expect_error "drrip:nokey=1" "throttle" (* lists the known keys *);
  expect_error "lru:x=1" "takes no parameters";
  expect_error "drrip:throttle=maybe" "expects int";
  expect_error "drrip:throttle=1.5" "expects int";
  expect_error "ship-sb:bypass=7" "expects bool";
  expect_error "drrip:throttle" "malformed parameter"

let test_spec_params_resolution () =
  let spec = Registry.parse_spec_exn "drrip:throttle=16" in
  let params = Registry.spec_params spec in
  checki "override wins" 16 (Registry.Param.get_int params "throttle");
  checki "default survives" 10 (Registry.Param.get_int params "psel_bits")

(* ----------------------- DRRIP byte-identity ------------------------ *)

(* The historical inline DRRIP, reproduced verbatim (modulo the fields
   the policy record has since grown): private leader mapping, PSEL
   counter and bimodal throttle.  The port onto [Dueling] must make
   decisions indistinguishable from this reference on any trace. *)
let reference_drrip ~sets ~ways =
  let rrpv_max = (1 lsl Srrip.rrpv_bits) - 1 in
  let rrpv_long = rrpv_max - 1 in
  let psel_bits = 10 in
  let psel_max = (1 lsl psel_bits) - 1 in
  let brrip_throttle = 32 in
  let rrpv = Array.make (sets * ways) rrpv_max in
  let psel = ref (psel_max / 2) in
  let brrip_counter = ref 0 in
  let n_leaders = max 1 (sets / 16) in
  let role set =
    if set mod 16 = 0 && set / 16 < n_leaders then `Leader_srrip
    else if set mod 16 = 8 && set / 16 < n_leaders then `Leader_brrip
    else `Follower
  in
  let use_brrip set =
    match role set with
    | `Leader_srrip -> false
    | `Leader_brrip -> true
    | `Follower -> !psel > psel_max / 2
  in
  let on_fill ~set ~way _ =
    (match role set with
    | `Leader_srrip -> psel := min psel_max (!psel + 1)
    | `Leader_brrip -> psel := max 0 (!psel - 1)
    | `Follower -> ());
    let insertion =
      if use_brrip set then begin
        incr brrip_counter;
        if !brrip_counter mod brrip_throttle = 0 then rrpv_long else rrpv_max
      end
      else rrpv_long
    in
    rrpv.((set * ways) + way) <- insertion
  in
  {
    Policy.name = "drrip-reference";
    on_hit = (fun ~set ~way _ -> rrpv.((set * ways) + way) <- 0);
    on_fill;
    fill_decision = Policy.nop_fill_decision;
    may_bypass = false;
    victim = (fun ~set -> Srrip.rrpv_victim rrpv ~ways ~set);
    on_eviction = Policy.nop_evict;
    on_invalidate = (fun ~set ~way -> rrpv.((set * ways) + way) <- rrpv_max);
    demote = (fun ~set ~way -> rrpv.((set * ways) + way) <- rrpv_max);
    save =
      (fun () ->
        let rrpv' = Array.copy rrpv in
        let psel' = !psel and brrip_counter' = !brrip_counter in
        fun () ->
          Array.blit rrpv' 0 rrpv 0 (Array.length rrpv);
          psel := psel';
          brrip_counter := brrip_counter');
    storage_bits = (sets * ways * Srrip.rrpv_bits) + psel_bits;
    duel = None;
  }

let geometry_64x4 = Geometry.v ~size_bytes:(64 * 4 * 64) ~ways:4

let random_trace seed n =
  let st = Random.State.make [| seed |] in
  Array.init n (fun _ ->
      let line = Random.State.int st 2048 in
      if Random.State.int st 4 = 0 then Access.prefetch ~line ~block:0
      else Access.demand ~line ~block:0)

let replay policy trace =
  let c = Cache.create ~geometry:geometry_64x4 ~policy () in
  let hits = ref 0 in
  Array.iter (fun acc -> if Cache.access c acc = Cache.Hit then incr hits) trace;
  let s = Cache.stats c in
  (!hits, s.Stats.demand_misses, s.Stats.evictions)

let drrip_byte_identity =
  QCheck.Test.make ~count:20 ~name:"DRRIP on Dueling is byte-identical to inline DRRIP"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let trace = random_trace seed 6_000 in
      replay (Drrip.make ()) trace = replay reference_drrip trace)

let test_drrip_identity_storage () =
  let p = Drrip.make () ~sets:64 ~ways:4 in
  let r = reference_drrip ~sets:64 ~ways:4 in
  checki "storage accounting unchanged by the port" r.Policy.storage_bits p.Policy.storage_bits

(* ----------------- Policy-contract properties (zoo) ------------------ *)

(* Every registry entry, each at defaults and (when it has knobs) at
   least one non-default parameterization. *)
let variant_specs =
  [
    "drrip:psel_bits=8";
    "drrip:throttle=16";
    "drrip:spacing=32";
    "hawkeye:harmony=false";
    "trrip:table_bits=8";
    "trrip:hot=3";
    "ehc-hawkeye:harmony=false";
    "ehc-hawkeye:max_hits=3";
    "ship-sb:bypass=false";
    "ship-sb:throttle=8";
    "ship-sb:stream_window=4";
  ]

let zoo_specs =
  List.map (fun (e : Registry.entry) -> e.Registry.name) Registry.all @ variant_specs

let test_variants_cover_every_parameterized_entry () =
  List.iter
    (fun (e : Registry.entry) ->
      if e.Registry.params <> [] then
        checkb
          (Printf.sprintf "%s has a non-default variant under test" e.Registry.name)
          true
          (List.exists
             (fun v -> (Registry.parse_spec_exn v).Registry.policy = e.Registry.name)
             variant_specs))
    Registry.all

(* Wrap a policy so every victim consultation is range-checked. *)
let range_checked ~ways (p : Policy.t) =
  {
    p with
    Policy.victim =
      (fun ~set ->
        let v = p.Policy.victim ~set in
        if v < 0 || v >= ways then
          Alcotest.failf "%s: victim %d out of range [0,%d)" p.Policy.name v ways;
        v);
  }

let zoo_victims_in_range =
  QCheck.Test.make ~count:5 ~name:"every zoo policy's victims stay in range"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let trace = random_trace seed 4_000 in
      List.iter
        (fun spec ->
          let factory ~sets ~ways = range_checked ~ways (Registry.factory spec ~sets ~ways) in
          let c = Cache.create ~geometry:geometry_64x4 ~policy:factory () in
          Array.iter (fun acc -> ignore (Cache.access c acc)) trace)
        zoo_specs;
      true)

let zoo_save_restore_roundtrip =
  QCheck.Test.make ~count:5
    ~name:"save/restore rewinds every zoo policy to identical decisions"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let warm = random_trace seed 3_000 in
      let probe = random_trace (seed + 1) 3_000 in
      List.for_all
        (fun spec ->
          let c = Cache.create ~geometry:geometry_64x4 ~policy:(Registry.factory spec) () in
          Array.iter (fun acc -> ignore (Cache.access c acc)) warm;
          let restore = Cache.save c in
          let run () =
            Array.map (fun acc -> Cache.access c acc = Cache.Hit) probe
          in
          let first = run () in
          restore ();
          let second = run () in
          first = second)
        zoo_specs)

let zoo_psel_never_overflows =
  QCheck.Test.make ~count:5 ~name:"duelling policies keep PSEL within its bit width"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let trace = random_trace seed 4_000 in
      List.for_all
        (fun spec ->
          let c = Cache.create ~geometry:geometry_64x4 ~policy:(Registry.factory spec) () in
          Array.iter (fun acc -> ignore (Cache.access c acc)) trace;
          match Cache.duel c with
          | None -> true
          | Some d ->
            let max = (1 lsl Dueling.psel_bits d) - 1 in
            Dueling.psel d >= 0 && Dueling.psel d <= max)
        zoo_specs)

(* ------------------------ Bypass accounting ------------------------- *)

let always_bypass ~sets:_ ~ways:_ =
  {
    Policy.name = "always-bypass";
    on_hit = Policy.nop_access;
    on_fill = (fun ~set:_ ~way:_ _ -> Alcotest.fail "bypassed fill reached on_fill");
    fill_decision = (fun ~set:_ _ -> `Bypass);
    may_bypass = true;
    victim = (fun ~set:_ -> Alcotest.fail "bypassed fill consulted victim");
    on_eviction = Policy.nop_evict;
    on_invalidate = Policy.nop_way;
    demote = Policy.nop_way;
    save = Policy.nop_save;
    storage_bits = 0;
    duel = None;
  }

let test_bypass_accounting () =
  let tiny = Geometry.v ~size_bytes:(2 * 2 * 64) ~ways:2 in
  let c = Cache.create ~geometry:tiny ~policy:always_bypass () in
  checkb "bypass capability surfaces" true (Cache.may_bypass c);
  ignore (Cache.access c (Access.demand ~line:0 ~block:0));
  ignore (Cache.access c (Access.demand ~line:0 ~block:0));
  ignore (Cache.access c (Access.prefetch ~line:2 ~block:0));
  let s = Cache.stats c in
  checkb "line never installed" false (Cache.contains c 0);
  checki "all three misses bypassed" 3 s.Stats.fill_bypasses;
  checki "demand misses still counted" 2 s.Stats.demand_misses;
  checki "bypassed prefetch is not a prefetch fill" 0 s.Stats.prefetch_fills;
  checki "nothing was evicted" 0 s.Stats.evictions

let test_install_policies_never_bypass () =
  let c = Cache.create ~geometry:geometry_64x4 ~policy:(Registry.factory "lru") () in
  checkb "lru cannot bypass" false (Cache.may_bypass c);
  ignore (Cache.access c (Access.demand ~line:0 ~block:0));
  checki "no bypasses" 0 (Cache.stats c).Stats.fill_bypasses

let test_ship_sb_bypasses_streams () =
  (* A long never-reused unit-stride sweep is the textbook stream: the
     detector opens its window, dead signatures stop being installed. *)
  let c = Cache.create ~geometry:geometry_64x4 ~policy:(Registry.factory "ship-sb") () in
  for rep = 0 to 40 do
    for i = 0 to 511 do
      ignore (Cache.access c (Access.demand ~line:(rep * 4096 + (i * 64)) ~block:0))
    done
  done;
  checkb "streaming sweep triggers bypasses" true ((Cache.stats c).Stats.fill_bypasses > 0);
  let off = Cache.create ~geometry:geometry_64x4 ~policy:(Registry.factory "ship-sb:bypass=false") () in
  checkb "bypass=false disables the capability" false (Cache.may_bypass off)

let qcheck = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "zoo.dueling",
      [
        Alcotest.test_case "leader-set roles" `Quick test_dueling_roles;
        Alcotest.test_case "training and flips" `Quick test_dueling_training_and_flips;
        Alcotest.test_case "psel saturation" `Quick test_dueling_saturation;
        Alcotest.test_case "save/restore" `Quick test_dueling_save_restore;
      ] );
    ( "zoo.registry",
      [
        Alcotest.test_case "spec parse and canonical form" `Quick test_spec_parse_and_canonical;
        Alcotest.test_case "spec errors" `Quick test_spec_errors;
        Alcotest.test_case "spec param resolution" `Quick test_spec_params_resolution;
        Alcotest.test_case "variants cover every entry" `Quick
          test_variants_cover_every_parameterized_entry;
      ] );
    ( "zoo.drrip-port",
      [
        qcheck drrip_byte_identity;
        Alcotest.test_case "storage accounting unchanged" `Quick test_drrip_identity_storage;
      ] );
    ( "zoo.properties",
      [
        qcheck zoo_victims_in_range;
        qcheck zoo_save_restore_roundtrip;
        qcheck zoo_psel_never_overflows;
      ] );
    ( "zoo.bypass",
      [
        Alcotest.test_case "bypass accounting" `Quick test_bypass_accounting;
        Alcotest.test_case "install-only policies" `Quick test_install_policies_never_bypass;
        Alcotest.test_case "ship-sb bypasses streams" `Quick test_ship_sb_bypasses_streams;
      ] );
  ]
