(* Golden regression values.

   These pin the exact behaviour of the full stack (CFG generation,
   executor, prefetchers, cache, oracle) for one fixed configuration.
   They exist to catch unintended behavioural drift during refactoring;
   a deliberate model change is expected to update them (and re-run the
   benches so EXPERIMENTS.md stays truthful). *)

module W = Ripple_workloads
module Simulator = Ripple_cpu.Simulator
module Cache = Ripple_cache

let checki = Alcotest.check Alcotest.int

let setup =
  lazy
    (let w = W.Cfg_gen.generate W.Apps.kafka in
     let trace = W.Executor.run w ~input:W.Executor.eval_inputs.(0) ~n_instrs:300_000 in
     (w.W.Cfg_gen.program, trace))

let test_trace_shape () =
  let _, trace = Lazy.force setup in
  checki "trace length" 30_938 (Array.length trace)

let run prefetcher =
  let program, trace = Lazy.force setup in
  Simulator.run ~program ~trace ~policy:Cache.Lru.make ~prefetcher ()

let test_lru_none () =
  let r = run Simulator.prefetcher_none in
  checki "instructions" 300_003 r.Simulator.instructions;
  checki "misses" 2_859 r.Simulator.demand_misses

let test_lru_nlp () = checki "misses" 1_813 (run (Simulator.prefetcher_nlp ?config:None)).Simulator.demand_misses
let test_lru_fdip () = checki "misses" 1_088 (run (Simulator.prefetcher_fdip ?config:None)).Simulator.demand_misses

let test_oracle () =
  let program, trace = Lazy.force setup in
  let r =
    Simulator.oracle ~mode:Cache.Belady.Min ~program ~trace
      ~prefetcher:Simulator.prefetcher_none ()
  in
  checki "oracle misses" 1_920 r.Simulator.demand_misses

let test_stream_length () =
  let program, trace = Lazy.force setup in
  let stream = Simulator.record_stream ~program ~trace ~prefetcher:Simulator.prefetcher_none () in
  checki "stream length" 49_115 (Cache.Access_stream.length stream)

let suites =
  [
    ( "regression.golden",
      [
        Alcotest.test_case "trace shape" `Quick test_trace_shape;
        Alcotest.test_case "lru/none" `Quick test_lru_none;
        Alcotest.test_case "lru/nlp" `Quick test_lru_nlp;
        Alcotest.test_case "lru/fdip" `Quick test_lru_fdip;
        Alcotest.test_case "oracle" `Quick test_oracle;
        Alcotest.test_case "stream length" `Quick test_stream_length;
      ] );
  ]
