(* The observability layer: metric cells, registry, span recorder,
   deterministic snapshots, exports, and the Pipeline.run façade's
   span/metric contract. *)

module Obs = Ripple_obs
module W = Ripple_workloads
module Cache = Ripple_cache
module Core = Ripple_core
module Exp = Ripple_exp
module Json = Ripple_util.Json

let n_instrs = 60_000

(* ----------------------------- metrics ------------------------------ *)

let test_metric_cells () =
  let reg = Obs.Registry.create () in
  let c = Obs.Registry.counter reg ~help:"a counter" "c" in
  Obs.Metric.incr c;
  Obs.Metric.add c 4;
  Alcotest.(check int) "counter accumulates" 5 c.Obs.Metric.count;
  let g = Obs.Registry.gauge reg "g" in
  Obs.Metric.set g 2.5;
  Obs.Metric.set g 1.5;
  Alcotest.(check (float 0.0)) "gauge keeps last" 1.5 g.Obs.Metric.value;
  let h = Obs.Registry.histogram reg ~bounds:[ 1.0; 10.0 ] "h" in
  List.iter (Obs.Metric.observe h) [ 0.5; 5.0; 50.0; 10.0 ];
  Alcotest.(check (list int))
    "bucket counts (first bound wins, inclusive)"
    [ 1; 2; 1 ]
    (Array.to_list h.Obs.Metric.counts);
  let s = Obs.Registry.series reg "s" in
  for at = 0 to 40 do
    Obs.Metric.sample s ~at (Float.of_int at)
  done;
  Alcotest.(check int) "series keeps all samples" 41 (Array.length (Obs.Metric.series_points s));
  Alcotest.(check bool)
    "same name returns the same cell" true
    (Obs.Registry.counter reg "c" == c);
  match Obs.Registry.gauge reg "c" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "type clash on a registered name must raise"

let test_snapshot_merge () =
  let snap () =
    let reg = Obs.Registry.create () in
    let spans = Obs.Span.create () in
    Obs.Metric.add (Obs.Registry.counter reg "c") 3;
    Obs.Metric.set (Obs.Registry.gauge reg "g") 1.0;
    Obs.Metric.observe (Obs.Registry.histogram reg ~bounds:[ 2.0 ] "h") 1.0;
    Obs.Span.with_span spans "stage" (fun () -> ());
    Obs.Snapshot.v ~registry:reg ~spans
  in
  let a = snap () and b = snap () in
  let m = Obs.Snapshot.merge a b in
  Alcotest.(check string)
    "empty is a left identity"
    (Json.to_string (Obs.Snapshot.to_json a))
    (Json.to_string (Obs.Snapshot.to_json (Obs.Snapshot.merge Obs.Snapshot.empty a)));
  (match List.assoc "c" m.Obs.Snapshot.metrics with
  | Obs.Snapshot.Counter n -> Alcotest.(check int) "counters sum" 6 n
  | _ -> Alcotest.fail "expected a counter");
  (match List.assoc "h" m.Obs.Snapshot.metrics with
  | Obs.Snapshot.Histogram { count; _ } -> Alcotest.(check int) "histograms sum" 2 count
  | _ -> Alcotest.fail "expected a histogram");
  Alcotest.(check (option int))
    "span counts sum" (Some 2)
    (List.assoc_opt "stage" m.Obs.Snapshot.spans)

let test_openmetrics_format () =
  let reg = Obs.Registry.create () in
  let spans = Obs.Span.create () in
  Obs.Metric.add (Obs.Registry.counter reg ~help:"things done" "work") 7;
  Obs.Metric.observe (Obs.Registry.histogram reg ~bounds:[ 1.0; 2.0 ] "sizes") 1.5;
  let text = Obs.Snapshot.to_openmetrics (Obs.Snapshot.v ~registry:reg ~spans) in
  let has needle =
    let n = String.length needle and l = String.length text in
    let rec scan i = i + n <= l && (String.sub text i n = needle || scan (i + 1)) in
    scan 0
  in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (has needle))
    [
      "# TYPE work counter";
      "work_total 7";
      "# TYPE sizes histogram";
      "sizes_bucket{le=\"2.0\"} 1";
      "sizes_bucket{le=\"+Inf\"} 1";
      "sizes_count 1";
      "sizes_sum 1.5";
    ];
  Alcotest.(check bool) "terminated by # EOF" true (has "# EOF")

(* ------------------------------ spans ------------------------------- *)

(* Every span opened through with_span is closed, including when the
   wrapped thunk raises at an arbitrary nesting depth. *)
let span_balance_prop =
  QCheck.Test.make ~count:200 ~name:"every opened span is closed"
    QCheck.(pair (list small_nat) (int_bound 6))
    (fun (codes, raise_depth) ->
      let spans = Obs.Span.create () in
      (* Interleave enters and exits driven by the random codes. *)
      List.iter
        (fun code ->
          if code mod 2 = 0 then Obs.Span.enter spans (Printf.sprintf "s%d" (code mod 5))
          else if Obs.Span.open_spans spans > 0 then Obs.Span.exit spans)
        codes;
      while Obs.Span.open_spans spans > 0 do
        Obs.Span.exit spans
      done;
      (* A with_span tower that raises at the bottom must still unwind. *)
      let rec tower d =
        Obs.Span.with_span spans (Printf.sprintf "t%d" d) (fun () ->
            if d = 0 then failwith "boom" else tower (d - 1))
      in
      (match tower raise_depth with () -> () | exception Failure _ -> ());
      Obs.Span.open_spans spans = 0
      && Obs.Span.opened_total spans = List.length (Obs.Span.closed spans))

let test_span_nesting () =
  let spans = Obs.Span.create () in
  Obs.Span.with_span spans "run" (fun () ->
      Obs.Span.with_span spans "inject" (fun () -> ());
      Obs.Span.with_span spans "inject" (fun () -> ()));
  Alcotest.(check (list (pair string int)))
    "paths carry nesting and counts"
    [ ("run", 1); ("run/inject", 2) ]
    (Obs.Span.paths spans)

(* ------------------------- the run façade --------------------------- *)

let pipeline_outcome () =
  let workload = W.Cfg_gen.generate W.Apps.finagle_http in
  let program = workload.W.Cfg_gen.program in
  let train = W.Executor.run workload ~input:W.Executor.train ~n_instrs in
  let eval = W.Executor.run workload ~input:W.Executor.eval_inputs.(0) ~n_instrs in
  Core.Pipeline.run
    {
      Core.Pipeline.Options.default with
      verify = true;
      eval =
        Some
          (Core.Pipeline.Eval.v ~warmup:(Array.length eval / 2) ~trace:eval
             ~policy:Cache.Lru.make ());
    }
    ~source:program (Core.Pipeline.Trace train)

let stage_names = [ "decode"; "profile"; "belady"; "cue-select"; "inject"; "simulate" ]

let test_run_spans_and_metrics () =
  let oc = pipeline_outcome () in
  List.iter
    (fun stage ->
      Alcotest.(check (option int))
        (stage ^ " span recorded once")
        (Some 1)
        (List.assoc_opt stage oc.Core.Pipeline.metrics.Obs.Snapshot.spans))
    stage_names;
  let metric name =
    match List.assoc_opt name oc.Core.Pipeline.metrics.Obs.Snapshot.metrics with
    | Some (Obs.Snapshot.Counter n) -> n
    | _ -> Alcotest.fail (name ^ " missing or not a counter")
  in
  Alcotest.(check bool) "profile accesses counted" true (metric "ripple_profile_accesses" > 0);
  Alcotest.(check bool) "windows counted" true (metric "ripple_belady_windows" > 0);
  Alcotest.(check int)
    "hints counted match the analysis" oc.Core.Pipeline.analysis.Core.Pipeline.injection
      .Core.Injector.injected
    (metric "ripple_inject_hints");
  match List.assoc_opt "ripple_sim_ipc" oc.Core.Pipeline.metrics.Obs.Snapshot.metrics with
  | Some (Obs.Snapshot.Series points) ->
    Alcotest.(check bool) "IPC series sampled" true (Array.length points > 0)
  | _ -> Alcotest.fail "ripple_sim_ipc series missing"

(* Deterministic observability: two fresh runs of the same input carry
   byte-identical snapshots (durations never enter the snapshot). *)
let test_run_snapshot_deterministic () =
  let a = pipeline_outcome () and b = pipeline_outcome () in
  Alcotest.(check string)
    "snapshots byte-identical"
    (Json.to_string (Obs.Snapshot.to_json a.Core.Pipeline.metrics))
    (Json.to_string (Obs.Snapshot.to_json b.Core.Pipeline.metrics))

(* The sweep-level property behind the JSONL [metrics] object: per-cell
   snapshots (metric values and span structure) are identical whether
   the sweep ran on one domain or four. *)
let test_metrics_jobs_parity () =
  let specs =
    [
      Exp.Spec.v ~n_instrs ~app:"finagle-http" (Exp.Spec.Policy "lru");
      Exp.Spec.v ~n_instrs ~app:"finagle-http" (Exp.Spec.Ripple { policy = "lru"; threshold = 0.5 });
      Exp.Spec.v ~n_instrs ~app:"verilator" ~prefetch:Core.Pipeline.No_prefetch Exp.Spec.Oracle;
    ]
  in
  let render cells =
    String.concat "\n"
      (List.map
         (fun (c : Exp.Runner.cell) ->
           match c.Exp.Runner.status with
           | Exp.Runner.Done o -> Json.to_string (Obs.Snapshot.to_json o.Exp.Runner.metrics)
           | _ -> Alcotest.fail "cell failed")
         cells)
  in
  Alcotest.(check string)
    "per-cell snapshots byte-identical across jobs"
    (render (Exp.Runner.run ~jobs:1 ~quiet:true specs))
    (render (Exp.Runner.run ~jobs:4 ~quiet:true specs))

(* ------------------------------ exports ----------------------------- *)

let test_chrome_trace_export () =
  let workload = W.Cfg_gen.generate W.Apps.finagle_http in
  let program = workload.W.Cfg_gen.program in
  let train = W.Executor.run workload ~input:W.Executor.train ~n_instrs in
  let eval = W.Executor.run workload ~input:W.Executor.eval_inputs.(0) ~n_instrs in
  let obs = Obs.Run.create () in
  let _oc =
    Core.Pipeline.run ~obs
      {
        Core.Pipeline.Options.default with
        verify = true;
        eval =
          Some
            (Core.Pipeline.Eval.v ~warmup:(Array.length eval / 2) ~trace:eval
               ~policy:Cache.Lru.make ());
      }
      ~source:program (Core.Pipeline.Trace train)
  in
  let rendered = Obs.Export.chrome_sink.Obs.Export.render obs in
  match Json.parse rendered with
  | Error e -> Alcotest.fail ("chrome trace is not valid JSON: " ^ e)
  | Ok json ->
    let events =
      match Json.member "traceEvents" json with
      | Some (Json.List l) -> l
      | _ -> Alcotest.fail "traceEvents missing"
    in
    let names_of ph =
      List.filter_map
        (fun e ->
          match (Json.member "ph" e, Json.member "name" e) with
          | Some (Json.String p), Some (Json.String n) when p = ph -> Some n
          | _ -> None)
        events
    in
    let span_names = names_of "X" in
    List.iter
      (fun stage ->
        Alcotest.(check bool) ("trace covers stage " ^ stage) true (List.mem stage span_names))
      stage_names;
    Alcotest.(check bool)
      "virtual-time counter events present" true
      (List.mem "ripple_sim_ipc" (names_of "C"));
    List.iter
      (fun e ->
        match (Json.member "ph" e, Json.member "dur" e) with
        | Some (Json.String "X"), Some (Json.Float d) ->
          Alcotest.(check bool) "span durations non-negative" true (d >= 0.0)
        | _ -> ())
      events

(* The metric-name schema is a contract: the vocabulary a full run
   registers must equal the checked-in docs/metrics.schema (which CI
   also greps against the bench artifacts). *)
let test_metrics_schema () =
  let oc = pipeline_outcome () in
  let text = Obs.Snapshot.to_openmetrics oc.Core.Pipeline.metrics in
  let type_lines =
    List.filter_map
      (fun line ->
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; name; kind ] -> Some (name ^ " " ^ kind)
        | _ -> None)
      (String.split_on_char '\n' text)
  in
  let ic = open_in "../docs/metrics.schema" in
  let keep line =
    (* The ripple_serve_* families come from the daemon, not a pipeline
       run; the serve suite pins those against the live scrape. *)
    String.trim line <> ""
    && not (String.length line >= 13 && String.sub line 0 13 = "ripple_serve_")
  in
  let rec read acc =
    match input_line ic with
    | line -> read (if keep line then String.trim line :: acc else acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  let schema = read [] in
  Alcotest.(check (list string)) "metric schema matches docs/metrics.schema" schema type_lines

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "metric cells" `Quick test_metric_cells;
        Alcotest.test_case "snapshot merge" `Quick test_snapshot_merge;
        Alcotest.test_case "openmetrics format" `Quick test_openmetrics_format;
        QCheck_alcotest.to_alcotest span_balance_prop;
        Alcotest.test_case "span nesting paths" `Quick test_span_nesting;
        Alcotest.test_case "run spans and metrics" `Slow test_run_spans_and_metrics;
        Alcotest.test_case "run snapshot deterministic" `Slow test_run_snapshot_deterministic;
        Alcotest.test_case "per-cell metrics parity across jobs" `Slow test_metrics_jobs_parity;
        Alcotest.test_case "chrome trace export" `Slow test_chrome_trace_export;
        Alcotest.test_case "metric schema pinned" `Slow test_metrics_schema;
      ] );
  ]
