(* A final breadth pass: behaviours not yet pinned by the other suites —
   RAS-driven FDIP returns, Demand-MIN tie-breaking, executor phase
   drift, stats helpers, and hierarchy interactions. *)

module Basic_block = Ripple_isa.Basic_block
module Builder = Ripple_isa.Builder
module Program = Ripple_isa.Program
module Access = Ripple_cache.Access
module Geometry = Ripple_cache.Geometry
module Cache = Ripple_cache.Cache
module Stats = Ripple_cache.Stats
module Belady = Ripple_cache.Belady
module Lru = Ripple_cache.Lru
module Fdip = Ripple_prefetch.Fdip
module Prefetcher = Ripple_prefetch.Prefetcher
module Config = Ripple_cpu.Config
module Simulator = Ripple_cpu.Simulator
module W = Ripple_workloads

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checkf = check (Alcotest.float 1e-9)

(* ---------------------- FDIP returns via the RAS -------------------- *)

let test_fdip_predicts_returns () =
  (* main calls f; f returns; loop.  After one round of training there is
     nothing left to mispredict: calls are direct and the return target
     comes from the runahead RAS. *)
  let b = Builder.create () in
  let main = Builder.block b ~bytes:64 ~term:Basic_block.Halt () in
  let f = Builder.block b ~bytes:64 ~term:Basic_block.Return () in
  let cont = Builder.block b ~bytes:64 ~term:Basic_block.Halt () in
  Builder.set_term b main (Basic_block.Call { callee = f; return_to = cont });
  Builder.set_term b cont (Basic_block.Jump main);
  let program = Builder.finish b ~entry:main in
  let pf, internals = Fdip.create_instrumented ~program () in
  let sequence = [ main; f; cont ] in
  for _ = 1 to 50 do
    List.iter (fun id -> ignore (pf.Prefetcher.on_block (Program.block program id))) sequence
  done;
  (* The first iteration may flush while the FTQ is cold; afterwards the
     call/return loop is fully predictable. *)
  checkb "returns predicted via RAS" true (internals.Fdip.mispredicts () <= 1);
  (* The recent-line filter suppresses re-issuing the 3-line loop, so the
     issue count stays small but must be nonzero. *)
  checkb "prefetches issued" true (internals.Fdip.issued () > 0)

(* ---------------------- Demand-MIN edge behaviour ------------------- *)

let one_set = Geometry.v ~size_bytes:(2 * 64) ~ways:2
let demand line = Access.demand ~line ~block:line
let prefetch line = Access.prefetch ~line ~block:line

let test_demand_min_dead_line_priority () =
  (* A line never referenced again is the preferred victim even when the
     other resident line's next reference is a prefetch. *)
  let stream =
    Ripple_cache.Access_stream.of_array [| demand 0; demand 2; demand 4; prefetch 0; demand 0 |]
  in
  let r = Belady.simulate one_set ~mode:Belady.Demand_min stream in
  let e = r.Belady.evictions.(0) in
  (* Line 0's next ref is the prefetch at 3 (class A, np = 3); line 2 is
     dead (np = infinity): the dead line must win the class-A contest. *)
  checki "dead line evicted first" 2 e.Belady.line;
  checkb "marked never" true (e.Belady.next = Belady.Never)

let test_belady_mpki_helper () =
  let stream = Ripple_cache.Access_stream.of_array (Array.init 10 (fun i -> demand (i * 2))) in
  let r = Belady.simulate one_set ~mode:Belady.Min stream in
  checkf "mpki arithmetic" (1000.0 *. Float.of_int r.Belady.demand_misses /. 5000.0)
    (Belady.mpki r ~instructions:5000);
  checkf "mpki of zero instructions" 0.0 (Belady.mpki r ~instructions:0)

(* --------------------------- stats helpers -------------------------- *)

let test_stats_helpers () =
  let s = Stats.create () in
  checkf "coverage without decisions" 0.0 (Stats.coverage s);
  checkf "mpki without instructions" 0.0 (Stats.mpki s ~instructions:0);
  s.Stats.demand_accesses <- 10;
  s.Stats.demand_misses <- 4;
  s.Stats.replacement_decisions <- 8;
  s.Stats.hinted_fills <- 2;
  checkf "miss ratio" 0.4 (Stats.demand_miss_ratio s);
  checkf "coverage" 0.25 (Stats.coverage s);
  checkf "mpki" 2.0 (Stats.mpki s ~instructions:2000);
  checki "total accesses" 10 (Stats.total_accesses s);
  Stats.reset s;
  checki "reset" 0 s.Stats.demand_accesses

(* ----------------------- executor phase drift ----------------------- *)

let test_executor_phase_shifts_hot_set () =
  (* With a short phase length, the hot handler set must differ between
     the first and last third of the trace. *)
  let model =
    {
      W.Apps.cassandra with
      W.App_model.name = "phase-test";
      seed = 51;
      n_functions = 200;
      hot_functions = 40;
      handler_blocks = 40;
      phase_len_instrs = 60_000;
    }
  in
  let w = W.Cfg_gen.generate model in
  let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:400_000 in
  let n = Array.length trace in
  let hot_handlers lo hi =
    let counts = Hashtbl.create 64 in
    for i = lo to hi - 1 do
      if trace.(i) = w.W.Cfg_gen.dispatcher && i + 1 < n then begin
        let h = trace.(i + 1) in
        Hashtbl.replace counts h (1 + Option.value ~default:0 (Hashtbl.find_opt counts h))
      end
    done;
    let l = Hashtbl.fold (fun k v acc -> (v, k) :: acc) counts [] in
    List.filteri (fun i _ -> i < 5) (List.rev (List.sort compare l)) |> List.map snd
  in
  let early = hot_handlers 0 (n / 3) in
  let late = hot_handlers (2 * n / 3) n in
  checkb "hot sets drift across phases" true (early <> late)

let test_executor_zipf_delta_changes_mix () =
  let w = W.Cfg_gen.generate { W.Apps.cassandra with W.App_model.seed = 52 } in
  let flat =
    W.Executor.run w
      ~input:(W.Executor.input ~label:"flat" ~seed:7 ~zipf_delta:(-0.9) ())
      ~n_instrs:150_000
  in
  let sharp =
    W.Executor.run w
      ~input:(W.Executor.input ~label:"sharp" ~seed:7 ~zipf_delta:0.9 ())
      ~n_instrs:150_000
  in
  let distinct trace =
    let t = Hashtbl.create 256 in
    Array.iter (fun id -> Hashtbl.replace t id ()) trace;
    Hashtbl.length t
  in
  (* A sharper request mix touches less distinct code. *)
  checkb "sharper zipf -> smaller dynamic footprint" true (distinct sharp < distinct flat)

(* ------------------------ hierarchy interplay ----------------------- *)

let test_prefetch_warms_hierarchy () =
  (* A prefetch that misses L1 must install the line in L2 so a later
     demand miss is served faster. *)
  let b = Builder.create () in
  let first, last = Builder.straight_line b ~bytes_per_block:64 ~n:600 () in
  Builder.set_term b last (Basic_block.Jump first);
  let program = Builder.finish b ~entry:first in
  (* 600 lines > 512-line L1: cycling thrashes L1 but fits L2, so with a
     prefetcher the memory-served count collapses after the first lap. *)
  let trace = Array.init 3_000 (fun i -> first + (i mod 600)) in
  let none =
    Simulator.run ~program ~trace ~policy:Lru.make ~prefetcher:Simulator.prefetcher_none ()
  in
  let nlp =
    Simulator.run ~program ~trace ~policy:Lru.make
      ~prefetcher:(Simulator.prefetcher_nlp ?config:None) ()
  in
  checki "cold lines from memory" 600 none.Simulator.served_memory;
  checkb "remaining misses are L2 hits" true (none.Simulator.served_l2 > 0);
  (* On a pure cyclic thrash the multi-block prefetch latency means NLP's
     next-line arrives just after its demand: it cannot help, but the
     L2-warming path must not make things worse either. *)
  checkb "nlp not worse" true (nlp.Simulator.demand_misses <= none.Simulator.demand_misses);
  checkb "nlp issued prefetch traffic" true (nlp.Simulator.l1i.Stats.prefetch_accesses > 0)

let test_custom_geometry_configs () =
  (* The simulator honours a non-default L1I geometry end to end. *)
  let w = W.Cfg_gen.generate { W.Apps.kafka with W.App_model.seed = 53 } in
  let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:150_000 in
  let program = w.W.Cfg_gen.program in
  let run l1i =
    let config = { Config.default with Config.l1i } in
    Simulator.run ~config ~program ~trace ~policy:Lru.make
      ~prefetcher:Simulator.prefetcher_none ()
  in
  let small = run (Geometry.v ~size_bytes:(16 * 1024) ~ways:4) in
  let big = run (Geometry.v ~size_bytes:(128 * 1024) ~ways:8) in
  checkb "bigger cache, fewer misses" true
    (big.Simulator.demand_misses < small.Simulator.demand_misses)

(* --------------------------- PT vs layout ---------------------------- *)

let test_pt_decode_of_instrumented_program () =
  (* Injection is layout-preserving, so a trace recorded on the original
     binary decodes identically against the instrumented one. *)
  let w = W.Cfg_gen.generate { W.Apps.kafka with W.App_model.seed = 54 } in
  let program = w.W.Cfg_gen.program in
  let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:60_000 in
  let hints = Array.make (Program.n_blocks program) [] in
  hints.(trace.(0)) <- [ Basic_block.Invalidate 42 ];
  let instrumented, _ = Program.with_hints program ~hints in
  let encoded = Ripple_trace.Pt.encode program trace in
  let decoded = Ripple_trace.Pt.decode instrumented encoded in
  check (Alcotest.array Alcotest.int) "cross-binary decode" trace decoded

let suites =
  [
    ( "more.fdip",
      [ Alcotest.test_case "predicts returns" `Quick test_fdip_predicts_returns ] );
    ( "more.belady",
      [
        Alcotest.test_case "dead-line priority" `Quick test_demand_min_dead_line_priority;
        Alcotest.test_case "mpki helper" `Quick test_belady_mpki_helper;
      ] );
    ("more.stats", [ Alcotest.test_case "helpers" `Quick test_stats_helpers ]);
    ( "more.executor",
      [
        Alcotest.test_case "phase drift" `Quick test_executor_phase_shifts_hot_set;
        Alcotest.test_case "zipf delta" `Quick test_executor_zipf_delta_changes_mix;
      ] );
    ( "more.hierarchy",
      [
        Alcotest.test_case "prefetch warms hierarchy" `Quick test_prefetch_warms_hierarchy;
        Alcotest.test_case "custom geometry" `Quick test_custom_geometry_configs;
      ] );
    ( "more.pt",
      [ Alcotest.test_case "decode vs instrumented" `Quick test_pt_decode_of_instrumented_program ] );
  ]
