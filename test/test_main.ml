(* Aggregates every suite into one alcotest run: `dune runtest`. *)

let () =
  Alcotest.run "ripple"
    (Test_util.suites @ Test_isa.suites @ Test_trace.suites @ Test_cache.suites
   @ Test_belady.suites @ Test_stream.suites @ Test_prefetch.suites @ Test_cpu.suites @ Test_workloads.suites
   @ Test_core.suites @ Test_analysis.suites @ Test_extra.suites @ Test_extensions.suites @ Test_regression.suites
   @ Test_more.suites @ Test_exp.suites @ Test_fault.suites @ Test_obs.suites
   @ Test_serve.suites @ Test_zoo.suites)
