(* Additional edge-case, failure-injection and end-to-end determinism
   tests across the libraries. *)

module Addr = Ripple_isa.Addr
module Basic_block = Ripple_isa.Basic_block
module Builder = Ripple_isa.Builder
module Program = Ripple_isa.Program
module Packet = Ripple_trace.Packet
module Pt = Ripple_trace.Pt
module Access = Ripple_cache.Access
module Geometry = Ripple_cache.Geometry
module Cache = Ripple_cache.Cache
module Stats = Ripple_cache.Stats
module Belady = Ripple_cache.Belady
module Lru = Ripple_cache.Lru
module Fdip = Ripple_prefetch.Fdip
module Prefetcher = Ripple_prefetch.Prefetcher
module Simulator = Ripple_cpu.Simulator
module Pipeline = Ripple_core.Pipeline
module W = Ripple_workloads

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* ----------------------- malformed trace input ---------------------- *)

let test_packet_rejects_bad_tag () =
  (* Tag 0b11 is unassigned. *)
  let data = Bytes.make 1 (Char.chr 0b1100_0000) in
  Alcotest.check_raises "bad tag" (Invalid_argument "Packet.read: bad tag") (fun () ->
      ignore (Packet.read data ~pos:0))

let test_packet_rejects_empty_tnt () =
  let data = Bytes.make 1 (Char.chr 0) in
  Alcotest.check_raises "empty tnt" (Invalid_argument "Packet.read: empty TNT") (fun () ->
      ignore (Packet.read data ~pos:0))

let test_pt_decode_rejects_truncation () =
  let b = Builder.create () in
  let entry = Builder.block b ~bytes:16 ~term:Basic_block.Halt () in
  let other = Builder.block b ~bytes:16 ~term:Basic_block.Halt () in
  Builder.set_term b entry (Basic_block.Cond { taken = entry; fallthrough = other });
  Builder.set_term b other (Basic_block.Jump entry);
  let program = Builder.finish b ~entry in
  let trace = [| entry; other; entry; entry |] in
  let encoded = Pt.encode program trace in
  (* Chop the stream after the header + first packet. *)
  let truncated = Bytes.sub encoded 0 (Bytes.length encoded - 2) in
  checkb "truncated decode raises" true
    (try
       ignore (Pt.decode program truncated);
       false
     with Invalid_argument _ -> true)

let test_pt_decode_rejects_bad_tip () =
  let b = Builder.create () in
  let entry = Builder.block b ~bytes:16 ~term:Basic_block.Halt () in
  let program = Builder.finish b ~entry in
  let buf = Buffer.create 8 in
  (* Header says one block, but the TIP points into the void. *)
  Buffer.add_char buf (Char.chr 1);
  Packet.write buf (Packet.Tip 0x1234);
  checkb "bad tip raises" true
    (try
       ignore (Pt.decode program (Buffer.to_bytes buf));
       false
     with Invalid_argument _ -> true)

(* --------------------- simulator determinism ------------------------ *)

let test_end_to_end_determinism () =
  let model = { W.Apps.finagle_http with W.App_model.seed = 3 } in
  let run () =
    let w = W.Cfg_gen.generate model in
    let program = w.W.Cfg_gen.program in
    let profile = W.Executor.run w ~input:W.Executor.train ~n_instrs:200_000 in
    let eval = W.Executor.run w ~input:W.Executor.eval_inputs.(0) ~n_instrs:200_000 in
    let oc =
      Pipeline.run
        {
          Pipeline.Options.default with
          prefetch = Pipeline.Fdip;
          eval = Some (Pipeline.Eval.v ~trace:eval ~policy:Lru.make ());
        }
        ~source:program (Pipeline.Trace profile)
    in
    let ev = Option.get oc.Pipeline.evaluation in
    ( ev.Pipeline.result.Simulator.demand_misses,
      ev.Pipeline.hint_execs,
      ev.Pipeline.coverage,
      ev.Pipeline.accuracy )
  in
  let a = run () and b = run () in
  checkb "bit-identical evaluation" true (a = b)

(* -------------------------- timing algebra -------------------------- *)

let test_more_misses_never_faster () =
  (* With identical instruction counts, a run with strictly more misses
     must not have higher IPC. *)
  let b = Builder.create () in
  let first, last = Builder.straight_line b ~bytes_per_block:64 ~n:600 () in
  Builder.set_term b last (Basic_block.Jump first);
  let program = Builder.finish b ~entry:first in
  let trace = Array.init 5_000 (fun i -> first + (i mod 600)) in
  (* 600 lines cycling through a 512-line cache: LRU thrashes, MIN
     (oracle) keeps most of it. *)
  let lru =
    Simulator.run ~program ~trace ~policy:Lru.make ~prefetcher:Simulator.prefetcher_none ()
  in
  let oracle =
    Simulator.oracle ~mode:Belady.Min ~program ~trace ~prefetcher:Simulator.prefetcher_none ()
  in
  checkb "oracle fewer misses" true (oracle.Simulator.demand_misses < lru.Simulator.demand_misses);
  checkb "oracle faster" true (oracle.Simulator.ipc > lru.Simulator.ipc)

let test_prefetch_latency_zero_vs_default () =
  (* Instant prefetches can only help. *)
  let w = W.Cfg_gen.generate W.Apps.verilator in
  let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:200_000 in
  let program = w.W.Cfg_gen.program in
  let run config =
    Simulator.run ~config ~program ~trace ~policy:Lru.make
      ~prefetcher:(Simulator.prefetcher_fdip ~config) ()
  in
  let default = run Ripple_cpu.Config.default in
  let instant =
    run { Ripple_cpu.Config.default with Ripple_cpu.Config.prefetch_latency_blocks = 0 }
  in
  checkb "instant prefetch not slower" true
    (instant.Simulator.demand_misses <= default.Simulator.demand_misses)

(* --------------------------- hint algebra --------------------------- *)

let test_invalidating_everything_is_terrible () =
  (* Failure injection: a hint on every block invalidating its own line
     must drive misses towards one per block execution. *)
  let b = Builder.create () in
  let first, last = Builder.straight_line b ~bytes_per_block:64 ~n:8 () in
  Builder.set_term b last (Basic_block.Jump first);
  let program = Builder.finish b ~entry:first in
  let hints =
    Array.init (Program.n_blocks program) (fun i ->
        [ Basic_block.Invalidate (List.hd (Basic_block.lines (Program.block program i))) ])
  in
  let sabotaged, _ = Program.with_hints program ~hints in
  let trace = Array.init 400 (fun i -> first + (i mod 8)) in
  let clean =
    Simulator.run ~program ~trace ~policy:Lru.make ~prefetcher:Simulator.prefetcher_none ()
  in
  let bad =
    Simulator.run ~program:sabotaged ~trace ~policy:Lru.make
      ~prefetcher:Simulator.prefetcher_none ()
  in
  checki "clean run only cold misses" 8 clean.Simulator.demand_misses;
  checki "sabotaged run misses every block" 400 bad.Simulator.demand_misses;
  checkb "sabotage costs cycles" true (bad.Simulator.cycles > clean.Simulator.cycles)

let test_demote_weaker_than_invalidate_on_absent_lines () =
  (* Both hint flavours are no-ops when the line is absent. *)
  let c = Cache.create ~geometry:(Geometry.v ~size_bytes:128 ~ways:2) ~policy:Lru.make () in
  Cache.demote c 7;
  Cache.invalidate c 7;
  checki "both count as hint misses" 2 (Cache.stats c).Stats.invalidate_misses

(* --------------------------- fdip stalls ---------------------------- *)

let test_fdip_stalls_on_unknown_indirect () =
  (* An indirect branch with no BTB entry stalls runahead: the very
     first on_block can prefetch nothing past the indirect. *)
  let b = Builder.create () in
  let entry = Builder.block b ~bytes:64 ~term:Basic_block.Halt () in
  let t1 = Builder.block b ~bytes:64 ~term:Basic_block.Halt () in
  let t2 = Builder.block b ~bytes:64 ~term:Basic_block.Halt () in
  Builder.set_term b entry (Basic_block.Indirect [| t1; t2 |]);
  Builder.set_term b t1 (Basic_block.Jump entry);
  Builder.set_term b t2 (Basic_block.Jump entry);
  let program = Builder.finish b ~entry in
  let pf, internals = Fdip.create_instrumented ~program () in
  let issued_first = List.length (pf.Prefetcher.on_block (Program.block program entry)) in
  checki "nothing to prefetch before BTB training" 0 issued_first;
  (* After observing entry -> t1 the BTB knows a target. *)
  ignore (pf.Prefetcher.on_block (Program.block program t1));
  ignore (pf.Prefetcher.on_block (Program.block program entry));
  checkb "prefetching resumes after training" true (internals.Fdip.issued () > 0)

(* ------------------------ workload edge cases ----------------------- *)

let test_executor_minimal_trace () =
  let model =
    { W.Apps.kafka with W.App_model.seed = 9; n_functions = 60; hot_functions = 8 }
  in
  let w = W.Cfg_gen.generate model in
  let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:100 in
  checkb "nonempty" true (Array.length trace > 0);
  checkb "starts at dispatcher" true (trace.(0) = w.W.Cfg_gen.dispatcher)

let test_instrument_on_tiny_profile () =
  (* A profile too small to produce supported decisions must still yield
     a valid (possibly unmodified) binary. *)
  let model =
    { W.Apps.kafka with W.App_model.seed = 10; n_functions = 60; hot_functions = 8 }
  in
  let w = W.Cfg_gen.generate model in
  let profile = W.Executor.run w ~input:W.Executor.train ~n_instrs:2_000 in
  let oc =
    Pipeline.run
      { Pipeline.Options.default with prefetch = Pipeline.No_prefetch }
      ~source:w.W.Cfg_gen.program (Pipeline.Trace profile)
  in
  let instrumented = oc.Pipeline.program in
  let analysis = oc.Pipeline.analysis in
  checkb "decisions >= 0" true (analysis.Pipeline.n_decisions >= 0);
  checki "hints match decisions minus skips" analysis.Pipeline.injection.Ripple_core.Injector.injected
    (Program.static_hints instrumented)

let suites =
  [
    ( "extra.malformed-input",
      [
        Alcotest.test_case "bad tag" `Quick test_packet_rejects_bad_tag;
        Alcotest.test_case "empty tnt" `Quick test_packet_rejects_empty_tnt;
        Alcotest.test_case "truncated stream" `Quick test_pt_decode_rejects_truncation;
        Alcotest.test_case "bad tip" `Quick test_pt_decode_rejects_bad_tip;
      ] );
    ( "extra.determinism-and-timing",
      [
        Alcotest.test_case "end-to-end determinism" `Quick test_end_to_end_determinism;
        Alcotest.test_case "more misses never faster" `Quick test_more_misses_never_faster;
        Alcotest.test_case "prefetch latency" `Quick test_prefetch_latency_zero_vs_default;
      ] );
    ( "extra.failure-injection",
      [
        Alcotest.test_case "self-sabotage" `Quick test_invalidating_everything_is_terrible;
        Alcotest.test_case "hints on absent lines" `Quick
          test_demote_weaker_than_invalidate_on_absent_lines;
        Alcotest.test_case "fdip indirect stall" `Quick test_fdip_stalls_on_unknown_indirect;
      ] );
    ( "extra.edge-cases",
      [
        Alcotest.test_case "minimal trace" `Quick test_executor_minimal_trace;
        Alcotest.test_case "tiny profile" `Quick test_instrument_on_tiny_profile;
      ] );
  ]
