(* Tests for ripple.cache: geometry, the set-associative core, hint
   semantics, and the replacement policies. *)

module Geometry = Ripple_cache.Geometry
module Cache = Ripple_cache.Cache
module Access = Ripple_cache.Access
module Stats = Ripple_cache.Stats
module Policy = Ripple_cache.Policy
module Lru = Ripple_cache.Lru
module Random_policy = Ripple_cache.Random_policy
module Srrip = Ripple_cache.Srrip
module Drrip = Ripple_cache.Drrip
module Ghrp = Ripple_cache.Ghrp
module Hawkeye = Ripple_cache.Hawkeye

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* A tiny 2-set, 2-way geometry makes eviction behaviour fully
   observable: lines with equal parity share a set. *)
let tiny = Geometry.v ~size_bytes:(2 * 2 * 64) ~ways:2
let demand line = Access.demand ~line ~block:0
let prefetch line = Access.prefetch ~line ~block:0

let new_cache ?(policy = Lru.make) () = Cache.create ~geometry:tiny ~policy ()

(* ----------------------------- Geometry ----------------------------- *)

let test_geometry_derived () =
  checki "l1i sets" 64 (Geometry.sets Geometry.l1i);
  checki "l1i lines" 512 (Geometry.lines Geometry.l1i);
  checki "l2 sets" 1024 (Geometry.sets Geometry.l2);
  checki "tiny sets" 2 (Geometry.sets tiny);
  checki "set of line" 1 (Geometry.set_of_line tiny 3)

(* ---------------------------- Cache core ----------------------------- *)

let test_cache_hit_miss () =
  let c = new_cache () in
  checkb "first access misses" true (Cache.access c (demand 0) = Cache.Miss);
  checkb "second access hits" true (Cache.access c (demand 0) = Cache.Hit);
  checkb "contains" true (Cache.contains c 0);
  checkb "not contains" false (Cache.contains c 2)

let test_cache_lru_eviction () =
  let c = new_cache () in
  (* Set 0 holds lines 0,2,4,...; 2 ways. *)
  ignore (Cache.access c (demand 0));
  ignore (Cache.access c (demand 2));
  ignore (Cache.access c (demand 0));
  (* LRU order now: 2 oldest. *)
  ignore (Cache.access c (demand 4));
  checkb "victim was 2" false (Cache.contains c 2);
  checkb "0 survives" true (Cache.contains c 0);
  checkb "4 resident" true (Cache.contains c 4)

let test_cache_sets_independent () =
  let c = new_cache () in
  ignore (Cache.access c (demand 0));
  ignore (Cache.access c (demand 1));
  ignore (Cache.access c (demand 3));
  ignore (Cache.access c (demand 5));
  (* Set 1 churned; set 0 untouched. *)
  checkb "set 0 untouched" true (Cache.contains c 0)

let test_cache_stats () =
  let c = new_cache () in
  ignore (Cache.access c (demand 0));
  ignore (Cache.access c (demand 0));
  ignore (Cache.access c (demand 2));
  ignore (Cache.access c (demand 4));
  let s = Cache.stats c in
  checki "demand accesses" 4 s.Stats.demand_accesses;
  checki "demand misses" 3 s.Stats.demand_misses;
  checki "cold misses" 3 s.Stats.demand_misses_cold;
  checki "evictions" 1 s.Stats.evictions;
  checki "replacement decisions" 1 s.Stats.replacement_decisions

let test_cache_cold_classification () =
  let c = new_cache () in
  ignore (Cache.access c (demand 0));
  ignore (Cache.access c (demand 2));
  ignore (Cache.access c (demand 4)); (* evicts 0 *)
  ignore (Cache.access c (demand 0)); (* miss, but not cold *)
  let s = Cache.stats c in
  checki "four misses" 4 s.Stats.demand_misses;
  checki "three cold" 3 s.Stats.demand_misses_cold

let test_cache_prefetch_semantics () =
  let c = new_cache () in
  checkb "prefetch fills" true (Cache.access c (prefetch 0) = Cache.Miss);
  checkb "prefetch hit is no-op" true (Cache.access c (prefetch 0) = Cache.Hit);
  checkb "demand after prefetch hits" true (Cache.access c (demand 0) = Cache.Hit);
  let s = Cache.stats c in
  checki "prefetch accesses" 2 s.Stats.prefetch_accesses;
  checki "prefetch fills" 1 s.Stats.prefetch_fills;
  checki "no demand misses" 0 s.Stats.demand_misses

let test_cache_invalidate () =
  let c = new_cache () in
  ignore (Cache.access c (demand 0));
  ignore (Cache.access c (demand 2));
  Cache.invalidate c 0;
  checkb "gone" false (Cache.contains c 0);
  checkb "2 unaffected" true (Cache.contains c 2);
  (* Next fill in the set lands in the hinted way: a software-initiated
     replacement decision. *)
  ignore (Cache.access c (demand 4));
  checkb "2 still resident" true (Cache.contains c 2);
  let s = Cache.stats c in
  checki "invalidate hits" 1 s.Stats.invalidate_hits;
  checki "hinted fill" 1 s.Stats.hinted_fills;
  checki "replacement decisions" 1 s.Stats.replacement_decisions;
  checki "no hardware eviction" 0 s.Stats.evictions;
  check (Alcotest.float 1e-9) "coverage" 1.0 (Stats.coverage s)

let test_cache_invalidate_absent () =
  let c = new_cache () in
  Cache.invalidate c 0;
  checki "counted as miss" 1 (Cache.stats c).Stats.invalidate_misses

let test_cache_demote_lru () =
  let c = new_cache () in
  ignore (Cache.access c (demand 0));
  ignore (Cache.access c (demand 2));
  (* 0 is LRU; demote 2 below it. *)
  Cache.demote c 2;
  ignore (Cache.access c (demand 4));
  checkb "demoted 2 evicted" false (Cache.contains c 2);
  checkb "0 survives" true (Cache.contains c 0);
  checki "demotes counted" 1 (Cache.stats c).Stats.demotes

let test_cache_flush () =
  let c = new_cache () in
  ignore (Cache.access c (demand 0));
  Cache.flush c;
  checkb "flushed" false (Cache.contains c 0);
  checki "stats preserved" 1 (Cache.stats c).Stats.demand_misses

let test_cache_resident_and_occupancy () =
  let c = new_cache () in
  ignore (Cache.access c (demand 0));
  ignore (Cache.access c (demand 1));
  ignore (Cache.access c (demand 2));
  check (Alcotest.list Alcotest.int) "residents" [ 0; 1; 2 ]
    (List.sort compare (Cache.resident_lines c));
  checki "set 0 occupancy" 2 (Cache.occupancy c ~set:0);
  checki "set 1 occupancy" 1 (Cache.occupancy c ~set:1)

(* Occupancy invariant under arbitrary access/invalidate interleavings. *)
let prop_cache_capacity =
  QCheck.Test.make ~count:200 ~name:"cache never exceeds capacity; contains after access"
    QCheck.(small_list (pair bool (int_range 0 40)))
    (fun ops ->
      let c = new_cache () in
      List.for_all
        (fun (is_access, line) ->
          if is_access then begin
            ignore (Cache.access c (demand line));
            Cache.contains c line
          end
          else begin
            Cache.invalidate c line;
            not (Cache.contains c line)
          end
          && List.length (Cache.resident_lines c) <= Geometry.lines tiny)
        ops)

(* ----------------------------- Policies ----------------------------- *)

let run_policy policy accesses =
  let c = Cache.create ~geometry:tiny ~policy () in
  List.iter (fun line -> ignore (Cache.access c (demand line))) accesses;
  c

let test_random_policy_bounded () =
  let c = run_policy (Random_policy.make ~seed:3) [ 0; 2; 4; 6; 8; 10; 0; 2; 4 ] in
  checki "occupancy stays full" 2 (Cache.occupancy c ~set:0)

let test_random_demote_is_victim () =
  let c = Cache.create ~geometry:tiny ~policy:(Random_policy.make ~seed:3) () in
  ignore (Cache.access c (demand 0));
  ignore (Cache.access c (demand 2));
  Cache.demote c 0;
  ignore (Cache.access c (demand 4));
  checkb "demoted way chosen" false (Cache.contains c 0);
  checkb "other way kept" true (Cache.contains c 2)

let test_srrip_promotes_on_reuse () =
  (* Line 0 is re-referenced, line 2 is a scan: the scan line is evicted
     first even though it is more recent. *)
  let c = run_policy Srrip.make [ 0; 0; 2; 4 ] in
  checkb "reused line kept" true (Cache.contains c 0);
  checkb "scan line evicted" false (Cache.contains c 2)

let test_srrip_victim_progress () =
  (* All-new lines still find victims (aging terminates). *)
  let c = run_policy Srrip.make [ 0; 2; 4; 6; 8; 10 ] in
  checki "full set" 2 (Cache.occupancy c ~set:0)

let test_drrip_behaves () =
  let c =
    run_policy (Drrip.make ())
      (List.concat_map (fun i -> [ i * 2; i * 2 ]) (List.init 40 (fun i -> i)))
  in
  checki "full set" 2 (Cache.occupancy c ~set:0)

let test_ghrp_tracks_and_survives () =
  (* A hot line interleaved with a cold scan: GHRP must keep working and
     serve hits on the hot line. *)
  let accesses = List.concat_map (fun i -> [ 0; (i * 2) mod 24 ]) (List.init 200 (fun i -> i)) in
  let c = run_policy (Ghrp.make ()) accesses in
  checki "full set" 2 (Cache.occupancy c ~set:0);
  checkb "some hits happened" true ((Cache.stats c).Stats.demand_misses < 400)

let test_hawkeye_mostly_friendly () =
  (* A looping pattern that fits: Hawkeye should behave LRU-ish and
     classify PCs as cache-friendly (the paper's >99% observation). *)
  let geometry = Geometry.l1i in
  let c = Cache.create ~geometry ~policy:(Hawkeye.make ()) () in
  for _ = 1 to 200 do
    for line = 0 to 200 do
      ignore (Cache.access c (Access.demand ~line ~block:line))
    done
  done;
  checkb "friendly dominates" true (Hawkeye.stats_friendly_fraction () > 0.5)

let test_policy_storage_accounting () =
  let sets = 64 and ways = 8 in
  checki "lru bits" 512 (Lru.make ~sets ~ways).Policy.storage_bits;
  checki "srrip bits" 1024 (Srrip.make ~sets ~ways).Policy.storage_bits;
  checki "random bits" 0 (Random_policy.make ~seed:0 ~sets ~ways).Policy.storage_bits;
  (* GHRP ~4.1 KiB, Hawkeye ~5.2 KiB per Table I. *)
  let ghrp_bytes = (Ghrp.make () ~sets ~ways).Policy.storage_bits / 8 in
  checkb "ghrp ~4KiB" true (ghrp_bytes > 3500 && ghrp_bytes < 4800);
  let hawkeye_bytes = (Hawkeye.make () ~sets ~ways).Policy.storage_bits / 8 in
  checkb "hawkeye ~5.2KiB" true (hawkeye_bytes > 4500 && hawkeye_bytes < 6000)

(* LRU property: accessing up to [ways] distinct lines of one set keeps
   them all resident. *)
let prop_lru_retention =
  QCheck.Test.make ~count:200 ~name:"LRU keeps the most recent <ways> lines of a set"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (int_range 0 19))
    (fun lines ->
      let c = new_cache () in
      List.iter (fun i -> ignore (Cache.access c (demand (2 * i)))) lines;
      (* The two most recently accessed distinct even lines must hit. *)
      let recent_first = List.rev_map (fun i -> 2 * i) lines in
      let distinct =
        (* first occurrences of [recent_first], most recent first *)
        List.rev
          (List.fold_left
             (fun acc x -> if List.mem x acc then acc else x :: acc)
             [] recent_first)
      in
      match distinct with
      | last :: second :: _ -> Cache.contains c last && Cache.contains c second
      | [ only ] -> Cache.contains c only
      | [] -> true)

let qcheck = QCheck_alcotest.to_alcotest

let suites =
  [
    ("cache.geometry", [ Alcotest.test_case "derived" `Quick test_geometry_derived ]);
    ( "cache.core",
      [
        Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
        Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
        Alcotest.test_case "sets independent" `Quick test_cache_sets_independent;
        Alcotest.test_case "stats" `Quick test_cache_stats;
        Alcotest.test_case "cold classification" `Quick test_cache_cold_classification;
        Alcotest.test_case "prefetch semantics" `Quick test_cache_prefetch_semantics;
        Alcotest.test_case "invalidate" `Quick test_cache_invalidate;
        Alcotest.test_case "invalidate absent" `Quick test_cache_invalidate_absent;
        Alcotest.test_case "demote (lru)" `Quick test_cache_demote_lru;
        Alcotest.test_case "flush" `Quick test_cache_flush;
        Alcotest.test_case "resident/occupancy" `Quick test_cache_resident_and_occupancy;
        qcheck prop_cache_capacity;
      ] );
    ( "cache.policies",
      [
        Alcotest.test_case "random bounded" `Quick test_random_policy_bounded;
        Alcotest.test_case "random demote" `Quick test_random_demote_is_victim;
        Alcotest.test_case "srrip reuse" `Quick test_srrip_promotes_on_reuse;
        Alcotest.test_case "srrip victim progress" `Quick test_srrip_victim_progress;
        Alcotest.test_case "drrip behaves" `Quick test_drrip_behaves;
        Alcotest.test_case "ghrp survives" `Quick test_ghrp_tracks_and_survives;
        Alcotest.test_case "hawkeye friendly" `Quick test_hawkeye_mostly_friendly;
        Alcotest.test_case "storage accounting" `Quick test_policy_storage_accounting;
        qcheck prop_lru_retention;
      ] );
  ]
