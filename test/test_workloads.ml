(* Tests for ripple.workloads: CFG generation and the trace executor. *)

module Basic_block = Ripple_isa.Basic_block
module Program = Ripple_isa.Program
module Pt = Ripple_trace.Pt
module Bb_trace = Ripple_trace.Bb_trace
module W = Ripple_workloads

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

let small_model =
  {
    W.Apps.kafka with
    W.App_model.name = "test-app";
    seed = 123;
    n_functions = 120;
    hot_functions = 20;
    handler_blocks = 40;
  }

let test_generate_deterministic () =
  let a = W.Cfg_gen.generate small_model in
  let b = W.Cfg_gen.generate small_model in
  checki "same block count" (Program.n_blocks a.W.Cfg_gen.program)
    (Program.n_blocks b.W.Cfg_gen.program);
  checki "same bytes" (Program.static_bytes a.W.Cfg_gen.program)
    (Program.static_bytes b.W.Cfg_gen.program);
  check (Alcotest.array Alcotest.int) "same handlers" a.W.Cfg_gen.handlers b.W.Cfg_gen.handlers

let test_generate_seed_changes_program () =
  let a = W.Cfg_gen.generate small_model in
  let b = W.Cfg_gen.generate { small_model with W.App_model.seed = 124 } in
  checkb "different programs" true
    (Program.static_bytes a.W.Cfg_gen.program <> Program.static_bytes b.W.Cfg_gen.program)

let test_generate_structure () =
  let w = W.Cfg_gen.generate small_model in
  let program = w.W.Cfg_gen.program in
  checki "handler count" 20 (Array.length w.W.Cfg_gen.handlers);
  (* Dispatcher indirect-calls exactly the handlers. *)
  (match (Program.block program w.W.Cfg_gen.dispatcher).Basic_block.term with
  | Basic_block.Indirect_call { callees; return_to } ->
    check (Alcotest.array Alcotest.int) "dispatcher callees" w.W.Cfg_gen.handlers callees;
    checki "dispatcher loops" w.W.Cfg_gen.dispatcher return_to
  | _ -> Alcotest.fail "dispatcher should be an indirect call");
  checki "entry is dispatcher" w.W.Cfg_gen.dispatcher (Program.entry program)

let test_generate_behaviour_tables () =
  let w = W.Cfg_gen.generate small_model in
  let program = w.W.Cfg_gen.program in
  Program.iter
    (fun b ->
      match b.Basic_block.term with
      | Basic_block.Cond _ ->
        let p = w.W.Cfg_gen.bias.(b.Basic_block.id) in
        checkb "cond has bias in (0,1)" true (p > 0.0 && p < 1.0)
      | Basic_block.Indirect targets ->
        let ws = w.W.Cfg_gen.weights.(b.Basic_block.id) in
        checki "weights align with targets" (Array.length targets) (Array.length ws)
      | _ -> ())
    program

let test_generate_kernel_and_jit () =
  let w = W.Cfg_gen.generate { small_model with W.App_model.jit_fraction = 0.5 } in
  let kernel = ref 0 and jit = ref 0 and total = ref 0 in
  Program.iter
    (fun b ->
      incr total;
      if b.Basic_block.privilege = Basic_block.Kernel then incr kernel;
      if b.Basic_block.jit then incr jit)
    w.W.Cfg_gen.program;
  checkb "kernel blocks exist" true (!kernel > 0);
  checkb "jit blocks exist" true (!jit > 0);
  checkb "kernel is minority" true (!kernel * 2 < !total)

let test_executor_deterministic () =
  let w = W.Cfg_gen.generate small_model in
  let a = W.Executor.run w ~input:W.Executor.train ~n_instrs:50_000 in
  let b = W.Executor.run w ~input:W.Executor.train ~n_instrs:50_000 in
  check (Alcotest.array Alcotest.int) "same trace" a b

(* run_stream is run with the trace written through a backing instead of
   a doubling array — entry for entry the same, under both backings. *)
let test_executor_run_stream_equals_run () =
  let module Int_stream = Ripple_util.Int_stream in
  let w = W.Cfg_gen.generate small_model in
  let arr = W.Executor.run w ~input:W.Executor.train ~n_instrs:50_000 in
  List.iter
    (fun backing ->
      let s = W.Executor.run_stream ~backing w ~input:W.Executor.train ~n_instrs:50_000 in
      check (Alcotest.array Alcotest.int)
        (Int_stream.backing_name backing ^ " stream equals array")
        arr (Int_stream.to_array s);
      Int_stream.close s)
    [ Int_stream.Heap; Int_stream.spill () ];
  checki "no spill files leaked" 0 (List.length (Int_stream.Spill.live ()))

let test_executor_inputs_differ () =
  let w = W.Cfg_gen.generate small_model in
  let a = W.Executor.run w ~input:W.Executor.eval_inputs.(0) ~n_instrs:50_000 in
  let b = W.Executor.run w ~input:W.Executor.eval_inputs.(1) ~n_instrs:50_000 in
  checkb "different traces" true (a <> b)

let test_executor_reaches_target () =
  let w = W.Cfg_gen.generate small_model in
  let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:50_000 in
  let instrs = Bb_trace.n_instrs w.W.Cfg_gen.program trace in
  checkb "at least target" true (instrs >= 50_000);
  checkb "not wildly over" true (instrs < 60_000)

let test_executor_trace_is_pt_encodable () =
  (* The executor must only follow legal CFG edges — PT encoding would
     reject anything else. *)
  let w = W.Cfg_gen.generate small_model in
  let trace = W.Executor.run w ~input:W.Executor.eval_inputs.(2) ~n_instrs:80_000 in
  let decoded = Pt.decode w.W.Cfg_gen.program (Pt.encode w.W.Cfg_gen.program trace) in
  check (Alcotest.array Alcotest.int) "roundtrip" trace decoded

let test_executor_covers_handlers () =
  let w = W.Cfg_gen.generate small_model in
  let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:200_000 in
  let counts = Bb_trace.exec_counts w.W.Cfg_gen.program trace in
  let touched =
    Array.fold_left
      (fun acc entry -> if counts.(entry) > 0 then acc + 1 else acc)
      0 w.W.Cfg_gen.handlers
  in
  checkb "several handlers exercised" true (touched > 5);
  checkb "dispatcher is hot" true (counts.(w.W.Cfg_gen.dispatcher) > 10)

let test_sequential_dispatch_round_robin () =
  let model = { small_model with W.App_model.sequential_dispatch = true } in
  let w = W.Cfg_gen.generate model in
  let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:400_000 in
  (* Count dispatcher->handler transitions (entry blocks can also repeat
     inside a request through loops, so exec counts would over-count). *)
  let dispatched = Hashtbl.create 32 in
  Array.iteri
    (fun i id ->
      if id = w.W.Cfg_gen.dispatcher && i + 1 < Array.length trace then begin
        let h = trace.(i + 1) in
        Hashtbl.replace dispatched h (1 + Option.value ~default:0 (Hashtbl.find_opt dispatched h))
      end)
    trace;
  let counts = Array.map (fun h -> Option.value ~default:0 (Hashtbl.find_opt dispatched h)) w.W.Cfg_gen.handlers in
  let mn = Array.fold_left min max_int counts in
  let mx = Array.fold_left max 0 counts in
  checkb "round robin is balanced" true (mx - mn <= 2)

let test_apps_all_distinct () =
  let names = List.map (fun m -> m.W.App_model.name) W.Apps.all in
  checki "nine apps" 9 (List.length names);
  checki "unique names" 9 (List.length (List.sort_uniq compare names));
  let seeds = List.map (fun m -> m.W.App_model.seed) W.Apps.all in
  checki "unique seeds" 9 (List.length (List.sort_uniq compare seeds))

let test_apps_by_name () =
  (match W.Apps.by_name "verilator" with
  | Some m -> checkb "sequential" true m.W.App_model.sequential_dispatch
  | None -> Alcotest.fail "verilator missing");
  checkb "unknown app" true (W.Apps.by_name "nope" = None)

let test_apps_jit_only_hhvm () =
  List.iter
    (fun m ->
      let is_hhvm =
        List.mem m.W.App_model.name [ "drupal"; "mediawiki"; "wordpress" ]
      in
      checkb (m.W.App_model.name ^ " jit flag") is_hhvm (m.W.App_model.jit_fraction > 0.0))
    W.Apps.all

let test_apps_footprints_multimegabyte () =
  List.iter
    (fun m ->
      let w = W.Cfg_gen.generate m in
      let kb = Program.static_bytes w.W.Cfg_gen.program / 1024 in
      checkb (Printf.sprintf "%s footprint %dKB >> 32KB" m.W.App_model.name kb) true (kb > 320))
    [ W.Apps.cassandra; W.Apps.wordpress ]

let suites =
  [
    ( "workloads.cfg_gen",
      [
        Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
        Alcotest.test_case "seed changes program" `Quick test_generate_seed_changes_program;
        Alcotest.test_case "structure" `Quick test_generate_structure;
        Alcotest.test_case "behaviour tables" `Quick test_generate_behaviour_tables;
        Alcotest.test_case "kernel and jit" `Quick test_generate_kernel_and_jit;
      ] );
    ( "workloads.executor",
      [
        Alcotest.test_case "deterministic" `Quick test_executor_deterministic;
        Alcotest.test_case "run_stream equals run" `Quick test_executor_run_stream_equals_run;
        Alcotest.test_case "inputs differ" `Quick test_executor_inputs_differ;
        Alcotest.test_case "reaches target" `Quick test_executor_reaches_target;
        Alcotest.test_case "pt encodable" `Quick test_executor_trace_is_pt_encodable;
        Alcotest.test_case "covers handlers" `Quick test_executor_covers_handlers;
        Alcotest.test_case "round robin" `Quick test_sequential_dispatch_round_robin;
      ] );
    ( "workloads.apps",
      [
        Alcotest.test_case "all distinct" `Quick test_apps_all_distinct;
        Alcotest.test_case "by name" `Quick test_apps_by_name;
        Alcotest.test_case "jit only hhvm" `Quick test_apps_jit_only_hhvm;
        Alcotest.test_case "footprints" `Quick test_apps_footprints_multimegabyte;
      ] );
  ]
