(* Tests for the offline oracles: Belady's MIN and Demand-MIN.

   The crucial properties: MIN never misses more than any online policy
   (checked against LRU on random streams), and the recorded evictions
   form valid eviction windows (the victim is untouched strictly inside
   its window). *)

module Geometry = Ripple_cache.Geometry
module Cache = Ripple_cache.Cache
module Access = Ripple_cache.Access
module Belady = Ripple_cache.Belady
module Access_stream = Ripple_cache.Access_stream
module Lru = Ripple_cache.Lru

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

let tiny = Geometry.v ~size_bytes:(2 * 2 * 64) ~ways:2
let one_set = Geometry.v ~size_bytes:(1 * 2 * 64) ~ways:2
let demand line = Access.demand ~line ~block:line
let prefetch line = Access.prefetch ~line ~block:line
let demands lines = Array.of_list (List.map demand lines)
let stream_of = Access_stream.of_array

let lru_misses geometry stream =
  let c = Cache.create ~geometry ~policy:Lru.make () in
  Array.iter (fun acc -> ignore (Cache.access c acc)) stream;
  (Cache.stats c).Ripple_cache.Stats.demand_misses

let test_min_classic () =
  (* 2-way single set; the classic case where LRU loses: cyclic over
     three lines.  MIN keeps one line pinned. *)
  let stream = demands [ 0; 1; 2; 0; 1; 2; 0; 1; 2 ] in
  let lru = lru_misses one_set stream in
  let min = (Belady.simulate one_set ~mode:Belady.Min (stream_of stream)).Belady.demand_misses in
  checki "lru thrashes" 9 lru;
  (* MIN: misses 0,1,2 cold; then keeps e.g. 0 resident: 0 hits. *)
  checkb "min beats lru" true (min < lru);
  (* Cyclic over N=3 lines with C=2 ways: OPT hits (C-1)/(N-1) = 1/2 of
     the steady-state accesses — 3 cold + 3 steady misses. *)
  checki "min optimal" 6 min

let test_min_hits_within_capacity () =
  let stream = demands [ 0; 2; 0; 2; 0; 2 ] in
  let result = Belady.simulate tiny ~mode:Belady.Min (stream_of stream) in
  checki "only cold misses" 2 result.Belady.demand_misses;
  checki "cold" 2 result.Belady.demand_misses_cold;
  checki "no evictions" 0 (Array.length result.Belady.evictions)

let test_min_eviction_record () =
  (* Single set, 2 ways: 0,2 fill; 4 arrives; next uses: 0 soon, 2 never
     -> evict 2. *)
  let stream = demands [ 0; 2; 4; 0 ] in
  let result = Belady.simulate one_set ~mode:Belady.Min (stream_of stream) in
  checki "one eviction" 1 (Array.length result.Belady.evictions);
  let e = result.Belady.evictions.(0) in
  checki "victim" 2 e.Belady.line;
  checki "triggered at" 2 e.Belady.at;
  checki "last use" 1 e.Belady.last_use;
  checkb "never used again" true (e.Belady.next = Belady.Never)

let test_min_next_demand_marker () =
  let stream = demands [ 0; 2; 0; 4; 2 ] in
  (* At fill of 4: next(0) = infinity (0 used at idx 2, no later use);
     next(2) = idx 4 -> evict 0. *)
  let result = Belady.simulate one_set ~mode:Belady.Min (stream_of stream) in
  let e = result.Belady.evictions.(0) in
  checki "victim 0" 0 e.Belady.line;
  checkb "victim never reused" true (e.Belady.next = Belady.Never);
  checki "total misses" 3 result.Belady.demand_misses

let test_demand_min_prefers_prefetched () =
  (* Lines 0 and 2 resident; 0 will be demanded, 2 will be prefetched
     before its demand: Demand-MIN evicts 2 (free re-fetch), MIN would
     evict based on raw distance and keep 2 (its prefetch comes first). *)
  let stream =
    [| demand 0; demand 2; demand 4; demand 0; prefetch 2; demand 2 |]
  in
  let dm = Belady.simulate one_set ~mode:Belady.Demand_min (stream_of stream) in
  let e = dm.Belady.evictions.(0) in
  checki "demand-min evicts the prefetch-covered line" 2 e.Belady.line;
  checkb "marked prefetch-covered" true (e.Belady.next = Belady.Next_prefetch);
  (* The evicted line's later demand still hits because the prefetch
     restored it: only cold misses plus the fill of 4. *)
  checki "demand misses" 3 dm.Belady.demand_misses

let test_demand_min_fallback_demand () =
  (* No prefetches at all: Demand-MIN degenerates to MIN. *)
  let stream = demands [ 0; 1; 2; 0; 1; 2; 0; 1; 2 ] in
  let min = (Belady.simulate one_set ~mode:Belady.Min (stream_of stream)).Belady.demand_misses in
  let dm = (Belady.simulate one_set ~mode:Belady.Demand_min (stream_of stream)).Belady.demand_misses in
  checki "equal without prefetches" min dm

let test_count_from () =
  let stream = demands [ 0; 2; 0; 2; 0; 2 ] in
  let result = Belady.simulate ~count_from:2 one_set ~mode:Belady.Min (stream_of stream) in
  checki "accesses counted from 2" 4 result.Belady.demand_accesses;
  checki "no misses in counted region" 0 result.Belady.demand_misses

let test_on_fill_callback () =
  (* MIN evicts line 2 (never reused) at the fill of 4, so the final
     access to 0 hits: exactly three fills. *)
  let stream = demands [ 0; 2; 4; 0 ] in
  let fills = ref [] in
  let on_fill ~index (acc : Access.packed) = fills := (index, Access.packed_line acc) :: !fills in
  ignore (Belady.simulate ~on_fill one_set ~mode:Belady.Min (stream_of stream));
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "fills in order"
    [ (0, 0); (1, 2); (2, 4) ]
    (List.rev !fills)

let test_windows_are_valid () =
  (* On a pseudo-random stream, every eviction window must satisfy:
     last_use < at, victim accessed at last_use, and victim untouched
     strictly inside (last_use, at). *)
  let rng = Ripple_util.Prng.create ~seed:99 in
  let stream =
    Array.init 3_000 (fun _ -> demand (Ripple_util.Prng.int rng 40))
  in
  let result = Belady.simulate tiny ~mode:Belady.Min (stream_of stream) in
  checkb "has evictions" true (Array.length result.Belady.evictions > 0);
  Array.iter
    (fun (e : Belady.eviction) ->
      checkb "last_use < at" true (e.Belady.last_use < e.Belady.at);
      checki "victim at last_use" e.Belady.line stream.(e.Belady.last_use).Access.line;
      for i = e.Belady.last_use + 1 to e.Belady.at - 1 do
        checkb "victim untouched inside window" false (stream.(i).Access.line = e.Belady.line)
      done)
    result.Belady.evictions

let prop_min_optimal_vs_lru =
  QCheck.Test.make ~count:150 ~name:"MIN never misses more than LRU"
    QCheck.(list_of_size (QCheck.Gen.int_range 10 400) (int_range 0 30))
    (fun lines ->
      let stream = demands lines in
      let lru = lru_misses tiny stream in
      let min = (Belady.simulate tiny ~mode:Belady.Min (stream_of stream)).Belady.demand_misses in
      min <= lru)

let prop_min_misses_lower_bound =
  QCheck.Test.make ~count:150 ~name:"MIN misses at least the cold misses"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) (int_range 0 50))
    (fun lines ->
      let stream = demands lines in
      let r = Belady.simulate tiny ~mode:Belady.Min (stream_of stream) in
      r.Belady.demand_misses >= r.Belady.demand_misses_cold
      && r.Belady.demand_misses <= Array.length stream)

let prop_demand_min_not_worse_with_prefetches =
  (* Demand misses under Demand-MIN with a prefetch-annotated stream
     never exceed plain MIN on the same stream. *)
  QCheck.Test.make ~count:100 ~name:"Demand-MIN demand misses <= MIN's"
    QCheck.(list_of_size (QCheck.Gen.int_range 10 300) (pair bool (int_range 0 30)))
    (fun ops ->
      let stream =
        Array.of_list
          (List.map (fun (is_pf, line) -> if is_pf then prefetch line else demand line) ops)
      in
      let dm = (Belady.simulate tiny ~mode:Belady.Demand_min (stream_of stream)).Belady.demand_misses in
      let mn = (Belady.simulate tiny ~mode:Belady.Min (stream_of stream)).Belady.demand_misses in
      dm <= mn)

let qcheck = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "belady",
      [
        Alcotest.test_case "classic MIN case" `Quick test_min_classic;
        Alcotest.test_case "hits within capacity" `Quick test_min_hits_within_capacity;
        Alcotest.test_case "eviction record" `Quick test_min_eviction_record;
        Alcotest.test_case "next-demand marker" `Quick test_min_next_demand_marker;
        Alcotest.test_case "demand-min prefers prefetched" `Quick test_demand_min_prefers_prefetched;
        Alcotest.test_case "demand-min fallback" `Quick test_demand_min_fallback_demand;
        Alcotest.test_case "count_from" `Quick test_count_from;
        Alcotest.test_case "on_fill callback" `Quick test_on_fill_callback;
        Alcotest.test_case "windows valid" `Quick test_windows_are_valid;
        qcheck prop_min_optimal_vs_lru;
        qcheck prop_min_misses_lower_bound;
        qcheck prop_demand_min_not_worse_with_prefetches;
      ] );
  ]
