(* The robustness layer: recovering PT decode, fault injectors, the
   degradation ladder, and a slice of the chaos harness. *)

module Addr = Ripple_isa.Addr
module Basic_block = Ripple_isa.Basic_block
module Builder = Ripple_isa.Builder
module Program = Ripple_isa.Program
module Pt = Ripple_trace.Pt
module Bb_trace = Ripple_trace.Bb_trace
module W = Ripple_workloads
module Core = Ripple_core
module Fault = Ripple_fault.Fault
module Chaos = Ripple_fault.Chaos

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checkf = check (Alcotest.float 1e-9)

(* A real workload program and a legal training trace: big enough that
   every fault class has material to chew on. *)
let workload_fixture =
  lazy
    (let w = W.Cfg_gen.generate { W.Apps.kafka with W.App_model.seed = 5 } in
     let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:40_000 in
     (w.W.Cfg_gen.program, trace))

(* --------------------- recovering decoder ---------------------------- *)

let test_decode_result_clean () =
  let program, trace = Lazy.force workload_fixture in
  let r = Pt.decode_result program (Pt.encode program trace) in
  check (Alcotest.array Alcotest.int) "clean stream decodes exactly" trace r.Pt.trace;
  checkf "salvage 1.0" 1.0 r.Pt.salvage;
  checki "no errors" 0 (List.length r.Pt.errors);
  checki "no resyncs" 0 r.Pt.resyncs

let test_decode_result_empty_stream () =
  let program, _ = Lazy.force workload_fixture in
  let r = Pt.decode_result program Bytes.empty in
  checki "nothing decoded" 0 (Array.length r.Pt.trace);
  checkb "reports an error" true (r.Pt.errors <> []);
  checkf "zero salvage" 0.0 r.Pt.salvage

(* Every corrupted fixture must decode without raising, stay within the
   program's block-id range, and never claim more than it salvaged. *)
let corrupted_fixtures () =
  let program, trace = Lazy.force workload_fixture in
  let clean = Pt.encode program trace in
  ( program,
    trace,
    List.map
      (fun fault -> (Fault.to_string fault, Fault.corrupt_pt ~seed:77 fault clean))
      [
        Fault.Flip_tnt { flips = 32 };
        Fault.Drop_tip { count = 8 };
        Fault.Garbage_tip { count = 8 };
        Fault.Truncate_pt { keep = 0.3 };
        Fault.Flip_tnt { flips = 256 };
        Fault.Truncate_pt { keep = 0.05 };
      ] )

let test_decode_result_corrupted_fixtures () =
  let program, trace, fixtures = corrupted_fixtures () in
  let n_blocks = Program.n_blocks program in
  List.iter
    (fun (label, data) ->
      let r = Pt.decode_result program data in
      checki (label ^ " expected count") (Array.length trace) r.Pt.expected;
      checkb (label ^ " salvage in [0,1]") true (r.Pt.salvage >= 0.0 && r.Pt.salvage <= 1.0);
      checkb
        (label ^ " salvage consistent")
        true
        (abs_float
           (r.Pt.salvage
           -. (float_of_int (Array.length r.Pt.trace) /. float_of_int r.Pt.expected))
        < 1e-9);
      Array.iter
        (fun id -> checkb (label ^ " block ids in range") true (id >= 0 && id < n_blocks))
        r.Pt.trace)
    fixtures

(* The strict decoder is a thin wrapper: clean streams round-trip,
   corrupt streams raise with the first recorded error. *)
let test_strict_decode_raises () =
  let program, trace, fixtures = corrupted_fixtures () in
  ignore trace;
  List.iter
    (fun (label, data) ->
      let r = Pt.decode_result program data in
      if r.Pt.errors <> [] then
        match Pt.decode program data with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail (label ^ ": strict decode should raise")
      else
        check (Alcotest.array Alcotest.int)
          (label ^ ": strict agrees with recovery")
          r.Pt.trace (Pt.decode program data))
    fixtures

(* Salvage is monotonically non-increasing under byte-prefix truncation:
   cutting more of the stream can never recover more of the trace. *)
let test_salvage_monotone_under_truncation () =
  let program, trace = Lazy.force workload_fixture in
  let clean = Pt.encode program trace in
  let n = Bytes.length clean in
  let prev = ref (-.1.0) in
  (* Walk keep = 0.0 .. 1.0; salvage at each step must be >= the last. *)
  for step = 0 to 20 do
    let keep = float_of_int step /. 20.0 in
    let cut = Bytes.sub clean 0 (int_of_float (keep *. float_of_int n)) in
    let r = Pt.decode_result program cut in
    checkb
      (Printf.sprintf "salvage non-decreasing in kept bytes (keep=%.2f)" keep)
      true (r.Pt.salvage >= !prev);
    prev := r.Pt.salvage
  done;
  checkf "full stream salvages everything" 1.0 !prev

(* Totality: the recovering decoder accepts arbitrary garbage. *)
let prop_decode_result_total =
  let program, _ = Lazy.force workload_fixture in
  QCheck.Test.make ~count:500 ~name:"decode_result total on arbitrary bytes"
    QCheck.(
      make ~print:Print.string
        Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 256)))
    (fun s ->
      let r = Pt.decode_result program (Bytes.of_string s) in
      r.Pt.salvage >= 0.0 && r.Pt.salvage <= 1.0)

(* Totality under structured corruption of real streams: flip random
   bytes of a valid encoding and decode. *)
let prop_decode_result_total_byte_flips =
  let program, trace = Lazy.force workload_fixture in
  let clean = Pt.encode program trace in
  QCheck.Test.make ~count:300 ~name:"decode_result total under random byte flips"
    QCheck.(make ~print:Print.(list (pair int int)) Gen.(list_size (int_range 1 16) (pair nat nat)))
    (fun flips ->
      let data = Bytes.copy clean in
      List.iter
        (fun (pos, bit) ->
          let pos = pos mod Bytes.length data in
          Bytes.set data pos
            (Char.chr (Char.code (Bytes.get data pos) lxor (1 lsl (bit mod 8)))))
        flips;
      let r = Pt.decode_result program data in
      r.Pt.salvage >= 0.0 && r.Pt.salvage <= 1.0)

(* ------------------------- fault injectors --------------------------- *)

let test_corrupt_pt_deterministic () =
  let program, trace = Lazy.force workload_fixture in
  let clean = Pt.encode program trace in
  List.iter
    (fun fault ->
      let a = Fault.corrupt_pt ~seed:9 fault clean
      and b = Fault.corrupt_pt ~seed:9 fault clean in
      checkb (Fault.to_string fault ^ " deterministic in seed") true (Bytes.equal a b))
    Fault.matrix;
  (* And the stream-level faults actually change the bytes. *)
  List.iter
    (fun fault ->
      let a = Fault.corrupt_pt ~seed:9 fault clean in
      checkb (Fault.to_string fault ^ " changes the stream") false (Bytes.equal a clean))
    [
      Fault.Flip_tnt { flips = 32 };
      Fault.Drop_tip { count = 8 };
      Fault.Garbage_tip { count = 8 };
      Fault.Truncate_pt { keep = 0.3 };
    ]

let test_truncate_trace_prefix () =
  let _, trace = Lazy.force workload_fixture in
  let t = Fault.apply_trace ~seed:1 (Fault.Truncate_trace { keep = 0.25 }) trace in
  checki "quarter kept" (int_of_float (0.25 *. float_of_int (Array.length trace)))
    (Array.length t);
  check (Alcotest.array Alcotest.int) "is a prefix" (Array.sub trace 0 (Array.length t)) t

let test_reshuffle_preserves_counts () =
  let program, trace = Lazy.force workload_fixture in
  let t = Fault.apply_trace ~seed:3 (Fault.Edge_reshuffle { fraction = 0.5 }) trace in
  checki "length preserved" (Array.length trace) (Array.length t);
  check
    (Alcotest.array Alcotest.int)
    "execution counts preserved"
    (Bb_trace.exec_counts program trace)
    (Bb_trace.exec_counts program t);
  checkb "transitions scrambled" true (Bb_trace.drift program t > 0.0)

(* ------------------- fingerprint, relocation, drift ------------------ *)

let test_fingerprint_and_relocate () =
  let program, trace = Lazy.force workload_fixture in
  checki "fingerprint stable" (Program.layout_fingerprint program)
    (Program.layout_fingerprint program);
  let shifted = Program.relocate program ~line_shift:3 in
  checkb "relocation changes the fingerprint" true
    (Program.layout_fingerprint shifted <> Program.layout_fingerprint program);
  checki "relocation shifts block addresses"
    ((Program.block program 0).Basic_block.addr + (3 * Addr.line_size))
    (Program.block shifted 0).Basic_block.addr;
  checki "block count unchanged" (Program.n_blocks program) (Program.n_blocks shifted);
  (* Hints don't participate: an instrumented binary fingerprints the
     same as the source it was built from. *)
  let hints = Array.make (Program.n_blocks program) [] in
  hints.(trace.(0)) <- [ Basic_block.Invalidate 1 ];
  let instrumented, _ = Program.with_hints program ~hints in
  checki "hints excluded from fingerprint" (Program.layout_fingerprint program)
    (Program.layout_fingerprint instrumented)

let test_drift_zero_on_legal_trace () =
  let program, trace = Lazy.force workload_fixture in
  checkf "legal trace has zero drift" 0.0 (Bb_trace.drift program trace);
  checkf "tiny trace has zero drift" 0.0 (Bb_trace.drift program [| trace.(0) |])

(* ----------------------- degradation ladder -------------------------- *)

let ladder_opts =
  { Core.Pipeline.Options.default with Core.Pipeline.Options.degrade = true }

let instrument ?(options = ladder_opts) profile =
  let program, _ = Lazy.force workload_fixture in
  let oc =
    Core.Pipeline.run
      { options with Core.Pipeline.Options.prefetch = Core.Pipeline.No_prefetch }
      ~source:program (Core.Pipeline.Profile profile)
  in
  (oc.Core.Pipeline.program, oc.Core.Pipeline.analysis)

let level (analysis : Core.Pipeline.analysis) =
  analysis.Core.Pipeline.degrade.Core.Pipeline.Degrade.level

let test_ladder_full_on_clean_profile () =
  let program, trace = Lazy.force workload_fixture in
  let profile = Core.Pipeline.profile_of ~source:program (Core.Pipeline.Trace trace) in
  let _, analysis = instrument profile in
  checkb "clean profile keeps full hints" true (level analysis = Core.Pipeline.Degrade.Full);
  checkb "fingerprint matches" true
    analysis.Core.Pipeline.degrade.Core.Pipeline.Degrade.fingerprint_ok

let test_ladder_safe_only_on_layout_shift () =
  let program, trace = Lazy.force workload_fixture in
  let shifted = Program.relocate program ~line_shift:3 in
  let profile = Core.Pipeline.profile_of ~source:shifted (Core.Pipeline.Trace trace) in
  let _, analysis = instrument profile in
  checkb "fingerprint mismatch detected" false
    analysis.Core.Pipeline.degrade.Core.Pipeline.Degrade.fingerprint_ok;
  checkb "steps down to safe-only" true (level analysis = Core.Pipeline.Degrade.Safe_only)

let test_ladder_off_on_low_salvage () =
  let program, trace = Lazy.force workload_fixture in
  let truncated = Fault.apply_trace ~seed:1 (Fault.Truncate_trace { keep = 0.3 }) trace in
  let profile =
    { Core.Pipeline.trace = truncated; source = program; salvage = 0.3; pt_errors = 0 }
  in
  let instrumented, analysis = instrument profile in
  checkb "low salvage turns hints off" true
    (level analysis = Core.Pipeline.Degrade.Hints_off);
  checki "nothing injected" 0
    analysis.Core.Pipeline.injection.Ripple_core.Injector.injected;
  (* The shipped binary is the original, untouched. *)
  checki "binary untouched" (Program.layout_fingerprint program)
    (Program.layout_fingerprint instrumented);
  checki "no hint instructions" 0 (Bb_trace.n_hint_instrs instrumented trace)

let test_ladder_off_on_heavy_drift () =
  let program, trace = Lazy.force workload_fixture in
  (* Scramble hard enough that drift clears the 0.15 shut-off. *)
  let scrambled = Fault.apply_trace ~seed:3 (Fault.Edge_reshuffle { fraction = 1.5 }) trace in
  let profile = Core.Pipeline.profile_of ~source:program (Core.Pipeline.Trace scrambled) in
  let _, analysis = instrument profile in
  let d = analysis.Core.Pipeline.degrade in
  checkb "drift measured" true (d.Core.Pipeline.Degrade.drift > 0.0);
  checkb "heavy drift degrades" true (level analysis <> Core.Pipeline.Degrade.Full)

let test_ladder_disabled_by_default () =
  let program, trace = Lazy.force workload_fixture in
  let truncated = Fault.apply_trace ~seed:1 (Fault.Truncate_trace { keep = 0.3 }) trace in
  let profile =
    { Core.Pipeline.trace = truncated; source = program; salvage = 0.3; pt_errors = 0 }
  in
  let _, analysis = instrument ~options:Core.Pipeline.Options.default profile in
  checkb "ladder off by default keeps full trust" true
    (level analysis = Core.Pipeline.Degrade.Full)

(* ---------------------------- chaos slice ---------------------------- *)

(* One app through a representative fault column: nothing crashes,
   every cell carries a degradation record, contracts hold. *)
let test_chaos_single_app () =
  let faults =
    [
      Fault.Clean;
      Fault.Garbage_tip { count = 8 };
      Fault.Truncate_trace { keep = 0.3 };
      Fault.Layout_shift { lines = 3 };
    ]
  in
  let report =
    Chaos.run ~apps:[ "kafka" ] ~faults ~n_instrs:30_000
      ~prefetch:Core.Pipeline.No_prefetch ~jobs:1 ()
  in
  checki "one cell per fault" (List.length faults) (List.length report.Chaos.cells);
  checki "nothing crashed" 0 report.Chaos.crashed;
  checki "no contract violations" 0 report.Chaos.violations;
  checki "clean exit code" 0 (Chaos.exit_code report);
  List.iter
    (fun (c : Chaos.cell) ->
      match c.Chaos.status with
      | Chaos.Crashed e -> Alcotest.fail e
      | Chaos.Ran o ->
        let d = o.Chaos.degrade in
        checkb "salvage recorded" true
          (d.Core.Pipeline.Degrade.salvage >= 0.0 && d.Core.Pipeline.Degrade.salvage <= 1.0))
    report.Chaos.cells;
  (* The report JSON round-trips through the parser. *)
  let json = Chaos.report_to_json report in
  match Ripple_util.Json.parse (Ripple_util.Json.to_string json) with
  | Ok parsed ->
    checkb "report JSON round-trips" true (Ripple_util.Json.equal json parsed)
  | Error e -> Alcotest.fail e

let qcheck = QCheck_alcotest.to_alcotest

let suites =
  [
    ( "fault.decode",
      [
        Alcotest.test_case "clean stream" `Quick test_decode_result_clean;
        Alcotest.test_case "empty stream" `Quick test_decode_result_empty_stream;
        Alcotest.test_case "corrupted fixtures" `Quick test_decode_result_corrupted_fixtures;
        Alcotest.test_case "strict wrapper raises" `Quick test_strict_decode_raises;
        Alcotest.test_case "salvage monotone under truncation" `Quick
          test_salvage_monotone_under_truncation;
        qcheck prop_decode_result_total;
        qcheck prop_decode_result_total_byte_flips;
      ] );
    ( "fault.inject",
      [
        Alcotest.test_case "corrupt_pt deterministic" `Quick test_corrupt_pt_deterministic;
        Alcotest.test_case "truncate_trace prefix" `Quick test_truncate_trace_prefix;
        Alcotest.test_case "reshuffle preserves counts" `Quick test_reshuffle_preserves_counts;
        Alcotest.test_case "fingerprint and relocate" `Quick test_fingerprint_and_relocate;
        Alcotest.test_case "drift zero on legal traces" `Quick test_drift_zero_on_legal_trace;
      ] );
    ( "fault.ladder",
      [
        Alcotest.test_case "full on clean profile" `Quick test_ladder_full_on_clean_profile;
        Alcotest.test_case "safe-only on layout shift" `Quick
          test_ladder_safe_only_on_layout_shift;
        Alcotest.test_case "off on low salvage" `Quick test_ladder_off_on_low_salvage;
        Alcotest.test_case "off on heavy drift" `Quick test_ladder_off_on_heavy_drift;
        Alcotest.test_case "ladder opt-in" `Quick test_ladder_disabled_by_default;
      ] );
    ( "fault.chaos",
      [ Alcotest.test_case "single-app chaos slice" `Slow test_chaos_single_app ] );
  ]
