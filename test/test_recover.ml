(* The crash-recovery acceptance test, end to end with real processes:
   a durable daemon is killed -9 mid-capture, restarted on the same
   state directory, and the resumed push must leave the session
   byte-identical to one that was never interrupted.

   This lives in its own executable because it forks the daemon, and
   OCaml forbids [Unix.fork] in a process that has ever spawned domains
   — which test_main has, via the experiment-pool suites. *)

module W = Ripple_workloads
module Pt = Ripple_trace.Pt
module Core = Ripple_core
module Json = Ripple_util.Json
module Protocol = Ripple_serve.Protocol
module Server = Ripple_serve.Server
module Client = Ripple_serve.Client

let checkb = Alcotest.check Alcotest.bool

let serve_options =
  { Core.Pipeline.Options.default with degrade = true; prefetch = Core.Pipeline.No_prefetch }

let clean_capture =
  lazy
    (let w = W.Cfg_gen.generate { W.Apps.kafka with W.App_model.seed = 5 } in
     let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:40_000 in
     (w.W.Cfg_gen.program, Pt.encode w.W.Cfg_gen.program trace))

(* The ~1.1 KB kafka capture split small enough that "half pushed"
   means a real mid-capture window. *)
let chunks_of ?(chunk = 97) data =
  let len = Bytes.length data in
  let n = (len + chunk - 1) / chunk in
  List.init n (fun i -> Bytes.sub data (i * chunk) (min chunk (len - (i * chunk))))

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "ripple-test-recover-%d-%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let free_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | Unix.ADDR_UNIX _ -> assert false
  in
  Unix.close fd;
  port

let wait_for ?(timeout = 10.0) pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.01;
      go ()
    end
  in
  go ()

let spawn_daemon config =
  match Unix.fork () with
  | 0 ->
    let code =
      try
        Server.serve_forever (Server.create config);
        0
      with _ -> 2
    in
    Unix._exit code
  | pid -> pid

(* Status comparison strips nothing: every field — profile digest,
   ladder level, counters, sequence horizon — must match. *)
let check_status_equal label control live =
  if not (Json.equal control live) then
    Alcotest.failf "%s: control=%s live=%s" label (Json.to_string control) (Json.to_string live)

let test_kill9_recover () =
  let program, data = Lazy.force clean_capture in
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let state = Filename.concat dir "state" in
      let port = free_port () in
      let config ready =
        {
          Server.default_config with
          Server.options = serve_options;
          port;
          state_dir = Some state;
          ready_file = Some (Filename.concat dir ready);
          lookup = (fun _ -> Some program);
        }
      in
      let await ready =
        let path = Filename.concat dir ready in
        if not (wait_for (fun () -> Sys.file_exists path && (Unix.stat path).Unix.st_size > 0))
        then Alcotest.fail "daemon never became ready"
      in
      (* Control: the same frames against an in-process server. *)
      let control =
        let t =
          Server.create
            { (config "unused") with Server.port = 0; state_dir = None; ready_file = None }
        in
        let conn = Server.Conn.create () in
        let ok label = function
          | Protocol.Ok json, _ -> json
          | Protocol.Error msg, _ -> Alcotest.failf "control %s: %s" label msg
        in
        ignore
          (ok "hello" (Server.Conn.handle t conn (Protocol.Hello_v { app = "kafka"; version = 2 })));
        List.iteri
          (fun i c ->
            ignore (ok "chunk" (Server.Conn.handle t conn (Protocol.Chunk_seq { seq = i; data = c }))))
          (chunks_of data);
        ignore
          (ok "flush"
             (Server.Conn.handle t conn (Protocol.Flush_seq { seq = List.length (chunks_of data) })));
        ok "status" (Server.Conn.handle t conn Protocol.Status)
      in
      let daemon_a = spawn_daemon (config "ready-a") in
      await "ready-a";
      let ok label = function
        | Protocol.Ok json -> json
        | Protocol.Error msg -> Alcotest.failf "%s: %s" label msg
      in
      let chunks = chunks_of data in
      let k = List.length chunks / 2 in
      (* Half the capture lands durably... *)
      let c1 = Client.connect ~timeout:10.0 ~host:"127.0.0.1" ~port () in
      ignore (ok "hello a" (Client.request c1 (Protocol.Hello_v { app = "kafka"; version = 2 })));
      List.iteri
        (fun i c ->
          if i < k then
            ignore (ok "chunk a" (Client.request c1 (Protocol.Chunk_seq { seq = i; data = c }))))
        chunks;
      (* ...then the daemon dies the hard way, mid-capture. *)
      Unix.kill daemon_a Sys.sigkill;
      ignore (Unix.waitpid [] daemon_a);
      Client.close c1;
      let daemon_b = spawn_daemon (config "ready-b") in
      await "ready-b";
      (* The resumed push learns the recovered horizon and finishes the
         capture without replaying what survived. *)
      let c2 = Client.connect ~timeout:10.0 ~host:"127.0.0.1" ~port () in
      let hello = ok "hello b" (Client.request c2 (Protocol.Hello_v { app = "kafka"; version = 2 })) in
      checkb "recovery preserved the sequence horizon" true
        (Json.member "next_seq" hello = Some (Json.Int k));
      List.iteri
        (fun i c ->
          if i >= k then
            ignore (ok "chunk b" (Client.request c2 (Protocol.Chunk_seq { seq = i; data = c }))))
        chunks;
      ignore (ok "flush b" (Client.request c2 (Protocol.Flush_seq { seq = List.length chunks })));
      let live = ok "status b" (Client.request c2 Protocol.Status) in
      Client.close c2;
      check_status_equal "kill -9 recovery" control live;
      (* Graceful drain: SIGTERM exits 0 and withdraws the ready file. *)
      Unix.kill daemon_b Sys.sigterm;
      (match Unix.waitpid [] daemon_b with
      | _, Unix.WEXITED 0 -> ()
      | _, _ -> Alcotest.fail "SIGTERM drain must exit 0");
      checkb "ready file removed on drain" false
        (Sys.file_exists (Filename.concat dir "ready-b")))

(* A freshly restored daemon must itself be recoverable: restore must
   never clobber the durable state it just loaded.  One full capture is
   flushed (a closed generation on disk), a second is half pushed, then
   the daemon is killed -9 TWICE — the second strike right after
   recovery, before any new flush.  The third incarnation must still
   hold the generation, the ladder counters and the sequence horizon. *)
let test_double_kill9_recover () =
  let program, data = Lazy.force clean_capture in
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let state = Filename.concat dir "state" in
      let port = free_port () in
      let config ready =
        {
          Server.default_config with
          Server.options = serve_options;
          port;
          state_dir = Some state;
          ready_file = Some (Filename.concat dir ready);
          lookup = (fun _ -> Some program);
        }
      in
      let await ready =
        let path = Filename.concat dir ready in
        if not (wait_for (fun () -> Sys.file_exists path && (Unix.stat path).Unix.st_size > 0))
        then Alcotest.fail "daemon never became ready"
      in
      let chunks = chunks_of data in
      let n = List.length chunks in
      (* Two captures back to back: seqs 0..n-1, flush n, n+1..2n, flush 2n+1. *)
      let control =
        let t =
          Server.create
            { (config "unused") with Server.port = 0; state_dir = None; ready_file = None }
        in
        let conn = Server.Conn.create () in
        let ok label = function
          | Protocol.Ok json, _ -> json
          | Protocol.Error msg, _ -> Alcotest.failf "control %s: %s" label msg
        in
        ignore
          (ok "hello" (Server.Conn.handle t conn (Protocol.Hello_v { app = "kafka"; version = 2 })));
        List.iteri
          (fun i c ->
            ignore (ok "chunk" (Server.Conn.handle t conn (Protocol.Chunk_seq { seq = i; data = c }))))
          chunks;
        ignore (ok "flush" (Server.Conn.handle t conn (Protocol.Flush_seq { seq = n })));
        List.iteri
          (fun i c ->
            ignore
              (ok "chunk" (Server.Conn.handle t conn (Protocol.Chunk_seq { seq = n + 1 + i; data = c }))))
          chunks;
        ignore (ok "flush" (Server.Conn.handle t conn (Protocol.Flush_seq { seq = (2 * n) + 1 })));
        ok "status" (Server.Conn.handle t conn Protocol.Status)
      in
      let ok label = function
        | Protocol.Ok json -> json
        | Protocol.Error msg -> Alcotest.failf "%s: %s" label msg
      in
      let daemon_a = spawn_daemon (config "ready-a") in
      await "ready-a";
      (* Capture one lands and flushes; capture two gets halfway. *)
      let k = n / 2 in
      let c1 = Client.connect ~timeout:10.0 ~host:"127.0.0.1" ~port () in
      ignore (ok "hello a" (Client.request c1 (Protocol.Hello_v { app = "kafka"; version = 2 })));
      List.iteri
        (fun i c -> ignore (ok "chunk a" (Client.request c1 (Protocol.Chunk_seq { seq = i; data = c }))))
        chunks;
      ignore (ok "flush a" (Client.request c1 (Protocol.Flush_seq { seq = n })));
      List.iteri
        (fun i c ->
          if i < k then
            ignore
              (ok "chunk a2" (Client.request c1 (Protocol.Chunk_seq { seq = n + 1 + i; data = c }))))
        chunks;
      Unix.kill daemon_a Sys.sigkill;
      ignore (Unix.waitpid [] daemon_a);
      Client.close c1;
      (* Second incarnation recovers — and dies before any new traffic. *)
      let daemon_b = spawn_daemon (config "ready-b") in
      await "ready-b";
      Unix.kill daemon_b Sys.sigkill;
      ignore (Unix.waitpid [] daemon_b);
      (* Third incarnation must recover the same session. *)
      let daemon_c = spawn_daemon (config "ready-c") in
      await "ready-c";
      let c2 = Client.connect ~timeout:10.0 ~host:"127.0.0.1" ~port () in
      let hello = ok "hello c" (Client.request c2 (Protocol.Hello_v { app = "kafka"; version = 2 })) in
      checkb "double recovery preserved the sequence horizon" true
        (Json.member "next_seq" hello = Some (Json.Int (n + 1 + k)));
      List.iteri
        (fun i c ->
          if i >= k then
            ignore
              (ok "chunk c" (Client.request c2 (Protocol.Chunk_seq { seq = n + 1 + i; data = c }))))
        chunks;
      ignore (ok "flush c" (Client.request c2 (Protocol.Flush_seq { seq = (2 * n) + 1 })));
      let live = ok "status c" (Client.request c2 Protocol.Status) in
      Client.close c2;
      check_status_equal "double kill -9 recovery" control live;
      Unix.kill daemon_c Sys.sigterm;
      match Unix.waitpid [] daemon_c with
      | _, Unix.WEXITED 0 -> ()
      | _, _ -> Alcotest.fail "SIGTERM drain must exit 0")

(* The ugliest horizon failure: the daemon dies mid-push and comes back
   with its state directory WIPED, so its hello reports a next_seq
   below the client's pinned base.  The resumable push must re-pin and
   restart from chunk 0 — not retry a sequence range the server will
   reject as a gap forever — and the final session must match an
   uninterrupted push into a fresh daemon. *)
let test_state_loss_rebase () =
  let program, data = Lazy.force clean_capture in
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let state = Filename.concat dir "state" in
      let port = free_port () in
      let config ready =
        {
          Server.default_config with
          Server.options = serve_options;
          port;
          state_dir = Some state;
          ready_file = Some (Filename.concat dir ready);
          lookup = (fun _ -> Some program);
        }
      in
      let await ready =
        let path = Filename.concat dir ready in
        if not (wait_for (fun () -> Sys.file_exists path && (Unix.stat path).Unix.st_size > 0))
        then Alcotest.fail "daemon never became ready"
      in
      let daemon_a = spawn_daemon (config "ready-a") in
      await "ready-a";
      let status_path = Filename.concat dir "push-status" in
      let pusher =
        match Unix.fork () with
        | 0 ->
          let code =
            match
              Client.push_with_retries ~attempts:20 ~timeout:2.0 ~backoff:0.1 ~seed:7 ~chunk:97
                ~host:"127.0.0.1" ~port ~app:"kafka" data
            with
            | Ok _ ->
              let oc = open_out status_path in
              output_string oc "ok";
              close_out oc;
              0
            | Error _ -> 201
            | exception _ -> 202
          in
          Unix._exit code
        | pid -> pid
      in
      let journal = Filename.concat state "kafka.journal" in
      let pusher_reaped = ref false in
      let pusher_done () =
        !pusher_reaped
        ||
        match Unix.waitpid [ Unix.WNOHANG ] pusher with
        | 0, _ -> false
        | _ ->
          pusher_reaped := true;
          true
        | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
          pusher_reaped := true;
          true
      in
      let caught_midair =
        wait_for ~timeout:15.0 (fun () -> Sys.file_exists journal || pusher_done ())
        && Sys.file_exists journal
      in
      Unix.kill daemon_a Sys.sigkill;
      ignore (Unix.waitpid [] daemon_a);
      (* Distinguish "killed mid-push" from "push completed against A
         just before the kill": in the latter case the pusher exits
         almost immediately and there is nothing to rebase. *)
      Unix.sleepf 0.05;
      let outran = (not caught_midair) || pusher_done () in
      if outran then begin
        (* The push outran the kill: nothing to assert this run. *)
        if not (pusher_done ()) then ignore (Unix.waitpid [] pusher)
      end
      else begin
        (* The durable state vanishes with the daemon: the restarted
           incarnation knows nothing of the pinned base. *)
        rm_rf state;
        let daemon_b = spawn_daemon (config "ready-b") in
        await "ready-b";
        let pusher_code =
          match Unix.waitpid [] pusher with
          | _, Unix.WEXITED c -> c
          | _, _ -> 203
        in
        checkb "push succeeded across the state loss" true
          (pusher_code = 0 && Sys.file_exists status_path);
        (* Control: the full push into a fresh daemon, in-process. *)
        let control =
          let t =
            Server.create
              { (config "unused") with Server.port = 0; state_dir = None; ready_file = None }
          in
          let conn = Server.Conn.create () in
          let ok label = function
            | Protocol.Ok json, _ -> json
            | Protocol.Error msg, _ -> Alcotest.failf "control %s: %s" label msg
          in
          ignore
            (ok "hello"
               (Server.Conn.handle t conn (Protocol.Hello_v { app = "kafka"; version = 2 })));
          let chunks = chunks_of data in
          List.iteri
            (fun i c ->
              ignore
                (ok "chunk" (Server.Conn.handle t conn (Protocol.Chunk_seq { seq = i; data = c }))))
            chunks;
          ignore
            (ok "flush"
               (Server.Conn.handle t conn (Protocol.Flush_seq { seq = List.length chunks })));
          ok "status" (Server.Conn.handle t conn Protocol.Status)
        in
        let ok label = function
          | Protocol.Ok json -> json
          | Protocol.Error msg -> Alcotest.failf "%s: %s" label msg
        in
        let c = Client.connect ~timeout:10.0 ~host:"127.0.0.1" ~port () in
        ignore (ok "hello live" (Client.request c (Protocol.Hello "kafka")));
        let live = ok "status live" (Client.request c Protocol.Status) in
        Client.close c;
        check_status_equal "rebased push after state loss" control live;
        Unix.kill daemon_b Sys.sigterm;
        match Unix.waitpid [] daemon_b with
        | _, Unix.WEXITED 0 -> ()
        | _, _ -> Alcotest.fail "SIGTERM drain must exit 0"
      end)

let () =
  Alcotest.run "ripple-recover"
    [
      ( "recover",
        [
          Alcotest.test_case "kill -9 then recover" `Slow test_kill9_recover;
          Alcotest.test_case "kill -9 twice then recover" `Slow test_double_kill9_recover;
          Alcotest.test_case "state loss mid-push rebases" `Slow test_state_loss_rebase;
        ] );
    ]
