(* Tests for ripple.core: eviction windows, cue-block analysis (the
   Fig. 5 scenario), injection, and the end-to-end pipeline. *)

module Basic_block = Ripple_isa.Basic_block
module Program = Ripple_isa.Program
module Builder = Ripple_isa.Builder
module Access = Ripple_cache.Access
module Belady = Ripple_cache.Belady
module Cache = Ripple_cache
module Simulator = Ripple_cpu.Simulator
module Core = Ripple_core
module Eviction_window = Ripple_core.Eviction_window
module Cue_block = Ripple_core.Cue_block
module Injector = Ripple_core.Injector
module Pipeline = Ripple_core.Pipeline
module W = Ripple_workloads

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checkf = check (Alcotest.float 1e-9)

(* -------------------------- Eviction_window ------------------------- *)

let test_window_of_evictions () =
  let evictions =
    [|
      { Belady.at = 9; line = 100; set = 1; last_use = 4; next = Belady.Next_demand };
      { Belady.at = 20; line = 200; set = 2; last_use = 15; next = Belady.Next_prefetch };
    |]
  in
  let windows = Eviction_window.of_evictions evictions in
  checki "two windows" 2 (Array.length windows);
  checki "victim" 100 windows.(0).Eviction_window.victim;
  checki "start" 4 windows.(0).Eviction_window.start;
  checki "stop" 9 windows.(0).Eviction_window.stop;
  let filtered = Eviction_window.of_evictions ~demand_covered_only:true evictions in
  checki "prefetch-covered filtered" 1 (Array.length filtered);
  checki "survivor" 100 filtered.(0).Eviction_window.victim

let test_window_trace_coords () =
  let windows = [| { Eviction_window.victim = 7; start = 2; stop = 5 } |] in
  let stream_pos = [| 0; 0; 1; 1; 2; 2 |] in
  let mapped = Eviction_window.to_trace_coords windows ~stream_pos in
  checki "start mapped" 1 mapped.(0).Eviction_window.start;
  checki "stop mapped" 2 mapped.(0).Eviction_window.stop

let test_window_count_for () =
  let windows =
    [|
      { Eviction_window.victim = 1; start = 0; stop = 1 };
      { Eviction_window.victim = 1; start = 5; stop = 9 };
      { Eviction_window.victim = 2; start = 2; stop = 3 };
    |]
  in
  checki "two for line 1" 2 (Eviction_window.count_for windows ~line:1);
  checki "zero for line 9" 0 (Eviction_window.count_for windows ~line:9)

let test_window_index_membership () =
  let windows =
    [|
      { Eviction_window.victim = 1; start = 10; stop = 20 };
      { Eviction_window.victim = 1; start = 30; stop = 40 };
      { Eviction_window.victim = 2; start = 15; stop = 16 };
    |]
  in
  let index = Eviction_window.Index.create windows in
  (* Queries must be monotone per line. *)
  checkb "before first window" false (Eviction_window.Index.mem index ~line:1 ~at:5);
  checkb "start is inclusive" true (Eviction_window.Index.mem index ~line:1 ~at:10);
  checkb "inside" true (Eviction_window.Index.mem index ~line:1 ~at:15);
  checkb "stop inclusive" true (Eviction_window.Index.mem index ~line:1 ~at:20);
  checkb "gap" false (Eviction_window.Index.mem index ~line:1 ~at:25);
  checkb "second window" true (Eviction_window.Index.mem index ~line:1 ~at:35);
  checkb "after all" false (Eviction_window.Index.mem index ~line:1 ~at:50);
  checkb "other line" true (Eviction_window.Index.mem index ~line:2 ~at:16);
  checkb "unknown line" false (Eviction_window.Index.mem index ~line:99 ~at:16)

(* ----------------------------- Cue_block ---------------------------- *)

(* A hand-built Fig. 5-style scenario (see the paper's example): victim
   line A is evicted twice; candidate cue blocks B, C, D have execution
   counts 4, 2, 6, and window memberships 2, 2, 2, giving conditional
   probabilities 0.5, 1.0 and 1/3.  C must be selected for both
   windows. *)
let fig5_scenario () =
  let d ~line ~block = Access.demand ~line ~block in
  let stream =
    [|
      d ~line:50 ~block:9 (* 0 *);
      d ~line:100 ~block:5 (* 1: A's last use *);
      d ~line:60 ~block:1 (* 2: B *);
      d ~line:61 ~block:2 (* 3: C *);
      d ~line:62 ~block:3 (* 4: D, eviction trigger *);
      d ~line:60 ~block:1 (* 5: B outside windows *);
      d ~line:62 ~block:3 (* 6 *);
      d ~line:62 ~block:3 (* 7 *);
      d ~line:100 ~block:5 (* 8: A's last use again *);
      d ~line:60 ~block:1 (* 9: B *);
      d ~line:61 ~block:2 (* 10: C *);
      d ~line:62 ~block:3 (* 11: D, eviction trigger *);
      d ~line:60 ~block:1 (* 12 *);
      d ~line:62 ~block:3 (* 13 *);
      d ~line:62 ~block:3 (* 14 *);
    |]
  in
  let windows =
    [|
      { Eviction_window.victim = 100; start = 1; stop = 4 };
      { Eviction_window.victim = 100; start = 8; stop = 11 };
    |]
  in
  let exec_counts = Array.make 10 0 in
  Array.iter (fun (a : Access.t) -> exec_counts.(a.Access.block) <- exec_counts.(a.Access.block) + 1) stream;
  (Ripple_cache.Access_stream.of_array stream, windows, exec_counts)

let test_cue_selects_best_probability () =
  let stream, windows, exec_counts = fig5_scenario () in
  match Cue_block.analyze ~min_support:2 ~stream ~windows ~exec_counts ~threshold:0.6 () with
  | [ d ] ->
    checki "cue is C" 2 d.Cue_block.cue_block;
    checki "victim is A" 100 d.Cue_block.victim;
    checkf "probability 1.0" 1.0 d.Cue_block.probability;
    checki "covers both windows" 2 d.Cue_block.windows
  | ds -> Alcotest.failf "expected exactly one decision, got %d" (List.length ds)

let test_cue_threshold_filters () =
  let stream, windows, exec_counts = fig5_scenario () in
  checki "nothing above probability 1" 0
    (List.length (Cue_block.analyze ~min_support:1 ~stream ~windows ~exec_counts ~threshold:1.01 ()))

let test_cue_min_support_filters () =
  let stream, windows, exec_counts = fig5_scenario () in
  checki "support 3 kills a 2-window pair" 0
    (List.length (Cue_block.analyze ~min_support:3 ~stream ~windows ~exec_counts ~threshold:0.5 ()))

let test_cue_conditional_probability_values () =
  (* Drop the winner C from consideration by raising the threshold to
     exclude C's rivals but catch B at exactly 0.5. *)
  let stream, windows, exec_counts = fig5_scenario () in
  match Cue_block.analyze ~min_support:2 ~stream ~windows ~exec_counts ~threshold:0.5 () with
  | [ d ] -> checkf "C still the per-window best" 1.0 d.Cue_block.probability
  | _ -> Alcotest.fail "one decision expected"

let test_cue_empty_inputs () =
  checki "no windows, no decisions" 0
    (List.length
       (Cue_block.analyze ~stream:Ripple_cache.Access_stream.empty ~windows:[||] ~exec_counts:[| 0 |] ~threshold:0.5 ()))

(* ------------------------------ Injector ---------------------------- *)

let program_for_injection () =
  let b = Builder.create () in
  let blocks = Array.init 4 (fun _ -> Builder.block b ~bytes:32 ~term:Basic_block.Halt ()) in
  Builder.set_term b blocks.(0) (Basic_block.Fallthrough blocks.(1));
  Builder.set_term b blocks.(1) (Basic_block.Fallthrough blocks.(2));
  Builder.set_term b blocks.(2) (Basic_block.Fallthrough blocks.(3));
  (Builder.finish b ~entry:blocks.(0), blocks)

let decision ~cue ~victim ~p = { Cue_block.cue_block = cue; victim; probability = p; windows = 2 }

let test_injector_basic () =
  let program, blocks = program_for_injection () in
  let decisions = [ decision ~cue:blocks.(1) ~victim:77 ~p:0.9 ] in
  let instrumented, _, stats = Injector.inject ~program ~decisions () in
  checki "one injected" 1 stats.Injector.injected;
  checki "one block touched" 1 stats.Injector.blocks_touched;
  let hints = (Program.block instrumented blocks.(1)).Basic_block.hints in
  checki "hint present" 1 (Array.length hints);
  checkb "invalidate hint" true (hints.(0) = Basic_block.Invalidate 77)

let test_injector_demote_mode () =
  let program, blocks = program_for_injection () in
  let decisions = [ decision ~cue:blocks.(0) ~victim:5 ~p:0.9 ] in
  let instrumented, _, _ = Injector.inject ~mode:Injector.Demote ~program ~decisions () in
  let hints = (Program.block instrumented blocks.(0)).Basic_block.hints in
  checkb "demote hint" true (hints.(0) = Basic_block.Demote 5)

let test_injector_cap () =
  let program, blocks = program_for_injection () in
  let decisions =
    List.init 5 (fun i -> decision ~cue:blocks.(2) ~victim:(100 + i) ~p:(0.5 +. (0.1 *. Float.of_int i)))
  in
  let instrumented, _, stats = Injector.inject ~max_hints_per_block:2 ~program ~decisions () in
  checki "capped to 2" 2 stats.Injector.injected;
  checki "dropped 3" 3 stats.Injector.skipped_cap;
  let hints = (Program.block instrumented blocks.(2)).Basic_block.hints in
  checki "two hints" 2 (Array.length hints);
  (* Highest-probability victims (104, 103) kept. *)
  let lines = Array.to_list (Array.map Basic_block.hint_line hints) in
  checkb "best kept" true (List.mem 104 lines && List.mem 103 lines)

let test_injector_skips_jit () =
  let b = Builder.create () in
  let plain = Builder.block b ~bytes:32 ~term:Basic_block.Halt () in
  let jit = Builder.block b ~jit:true ~bytes:32 ~term:Basic_block.Halt () in
  Builder.set_term b plain (Basic_block.Fallthrough jit);
  let program = Builder.finish b ~entry:plain in
  let decisions = [ decision ~cue:jit ~victim:9 ~p:0.9; decision ~cue:plain ~victim:8 ~p:0.9 ] in
  let _, _, stats = Injector.inject ~program ~decisions () in
  checki "jit decision skipped" 1 stats.Injector.skipped_jit;
  checki "plain injected" 1 stats.Injector.injected;
  let _, _, stats_keep = Injector.inject ~skip_jit:false ~program ~decisions () in
  checki "jit kept when allowed" 2 stats_keep.Injector.injected

(* ------------------------------ Pipeline ---------------------------- *)

(* A small, deterministic, thrashing workload: the cleanest end-to-end
   demonstration that Ripple reduces misses. *)
let mini_verilator =
  {
    W.Apps.verilator with
    W.App_model.name = "mini-verilator";
    seed = 17;
    n_functions = 90;
    hot_functions = 30;
    handler_blocks = 60;
    blocks_per_function = 12;
  }

let mini_setup () =
  let w = W.Cfg_gen.generate mini_verilator in
  let program = w.W.Cfg_gen.program in
  let train = W.Executor.run w ~input:W.Executor.train ~n_instrs:400_000 in
  let eval = W.Executor.run w ~input:W.Executor.eval_inputs.(0) ~n_instrs:400_000 in
  (program, train, eval)

(* Shared shape for the pipeline tests: one [Pipeline.run] call under
   [No_prefetch], optionally with an evaluation request attached. *)
let run_mini ?(options = Pipeline.Options.default) ?eval program train =
  let eval =
    Option.map
      (fun (warmup, trace, policy) -> Pipeline.Eval.v ~warmup ~trace ~policy ())
      eval
  in
  Pipeline.run
    { options with prefetch = Pipeline.No_prefetch; eval }
    ~source:program (Pipeline.Trace train)

let test_pipeline_instrument_produces_hints () =
  let program, train, _ = mini_setup () in
  let oc = run_mini program train in
  let instrumented = oc.Pipeline.program in
  let analysis = oc.Pipeline.analysis in
  checkb "windows found" true (analysis.Pipeline.n_windows > 0);
  checkb "decisions made" true (analysis.Pipeline.n_decisions > 0);
  checkb "hints injected" true (Program.static_hints instrumented > 0);
  checki "injected = decisions - skips" analysis.Pipeline.injection.Injector.injected
    (Program.static_hints instrumented)

let test_pipeline_ripple_reduces_misses () =
  let program, train, eval = mini_setup () in
  let warmup = Array.length eval / 2 in
  let lru =
    Simulator.run ~warmup ~program ~trace:eval ~policy:Cache.Lru.make
      ~prefetcher:Simulator.prefetcher_none ()
  in
  let oc = run_mini program train ~eval:(warmup, eval, Cache.Lru.make) in
  let ev = Option.get oc.Pipeline.evaluation in
  checkb "fewer misses than LRU" true
    (ev.Pipeline.result.Simulator.demand_misses < lru.Simulator.demand_misses);
  checkb "coverage positive" true (ev.Pipeline.coverage > 0.2);
  checkb "accuracy high on deterministic code" true (ev.Pipeline.accuracy > 0.8);
  checkb "hints executed" true (ev.Pipeline.hint_execs > 0);
  checkb "static overhead sane" true
    (ev.Pipeline.static_overhead > 0.0 && ev.Pipeline.static_overhead < 0.15);
  checkb "dynamic overhead sane" true
    (ev.Pipeline.dynamic_overhead > 0.0 && ev.Pipeline.dynamic_overhead < 0.15)

let test_pipeline_ripple_random_works () =
  let program, train, eval = mini_setup () in
  let warmup = Array.length eval / 2 in
  let random_base =
    Simulator.run ~warmup ~program ~trace:eval ~policy:(Cache.Random_policy.make ~seed:8)
      ~prefetcher:Simulator.prefetcher_none ()
  in
  let oc = run_mini program train ~eval:(warmup, eval, Cache.Random_policy.make ~seed:8) in
  let ev = Option.get oc.Pipeline.evaluation in
  checkb "ripple-random beats plain random" true
    (ev.Pipeline.result.Simulator.demand_misses < random_base.Simulator.demand_misses)

let test_pipeline_demote_mode_runs () =
  let program, train, eval = mini_setup () in
  let warmup = Array.length eval / 2 in
  let lru =
    Simulator.run ~warmup ~program ~trace:eval ~policy:Cache.Lru.make
      ~prefetcher:Simulator.prefetcher_none ()
  in
  let oc =
    run_mini program train
      ~options:{ Pipeline.Options.default with mode = Injector.Demote }
      ~eval:(warmup, eval, Cache.Lru.make)
  in
  let ev = Option.get oc.Pipeline.evaluation in
  checkb "demote also reduces misses" true
    (ev.Pipeline.result.Simulator.demand_misses < lru.Simulator.demand_misses)

let test_pipeline_threshold_monotone_decisions () =
  let program, train, _ = mini_setup () in
  let count threshold =
    let oc = run_mini program train ~options:{ Pipeline.Options.default with threshold } in
    oc.Pipeline.analysis.Pipeline.n_decisions
  in
  checkb "higher threshold, fewer decisions" true (count 0.9 <= count 0.3)

let test_pipeline_search_threshold () =
  let program, train, eval = mini_setup () in
  let warmup = Array.length eval / 2 in
  let oc =
    run_mini program train
      ~options:{ Pipeline.Options.default with search = [ 0.45; 0.65 ] }
      ~eval:(warmup, eval, Cache.Lru.make)
  in
  let threshold = oc.Pipeline.analysis.Pipeline.threshold in
  let ev = Option.get oc.Pipeline.evaluation in
  checkb "picked a candidate" true (threshold = 0.45 || threshold = 0.65);
  checkb "evaluation attached" true (ev.Pipeline.hint_execs >= 0)

let test_pipeline_prefetch_helpers () =
  check Alcotest.string "name none" "none" (Pipeline.prefetch_name Pipeline.No_prefetch);
  check Alcotest.string "name nlp" "nlp" (Pipeline.prefetch_name Pipeline.Nlp);
  check Alcotest.string "name fdip" "fdip" (Pipeline.prefetch_name Pipeline.Fdip);
  checkb "mode none" true (Pipeline.belady_mode_of Pipeline.No_prefetch = Belady.Min);
  checkb "mode fdip" true (Pipeline.belady_mode_of Pipeline.Fdip = Belady.Demand_min)

let suites =
  [
    ( "core.eviction_window",
      [
        Alcotest.test_case "of_evictions" `Quick test_window_of_evictions;
        Alcotest.test_case "trace coords" `Quick test_window_trace_coords;
        Alcotest.test_case "count_for" `Quick test_window_count_for;
        Alcotest.test_case "index membership" `Quick test_window_index_membership;
      ] );
    ( "core.cue_block",
      [
        Alcotest.test_case "selects best probability" `Quick test_cue_selects_best_probability;
        Alcotest.test_case "threshold filters" `Quick test_cue_threshold_filters;
        Alcotest.test_case "min support filters" `Quick test_cue_min_support_filters;
        Alcotest.test_case "probability values" `Quick test_cue_conditional_probability_values;
        Alcotest.test_case "empty inputs" `Quick test_cue_empty_inputs;
      ] );
    ( "core.injector",
      [
        Alcotest.test_case "basic" `Quick test_injector_basic;
        Alcotest.test_case "demote mode" `Quick test_injector_demote_mode;
        Alcotest.test_case "cap" `Quick test_injector_cap;
        Alcotest.test_case "skips jit" `Quick test_injector_skips_jit;
      ] );
    ( "core.pipeline",
      [
        Alcotest.test_case "instrument produces hints" `Quick test_pipeline_instrument_produces_hints;
        Alcotest.test_case "ripple reduces misses" `Quick test_pipeline_ripple_reduces_misses;
        Alcotest.test_case "ripple-random works" `Quick test_pipeline_ripple_random_works;
        Alcotest.test_case "demote mode runs" `Quick test_pipeline_demote_mode_runs;
        Alcotest.test_case "threshold monotone" `Quick test_pipeline_threshold_monotone_decisions;
        Alcotest.test_case "search threshold" `Quick test_pipeline_search_threshold;
        Alcotest.test_case "helpers" `Quick test_pipeline_prefetch_helpers;
      ] );
  ]
