(* The experiment runner: parallel determinism, crash isolation, the
   policy registry, and JSON round-trips. *)

module Cache = Ripple_cache
module Cpu = Ripple_cpu
module Core = Ripple_core
module Exp = Ripple_exp
module Json = Ripple_util.Json

let n_instrs = 60_000

let small_specs () =
  let open Exp.Spec in
  List.concat_map
    (fun app ->
      [
        v ~n_instrs ~app (Policy "lru");
        v ~n_instrs ~app (Policy "random");
        v ~n_instrs ~app ~prefetch:Core.Pipeline.No_prefetch Ideal_cache;
        v ~n_instrs ~app (Ripple { policy = "lru"; threshold = 0.5 });
      ])
    [ "finagle-http"; "verilator" ]

(* The acceptance criterion: a sweep renders byte-identically no matter
   how many domains executed it. *)
let test_parallel_determinism () =
  let specs = small_specs () in
  let serial = Exp.Runner.run ~jobs:1 ~quiet:true specs in
  let parallel = Exp.Runner.run ~jobs:4 ~quiet:true specs in
  Alcotest.(check string)
    "jobs=1 and jobs=4 JSONL byte-identical" (Exp.Report.to_jsonl serial)
    (Exp.Report.to_jsonl parallel);
  List.iter
    (fun (c : Exp.Runner.cell) ->
      Alcotest.(check bool) "cell ok" true (Result.is_ok (Exp.Runner.result c)))
    serial

(* Same property through the packed-stream memo: Oracle cells share a
   per-domain recorded stream, so a sweep that mixes Oracle specs (which
   hit and miss the memo in a scheduling-dependent order) must still
   render byte-identically across job counts. *)
let test_parallel_determinism_with_memoized_streams () =
  let open Exp.Spec in
  let specs =
    List.concat_map
      (fun app ->
        [
          v ~n_instrs ~app ~prefetch:Core.Pipeline.Fdip Oracle;
          v ~n_instrs ~app (Policy "lru");
          v ~n_instrs ~app ~prefetch:Core.Pipeline.Fdip Oracle;
          v ~n_instrs ~app ~prefetch:Core.Pipeline.Nlp Oracle;
        ])
      [ "finagle-http"; "verilator" ]
  in
  let serial = Exp.Runner.run ~jobs:1 ~quiet:true specs in
  let parallel = Exp.Runner.run ~jobs:4 ~quiet:true specs in
  Alcotest.(check string)
    "oracle sweep byte-identical across jobs" (Exp.Report.to_jsonl serial)
    (Exp.Report.to_jsonl parallel);
  List.iter
    (fun (c : Exp.Runner.cell) ->
      Alcotest.(check bool) "cell ok" true (Result.is_ok (Exp.Runner.result c)))
    parallel

(* write_jsonl creates missing parent directories and leaves no temp
   file behind; the rename makes the write atomic. *)
let test_write_jsonl_creates_parents () =
  let root = Filename.temp_file "ripple_exp_test" "" in
  Sys.remove root;
  let path = Filename.concat (Filename.concat root "a/b") "out.jsonl" in
  let cells =
    Exp.Runner.run ~jobs:1 ~quiet:true
      [ Exp.Spec.v ~n_instrs ~app:"finagle-http" (Exp.Spec.Policy "lru") ]
  in
  Exp.Report.write_jsonl path cells;
  Alcotest.(check bool) "file exists" true (Sys.file_exists path);
  let ic = open_in path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "contents match to_jsonl" (Exp.Report.to_jsonl cells) contents;
  let dir = Filename.dirname path in
  Alcotest.(check (list string))
    "no temp residue" [ "out.jsonl" ]
    (Array.to_list (Sys.readdir dir));
  Sys.remove path;
  Unix.rmdir dir;
  Unix.rmdir (Filename.concat root "a");
  Unix.rmdir root

(* When the final rename fails (destination occupied by a directory),
   write_jsonl must remove its temp file — an aborted write leaves the
   destination directory exactly as it found it. *)
let test_write_jsonl_temp_cleanup () =
  let root = Filename.temp_file "ripple_exp_test" "" in
  Sys.remove root;
  Unix.mkdir root 0o755;
  let path = Filename.concat root "out.jsonl" in
  Unix.mkdir path 0o755 (* rename file -> existing dir fails *);
  let cells = [] in
  (match Exp.Report.write_jsonl path cells with
  | () -> Alcotest.fail "expected the rename to fail"
  | exception Sys_error _ -> ());
  Alcotest.(check (list string))
    "only the blocking directory remains" [ "out.jsonl" ]
    (Array.to_list (Sys.readdir root));
  Unix.rmdir path;
  Unix.rmdir root

(* Repeating the same spec twice in one sweep must give identical cells:
   per-cell PRNGs, not a shared stream. *)
let test_repeat_spec_identical () =
  let spec = Exp.Spec.v ~n_instrs ~app:"finagle-http" (Exp.Spec.Policy "random") in
  match Exp.Runner.run ~jobs:2 ~quiet:true [ spec; spec ] with
  | [ a; b ] ->
    Alcotest.(check string)
      "identical cells" (Json.to_string (Exp.Report.cell_to_json a))
      (Json.to_string (Exp.Report.cell_to_json b))
  | _ -> Alcotest.fail "expected two cells"

let test_failed_cell_isolation () =
  let good = Exp.Spec.v ~n_instrs ~app:"finagle-http" (Exp.Spec.Policy "lru") in
  let bad_app = Exp.Spec.v ~n_instrs ~app:"no-such-app" (Exp.Spec.Policy "lru") in
  let bad_policy = Exp.Spec.v ~n_instrs ~app:"finagle-http" (Exp.Spec.Policy "no-such-policy") in
  match Exp.Runner.run ~jobs:2 ~quiet:true [ bad_app; good; bad_policy ] with
  | [ a; g; p ] ->
    Alcotest.(check bool)
      "bad app errors" true
      (Result.is_error (Exp.Runner.result a));
    Alcotest.(check bool) "good cell survives" true (Result.is_ok (Exp.Runner.result g));
    Alcotest.(check bool)
      "bad policy errors" true
      (Result.is_error (Exp.Runner.result p));
    let json = Exp.Report.cell_to_json a in
    Alcotest.(check (option string))
      "failed status rendered" (Some "failed")
      (match Json.member "status" json with Some (Json.String s) -> Some s | _ -> None)
  | _ -> Alcotest.fail "expected three cells"

(* A cell that fails deterministically is retried with perturbed seeds:
   the emitted cell keeps the original spec, records every attempt, and
   renders the attempt count in its JSON row. *)
let test_retries_recorded () =
  let bad = Exp.Spec.v ~n_instrs ~app:"no-such-app" (Exp.Spec.Policy "lru") in
  let good = Exp.Spec.v ~n_instrs ~app:"finagle-http" (Exp.Spec.Policy "lru") in
  match Exp.Runner.run ~jobs:1 ~quiet:true ~retries:2 [ bad; good ] with
  | [ b; g ] ->
    Alcotest.(check bool) "still failed" true (Result.is_error (Exp.Runner.result b));
    Alcotest.(check int) "all attempts recorded" 3 b.Exp.Runner.attempts;
    Alcotest.(check bool) "original spec kept" true (Exp.Spec.equal bad b.Exp.Runner.spec);
    Alcotest.(check int) "successful cell runs once" 1 g.Exp.Runner.attempts;
    let json = Exp.Report.cell_to_json b in
    Alcotest.(check (option int))
      "attempts rendered" (Some 3)
      (match Json.member "attempts" json with Some (Json.Int n) -> Some n | _ -> None)
  | _ -> Alcotest.fail "expected two cells"

(* Seed perturbation is deterministic and injective over attempts, so a
   retried stochastic cell replays identically in a rerun. *)
let test_perturb_seed () =
  Alcotest.(check int) "attempt 0 is identity" 99 (Exp.Spec.perturb_seed 99 ~attempt:0);
  Alcotest.(check bool)
    "attempts diverge" true
    (Exp.Spec.perturb_seed 99 ~attempt:1 <> Exp.Spec.perturb_seed 99 ~attempt:2)

(* The circuit breaker: once the failure budget is spent, the rest of a
   serial sweep is skipped (not run, not failed) and says so in JSONL. *)
let test_circuit_breaker () =
  let bad i = Exp.Spec.v ~n_instrs ~seed:i ~app:"no-such-app" (Exp.Spec.Policy "lru") in
  let good = Exp.Spec.v ~n_instrs ~app:"finagle-http" (Exp.Spec.Policy "lru") in
  match Exp.Runner.run ~jobs:1 ~quiet:true ~max_failures:1 [ bad 1; bad 2; good ] with
  | [ a; b; c ] ->
    Alcotest.(check bool)
      "first failure recorded" true
      (match a.Exp.Runner.status with Exp.Runner.Failed _ -> true | _ -> false);
    let skipped (cell : Exp.Runner.cell) =
      match cell.Exp.Runner.status with Exp.Runner.Skipped _ -> true | _ -> false
    in
    Alcotest.(check bool) "second cell skipped" true (skipped b);
    Alcotest.(check bool) "good cell skipped too" true (skipped c);
    Alcotest.(check (option string))
      "skipped status rendered" (Some "skipped")
      (match Json.member "status" (Exp.Report.cell_to_json c) with
      | Some (Json.String s) -> Some s
      | _ -> None)
  | _ -> Alcotest.fail "expected three cells"

(* Jobs-parity must survive failed and retried cells: rows for failures
   carry the error message, not timing or scheduling artefacts, so a
   sweep with broken cells still renders byte-identically across pool
   sizes. *)
let test_parity_with_failures () =
  let open Exp.Spec in
  let specs =
    List.concat_map
      (fun app ->
        [
          v ~n_instrs ~app (Policy "lru");
          v ~n_instrs ~app (Policy "no-such-policy");
          v ~n_instrs ~app:(app ^ "-missing") (Policy "lru");
          v ~n_instrs ~app (Ripple { policy = "lru"; threshold = 0.5 });
        ])
      [ "finagle-http"; "verilator" ]
  in
  let serial = Exp.Runner.run ~jobs:1 ~quiet:true ~retries:1 specs in
  let parallel = Exp.Runner.run ~jobs:4 ~quiet:true ~retries:1 specs in
  Alcotest.(check string)
    "failed/retried sweep byte-identical across jobs" (Exp.Report.to_jsonl serial)
    (Exp.Report.to_jsonl parallel);
  Alcotest.(check int)
    "failures present" 4
    (List.length
       (List.filter (fun c -> Result.is_error (Exp.Runner.result c)) serial))

let test_prng_seed_distinct () =
  let s1 = Exp.Spec.v ~n_instrs ~app:"finagle-http" (Exp.Spec.Policy "random") in
  let s2 = { s1 with Exp.Spec.seed = 4321 } in
  let s3 = { s1 with Exp.Spec.app = "verilator" } in
  Alcotest.(check bool)
    "seed field changes stream" true
    (Exp.Spec.prng_seed s1 <> Exp.Spec.prng_seed s2);
  Alcotest.(check bool)
    "app changes stream" true
    (Exp.Spec.prng_seed s1 <> Exp.Spec.prng_seed s3);
  Alcotest.(check int) "prng_seed stable" (Exp.Spec.prng_seed s1) (Exp.Spec.prng_seed s1)

(* Shard ranges tile [0, sets) exactly: contiguous, disjoint, in order,
   clamped when there are more shards than sets. *)
let test_shard_ranges () =
  List.iter
    (fun (sets, shards) ->
      let rs = Exp.Shard.ranges ~sets ~shards in
      Alcotest.(check bool) "non-empty" true (Array.length rs > 0);
      Alcotest.(check int) "starts at 0" 0 (fst rs.(0));
      Alcotest.(check int) "ends at sets" sets (snd rs.(Array.length rs - 1));
      Array.iteri
        (fun i (lo, hi) ->
          Alcotest.(check bool) "non-empty range" true (lo < hi);
          if i > 0 then Alcotest.(check int) "contiguous" lo (snd rs.(i - 1)))
        rs)
    [ (64, 1); (64, 4); (64, 7); (3, 8); (1, 5) ]

(* Set-sharded ideal replacement is an execution strategy, not a model
   change: the merged result equals the unsharded oracle exactly, at
   any shard count. *)
let test_sharded_oracle_identity () =
  let module W = Ripple_workloads in
  let module Simulator = Cpu.Simulator in
  let w = W.Cfg_gen.generate W.Apps.kafka in
  let trace = W.Executor.run w ~input:W.Executor.train ~n_instrs:80_000 in
  let program = w.W.Cfg_gen.program in
  let warmup = Array.length trace / 2 in
  let prefetcher = Simulator.prefetcher_fdip in
  let stream = Simulator.record_stream_indexed ~program ~trace ~prefetcher () in
  let unsharded =
    Simulator.oracle ~warmup ~stream ~mode:Cache.Belady.Demand_min ~program ~trace
      ~prefetcher ()
  in
  List.iter
    (fun shards ->
      let sharded =
        Exp.Shard.oracle ~shards ~warmup ~stream ~mode:Cache.Belady.Demand_min ~program
          ~trace ~prefetcher ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "shards=%d equals unsharded" shards)
        true (sharded = unsharded))
    [ 2; 5 ]

(* Backing, sampling and sharding are representation/execution choices:
   the sweep JSONL must not change when any of them does (sampling only
   for cells it does not apply to — here Oracle/Ideal cells — while
   Policy/Ripple cells record their sampled rows deterministically). *)
let test_backing_shard_jsonl_identity () =
  let open Exp.Spec in
  let specs =
    [
      v ~n_instrs ~app:"finagle-http" (Policy "lru");
      v ~n_instrs ~app:"finagle-http" ~prefetch:Core.Pipeline.Fdip Oracle;
      v ~n_instrs ~app:"finagle-http" (Ripple { policy = "lru"; threshold = 0.5 });
    ]
  in
  let baseline = Exp.Report.to_jsonl (Exp.Runner.run ~jobs:2 ~quiet:true specs) in
  let spill =
    Exp.Report.to_jsonl
      (Exp.Runner.run ~backing:(Ripple_util.Int_stream.spill ()) ~jobs:2 ~quiet:true specs)
  in
  Alcotest.(check string) "mmap backing JSONL byte-identical" baseline spill;
  let sharded = Exp.Report.to_jsonl (Exp.Runner.run ~shards:3 ~jobs:1 ~quiet:true specs) in
  Alcotest.(check string) "sharded oracle JSONL byte-identical" baseline sharded;
  Alcotest.(check int)
    "no spill files leaked" 0
    (List.length (Ripple_util.Int_stream.Spill.live ()))

(* A sampled sweep is deterministic in the sampling spec — identical
   across reruns and job counts — and its rows carry the sample report. *)
let test_sampled_sweep_deterministic () =
  let open Exp.Spec in
  let sampling = Cpu.Simulator.Sampling.v ~windows:3 ~window_blocks:500 () in
  let specs =
    [
      v ~n_instrs ~app:"finagle-http" (Ripple { policy = "lru"; threshold = 0.5 });
      v ~n_instrs ~app:"verilator" (Ripple { policy = "lru"; threshold = 0.5 });
    ]
  in
  let a = Exp.Runner.run ~sampling ~jobs:1 ~quiet:true specs in
  let b = Exp.Runner.run ~sampling ~jobs:2 ~quiet:true specs in
  Alcotest.(check string)
    "sampled sweep byte-identical across jobs" (Exp.Report.to_jsonl a)
    (Exp.Report.to_jsonl b);
  List.iter
    (fun (c : Exp.Runner.cell) ->
      match Exp.Runner.result c with
      | Ok { Exp.Runner.evaluation = Some ev; _ } ->
        (match ev.Core.Pipeline.sample with
        | Some r ->
          Alcotest.(check bool)
            "partial coverage" true
            (r.Cpu.Simulator.Sampling.coverage < 1.0)
        | None -> Alcotest.fail "sampled cell should carry a sample report");
        Alcotest.(check bool)
          "sample report rendered" true
          (Json.member "sample" (Core.Pipeline.evaluation_to_json ev) <> None)
      | Ok _ -> Alcotest.fail "ripple cell should carry an evaluation"
      | Error e -> Alcotest.fail e)
    a

(* Every registry entry must construct a live policy at the paper's
   Table II L1I geometry and report a sane storage budget. *)
let test_registry_complete () =
  let geo = Cache.Geometry.l1i in
  let sets = Cache.Geometry.sets geo and ways = geo.Cache.Geometry.ways in
  Alcotest.(check bool) "registry non-empty" true (List.length Cache.Registry.all >= 7);
  List.iter
    (fun (e : Cache.Registry.entry) ->
      let p =
        e.Cache.Registry.factory ~seed:1
          ~params:(Cache.Registry.Param.defaults e.Cache.Registry.params)
          ~sets ~ways
      in
      Alcotest.(check bool)
        (e.Cache.Registry.name ^ " storage_bits sane")
        true
        (p.Cache.Policy.storage_bits >= 0);
      Alcotest.(check bool)
        (e.Cache.Registry.name ^ " victim in range")
        true
        (let v = p.Cache.Policy.victim ~set:0 in
         v >= 0 && v < ways))
    Cache.Registry.all;
  Alcotest.(check bool) "find is case-insensitive" true (Cache.Registry.find "LRU" <> None);
  Alcotest.(check bool) "unknown name rejected" true (Cache.Registry.find "plru" = None);
  match Cache.Registry.find_exn "nope" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "find_exn should raise on unknown names"

let roundtrip name json =
  match Json.parse (Json.to_string json) with
  | Ok parsed -> Alcotest.(check bool) (name ^ " round-trips") true (Json.equal json parsed)
  | Error e -> Alcotest.fail (name ^ ": " ^ e)

let test_json_roundtrip () =
  let spec = Exp.Spec.v ~n_instrs ~app:"finagle-http" (Exp.Spec.Policy "lru") in
  let outcome = Exp.Runner.run_spec spec in
  roundtrip "simulator result" (Cpu.Simulator.result_to_json outcome.Exp.Runner.result);
  let rspec =
    Exp.Spec.v ~n_instrs ~app:"finagle-http"
      (Exp.Spec.Ripple { policy = "lru"; threshold = 0.5 })
  in
  let cells = Exp.Runner.run ~jobs:1 ~quiet:true [ rspec ] in
  let cell = List.hd cells in
  (match Exp.Runner.result cell with
  | Ok { Exp.Runner.evaluation = Some ev; _ } ->
    roundtrip "evaluation" (Core.Pipeline.evaluation_to_json ev)
  | Ok _ -> Alcotest.fail "ripple cell should carry an evaluation"
  | Error e -> Alcotest.fail e);
  roundtrip "cell" (Exp.Report.cell_to_json cell);
  roundtrip "spec" (Exp.Spec.to_json rspec)

let suites =
  [
    ( "exp",
      [
        Alcotest.test_case "parallel determinism" `Slow test_parallel_determinism;
        Alcotest.test_case "parallel determinism (memoized oracle streams)" `Slow
          test_parallel_determinism_with_memoized_streams;
        Alcotest.test_case "write_jsonl creates parent dirs" `Slow
          test_write_jsonl_creates_parents;
        Alcotest.test_case "write_jsonl removes temp on failed rename" `Quick
          test_write_jsonl_temp_cleanup;
        Alcotest.test_case "repeated spec identical" `Slow test_repeat_spec_identical;
        Alcotest.test_case "failed-cell isolation" `Slow test_failed_cell_isolation;
        Alcotest.test_case "retries recorded" `Slow test_retries_recorded;
        Alcotest.test_case "perturb_seed deterministic" `Quick test_perturb_seed;
        Alcotest.test_case "circuit breaker skips remainder" `Slow test_circuit_breaker;
        Alcotest.test_case "parity with failed/retried cells" `Slow test_parity_with_failures;
        Alcotest.test_case "prng seeds distinct" `Quick test_prng_seed_distinct;
        Alcotest.test_case "shard ranges tile the sets" `Quick test_shard_ranges;
        Alcotest.test_case "sharded oracle = unsharded" `Slow test_sharded_oracle_identity;
        Alcotest.test_case "backing/shards leave JSONL unchanged" `Slow
          test_backing_shard_jsonl_identity;
        Alcotest.test_case "sampled sweep deterministic" `Slow test_sampled_sweep_deterministic;
        Alcotest.test_case "registry complete at Table II geometry" `Quick
          test_registry_complete;
        Alcotest.test_case "json round-trip" `Slow test_json_roundtrip;
      ] );
  ]
