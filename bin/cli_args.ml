(* Shared cmdliner vocabulary for ripple-sim subcommands.

   One definition per concept: the application, prefetcher and policy
   converters (the latter two driven by the live registries, so a policy
   added to {!Ripple_cache.Registry} is immediately accepted — and
   documented — everywhere), plus the argument bundles every subcommand
   reuses.  Subcommands never roll their own parsers. *)

module W = Ripple_workloads
module Registry = Ripple_cache.Registry
module Pipeline = Ripple_core.Pipeline
open Cmdliner

let app_conv =
  let parse s =
    match W.Apps.by_name s with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown application %S (known: %s)" s
             (String.concat ", " (List.map (fun m -> m.W.App_model.name) W.Apps.all))))
  in
  let print fmt (m : W.App_model.t) = Format.fprintf fmt "%s" m.W.App_model.name in
  Arg.conv (parse, print)

let prefetch_conv =
  let parse = function
    | "none" -> Ok Pipeline.No_prefetch
    | "nlp" -> Ok Pipeline.Nlp
    | "fdip" -> Ok Pipeline.Fdip
    | s -> Error (`Msg (Printf.sprintf "unknown prefetcher %S (none|nlp|fdip)" s))
  in
  let print fmt p = Format.fprintf fmt "%s" (Pipeline.prefetch_name p) in
  Arg.conv (parse, print)

(* The policy vocabulary (parser, parameter schemas and help text)
   comes from the one registry, so a policy added there is immediately
   accepted here.  Specs parse to their canonical string (overrides
   sorted, defaults dropped), which is what JSONL rows record. *)
let policy_conv =
  let parse s =
    match Registry.parse_spec s with
    | Ok spec -> Ok (Registry.spec_to_string spec)
    | Error m -> Error (`Msg m)
  in
  let print fmt name = Format.fprintf fmt "%s" name in
  Arg.conv (parse, print)

let policy_doc =
  "Replacement policy spec: $(i,NAME) or $(i,NAME):$(i,KEY)=$(i,VAL),$(i,KEY)=$(i,VAL),...     ($(b,+) also separates pairs, for use inside comma-separated lists).  Known: "
  ^ String.concat "; "
      (List.map
         (fun e ->
           let params =
             match e.Registry.params with
             | [] -> ""
             | ps ->
               Printf.sprintf " [%s]"
                 (String.concat ", "
                    (List.map
                       (fun (p : Registry.Param.spec) ->
                         Printf.sprintf "%s=%s" p.Registry.Param.key
                           (Registry.Param.value_to_string p.Registry.Param.default))
                       ps))
           in
           Printf.sprintf "$(b,%s) (%s)%s" e.Registry.name e.Registry.description params)
         Registry.all)
  ^ "."

let app_arg =
  Arg.(
    required
    & opt (some app_conv) None
    & info [ "a"; "app" ] ~docv:"APP" ~doc:"Application model (see $(b,ripple-sim apps)).")

let app_pos_arg =
  Arg.(
    required
    & pos 0 (some app_conv) None
    & info [] ~docv:"APP" ~doc:"Application model (see $(b,ripple-sim apps)).")

let apps_arg ~verb =
  Arg.(
    value
    & opt (list app_conv) W.Apps.all
    & info [ "apps" ] ~docv:"APP,.."
        ~doc:(Printf.sprintf "Applications to %s (comma-separated; default: all nine)." verb))

let prefetch_arg =
  Arg.(
    value
    & opt prefetch_conv Pipeline.Fdip
    & info [ "p"; "prefetch" ] ~docv:"PF" ~doc:"Prefetcher: none, nlp or fdip.")

let policy_arg =
  Arg.(value & opt policy_conv "lru" & info [ "policy" ] ~docv:"POLICY" ~doc:policy_doc)

let instrs_arg =
  Arg.(
    value
    & opt int 2_000_000
    & info [ "n"; "instrs" ] ~docv:"N" ~doc:"Trace length in instructions.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains (default: the runtime's recommended domain count).  Results are \
           identical for every $(docv).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the run's merged metric snapshot to $(docv) as OpenMetrics text \
           (deterministic: byte-identical across $(b,--jobs) values).")

let backing_conv =
  let parse s =
    Result.map_error (fun m -> `Msg m) (Ripple_util.Int_stream.backing_of_string s)
  in
  let print fmt b = Format.fprintf fmt "%s" (Ripple_util.Int_stream.backing_name b) in
  Arg.conv (parse, print)

let backing_arg =
  Arg.(
    value
    & opt backing_conv Ripple_util.Int_stream.Heap
    & info [ "backing" ] ~docv:"BACKING"
        ~doc:
          "Access-stream storage: $(b,heap) keeps recorded streams and Belady tables in \
           memory; $(b,mmap) writes them through to unlinked temp files so paper-scale \
           traces run in bounded heap.  Results are byte-identical either way.")

let sample_windows_arg =
  Arg.(
    value
    & opt int 0
    & info [ "sample-windows" ] ~docv:"K"
        ~doc:
          "Sampled simulation: after warm-up, measure $(docv) deterministic windows from a \
           cache/BTB/FDIP checkpoint and splice IPC/MPKI from them (0: replay the full \
           trace).  The JSONL row records the measured spans and coverage.")

let sample_window_blocks_arg =
  Arg.(
    value
    & opt int 50_000
    & info [ "sample-window-blocks" ] ~docv:"N"
        ~doc:"Blocks measured per sampled window.")

let sample_seed_arg =
  Arg.(
    value
    & opt int 1
    & info [ "sample-seed" ] ~docv:"S"
        ~doc:"Seed placing the sampled windows inside their strata.")

(* [--sample-windows 0] (the default) means full replay; the bundle
   yields the [Sampling.t option] the library layers take. *)
let sampling_term =
  Cmdliner.Term.(
    const (fun windows window_blocks seed ->
        if windows <= 0 then None
        else Some (Ripple_cpu.Simulator.Sampling.v ~seed ~windows ~window_blocks ()))
    $ sample_windows_arg $ sample_window_blocks_arg $ sample_seed_arg)

let shards_arg =
  Arg.(
    value
    & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Partition each oracle cell's cache sets across $(docv) domains (set-sharded \
           ideal replacement).  Results are byte-identical for every $(docv).")

(* Geometry bundle: one --sets/--ways/--line vocabulary for every
   subcommand that analyses or simulates a cache, defaulting to
   {!Ripple_cache.Geometry.l1i} (64 sets, 8 ways, 64-byte lines —
   32 KiB).  The line size is fixed by the ISA's address arithmetic
   ({!Ripple_isa.Addr.line_size}); the flag exists so scripts state
   their assumption explicitly and get a hard error if it drifts. *)
let sets_arg =
  Arg.(
    value
    & opt int 64
    & info [ "sets" ] ~docv:"N" ~doc:"Cache set count (positive power of two; default 64).")

let ways_arg =
  Arg.(
    value & opt int 8 & info [ "ways" ] ~docv:"N" ~doc:"Cache associativity (default 8).")

let line_arg =
  Arg.(
    value
    & opt int Ripple_isa.Addr.line_size
    & info [ "line" ] ~docv:"BYTES"
        ~doc:
          (Printf.sprintf "Cache-line size in bytes (the ISA fixes this at %d)."
             Ripple_isa.Addr.line_size))

let geometry_term =
  Term.term_result
    Term.(
      const (fun sets ways line ->
          if line <> Ripple_isa.Addr.line_size then
            Error
              (`Msg
                (Printf.sprintf "--line must be %d: the ISA's address arithmetic fixes the \
                                 line size" Ripple_isa.Addr.line_size))
          else if ways <= 0 then Error (`Msg "--ways must be positive")
          else if sets <= 0 || sets land (sets - 1) <> 0 then
            Error (`Msg "--sets must be a positive power of two")
          else
            match Ripple_cache.Geometry.v ~size_bytes:(sets * ways * line) ~ways with
            | g -> Ok g
            | exception Invalid_argument m -> Error (`Msg m))
      $ sets_arg $ ways_arg $ line_arg)

let threshold_arg =
  Arg.(
    value
    & opt float 0.55
    & info [ "t"; "threshold" ] ~docv:"P" ~doc:"Invalidation threshold in [0,1].")

(* Writes already-rendered observability output; goes through the sink's
   atomic temp-file path so a crash never leaves a partial artifact. *)
let write_text path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc
