(* ripple-sim: command-line front end to the library.

     ripple-sim apps
     ripple-sim simulate --app cassandra --prefetch fdip --policy lru
     ripple-sim ripple   --app verilator --prefetch none --threshold 0.55
     ripple-sim sweep    --apps cassandra,kafka --prefetch none,fdip --jobs 4
     ripple-sim lint     --apps drupal --json
     ripple-sim trace    --app kafka --instrs 200000 --out kafka.pt
     ripple-sim chaos    --quick --json --out chaos.json

   Everything the subcommands do is a thin composition of the public
   library API; see examples/ for the same flows in code. *)

module W = Ripple_workloads
module Cache = Ripple_cache
module Registry = Ripple_cache.Registry
module Simulator = Ripple_cpu.Simulator
module Pipeline = Ripple_core.Pipeline
module Pt = Ripple_trace.Pt
module Program = Ripple_isa.Program
module Exp = Ripple_exp
module Chaos = Ripple_fault.Chaos

open Cmdliner

(* ------------------------------ shared ------------------------------ *)

let app_conv =
  let parse s =
    match W.Apps.by_name s with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown application %S (known: %s)" s
             (String.concat ", " (List.map (fun m -> m.W.App_model.name) W.Apps.all))))
  in
  let print fmt (m : W.App_model.t) = Format.fprintf fmt "%s" m.W.App_model.name in
  Arg.conv (parse, print)

let prefetch_conv =
  let parse = function
    | "none" -> Ok Pipeline.No_prefetch
    | "nlp" -> Ok Pipeline.Nlp
    | "fdip" -> Ok Pipeline.Fdip
    | s -> Error (`Msg (Printf.sprintf "unknown prefetcher %S (none|nlp|fdip)" s))
  in
  let print fmt p = Format.fprintf fmt "%s" (Pipeline.prefetch_name p) in
  Arg.conv (parse, print)

(* The policy vocabulary (parser and help text) comes from the one
   registry, so a policy added there is immediately accepted here. *)
let policy_conv =
  let parse s =
    match Registry.find s with
    | Some e -> Ok e.Registry.name
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown policy %S (known: %s)" s
             (String.concat ", " Registry.names)))
  in
  let print fmt name = Format.fprintf fmt "%s" name in
  Arg.conv (parse, print)

let policy_doc =
  "Replacement policy: "
  ^ String.concat ", "
      (List.map
         (fun e -> Printf.sprintf "$(b,%s) (%s)" e.Registry.name e.Registry.description)
         Registry.all)
  ^ "."

let app_arg =
  Arg.(
    required
    & opt (some app_conv) None
    & info [ "a"; "app" ] ~docv:"APP" ~doc:"Application model (see $(b,ripple-sim apps)).")

let prefetch_arg =
  Arg.(
    value
    & opt prefetch_conv Pipeline.Fdip
    & info [ "p"; "prefetch" ] ~docv:"PF" ~doc:"Prefetcher: none, nlp or fdip.")

let instrs_arg =
  Arg.(
    value
    & opt int 2_000_000
    & info [ "n"; "instrs" ] ~docv:"N" ~doc:"Trace length in instructions.")

let setup app n_instrs =
  let workload = W.Cfg_gen.generate app in
  let eval = W.Executor.run workload ~input:W.Executor.eval_inputs.(0) ~n_instrs in
  (workload, eval, Array.length eval / 2)

let print_result label (r : Simulator.result) =
  Printf.printf "%-18s ipc=%.4f mpki=%.3f misses=%d (L2 %d / L3 %d / mem %d)\n" label
    r.Simulator.ipc r.Simulator.mpki r.Simulator.demand_misses r.Simulator.served_l2
    r.Simulator.served_l3 r.Simulator.served_memory

(* ------------------------------- apps ------------------------------- *)

let apps_cmd =
  let run () =
    List.iter
      (fun m -> Format.printf "%a@." W.App_model.pp m)
      W.Apps.all
  in
  Cmd.v (Cmd.info "apps" ~doc:"List the nine application models.") Term.(const run $ const ())

(* ----------------------------- simulate ----------------------------- *)

let simulate_cmd =
  let policy_arg =
    Arg.(value & opt policy_conv "lru" & info [ "policy" ] ~docv:"POLICY" ~doc:policy_doc)
  in
  let oracle_flag =
    Arg.(value & flag & info [ "oracle" ] ~doc:"Also run the ideal-replacement bound.")
  in
  let run app prefetch n_instrs pname oracle =
    let workload, eval, warmup = setup app n_instrs in
    let program = workload.W.Cfg_gen.program in
    let prefetcher = Pipeline.prefetcher_of prefetch in
    let policy = Registry.factory pname in
    let r = Simulator.run ~warmup ~program ~trace:eval ~policy ~prefetcher () in
    print_result (Printf.sprintf "%s+%s" (Pipeline.prefetch_name prefetch) pname) r;
    if oracle then begin
      let o =
        Simulator.oracle ~warmup ~mode:(Pipeline.belady_mode_of prefetch) ~program ~trace:eval
          ~prefetcher ()
      in
      print_result "ideal replacement" o
    end
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run one cache/prefetcher configuration over an application.")
    Term.(const run $ app_arg $ prefetch_arg $ instrs_arg $ policy_arg $ oracle_flag)

(* ------------------------------ ripple ------------------------------ *)

let ripple_cmd =
  let threshold_arg =
    Arg.(
      value
      & opt float 0.55
      & info [ "t"; "threshold" ] ~docv:"P" ~doc:"Invalidation threshold in [0,1].")
  in
  let demote_flag =
    Arg.(value & flag & info [ "demote" ] ~doc:"Inject demote hints instead of invalidations.")
  in
  let random_flag =
    Arg.(value & flag & info [ "random" ] ~doc:"Underlying hardware policy: Random (Ripple-Random).")
  in
  let run app prefetch n_instrs threshold demote random =
    let workload, eval, warmup = setup app n_instrs in
    let program = workload.W.Cfg_gen.program in
    let profile = W.Executor.run workload ~input:W.Executor.train ~n_instrs in
    let mode = if demote then Ripple_core.Injector.Demote else Ripple_core.Injector.Invalidate in
    let instrumented, analysis =
      Pipeline.instrument_with
        { Pipeline.Options.default with threshold; mode }
        ~program ~profile_trace:profile ~prefetch
    in
    Printf.printf "windows=%d decisions=%d injected=%d\n" analysis.Pipeline.n_windows
      analysis.Pipeline.n_decisions analysis.Pipeline.injection.Ripple_core.Injector.injected;
    let policy = if random then Cache.Random_policy.make ~seed:1234 else Cache.Lru.make in
    let baseline =
      Simulator.run ~warmup ~program ~trace:eval ~policy:Cache.Lru.make
        ~prefetcher:(Pipeline.prefetcher_of prefetch) ()
    in
    let ev =
      Pipeline.evaluate ~warmup ~original:program ~instrumented ~trace:eval ~policy ~prefetch ()
    in
    print_result "lru baseline" baseline;
    print_result (if random then "ripple-random" else "ripple-lru") ev.Pipeline.result;
    Printf.printf
      "speedup=%+.2f%% coverage=%.1f%% accuracy=%.1f%% static=%.2f%% dynamic=%.2f%%\n"
      (100.0 *. ((ev.Pipeline.result.Simulator.ipc /. baseline.Simulator.ipc) -. 1.0))
      (100.0 *. ev.Pipeline.coverage)
      (100.0 *. ev.Pipeline.accuracy)
      (100.0 *. ev.Pipeline.static_overhead)
      (100.0 *. ev.Pipeline.dynamic_overhead)
  in
  Cmd.v
    (Cmd.info "ripple" ~doc:"Profile, analyze, inject and evaluate Ripple on an application.")
    Term.(
      const run $ app_arg $ prefetch_arg $ instrs_arg $ threshold_arg $ demote_flag
      $ random_flag)

(* ------------------------------- sweep ------------------------------ *)

let sweep_cmd =
  let apps_arg =
    Arg.(
      value
      & opt (list app_conv) W.Apps.all
      & info [ "apps" ] ~docv:"APP,.."
          ~doc:"Applications to sweep (comma-separated; default: all nine).")
  in
  let prefetches_arg =
    Arg.(
      value
      & opt (list prefetch_conv) [ Pipeline.Fdip ]
      & info [ "p"; "prefetch" ] ~docv:"PF,.." ~doc:"Prefetchers to sweep: none, nlp, fdip.")
  in
  let policies_arg =
    Arg.(
      value
      & opt (list policy_conv) [ "lru" ]
      & info [ "policies" ] ~docv:"POLICY,.." ~doc:policy_doc)
  in
  let oracle_flag =
    Arg.(value & flag & info [ "oracle" ] ~doc:"Include the ideal-replacement bound per cell.")
  in
  let ideal_flag =
    Arg.(value & flag & info [ "ideal-cache" ] ~doc:"Include the never-miss I-cache bound.")
  in
  let thresholds_arg =
    Arg.(
      value
      & opt (list float) []
      & info [ "ripple" ] ~docv:"T,.."
          ~doc:
            "Invalidation thresholds: adds one Ripple cell per threshold (instrumented with \
             the $(b,--ripple-policy) hardware policy).")
  in
  let ripple_policy_arg =
    Arg.(
      value
      & opt policy_conv "lru"
      & info [ "ripple-policy" ] ~docv:"POLICY"
          ~doc:"Hardware policy under Ripple instrumentation (default lru).")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains (default: the runtime's recommended domain count).  Results are \
             identical for every $(docv).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write one JSON object per cell to $(docv) (JSON lines, submission order).")
  in
  let seed_arg =
    Arg.(
      value & opt int 1234 & info [ "seed" ] ~docv:"S" ~doc:"Base seed recorded in each spec.")
  in
  let quiet_flag =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress per-cell progress on stderr.")
  in
  let retries_arg =
    Arg.(
      value
      & opt int 0
      & info [ "retries" ] ~docv:"K"
          ~doc:
            "Retry a failing cell up to $(docv) times with a perturbed seed before recording \
             it as failed.")
  in
  let max_failures_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-failures" ] ~docv:"K"
          ~doc:
            "Circuit breaker: once $(docv) cells have failed, skip the rest of the sweep \
             (skipped cells are recorded as such in the JSONL output).")
  in
  let run apps prefetches policies oracle ideal thresholds ripple_policy n_instrs jobs out
      seed quiet retries max_failures =
    let specs =
      List.concat_map
        (fun (m : W.App_model.t) ->
          let app = m.W.App_model.name in
          List.concat_map
            (fun prefetch ->
              let v kind = Exp.Spec.v ~n_instrs ~seed ~prefetch ~app kind in
              List.map (fun p -> v (Exp.Spec.Policy p)) policies
              @ (if ideal then [ v Exp.Spec.Ideal_cache ] else [])
              @ (if oracle then [ v Exp.Spec.Oracle ] else [])
              @ List.map
                  (fun threshold ->
                    v (Exp.Spec.Ripple { policy = ripple_policy; threshold }))
                  thresholds)
            prefetches)
        apps
    in
    let cells = Exp.Runner.run ?jobs ~quiet ~retries ?max_failures specs in
    Exp.Report.print_summary cells;
    (match out with
    | None -> ()
    | Some path ->
      Exp.Report.write_jsonl path cells;
      Printf.printf "wrote %s (%d cells)\n" path (List.length cells));
    if List.exists (fun c -> Result.is_error (Exp.Runner.result c)) cells then exit 3
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run an experiment matrix (apps x prefetchers x policies/bounds/Ripple cells) over \
          a parallel domain pool.")
    Term.(
      const run $ apps_arg $ prefetches_arg $ policies_arg $ oracle_flag $ ideal_flag
      $ thresholds_arg $ ripple_policy_arg $ instrs_arg $ jobs_arg $ out_arg $ seed_arg
      $ quiet_flag $ retries_arg $ max_failures_arg)

(* ------------------------------- lint ------------------------------- *)

let lint_cmd =
  let module Lint = Ripple_analysis.Lint in
  let module Json = Ripple_util.Json in
  let apps_arg =
    Arg.(
      value
      & opt (list app_conv) W.Apps.all
      & info [ "apps" ] ~docv:"APP,.."
          ~doc:"Applications to lint (comma-separated; default: all nine).")
  in
  let threshold_arg =
    Arg.(
      value
      & opt float 0.55
      & info [ "t"; "threshold" ] ~docv:"P" ~doc:"Invalidation threshold in [0,1].")
  in
  let demote_flag =
    Arg.(value & flag & info [ "demote" ] ~doc:"Inject demote hints instead of invalidations.")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON object per application.")
  in
  (* Lint needs only enough profile to drive the injector; the shared
     2M-instruction default would triple the run time for no extra
     findings. *)
  let lint_instrs_arg =
    Arg.(
      value
      & opt int 500_000
      & info [ "n"; "instrs" ] ~docv:"N" ~doc:"Profile-trace length in instructions.")
  in
  let run apps prefetch threshold demote json n_instrs =
    let mode = if demote then Ripple_core.Injector.Demote else Ripple_core.Injector.Invalidate in
    let results =
      List.map
        (fun (app : W.App_model.t) ->
          let workload = W.Cfg_gen.generate app in
          let program = workload.W.Cfg_gen.program in
          let profile = W.Executor.run workload ~input:W.Executor.train ~n_instrs in
          let _instrumented, analysis =
            Pipeline.instrument_with
              { Pipeline.Options.default with threshold; mode; verify = true }
              ~program ~profile_trace:profile ~prefetch
          in
          (app.W.App_model.name, Option.get analysis.Pipeline.lint))
        apps
    in
    if json then
      List.iter
        (fun (name, s) ->
          print_endline
            (Json.to_string (Json.Obj [ ("app", Json.String name); ("lint", Lint.to_json s) ])))
        results
    else
      List.iter
        (fun (name, s) -> Format.printf "@[<v>== %s ==@,%a@]@." name Lint.pp s)
        results;
    let code =
      List.fold_left (fun acc (_, s) -> max acc (Lint.exit_code s)) 0 results
    in
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically verify application CFGs and the hints Ripple injects: structural checks, \
          reachability, and safe/harmful/redundant classification of every injected \
          invalidation.  Exit status: 0 clean, 1 warnings, 2 errors.")
    Term.(
      const run $ apps_arg $ prefetch_arg $ threshold_arg $ demote_flag $ json_flag
      $ lint_instrs_arg)

(* ------------------------------- trace ------------------------------ *)

let trace_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the encoded PT stream to $(docv).")
  in
  let run app n_instrs out =
    let workload = W.Cfg_gen.generate app in
    let trace = W.Executor.run workload ~input:W.Executor.train ~n_instrs in
    let program = workload.W.Cfg_gen.program in
    let encoded = Pt.encode program trace in
    let decoded = Pt.decode program encoded in
    assert (decoded = trace);
    Printf.printf "blocks=%d encoded=%d bytes (%.3f bytes/block), roundtrip ok\n"
      (Array.length trace) (Bytes.length encoded)
      (Float.of_int (Bytes.length encoded) /. Float.of_int (Array.length trace));
    match out with
    | None -> ()
    | Some path ->
      let oc = open_out_bin path in
      output_bytes oc encoded;
      close_out oc;
      Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Capture a PT-style trace and verify the encode/decode round trip.")
    Term.(const run $ app_arg $ instrs_arg $ out_arg)

(* ------------------------------- chaos ------------------------------ *)

let chaos_cmd =
  let module Json = Ripple_util.Json in
  let apps_arg =
    Arg.(
      value
      & opt (list app_conv) W.Apps.all
      & info [ "apps" ] ~docv:"APP,.."
          ~doc:"Applications to stress (comma-separated; default: all nine).")
  in
  let policy_arg =
    Arg.(value & opt policy_conv "lru" & info [ "policy" ] ~docv:"POLICY" ~doc:policy_doc)
  in
  let chaos_instrs_arg =
    Arg.(
      value
      & opt int 200_000
      & info [ "n"; "instrs" ] ~docv:"N" ~doc:"Trace length in instructions per cell.")
  in
  let seed_arg =
    Arg.(
      value
      & opt int 20240
      & info [ "seed" ] ~docv:"S" ~doc:"Base seed; cells derive per-(app, fault) seeds.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains (default: the runtime's recommended domain count).")
  in
  let quick_flag =
    Arg.(
      value
      & flag
      & info [ "quick" ]
          ~doc:
            "CI preset: 60k-instruction traces without a prefetcher.  Explicit $(b,--instrs) \
             / $(b,--prefetch) still win.")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the report as one JSON object on stdout.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Also write the JSON report to $(docv).")
  in
  let prefetch_opt_arg =
    Arg.(
      value
      & opt (some prefetch_conv) None
      & info [ "p"; "prefetch" ] ~docv:"PF"
          ~doc:"Prefetcher: none, nlp or fdip (default: fdip, or none under $(b,--quick)).")
  in
  let instrs_set_flag =
    (* Detect whether --instrs was given so --quick can lower the default
       without overriding an explicit request. *)
    Term.(
      const (fun n quick -> if quick && n = 200_000 then 60_000 else n)
      $ chaos_instrs_arg $ quick_flag)
  in
  let run apps policy n_instrs seed jobs quick json out prefetch =
    let prefetch =
      match prefetch with
      | Some p -> p
      | None -> if quick then Pipeline.No_prefetch else Pipeline.Fdip
    in
    let apps = List.map (fun (m : W.App_model.t) -> m.W.App_model.name) apps in
    let report = Chaos.run ~apps ~n_instrs ~seed ~prefetch ~policy ?jobs () in
    let j = Chaos.report_to_json report in
    (match out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Json.to_string j);
      output_char oc '\n';
      close_out oc);
    if json then print_endline (Json.to_string j) else Chaos.print_summary report;
    let code = Chaos.exit_code report in
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the fault-injection matrix: every application under corrupted PT streams, \
          truncated captures and profile drift, asserting no crash, bounded degradation, and \
          the never-worse-than-no-hints guarantee.  Exit status: 0 clean, 1 contract \
          violation, 2 crash.")
    Term.(
      const run $ apps_arg $ policy_arg $ instrs_set_flag $ seed_arg $ jobs_arg $ quick_flag
      $ json_flag $ out_arg $ prefetch_opt_arg)

let () =
  let info =
    Cmd.info "ripple-sim" ~version:"1.0.0"
      ~doc:"Profile-guided I-cache replacement (Ripple, ISCA 2021) simulator"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ apps_cmd; simulate_cmd; ripple_cmd; sweep_cmd; lint_cmd; trace_cmd; chaos_cmd ]))
