(* ripple-sim: command-line front end to the library.

     ripple-sim apps
     ripple-sim simulate --app cassandra --prefetch fdip --policy lru
     ripple-sim ripple   --app verilator --prefetch none --threshold 0.55
     ripple-sim sweep    --apps cassandra,kafka --prefetch none,fdip --jobs 4
     ripple-sim lint     --apps drupal --json
     ripple-sim trace    cassandra --out trace.json --metrics metrics.txt
     ripple-sim chaos    --quick --json --out chaos.json

   Everything the subcommands do is a thin composition of the public
   library API; see examples/ for the same flows in code.  Shared
   argument converters live in {!Cli_args} — one policy/prefetch/app
   vocabulary for every subcommand. *)

module W = Ripple_workloads
module Cache = Ripple_cache
module Registry = Ripple_cache.Registry
module Simulator = Ripple_cpu.Simulator
module Pipeline = Ripple_core.Pipeline
module Obs = Ripple_obs
module Pt = Ripple_trace.Pt
module Program = Ripple_isa.Program
module Exp = Ripple_exp
module Chaos = Ripple_fault.Chaos

open Cmdliner

let setup app n_instrs =
  let workload = W.Cfg_gen.generate app in
  let eval = W.Executor.run workload ~input:W.Executor.eval_inputs.(0) ~n_instrs in
  (workload, eval, Array.length eval / 2)

let print_result label (r : Simulator.result) =
  Printf.printf "%-18s ipc=%.4f mpki=%.3f misses=%d (L2 %d / L3 %d / mem %d)\n" label
    r.Simulator.ipc r.Simulator.mpki r.Simulator.demand_misses r.Simulator.served_l2
    r.Simulator.served_l3 r.Simulator.served_memory

let write_metrics path snapshot =
  Cli_args.write_text path (Obs.Snapshot.to_openmetrics snapshot);
  Printf.printf "wrote %s\n" path

(* ------------------------------- apps ------------------------------- *)

let apps_cmd =
  let run () = List.iter (fun m -> Format.printf "%a@." W.App_model.pp m) W.Apps.all in
  Cmd.v (Cmd.info "apps" ~doc:"List the nine application models.") Term.(const run $ const ())

(* ----------------------------- simulate ----------------------------- *)

let simulate_cmd =
  let oracle_flag =
    Arg.(value & flag & info [ "oracle" ] ~doc:"Also run the ideal-replacement bound.")
  in
  let run app prefetch n_instrs pname oracle =
    let workload, eval, warmup = setup app n_instrs in
    let program = workload.W.Cfg_gen.program in
    let prefetcher = Pipeline.prefetcher_of prefetch in
    let policy = Registry.factory pname in
    let r = Simulator.run ~warmup ~program ~trace:eval ~policy ~prefetcher () in
    print_result (Printf.sprintf "%s+%s" (Pipeline.prefetch_name prefetch) pname) r;
    if oracle then begin
      let o =
        Simulator.oracle ~warmup ~mode:(Pipeline.belady_mode_of prefetch) ~program ~trace:eval
          ~prefetcher ()
      in
      print_result "ideal replacement" o
    end
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run one cache/prefetcher configuration over an application.")
    Term.(
      const run $ Cli_args.app_arg $ Cli_args.prefetch_arg $ Cli_args.instrs_arg
      $ Cli_args.policy_arg $ oracle_flag)

(* ------------------------------ ripple ------------------------------ *)

let ripple_cmd =
  let demote_flag =
    Arg.(value & flag & info [ "demote" ] ~doc:"Inject demote hints instead of invalidations.")
  in
  let random_flag =
    Arg.(
      value & flag & info [ "random" ] ~doc:"Underlying hardware policy: Random (Ripple-Random).")
  in
  let run app prefetch n_instrs threshold demote random =
    let workload, eval, warmup = setup app n_instrs in
    let program = workload.W.Cfg_gen.program in
    let profile = W.Executor.run workload ~input:W.Executor.train ~n_instrs in
    let mode = if demote then Ripple_core.Injector.Demote else Ripple_core.Injector.Invalidate in
    let policy = if random then Cache.Random_policy.make ~seed:1234 else Cache.Lru.make in
    let oc =
      Pipeline.run
        {
          Pipeline.Options.default with
          threshold;
          mode;
          prefetch;
          eval = Some (Pipeline.Eval.v ~warmup ~trace:eval ~policy ());
        }
        ~source:program (Pipeline.Trace profile)
    in
    let analysis = oc.Pipeline.analysis in
    Printf.printf "windows=%d decisions=%d injected=%d\n" analysis.Pipeline.n_windows
      analysis.Pipeline.n_decisions analysis.Pipeline.injection.Ripple_core.Injector.injected;
    let baseline =
      Simulator.run ~warmup ~program ~trace:eval ~policy:Cache.Lru.make
        ~prefetcher:(Pipeline.prefetcher_of prefetch) ()
    in
    let ev = Option.get oc.Pipeline.evaluation in
    print_result "lru baseline" baseline;
    print_result (if random then "ripple-random" else "ripple-lru") ev.Pipeline.result;
    Printf.printf
      "speedup=%+.2f%% coverage=%.1f%% accuracy=%.1f%% static=%.2f%% dynamic=%.2f%%\n"
      (100.0 *. ((ev.Pipeline.result.Simulator.ipc /. baseline.Simulator.ipc) -. 1.0))
      (100.0 *. ev.Pipeline.coverage)
      (100.0 *. ev.Pipeline.accuracy)
      (100.0 *. ev.Pipeline.static_overhead)
      (100.0 *. ev.Pipeline.dynamic_overhead)
  in
  Cmd.v
    (Cmd.info "ripple" ~doc:"Profile, analyze, inject and evaluate Ripple on an application.")
    Term.(
      const run $ Cli_args.app_arg $ Cli_args.prefetch_arg $ Cli_args.instrs_arg
      $ Cli_args.threshold_arg $ demote_flag $ random_flag)

(* ------------------------------- sweep ------------------------------ *)

let sweep_cmd =
  let prefetches_arg =
    Arg.(
      value
      & opt (list Cli_args.prefetch_conv) [ Pipeline.Fdip ]
      & info [ "p"; "prefetch" ] ~docv:"PF,.." ~doc:"Prefetchers to sweep: none, nlp, fdip.")
  in
  let policies_arg =
    Arg.(
      value
      & opt (list Cli_args.policy_conv) [ "lru" ]
      & info [ "policies" ] ~docv:"POLICY,.." ~doc:Cli_args.policy_doc)
  in
  let oracle_flag =
    Arg.(value & flag & info [ "oracle" ] ~doc:"Include the ideal-replacement bound per cell.")
  in
  let ideal_flag =
    Arg.(value & flag & info [ "ideal-cache" ] ~doc:"Include the never-miss I-cache bound.")
  in
  let thresholds_arg =
    Arg.(
      value
      & opt (list float) []
      & info [ "ripple" ] ~docv:"T,.."
          ~doc:
            "Invalidation thresholds: adds one Ripple cell per threshold (instrumented with \
             the $(b,--ripple-policy) hardware policy).")
  in
  let ripple_policy_arg =
    Arg.(
      value
      & opt Cli_args.policy_conv "lru"
      & info [ "ripple-policy" ] ~docv:"POLICY"
          ~doc:"Hardware policy under Ripple instrumentation (default lru).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write one JSON object per cell to $(docv) (JSON lines, submission order).")
  in
  let seed_arg =
    Arg.(
      value & opt int 1234 & info [ "seed" ] ~docv:"S" ~doc:"Base seed recorded in each spec.")
  in
  let quiet_flag =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress per-cell progress on stderr.")
  in
  let retries_arg =
    Arg.(
      value
      & opt int 0
      & info [ "retries" ] ~docv:"K"
          ~doc:
            "Retry a failing cell up to $(docv) times with a perturbed seed before recording \
             it as failed.")
  in
  let max_failures_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-failures" ] ~docv:"K"
          ~doc:
            "Circuit breaker: once $(docv) cells have failed, skip the rest of the sweep \
             (skipped cells are recorded as such in the JSONL output).")
  in
  let run apps prefetches policies oracle ideal thresholds ripple_policy n_instrs jobs out
      metrics seed quiet retries max_failures backing sampling shards geometry =
    let config = { Ripple_cpu.Config.default with Ripple_cpu.Config.l1i = geometry } in
    let specs =
      List.concat_map
        (fun (m : W.App_model.t) ->
          let app = m.W.App_model.name in
          List.concat_map
            (fun prefetch ->
              let v kind = Exp.Spec.v ~n_instrs ~seed ~prefetch ~app kind in
              List.map (fun p -> v (Exp.Spec.Policy p)) policies
              @ (if ideal then [ v Exp.Spec.Ideal_cache ] else [])
              @ (if oracle then [ v Exp.Spec.Oracle ] else [])
              @ List.map
                  (fun threshold -> v (Exp.Spec.Ripple { policy = ripple_policy; threshold }))
                  thresholds)
            prefetches)
        apps
    in
    let cells =
      Exp.Runner.run ~config ~backing ?sampling ~shards ?jobs ~quiet ~retries ?max_failures
        specs
    in
    Exp.Report.print_summary cells;
    (match out with
    | None -> ()
    | Some path ->
      Exp.Report.write_jsonl path cells;
      Printf.printf "wrote %s (%d cells)\n" path (List.length cells));
    (match metrics with
    | None -> ()
    | Some path -> write_metrics path (Exp.Report.merged_metrics cells));
    if List.exists (fun c -> Result.is_error (Exp.Runner.result c)) cells then exit 3
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run an experiment matrix (apps x prefetchers x policies/bounds/Ripple cells) over \
          a parallel domain pool.")
    Term.(
      const run $ Cli_args.apps_arg ~verb:"sweep" $ prefetches_arg $ policies_arg $ oracle_flag
      $ ideal_flag $ thresholds_arg $ ripple_policy_arg $ Cli_args.instrs_arg $ Cli_args.jobs_arg
      $ out_arg $ Cli_args.metrics_arg $ seed_arg $ quiet_flag $ retries_arg $ max_failures_arg
      $ Cli_args.backing_arg $ Cli_args.sampling_term $ Cli_args.shards_arg
      $ Cli_args.geometry_term)

(* ------------------------------- lint ------------------------------- *)

let lint_cmd =
  let module Lint = Ripple_analysis.Lint in
  let module Json = Ripple_util.Json in
  let demote_flag =
    Arg.(value & flag & info [ "demote" ] ~doc:"Inject demote hints instead of invalidations.")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON object per application.")
  in
  (* Lint needs only enough profile to drive the injector; the shared
     2M-instruction default would triple the run time for no extra
     findings. *)
  let lint_instrs_arg =
    Arg.(
      value
      & opt int 500_000
      & info [ "n"; "instrs" ] ~docv:"N" ~doc:"Profile-trace length in instructions.")
  in
  let run apps prefetch threshold demote json n_instrs geometry metrics =
    let mode = if demote then Ripple_core.Injector.Demote else Ripple_core.Injector.Invalidate in
    let config = { Ripple_cpu.Config.default with Ripple_cpu.Config.l1i = geometry } in
    (* One observed run across all apps: a "lint" span per app (the
       verifier's per-layer child spans hang off it via the pipeline)
       and one merged metric snapshot for --metrics. *)
    let obs = Obs.Run.create () in
    let results =
      List.map
        (fun (app : W.App_model.t) ->
          let workload = W.Cfg_gen.generate app in
          let program = workload.W.Cfg_gen.program in
          let profile = W.Executor.run workload ~input:W.Executor.train ~n_instrs in
          let oc =
            Obs.Span.with_span (Obs.Run.spans obs) "lint" (fun () ->
                Pipeline.run ~obs
                  { Pipeline.Options.default with config; threshold; mode; verify = true; prefetch }
                  ~source:program (Pipeline.Trace profile))
          in
          (app.W.App_model.name, Option.get oc.Pipeline.analysis.Pipeline.lint))
        apps
    in
    if json then
      List.iter
        (fun (name, s) ->
          print_endline
            (Json.to_string (Json.Obj [ ("app", Json.String name); ("lint", Lint.to_json s) ])))
        results
    else
      List.iter (fun (name, s) -> Format.printf "@[<v>== %s ==@,%a@]@." name Lint.pp s) results;
    (match metrics with
    | None -> ()
    | Some path -> write_metrics path (Obs.Run.snapshot obs));
    let code = List.fold_left (fun acc (_, s) -> max acc (Lint.exit_code s)) 0 results in
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically verify application CFGs and the hints Ripple injects: structural checks, \
          reachability, safe/harmful/redundant classification of every injected invalidation, \
          and an abstract cache interpretation (must/may/persistence) that proves hints safe \
          or harmful, bounds the static MPKI, and cross-checks the classifiers.  Exit status: \
          0 clean, 1 warnings, 2 errors.")
    Term.(
      const run $ Cli_args.apps_arg ~verb:"lint" $ Cli_args.prefetch_arg $ Cli_args.threshold_arg
      $ demote_flag $ json_flag $ lint_instrs_arg $ Cli_args.geometry_term
      $ Cli_args.metrics_arg)

(* ------------------------------- trace ------------------------------ *)

let trace_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Write the run's Chrome trace-event JSON to $(docv) (load in chrome://tracing or \
             Perfetto).")
  in
  let pt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "pt" ] ~docv:"FILE"
          ~doc:
            "Also capture the profile as an encoded PT-style stream, verify its encode/decode \
             round trip and write it to $(docv).")
  in
  let run app prefetch n_instrs pname out metrics pt =
    let workload, eval, warmup = setup app n_instrs in
    let program = workload.W.Cfg_gen.program in
    let profile = W.Executor.run workload ~input:W.Executor.train ~n_instrs in
    (match pt with
    | None -> ()
    | Some path ->
      let encoded = Pt.encode program profile in
      let decoded = Pt.decode program encoded in
      assert (decoded = profile);
      let oc = open_out_bin path in
      output_bytes oc encoded;
      close_out oc;
      Printf.printf "pt: blocks=%d encoded=%d bytes (%.3f bytes/block), roundtrip ok -> %s\n"
        (Array.length profile) (Bytes.length encoded)
        (Float.of_int (Bytes.length encoded) /. Float.of_int (Array.length profile))
        path);
    (* The full six-stage pipeline under one observed run: verify on so
       the lint stage contributes, eval on so the simulate stage (and
       the virtual-time IPC/MPKI series) appears in the trace. *)
    let obs = Obs.Run.create () in
    let outcome =
      Pipeline.run ~obs
        {
          Pipeline.Options.default with
          verify = true;
          prefetch;
          eval = Some (Pipeline.Eval.v ~warmup ~trace:eval ~policy:(Registry.factory pname) ());
        }
        ~source:program (Pipeline.Trace profile)
    in
    let spans = Obs.Span.paths (Obs.Run.spans obs) in
    Printf.printf "spans=%d metrics=%d\n"
      (List.fold_left (fun acc (_, n) -> acc + n) 0 spans)
      (List.length outcome.Pipeline.metrics.Obs.Snapshot.metrics);
    (match outcome.Pipeline.evaluation with
    | Some ev -> print_result "instrumented" ev.Pipeline.result
    | None -> ());
    (match out with
    | None -> ()
    | Some path ->
      Obs.Export.write Obs.Export.chrome_sink ~path obs;
      Printf.printf "wrote %s\n" path);
    match metrics with
    | None -> ()
    | Some path -> write_metrics path outcome.Pipeline.metrics
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run the full pipeline over an application with observability on and export the \
          span/metric record: Chrome trace-event JSON ($(b,--out)) and OpenMetrics text \
          ($(b,--metrics)).")
    Term.(
      const run $ Cli_args.app_pos_arg $ Cli_args.prefetch_arg $ Cli_args.instrs_arg
      $ Cli_args.policy_arg $ out_arg $ Cli_args.metrics_arg $ pt_arg)

(* ------------------------------- chaos ------------------------------ *)

let chaos_cmd =
  let module Json = Ripple_util.Json in
  let chaos_instrs_arg =
    Arg.(
      value
      & opt int 200_000
      & info [ "n"; "instrs" ] ~docv:"N" ~doc:"Trace length in instructions per cell.")
  in
  let seed_arg =
    Arg.(
      value
      & opt int 20240
      & info [ "seed" ] ~docv:"S" ~doc:"Base seed; cells derive per-(app, fault) seeds.")
  in
  let quick_flag =
    Arg.(
      value
      & flag
      & info [ "quick" ]
          ~doc:
            "CI preset: 60k-instruction traces without a prefetcher.  Explicit $(b,--instrs) \
             / $(b,--prefetch) still win.")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the report as one JSON object on stdout.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Also write the JSON report to $(docv).")
  in
  let prefetch_opt_arg =
    Arg.(
      value
      & opt (some Cli_args.prefetch_conv) None
      & info [ "p"; "prefetch" ] ~docv:"PF"
          ~doc:"Prefetcher: none, nlp or fdip (default: fdip, or none under $(b,--quick)).")
  in
  let instrs_set_flag =
    (* Detect whether --instrs was given so --quick can lower the default
       without overriding an explicit request. *)
    Term.(
      const (fun n quick -> if quick && n = 200_000 then 60_000 else n)
      $ chaos_instrs_arg $ quick_flag)
  in
  let net_flag =
    Arg.(
      value
      & flag
      & info [ "net" ]
          ~doc:
            "Run the network-level matrix instead: a live serve daemon behind a seeded fault \
             proxy (torn frames, corrupted length prefixes, mid-frame disconnects, \
             duplicated and stalled frames), plus a kill -9 mid-capture recovery cell; \
             asserts every push completes and the session state is byte-equivalent to an \
             uninterrupted run.")
  in
  let run apps policy n_instrs seed jobs quick json out metrics prefetch net =
    let module Net_chaos = Ripple_fault.Net_chaos in
    if net then begin
      let app =
        match apps with
        | (m : W.App_model.t) :: _ -> m.W.App_model.name
        | [] -> "kafka"
      in
      let n_instrs = if quick && n_instrs = 200_000 then 30_000 else n_instrs in
      let timeout = if quick then 0.5 else 0.8 in
      let stall_delay = if quick then 1.2 else 2.0 in
      let report = Net_chaos.run ~app ~n_instrs ~seed ~timeout ~stall_delay () in
      let j = Net_chaos.report_to_json report in
      (match out with
      | None -> ()
      | Some path -> Cli_args.write_text path (Json.to_string j ^ "\n"));
      if json then print_endline (Json.to_string j) else Net_chaos.print_summary report;
      let code = Net_chaos.exit_code report in
      if code <> 0 then exit code
    end
    else begin
      let prefetch =
        match prefetch with
        | Some p -> p
        | None -> if quick then Pipeline.No_prefetch else Pipeline.Fdip
      in
      let apps = List.map (fun (m : W.App_model.t) -> m.W.App_model.name) apps in
      let report = Chaos.run ~apps ~n_instrs ~seed ~prefetch ~policy ?jobs () in
      let j = Chaos.report_to_json report in
      (match out with
      | None -> ()
      | Some path -> Cli_args.write_text path (Json.to_string j ^ "\n"));
      (match metrics with
      | None -> ()
      | Some path -> write_metrics path (Chaos.merged_metrics report));
      if json then print_endline (Json.to_string j) else Chaos.print_summary report;
      let code = Chaos.exit_code report in
      if code <> 0 then exit code
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the fault-injection matrix: every application under corrupted PT streams, \
          truncated captures and profile drift, asserting no crash, bounded degradation, and \
          the never-worse-than-no-hints guarantee.  With $(b,--net), stress the transport \
          instead: a live daemon behind a seeded fault proxy plus a kill -9 recovery check.  \
          Exit status: 0 clean, 1 contract violation, 2 crash.")
    Term.(
      const run $ Cli_args.apps_arg ~verb:"stress" $ Cli_args.policy_arg $ instrs_set_flag
      $ seed_arg $ Cli_args.jobs_arg $ quick_flag $ json_flag $ out_arg $ Cli_args.metrics_arg
      $ prefetch_opt_arg $ net_flag)

(* ------------------------------- serve ------------------------------ *)

let serve_cmd =
  let module Server = Ripple_serve.Server in
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")
  in
  let port_arg =
    Arg.(
      value
      & opt int 7400
      & info [ "port" ] ~docv:"PORT" ~doc:"Protocol listener port (0 picks an ephemeral one).")
  in
  let metrics_port_arg =
    Arg.(
      value
      & opt int 7401
      & info [ "metrics-port" ] ~docv:"PORT"
          ~doc:"OpenMetrics scrape port (0 picks an ephemeral one).")
  in
  let window_arg =
    Arg.(
      value
      & opt int 400_000
      & info [ "window" ] ~docv:"BLOCKS" ~doc:"Rolling-profile capacity per app, in blocks.")
  in
  let reemit_arg =
    Arg.(
      value
      & opt int 0
      & info [ "reemit-every" ] ~docv:"BLOCKS"
          ~doc:
            "Also re-emit hints mid-capture every $(docv) freshly decoded blocks (0: re-emit \
             only on flush).")
  in
  let ready_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "ready-file" ] ~docv:"FILE"
          ~doc:
            "Write \"<port> <metrics-port>\" to $(docv) once both listeners are bound — the \
             startup handshake for scripts driving ephemeral ports.")
  in
  let proven_safe_flag =
    Arg.(
      value
      & flag
      & info [ "proven-safe" ]
          ~doc:
            "Harden the degradation ladder's safe-only rung: keep only hints the abstract \
             cache analysis positively proves safe, instead of merely stripping the ones the \
             path-search classifier flags.")
  in
  let state_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Make sessions durable in $(docv): every flush writes an atomic snapshot, \
             in-flight chunks are journaled write-ahead, and a restart with the same \
             directory recovers every session — crash-only operation.")
  in
  let max_conns_arg =
    Arg.(
      value
      & opt int Server.default_config.Server.max_conns
      & info [ "max-conns" ] ~docv:"N"
          ~doc:"Shed connections beyond $(docv) open at once (answered \"overloaded\").")
  in
  let max_sessions_arg =
    Arg.(
      value
      & opt int Server.default_config.Server.max_sessions
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:"Refuse new app registrations beyond $(docv) sessions.")
  in
  let idle_timeout_arg =
    Arg.(
      value
      & opt float Server.default_config.Server.idle_timeout
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Reap connections silent for $(docv) seconds (0 disables the deadline).")
  in
  let run host port metrics_port window reemit_every threshold prefetch backing proven_safe
      ready_file state_dir max_conns max_sessions idle_timeout =
    let config =
      {
        Server.default_config with
        host;
        port;
        metrics_port;
        window;
        reemit_every;
        options =
          {
            Pipeline.Options.default with
            degrade = true;
            proven_safe;
            threshold;
            prefetch;
            backing;
          };
        ready_file;
        state_dir;
        max_conns;
        max_sessions;
        idle_timeout;
      }
    in
    Printf.printf "ripple-sim serve: %s port=%d metrics-port=%d window=%d reemit-every=%d%s\n%!"
      host port metrics_port window reemit_every
      (match state_dir with None -> "" | Some d -> " state-dir=" ^ d);
    Server.serve_forever (Server.create config)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the continuous-profiling daemon: accept chunked PT captures over a framed \
          socket protocol, maintain a rolling windowed profile per application, re-emit \
          hints through the degradation ladder as the profile drifts, and expose live \
          OpenMetrics on a scrape endpoint.  With $(b,--state-dir) the daemon is \
          crash-only: kill -9 it and a restart recovers every session from its snapshot \
          and journal; SIGTERM drains gracefully (snapshot all sessions, remove the ready \
          file, exit 0).")
    Term.(
      const run $ host_arg $ port_arg $ metrics_port_arg $ window_arg $ reemit_arg
      $ Cli_args.threshold_arg $ Cli_args.prefetch_arg $ Cli_args.backing_arg
      $ proven_safe_flag $ ready_file_arg $ state_dir_arg $ max_conns_arg $ max_sessions_arg
      $ idle_timeout_arg)

(* ------------------------------- push ------------------------------- *)

let push_cmd =
  let module Fault = Ripple_fault.Fault in
  let module Client = Ripple_serve.Client in
  let module Protocol = Ripple_serve.Protocol in
  let module Json = Ripple_util.Json in
  let host_arg =
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc:"Daemon address.")
  in
  let port_arg =
    Arg.(value & opt int 7400 & info [ "port" ] ~docv:"PORT" ~doc:"Daemon protocol port.")
  in
  let chunk_arg =
    Arg.(
      value
      & opt int 4096
      & info [ "chunk" ] ~docv:"BYTES" ~doc:"Chunk size for streaming the capture.")
  in
  let fault_conv =
    let parse = function
      | "flip-tnt" -> Ok (Fault.Flip_tnt { flips = 32 })
      | "drop-tip" -> Ok (Fault.Drop_tip { count = 8 })
      | "garbage-tip" -> Ok (Fault.Garbage_tip { count = 8 })
      | "truncate-pt" -> Ok (Fault.Truncate_pt { keep = 0.6 })
      | s -> Error (`Msg (Printf.sprintf "unknown fault %S" s))
    in
    let print fmt f = Format.fprintf fmt "%s" (Fault.name f) in
    Arg.conv (parse, print)
  in
  let fault_arg =
    Arg.(
      value
      & opt (some fault_conv) None
      & info [ "fault" ] ~docv:"FAULT"
          ~doc:
            "Corrupt the encoded capture before pushing: flip-tnt, drop-tip, garbage-tip or \
             truncate-pt (default severities).")
  in
  let seed_arg =
    Arg.(value & opt int 1234 & info [ "seed" ] ~docv:"S" ~doc:"Fault-injection seed.")
  in
  let flushes_arg =
    Arg.(
      value
      & opt int 1
      & info [ "flushes" ] ~docv:"K" ~doc:"Push the capture $(docv) times, flushing after each.")
  in
  let retries_arg =
    Arg.(
      value
      & opt int 8
      & info [ "retries" ] ~docv:"N"
          ~doc:"Attempts per capture for the resumable push (reconnect-and-resume).")
  in
  let timeout_arg =
    Arg.(
      value
      & opt float 5.0
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Socket send/receive timeout per operation.")
  in
  let v1_flag =
    Arg.(
      value
      & flag
      & info [ "v1" ]
          ~doc:
            "Use the legacy unsequenced protocol on one blocking connection (no retries, no \
             resume) instead of the sequenced at-least-once push.")
  in
  let run app host port n_instrs chunk fault seed flushes retries timeout v1 =
    let workload = W.Cfg_gen.generate app in
    let program = workload.W.Cfg_gen.program in
    let trace = W.Executor.run workload ~input:W.Executor.train ~n_instrs in
    let data = Pt.encode program trace in
    let data = match fault with None -> data | Some f -> Fault.corrupt_pt ~seed f data in
    let name = app.W.App_model.name in
    if v1 then begin
      let client = Client.connect ~host ~port () in
      let expect label = function
        | Protocol.Ok json -> json
        | Protocol.Error msg -> failwith (Printf.sprintf "push: %s failed: %s" label msg)
      in
      ignore (expect "hello" (Client.request client (Protocol.Hello name)) : Json.t);
      for _ = 1 to flushes do
        let len = Bytes.length data in
        let pos = ref 0 in
        while !pos < len do
          let n = min chunk (len - !pos) in
          ignore
            (expect "chunk" (Client.request client (Protocol.Chunk (Bytes.sub data !pos n)))
              : Json.t);
          pos := !pos + n
        done;
        let status = expect "flush" (Client.request client Protocol.Flush) in
        print_endline (Json.to_string status)
      done;
      ignore (expect "bye" (Client.request client Protocol.Bye) : Json.t);
      Client.close client
    end
    else
      for k = 1 to flushes do
        match
          Client.push_with_retries ~attempts:retries ~timeout ~seed:(seed + k) ~chunk ~host
            ~port ~app:name data
        with
        | Ok { Client.status; attempts_used } ->
          if attempts_used > 1 then
            Printf.eprintf "push: capture %d took %d attempts\n%!" k attempts_used;
          print_endline (Json.to_string status)
        | Error msg -> failwith ("push: " ^ msg)
      done
  in
  Cmd.v
    (Cmd.info "push"
       ~doc:
         "Capture an application's profile as an encoded PT stream (optionally \
          fault-injected) and stream it to a running $(b,serve) daemon in chunks, flushing \
          at the end; prints the daemon's status report per flush.  The default push is \
          resumable: sequenced frames, at-least-once delivery with server-side dedup, and \
          reconnect-and-resume with backoff on any network fault.")
    Term.(
      const run $ Cli_args.app_pos_arg $ host_arg $ port_arg $ Cli_args.instrs_arg $ chunk_arg
      $ fault_arg $ seed_arg $ flushes_arg $ retries_arg $ timeout_arg $ v1_flag)

let () =
  let info =
    Cmd.info "ripple-sim" ~version:"1.0.0"
      ~doc:"Profile-guided I-cache replacement (Ripple, ISCA 2021) simulator"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            apps_cmd;
            simulate_cmd;
            ripple_cmd;
            sweep_cmd;
            lint_cmd;
            trace_cmd;
            chaos_cmd;
            serve_cmd;
            push_cmd;
          ]))
