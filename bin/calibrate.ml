(* Calibration scratchpad: prints the headline shape numbers for a few
   app models so workload parameters can be tuned against the paper.

   The whole app x prefetcher x run matrix is submitted to the
   experiment runner in one batch (CAL_JOBS overrides the pool size), so
   calibration saturates the machine instead of replaying serially. *)

module W = Ripple_workloads
module Cache = Ripple_cache
module Cpu = Ripple_cpu
module Core = Ripple_core
module Exp = Ripple_exp

let n_instrs =
  match Sys.getenv_opt "CAL_INSTRS" with Some s -> int_of_string s | None -> 2_000_000

let jobs = Option.map int_of_string (Sys.getenv_opt "CAL_JOBS")

(* CAL_SAME_INPUT evaluates on the profiling input's own trace. *)
let input =
  if Sys.getenv_opt "CAL_SAME_INPUT" <> None then Exp.Spec.Train else Exp.Spec.Eval 0

let pct x = 100.0 *. x

let speedup ~base (r : Cpu.Simulator.result) = (r.Cpu.Simulator.ipc /. base.Cpu.Simulator.ipc) -. 1.0

let prefetches =
  [ ("none", Core.Pipeline.No_prefetch); ("nlp", Core.Pipeline.Nlp); ("fdip", Core.Pipeline.Fdip) ]

let spec_of (model : W.App_model.t) prefetch kind =
  Exp.Spec.v ~n_instrs ~input ~prefetch ~app:model.W.App_model.name kind

let kinds =
  [
    Exp.Spec.Policy "lru";
    Exp.Spec.Policy "random";
    Exp.Spec.Ideal_cache;
    Exp.Spec.Oracle;
    Exp.Spec.Policy "srrip";
    Exp.Spec.Policy "ghrp";
    Exp.Spec.Policy "hawkeye";
    Exp.Spec.Ripple { policy = "lru"; threshold = 0.5 };
  ]

let run_apps apps =
  let specs =
    List.concat_map
      (fun model ->
        List.concat_map (fun (_, pf) -> List.map (spec_of model pf) kinds) prefetches)
      apps
  in
  let cells = Exp.Runner.run ?jobs specs in
  (* A failed calibration cell invalidates the whole table; abort loudly
     with the cell that broke. *)
  let require cell =
    match Exp.Runner.result cell with
    | Ok o -> o
    | Error e ->
      failwith (Printf.sprintf "%s: %s" (Exp.Spec.to_string cell.Exp.Runner.spec) e)
  in
  let outcome model pf kind =
    require (Option.get (Exp.Runner.find cells (spec_of model pf kind)))
  in
  List.iter
    (fun (model : W.App_model.t) ->
      let w = W.Cfg_gen.generate model in
      let program = w.W.Cfg_gen.program in
      let footprint_kb = Ripple_isa.Program.static_bytes program / 1024 in
      Printf.printf "%-16s text=%dKB\n%!" model.W.App_model.name footprint_kb;
      List.iter
        (fun (pf_name, prefetch) ->
          let result kind = (outcome model prefetch kind).Exp.Runner.result in
          let lru = result (Exp.Spec.Policy "lru") in
          let rnd = result (Exp.Spec.Policy "random") in
          let ideal_cache = result Exp.Spec.Ideal_cache in
          let oracle = result Exp.Spec.Oracle in
          let srrip = result (Exp.Spec.Policy "srrip") in
          let ghrp = result (Exp.Spec.Policy "ghrp") in
          let hawkeye = result (Exp.Spec.Policy "hawkeye") in
          let ripple_o = outcome model prefetch (Exp.Spec.Ripple { policy = "lru"; threshold = 0.5 }) in
          let ripple = Option.get ripple_o.Exp.Runner.evaluation in
          let analysis = Option.get ripple_o.Exp.Runner.analysis in
          let cold =
            1000.0
            *. Float.of_int lru.Cpu.Simulator.l1i.Cache.Stats.demand_misses_cold
            /. Float.of_int lru.Cpu.Simulator.instructions
          in
          Printf.printf
            "  [%-4s] lru mpki=%5.2f (cold %4.2f) rnd %+5.2f%% | ideal$ %+6.2f%% | oracle %+5.2f%% \
             mpki=%5.2f | srrip %+5.2f%% ghrp %+5.2f%% hawk %+5.2f%%\n"
            pf_name lru.Cpu.Simulator.mpki cold
            (pct (speedup ~base:lru rnd))
            (pct (speedup ~base:lru ideal_cache))
            (pct (speedup ~base:lru oracle))
            oracle.Cpu.Simulator.mpki
            (pct (speedup ~base:lru srrip))
            (pct (speedup ~base:lru ghrp))
            (pct (speedup ~base:lru hawkeye));
          Printf.printf
            "         ripple-lru: %+5.2f%% mpki=%5.2f cov=%4.1f%% acc=%4.1f%% stat=%4.2f%% \
             dyn=%4.2f%% (%d dec, %d win)\n%!"
            (pct (speedup ~base:lru ripple.Core.Pipeline.result))
            ripple.Core.Pipeline.result.Cpu.Simulator.mpki
            (pct ripple.Core.Pipeline.coverage)
            (pct ripple.Core.Pipeline.accuracy)
            (pct ripple.Core.Pipeline.static_overhead)
            (pct ripple.Core.Pipeline.dynamic_overhead)
            analysis.Core.Pipeline.n_decisions analysis.Core.Pipeline.n_windows)
        prefetches)
    apps

let () =
  let apps =
    match Sys.getenv_opt "CAL_APPS" with
    | Some names -> List.filter_map W.Apps.by_name (String.split_on_char ',' names)
    | None -> [ W.Apps.cassandra; W.Apps.verilator; W.Apps.drupal ]
  in
  run_apps apps
