(* Calibration scratchpad: prints the headline shape numbers for a few
   app models so workload parameters can be tuned against the paper. *)

module W = Ripple_workloads
module Cache = Ripple_cache
module Cpu = Ripple_cpu
module Core = Ripple_core

let n_instrs =
  match Sys.getenv_opt "CAL_INSTRS" with Some s -> int_of_string s | None -> 2_000_000

let pct x = 100.0 *. x

let speedup ~base (r : Cpu.Simulator.result) = (r.Cpu.Simulator.ipc /. base.Cpu.Simulator.ipc) -. 1.0

let run_app model =
  let t0 = Unix.gettimeofday () in
  let w = W.Cfg_gen.generate model in
  let program = w.W.Cfg_gen.program in
  let train = W.Executor.run w ~input:W.Executor.train ~n_instrs in
  let eval =
    if Sys.getenv_opt "CAL_SAME_INPUT" <> None then train
    else W.Executor.run w ~input:W.Executor.eval_inputs.(0) ~n_instrs
  in
  let warmup = Array.length eval / 2 in
  let footprint_kb = Ripple_isa.Program.static_bytes program / 1024 in
  Printf.printf "%-16s text=%dKB trace=%d blocks (%.1fs gen)\n%!" model.W.App_model.name
    footprint_kb (Array.length eval)
    (Unix.gettimeofday () -. t0);
  let eval_run policy prefetch =
    Cpu.Simulator.run ~warmup ~program ~trace:eval ~policy
      ~prefetcher:(Core.Pipeline.prefetcher_of prefetch) ()
  in
  List.iter
    (fun (pf_name, prefetch) ->
      let lru = eval_run Cache.Lru.make prefetch in
      let rnd = eval_run (Cache.Random_policy.make ~seed:7) prefetch in
      let ideal_cache = Cpu.Simulator.ideal_cache ~warmup ~program ~trace:eval () in
      let oracle =
        Cpu.Simulator.oracle ~warmup ~mode:(Core.Pipeline.belady_mode_of prefetch) ~program
          ~trace:eval
          ~prefetcher:(Core.Pipeline.prefetcher_of prefetch) ()
      in
      let srrip = eval_run Cache.Srrip.make prefetch in
      let ghrp = eval_run (Cache.Ghrp.make ()) prefetch in
      let hawkeye = eval_run (Cache.Hawkeye.make ()) prefetch in
      let t1 = Unix.gettimeofday () in
      let instrumented, analysis =
        Core.Pipeline.instrument ~program ~profile_trace:train ~prefetch ()
      in
      let ripple =
        Core.Pipeline.evaluate ~warmup ~original:program ~instrumented ~trace:eval
          ~policy:Cache.Lru.make ~prefetch ()
      in
      let cold =
        1000.0
        *. Float.of_int lru.Cpu.Simulator.l1i.Cache.Stats.demand_misses_cold
        /. Float.of_int lru.Cpu.Simulator.instructions
      in
      Printf.printf
        "  [%-4s] lru mpki=%5.2f (cold %4.2f) rnd %+5.2f%% | ideal$ %+6.2f%% | oracle %+5.2f%% \
         mpki=%5.2f | srrip %+5.2f%% ghrp %+5.2f%% hawk %+5.2f%%\n"
        pf_name lru.Cpu.Simulator.mpki cold
        (pct (speedup ~base:lru rnd))
        (pct (speedup ~base:lru ideal_cache))
        (pct (speedup ~base:lru oracle))
        oracle.Cpu.Simulator.mpki
        (pct (speedup ~base:lru srrip))
        (pct (speedup ~base:lru ghrp))
        (pct (speedup ~base:lru hawkeye));
      Printf.printf
        "         ripple-lru: %+5.2f%% mpki=%5.2f cov=%4.1f%% acc=%4.1f%% stat=%4.2f%% \
         dyn=%4.2f%% (%d dec, %d win) %.1fs\n%!"
        (pct (speedup ~base:lru ripple.Core.Pipeline.result))
        ripple.Core.Pipeline.result.Cpu.Simulator.mpki
        (pct ripple.Core.Pipeline.coverage)
        (pct ripple.Core.Pipeline.accuracy)
        (pct ripple.Core.Pipeline.static_overhead)
        (pct ripple.Core.Pipeline.dynamic_overhead)
        analysis.Core.Pipeline.n_decisions analysis.Core.Pipeline.n_windows
        (Unix.gettimeofday () -. t1))
    [ ("none", Core.Pipeline.No_prefetch); ("nlp", Core.Pipeline.Nlp); ("fdip", Core.Pipeline.Fdip) ]

let () =
  let apps =
    match Sys.getenv_opt "CAL_APPS" with
    | Some names -> List.filter_map W.Apps.by_name (String.split_on_char ',' names)
    | None -> [ W.Apps.cassandra; W.Apps.verilator; W.Apps.drupal ]
  in
  List.iter run_app apps
