type t = {
  entry : int;
  blocks : Basic_block.t array;
  aligned : bool array;
  sorted_by_addr : Basic_block.t array; (* for block_at lookups *)
}

let user_base = 0x400000
let kernel_base = 0x4000_0000
let block_alignment = 16

let align_up addr alignment =
  let m = addr mod alignment in
  if m = 0 then addr else addr + alignment - m

(* Lay out blocks in id order: user text from user_base, kernel text from
   kernel_base.  Returns fresh block records with addr set. *)
let layout blocks aligned =
  let user_cursor = ref user_base and kernel_cursor = ref kernel_base in
  Array.mapi
    (fun i (b : Basic_block.t) ->
      let cursor =
        match b.Basic_block.privilege with
        | Basic_block.User -> user_cursor
        | Basic_block.Kernel -> kernel_cursor
      in
      if aligned.(i) then cursor := align_up !cursor block_alignment;
      let addr = !cursor in
      cursor := !cursor + b.Basic_block.bytes;
      { b with Basic_block.addr })
    blocks

let sort_by_addr blocks =
  let copy = Array.copy blocks in
  Array.sort (fun (a : Basic_block.t) b -> compare a.Basic_block.addr b.Basic_block.addr) copy;
  copy

let v ~entry blocks ~aligned =
  assert (Array.length blocks = Array.length aligned);
  Array.iteri (fun i (b : Basic_block.t) -> assert (b.Basic_block.id = i)) blocks;
  assert (entry >= 0 && entry < Array.length blocks);
  let blocks = layout blocks aligned in
  { entry; blocks; aligned; sorted_by_addr = sort_by_addr blocks }

let entry t = t.entry
let n_blocks t = Array.length t.blocks
let block t i = t.blocks.(i)
let blocks t = t.blocks
let aligned t = Array.copy t.aligned
let iter f t = Array.iter f t.blocks

let block_at t addr =
  let a = t.sorted_by_addr in
  let n = Array.length a in
  (* Greatest block with start <= addr, then check containment. *)
  let rec search lo hi =
    if lo >= hi then lo - 1
    else begin
      let mid = (lo + hi) / 2 in
      if a.(mid).Basic_block.addr <= addr then search (mid + 1) hi else search lo mid
    end
  in
  let i = search 0 n in
  if i < 0 then None
  else begin
    let b = a.(i) in
    if addr < b.Basic_block.addr + b.Basic_block.bytes then Some b else None
  end

let static_bytes t = Array.fold_left (fun acc b -> acc + Basic_block.total_bytes b) 0 t.blocks

let static_instrs t =
  Array.fold_left (fun acc b -> acc + Basic_block.total_instrs b) 0 t.blocks

let static_hints t =
  Array.fold_left (fun acc (b : Basic_block.t) -> acc + Array.length b.Basic_block.hints) 0 t.blocks

let footprint_lines t =
  let lines = Hashtbl.create 4096 in
  iter (fun b -> List.iter (fun l -> Hashtbl.replace lines l ()) (Basic_block.lines b)) t;
  Hashtbl.length lines

let with_hints t ~hints =
  assert (Array.length hints = n_blocks t);
  let rewritten =
    Array.mapi
      (fun i (b : Basic_block.t) -> { b with Basic_block.hints = Array.of_list hints.(i) })
      t.blocks
  in
  (* Injection is layout-preserving: hints are modelled as occupying the
     padding that follows their block (Basic_block.lines), so addresses
     are unchanged and the remap is the identity. *)
  let p = { t with blocks = rewritten; sorted_by_addr = sort_by_addr rewritten } in
  (p, fun addr -> addr)

(* FNV-1a over everything injection coordinates depend on: block count,
   entry, and each block's address/size/shape.  Hints are deliberately
   excluded so the fingerprint of an instrumented binary matches the
   binary it was derived from (injection is layout-preserving). *)
let layout_fingerprint t =
  let h = ref 0x811c9dc5 in
  let mix v =
    (* Fold the value in byte-wise so every bit participates; same
       32-bit FNV constants as Ripple_exp.Spec.prng_seed, masked to stay
       stable across OCaml versions and word sizes. *)
    let v = ref v in
    for _ = 0 to 7 do
      h := (!h lxor (!v land 0xFF)) * 0x01000193 land 0x3FFFFFFF;
      v := !v lsr 8
    done
  in
  mix t.entry;
  mix (Array.length t.blocks);
  Array.iter
    (fun (b : Basic_block.t) ->
      mix b.Basic_block.addr;
      mix b.Basic_block.bytes;
      mix b.Basic_block.n_instrs;
      mix
        ((match b.Basic_block.privilege with Basic_block.User -> 0 | Basic_block.Kernel -> 1)
        lor if b.Basic_block.jit then 2 else 0))
    t.blocks;
  !h

let relocate t ~line_shift =
  let delta = line_shift * Addr.line_size in
  let blocks =
    Array.map
      (fun (b : Basic_block.t) ->
        let addr = b.Basic_block.addr + delta in
        assert (addr >= 0);
        { b with Basic_block.addr })
      t.blocks
  in
  { t with blocks; sorted_by_addr = sort_by_addr blocks }

let pp_summary fmt t =
  Format.fprintf fmt "@[program: %d blocks, %d bytes, %d instrs, %d hint(s), %d lines@]"
    (n_blocks t) (static_bytes t) (static_instrs t) (static_hints t) (footprint_lines t)
