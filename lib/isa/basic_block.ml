type privilege = User | Kernel

type terminator =
  | Fallthrough of int
  | Jump of int
  | Cond of { taken : int; fallthrough : int }
  | Indirect of int array
  | Call of { callee : int; return_to : int }
  | Indirect_call of { callees : int array; return_to : int }
  | Return
  | Halt

type hint = Invalidate of Addr.line | Demote of Addr.line

let hint_line = function Invalidate l | Demote l -> l

(* lea reg, [line] + cldemote [reg]: 8 bytes, counted as one macro
   instruction for overhead purposes. *)
let hint_bytes = 8

type t = {
  id : int;
  addr : Addr.t;
  bytes : int;
  n_instrs : int;
  privilege : privilege;
  jit : bool;
  term : terminator;
  hints : hint array;
}

let total_bytes b = b.bytes + (Array.length b.hints * hint_bytes)
let total_instrs b = b.n_instrs + Array.length b.hints
let lines b = Addr.lines_of_range b.addr ~bytes:b.bytes

let successors b =
  match b.term with
  | Fallthrough next | Jump next -> [ next ]
  | Cond { taken; fallthrough } -> [ taken; fallthrough ]
  | Indirect targets -> Array.to_list targets
  | Call { callee; return_to = _ } -> [ callee ]
  | Indirect_call { callees; return_to = _ } -> Array.to_list callees
  | Return | Halt -> []

let is_conditional b = match b.term with Cond _ -> true | _ -> false

let is_indirect b =
  match b.term with Indirect _ | Indirect_call _ | Return -> true | _ -> false

let pp_term fmt = function
  | Fallthrough next -> Format.fprintf fmt "fallthrough->%d" next
  | Jump target -> Format.fprintf fmt "jmp->%d" target
  | Cond { taken; fallthrough } -> Format.fprintf fmt "cond(%d|%d)" taken fallthrough
  | Indirect targets -> Format.fprintf fmt "ijmp(%d targets)" (Array.length targets)
  | Call { callee; return_to } -> Format.fprintf fmt "call %d ret %d" callee return_to
  | Indirect_call { callees; return_to } ->
    Format.fprintf fmt "icall(%d callees) ret %d" (Array.length callees) return_to
  | Return -> Format.fprintf fmt "ret"
  | Halt -> Format.fprintf fmt "halt"

let pp fmt b =
  Format.fprintf fmt "@[bb%d@%a %dB %di%s%s %a%s@]" b.id Addr.pp b.addr b.bytes b.n_instrs
    (match b.privilege with User -> "" | Kernel -> " kernel")
    (if b.jit then " jit" else "")
    pp_term b.term
    (if Array.length b.hints = 0 then ""
     else Printf.sprintf " +%d hints" (Array.length b.hints))
