type t = int
type line = int

let line_bits = 6
let line_size = 1 lsl line_bits
let line_of addr = addr lsr line_bits
let base_of_line line = line lsl line_bits
let offset addr = addr land (line_size - 1)

let count_lines_of_range addr ~bytes =
  if bytes <= 0 then 0 else line_of (addr + bytes - 1) - line_of addr + 1

let lines_of_range addr ~bytes =
  if bytes <= 0 then []
  else begin
    let first = line_of addr and last = line_of (addr + bytes - 1) in
    let rec go l acc = if l < first then acc else go (l - 1) (l :: acc) in
    go last []
  end

let set_index line ~sets =
  assert (sets > 0 && sets land (sets - 1) = 0);
  line land (sets - 1)

let pp fmt addr = Format.fprintf fmt "0x%x" addr
let pp_line fmt line = Format.fprintf fmt "L:0x%x" (base_of_line line)
