(** Basic blocks: the unit of Ripple's analysis and injection.

    A basic block is a maximal straight-line instruction sequence ended by
    a single control transfer.  Blocks carry the metadata Ripple needs:
    byte size (to enumerate touched I-cache lines), instruction count (for
    static/dynamic overhead accounting), privilege level (user vs. kernel
    code, §IV "Trace collection"), a JIT flag (HHVM-style applications
    re-use instruction addresses for just-in-time compiled code, which
    defeats link-time injection — §IV "Replacement-Coverage"), and any
    invalidation hints injected by Ripple. *)

type privilege = User | Kernel

type terminator =
  | Fallthrough of int  (** unconditional fall-through to block id *)
  | Jump of int  (** direct unconditional jump *)
  | Cond of { taken : int; fallthrough : int }  (** conditional branch *)
  | Indirect of int array  (** indirect jump; the static target set *)
  | Call of { callee : int; return_to : int }  (** direct call *)
  | Indirect_call of { callees : int array; return_to : int }
  | Return
  | Halt  (** end of simulated execution *)

type hint =
  | Invalidate of Addr.line
      (** The paper's proposed [invalidate] instruction: drop the line
          from the local L1 I-cache only, no coherence traffic. *)
  | Demote of Addr.line
      (** §IV "Invalidation vs. reducing LRU priority": move the line to
          the eviction-first position of the underlying policy instead of
          invalidating it outright. *)

val hint_line : hint -> Addr.line
(** The cache line a hint operates on. *)

val hint_bytes : int
(** Encoded size of one injected hint instruction (address formation plus
    a CLDemote-class opcode). *)

type t = {
  id : int;  (** dense index into the owning program *)
  addr : Addr.t;  (** start address assigned by layout *)
  bytes : int;  (** original code bytes, excluding injected hints *)
  n_instrs : int;  (** original instruction count *)
  privilege : privilege;
  jit : bool;
  term : terminator;
  hints : hint array;  (** Ripple-injected hints, empty before injection *)
}

val total_bytes : t -> int
(** Code bytes including injected hints.  Reported as static footprint
    (Fig. 11); it does not affect addressing — see {!lines}. *)

val total_instrs : t -> int
(** Instruction count including injected hints. *)

val lines : t -> Addr.line list
(** Ordered I-cache lines touched when the block executes.  Injection is
    modelled as layout-preserving — hint instructions are assumed to be
    placed in the alignment padding that follows the block, so they do
    not shift downstream addresses or line/set mappings (DESIGN.md
    records this simplification; their execution cost and static size
    are still charged). *)

val successors : t -> int list
(** All statically-known successor block ids ([Return] and [Halt] have
    none; returns are resolved dynamically via the call stack). *)

val is_conditional : t -> bool
val is_indirect : t -> bool
(** Whether the terminator's target is resolved indirectly (indirect
    jumps/calls and returns) — the hard-to-prefetch cases for a
    branch-predictor-guided prefetcher (§II-C, Observation #2). *)

val pp : Format.formatter -> t -> unit
