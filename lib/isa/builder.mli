(** Imperative program builder.

    Used by tests, examples and the synthetic CFG generator to assemble a
    {!Program.t}.  Blocks are allocated with fresh dense ids; terminators
    may be patched after allocation so forward control-flow edges can be
    expressed naturally. *)

type t

val create : unit -> t

val block :
  t ->
  ?privilege:Basic_block.privilege ->
  ?jit:bool ->
  ?aligned:bool ->
  ?n_instrs:int ->
  bytes:int ->
  term:Basic_block.terminator ->
  unit ->
  int
(** Allocates a block and returns its id.  [bytes] is the code size;
    [n_instrs] defaults to [max 1 (bytes / 4)] (a 4-byte mean instruction,
    x86-ish).  [aligned] marks a function entry for 16-byte alignment. *)

val set_term : t -> int -> Basic_block.terminator -> unit
(** Patches the terminator of an already-allocated block. *)

val n_blocks : t -> int

val straight_line : t -> ?privilege:Basic_block.privilege -> ?jit:bool -> bytes_per_block:int -> n:int -> unit -> int * int
(** [straight_line b ~bytes_per_block ~n ()] allocates a chain of [n]
    fall-through blocks and returns [(first_id, last_id)].  The last block
    gets a placeholder [Halt] terminator the caller should patch. *)

val finish : t -> entry:int -> Program.t
(** Lays out and freezes the program.  Every terminator target must be a
    valid allocated block id. *)
