type proto = {
  mutable term : Basic_block.terminator;
  bytes : int;
  n_instrs : int;
  privilege : Basic_block.privilege;
  jit : bool;
  aligned : bool;
}

type t = { mutable protos : proto array; mutable count : int }

let create () = { protos = [||]; count = 0 }

let grow t =
  let capacity = Array.length t.protos in
  if t.count = capacity then begin
    let fresh =
      Array.make
        (max 16 (2 * capacity))
        {
          term = Basic_block.Halt;
          bytes = 1;
          n_instrs = 1;
          privilege = Basic_block.User;
          jit = false;
          aligned = false;
        }
    in
    Array.blit t.protos 0 fresh 0 capacity;
    t.protos <- fresh
  end

let block t ?(privilege = Basic_block.User) ?(jit = false) ?(aligned = false) ?n_instrs ~bytes
    ~term () =
  assert (bytes > 0);
  let n_instrs = match n_instrs with Some n -> n | None -> max 1 (bytes / 4) in
  grow t;
  let id = t.count in
  t.protos.(id) <- { term; bytes; n_instrs; privilege; jit; aligned };
  t.count <- t.count + 1;
  id

let set_term t id term =
  assert (id >= 0 && id < t.count);
  t.protos.(id).term <- term

let n_blocks t = t.count

let straight_line t ?(privilege = Basic_block.User) ?(jit = false) ~bytes_per_block ~n () =
  assert (n > 0);
  let first = t.count in
  for i = 0 to n - 1 do
    let term =
      if i = n - 1 then Basic_block.Halt else Basic_block.Fallthrough (t.count + 1)
    in
    ignore (block t ~privilege ~jit ~bytes:bytes_per_block ~term ())
  done;
  (first, t.count - 1)

let check_target n id = assert (id >= 0 && id < n)

let check_term n = function
  | Basic_block.Fallthrough target | Basic_block.Jump target -> check_target n target
  | Basic_block.Cond { taken; fallthrough } ->
    check_target n taken;
    check_target n fallthrough
  | Basic_block.Indirect targets -> Array.iter (check_target n) targets
  | Basic_block.Call { callee; return_to } ->
    check_target n callee;
    check_target n return_to
  | Basic_block.Indirect_call { callees; return_to } ->
    Array.iter (check_target n) callees;
    check_target n return_to
  | Basic_block.Return | Basic_block.Halt -> ()

let finish t ~entry =
  let protos = Array.init t.count (fun i -> t.protos.(i)) in
  let n = Array.length protos in
  Array.iter (fun p -> check_term n p.term) protos;
  let blocks =
    Array.mapi
      (fun id p ->
        {
          Basic_block.id;
          addr = 0;
          bytes = p.bytes;
          n_instrs = p.n_instrs;
          privilege = p.privilege;
          jit = p.jit;
          term = p.term;
          hints = [||];
        })
      protos
  in
  let aligned = Array.map (fun p -> p.aligned) protos in
  Program.v ~entry blocks ~aligned
