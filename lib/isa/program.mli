(** Whole-program representation: the "binary" Ripple profiles and
    rewrites.

    A program is a dense array of {!Basic_block.t} laid out in two
    contiguous address regions (user and kernel text).  Hint injection
    ({!with_hints}) is modelled as layout-preserving: the injected
    instructions are assumed to land in the alignment padding after
    their block, so line/set mappings are stable across injection (the
    remapper returned for API symmetry is the identity).  Their static
    size is still reported ({!static_bytes}, Fig. 11) and their dynamic
    execution is charged by the simulator. *)

type t

val user_base : Addr.t
(** Start of the user text region. *)

val kernel_base : Addr.t
(** Start of the kernel text region. *)

val block_alignment : int
(** Blocks are packed; blocks flagged as function entries by the builder
    are aligned to this many bytes. *)

val v : entry:int -> Basic_block.t array -> aligned:bool array -> t
(** [v ~entry blocks ~aligned] lays the blocks out (user region first,
    then kernel), assigning addresses in id order.  [blocks.(i).id] must
    equal [i]; the [addr] fields are overwritten by layout.  [aligned.(i)]
    requests {!block_alignment} for block [i]. *)

val entry : t -> int
val n_blocks : t -> int
val block : t -> int -> Basic_block.t
val blocks : t -> Basic_block.t array
(** The underlying array; treat as read-only. *)

val aligned : t -> bool array
(** Per-block alignment requests as passed to {!v} (a fresh copy).
    Blocks with the flag set must sit on {!block_alignment}-byte
    addresses — the layout invariant the static verifier
    ({!Ripple_analysis.Lint}) re-checks. *)

val iter : (Basic_block.t -> unit) -> t -> unit

val block_at : t -> Addr.t -> Basic_block.t option
(** Block whose byte range contains the address (used by the PT decoder
    to resolve TIP packets).  Logarithmic in the number of blocks. *)

val static_bytes : t -> int
(** Total code bytes including injected hints. *)

val static_instrs : t -> int
(** Total static instructions including injected hints. *)

val static_hints : t -> int
(** Total injected hint instructions. *)

val footprint_lines : t -> int
(** Number of distinct I-cache lines the whole text occupies. *)

val layout_fingerprint : t -> int
(** FNV-1a hash of the layout every injected line operand depends on:
    entry, block count, and each block's (address, bytes, instruction
    count, privilege, JIT flag).  Injected hints are excluded, so an
    instrumented binary fingerprints identically to the binary its
    profile was collected on.  This is the artifact {!Ripple_core.Pipeline}
    stores with a profile and re-checks before applying stale hints: a
    rebuild that moves code produces a different fingerprint. *)

val relocate : t -> line_shift:int -> t
(** [relocate t ~line_shift] shifts every block address by
    [line_shift * Addr.line_size] bytes — the layout drift of a rebuild
    that inserts or removes whole cache lines of code upstream.  Block
    ids, sizes and control flow are unchanged; only the line/set mapping
    (and hence {!layout_fingerprint}) moves.  Used by the fault-injection
    harness to collect profiles on a layout the evaluated binary no
    longer has. *)

val with_hints : t -> hints:Basic_block.hint list array -> t * (Addr.t -> Addr.t)
(** [with_hints p ~hints] returns a program in which block [i] carries
    [hints.(i)], plus the (identity) old→new address remapper — see the
    module comment on layout preservation. *)

val pp_summary : Format.formatter -> t -> unit
