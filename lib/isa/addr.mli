(** Byte addresses and I-cache line arithmetic.

    Addresses are plain non-negative [int]s (63-bit on 64-bit OCaml, ample
    for the simulated address space).  A cache line is 64 bytes, matching
    the Haswell configuration of the paper's Table II; the line abstraction
    is what every cache-side component speaks. *)

type t = int
(** A byte address. *)

type line = int
(** A cache-line number: [addr / line_size].  Lines are totally ordered
    and hashable, and are the unit of I-cache allocation, eviction and
    invalidation. *)

val line_size : int
(** Bytes per cache line (64). *)

val line_bits : int
(** [log2 line_size]. *)

val line_of : t -> line
(** Line containing a byte address. *)

val base_of_line : line -> t
(** First byte address of a line. *)

val offset : t -> int
(** Byte offset within the containing line. *)

val lines_of_range : t -> bytes:int -> line list
(** [lines_of_range addr ~bytes] is the ordered list of lines touched by
    the byte range [[addr, addr+bytes)].  Empty when [bytes <= 0]. *)

val count_lines_of_range : t -> bytes:int -> int
(** Number of lines in the range, without allocating. *)

val set_index : line -> sets:int -> int
(** [set_index line ~sets] maps a line to a cache set by the usual
    modulo indexing.  Requires [sets] to be a power of two. *)

val pp : Format.formatter -> t -> unit
(** Hexadecimal rendering, e.g. [0x401a40]. *)

val pp_line : Format.formatter -> line -> unit
(** Renders the line's base address, e.g. [L:0x401a40]. *)
