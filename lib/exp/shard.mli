(** Per-set sharded Belady replay.

    Cache sets are independent under ideal replacement: an access to set
    [s] never changes the state of set [t].  So the replay partitions
    the set index space into contiguous ranges, replays each range as
    its own pool job over the shared (read-only) lookahead tables, and
    reassembles the full result with {!Ripple_cache.Belady.merge} —
    byte-identical to the unsharded replay at any shard count, because
    every eviction and fill carries its global stream position.

    Sharding parallelizes {e within} one (large) cell; it composes with
    the sweep-level pool ({!Runner.run}), but running both wide at once
    oversubscribes the machine — shard big single cells, pool small
    ones. *)

module Config := Ripple_cpu.Config
module Simulator := Ripple_cpu.Simulator
module Belady := Ripple_cache.Belady
module Access_stream := Ripple_cache.Access_stream

val ranges : sets:int -> shards:int -> (int * int) array
(** The contiguous [\[lo, hi)] set ranges [shards] shards cover
    ([shards] clamped to [1 .. sets]); exposed for tests. *)

val replay :
  ?config:Config.t ->
  ?shards:int ->
  ?backing:Ripple_util.Int_stream.backing ->
  ?count_from:int ->
  ?record_evictions:bool ->
  mode:Belady.mode ->
  Access_stream.t ->
  Belady.result
(** The sharded ideal-policy replay itself, fills recorded ([shards]
    defaults to 2; [backing] places the shared lookahead tables;
    [count_from] is the first counted stream index and
    [record_evictions] (default [true]) whether boxed eviction records
    are kept, as in {!Ripple_cache.Belady.simulate}).  Raises [Failure]
    if a shard job dies. *)

val oracle :
  ?config:Config.t ->
  ?shards:int ->
  ?backing:Ripple_util.Int_stream.backing ->
  ?warmup:int ->
  stream:Access_stream.t * int array ->
  mode:Belady.mode ->
  program:Ripple_isa.Program.t ->
  trace:int array ->
  prefetcher:(Ripple_isa.Program.t -> Ripple_prefetch.Prefetcher.t) ->
  unit ->
  Simulator.result
(** {!Ripple_cpu.Simulator.oracle} with the Belady pass sharded: replay
    per set range, merge, then replay the recorded fill sequence through
    the L2/L3 hierarchy — the same result the unsharded oracle
    produces, at any shard count. *)
