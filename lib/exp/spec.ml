module Pipeline = Ripple_core.Pipeline
module Json = Ripple_util.Json

type input = Eval of int | Train

type kind =
  | Policy of string
  | Ideal_cache
  | Oracle
  | Ripple of { policy : string; threshold : float }

type t = {
  app : string;
  n_instrs : int;
  seed : int;
  input : input;
  prefetch : Pipeline.prefetch;
  kind : kind;
}

let v ?(n_instrs = 2_000_000) ?(seed = 1234) ?(input = Eval 0) ?(prefetch = Pipeline.Fdip)
    ~app kind =
  { app; n_instrs; seed; input; prefetch; kind }

let kind_name = function
  | Policy p -> p
  | Ideal_cache -> "ideal-cache"
  | Oracle -> "oracle"
  | Ripple { policy; threshold } -> Printf.sprintf "ripple:%s@%g" policy threshold

let input_name = function Eval i -> Printf.sprintf "eval%d" i | Train -> "train"

let to_string t =
  Printf.sprintf "%s/%s/%s/n=%d/i=%s/s=%d" t.app
    (Pipeline.prefetch_name t.prefetch)
    (kind_name t.kind) t.n_instrs (input_name t.input) t.seed

let compare a b = Stdlib.compare (to_string a) (to_string b)
let equal a b = compare a b = 0

let policy_name t =
  match t.kind with
  | Policy p -> Some p
  | Ripple { policy; _ } -> Some policy
  | Ideal_cache | Oracle -> None

let threshold t = match t.kind with Ripple { threshold; _ } -> Some threshold | _ -> None

(* FNV-1a over the cell key: stable across runs and OCaml versions
   (unlike [Hashtbl.hash], which is documented only per-process). *)
let prng_seed t =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0x3FFFFFFF)
    (to_string t);
  !h

(* Seed used for retry attempt [attempt] of a cell (attempt 0 is the
   spec's own seed): a large odd stride keeps perturbed seeds disjoint
   across neighbouring base seeds for any plausible retry budget. *)
let perturb_seed seed ~attempt = seed + (attempt * 1_000_003)

let to_fields t =
  [
    ("spec", Json.String (to_string t));
    ("app", Json.String t.app);
    ("prefetch", Json.String (Pipeline.prefetch_name t.prefetch));
    ("kind", Json.String (kind_name t.kind));
    ("policy", match policy_name t with Some p -> Json.String p | None -> Json.Null);
    ("threshold", match threshold t with Some x -> Json.Float x | None -> Json.Null);
    ("instrs", Json.Int t.n_instrs);
    ("input", Json.String (input_name t.input));
    ("seed", Json.Int t.seed);
  ]

let to_json t = Json.Obj (to_fields t)
