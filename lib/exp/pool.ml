let default_jobs () = Domain.recommended_domain_count ()

let guarded f x =
  match f x with
  | v -> Ok v
  | exception e ->
    let bt = Printexc.get_backtrace () in
    Error
      (Printexc.to_string e ^ if String.trim bt = "" then "" else "\n" ^ String.trim bt)

let run ?jobs ?(stop = fun () -> false) ~f items =
  let n = Array.length items in
  let jobs = max 1 (min (match jobs with Some j -> j | None -> default_jobs ()) (max 1 n)) in
  if n = 0 then [||]
  else begin
    (* Slots are written at most once, each by the single domain that
       claimed the index, then read only after every worker has been
       joined — no two domains ever race on a slot.  [stop] is polled
       once per claim: items claimed after it trips stay [None]. *)
    let results = Array.make n None in
    if jobs = 1 then
      for i = 0 to n - 1 do
        if not (stop ()) then results.(i) <- Some (guarded f items.(i))
      done
    else begin
      let cursor = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add cursor 1 in
          if i < n then begin
            if not (stop ()) then results.(i) <- Some (guarded f items.(i));
            loop ()
          end
        in
        loop ()
      in
      let domains = Array.init jobs (fun _ -> Domain.spawn worker) in
      Array.iter Domain.join domains
    end;
    results
  end
