let default_jobs () = Domain.recommended_domain_count ()

let guarded f x =
  match f x with
  | v -> Ok v
  | exception e ->
    let bt = Printexc.get_backtrace () in
    Error
      (Printexc.to_string e ^ if String.trim bt = "" then "" else "\n" ^ String.trim bt)

let run ?jobs ~f items =
  let n = Array.length items in
  let jobs = max 1 (min (match jobs with Some j -> j | None -> default_jobs ()) (max 1 n)) in
  if n = 0 then [||]
  else if jobs = 1 then Array.map (guarded f) items
  else begin
    (* Slots are written at most once, each by the single domain that
       claimed the index, then read only after every worker has been
       joined — no two domains ever race on a slot. *)
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          results.(i) <- Some (guarded f items.(i));
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init jobs (fun _ -> Domain.spawn worker) in
    Array.iter Domain.join domains;
    Array.map (function Some r -> r | None -> assert false) results
  end
