(** Executes experiment specs over the domain pool.

    [run] is the system's one entry point for sweeps: the bench, the
    CLI's [sweep] subcommand and the calibration tool all submit
    {!Spec.t} lists here instead of looping inline.

    Determinism: a cell's outcome is a pure function of its spec —
    workload generation and trace execution are deterministic in
    [(app, input, n_instrs)], stochastic policies are seeded from
    {!Spec.prng_seed}, and domains share no mutable state (each worker
    keeps its own workload/trace memo in [Domain.DLS]).  Results are
    returned in submission order regardless of completion order, so
    [run ~jobs:1] and [run ~jobs:n] produce identical cell lists,
    byte-for-byte once rendered by {!Report}.

    Isolation: a cell that raises is recorded as [Error] (message and
    backtrace) in its slot; the rest of the sweep completes.  Per-cell
    wall-clock timing and progress go to [stderr] (suppress with
    [~quiet:true]); timing never appears in machine-readable output. *)

module Config := Ripple_cpu.Config
module Simulator := Ripple_cpu.Simulator
module Pipeline := Ripple_core.Pipeline

type outcome = {
  result : Simulator.result;
  evaluation : Pipeline.evaluation option;  (** Ripple cells only *)
  analysis : Pipeline.analysis option;  (** Ripple cells only *)
}

type gc_stats = {
  allocated_words : float;
      (** words allocated by the worker domain while the cell ran
          (minor + major - promoted, so nothing is double-counted) *)
  minor_words : float;
  major_words : float;
  top_heap_words : int;  (** process top-heap watermark after the cell *)
}

type cell = {
  spec : Spec.t;
  outcome : (outcome, string) result;
  elapsed : float;  (** seconds, wall clock — diagnostic, not reported *)
  gc : gc_stats;
      (** allocation profile of the run — diagnostic; only rendered when
          {!Report} is asked for it, since the numbers depend on memo
          warm-up and domain scheduling, not on the spec alone *)
}

val run_spec : ?config:Config.t -> Spec.t -> outcome
(** Executes one cell in the calling domain.
    @raise Invalid_argument on an unknown app or policy name. *)

val run : ?config:Config.t -> ?jobs:int -> ?quiet:bool -> Spec.t list -> cell list
(** Fans the specs out over {!Pool.run}.  [jobs] defaults to
    {!Pool.default_jobs}; [quiet] (default false) silences the
    per-cell progress lines on [stderr]. *)

val find : cell list -> Spec.t -> cell option
(** Lookup by spec ({!Spec.equal}). *)

val ok_exn : cell -> outcome
(** The outcome of a cell that must have succeeded.
    @raise Failure with the cell key and error otherwise. *)
