(** Executes experiment specs over the domain pool.

    [run] is the system's one entry point for sweeps: the bench, the
    CLI's [sweep] subcommand and the calibration tool all submit
    {!Spec.t} lists here instead of looping inline.

    Determinism: a cell's outcome is a pure function of its spec —
    workload generation and trace execution are deterministic in
    [(app, input, n_instrs)], stochastic policies are seeded from
    {!Spec.prng_seed}, and domains share no mutable state (each worker
    keeps its own workload/trace memo in [Domain.DLS]).  Results are
    returned in submission order regardless of completion order, so
    [run ~jobs:1] and [run ~jobs:n] produce identical cell lists,
    byte-for-byte once rendered by {!Report}.

    Isolation: a cell that raises is recorded as [Failed] (message and
    backtrace) in its slot; the rest of the sweep completes.  [retries]
    reruns a failing cell with a perturbed seed before giving up, and
    [max_failures] is a circuit breaker that skips the remainder of a
    sweep drowning in failures.  Per-cell wall-clock timing and progress
    go to [stderr] (suppress with [~quiet:true]); timing never appears
    in machine-readable output. *)

module Config := Ripple_cpu.Config
module Simulator := Ripple_cpu.Simulator
module Pipeline := Ripple_core.Pipeline

type outcome = {
  result : Simulator.result;
  evaluation : Pipeline.evaluation option;  (** Ripple cells only *)
  analysis : Pipeline.analysis option;  (** Ripple cells only *)
  metrics : Ripple_obs.Snapshot.t;
      (** deterministic metric snapshot of the cell's private
          observability context — values and span structure only, no
          durations, so JSONL rows stay identical across pool sizes *)
}

type gc_stats = {
  allocated_words : float;
      (** words allocated by the worker domain while the cell ran
          (minor + major - promoted, so nothing is double-counted) *)
  minor_words : float;
  major_words : float;
  top_heap_words : int;  (** process top-heap watermark after the cell *)
}

type failure = {
  message : string;  (** printed exception of the final attempt *)
  backtrace : string;  (** empty when backtrace recording is off *)
}

(** How a cell ended: completed, failed every attempt, or skipped
    because the sweep's circuit breaker had already tripped. *)
type status = Done of outcome | Failed of failure | Skipped of string

type cell = {
  spec : Spec.t;
  status : status;
  elapsed : float;  (** seconds, wall clock — diagnostic, not reported *)
  gc : gc_stats;
      (** allocation profile of the run — diagnostic; only rendered when
          {!Report} is asked for it, since the numbers depend on memo
          warm-up and domain scheduling, not on the spec alone *)
  attempts : int;  (** executions of the cell, [1] unless retried *)
}

val result : cell -> (outcome, string) result
(** The cell's outcome as a result: [Failed] and [Skipped] collapse to
    [Error] with a printable reason. *)

val run_spec :
  ?config:Config.t ->
  ?backing:Ripple_util.Int_stream.backing ->
  ?sampling:Simulator.Sampling.t ->
  ?shards:int ->
  Spec.t ->
  outcome
(** Executes one cell in the calling domain.

    [backing] (default [Heap]) places recorded access streams and Belady
    working tables; [Spill] keeps them in unlinked mmap files, shrinking
    the heap of oracle and Ripple cells to O(windows).  [sampling]
    switches policy and Ripple evaluation runs to sampled execution
    ({!Ripple_cpu.Simulator.Sampling}).  [shards > 1] runs oracle cells'
    Belady replay sharded by cache set ({!Shard}).  All three knobs are
    representation/execution choices, not experiment parameters: results
    are byte-identical across backings and shard counts, and
    deterministic in the sampling spec.
    @raise Invalid_argument on an unknown app or policy name. *)

val run :
  ?config:Config.t ->
  ?backing:Ripple_util.Int_stream.backing ->
  ?sampling:Simulator.Sampling.t ->
  ?shards:int ->
  ?jobs:int ->
  ?quiet:bool ->
  ?retries:int ->
  ?max_failures:int ->
  Spec.t list ->
  cell list
(** Fans the specs out over {!Pool.run}.  [jobs] defaults to
    {!Pool.default_jobs}; [quiet] (default false) silences the per-cell
    progress lines on [stderr].  A cell that raises is retried up to
    [retries] times (default 0) with {!Spec.perturb_seed}ed seeds — the
    emitted cell keeps the original spec and records the attempt count.
    After [max_failures] cells have failed (all retries exhausted), the
    breaker trips and unstarted cells come back [Skipped]; cells
    actually run are deterministic per spec regardless of [jobs], but
    which cells a tripped breaker still lets through is
    scheduling-dependent when [jobs > 1]. *)

val find : cell list -> Spec.t -> cell option
(** Lookup by spec ({!Spec.equal}). *)
