(** Deterministic rendering of sweep results.

    JSONL: one object per cell, in submission order, with the spec
    fields inlined — diffable across PRs and across [--jobs] settings.
    A line carries ["status": "ok"] with the result payload, or
    ["status": "error"] with the message; wall-clock timing is
    deliberately excluded (it is the one nondeterministic observable),
    so the same spec list renders byte-identically at any pool size. *)

val cell_to_json : ?gc:bool -> Runner.cell -> Ripple_util.Json.t
(** [gc] (default [false]) appends the cell's {!Runner.gc_stats} as a
    ["gc"] object.  Off by default because allocation totals depend on
    memo warm-up and domain scheduling — with it off, the same spec
    list renders byte-identically at any pool size; turn it on for
    memory diagnostics (the bench's smoke target does). *)

val merged_metrics : Runner.cell list -> Ripple_obs.Snapshot.t
(** All completed cells' metric snapshots folded together
    ({!Ripple_obs.Snapshot.merge}) in submission order — deterministic
    across pool sizes.  Failed and skipped cells contribute nothing. *)

val to_jsonl : ?gc:bool -> Runner.cell list -> string
(** One [cell_to_json] per line, ["\n"]-terminated. *)

val write_jsonl : ?gc:bool -> string -> Runner.cell list -> unit
(** [write_jsonl path cells] writes {!to_jsonl} to [path], creating
    missing parent directories and writing atomically (temp file in the
    destination directory, fsynced before the rename), so readers never
    observe a partial file and an interrupted run — or a crash straddling
    the rename — never clobbers a previous complete one.  The temp file
    is removed on any failure. *)

val print_summary : Runner.cell list -> unit
(** Human-readable per-cell table (IPC, MPKI, misses, Ripple coverage /
    accuracy when present) on stdout, errors flagged inline. *)
