(** Deterministic rendering of sweep results.

    JSONL: one object per cell, in submission order, with the spec
    fields inlined — diffable across PRs and across [--jobs] settings.
    A line carries ["status": "ok"] with the result payload, or
    ["status": "error"] with the message; wall-clock timing is
    deliberately excluded (it is the one nondeterministic observable),
    so the same spec list renders byte-identically at any pool size. *)

val cell_to_json : Runner.cell -> Ripple_util.Json.t

val to_jsonl : Runner.cell list -> string
(** One [cell_to_json] per line, ["\n"]-terminated. *)

val write_jsonl : string -> Runner.cell list -> unit
(** [write_jsonl path cells] writes {!to_jsonl} to [path]. *)

val print_summary : Runner.cell list -> unit
(** Human-readable per-cell table (IPC, MPKI, misses, Ripple coverage /
    accuracy when present) on stdout, errors flagged inline. *)
