module W = Ripple_workloads
module Registry = Ripple_cache.Registry
module Config = Ripple_cpu.Config
module Simulator = Ripple_cpu.Simulator
module Pipeline = Ripple_core.Pipeline

type outcome = {
  result : Simulator.result;
  evaluation : Pipeline.evaluation option;
  analysis : Pipeline.analysis option;
}

type cell = { spec : Spec.t; outcome : (outcome, string) result; elapsed : float }

(* ---------------------- per-domain workload memo --------------------- *)

(* Workload generation and trace execution are deterministic, so caching
   them is purely an optimisation; each domain owns a private memo (DLS),
   which keeps the cross-domain state immutable without a lock.  A
   domain running several cells of the same app regenerates nothing. *)

type memo = {
  workloads : (string, W.Cfg_gen.t) Hashtbl.t;
  traces : (string * int * string, int array) Hashtbl.t;
}

let memo_key : memo Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { workloads = Hashtbl.create 8; traces = Hashtbl.create 16 })

let workload_of app =
  let memo = Domain.DLS.get memo_key in
  match Hashtbl.find_opt memo.workloads app with
  | Some w -> w
  | None ->
    let model =
      match W.Apps.by_name app with
      | Some m -> m
      | None ->
        invalid_arg
          (Printf.sprintf "Runner: unknown application %S (known: %s)" app
             (String.concat ", " (List.map (fun m -> m.W.App_model.name) W.Apps.all)))
    in
    let w = W.Cfg_gen.generate model in
    Hashtbl.add memo.workloads app w;
    w

let executor_input = function
  | Spec.Train -> W.Executor.train
  | Spec.Eval i ->
    if i < 0 || i >= Array.length W.Executor.eval_inputs then
      invalid_arg (Printf.sprintf "Runner: no evaluation input #%d" i);
    W.Executor.eval_inputs.(i)

let trace_of app ~n_instrs (input : Spec.input) =
  let memo = Domain.DLS.get memo_key in
  let input = executor_input input in
  let key = (app, n_instrs, input.W.Executor.label) in
  match Hashtbl.find_opt memo.traces key with
  | Some t -> t
  | None ->
    let t = W.Executor.run (workload_of app) ~input ~n_instrs in
    Hashtbl.add memo.traces key t;
    t

(* ----------------------------- one cell ------------------------------ *)

let run_spec ?(config = Config.default) (spec : Spec.t) =
  let workload = workload_of spec.Spec.app in
  let program = workload.W.Cfg_gen.program in
  let eval = trace_of spec.Spec.app ~n_instrs:spec.Spec.n_instrs spec.Spec.input in
  let warmup = Array.length eval / 2 in
  let prefetch = spec.Spec.prefetch in
  let prefetcher = Pipeline.prefetcher_of ~config prefetch in
  let policy_of name = (Registry.find_exn name).Registry.factory ~seed:(Spec.prng_seed spec) in
  match spec.Spec.kind with
  | Spec.Policy name ->
    let result =
      Simulator.run ~config ~warmup ~program ~trace:eval ~policy:(policy_of name) ~prefetcher
        ()
    in
    { result; evaluation = None; analysis = None }
  | Spec.Ideal_cache ->
    let result = Simulator.ideal_cache ~config ~warmup ~program ~trace:eval () in
    { result; evaluation = None; analysis = None }
  | Spec.Oracle ->
    let result =
      Simulator.oracle ~config ~warmup ~mode:(Pipeline.belady_mode_of prefetch) ~program
        ~trace:eval ~prefetcher ()
    in
    { result; evaluation = None; analysis = None }
  | Spec.Ripple { policy; threshold } ->
    let train = trace_of spec.Spec.app ~n_instrs:spec.Spec.n_instrs Spec.Train in
    let instrumented, analysis =
      Pipeline.instrument_with
        { Pipeline.Options.default with config; threshold }
        ~program ~profile_trace:train ~prefetch
    in
    let ev =
      Pipeline.evaluate ~config ~warmup ~original:program ~instrumented ~trace:eval
        ~policy:(policy_of policy) ~prefetch ()
    in
    { result = ev.Pipeline.result; evaluation = Some ev; analysis = Some analysis }

(* ------------------------------ the pool ----------------------------- *)

let progress_lock = Mutex.create ()

let run ?config ?jobs ?(quiet = false) specs =
  let specs = Array.of_list specs in
  let total = Array.length specs in
  let done_count = Atomic.make 0 in
  let f spec =
    let t0 = Unix.gettimeofday () in
    let outcome = run_spec ?config spec in
    let elapsed = Unix.gettimeofday () -. t0 in
    let k = Atomic.fetch_and_add done_count 1 + 1 in
    if not quiet then begin
      Mutex.lock progress_lock;
      Printf.eprintf "[exp] %d/%d %s %.1fs\n%!" k total (Spec.to_string spec) elapsed;
      Mutex.unlock progress_lock
    end;
    (outcome, elapsed)
  in
  let results = Pool.run ?jobs ~f specs in
  Array.to_list
    (Array.map2
       (fun spec r ->
         match r with
         | Ok (outcome, elapsed) -> { spec; outcome = Ok outcome; elapsed }
         | Error e -> { spec; outcome = Error e; elapsed = 0.0 })
       specs results)

let find cells spec = List.find_opt (fun c -> Spec.equal c.spec spec) cells

let ok_exn cell =
  match cell.outcome with
  | Ok outcome -> outcome
  | Error e -> failwith (Printf.sprintf "cell %s failed: %s" (Spec.to_string cell.spec) e)
