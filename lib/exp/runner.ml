module W = Ripple_workloads
module Registry = Ripple_cache.Registry
module Config = Ripple_cpu.Config
module Simulator = Ripple_cpu.Simulator
module Pipeline = Ripple_core.Pipeline

type outcome = {
  result : Simulator.result;
  evaluation : Pipeline.evaluation option;
  analysis : Pipeline.analysis option;
}

type gc_stats = {
  allocated_words : float;
  minor_words : float;
  major_words : float;
  top_heap_words : int;
}

type cell = {
  spec : Spec.t;
  outcome : (outcome, string) result;
  elapsed : float;
  gc : gc_stats;
}

let no_gc_stats =
  { allocated_words = 0.0; minor_words = 0.0; major_words = 0.0; top_heap_words = 0 }

(* ---------------------- per-domain workload memo --------------------- *)

(* Workload generation and trace execution are deterministic, so caching
   them is purely an optimisation; each domain owns a private memo (DLS),
   which keeps the cross-domain state immutable without a lock.  A
   domain running several cells of the same app regenerates nothing. *)

type memo = {
  workloads : (string, W.Cfg_gen.t) Hashtbl.t;
  traces : (string * int * string, int array) Hashtbl.t;
  streams :
    ( string * int * string * string * Config.t,
      Ripple_cache.Access_stream.t * int array )
    Hashtbl.t;
      (* Recorded access streams in their compact packed form — one word
         per access — so memoizing them costs a small fraction of what
         boxed streams would. *)
}

let memo_key : memo Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { workloads = Hashtbl.create 8; traces = Hashtbl.create 16; streams = Hashtbl.create 16 })

let workload_of app =
  let memo = Domain.DLS.get memo_key in
  match Hashtbl.find_opt memo.workloads app with
  | Some w -> w
  | None ->
    let model =
      match W.Apps.by_name app with
      | Some m -> m
      | None ->
        invalid_arg
          (Printf.sprintf "Runner: unknown application %S (known: %s)" app
             (String.concat ", " (List.map (fun m -> m.W.App_model.name) W.Apps.all)))
    in
    let w = W.Cfg_gen.generate model in
    Hashtbl.add memo.workloads app w;
    w

let executor_input = function
  | Spec.Train -> W.Executor.train
  | Spec.Eval i ->
    if i < 0 || i >= Array.length W.Executor.eval_inputs then
      invalid_arg (Printf.sprintf "Runner: no evaluation input #%d" i);
    W.Executor.eval_inputs.(i)

let trace_of app ~n_instrs (input : Spec.input) =
  let memo = Domain.DLS.get memo_key in
  let input = executor_input input in
  let key = (app, n_instrs, input.W.Executor.label) in
  match Hashtbl.find_opt memo.traces key with
  | Some t -> t
  | None ->
    let t = W.Executor.run (workload_of app) ~input ~n_instrs in
    Hashtbl.add memo.traces key t;
    t

(* The prefetcher-shaped access stream of the eval trace, in packed form.
   Deterministic in its key (recording replays an LRU reference run), so
   several oracle cells over the same (app, input, length, prefetcher,
   config) share one recording. *)
let stream_of ~config (spec : Spec.t) ~trace ~program =
  let memo = Domain.DLS.get memo_key in
  let input = executor_input spec.Spec.input in
  let key =
    ( spec.Spec.app,
      spec.Spec.n_instrs,
      input.W.Executor.label,
      Pipeline.prefetch_name spec.Spec.prefetch,
      config )
  in
  match Hashtbl.find_opt memo.streams key with
  | Some s -> s
  | None ->
    let s =
      Simulator.record_stream_indexed ~config ~program ~trace
        ~prefetcher:(Pipeline.prefetcher_of ~config spec.Spec.prefetch)
        ()
    in
    Hashtbl.add memo.streams key s;
    s

(* ----------------------------- one cell ------------------------------ *)

let run_spec ?(config = Config.default) (spec : Spec.t) =
  let workload = workload_of spec.Spec.app in
  let program = workload.W.Cfg_gen.program in
  let eval = trace_of spec.Spec.app ~n_instrs:spec.Spec.n_instrs spec.Spec.input in
  let warmup = Array.length eval / 2 in
  let prefetch = spec.Spec.prefetch in
  let prefetcher = Pipeline.prefetcher_of ~config prefetch in
  let policy_of name = (Registry.find_exn name).Registry.factory ~seed:(Spec.prng_seed spec) in
  match spec.Spec.kind with
  | Spec.Policy name ->
    let result =
      Simulator.run ~config ~warmup ~program ~trace:eval ~policy:(policy_of name) ~prefetcher
        ()
    in
    { result; evaluation = None; analysis = None }
  | Spec.Ideal_cache ->
    let result = Simulator.ideal_cache ~config ~warmup ~program ~trace:eval () in
    { result; evaluation = None; analysis = None }
  | Spec.Oracle ->
    let stream = stream_of ~config spec ~trace:eval ~program in
    let result =
      Simulator.oracle ~config ~warmup ~stream ~mode:(Pipeline.belady_mode_of prefetch)
        ~program ~trace:eval ~prefetcher ()
    in
    { result; evaluation = None; analysis = None }
  | Spec.Ripple { policy; threshold } ->
    let train = trace_of spec.Spec.app ~n_instrs:spec.Spec.n_instrs Spec.Train in
    let instrumented, analysis =
      Pipeline.instrument_with
        { Pipeline.Options.default with config; threshold }
        ~program ~profile_trace:train ~prefetch
    in
    let ev =
      Pipeline.evaluate ~config ~warmup ~original:program ~instrumented ~trace:eval
        ~policy:(policy_of policy) ~prefetch ()
    in
    { result = ev.Pipeline.result; evaluation = Some ev; analysis = Some analysis }

(* ------------------------------ the pool ----------------------------- *)

let progress_lock = Mutex.create ()

let run ?config ?jobs ?(quiet = false) specs =
  let specs = Array.of_list specs in
  let total = Array.length specs in
  let done_count = Atomic.make 0 in
  let f spec =
    let t0 = Unix.gettimeofday () in
    let g0 = Gc.quick_stat () in
    let outcome = run_spec ?config spec in
    let g1 = Gc.quick_stat () in
    let elapsed = Unix.gettimeofday () -. t0 in
    (* Words this domain allocated while the cell ran; promoted words
       would be double-counted (they appear in both minor and major
       totals), so they are subtracted. *)
    let minor_words = g1.Gc.minor_words -. g0.Gc.minor_words in
    let major_words = g1.Gc.major_words -. g0.Gc.major_words in
    let gc =
      {
        allocated_words =
          minor_words +. major_words -. (g1.Gc.promoted_words -. g0.Gc.promoted_words);
        minor_words;
        major_words;
        top_heap_words = g1.Gc.top_heap_words;
      }
    in
    let k = Atomic.fetch_and_add done_count 1 + 1 in
    if not quiet then begin
      Mutex.lock progress_lock;
      Printf.eprintf "[exp] %d/%d %s %.1fs\n%!" k total (Spec.to_string spec) elapsed;
      Mutex.unlock progress_lock
    end;
    (outcome, elapsed, gc)
  in
  let results = Pool.run ?jobs ~f specs in
  Array.to_list
    (Array.map2
       (fun spec r ->
         match r with
         | Ok (outcome, elapsed, gc) -> { spec; outcome = Ok outcome; elapsed; gc }
         | Error e -> { spec; outcome = Error e; elapsed = 0.0; gc = no_gc_stats })
       specs results)

let find cells spec = List.find_opt (fun c -> Spec.equal c.spec spec) cells

let ok_exn cell =
  match cell.outcome with
  | Ok outcome -> outcome
  | Error e -> failwith (Printf.sprintf "cell %s failed: %s" (Spec.to_string cell.spec) e)
