module W = Ripple_workloads
module Registry = Ripple_cache.Registry
module Config = Ripple_cpu.Config
module Simulator = Ripple_cpu.Simulator
module Pipeline = Ripple_core.Pipeline
module Obs = Ripple_obs

type outcome = {
  result : Simulator.result;
  evaluation : Pipeline.evaluation option;
  analysis : Pipeline.analysis option;
  metrics : Obs.Snapshot.t;
}

type gc_stats = {
  allocated_words : float;
  minor_words : float;
  major_words : float;
  top_heap_words : int;
}

type failure = { message : string; backtrace : string }

type status = Done of outcome | Failed of failure | Skipped of string

type cell = {
  spec : Spec.t;
  status : status;
  elapsed : float;
  gc : gc_stats;
  attempts : int;
}

let result cell =
  match cell.status with
  | Done o -> Ok o
  | Failed f -> Error f.message
  | Skipped reason -> Error (Printf.sprintf "skipped: %s" reason)

let no_gc_stats =
  { allocated_words = 0.0; minor_words = 0.0; major_words = 0.0; top_heap_words = 0 }

(* ---------------------- per-domain workload memo --------------------- *)

(* Workload generation and trace execution are deterministic, so caching
   them is purely an optimisation; each domain owns a private memo (DLS),
   which keeps the cross-domain state immutable without a lock.  A
   domain running several cells of the same app regenerates nothing. *)

type memo = {
  workloads : (string, W.Cfg_gen.t) Hashtbl.t;
  traces : (string * int * string, int array) Hashtbl.t;
  streams :
    ( string * int * string * string * string * Config.t,
      Ripple_cache.Access_stream.t * int array )
    Hashtbl.t;
      (* Recorded access streams in their compact packed form — one word
         per access — so memoizing them costs a small fraction of what
         boxed streams would. *)
}

let memo_key : memo Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { workloads = Hashtbl.create 8; traces = Hashtbl.create 16; streams = Hashtbl.create 16 })

let workload_of app =
  let memo = Domain.DLS.get memo_key in
  match Hashtbl.find_opt memo.workloads app with
  | Some w -> w
  | None ->
    let model =
      match W.Apps.by_name app with
      | Some m -> m
      | None ->
        invalid_arg
          (Printf.sprintf "Runner: unknown application %S (known: %s)" app
             (String.concat ", " (List.map (fun m -> m.W.App_model.name) W.Apps.all)))
    in
    let w = W.Cfg_gen.generate model in
    Hashtbl.add memo.workloads app w;
    w

let executor_input = function
  | Spec.Train -> W.Executor.train
  | Spec.Eval i ->
    if i < 0 || i >= Array.length W.Executor.eval_inputs then
      invalid_arg (Printf.sprintf "Runner: no evaluation input #%d" i);
    W.Executor.eval_inputs.(i)

let trace_of app ~n_instrs (input : Spec.input) =
  let memo = Domain.DLS.get memo_key in
  let input = executor_input input in
  let key = (app, n_instrs, input.W.Executor.label) in
  match Hashtbl.find_opt memo.traces key with
  | Some t -> t
  | None ->
    let t = W.Executor.run (workload_of app) ~input ~n_instrs in
    Hashtbl.add memo.traces key t;
    t

(* The prefetcher-shaped access stream of the eval trace, in packed form.
   Deterministic in its key (recording replays an LRU reference run), so
   several oracle cells over the same (app, input, length, prefetcher,
   config) share one recording. *)
let stream_of ~config ~backing (spec : Spec.t) ~trace ~program =
  let memo = Domain.DLS.get memo_key in
  let input = executor_input spec.Spec.input in
  let key =
    ( spec.Spec.app,
      spec.Spec.n_instrs,
      input.W.Executor.label,
      Pipeline.prefetch_name spec.Spec.prefetch,
      Ripple_util.Int_stream.backing_name backing,
      config )
  in
  match Hashtbl.find_opt memo.streams key with
  | Some s -> s
  | None ->
    let stream, pos =
      Simulator.record_stream_indexed_trace ~config ~backing ~program
        ~trace:(Simulator.Trace.Blocks trace)
        ~prefetcher:(Pipeline.prefetcher_of ~config spec.Spec.prefetch)
        ()
    in
    (* The position index is consulted only for the warm-up boundary
       search, so it is materialized; the stream itself — the big half —
       keeps whatever backing the caller chose. *)
    let s = (stream, Ripple_util.Int_stream.to_array pos) in
    Ripple_util.Int_stream.close pos;
    Hashtbl.add memo.streams key s;
    s

(* ----------------------------- one cell ------------------------------ *)

let run_spec ?(config = Config.default) ?(backing = Ripple_cache.Access_stream.Heap)
    ?sampling ?(shards = 1) (spec : Spec.t) =
  let workload = workload_of spec.Spec.app in
  let program = workload.W.Cfg_gen.program in
  let eval = trace_of spec.Spec.app ~n_instrs:spec.Spec.n_instrs spec.Spec.input in
  let warmup = Array.length eval / 2 in
  let prefetch = spec.Spec.prefetch in
  let prefetcher = Pipeline.prefetcher_of ~config prefetch in
  let policy_of spec_str = Registry.factory ~seed:(Spec.prng_seed spec) spec_str in
  (* Every cell gets a private observability context; the deterministic
     snapshot rides on the outcome so {!Report} can render it into the
     JSONL regardless of which domain ran the cell. *)
  let obs = Obs.Run.create () in
  match spec.Spec.kind with
  | Spec.Policy name ->
    let result =
      Obs.Span.with_span (Obs.Run.spans obs) "simulate" (fun () ->
          fst
            (Simulator.run_trace ~config ~warmup ~obs ?sampling ~program
               ~trace:(Simulator.Trace.Blocks eval) ~policy:(policy_of name) ~prefetcher ()))
    in
    { result; evaluation = None; analysis = None; metrics = Obs.Run.snapshot obs }
  | Spec.Ideal_cache ->
    let result =
      Obs.Span.with_span (Obs.Run.spans obs) "simulate" (fun () ->
          Simulator.ideal_cache ~config ~warmup ~program ~trace:eval ())
    in
    Simulator.observe_result obs result;
    { result; evaluation = None; analysis = None; metrics = Obs.Run.snapshot obs }
  | Spec.Oracle ->
    let stream = stream_of ~config ~backing spec ~trace:eval ~program in
    let result =
      Obs.Span.with_span (Obs.Run.spans obs) "simulate" (fun () ->
          if shards > 1 then
            Shard.oracle ~config ~shards ~backing ~warmup ~stream
              ~mode:(Pipeline.belady_mode_of prefetch) ~program ~trace:eval ~prefetcher ()
          else
            Simulator.oracle ~config ~warmup ~stream ~mode:(Pipeline.belady_mode_of prefetch)
              ~program ~trace:eval ~prefetcher ())
    in
    Simulator.observe_result obs result;
    { result; evaluation = None; analysis = None; metrics = Obs.Run.snapshot obs }
  | Spec.Ripple { policy; threshold } ->
    let train = trace_of spec.Spec.app ~n_instrs:spec.Spec.n_instrs Spec.Train in
    let oc =
      Pipeline.run ~obs
        {
          Pipeline.Options.default with
          config;
          threshold;
          prefetch;
          backing;
          sampling;
          eval = Some (Pipeline.Eval.v ~warmup ~trace:eval ~policy:(policy_of policy) ());
        }
        ~source:program (Pipeline.Trace train)
    in
    let ev = Option.get oc.Pipeline.evaluation in
    {
      result = ev.Pipeline.result;
      evaluation = Some ev;
      analysis = Some oc.Pipeline.analysis;
      metrics = oc.Pipeline.metrics;
    }

(* ------------------------------ the pool ----------------------------- *)

let progress_lock = Mutex.create ()

let breaker_reason = "circuit breaker: failure budget exhausted"

let run ?config ?backing ?sampling ?shards ?jobs ?(quiet = false) ?(retries = 0)
    ?max_failures specs =
  let specs = Array.of_list specs in
  let total = Array.length specs in
  let done_count = Atomic.make 0 in
  let failures = Atomic.make 0 in
  (* The breaker is polled per claim: once the failure budget is spent,
     unstarted cells are skipped.  Failure outcomes themselves are
     deterministic per cell; which cells a tripped breaker reaches in
     time is not, when [jobs > 1] (documented in {!Pool.run}). *)
  let stop =
    match max_failures with
    | None -> fun () -> false
    | Some limit -> fun () -> Atomic.get failures >= limit
  in
  let f spec =
    let t0 = Unix.gettimeofday () in
    let g0 = Gc.quick_stat () in
    (* Bounded retry with seed perturbation: a deterministic failure
       fails every attempt identically, while a seed-sensitive corner
       (e.g. a stochastic policy tripping an edge case) gets fresh
       randomness.  The emitted cell always carries the original spec. *)
    let rec attempt k =
      let spec_k =
        if k = 0 then spec
        else { spec with Spec.seed = Spec.perturb_seed spec.Spec.seed ~attempt:k }
      in
      match run_spec ?config ?backing ?sampling ?shards spec_k with
      | outcome -> (Done outcome, k + 1)
      | exception e ->
        let backtrace = String.trim (Printexc.get_backtrace ()) in
        if k < retries then attempt (k + 1)
        else begin
          Atomic.incr failures;
          (Failed { message = Printexc.to_string e; backtrace }, k + 1)
        end
    in
    let status, attempts = attempt 0 in
    let g1 = Gc.quick_stat () in
    let elapsed = Unix.gettimeofday () -. t0 in
    (* Words this domain allocated while the cell ran; promoted words
       would be double-counted (they appear in both minor and major
       totals), so they are subtracted. *)
    let minor_words = g1.Gc.minor_words -. g0.Gc.minor_words in
    let major_words = g1.Gc.major_words -. g0.Gc.major_words in
    let gc =
      {
        allocated_words =
          minor_words +. major_words -. (g1.Gc.promoted_words -. g0.Gc.promoted_words);
        minor_words;
        major_words;
        top_heap_words = g1.Gc.top_heap_words;
      }
    in
    let k = Atomic.fetch_and_add done_count 1 + 1 in
    if not quiet then begin
      let tag = match status with Done _ -> "" | Failed _ -> " FAILED" | Skipped _ -> "" in
      Mutex.lock progress_lock;
      Printf.eprintf "[exp] %d/%d %s %.1fs%s\n%!" k total (Spec.to_string spec) elapsed tag;
      Mutex.unlock progress_lock
    end;
    (status, elapsed, gc, attempts)
  in
  let results = Pool.run ?jobs ~stop ~f specs in
  Array.to_list
    (Array.map2
       (fun spec r ->
         match r with
         | Some (Ok (status, elapsed, gc, attempts)) -> { spec; status; elapsed; gc; attempts }
         | Some (Error e) ->
           (* [f] catches its own exceptions; the pool guard is a belt
              for failures outside the retry loop (e.g. out-of-memory). *)
           {
             spec;
             status = Failed { message = e; backtrace = "" };
             elapsed = 0.0;
             gc = no_gc_stats;
             attempts = 0;
           }
         | None ->
           {
             spec;
             status = Skipped breaker_reason;
             elapsed = 0.0;
             gc = no_gc_stats;
             attempts = 0;
           })
       specs results)

let find cells spec = List.find_opt (fun c -> Spec.equal c.spec spec) cells
