(** One cell of an experiment sweep, as pure data.

    A spec names everything a run depends on — application, trace
    length, evaluation input, PRNG seed, prefetcher, and what to run
    (a hardware policy, an ideal bound, or a Ripple configuration) — so
    that executing it is a pure function of the spec.  That purity is
    what lets the {!Runner} fan cells out over a domain pool and still
    promise results identical to a serial run: nothing about a cell's
    outcome depends on which domain ran it or in what order. *)

module Pipeline := Ripple_core.Pipeline

(** Which dynamic trace the cell is evaluated on. *)
type input =
  | Eval of int  (** evaluation input [#0..#3] of Fig. 13 (default [#0]) *)
  | Train  (** the profiling input — profile/evaluate on the same path *)

type kind =
  | Policy of string
      (** one hardware replacement policy, as a full registry spec
          string — ["drrip"] or ["drrip:psel_bits=8,throttle=16"]
          ({!Ripple_cache.Registry}).  Use the canonical form
          ({!Ripple_cache.Registry.canonical}; the CLI canonicalises at
          parse time) so equal cells compare equal and the JSONL
          [policy] field records one stable spelling per
          parameterization. *)
  | Ideal_cache  (** the Fig. 1 never-miss limit *)
  | Oracle  (** ideal replacement: MIN, or Demand-MIN under a prefetcher *)
  | Ripple of { policy : string; threshold : float }
      (** profile on the train input, instrument at [threshold], evaluate
          under [policy] (a registry spec string, like {!Policy}) *)

type t = {
  app : string;  (** application model name ({!Ripple_workloads.Apps.by_name}) *)
  n_instrs : int;  (** trace length in original instructions *)
  seed : int;  (** base seed; stochastic policies derive from {!prng_seed} *)
  input : input;
  prefetch : Pipeline.prefetch;
  kind : kind;
}

val v :
  ?n_instrs:int ->
  ?seed:int ->
  ?input:input ->
  ?prefetch:Pipeline.prefetch ->
  app:string ->
  kind ->
  t
(** Defaults: [n_instrs = 2_000_000], [seed = 1234], [input = Eval 0],
    [prefetch = Fdip]. *)

val compare : t -> t -> int
(** Total order over specs — the aggregation order of every report,
    independent of completion order. *)

val equal : t -> t -> bool

val kind_name : kind -> string
(** ["lru"], ["ideal-cache"], ["oracle"], ["ripple:lru@0.55"], … *)

val to_string : t -> string
(** Stable, human-readable cell key, e.g.
    ["cassandra/fdip/ripple:lru@0.55/n=4000000/i=eval0/s=1234"]. *)

val policy_name : t -> string option
(** The registry policy spec the cell runs under, if any — parameter
    overrides included, exactly as recorded in the JSONL [policy]
    field. *)

val threshold : t -> float option

val prng_seed : t -> int
(** Deterministic per-cell seed: an FNV-1a hash of {!to_string}, so two
    specs differing in any field draw independent random streams, and
    the same spec draws the same stream in every run, serial or
    parallel. *)

val perturb_seed : int -> attempt:int -> int
(** Seed for retry [attempt] of a cell whose base seed is the argument;
    [attempt = 0] is the identity.  Deterministic, so a retried sweep
    stays byte-identical across [--jobs]. *)

val to_fields : t -> (string * Ripple_util.Json.t) list
(** The spec's JSON object fields, for embedding into a larger record
    (the per-cell JSONL rows of {!Report}). *)

val to_json : t -> Ripple_util.Json.t
(** [Obj (to_fields t)]. *)
