module Json = Ripple_util.Json
module Table = Ripple_util.Table
module Simulator = Ripple_cpu.Simulator
module Pipeline = Ripple_core.Pipeline
module Injector = Ripple_core.Injector

module Cue_block = Ripple_core.Cue_block
module Lint = Ripple_analysis.Lint

let analysis_to_json (a : Pipeline.analysis) =
  let d = a.Pipeline.drops in
  Json.Obj
    ([
       ("threshold", Json.Float a.Pipeline.threshold);
       ("n_windows", Json.Int a.Pipeline.n_windows);
       ("n_decisions", Json.Int a.Pipeline.n_decisions);
       ("windows_no_candidate", Json.Int d.Cue_block.no_candidate);
       ("windows_below_support", Json.Int d.Cue_block.below_support);
       ("windows_below_threshold", Json.Int d.Cue_block.below_threshold);
       ("windows_selected", Json.Int d.Cue_block.selected);
       ("injected", Json.Int a.Pipeline.injection.Injector.injected);
       ("skipped_jit", Json.Int a.Pipeline.injection.Injector.skipped_jit);
       ("skipped_cap", Json.Int a.Pipeline.injection.Injector.skipped_cap);
       ("blocks_touched", Json.Int a.Pipeline.injection.Injector.blocks_touched);
       ("degrade", Pipeline.Degrade.to_json a.Pipeline.degrade);
     ]
    @
    match a.Pipeline.lint with
    | None -> []
    | Some s ->
      [
        ( "lint",
          Json.Obj
            [
              ("errors", Json.Int s.Lint.errors);
              ("warnings", Json.Int s.Lint.warnings);
              ("infos", Json.Int s.Lint.infos);
            ] );
      ])

let gc_to_json (g : Runner.gc_stats) =
  Json.Obj
    [
      ("allocated_words", Json.Float g.Runner.allocated_words);
      ("minor_words", Json.Float g.Runner.minor_words);
      ("major_words", Json.Float g.Runner.major_words);
      ("top_heap_words", Json.Int g.Runner.top_heap_words);
    ]

let cell_to_json ?(gc = false) (cell : Runner.cell) =
  let spec_fields = Spec.to_fields cell.Runner.spec in
  let gc_fields = if gc then [ ("gc", gc_to_json cell.Runner.gc) ] else [] in
  let attempt_fields =
    if cell.Runner.attempts > 1 then [ ("attempts", Json.Int cell.Runner.attempts) ] else []
  in
  let payload =
    match cell.Runner.status with
    (* The backtrace stays out of the JSONL: whether one was captured
       depends on the domain the cell ran in, and machine-readable rows
       must be identical across pool sizes.  It remains on the cell for
       interactive debugging. *)
    | Runner.Failed f ->
      [ ("status", Json.String "failed"); ("error", Json.String f.Runner.message) ]
    | Runner.Skipped reason ->
      [ ("status", Json.String "skipped"); ("reason", Json.String reason) ]
    | Runner.Done o ->
      [ ("status", Json.String "ok"); ("result", Simulator.result_to_json o.Runner.result) ]
      @ (match o.Runner.evaluation with
        | Some ev -> [ ("evaluation", Pipeline.evaluation_to_json ev) ]
        | None -> [])
      @ (match o.Runner.analysis with
        | Some a -> [ ("analysis", analysis_to_json a) ]
        | None -> [])
      @ [ ("metrics", Ripple_obs.Snapshot.to_json o.Runner.metrics) ]
  in
  Json.Obj (spec_fields @ payload @ attempt_fields @ gc_fields)

(* Cells arrive in submission order regardless of pool size, and merge
   is an order-respecting fold, so the aggregate is deterministic across
   [jobs]. *)
let merged_metrics cells =
  List.fold_left
    (fun acc (cell : Runner.cell) ->
      match cell.Runner.status with
      | Runner.Done o -> Ripple_obs.Snapshot.merge acc o.Runner.metrics
      | Runner.Failed _ | Runner.Skipped _ -> acc)
    Ripple_obs.Snapshot.empty cells

let to_jsonl ?gc cells =
  let buf = Buffer.create 4096 in
  List.iter
    (fun cell ->
      Json.to_buffer buf (cell_to_json ?gc cell);
      Buffer.add_char buf '\n')
    cells;
  Buffer.contents buf

(* Create every missing directory on the way to [path]. *)
let rec mkdir_parents dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_parents (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let write_jsonl ?gc path cells =
  mkdir_parents (Filename.dirname path);
  (* Write-then-fsync-then-rename so a crash — even one straddling the
     rename — never leaves a truncated file where a previous complete
     run's output used to be: the data is durable before the name
     flips. *)
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path ^ ".") ".tmp" in
  (try
     let oc = open_out tmp in
     (try
        output_string oc (to_jsonl ?gc cells);
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc);
        close_out oc
      with e ->
        close_out_noerr oc;
        raise e);
     Sys.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     (* A failed report often means the sweep is about to die: reclaim
        any stream spill files too.  Unlinking is safe even for streams
        still mapped — reads survive the unlink; only the names go. *)
     ignore (Ripple_util.Int_stream.Spill.sweep () : int);
     raise e)

let print_summary cells =
  let table =
    Table.create ~title:"sweep results"
      ~columns:
        [
          ("cell", Table.Left);
          ("ipc", Table.Right);
          ("mpki", Table.Right);
          ("misses", Table.Right);
          ("coverage", Table.Right);
          ("accuracy", Table.Right);
        ]
  in
  List.iter
    (fun (cell : Runner.cell) ->
      let key = Spec.to_string cell.Runner.spec in
      match cell.Runner.status with
      | Runner.Failed f ->
        Table.add_row table
          [
            key;
            "-";
            "-";
            "-";
            "-";
            Printf.sprintf "FAILED: %s" (List.hd (String.split_on_char '\n' f.Runner.message));
          ]
      | Runner.Skipped reason ->
        Table.add_row table [ key; "-"; "-"; "-"; "-"; Printf.sprintf "SKIPPED: %s" reason ]
      | Runner.Done o ->
        let r = o.Runner.result in
        let cov, acc =
          match o.Runner.evaluation with
          | Some ev ->
            ( Printf.sprintf "%.1f%%" (100.0 *. ev.Pipeline.coverage),
              Printf.sprintf "%.1f%%" (100.0 *. ev.Pipeline.accuracy) )
          | None -> ("-", "-")
        in
        Table.add_row table
          [
            key;
            Printf.sprintf "%.4f" r.Simulator.ipc;
            Printf.sprintf "%.3f" r.Simulator.mpki;
            string_of_int r.Simulator.demand_misses;
            cov;
            acc;
          ])
    cells;
  Table.print table
