(** A fixed-size work pool over OCaml 5 domains.

    [run] applies [f] to every item of an array, fanning the
    applications out over worker domains.  Items are claimed from a
    shared atomic cursor (dynamic load balancing: a slow cell does not
    stall the queue behind it), and each result lands in the slot of the
    item that produced it — so the output order is the input order, no
    matter which domain finished first.

    Each application is crash-isolated: an exception in [f] becomes
    [Error] for that slot (message plus backtrace) and the rest of the
    sweep proceeds.  Worker domains never share mutable state through
    [f]'s closure unless the caller arranges it; per-domain scratch
    belongs in [Domain.DLS] (see {!Runner}). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the pool size when [?jobs]
    is not given. *)

val run :
  ?jobs:int ->
  ?stop:(unit -> bool) ->
  f:('a -> 'b) ->
  'a array ->
  ('b, string) result option array
(** [run ~jobs ~f items] evaluates [f] on every item and returns the
    results in item order.  [jobs] is clamped to [1 .. length items];
    with [jobs = 1] the pool degenerates to a plain serial loop in the
    calling domain — the reference against which parallel runs are
    checked for determinism.

    [stop] is the circuit breaker: it is polled before each item is
    started, and items claimed after it returns [true] are left as
    [None] (skipped) instead of run.  Which items a tripped breaker
    skips depends on scheduling when [jobs > 1]; with the breaker
    untripped (the common case) results are [Some] for every slot and
    independent of [jobs]. *)
