module Config = Ripple_cpu.Config
module Simulator = Ripple_cpu.Simulator
module Belady = Ripple_cache.Belady
module Geometry = Ripple_cache.Geometry

let ranges ~sets ~shards =
  let shards = max 1 (min shards sets) in
  Array.init shards (fun i -> (i * sets / shards, (i + 1) * sets / shards))

let replay ?(config = Config.default) ?(shards = 2) ?backing ?count_from
    ?(record_evictions = true) ~mode stream =
  let sets = Geometry.sets config.Config.l1i in
  (* The demand/prefetch lookahead tables are built once and shared
     read-only by every shard — per-set replays read disjoint slices of
     the same stream, so the O(n) working set is paid a single time
     (and, spill-backed, not in the heap at all). *)
  let tables = Belady.prepare ?backing stream in
  let parts =
    Fun.protect
      ~finally:(fun () -> Belady.close_tables tables)
      (fun () ->
        let rs = ranges ~sets ~shards in
        let out =
          Pool.run ~jobs:(Array.length rs)
            ~f:(fun (lo, hi) ->
              Belady.simulate ~tables ~sets:(lo, hi) ~record_fills:true ~record_evictions
                ?count_from config.Config.l1i ~mode stream)
            rs
        in
        Array.to_list
          (Array.map
             (function
               | Some (Ok r) -> r
               | Some (Error e) -> failwith ("Shard.replay: " ^ e)
               | None -> assert false)
             out))
  in
  Belady.merge parts

let oracle ?(config = Config.default) ?shards ?backing ?(warmup = 0) ~stream ~mode ~program
    ~trace ~prefetcher () =
  (* Shard counters must start at the same measured-region boundary the
     unsharded oracle uses, or the merged tallies cover the warm-up. *)
  let count_from = Simulator.stream_count_from ~stream_pos:(snd stream) ~warmup in
  (* The timing replay consumes fills and counters only, so the boxed
     eviction records are dropped — same O(1)-heap guarantee as the
     unsharded oracle. *)
  let merged =
    replay ~config ?shards ?backing ~count_from ~record_evictions:false ~mode (fst stream)
  in
  Simulator.oracle ~config ~warmup ~stream ~replay:merged ~mode ~program ~trace ~prefetcher ()
