(** Rolling windowed profile: the daemon's memory of recent captures.

    Each [Hello]-to-[Flush] cycle closes one {e generation} — the blocks a
    {!Ripple_trace.Pt.Session} decoded from that capture, plus the
    header's advertised count and the error/resync tallies.  The window
    keeps whole generations, newest last, and evicts the oldest while
    the total block count exceeds the capacity (always keeping at least
    one, so a single oversized capture is not silently dropped).

    Evicting whole generations keeps the merged trace a concatenation
    of legal paths: drift measured on it only crosses generation
    boundaries at known seams, the same property the PT decoder's
    resync gives within a capture. *)

type t

val create : ?backing:Ripple_util.Int_stream.backing -> window:int -> unit -> t
(** [window] is the capacity in decoded blocks.  [backing] (default
    [Heap]) is where generations live: with [Spill], every capture is
    written through to an mmap-backed spill file, so the daemon's
    retained profile costs no heap.  Raises [Invalid_argument] if
    [window] is non-positive. *)

val backing : t -> Ripple_util.Int_stream.backing

val add : t -> blocks:int array -> expected:int -> errors:int -> unit
(** Close a generation (written through to the window's backing) and
    evict — and release — old ones past the window. *)

val trace : t -> int array
(** Concatenation of the retained generations, oldest first. *)

val dump : t -> (int array * int * int) list
(** The retained generations as [(blocks, expected, errors)] triples,
    oldest first — the snapshot image.  Re-{!add}ing them in order into
    a fresh window of the same capacity reproduces the window exactly
    (retained state never triggers re-eviction). *)

val blocks : t -> int
(** Total decoded blocks retained (= [Array.length (trace t)]). *)

val generations : t -> int

val advertised : t -> int
(** Total header-advertised blocks across retained generations. *)

val salvage : t -> float
(** Merged salvage: total decoded over total advertised across retained
    generations.  0.0 for an empty window (never NaN); a window holding
    only empty-but-clean captures reports 1.0. *)

val errors : t -> int
(** Total decode errors across retained generations. *)

val spill_bytes : t -> int
(** Bytes of retained generations held in spill files (0 under the heap
    backing). *)

val close : t -> unit
(** Releases every retained generation — unlinking spill files — and
    empties the window.  Session-teardown hook; the window remains
    usable afterwards. *)
