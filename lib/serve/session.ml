module Program = Ripple_isa.Program
module Pt = Ripple_trace.Pt
module Pipeline = Ripple_core.Pipeline
module Obs = Ripple_obs
module Json = Ripple_util.Json

type cells = {
  chunk_bytes : Obs.Metric.counter;
  decoded_blocks : Obs.Metric.counter;
  salvage : Obs.Metric.gauge;
  drift : Obs.Metric.gauge;
  ladder_level : Obs.Metric.gauge;
  ladder_transitions : Obs.Metric.counter;
  reemissions : Obs.Metric.counter;
  stream_spill_bytes : Obs.Metric.counter;  (** shared (unlabelled) family *)
}

type t = {
  name : string;
  source : Program.t;
  obs : Obs.Run.t;
  options : Pipeline.Options.t;
  reemit_every : int;
  rolling : Rolling.t;
  store : Snapshot.Store.t option;
  mutable pt : Pt.Session.t;
  mutable level : Pipeline.Degrade.level;
  mutable transitions : int;
  mutable emissions : int;
  mutable next_seq : int;  (** next protocol sequence number expected *)
  mutable last : Pipeline.outcome option;
  mutable since_emit : int;  (** fresh blocks since the last re-emission *)
  cells : cells;
}

let register_cells reg app =
  let lbl name = Obs.Metric.labelled name [ ("app", app) ] in
  let c name help = Obs.Registry.counter reg ~help (lbl name) in
  let g name help = Obs.Registry.gauge reg ~help (lbl name) in
  {
    chunk_bytes = c "ripple_serve_chunk_bytes" "PT bytes received over the wire";
    decoded_blocks = c "ripple_serve_decoded_blocks" "blocks decoded incrementally";
    salvage = g "ripple_serve_session_salvage" "merged salvage of the rolling profile";
    drift = g "ripple_serve_session_drift" "drift of the last re-emission";
    ladder_level = g "ripple_serve_ladder_level" "ladder rung: 0 full, 1 safe-only, 2 off";
    ladder_transitions = c "ripple_serve_ladder_transitions" "ladder level changes";
    reemissions = c "ripple_serve_reemissions" "hint re-emissions performed";
    stream_spill_bytes =
      Obs.Registry.counter reg ~help:"bytes written to stream spill files"
        "ripple_stream_spill_bytes";
  }

(* Build the in-memory session only; what (if anything) gets persisted
   at construction time is the caller's business — [create] and
   [restore] differ on exactly that. *)
let make ?store ~obs ~options ~window ~reemit_every ~name ~program () =
  let options = { options with Pipeline.Options.eval = None; search = [] } in
  let backing = options.Pipeline.Options.backing in
  let reg = Obs.Run.registry obs in
  let cells = register_cells reg name in
  Obs.Metric.set cells.ladder_level 2.0;
  Obs.Metric.set
    (Obs.Registry.gauge reg ~help:"access-stream backing: 0 heap, 1 mmap"
       "ripple_stream_backing")
    (match backing with Ripple_util.Int_stream.Heap -> 0.0 | Ripple_util.Int_stream.Spill _ -> 1.0);
  {
    name;
    source = program;
    obs;
    options;
    reemit_every;
    rolling = Rolling.create ~backing ~window ();
    store;
    pt = Pt.Session.create program;
    level = Pipeline.Degrade.Hints_off;
    transitions = 0;
    emissions = 0;
    next_seq = 0;
    last = None;
    since_emit = 0;
    cells;
  }

let create ?store ~obs ~options ~window ~reemit_every ~name ~program () =
  let t = make ?store ~obs ~options ~window ~reemit_every ~name ~program () in
  (match store with
  | None -> ()
  | Some store ->
    (* A genuinely new session owns its journal: a stale one left by a
       prior incarnation (a snapshot that failed to decode, an app the
       recovery lookup could not resolve) would otherwise be appended
       after and replayed into this fresh session at the next crash. *)
    Snapshot.Store.journal_reset store ~app:name;
    (* Durable sessions snapshot at birth: a kill -9 before the first
       flush then still recovers (empty snapshot + journal replay) —
       recovery must never depend on having flushed at least once. *)
    Snapshot.Store.save store
      {
        Snapshot.app = name;
        level = 2;
        transitions = 0;
        emissions = 0;
        next_seq = 0;
        gens = [];
      });
  t

let name t = t.name
let level t = t.level
let transitions t = t.transitions
let emissions t = t.emissions
let next_seq t = t.next_seq
let last_outcome t = t.last

let program t =
  match t.last with Some oc -> oc.Pipeline.program | None -> t.source

let level_code = function
  | Pipeline.Degrade.Full -> 0.0
  | Pipeline.Degrade.Safe_only -> 1.0
  | Pipeline.Degrade.Hints_off -> 2.0

let level_int = function
  | Pipeline.Degrade.Full -> 0
  | Pipeline.Degrade.Safe_only -> 1
  | Pipeline.Degrade.Hints_off -> 2

let level_of_int = function
  | 0 -> Pipeline.Degrade.Full
  | 1 -> Pipeline.Degrade.Safe_only
  | _ -> Pipeline.Degrade.Hints_off

(* The merged profile right now: closed generations plus the in-flight
   one.  The in-flight capture counts only what has already decoded
   (expected := decoded), so a mid-capture re-emission is not punished
   for the tail that simply has not arrived yet; truncation is judged
   at flush, when the header's advertised count comes due. *)
let profile_now t =
  let partial = (Pt.Session.result t.pt).Pt.trace in
  let trace = Array.append (Rolling.trace t.rolling) partial in
  let decoded = Rolling.blocks t.rolling + Array.length partial in
  let expected = Rolling.advertised t.rolling + Array.length partial in
  let errors = Rolling.errors t.rolling + Pt.Session.errors t.pt in
  let salvage =
    if expected > 0 then Float.of_int decoded /. Float.of_int expected
    else if (Rolling.generations t.rolling > 0 || Pt.Session.finished t.pt) && errors = 0
    then 1.0
    else 0.0
  in
  { Pipeline.trace; source = t.source; salvage; pt_errors = errors }

(* FNV-1a 64 over the durable profile content — what the chaos harness
   compares across an interrupted and an uninterrupted run. *)
let profile_fnv t =
  let h = ref 0xcbf29ce484222325L in
  let mix v =
    for shift = 0 to 7 do
      let byte = (v lsr (8 * shift)) land 0xFF in
      h := Int64.logxor !h (Int64.of_int byte);
      h := Int64.mul !h 0x100000001b3L
    done
  in
  Array.iter mix (Rolling.trace t.rolling);
  mix (Rolling.advertised t.rolling);
  mix (Rolling.errors t.rolling);
  Printf.sprintf "%016Lx" !h

(* [count] is false only while rebuilding state during recovery: the
   emission then reconstructs the instrumented binary without claiming
   new work happened. *)
let emit ?(count = true) t =
  let profile = profile_now t in
  let oc = Pipeline.run ~obs:t.obs t.options ~source:t.source (Pipeline.Profile profile) in
  let degrade = oc.Pipeline.analysis.Pipeline.degrade in
  let level = degrade.Pipeline.Degrade.level in
  if level <> t.level && count then begin
    t.transitions <- t.transitions + 1;
    Obs.Metric.incr t.cells.ladder_transitions
  end;
  t.level <- level;
  t.last <- Some oc;
  if count then begin
    t.emissions <- t.emissions + 1;
    Obs.Metric.incr t.cells.reemissions
  end;
  t.since_emit <- 0;
  Obs.Metric.set t.cells.ladder_level (level_code level);
  Obs.Metric.set t.cells.salvage profile.Pipeline.salvage;
  Obs.Metric.set t.cells.drift degrade.Pipeline.Degrade.drift

(* ---------------------------- persistence ---------------------------- *)

let snapshot_state t =
  {
    Snapshot.app = t.name;
    level = level_int t.level;
    transitions = t.transitions;
    emissions = t.emissions;
    next_seq = t.next_seq;
    gens =
      List.map
        (fun (blocks, expected, errors) ->
          { Snapshot.g_blocks = blocks; g_expected = expected; g_errors = errors })
        (Rolling.dump t.rolling);
  }

let save t =
  match t.store with None -> () | Some store -> Snapshot.Store.save store (snapshot_state t)

(* --------------------------- sequenced ops --------------------------- *)

(* Feed the decoder and drive mid-capture re-emission; shared by the
   live path and journal replay (replay must reproduce exactly the
   state the live path built, re-emissions included). *)
let ingest t chunk =
  Obs.Metric.add t.cells.chunk_bytes (Bytes.length chunk);
  if not (Pt.Session.finished t.pt) then Pt.Session.feed t.pt chunk;
  let fresh = Array.length (Pt.Session.drain t.pt) in
  Obs.Metric.add t.cells.decoded_blocks fresh;
  t.since_emit <- t.since_emit + fresh;
  if t.reemit_every > 0 && t.since_emit >= t.reemit_every then emit t;
  Pt.Session.decoded t.pt

let apply_chunk t ~seq chunk =
  if seq < t.next_seq then `Duplicate (Pt.Session.decoded t.pt)
  else if seq > t.next_seq then `Gap t.next_seq
  else begin
    (* Write-ahead: the journal record lands (and is fsynced) before the
       decoder sees the bytes, so recovery never misses an applied
       chunk. *)
    (match t.store with
    | Some store -> Snapshot.Store.journal_append store ~app:t.name ~seq chunk
    | None -> ());
    t.next_seq <- seq + 1;
    `Applied (ingest t chunk)
  end

let do_flush t =
  Pt.Session.finish t.pt;
  let r = Pt.Session.result t.pt in
  Rolling.add t.rolling ~blocks:r.Pt.trace ~expected:r.Pt.expected
    ~errors:(List.length r.Pt.errors);
  (match Rolling.backing t.rolling with
  | Ripple_util.Int_stream.Heap -> ()
  | Ripple_util.Int_stream.Spill _ ->
    Obs.Metric.add t.cells.stream_spill_bytes (8 * Array.length r.Pt.trace));
  t.pt <- Pt.Session.create t.source;
  t.since_emit <- 0;
  emit t;
  (* The capture is folded into a generation: snapshot the new durable
     state, then drop the journal it supersedes. *)
  match t.store with
  | None -> ()
  | Some store ->
    Snapshot.Store.save store (snapshot_state t);
    Snapshot.Store.journal_reset store ~app:t.name

let apply_flush t ~seq =
  if seq < t.next_seq then `Duplicate
  else if seq > t.next_seq then `Gap t.next_seq
  else begin
    t.next_seq <- seq + 1;
    do_flush t;
    `Applied
  end

(* v1 entry points: unsequenced traffic consumes sequence numbers
   implicitly, so v1 and v2 clients share one dedup/journal horizon. *)
let feed t chunk =
  match apply_chunk t ~seq:t.next_seq chunk with
  | `Applied decoded | `Duplicate decoded -> decoded
  | `Gap _ -> assert false

let flush t =
  match apply_flush t ~seq:t.next_seq with `Applied | `Duplicate -> () | `Gap _ -> assert false

(* ----------------------------- recovery ------------------------------ *)

let restore ?store ~obs ~options ~window ~reemit_every ~program (state : Snapshot.state)
    journal =
  (* [make], not [create]: create's at-birth snapshot (and journal
     reset) would destroy exactly the durable state being recovered,
     and a second kill -9 before the next flush must recover again. *)
  let t = make ?store ~obs ~options ~window ~reemit_every ~name:state.Snapshot.app ~program () in
  List.iter
    (fun g ->
      Rolling.add t.rolling ~blocks:g.Snapshot.g_blocks ~expected:g.Snapshot.g_expected
        ~errors:g.Snapshot.g_errors)
    state.Snapshot.gens;
  t.level <- level_of_int state.Snapshot.level;
  t.transitions <- state.Snapshot.transitions;
  t.emissions <- state.Snapshot.emissions;
  t.next_seq <- state.Snapshot.next_seq;
  Obs.Metric.set t.cells.ladder_level (level_code t.level);
  (* Re-run the pipeline over the recovered window so the instrumented
     binary (and the salvage/drift gauges) exist again without a client
     replaying history.  Deterministic, so the level matches the stored
     one; the counters saw this emission before the crash already. *)
  if Rolling.generations t.rolling > 0 then emit ~count:false t;
  (* Re-persist the recovered state exactly as loaded — with the
     pre-replay [next_seq], so the journal records replayed below stay
     past the snapshot's horizon and survive for the next recovery. *)
  (match store with None -> () | Some store -> Snapshot.Store.save store state);
  (* Replay the in-flight capture journal through the live ingest path
     (without re-journaling: the records are already durable). *)
  List.iter
    (fun (seq, chunk) ->
      if seq >= t.next_seq then begin
        t.next_seq <- seq + 1;
        ignore (ingest t chunk : int)
      end)
    journal;
  t

let close t =
  Rolling.close t.rolling;
  match t.store with None -> () | Some store -> Snapshot.Store.close store

let status t =
  let drift, salvage =
    match t.last with
    | Some oc ->
      let d = oc.Pipeline.analysis.Pipeline.degrade in
      (d.Pipeline.Degrade.drift, d.Pipeline.Degrade.salvage)
    | None -> (0.0, 0.0)
  in
  Json.Obj
    [
      ("app", Json.String t.name);
      ("level", Json.String (Pipeline.Degrade.level_name t.level));
      ("generations", Json.Int (Rolling.generations t.rolling));
      ("window_blocks", Json.Int (Rolling.blocks t.rolling));
      ("inflight_blocks", Json.Int (Pt.Session.decoded t.pt));
      ("salvage", Json.Float salvage);
      ("drift", Json.Float drift);
      ("pt_errors", Json.Int (Rolling.errors t.rolling + Pt.Session.errors t.pt));
      ("transitions", Json.Int t.transitions);
      ("emissions", Json.Int t.emissions);
      ("next_seq", Json.Int t.next_seq);
      ("profile_fnv", Json.String (profile_fnv t));
      ( "hints",
        Json.Int
          (match t.last with
          | Some oc -> Program.static_hints oc.Pipeline.program
          | None -> 0) );
    ]
