module Program = Ripple_isa.Program
module Pt = Ripple_trace.Pt
module Pipeline = Ripple_core.Pipeline
module Obs = Ripple_obs
module Json = Ripple_util.Json

type cells = {
  chunk_bytes : Obs.Metric.counter;
  decoded_blocks : Obs.Metric.counter;
  salvage : Obs.Metric.gauge;
  drift : Obs.Metric.gauge;
  ladder_level : Obs.Metric.gauge;
  ladder_transitions : Obs.Metric.counter;
  reemissions : Obs.Metric.counter;
  stream_spill_bytes : Obs.Metric.counter;  (** shared (unlabelled) family *)
}

type t = {
  name : string;
  source : Program.t;
  obs : Obs.Run.t;
  options : Pipeline.Options.t;
  reemit_every : int;
  rolling : Rolling.t;
  mutable pt : Pt.Session.t;
  mutable level : Pipeline.Degrade.level;
  mutable transitions : int;
  mutable emissions : int;
  mutable last : Pipeline.outcome option;
  mutable since_emit : int;  (** fresh blocks since the last re-emission *)
  cells : cells;
}

let register_cells reg app =
  let lbl name = Obs.Metric.labelled name [ ("app", app) ] in
  let c name help = Obs.Registry.counter reg ~help (lbl name) in
  let g name help = Obs.Registry.gauge reg ~help (lbl name) in
  {
    chunk_bytes = c "ripple_serve_chunk_bytes" "PT bytes received over the wire";
    decoded_blocks = c "ripple_serve_decoded_blocks" "blocks decoded incrementally";
    salvage = g "ripple_serve_session_salvage" "merged salvage of the rolling profile";
    drift = g "ripple_serve_session_drift" "drift of the last re-emission";
    ladder_level = g "ripple_serve_ladder_level" "ladder rung: 0 full, 1 safe-only, 2 off";
    ladder_transitions = c "ripple_serve_ladder_transitions" "ladder level changes";
    reemissions = c "ripple_serve_reemissions" "hint re-emissions performed";
    stream_spill_bytes =
      Obs.Registry.counter reg ~help:"bytes written to stream spill files"
        "ripple_stream_spill_bytes";
  }

let create ~obs ~options ~window ~reemit_every ~name ~program =
  let options = { options with Pipeline.Options.eval = None; search = [] } in
  let backing = options.Pipeline.Options.backing in
  let reg = Obs.Run.registry obs in
  let cells = register_cells reg name in
  Obs.Metric.set cells.ladder_level 2.0;
  Obs.Metric.set
    (Obs.Registry.gauge reg ~help:"access-stream backing: 0 heap, 1 mmap"
       "ripple_stream_backing")
    (match backing with Ripple_util.Int_stream.Heap -> 0.0 | Ripple_util.Int_stream.Spill _ -> 1.0);
  {
    name;
    source = program;
    obs;
    options;
    reemit_every;
    rolling = Rolling.create ~backing ~window ();
    pt = Pt.Session.create program;
    level = Pipeline.Degrade.Hints_off;
    transitions = 0;
    emissions = 0;
    last = None;
    since_emit = 0;
    cells;
  }

let name t = t.name
let level t = t.level
let transitions t = t.transitions
let emissions t = t.emissions
let last_outcome t = t.last

let program t =
  match t.last with Some oc -> oc.Pipeline.program | None -> t.source

let level_code = function
  | Pipeline.Degrade.Full -> 0.0
  | Pipeline.Degrade.Safe_only -> 1.0
  | Pipeline.Degrade.Hints_off -> 2.0

(* The merged profile right now: closed generations plus the in-flight
   one.  The in-flight capture counts only what has already decoded
   (expected := decoded), so a mid-capture re-emission is not punished
   for the tail that simply has not arrived yet; truncation is judged
   at flush, when the header's advertised count comes due. *)
let profile_now t =
  let partial = (Pt.Session.result t.pt).Pt.trace in
  let trace = Array.append (Rolling.trace t.rolling) partial in
  let decoded = Rolling.blocks t.rolling + Array.length partial in
  let expected = Rolling.advertised t.rolling + Array.length partial in
  let errors = Rolling.errors t.rolling + Pt.Session.errors t.pt in
  let salvage =
    if expected > 0 then Float.of_int decoded /. Float.of_int expected
    else if (Rolling.generations t.rolling > 0 || Pt.Session.finished t.pt) && errors = 0
    then 1.0
    else 0.0
  in
  { Pipeline.trace; source = t.source; salvage; pt_errors = errors }

let emit t =
  let profile = profile_now t in
  let oc = Pipeline.run ~obs:t.obs t.options ~source:t.source (Pipeline.Profile profile) in
  let degrade = oc.Pipeline.analysis.Pipeline.degrade in
  let level = degrade.Pipeline.Degrade.level in
  if level <> t.level then begin
    t.transitions <- t.transitions + 1;
    Obs.Metric.incr t.cells.ladder_transitions
  end;
  t.level <- level;
  t.last <- Some oc;
  t.emissions <- t.emissions + 1;
  t.since_emit <- 0;
  Obs.Metric.set t.cells.ladder_level (level_code level);
  Obs.Metric.set t.cells.salvage profile.Pipeline.salvage;
  Obs.Metric.set t.cells.drift degrade.Pipeline.Degrade.drift;
  Obs.Metric.incr t.cells.reemissions

let feed t chunk =
  Obs.Metric.add t.cells.chunk_bytes (Bytes.length chunk);
  if not (Pt.Session.finished t.pt) then Pt.Session.feed t.pt chunk;
  let fresh = Array.length (Pt.Session.drain t.pt) in
  Obs.Metric.add t.cells.decoded_blocks fresh;
  t.since_emit <- t.since_emit + fresh;
  if t.reemit_every > 0 && t.since_emit >= t.reemit_every then emit t;
  Pt.Session.decoded t.pt

let flush t =
  Pt.Session.finish t.pt;
  let r = Pt.Session.result t.pt in
  Rolling.add t.rolling ~blocks:r.Pt.trace ~expected:r.Pt.expected
    ~errors:(List.length r.Pt.errors);
  (match Rolling.backing t.rolling with
  | Ripple_util.Int_stream.Heap -> ()
  | Ripple_util.Int_stream.Spill _ ->
    Obs.Metric.add t.cells.stream_spill_bytes (8 * Array.length r.Pt.trace));
  t.pt <- Pt.Session.create t.source;
  t.since_emit <- 0;
  emit t

let close t = Rolling.close t.rolling

let status t =
  let drift, salvage =
    match t.last with
    | Some oc ->
      let d = oc.Pipeline.analysis.Pipeline.degrade in
      (d.Pipeline.Degrade.drift, d.Pipeline.Degrade.salvage)
    | None -> (0.0, 0.0)
  in
  Json.Obj
    [
      ("app", Json.String t.name);
      ("level", Json.String (Pipeline.Degrade.level_name t.level));
      ("generations", Json.Int (Rolling.generations t.rolling));
      ("window_blocks", Json.Int (Rolling.blocks t.rolling));
      ("inflight_blocks", Json.Int (Pt.Session.decoded t.pt));
      ("salvage", Json.Float salvage);
      ("drift", Json.Float drift);
      ("pt_errors", Json.Int (Rolling.errors t.rolling + Pt.Session.errors t.pt));
      ("transitions", Json.Int t.transitions);
      ("emissions", Json.Int t.emissions);
      ( "hints",
        Json.Int
          (match t.last with
          | Some oc -> Program.static_hints oc.Pipeline.program
          | None -> 0) );
    ]
