(** The [ripple-sim serve] daemon: a deadline-driven event loop
    multiplexing framed profiling connections ({!Protocol}) and an
    OpenMetrics scrape endpoint over TCP.

    One process holds one {!Ripple_obs.Run.t} and a registry of
    {!Session}s keyed by app name.  Connections bind to a session with
    [Hello]/[Hello_v] and stream chunks; sessions outlive connections,
    so a fleet agent can reconnect and keep extending the same rolling
    profile.  Every frame is handled under a [serve/<frame>] span; the
    scrape endpoint renders the live snapshot, whose [# TYPE] lines are
    the full pinned schema ([docs/metrics.schema]) because the pipeline
    vocabulary is registered up front
    ({!Ripple_core.Pipeline.register_metrics}).

    {b Crash-only operation.}  With [state_dir] set, sessions are
    durable ({!Snapshot}): flushes write atomic snapshots, in-flight
    chunks are journaled write-ahead, and {!create} recovers every
    session found in the directory — so [kill -9] loses nothing a
    resumed v2 push can't finish.  SIGTERM is the {e polite} spelling of
    the same contract: drain buffered replies, snapshot every session,
    remove the ready file, return from {!serve_forever}.

    {b Event loop.}  Single-threaded and non-blocking: every fd is
    non-blocking, replies queue in per-connection write buffers that
    drain as the socket accepts them, scrape requests accumulate without
    blocking the loop, accept/read retry on [EINTR] and shed on
    [EMFILE], and connections idle past [idle_timeout] are reaped.
    Load beyond [max_conns] is answered with [Error "overloaded"] (or
    HTTP 503) and closed; session registrations beyond [max_sessions]
    are likewise refused.  Frame handling (including pipeline
    re-emission) serializes naturally, and sessions share the
    observability context without locking. *)

module Program := Ripple_isa.Program
module Pipeline := Ripple_core.Pipeline
module Obs := Ripple_obs

type config = {
  host : string;  (** bind address, e.g. "127.0.0.1" *)
  port : int;  (** protocol listener; 0 picks an ephemeral port *)
  metrics_port : int;  (** scrape listener; 0 picks an ephemeral port *)
  window : int;  (** rolling-profile capacity in blocks, per session *)
  reemit_every : int;  (** mid-capture re-emission cadence; 0 = flush-only *)
  options : Pipeline.Options.t;  (** pipeline options for re-emissions *)
  lookup : string -> Program.t option;  (** app name → program to serve *)
  ready_file : string option;
      (** when set, written as ["<port> <metrics_port>\n"] once both
          listeners are bound — the startup handshake for scripts —
          and removed again on graceful shutdown *)
  state_dir : string option;
      (** when set, sessions are durable here: snapshots + journals,
          recovered by {!create} *)
  max_conns : int;  (** open connections beyond this are shed *)
  max_sessions : int;  (** session registrations beyond this are refused *)
  idle_timeout : float;
      (** seconds of connection silence before the reaper closes it;
          [<= 0.] disables the deadline *)
}

val default_config : config
(** Binds 127.0.0.1 on ephemeral ports; [options] is
    {!Pipeline.Options.default} with [degrade = true]; [window] 400k
    blocks; [reemit_every] 0; [lookup] resolves the nine built-in app
    models ({!Ripple_workloads.Apps}) by generating their programs on
    first use; not durable ([state_dir = None]); [max_conns] 64,
    [max_sessions] 32, [idle_timeout] 30s. *)

val builtin_lookup : string -> Program.t option
(** The default [lookup]: {!Ripple_workloads.Apps.by_name} →
    {!Ripple_workloads.Cfg_gen.generate}, memoized. *)

type t

val create : config -> t
(** Build the daemon state.  With [state_dir] set, opens the store and
    recovers every snapshot in it through {!Session.restore} (apps the
    [lookup] no longer knows are skipped), counting each into
    [ripple_serve_snapshots_recovered]. *)

val obs : t -> Obs.Run.t
val sessions : t -> Session.t list
(** Name-sorted. *)

val find_session : t -> string -> Session.t option

val snapshot_all : t -> unit
(** Write every session's snapshot now (no-op without a store) —
    the graceful-drain persistence step, exposed for tests. *)

(** Per-connection protocol state: which session [Hello] bound and the
    negotiated protocol version. *)
module Conn : sig
  type conn

  val create : unit -> conn

  val handle : t -> conn -> Protocol.frame -> Protocol.reply * [ `Keep | `Close ]
  (** Pure protocol logic — no sockets — so daemon behaviour is testable
      in-process.  [`Close] is returned for [Bye] (and the reply is
      still to be written first).  [Hello_v] grants
      [min (requested, {!Protocol.version})] and echoes it with the
      session status (which carries [next_seq]); sequenced frames are
      answered with their [seq] (plus ["dup": true] on replays, which
      also count into [ripple_serve_client_retries]); out-of-order
      frames get [Error "gap: expected seq N"]; registrations over
      [max_sessions] get [Error "overloaded"]. *)
end

val metrics_body : t -> string
(** The OpenMetrics exposition of the live snapshot (also bumps the
    scrape counter, like an HTTP scrape does). *)

val serve_forever : t -> unit
(** Bind both listeners, write [ready_file], and run the event loop
    until SIGTERM (or {!request_stop}); then drain, snapshot every
    session, remove [ready_file] and return — the caller exits 0.
    Raises [Unix.Unix_error] if binding fails. *)

val request_stop : t -> unit
(** Flip the stop flag {!serve_forever} polls — what the SIGTERM handler
    does, exposed for in-process tests. *)
