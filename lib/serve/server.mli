(** The [ripple-sim serve] daemon: a select-loop server multiplexing
    framed profiling connections ({!Protocol}) and an OpenMetrics scrape
    endpoint over TCP.

    One process holds one {!Ripple_obs.Run.t} and a registry of
    {!Session}s keyed by app name.  Connections bind to a session with
    [Hello] and stream [Chunk]s; sessions outlive connections, so a
    fleet agent can reconnect and keep extending the same rolling
    profile.  Every frame is handled under a [serve/<frame>] span; the
    scrape endpoint renders the live snapshot, whose [# TYPE] lines are
    the full pinned schema ([docs/metrics.schema]) because the pipeline
    vocabulary is registered up front
    ({!Ripple_core.Pipeline.register_metrics}).

    The loop is single-threaded: frame handling (including pipeline
    re-emission) serializes naturally, and sessions share the
    observability context without locking. *)

module Program := Ripple_isa.Program
module Pipeline := Ripple_core.Pipeline
module Obs := Ripple_obs

type config = {
  host : string;  (** bind address, e.g. "127.0.0.1" *)
  port : int;  (** protocol listener; 0 picks an ephemeral port *)
  metrics_port : int;  (** scrape listener; 0 picks an ephemeral port *)
  window : int;  (** rolling-profile capacity in blocks, per session *)
  reemit_every : int;  (** mid-capture re-emission cadence; 0 = flush-only *)
  options : Pipeline.Options.t;  (** pipeline options for re-emissions *)
  lookup : string -> Program.t option;  (** app name → program to serve *)
  ready_file : string option;
      (** when set, written as ["<port> <metrics_port>\n"] once both
          listeners are bound — the startup handshake for scripts *)
}

val default_config : config
(** Binds 127.0.0.1 on ephemeral ports; [options] is
    {!Pipeline.Options.default} with [degrade = true]; [window] 400k
    blocks; [reemit_every] 0; [lookup] resolves the nine built-in app
    models ({!Ripple_workloads.Apps}) by generating their programs on
    first use. *)

val builtin_lookup : string -> Program.t option
(** The default [lookup]: {!Ripple_workloads.Apps.by_name} →
    {!Ripple_workloads.Cfg_gen.generate}, memoized. *)

type t

val create : config -> t
val obs : t -> Obs.Run.t
val sessions : t -> Session.t list
(** Name-sorted. *)

val find_session : t -> string -> Session.t option

(** Per-connection protocol state: which session [Hello] bound. *)
module Conn : sig
  type conn

  val create : unit -> conn

  val handle : t -> conn -> Protocol.frame -> Protocol.reply * [ `Keep | `Close ]
  (** Pure protocol logic — no sockets — so daemon behaviour is testable
      in-process.  [`Close] is returned for [Bye] (and the reply is
      still to be written first). *)
end

val metrics_body : t -> string
(** The OpenMetrics exposition of the live snapshot (also bumps the
    scrape counter, like an HTTP scrape does). *)

val serve_forever : t -> unit
(** Bind both listeners, write [ready_file], and run the select loop
    until the process is killed.  Raises [Unix.Unix_error] if binding
    fails. *)
