(** Durable session state for the crash-only daemon.

    Two on-disk artifacts per app session, both integrity-checked with
    FNV-1a 64 so a torn write is detected rather than trusted:

    - a {e snapshot} ([<app>.snap]): the closed rolling-window
      generations, the merged salvage counters they imply, the
      degradation-ladder position and the protocol sequence horizon —
      everything except the in-flight capture.  Written atomically
      (temp file + [fsync] + rename + directory [fsync]) at every flush
      and at graceful shutdown;

    - a {e capture journal} ([<app>.journal]): one checksummed record
      per applied chunk of the in-flight generation, appended (and
      fsynced) before the chunk reaches the decoder, truncated when a
      flush folds the capture into a snapshot generation.

    Recovery is snapshot ∘ journal: load the snapshot, replay the
    journal records at or past its sequence horizon, and the session is
    byte-for-byte where a [kill -9] found it.  Both decoders are total:
    corrupt or truncated input yields [Error] (snapshot) or the longest
    valid record prefix (journal), never an exception. *)

type gen = { g_blocks : int array; g_expected : int; g_errors : int }
(** One closed capture generation, as {!Rolling} retains it. *)

type state = {
  app : string;
  level : int;  (** degradation-ladder rung: 0 full, 1 safe-only, 2 off *)
  transitions : int;
  emissions : int;
  next_seq : int;  (** next protocol sequence number the session expects *)
  gens : gen list;  (** oldest first *)
}

val encode : state -> bytes
(** Versioned, checksummed snapshot image. *)

val decode : bytes -> (state, string) result
(** Total: a corrupt, truncated or foreign byte string is [Error]. *)

val journal_record : seq:int -> bytes -> bytes
(** One checksummed journal record. *)

val journal_decode : bytes -> (int * bytes) list
(** Longest valid record prefix, in append order.  A partial or
    corrupt tail (the crash-mid-append case) is silently dropped. *)

(** File management for a [--state-dir]. *)
module Store : sig
  type t

  val open_dir : string -> t
  (** Creates the directory (and parents) if needed. *)

  val dir : t -> string

  val save : t -> state -> unit
  (** Atomic durable snapshot write: temp + [fsync] + rename +
      directory [fsync]. *)

  val journal_append : t -> app:string -> seq:int -> bytes -> unit
  (** Append one record and [fsync] — call {e before} applying the
      chunk, so the journal never lags the decoder. *)

  val journal_reset : t -> app:string -> unit
  (** Remove the app's journal (after its capture was folded into a
      snapshot). *)

  val load : t -> string -> (state * (int * bytes) list) option
  (** The app's snapshot plus the journal records at or past its
      sequence horizon; [None] if there is no loadable snapshot. *)

  val load_all : t -> (state * (int * bytes) list) list
  (** Every recoverable session in the directory, app-sorted. *)

  val close : t -> unit
  (** Close any open journal descriptors. *)
end
