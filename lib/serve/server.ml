module Program = Ripple_isa.Program
module Pipeline = Ripple_core.Pipeline
module Apps = Ripple_workloads.Apps
module Cfg_gen = Ripple_workloads.Cfg_gen
module Obs = Ripple_obs
module Json = Ripple_util.Json

type config = {
  host : string;
  port : int;
  metrics_port : int;
  window : int;
  reemit_every : int;
  options : Pipeline.Options.t;
  lookup : string -> Program.t option;
  ready_file : string option;
  state_dir : string option;
  max_conns : int;
  max_sessions : int;
  idle_timeout : float;
}

let builtin_lookup =
  let cache : (string, Program.t) Hashtbl.t = Hashtbl.create 16 in
  fun name ->
    match Hashtbl.find_opt cache name with
    | Some p -> Some p
    | None ->
      Apps.by_name name
      |> Option.map (fun model ->
             let program = (Cfg_gen.generate model).Cfg_gen.program in
             Hashtbl.add cache name program;
             program)

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    metrics_port = 0;
    window = 400_000;
    reemit_every = 0;
    options = { Pipeline.Options.default with degrade = true };
    lookup = builtin_lookup;
    ready_file = None;
    state_dir = None;
    max_conns = 64;
    max_sessions = 32;
    idle_timeout = 30.0;
  }

type cells = {
  sessions_gauge : Obs.Metric.gauge;
  connections_gauge : Obs.Metric.gauge;
  frames : Obs.Metric.counter;
  scrapes : Obs.Metric.counter;
  snapshots_written : Obs.Metric.counter;
  snapshots_recovered : Obs.Metric.counter;
  connections_shed : Obs.Metric.counter;
  deadlines_expired : Obs.Metric.counter;
  client_retries : Obs.Metric.counter;
}

type t = {
  config : config;
  obs : Obs.Run.t;
  store : Snapshot.Store.t option;
  mutable sessions : Session.t list;  (* name-sorted *)
  mutable stopping : bool;
  cells : cells;
}

let session_of t (state : Snapshot.state) journal =
  match t.config.lookup state.Snapshot.app with
  | None -> None
  | Some program ->
    Some
      (Session.restore ?store:t.store ~obs:t.obs ~options:t.config.options
         ~window:t.config.window ~reemit_every:t.config.reemit_every ~program state journal)

let create config =
  let obs = Obs.Run.create () in
  (* Daemon teardown: whatever spill-backed windows are still live when
     the process exits, their files go with it. *)
  at_exit (fun () -> ignore (Ripple_util.Int_stream.Spill.sweep () : int));
  let reg = Obs.Run.registry obs in
  (* The scrape endpoint must expose the full pinned vocabulary from the
     first request, not just the families the traffic so far happened to
     touch. *)
  Pipeline.register_metrics reg;
  let cells =
    {
      sessions_gauge = Obs.Registry.gauge reg ~help:"registered app sessions" "ripple_serve_sessions";
      connections_gauge =
        Obs.Registry.gauge reg ~help:"open protocol connections" "ripple_serve_connections";
      frames = Obs.Registry.counter reg ~help:"protocol frames handled" "ripple_serve_frames";
      scrapes = Obs.Registry.counter reg ~help:"metrics scrapes served" "ripple_serve_scrapes";
      snapshots_written =
        Obs.Registry.counter reg ~help:"durable session snapshots written"
          "ripple_serve_snapshots_written";
      snapshots_recovered =
        Obs.Registry.counter reg ~help:"sessions recovered from durable snapshots at startup"
          "ripple_serve_snapshots_recovered";
      connections_shed =
        Obs.Registry.counter reg ~help:"connections shed under overload"
          "ripple_serve_connections_shed";
      deadlines_expired =
        Obs.Registry.counter reg ~help:"connections reaped by the idle deadline"
          "ripple_serve_deadlines_expired";
      client_retries =
        Obs.Registry.counter reg ~help:"duplicate sequenced frames (client retry evidence)"
          "ripple_serve_client_retries";
    }
  in
  let store = Option.map Snapshot.Store.open_dir config.state_dir in
  let t = { config; obs; store; sessions = []; stopping = false; cells } in
  (* Crash-only startup: every session with a loadable snapshot comes
     back — rolling window, ladder position, sequence horizon and the
     in-flight capture replayed from its journal. *)
  (match store with
  | None -> ()
  | Some store ->
    t.sessions <-
      List.filter_map
        (fun (state, journal) ->
          match session_of t state journal with
          | Some s ->
            Obs.Metric.incr cells.snapshots_recovered;
            Some s
          | None -> None)
        (Snapshot.Store.load_all store)
      |> List.sort (fun a b -> compare (Session.name a) (Session.name b)));
  Obs.Metric.set cells.sessions_gauge (Float.of_int (List.length t.sessions));
  t

let obs t = t.obs
let sessions t = t.sessions
let request_stop t = t.stopping <- true
let find_session t name = List.find_opt (fun s -> Session.name s = name) t.sessions

let register_session t name program =
  let s =
    Session.create ?store:t.store ~obs:t.obs ~options:t.config.options ~window:t.config.window
      ~reemit_every:t.config.reemit_every ~name ~program ()
  in
  t.sessions <-
    List.sort (fun a b -> compare (Session.name a) (Session.name b)) (s :: t.sessions);
  Obs.Metric.set t.cells.sessions_gauge (Float.of_int (List.length t.sessions));
  s

let snapshot_all t =
  List.iter
    (fun s ->
      Session.save s;
      if t.store <> None then Obs.Metric.incr t.cells.snapshots_written)
    t.sessions

module Conn = struct
  type conn = { mutable session : Session.t option; mutable version : int }

  let create () = { session = None; version = 1 }

  let bind_session t conn app =
    match find_session t app with
    | Some s ->
      conn.session <- Some s;
      `Ok s
    | None ->
      if List.length t.sessions >= t.config.max_sessions then `Overloaded
      else begin
        match t.config.lookup app with
        | Some program ->
          let s = register_session t app program in
          conn.session <- Some s;
          `Ok s
        | None -> `Unknown
      end

  let with_fields extra json =
    match json with Json.Obj fields -> Json.Obj (extra @ fields) | json -> json

  let handle t conn frame =
    Obs.Metric.incr t.cells.frames;
    Obs.Span.with_span (Obs.Run.spans t.obs)
      ("serve/" ^ Protocol.frame_name frame)
      (fun () ->
        match frame with
        | Protocol.Hello app | Protocol.Hello_v { app; _ } -> begin
          let version =
            match frame with
            | Protocol.Hello_v { version; _ } -> min (max version 1) Protocol.version
            | _ -> 1
          in
          conn.version <- version;
          match bind_session t conn app with
          | `Ok s ->
            let extra =
              match frame with
              | Protocol.Hello_v _ -> [ ("version", Json.Int version) ]
              | _ -> []
            in
            (Protocol.Ok (with_fields extra (Session.status s)), `Keep)
          | `Overloaded ->
            Obs.Metric.incr t.cells.connections_shed;
            (Protocol.Error "overloaded", `Keep)
          | `Unknown -> (Protocol.Error (Printf.sprintf "unknown app %S" app), `Keep)
        end
        | Protocol.Chunk data -> begin
          match conn.session with
          | None -> (Protocol.Error "chunk before hello", `Keep)
          | Some s ->
            let decoded = Session.feed s data in
            (Protocol.Ok (Json.Obj [ ("decoded", Json.Int decoded) ]), `Keep)
        end
        | Protocol.Chunk_seq { seq; data } -> begin
          match conn.session with
          | None -> (Protocol.Error "chunk before hello", `Keep)
          | Some s -> begin
            match Session.apply_chunk s ~seq data with
            | `Applied decoded ->
              ( Protocol.Ok (Json.Obj [ ("decoded", Json.Int decoded); ("seq", Json.Int seq) ]),
                `Keep )
            | `Duplicate decoded ->
              Obs.Metric.incr t.cells.client_retries;
              ( Protocol.Ok
                  (Json.Obj
                     [
                       ("decoded", Json.Int decoded);
                       ("seq", Json.Int seq);
                       ("dup", Json.Bool true);
                     ]),
                `Keep )
            | `Gap expected ->
              (Protocol.Error (Printf.sprintf "gap: expected seq %d" expected), `Keep)
          end
        end
        | Protocol.Flush -> begin
          match conn.session with
          | None -> (Protocol.Error "flush before hello", `Keep)
          | Some s ->
            Session.flush s;
            if t.store <> None then Obs.Metric.incr t.cells.snapshots_written;
            (Protocol.Ok (Session.status s), `Keep)
        end
        | Protocol.Flush_seq { seq } -> begin
          match conn.session with
          | None -> (Protocol.Error "flush before hello", `Keep)
          | Some s -> begin
            match Session.apply_flush s ~seq with
            | `Applied ->
              if t.store <> None then Obs.Metric.incr t.cells.snapshots_written;
              (Protocol.Ok (with_fields [ ("seq", Json.Int seq) ] (Session.status s)), `Keep)
            | `Duplicate ->
              Obs.Metric.incr t.cells.client_retries;
              ( Protocol.Ok
                  (with_fields
                     [ ("seq", Json.Int seq); ("dup", Json.Bool true) ]
                     (Session.status s)),
                `Keep )
            | `Gap expected ->
              (Protocol.Error (Printf.sprintf "gap: expected seq %d" expected), `Keep)
          end
        end
        | Protocol.Status -> begin
          match conn.session with
          | None -> (Protocol.Error "status before hello", `Keep)
          | Some s -> (Protocol.Ok (Session.status s), `Keep)
        end
        | Protocol.Bye -> (Protocol.Ok (Json.Obj [ ("bye", Json.Bool true) ]), `Close))
end

let metrics_body t =
  Obs.Metric.incr t.cells.scrapes;
  Obs.Snapshot.to_openmetrics (Obs.Run.snapshot t.obs)

(* ------------------------------------------------------------------ *)
(* Socket plumbing                                                     *)

let listen_on host port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  let bound =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  (fd, bound)

type kind =
  | Proto of { reader : Protocol.Reader.t; conn : Conn.conn }
  | Scrape of { req : Buffer.t }

(* One live connection in the event loop: a non-blocking fd, a buffered
   writer (replies queue here; the loop writes when the socket can take
   them), and an activity clock for the idle deadline. *)
type live = {
  fd : Unix.file_descr;
  kind : kind;
  out : Buffer.t;
  mutable sent : int;
  mutable closing : bool;  (* close once [out] drains *)
  mutable last_activity : float;
}

let http_response body =
  Printf.sprintf
    "HTTP/1.1 200 OK\r\n\
     Content-Type: application/openmetrics-text; version=1.0.0; charset=utf-8\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    (String.length body) body

let http_unavailable =
  "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 10\r\nConnection: close\r\n\r\noverloaded"

(* Abuse bounds.  A peer that drips bytes that never complete a scrape
   request head, or that sends protocol frames without ever reading the
   replies, must not grow daemon memory without bound (each read also
   refreshes the idle clock, so the reaper alone cannot stop it). *)
let max_scrape_head = 8 * 1024
let max_out_buffer = 1 lsl 20

let set_connections t n = Obs.Metric.set t.cells.connections_gauge (Float.of_int n)

let queue_reply c reply =
  let buf = Buffer.create 256 in
  Protocol.write_reply buf reply;
  Buffer.add_buffer c.out buf

(* Drain as much of the pending output as the socket accepts right now.
   Returns [false] if the connection died. *)
let pump_out c =
  let total = Buffer.length c.out in
  if c.sent >= total then true
  else begin
    let data = Buffer.to_bytes c.out in
    let rec go () =
      if c.sent >= total then ()
      else
        match Unix.write c.fd data c.sent (total - c.sent) with
        | n ->
          c.sent <- c.sent + n;
          go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    match go () with
    | () ->
      if c.sent >= total then begin
        Buffer.clear c.out;
        c.sent <- 0
      end;
      true
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) -> false
  end

let serve_forever t =
  let serve_fd, port = listen_on t.config.host t.config.port in
  let metrics_fd, metrics_port = listen_on t.config.host t.config.metrics_port in
  Option.iter
    (fun path ->
      let oc = open_out path in
      Printf.fprintf oc "%d %d\n" port metrics_port;
      close_out oc)
    t.config.ready_file;
  (* A dead peer must surface as EPIPE on write, not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* Crash-only shutdown: SIGTERM requests a graceful drain — flush
     buffered replies, snapshot every session, drop the ready file —
     and anything harder (SIGKILL) is recovered from the snapshots and
     journals instead. *)
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> t.stopping <- true))
   with Invalid_argument _ -> ());
  let conns = ref [] in
  let close_conn c =
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    conns := List.filter (fun o -> o != c) !conns;
    set_connections t (List.length !conns)
  in
  let add_conn c =
    Unix.set_nonblock c.fd;
    conns := c :: !conns;
    set_connections t (List.length !conns)
  in
  let now () = Unix.gettimeofday () in
  let live kind fd =
    { fd; kind; out = Buffer.create 256; sent = 0; closing = false; last_activity = now () }
  in
  let buf = Bytes.create 65536 in
  let handle_read c =
    match Unix.read c.fd buf 0 (Bytes.length buf) with
    | 0 -> begin
      (* Peer closed its end.  A scrape that never sent a full request
         still gets the exposition (curl-style half-close tolerance);
         protocol connections just go away. *)
      match c.kind with
      | Scrape _ when Buffer.length c.out = 0 && not c.closing ->
        Buffer.add_string c.out (http_response (metrics_body t));
        c.closing <- true
      | _ -> close_conn c
    end
    | n -> begin
      c.last_activity <- now ();
      match c.kind with
      | Proto { reader; conn } ->
        Protocol.Reader.add reader buf n;
        let rec drain () =
          if not c.closing then
            match Protocol.Reader.pop_frame reader with
            | `Awaiting -> ()
            | `Corrupt msg ->
              queue_reply c (Protocol.Error msg);
              c.closing <- true
            | `Frame frame ->
              let reply, disposition = Conn.handle t conn frame in
              queue_reply c reply;
              if disposition = `Close then c.closing <- true else drain ()
        in
        drain ();
        (* Out-buffer cap: a peer that keeps sending frames but never
           reads replies is broken or hostile — drop it rather than
           queue without bound. *)
        if Buffer.length c.out - c.sent > max_out_buffer then close_conn c
      | Scrape { req } ->
        Buffer.add_subbytes req buf 0 n;
        if Buffer.length req > max_scrape_head then
          (* Request-head cap: a slow-loris peer streaming bytes that
             never contain the blank line would otherwise grow [req]
             (and refresh the idle clock) forever. *)
          close_conn c
        else begin
          let s = Buffer.contents req in
          (* Serve once the request head is complete; one response per
             connection, close after. *)
          let complete =
            let rec find i =
              i + 3 < String.length s
              && (String.sub s i 4 = "\r\n\r\n" || find (i + 1))
            in
            String.length s >= 4 && find 0
          in
          if complete && Buffer.length c.out = 0 then begin
            Buffer.add_string c.out (http_response (metrics_body t));
            c.closing <- true
          end
        end
    end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> close_conn c
  in
  let accept_loop lfd make_overloaded make_conn =
    let rec go () =
      match Unix.accept lfd with
      | cfd, _ ->
        if List.length !conns >= t.config.max_conns then begin
          (* Load shedding: answer, don't hang — the reply is queued and
             the connection closes as soon as it drains. *)
          Obs.Metric.incr t.cells.connections_shed;
          let c = make_overloaded cfd in
          c.closing <- true;
          add_conn c
        end
        else add_conn (make_conn cfd);
        go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> go ()
      | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
        (* Out of descriptors: shed by not accepting; the idle reaper
           frees capacity rather than the daemon crashing. *)
        Obs.Metric.incr t.cells.connections_shed
    in
    go ()
  in
  let proto_conn cfd = live (Proto { reader = Protocol.Reader.create (); conn = Conn.create () }) cfd in
  let scrape_conn cfd = live (Scrape { req = Buffer.create 256 }) cfd in
  let overloaded_proto cfd =
    let c = proto_conn cfd in
    queue_reply c (Protocol.Error "overloaded");
    c
  in
  let overloaded_scrape cfd =
    let c = scrape_conn cfd in
    Buffer.add_string c.out http_unavailable;
    c
  in
  while not t.stopping do
    let pending c = Buffer.length c.out > c.sent in
    let rfds = serve_fd :: metrics_fd :: List.map (fun c -> c.fd) !conns in
    let wfds = List.filter_map (fun c -> if pending c then Some c.fd else None) !conns in
    let timeout = if !conns = [] then -1.0 else 0.1 in
    match Unix.select rfds wfds [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
      if List.mem serve_fd readable then accept_loop serve_fd overloaded_proto proto_conn;
      if List.mem metrics_fd readable then accept_loop metrics_fd overloaded_scrape scrape_conn;
      List.iter
        (fun fd ->
          match List.find_opt (fun c -> c.fd = fd) !conns with
          | Some c when fd <> serve_fd && fd <> metrics_fd -> handle_read c
          | _ -> ())
        readable;
      List.iter
        (fun fd ->
          match List.find_opt (fun c -> c.fd = fd) !conns with
          | Some c -> if not (pump_out c) then close_conn c
          | None -> ())
        writable;
      (* Opportunistic write for replies queued this tick, so a request
         served in one round trip doesn't wait for the next select. *)
      List.iter (fun c -> if pending c then ignore (pump_out c : bool)) !conns;
      List.iter (fun c -> if c.closing && not (pending c) then close_conn c) !conns;
      (* Idle deadline: a connected-but-silent peer (a stuck scraper, a
         wedged agent) is reaped instead of holding state forever. *)
      if t.config.idle_timeout > 0.0 then begin
        let horizon = now () -. t.config.idle_timeout in
        List.iter
          (fun c ->
            if c.last_activity < horizon then begin
              Obs.Metric.incr t.cells.deadlines_expired;
              close_conn c
            end)
          !conns
      end
  done;
  (* Graceful drain: push out whatever replies are still buffered (best
     effort, bounded), make every session durable, and withdraw the
     ready-file handshake so a supervisor never reads a stale port. *)
  let deadline = Unix.gettimeofday () +. 1.0 in
  List.iter
    (fun c ->
      let rec flush () =
        if Buffer.length c.out > c.sent && Unix.gettimeofday () < deadline then
          if pump_out c then begin
            if Buffer.length c.out > c.sent then begin
              ignore
                (try Unix.select [] [ c.fd ] [] 0.05
                 with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], []));
              flush ()
            end
          end
      in
      flush ();
      try Unix.close c.fd with Unix.Unix_error _ -> ())
    !conns;
  snapshot_all t;
  (try Unix.close serve_fd with Unix.Unix_error _ -> ());
  (try Unix.close metrics_fd with Unix.Unix_error _ -> ());
  Option.iter (fun path -> try Sys.remove path with Sys_error _ -> ()) t.config.ready_file
