module Program = Ripple_isa.Program
module Pipeline = Ripple_core.Pipeline
module Apps = Ripple_workloads.Apps
module Cfg_gen = Ripple_workloads.Cfg_gen
module Obs = Ripple_obs
module Json = Ripple_util.Json

type config = {
  host : string;
  port : int;
  metrics_port : int;
  window : int;
  reemit_every : int;
  options : Pipeline.Options.t;
  lookup : string -> Program.t option;
  ready_file : string option;
}

let builtin_lookup =
  let cache : (string, Program.t) Hashtbl.t = Hashtbl.create 16 in
  fun name ->
    match Hashtbl.find_opt cache name with
    | Some p -> Some p
    | None ->
      Apps.by_name name
      |> Option.map (fun model ->
             let program = (Cfg_gen.generate model).Cfg_gen.program in
             Hashtbl.add cache name program;
             program)

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    metrics_port = 0;
    window = 400_000;
    reemit_every = 0;
    options = { Pipeline.Options.default with degrade = true };
    lookup = builtin_lookup;
    ready_file = None;
  }

type cells = {
  sessions_gauge : Obs.Metric.gauge;
  connections_gauge : Obs.Metric.gauge;
  frames : Obs.Metric.counter;
  scrapes : Obs.Metric.counter;
}

type t = {
  config : config;
  obs : Obs.Run.t;
  mutable sessions : Session.t list;  (* name-sorted *)
  cells : cells;
}

let create config =
  let obs = Obs.Run.create () in
  (* Daemon teardown: whatever spill-backed windows are still live when
     the process exits, their files go with it. *)
  at_exit (fun () -> ignore (Ripple_util.Int_stream.Spill.sweep () : int));
  let reg = Obs.Run.registry obs in
  (* The scrape endpoint must expose the full pinned vocabulary from the
     first request, not just the families the traffic so far happened to
     touch. *)
  Pipeline.register_metrics reg;
  let cells =
    {
      sessions_gauge = Obs.Registry.gauge reg ~help:"registered app sessions" "ripple_serve_sessions";
      connections_gauge =
        Obs.Registry.gauge reg ~help:"open protocol connections" "ripple_serve_connections";
      frames = Obs.Registry.counter reg ~help:"protocol frames handled" "ripple_serve_frames";
      scrapes = Obs.Registry.counter reg ~help:"metrics scrapes served" "ripple_serve_scrapes";
    }
  in
  { config; obs; sessions = []; cells }

let obs t = t.obs
let sessions t = t.sessions
let find_session t name = List.find_opt (fun s -> Session.name s = name) t.sessions

let register_session t name program =
  let s =
    Session.create ~obs:t.obs ~options:t.config.options ~window:t.config.window
      ~reemit_every:t.config.reemit_every ~name ~program
  in
  t.sessions <-
    List.sort (fun a b -> compare (Session.name a) (Session.name b)) (s :: t.sessions);
  Obs.Metric.set t.cells.sessions_gauge (Float.of_int (List.length t.sessions));
  s

module Conn = struct
  type conn = { mutable session : Session.t option }

  let create () = { session = None }

  let handle t conn frame =
    Obs.Metric.incr t.cells.frames;
    Obs.Span.with_span (Obs.Run.spans t.obs)
      ("serve/" ^ Protocol.frame_name frame)
      (fun () ->
        match frame with
        | Protocol.Hello app -> begin
          match find_session t app with
          | Some s ->
            conn.session <- Some s;
            (Protocol.Ok (Session.status s), `Keep)
          | None -> begin
            match t.config.lookup app with
            | Some program ->
              let s = register_session t app program in
              conn.session <- Some s;
              (Protocol.Ok (Session.status s), `Keep)
            | None -> (Protocol.Error (Printf.sprintf "unknown app %S" app), `Keep)
          end
        end
        | Protocol.Chunk data -> begin
          match conn.session with
          | None -> (Protocol.Error "chunk before hello", `Keep)
          | Some s ->
            let decoded = Session.feed s data in
            (Protocol.Ok (Json.Obj [ ("decoded", Json.Int decoded) ]), `Keep)
        end
        | Protocol.Flush -> begin
          match conn.session with
          | None -> (Protocol.Error "flush before hello", `Keep)
          | Some s ->
            Session.flush s;
            (Protocol.Ok (Session.status s), `Keep)
        end
        | Protocol.Status -> begin
          match conn.session with
          | None -> (Protocol.Error "status before hello", `Keep)
          | Some s -> (Protocol.Ok (Session.status s), `Keep)
        end
        | Protocol.Bye -> (Protocol.Ok (Json.Obj [ ("bye", Json.Bool true) ]), `Close))
end

let metrics_body t =
  Obs.Metric.incr t.cells.scrapes;
  Obs.Snapshot.to_openmetrics (Obs.Run.snapshot t.obs)

(* ------------------------------------------------------------------ *)
(* Socket plumbing                                                     *)

let write_all fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write_substring fd s !pos (len - !pos)
  done

let listen_on host port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 16;
  let bound =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  (fd, bound)

type live = {
  fd : Unix.file_descr;
  reader : Protocol.Reader.t;
  conn : Conn.conn;
}

let http_response body =
  Printf.sprintf
    "HTTP/1.1 200 OK\r\n\
     Content-Type: application/openmetrics-text; version=1.0.0; charset=utf-8\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    (String.length body) body

(* One scrape per connection, handled synchronously: read the request
   head, answer, close.  Plenty for a pull-based collector. *)
let handle_scrape t fd =
  let buf = Bytes.create 4096 in
  (try ignore (Unix.read fd buf 0 (Bytes.length buf) : int) with Unix.Unix_error _ -> ());
  (try write_all fd (http_response (metrics_body t)) with Unix.Unix_error _ -> ());
  Unix.close fd

let set_connections t n = Obs.Metric.set t.cells.connections_gauge (Float.of_int n)

let serve_forever t =
  let serve_fd, port = listen_on t.config.host t.config.port in
  let metrics_fd, metrics_port = listen_on t.config.host t.config.metrics_port in
  Option.iter
    (fun path ->
      let oc = open_out path in
      Printf.fprintf oc "%d %d\n" port metrics_port;
      close_out oc)
    t.config.ready_file;
  let conns = ref [] in
  let close_conn c =
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    conns := List.filter (fun o -> o != c) !conns;
    set_connections t (List.length !conns)
  in
  let buf = Bytes.create 65536 in
  let pump c =
    match Unix.read c.fd buf 0 (Bytes.length buf) with
    | 0 -> close_conn c
    | n ->
      Protocol.Reader.add c.reader buf n;
      let rec drain () =
        match Protocol.Reader.pop_frame c.reader with
        | `Awaiting -> ()
        | `Corrupt msg ->
          let out = Buffer.create 64 in
          Protocol.write_reply out (Protocol.Error msg);
          (try write_all c.fd (Buffer.contents out) with Unix.Unix_error _ -> ());
          close_conn c
        | `Frame frame ->
          let reply, disposition = Conn.handle t c.conn frame in
          let out = Buffer.create 256 in
          Protocol.write_reply out reply;
          (try write_all c.fd (Buffer.contents out) with Unix.Unix_error _ -> ());
          if disposition = `Close then close_conn c else drain ()
      in
      drain ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> close_conn c
  in
  while true do
    let fds = serve_fd :: metrics_fd :: List.map (fun c -> c.fd) !conns in
    let readable, _, _ = Unix.select fds [] [] (-1.0) in
    List.iter
      (fun fd ->
        if fd = serve_fd then begin
          let cfd, _ = Unix.accept serve_fd in
          conns := { fd = cfd; reader = Protocol.Reader.create (); conn = Conn.create () } :: !conns;
          set_connections t (List.length !conns)
        end
        else if fd = metrics_fd then begin
          let cfd, _ = Unix.accept metrics_fd in
          handle_scrape t cfd
        end
        else
          match List.find_opt (fun c -> c.fd = fd) !conns with
          | Some c -> pump c
          | None -> ())
      readable
  done
