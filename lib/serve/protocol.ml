module Json = Ripple_util.Json

type frame =
  | Hello of string
  | Hello_v of { app : string; version : int }
  | Chunk of bytes
  | Chunk_seq of { seq : int; data : bytes }
  | Flush
  | Flush_seq of { seq : int }
  | Status
  | Bye

type reply = Ok of Json.t | Error of string

(* Generous for PT chunks (a whole capture fits in one frame if the
   client insists) while bounding what a garbage length prefix can make
   the reader try to buffer. *)
let max_payload = 16 * 1024 * 1024

(* Highest protocol version this build speaks.  v1 is the original
   unsequenced frame set; v2 adds version negotiation in Hello and
   per-session sequence numbers on Chunk/Flush so pushes are
   at-least-once with server-side dedup. *)
let version = 2

let frame_name = function
  | Hello _ | Hello_v _ -> "hello"
  | Chunk _ | Chunk_seq _ -> "chunk"
  | Flush | Flush_seq _ -> "flush"
  | Status -> "status"
  | Bye -> "bye"

let tag_of_frame = function
  | Hello _ -> 'H'
  | Hello_v _ -> 'h'
  | Chunk _ -> 'C'
  | Chunk_seq _ -> 'c'
  | Flush -> 'F'
  | Flush_seq _ -> 'f'
  | Status -> 'S'
  | Bye -> 'B'

let add_u32 buf n =
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (n land 0xFF))

let u32_to_string n =
  let b = Buffer.create 4 in
  add_u32 b n;
  Buffer.contents b

let u32_of_string s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let write buf tag payload =
  let n = String.length payload in
  if n > max_payload then invalid_arg "Protocol.write: payload too large";
  Buffer.add_char buf tag;
  add_u32 buf n;
  Buffer.add_string buf payload

(* The wire carries sequence numbers as u32.  A seq past that would
   alias an earlier one after encoding, silently corrupting the dedup
   horizon — reject it loudly instead (the durable snapshot keeps
   counters at full width; only the wire is 32-bit). *)
let check_seq seq =
  if seq < 0 || seq > 0xFFFF_FFFF then invalid_arg "Protocol.write_frame: seq exceeds u32";
  seq

let write_frame buf frame =
  let payload =
    match frame with
    | Hello app -> app
    | Hello_v { app; version } ->
      if version < 1 || version > 0xFF then invalid_arg "Protocol.write_frame: bad version";
      String.make 1 (Char.chr version) ^ app
    | Chunk data -> Bytes.to_string data
    | Chunk_seq { seq; data } -> u32_to_string (check_seq seq) ^ Bytes.to_string data
    | Flush_seq { seq } -> u32_to_string (check_seq seq)
    | Flush | Status | Bye -> ""
  in
  write buf (tag_of_frame frame) payload

let write_reply buf = function
  | Ok json -> write buf 'O' (Json.to_string json)
  | Error msg -> write buf 'E' msg

module Reader = struct
  (* A growable byte queue with a consumed prefix, compacted lazily so
     steady-state reads don't shift memory. *)
  type t = { mutable data : bytes; mutable start : int; mutable len : int }

  let create () = { data = Bytes.create 4096; start = 0; len = 0 }

  let add t buf n =
    if n < 0 || n > Bytes.length buf then invalid_arg "Protocol.Reader.add";
    if t.start + t.len + n > Bytes.length t.data then begin
      let cap = ref (max 4096 (2 * Bytes.length t.data)) in
      while t.len + n > !cap do
        cap := 2 * !cap
      done;
      let grown = Bytes.create !cap in
      Bytes.blit t.data t.start grown 0 t.len;
      t.data <- grown;
      t.start <- 0
    end;
    Bytes.blit buf 0 t.data (t.start + t.len) n;
    t.len <- t.len + n

  let byte t i = Char.code (Bytes.get t.data (t.start + i))

  (* Pop the next (tag, payload) pair if a whole frame is buffered. *)
  let pop_raw t =
    if t.len < 5 then `Awaiting
    else begin
      let tag = Bytes.get t.data t.start in
      let n = (byte t 1 lsl 24) lor (byte t 2 lsl 16) lor (byte t 3 lsl 8) lor byte t 4 in
      if n > max_payload then `Corrupt (Printf.sprintf "frame length %d exceeds cap" n)
      else if t.len < 5 + n then `Awaiting
      else begin
        let payload = Bytes.sub_string t.data (t.start + 5) n in
        t.start <- t.start + 5 + n;
        t.len <- t.len - 5 - n;
        if t.len = 0 then t.start <- 0;
        `Raw (tag, payload)
      end
    end

  let pop_frame t =
    match pop_raw t with
    | `Awaiting -> `Awaiting
    | `Corrupt _ as c -> c
    | `Raw (tag, payload) -> begin
      match tag with
      | 'H' -> `Frame (Hello payload)
      | 'h' ->
        if String.length payload < 1 then `Corrupt "hello-v payload too short"
        else
          `Frame
            (Hello_v
               {
                 app = String.sub payload 1 (String.length payload - 1);
                 version = Char.code payload.[0];
               })
      | 'C' -> `Frame (Chunk (Bytes.of_string payload))
      | 'c' ->
        if String.length payload < 4 then `Corrupt "sequenced chunk payload too short"
        else
          `Frame
            (Chunk_seq
               {
                 seq = u32_of_string payload 0;
                 data = Bytes.of_string (String.sub payload 4 (String.length payload - 4));
               })
      | 'F' -> `Frame Flush
      | 'f' ->
        if String.length payload <> 4 then `Corrupt "sequenced flush payload malformed"
        else `Frame (Flush_seq { seq = u32_of_string payload 0 })
      | 'S' -> `Frame Status
      | 'B' -> `Frame Bye
      | c -> `Corrupt (Printf.sprintf "unknown frame tag %C" c)
    end

  let pop_reply t =
    match pop_raw t with
    | `Awaiting -> `Awaiting
    | `Corrupt _ as c -> c
    | `Raw (tag, payload) -> begin
      match tag with
      | 'O' -> begin
        match Json.parse payload with
        | Result.Ok json -> `Reply (Ok json)
        | Result.Error e -> `Corrupt (Printf.sprintf "unparseable ok payload: %s" e)
      end
      | 'E' -> `Reply (Error payload)
      | c -> `Corrupt (Printf.sprintf "unknown reply tag %C" c)
    end
end
