module Int_stream = Ripple_util.Int_stream

type generation = { g_blocks : Int_stream.t; g_expected : int; g_errors : int }

type t = {
  window : int;
  backing : Int_stream.backing;
  mutable gens : generation list; (* newest first *)
  mutable total : int;
}

let create ?(backing = Int_stream.Heap) ~window () =
  if window <= 0 then invalid_arg "Rolling.create: window must be positive";
  { window; backing; gens = []; total = 0 }

let backing t = t.backing

let add t ~blocks ~expected ~errors =
  (* Write-through: the capture lands in the window's backing — with a
     spill backing a generation costs the daemon no heap beyond this
     record. *)
  let g_blocks = Int_stream.of_array ~backing:t.backing blocks in
  t.gens <- { g_blocks; g_expected = expected; g_errors = errors } :: t.gens;
  t.total <- t.total + Int_stream.length g_blocks;
  (* Evict oldest-first while over capacity, but never the sole
     generation: one oversized capture still counts as the profile. *)
  let rec evict () =
    if t.total > t.window && List.length t.gens > 1 then begin
      let rec split acc = function
        | [ oldest ] -> (List.rev acc, oldest)
        | g :: rest -> split (g :: acc) rest
        | [] -> assert false
      in
      let keep, oldest = split [] t.gens in
      t.gens <- keep;
      t.total <- t.total - Int_stream.length oldest.g_blocks;
      Int_stream.close oldest.g_blocks;
      evict ()
    end
  in
  evict ()

let blocks t = t.total
let generations t = List.length t.gens

let trace t =
  let out = Array.make t.total 0 in
  (* [gens] is newest first; the merged trace runs oldest first. *)
  let pos = ref t.total in
  List.iter
    (fun g ->
      let n = Int_stream.length g.g_blocks in
      pos := !pos - n;
      let base = !pos in
      Int_stream.iteri (fun i v -> out.(base + i) <- v) g.g_blocks)
    t.gens;
  out

let dump t =
  List.rev_map
    (fun g ->
      let blocks = Array.make (Int_stream.length g.g_blocks) 0 in
      Int_stream.iteri (fun i v -> blocks.(i) <- v) g.g_blocks;
      (blocks, g.g_expected, g.g_errors))
    t.gens

let advertised t = List.fold_left (fun acc g -> acc + g.g_expected) 0 t.gens

let salvage t =
  let expected = advertised t in
  if expected > 0 then Float.of_int t.total /. Float.of_int expected
  else if t.gens <> [] && List.for_all (fun g -> g.g_errors = 0) t.gens then 1.0
  else 0.0

let errors t = List.fold_left (fun acc g -> acc + g.g_errors) 0 t.gens

let spill_bytes t =
  List.fold_left
    (fun acc g ->
      if Int_stream.is_spill g.g_blocks then acc + Int_stream.byte_size g.g_blocks else acc)
    0 t.gens

let close t =
  List.iter (fun g -> Int_stream.close g.g_blocks) t.gens;
  t.gens <- [];
  t.total <- 0
