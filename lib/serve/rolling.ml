type generation = { g_blocks : int array; g_expected : int; g_errors : int }

type t = { window : int; mutable gens : generation list (* newest first *); mutable total : int }

let create ~window =
  if window <= 0 then invalid_arg "Rolling.create: window must be positive";
  { window; gens = []; total = 0 }

let add t ~blocks ~expected ~errors =
  t.gens <- { g_blocks = blocks; g_expected = expected; g_errors = errors } :: t.gens;
  t.total <- t.total + Array.length blocks;
  (* Evict oldest-first while over capacity, but never the sole
     generation: one oversized capture still counts as the profile. *)
  let rec evict () =
    if t.total > t.window && List.length t.gens > 1 then begin
      let rec split acc = function
        | [ oldest ] -> (List.rev acc, oldest)
        | g :: rest -> split (g :: acc) rest
        | [] -> assert false
      in
      let keep, oldest = split [] t.gens in
      t.gens <- keep;
      t.total <- t.total - Array.length oldest.g_blocks;
      evict ()
    end
  in
  evict ()

let blocks t = t.total
let generations t = List.length t.gens

let trace t =
  let out = Array.make t.total 0 in
  (* [gens] is newest first; the merged trace runs oldest first. *)
  let pos = ref t.total in
  List.iter
    (fun g ->
      let n = Array.length g.g_blocks in
      pos := !pos - n;
      Array.blit g.g_blocks 0 out !pos n)
    t.gens;
  out

let advertised t = List.fold_left (fun acc g -> acc + g.g_expected) 0 t.gens

let salvage t =
  let expected = advertised t in
  if expected > 0 then Float.of_int t.total /. Float.of_int expected
  else if t.gens <> [] && List.for_all (fun g -> g.g_errors = 0) t.gens then 1.0
  else 0.0

let errors t = List.fold_left (fun acc g -> acc + g.g_errors) 0 t.gens
