(* Durable session state: a versioned, checksummed snapshot codec plus
   an append-only capture journal, and the Store that puts both on disk
   crash-safely (write to a temp file, fsync, rename, fsync the
   directory).  Everything here is byte-level and pure except Store; the
   codecs never raise on malformed input — a corrupt or truncated file
   loads as [Error], which recovery treats as "no durable state". *)

type gen = { g_blocks : int array; g_expected : int; g_errors : int }

type state = {
  app : string;
  level : int;  (* degradation-ladder rung: 0 full, 1 safe-only, 2 off *)
  transitions : int;
  emissions : int;
  next_seq : int;
  gens : gen list;  (* oldest first, the Rolling window's dump *)
}

(* Format 3: the monotonic counters (transitions, emissions, next_seq,
   journal seqs) are u64 — a u32 would silently wrap the dedup horizon
   on a very long-lived session.  Block counts and payload lengths stay
   u32.  Old-format files fail the magic (snapshot) or the checksum
   (journal) and load as "no durable state". *)
let magic = "RPLSNAP3"
let journal_magic = 'K'

(* FNV-1a 64 over a byte range: the integrity check for both formats. *)
let fnv64 ?(init = 0xcbf29ce484222325L) b pos len =
  let h = ref init in
  for i = pos to pos + len - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.get b i)));
    h := Int64.mul !h 0x100000001b3L
  done;
  !h

let add_u32 buf n =
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (n land 0xFF))

let add_u64 buf (n : int64) =
  for i = 0 to 7 do
    let shift = 56 - (8 * i) in
    Buffer.add_char buf (Char.chr (Int64.to_int (Int64.shift_right_logical n shift) land 0xFF))
  done

let get_u32 b pos =
  (Char.code (Bytes.get b pos) lsl 24)
  lor (Char.code (Bytes.get b (pos + 1)) lsl 16)
  lor (Char.code (Bytes.get b (pos + 2)) lsl 8)
  lor Char.code (Bytes.get b (pos + 3))

let get_u64 b pos =
  let n = ref 0L in
  for i = 0 to 7 do
    n := Int64.logor (Int64.shift_left !n 8) (Int64.of_int (Char.code (Bytes.get b (pos + i))))
  done;
  !n

(* ------------------------------ snapshot ----------------------------- *)

let encode state =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  add_u32 buf (String.length state.app);
  Buffer.add_string buf state.app;
  add_u32 buf state.level;
  add_u64 buf (Int64.of_int state.transitions);
  add_u64 buf (Int64.of_int state.emissions);
  add_u64 buf (Int64.of_int state.next_seq);
  add_u32 buf (List.length state.gens);
  List.iter
    (fun g ->
      add_u32 buf g.g_expected;
      add_u32 buf g.g_errors;
      add_u32 buf (Array.length g.g_blocks);
      Array.iter (fun v -> add_u32 buf v) g.g_blocks)
    state.gens;
  let body = Buffer.to_bytes buf in
  let out = Buffer.create (Bytes.length body + 8) in
  Buffer.add_bytes out body;
  add_u64 out (fnv64 body 0 (Bytes.length body));
  Buffer.to_bytes out

let decode b =
  let len = Bytes.length b in
  let fail msg = Result.Error msg in
  if len < String.length magic + 8 then fail "snapshot too short"
  else if Bytes.sub_string b 0 (String.length magic) <> magic then
    fail "bad snapshot magic"
  else begin
    let body_len = len - 8 in
    let stored = get_u64 b body_len in
    if fnv64 b 0 body_len <> stored then fail "snapshot checksum mismatch"
    else begin
      (* The checksum already vouches for structure, but stay defensive:
         a reader bug must surface as Error, never an exception. *)
      try
        let pos = ref (String.length magic) in
        let u32 () =
          if !pos + 4 > body_len then failwith "short";
          let v = get_u32 b !pos in
          pos := !pos + 4;
          v
        in
        let u64 () =
          if !pos + 8 > body_len then failwith "short";
          let v = get_u64 b !pos in
          pos := !pos + 8;
          Int64.to_int v
        in
        let app_len = u32 () in
        if app_len < 0 || !pos + app_len > body_len then failwith "short";
        let app = Bytes.sub_string b !pos app_len in
        pos := !pos + app_len;
        let level = u32 () in
        let transitions = u64 () in
        let emissions = u64 () in
        let next_seq = u64 () in
        let n_gens = u32 () in
        if n_gens < 0 || n_gens > 1_000_000 then failwith "absurd generation count";
        let gens = ref [] in
        for _ = 1 to n_gens do
          let g_expected = u32 () in
          let g_errors = u32 () in
          let n = u32 () in
          if n < 0 || !pos + (4 * n) > body_len then failwith "short";
          let g_blocks = Array.init n (fun i -> get_u32 b (!pos + (4 * i))) in
          pos := !pos + (4 * n);
          gens := { g_blocks; g_expected; g_errors } :: !gens
        done;
        if !pos <> body_len then failwith "trailing bytes";
        Result.Ok { app; level; transitions; emissions; next_seq; gens = List.rev !gens }
      with Failure _ | Invalid_argument _ -> fail "snapshot body malformed"
    end
  end

(* ------------------------------ journal ------------------------------ *)

(* One record per applied chunk: magic byte, u64 seq, u32 length, the
   chunk bytes, then an FNV of everything before it.  A crash mid-append
   leaves a partial (or checksum-failing) tail; [journal_decode] keeps
   the longest valid prefix and drops the rest, which is exactly the
   set of chunks the session had durably applied. *)

let journal_record ~seq data =
  let buf = Buffer.create (Bytes.length data + 21) in
  Buffer.add_char buf journal_magic;
  add_u64 buf (Int64.of_int seq);
  add_u32 buf (Bytes.length data);
  Buffer.add_bytes buf data;
  let body = Buffer.to_bytes buf in
  let out = Buffer.create (Bytes.length body + 8) in
  Buffer.add_bytes out body;
  add_u64 out (fnv64 body 0 (Bytes.length body));
  Buffer.to_bytes out

let journal_decode b =
  let len = Bytes.length b in
  let records = ref [] in
  let pos = ref 0 in
  let ok = ref true in
  while !ok && !pos < len do
    if !pos + 13 > len then ok := false
    else if Bytes.get b !pos <> journal_magic then ok := false
    else begin
      let seq = Int64.to_int (get_u64 b (!pos + 1)) in
      let n = get_u32 b (!pos + 9) in
      if n < 0 || !pos + 13 + n + 8 > len then ok := false
      else begin
        let body_len = 13 + n in
        let stored = get_u64 b (!pos + body_len) in
        if fnv64 b !pos body_len <> stored then ok := false
        else begin
          records := (seq, Bytes.sub b (!pos + 13) n) :: !records;
          pos := !pos + body_len + 8
        end
      end
    end
  done;
  List.rev !records

(* ------------------------------- store ------------------------------- *)

module Store = struct
  type t = {
    dir : string;
    journals : (string, Unix.file_descr) Hashtbl.t;  (* app -> open journal fd *)
  }

  (* App names come from the workload registry, but a lookup function
     can resolve anything: keep paths safe. *)
  let sanitize app =
    String.map (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c | _ -> '_')
      (if app = "" then "_" else app)

  let snap_path t app = Filename.concat t.dir (sanitize app ^ ".snap")
  let journal_path t app = Filename.concat t.dir (sanitize app ^ ".journal")

  let rec mkdir_p dir =
    if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
      mkdir_p (Filename.dirname dir);
      try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end

  let open_dir dir =
    mkdir_p dir;
    { dir; journals = Hashtbl.create 8 }

  let dir t = t.dir

  let fsync_dir dir =
    match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
    | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()

  let write_all fd b =
    let len = Bytes.length b in
    let pos = ref 0 in
    while !pos < len do
      pos := !pos + Unix.write fd b !pos (len - !pos)
    done

  (* Atomic durable write: temp file in the same directory, fsync,
     rename over the target, fsync the directory so the rename itself
     survives a power cut. *)
  let write_atomic ~dir ~path data =
    let tmp = Filename.concat dir (Filename.basename path ^ ".tmp") in
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        write_all fd data;
        Unix.fsync fd);
    Sys.rename tmp path;
    fsync_dir dir

  let save t state =
    write_atomic ~dir:t.dir ~path:(snap_path t state.app) (encode state)

  let journal_fd t app =
    match Hashtbl.find_opt t.journals app with
    | Some fd -> fd
    | None ->
      let fd =
        Unix.openfile (journal_path t app) [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
      in
      Hashtbl.add t.journals app fd;
      fd

  let journal_append t ~app ~seq data =
    let fd = journal_fd t app in
    write_all fd (journal_record ~seq data);
    Unix.fsync fd

  let journal_reset t ~app =
    (match Hashtbl.find_opt t.journals app with
    | Some fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Hashtbl.remove t.journals app
    | None -> ());
    let path = journal_path t app in
    if Sys.file_exists path then Sys.remove path;
    fsync_dir t.dir

  let read_file path =
    match Unix.openfile path [ Unix.O_RDONLY ] 0 with
    | exception Unix.Unix_error _ -> None
    | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let size = (Unix.fstat fd).Unix.st_size in
          let b = Bytes.create size in
          let pos = ref 0 in
          (try
             while !pos < size do
               match Unix.read fd b !pos (size - !pos) with
               | 0 -> raise Exit
               | n -> pos := !pos + n
             done
           with Exit -> ());
          Some (Bytes.sub b 0 !pos))

  let load t app =
    match read_file (snap_path t app) with
    | None -> None
    | Some data -> begin
      match decode data with
      | Result.Error _ -> None
      | Result.Ok state ->
        let journal =
          match read_file (journal_path t app) with
          | None -> []
          | Some j -> journal_decode j
        in
        (* Only chunks at or past the snapshot's horizon matter: records
           before it were folded into a flushed generation already. *)
        Some (state, List.filter (fun (seq, _) -> seq >= state.next_seq) journal)
    end

  let load_all t =
    Sys.readdir t.dir |> Array.to_list |> List.sort compare
    |> List.filter_map (fun f ->
           if Filename.check_suffix f ".snap" then
             match read_file (Filename.concat t.dir f) with
             | None -> None
             | Some data -> begin
               match decode data with
               | Result.Error _ -> None
               | Result.Ok state -> load t state.app
             end
           else None)

  let close t =
    Hashtbl.iter (fun _ fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.journals;
    Hashtbl.reset t.journals
end
