(** Minimal blocking client for the {!Protocol} wire format — what
    [ripple-sim push] and the end-to-end tests speak to a running
    daemon. *)

type t

val connect : host:string -> port:int -> t

val request : t -> Protocol.frame -> Protocol.reply
(** Write one frame, block until its reply arrives.  Raises [Failure]
    on a corrupt reply stream or if the server closes mid-reply. *)

val close : t -> unit

val scrape : host:string -> port:int -> string
(** Fetch the OpenMetrics exposition from the daemon's metrics
    endpoint (a one-shot [GET /metrics]); returns the body only. *)
