(** Client side of the {!Protocol} wire format — what [ripple-sim push]
    and the end-to-end tests speak to a running daemon.

    {!connect}/{!request} are the minimal blocking v1 surface.
    {!push_with_retries} is the resumable v2 push: at-least-once
    delivery over sequenced frames, reconnect-and-resume after any
    network fault, exponential backoff with seeded jitter.  Its safety
    argument is the server's sequence dedup ({!Session.apply_chunk}):
    replaying an already-applied frame is acknowledged, never
    re-applied, so the worst a fault can cost is time. *)

type t

val connect : ?timeout:float -> host:string -> port:int -> unit -> t
(** [timeout] sets [SO_RCVTIMEO]/[SO_SNDTIMEO]: blocked reads and
    writes then fail with [Unix.EAGAIN] instead of hanging forever. *)

val request : t -> Protocol.frame -> Protocol.reply
(** Write one frame, block until its reply arrives.  Raises [Failure]
    on a corrupt reply stream or if the server closes mid-reply. *)

val request_seq : t -> Protocol.frame -> seq:int -> Protocol.reply
(** Like {!request}, but skips stale [Ok] replies whose ["seq"] field is
    below [seq] — a duplicated frame makes the server answer more times
    than the client asked, and the extra echoes must not be mistaken for
    the answer to a later frame. *)

val close : t -> unit

type push_result = {
  status : Ripple_util.Json.t;  (** the flush reply: final session status *)
  attempts_used : int;  (** 1 = clean first try *)
}

val push_with_retries :
  ?attempts:int ->
  ?timeout:float ->
  ?backoff:float ->
  ?seed:int ->
  ?chunk:int ->
  host:string ->
  port:int ->
  app:string ->
  bytes ->
  (push_result, string) result
(** Push [data] as one capture (chunked every [chunk] bytes, default
    4096) and flush, surviving connection faults: each attempt
    reconnects, re-negotiates with [Hello_v] to learn the server's
    [next_seq], and resumes from exactly the first unapplied chunk.
    The base sequence number is pinned at the first successful hello,
    so a reconnect that finds [next_seq] past the flush slot means an
    earlier attempt already completed — the push returns the session
    status instead of re-sending.  Defaults: 8 [attempts], 5s
    [timeout] per socket operation, [backoff] 50ms doubling with
    jitter from [seed].  Returns [Error] only once every attempt is
    exhausted. *)

val scrape : host:string -> port:int -> string
(** Fetch the OpenMetrics exposition from the daemon's metrics
    endpoint (a one-shot [GET /metrics]); returns the body only. *)
