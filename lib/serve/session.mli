(** One app's continuous-profiling session inside the daemon.

    A session owns a live {!Ripple_trace.Pt.Session} (the in-flight
    capture generation), a {!Rolling} window of closed generations, and
    the latest instrumented binary.  Chunks feed the decoder
    incrementally; a flush closes the generation and re-runs
    {!Ripple_core.Pipeline.run} over the merged rolling profile with the
    degradation ladder engaged, so hints follow the profile — full when
    it is clean and current, safe-only under moderate drift or partial
    salvage, off when the profile stops describing the binary — without
    the daemon restarting.  With [reemit_every] set, re-emission also
    triggers mid-capture every that many freshly decoded blocks (the
    in-flight capture then counts only what has already decoded; its
    missing tail is judged at flush).

    {b Sequencing and durability.}  Every state-changing frame (chunk or
    flush) consumes one sequence number; {!apply_chunk}/{!apply_flush}
    apply a frame exactly once and answer replays idempotently, which is
    what makes v2 pushes at-least-once safe.  With a
    {!Snapshot.Store} attached, chunks are journaled (write-ahead,
    fsynced) before decoding and every flush writes an atomic snapshot,
    so {!restore} after a [kill -9] rebuilds the session — rolling
    window, ladder position, sequence horizon and the in-flight decoder
    — without the client replaying history.

    All sessions share the daemon's {!Ripple_obs.Run.t}: pipeline metric
    families aggregate across apps, while the [ripple_serve_*] per-app
    families carry an [app] label ({!Ripple_obs.Metric.labelled}). *)

module Program := Ripple_isa.Program
module Pipeline := Ripple_core.Pipeline
module Obs := Ripple_obs

type t

val create :
  ?store:Snapshot.Store.t ->
  obs:Obs.Run.t ->
  options:Pipeline.Options.t ->
  window:int ->
  reemit_every:int ->
  name:string ->
  program:Program.t ->
  unit ->
  t
(** [options] drives every re-emission ([eval]/[search] are cleared;
    set [degrade] or the ladder never engages).  [window] is the rolling
    capacity in blocks; [reemit_every] enables mid-capture re-emission
    when positive.  [store] makes the session durable: any stale journal
    a prior incarnation left behind is cleared and an empty at-birth
    snapshot is written, so a kill -9 before the first flush still
    recovers.  The session starts at {!Pipeline.Degrade.Hints_off} with
    the binary untouched — trust is earned by the first flush. *)

val restore :
  ?store:Snapshot.Store.t ->
  obs:Obs.Run.t ->
  options:Pipeline.Options.t ->
  window:int ->
  reemit_every:int ->
  program:Program.t ->
  Snapshot.state ->
  (int * bytes) list ->
  t
(** Rebuild a session from its snapshot and in-flight journal records:
    re-adds the snapshot generations, restores counters and the
    sequence horizon, re-emits over the recovered window (without
    recounting the emission) so the instrumented binary exists again,
    then replays the journal through the live ingest path.  The result
    is the state a [kill -9] interrupted, ready for a resumed push.

    Restoring never discards durable state: the loaded snapshot is
    re-persisted as-is (pre-replay horizon, journal kept), so a second
    kill -9 right after recovery recovers the same session again. *)

val name : t -> string
val program : t -> Program.t
(** The current instrumented binary (the source program until a
    re-emission first grants trust). *)

val level : t -> Pipeline.Degrade.level
val transitions : t -> int
(** Ladder-level changes observed across re-emissions. *)

val emissions : t -> int
val next_seq : t -> int
(** Next sequence number the session will apply. *)

val last_outcome : t -> Pipeline.outcome option

val apply_chunk : t -> seq:int -> bytes -> [ `Applied of int | `Duplicate of int | `Gap of int ]
(** Sequenced chunk: applied exactly when [seq] equals {!next_seq}
    (journal-appended first when durable), acknowledged with the current
    decode count when it is a replay of an already-applied number, and
    rejected as [`Gap expected] when it skips ahead. *)

val apply_flush : t -> seq:int -> [ `Applied | `Duplicate | `Gap of int ]
(** Sequenced flush, same dedup rules.  An applied flush closes the
    generation, re-emits, snapshots (when durable) and resets the
    journal. *)

val feed : t -> bytes -> int
(** v1 unsequenced chunk: consumes the next sequence number implicitly.
    Returns blocks decoded so far in the in-flight generation. *)

val flush : t -> unit
(** v1 unsequenced flush: consumes the next sequence number implicitly. *)

val save : t -> unit
(** Write the snapshot now (graceful-drain hook).  No-op without a
    store. *)

val profile_fnv : t -> string
(** FNV-1a 64 hex digest of the durable rolling profile (blocks,
    advertised count, error tally) — the equivalence check the chaos
    harness runs across interrupted and uninterrupted runs. *)

val status : t -> Ripple_util.Json.t
(** Deterministic state report (the [Status] frame's payload). *)

val close : t -> unit
(** Releases the rolling window's generations — unlinking their spill
    files when the session's backing ({!Pipeline.Options.t.backing})
    is [Spill] — and closes any journal descriptors.  Teardown hook;
    the daemon also sweeps leftover spill files at process exit. *)
