(** One app's continuous-profiling session inside the daemon.

    A session owns a live {!Ripple_trace.Pt.Session} (the in-flight
    capture generation), a {!Rolling} window of closed generations, and
    the latest instrumented binary.  Chunks feed the decoder
    incrementally; a flush closes the generation and re-runs
    {!Ripple_core.Pipeline.run} over the merged rolling profile with the
    degradation ladder engaged, so hints follow the profile — full when
    it is clean and current, safe-only under moderate drift or partial
    salvage, off when the profile stops describing the binary — without
    the daemon restarting.  With [reemit_every] set, re-emission also
    triggers mid-capture every that many freshly decoded blocks (the
    in-flight capture then counts only what has already decoded; its
    missing tail is judged at flush).

    All sessions share the daemon's {!Ripple_obs.Run.t}: pipeline metric
    families aggregate across apps, while the [ripple_serve_*] per-app
    families carry an [app] label ({!Ripple_obs.Metric.labelled}). *)

module Program := Ripple_isa.Program
module Pipeline := Ripple_core.Pipeline
module Obs := Ripple_obs

type t

val create :
  obs:Obs.Run.t ->
  options:Pipeline.Options.t ->
  window:int ->
  reemit_every:int ->
  name:string ->
  program:Program.t ->
  t
(** [options] drives every re-emission ([eval]/[search] are cleared;
    set [degrade] or the ladder never engages).  [window] is the rolling
    capacity in blocks; [reemit_every] enables mid-capture re-emission
    when positive.  The session starts at {!Pipeline.Degrade.Hints_off}
    with the binary untouched — trust is earned by the first flush. *)

val name : t -> string
val program : t -> Program.t
(** The current instrumented binary (the source program until a
    re-emission first grants trust). *)

val level : t -> Pipeline.Degrade.level
val transitions : t -> int
(** Ladder-level changes observed across re-emissions. *)

val emissions : t -> int
val last_outcome : t -> Pipeline.outcome option

val feed : t -> bytes -> int
(** Feed one chunk of PT bytes; returns blocks decoded so far in the
    in-flight generation.  May re-emit per [reemit_every]. *)

val flush : t -> unit
(** Close the in-flight generation into the rolling window, start a
    fresh decoder generation, and re-emit hints. *)

val status : t -> Ripple_util.Json.t
(** Deterministic state report (the [Status] frame's payload). *)

val close : t -> unit
(** Releases the rolling window's generations — unlinking their spill
    files when the session's backing ({!Pipeline.Options.t.backing})
    is [Spill].  Teardown hook; the daemon also sweeps leftover spill
    files at process exit. *)
