type t = { fd : Unix.file_descr; reader : Protocol.Reader.t; buf : bytes }

let connect ~host ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  { fd; reader = Protocol.Reader.create (); buf = Bytes.create 65536 }

let write_all fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write_substring fd s !pos (len - !pos)
  done

let request t frame =
  let out = Buffer.create 256 in
  Protocol.write_frame out frame;
  write_all t.fd (Buffer.contents out);
  let rec await () =
    match Protocol.Reader.pop_reply t.reader with
    | `Reply r -> r
    | `Corrupt msg -> failwith ("Client.request: " ^ msg)
    | `Awaiting -> begin
      match Unix.read t.fd t.buf 0 (Bytes.length t.buf) with
      | 0 -> failwith "Client.request: server closed connection"
      | n ->
        Protocol.Reader.add t.reader t.buf n;
        await ()
    end
  in
  await ()

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let scrape ~host ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  write_all fd (Printf.sprintf "GET /metrics HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n" host);
  let b = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec drain () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes b chunk 0 n;
      drain ()
  in
  drain ();
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let response = Buffer.contents b in
  match String.index_opt response '\r' with
  | None -> response
  | Some _ -> begin
    (* Split head from body at the first blank line. *)
    let rec find i =
      if i + 3 >= String.length response then None
      else if String.sub response i 4 = "\r\n\r\n" then Some (i + 4)
      else find (i + 1)
    in
    match find 0 with None -> response | Some body -> String.sub response body (String.length response - body)
  end
