module Json = Ripple_util.Json
module Prng = Ripple_util.Prng

type t = { fd : Unix.file_descr; reader : Protocol.Reader.t; buf : bytes }

let connect ?timeout ~host ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Option.iter
    (fun s ->
      (* A stalled server (or a chaos proxy holding a frame hostage)
         surfaces as EAGAIN on read/write instead of hanging the push
         forever; the retry loop treats that like any other broken
         connection. *)
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO s)
    timeout;
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; reader = Protocol.Reader.create (); buf = Bytes.create 65536 }

let write_all fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write_substring fd s !pos (len - !pos)
  done

let request t frame =
  let out = Buffer.create 256 in
  Protocol.write_frame out frame;
  write_all t.fd (Buffer.contents out);
  let rec await () =
    match Protocol.Reader.pop_reply t.reader with
    | `Reply r -> r
    | `Corrupt msg -> failwith ("Client.request: " ^ msg)
    | `Awaiting -> begin
      match Unix.read t.fd t.buf 0 (Bytes.length t.buf) with
      | 0 -> failwith "Client.request: server closed connection"
      | n ->
        Protocol.Reader.add t.reader t.buf n;
        await ()
    end
  in
  await ()

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* ------------------------- resumable push ------------------------- *)

let int_field key json =
  match Json.member key json with Some (Json.Int n) -> Some n | _ -> None

(* Write one sequenced frame and read replies until the one answering
   [seq] arrives.  A duplicating fault can make the server send more
   replies than the client sent frames, knocking the lockstep
   request/reply pairing out of alignment — replies tagged with an older
   sequence number are stale echoes and are skipped. *)
let request_seq t frame ~seq =
  let out = Buffer.create 256 in
  Protocol.write_frame out frame;
  write_all t.fd (Buffer.contents out);
  let rec await () =
    match Protocol.Reader.pop_reply t.reader with
    | `Reply (Protocol.Ok json as r) -> begin
      match int_field "seq" json with
      | Some s when s < seq -> await ()
      | _ -> r
    end
    | `Reply r -> r
    | `Corrupt msg -> failwith ("Client.request_seq: " ^ msg)
    | `Awaiting -> begin
      match Unix.read t.fd t.buf 0 (Bytes.length t.buf) with
      | 0 -> failwith "Client.request_seq: server closed connection"
      | n ->
        Protocol.Reader.add t.reader t.buf n;
        await ()
    end
  in
  await ()

type push_result = { status : Json.t; attempts_used : int }

let split_chunks chunk data =
  let len = Bytes.length data in
  let n = (len + chunk - 1) / chunk in
  List.init n (fun i -> Bytes.sub data (i * chunk) (min chunk (len - (i * chunk))))

let push_with_retries ?(attempts = 8) ?(timeout = 5.0) ?(backoff = 0.05) ?(seed = 42)
    ?(chunk = 4096) ~host ~port ~app data =
  if attempts < 1 then invalid_arg "Client.push_with_retries: attempts must be positive";
  let chunks = Array.of_list (split_chunks chunk data) in
  let n = Array.length chunks in
  let prng = Prng.create ~seed in
  (* The base sequence number is pinned at the first successful hello:
     everything the server applies after that — across however many
     reconnects — is our frames consuming [base .. base+n] exactly
     once. *)
  let base = ref None in
  let last_error = ref "no attempt made" in
  let result = ref None in
  let attempt_no = ref 0 in
  while !result = None && !attempt_no < attempts do
    if !attempt_no > 0 then begin
      (* Exponential backoff with seeded jitter: deterministic for a
         given seed, still spreading a fleet of retrying agents. *)
      let scale = Float.of_int (1 lsl min (!attempt_no - 1) 16) in
      Unix.sleepf (backoff *. scale *. (0.5 +. Prng.float prng 1.0))
    end;
    incr attempt_no;
    match
      let c = connect ~timeout ~host ~port () in
      Fun.protect
        ~finally:(fun () -> close c)
        (fun () ->
          match request c (Protocol.Hello_v { app; version = Protocol.version }) with
          | Protocol.Error msg -> Error ("hello: " ^ msg)
          | Protocol.Ok hello -> begin
            match int_field "next_seq" hello with
            | None ->
              (* v1 server: no resume horizon.  Push unsequenced and
                 hope — still correct when nothing interferes. *)
              Array.iter (fun data -> ignore (request c (Protocol.Chunk data))) chunks;
              let status =
                match request c Protocol.Flush with
                | Protocol.Ok json -> json
                | Protocol.Error msg -> failwith ("flush: " ^ msg)
              in
              Ok status
            | Some next_seq -> begin
              let b =
                match !base with
                | Some b when next_seq >= b -> b
                | Some _ | None ->
                  (* First hello — or the server's horizon regressed
                     below the pinned base (state dir wiped, durable
                     state lost).  Re-pin and restart the push from
                     chunk 0: retrying the old range would be answered
                     "gap: expected seq N" forever. *)
                  base := Some next_seq;
                  next_seq
              in
              if next_seq > b + n then
                (* The flush slot is already consumed: a previous
                   attempt completed the whole push and only its reply
                   was lost. *)
                match request c Protocol.Status with
                | Protocol.Ok status -> Ok status
                | Protocol.Error msg -> Error ("status: " ^ msg)
              else begin
                (* Resume where the server actually got to. *)
                let start = max 0 (next_seq - b) in
                let rec send i =
                  if i >= n then Ok ()
                  else
                    match
                      request_seq c ~seq:(b + i)
                        (Protocol.Chunk_seq { seq = b + i; data = chunks.(i) })
                    with
                    | Protocol.Ok _ -> send (i + 1)
                    | Protocol.Error msg -> Error (Printf.sprintf "chunk %d: %s" i msg)
                in
                match send start with
                | Error _ as e -> e
                | Ok () -> begin
                  match request_seq c ~seq:(b + n) (Protocol.Flush_seq { seq = b + n }) with
                  | Protocol.Ok status -> Ok status
                  | Protocol.Error msg -> Error ("flush: " ^ msg)
                end
              end
            end
          end)
    with
    | Ok status -> result := Some { status; attempts_used = !attempt_no }
    | Error msg -> last_error := msg
    | exception Unix.Unix_error (err, fn, _) ->
      last_error := Printf.sprintf "%s: %s" fn (Unix.error_message err)
    | exception Failure msg -> last_error := msg
  done;
  match !result with
  | Some r -> Ok r
  | None -> Error (Printf.sprintf "push failed after %d attempts: %s" attempts !last_error)

let scrape ~host ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  write_all fd (Printf.sprintf "GET /metrics HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n" host);
  let b = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec drain () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes b chunk 0 n;
      drain ()
  in
  drain ();
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let response = Buffer.contents b in
  match String.index_opt response '\r' with
  | None -> response
  | Some _ -> begin
    (* Split head from body at the first blank line. *)
    let rec find i =
      if i + 3 >= String.length response then None
      else if String.sub response i 4 = "\r\n\r\n" then Some (i + 4)
      else find (i + 1)
    in
    match find 0 with None -> response | Some body -> String.sub response body (String.length response - body)
  end
