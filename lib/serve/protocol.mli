(** The daemon's framed wire protocol.

    Frames are length-prefixed: one tag byte, a 4-byte big-endian
    payload length, then the payload.  The framing is deliberately dumb
    — the interesting incrementality lives in {!Ripple_trace.Pt.Session}
    — but it is chunk-transparent: a {!Reader} accepts arbitrary byte
    slices and yields exactly the frames the peer wrote, however the
    transport split them.

    Two dialects share the frame set.  Version 1 is the original
    fair-weather protocol: [Hello], unsequenced [Chunk]s, [Flush],
    [Status], [Bye].  Version 2 ({!version}) makes the push resumable:
    [Hello_v] negotiates a version (the server replies with the one it
    granted plus the session's next expected sequence number), and
    [Chunk_seq]/[Flush_seq] carry per-session sequence numbers so
    delivery is at-least-once — the server applies a frame exactly once
    and answers duplicates idempotently, which is what lets a client
    reconnect after any network fault and resume where the server
    actually got to.  Every frame is answered with one reply. *)

type frame =
  | Hello of string  (** v1: register/select the named app *)
  | Hello_v of { app : string; version : int }
      (** v2: also request a protocol version; the reply carries the
          granted version and the session's [next_seq] *)
  | Chunk of bytes  (** v1: raw PT-stream bytes, any split *)
  | Chunk_seq of { seq : int; data : bytes }
      (** v2: sequenced PT-stream bytes; [seq] must equal the session's
          next expected number to be applied, smaller numbers are
          acknowledged as duplicates, larger ones rejected as a gap *)
  | Flush  (** v1: end of capture: close the generation, re-emit hints *)
  | Flush_seq of { seq : int }  (** v2: sequenced [Flush], same dedup rules *)
  | Status  (** report the bound session's state *)
  | Bye  (** close the connection (the session itself persists) *)

type reply =
  | Ok of Ripple_util.Json.t
  | Error of string

val max_payload : int
(** Frames advertising a larger payload are rejected as corrupt. *)

val version : int
(** Highest protocol version this build speaks (2). *)

val frame_name : frame -> string
(** ["hello"], ["chunk"], ["flush"], ["status"], ["bye"] — span and
    metric label values (v1/v2 variants share names). *)

val write_frame : Buffer.t -> frame -> unit
val write_reply : Buffer.t -> reply -> unit

(** Incremental frame parser: feed transport bytes as they arrive, pop
    complete frames.  One reader per connection direction. *)
module Reader : sig
  type t

  val create : unit -> t

  val add : t -> bytes -> int -> unit
  (** [add t buf n] appends the first [n] bytes of [buf]. *)

  val pop_frame : t -> [ `Frame of frame | `Awaiting | `Corrupt of string ]
  (** Next complete frame, [`Awaiting] if the buffer holds only a
      partial one.  After [`Corrupt] the stream is unrecoverable (the
      framing carries no resync marker): close the connection. *)

  val pop_reply : t -> [ `Reply of reply | `Awaiting | `Corrupt of string ]
  (** Client side of {!pop_frame}. *)
end
