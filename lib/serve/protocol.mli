(** The daemon's framed wire protocol.

    Frames are length-prefixed: one tag byte, a 4-byte big-endian
    payload length, then the payload.  The framing is deliberately dumb
    — the interesting incrementality lives in {!Ripple_trace.Pt.Session}
    — but it is chunk-transparent: a {!Reader} accepts arbitrary byte
    slices and yields exactly the frames the peer wrote, however the
    transport split them.

    A client session is [Hello] (bind this connection to an app), any
    number of [Chunk]s carrying PT-stream bytes, [Flush] to close the
    capture generation and trigger re-analysis, [Status] at will, and
    [Bye].  Every frame is answered with one reply. *)

type frame =
  | Hello of string  (** register/select the named app for this connection *)
  | Chunk of bytes  (** raw PT-stream bytes, any split *)
  | Flush  (** end of capture: close the generation, re-emit hints *)
  | Status  (** report the bound session's state *)
  | Bye  (** close the connection (the session itself persists) *)

type reply =
  | Ok of Ripple_util.Json.t
  | Error of string

val max_payload : int
(** Frames advertising a larger payload are rejected as corrupt. *)

val frame_name : frame -> string
(** ["hello"], ["chunk"], ["flush"], ["status"], ["bye"] — span and
    metric label values. *)

val write_frame : Buffer.t -> frame -> unit
val write_reply : Buffer.t -> reply -> unit

(** Incremental frame parser: feed transport bytes as they arrive, pop
    complete frames.  One reader per connection direction. *)
module Reader : sig
  type t

  val create : unit -> t

  val add : t -> bytes -> int -> unit
  (** [add t buf n] appends the first [n] bytes of [buf]. *)

  val pop_frame : t -> [ `Frame of frame | `Awaiting | `Corrupt of string ]
  (** Next complete frame, [`Awaiting] if the buffer holds only a
      partial one.  After [`Corrupt] the stream is unrecoverable (the
      framing carries no resync marker): close the connection. *)

  val pop_reply : t -> [ `Reply of reply | `Awaiting | `Corrupt of string ]
  (** Client side of {!pop_frame}. *)
end
