(* The chunked packed access stream lives in [Ripple_cache] (the cache
   layer consumes it and the trace layer depends on the cache layer, not
   the reverse).  Re-exported here so trace producers and their callers
   can say [Ripple_trace.Access_stream]. *)
include Ripple_cache.Access_stream
