type t = Tnt of bool array | Tip of Ripple_isa.Addr.t | End_of_trace

(* Two tag bits leave a 6-bit field: up to 5 payload bits plus the stop
   bit delimiting them. *)
let max_tnt_bits = 5
let tag_tnt = 0b00
let tag_tip = 0b01
let tag_end = 0b10

(* A TIP packet always opens with exactly this byte (the tag in the top
   two bits, the low six clear) — the anchor the recovering decoder
   scans for when it resynchronizes after corruption. *)
let tip_tag_byte = tag_tip lsl 6

(* TNT byte layout: [tag:2][payload+stop:6].  The payload holds the bits
   oldest-first from the least-significant end, followed by a 1 stop bit;
   e.g. bits [T; NT] encode as tag | 0b100_01 pattern below. *)
let write buf = function
  | Tnt bits ->
    let n = Array.length bits in
    assert (n >= 1 && n <= max_tnt_bits);
    let payload = ref (1 lsl n) (* stop bit *) in
    Array.iteri (fun i b -> if b then payload := !payload lor (1 lsl i)) bits;
    Buffer.add_char buf (Char.chr ((tag_tnt lsl 6) lor !payload))
  | Tip addr ->
    Buffer.add_char buf (Char.chr (tag_tip lsl 6));
    (* LEB128 *)
    let rec emit v =
      let byte = v land 0x7F and rest = v lsr 7 in
      if rest = 0 then Buffer.add_char buf (Char.chr byte)
      else begin
        Buffer.add_char buf (Char.chr (byte lor 0x80));
        emit rest
      end
    in
    assert (addr >= 0);
    emit addr
  | End_of_trace -> Buffer.add_char buf (Char.chr (tag_end lsl 6))

let read bytes ~pos =
  let byte = Char.code (Bytes.get bytes pos) in
  let tag = byte lsr 6 in
  if tag = tag_tnt then begin
    let payload = byte land 0x3F in
    (* 0 has no stop bit; 1 is a stop bit with no payload bits.  The
       encoder emits neither, so both are corruption. *)
    if payload <= 1 then invalid_arg "Packet.read: empty TNT";
    (* Position of the stop bit = highest set bit. *)
    let stop = ref 5 in
    while payload land (1 lsl !stop) = 0 do
      decr stop
    done;
    let bits = Array.init !stop (fun i -> payload land (1 lsl i) <> 0) in
    (Tnt bits, pos + 1)
  end
  else if tag = tag_tip then begin
    let rec take pos shift acc =
      let byte = Char.code (Bytes.get bytes pos) in
      let acc = acc lor ((byte land 0x7F) lsl shift) in
      if byte land 0x80 <> 0 then take (pos + 1) (shift + 7) acc else (acc, pos + 1)
    in
    let addr, next = take (pos + 1) 0 0 in
    (Tip addr, next)
  end
  else if tag = tag_end then (End_of_trace, pos + 1)
  else invalid_arg "Packet.read: bad tag"

let pp fmt = function
  | Tnt bits ->
    Format.fprintf fmt "TNT[%s]"
      (String.concat "" (List.map (fun b -> if b then "T" else "N") (Array.to_list bits)))
  | Tip addr -> Format.fprintf fmt "TIP[%a]" Ripple_isa.Addr.pp addr
  | End_of_trace -> Format.fprintf fmt "END"
