module Program = Ripple_isa.Program
module Basic_block = Ripple_isa.Basic_block

(* Classification of a transition for the encoder: what must be recorded
   so the decoder can follow it? *)
type record = Nothing | Tnt_bit of bool | Tip_target

let classify (b : Basic_block.t) ~next =
  match b.Basic_block.term with
  | Basic_block.Fallthrough expected | Basic_block.Jump expected
  | Basic_block.Call { callee = expected; return_to = _ } ->
    if next <> expected then invalid_arg "Pt.encode: broken direct edge";
    Nothing
  | Basic_block.Cond { taken; fallthrough } ->
    if next = taken then Tnt_bit true
    else if next = fallthrough then Tnt_bit false
    else invalid_arg "Pt.encode: broken conditional edge"
  | Basic_block.Indirect _ | Basic_block.Indirect_call _ | Basic_block.Return -> Tip_target
  | Basic_block.Halt -> invalid_arg "Pt.encode: execution continues past halt"

(* The stream opens with an LEB128 block count — the moral equivalent of
   PT's PSB metadata — so the decoder knows where the capture stops even
   when it stops in the middle of statically determined control flow. *)
let write_header buf n =
  let rec emit v =
    let byte = v land 0x7F and rest = v lsr 7 in
    if rest = 0 then Buffer.add_char buf (Char.chr byte)
    else begin
      Buffer.add_char buf (Char.chr (byte lor 0x80));
      emit rest
    end
  in
  emit n

(* Bounds-checked header read.  A corrupt stream can claim any block
   count; the cap keeps a garbage header from turning into an attempt to
   materialise a multi-gigabyte trace. *)
let max_expected = 1 lsl 24

let read_header_opt data =
  let len = Bytes.length data in
  let rec take pos shift acc =
    if pos >= len || shift > 56 then None
    else begin
      let byte = Char.code (Bytes.get data pos) in
      let acc = acc lor ((byte land 0x7F) lsl shift) in
      if byte land 0x80 <> 0 then take (pos + 1) (shift + 7) acc else Some (acc, pos + 1)
    end
  in
  match take 0 0 0 with
  | Some (n, _) when n < 0 || n > max_expected -> None
  | other -> other

let split_header data =
  match read_header_opt data with
  | Some (n, payload) -> (n, payload)
  | None -> invalid_arg "Pt.split_header: malformed header"

let encode program blocks =
  let buf = Buffer.create (Array.length blocks) in
  write_header buf (Array.length blocks);
  let pending = ref [] in
  let pending_n = ref 0 in
  let flush_tnt () =
    if !pending_n > 0 then begin
      Packet.write buf (Packet.Tnt (Array.of_list (List.rev !pending)));
      pending := [];
      pending_n := 0
    end
  in
  let push_tnt bit =
    pending := bit :: !pending;
    incr pending_n;
    if !pending_n = Packet.max_tnt_bits then flush_tnt ()
  in
  let n = Array.length blocks in
  if n > 0 then begin
    Packet.write buf (Packet.Tip (Program.block program blocks.(0)).Basic_block.addr);
    for i = 0 to n - 2 do
      let b = Program.block program blocks.(i) in
      match classify b ~next:blocks.(i + 1) with
      | Nothing -> ()
      | Tnt_bit bit -> push_tnt bit
      | Tip_target ->
        flush_tnt ();
        Packet.write buf (Packet.Tip (Program.block program blocks.(i + 1)).Basic_block.addr)
    done
  end;
  flush_tnt ();
  Packet.write buf Packet.End_of_trace;
  Buffer.to_bytes buf

type error_kind =
  | Bad_header
  | Bad_packet
  | Unexpected_packet
  | Bad_tip
  | Truncated
  | Past_halt

let error_kind_name = function
  | Bad_header -> "bad-header"
  | Bad_packet -> "bad-packet"
  | Unexpected_packet -> "unexpected-packet"
  | Bad_tip -> "bad-tip"
  | Truncated -> "truncated"
  | Past_halt -> "past-halt"

type decode_error = { pos : int; decoded : int; kind : error_kind }

type recovery = {
  trace : int array;
  expected : int;
  salvage : float;
  errors : decode_error list;
  resyncs : int;
}

let block_start_of_addr program addr =
  match Program.block_at program addr with
  | Some b when b.Basic_block.addr = addr -> Some b.Basic_block.id
  | Some _ | None -> None

(* Decoder state: a packet cursor plus a TNT bit cursor within the
   current TNT packet. *)
type cursor = {
  data : bytes;
  mutable pos : int;
  mutable tnt : bool array;
  mutable tnt_pos : int;
}

(* The recovering decoder.  Structure: [run] appends a block and walks
   statically determined flow; on anything malformed it records a
   structured error and [restart]s by scanning forward for the next TIP
   packet that lands exactly on a block boundary (the role PSB packets
   play for real PT decoders).  Every fault either consumes the
   offending bytes or rescans from strictly past them, so the cursor
   always advances and decoding terminates.  End-of-trace before the
   advertised block count is terminal — there is nothing left to scan. *)
let decode_result program data =
  let len = Bytes.length data in
  match read_header_opt data with
  | None ->
    {
      trace = [||];
      expected = 0;
      salvage = 0.0;
      errors = [ { pos = 0; decoded = 0; kind = Bad_header } ];
      resyncs = 0;
    }
  | Some (n, start) ->
    (* The advertised count is untrusted, so the output grows on demand
       rather than being allocated up front. *)
    let buf = ref (Array.make (max 16 (min n 65536)) 0) in
    let count = ref 0 in
    let push id =
      if !count = Array.length !buf then begin
        let grown = Array.make (2 * !count) 0 in
        Array.blit !buf 0 grown 0 !count;
        buf := grown
      end;
      !buf.(!count) <- id;
      incr count
    in
    let errors = ref [] in
    let resyncs = ref 0 in
    let record pos kind = errors := { pos; decoded = !count; kind } :: !errors in
    let c = { data; pos = start; tnt = [||]; tnt_pos = 0 } in
    let rec resync pos =
      if pos >= len then None
      else if Char.code (Bytes.get data pos) <> Packet.tip_tag_byte then resync (pos + 1)
      else begin
        match Packet.read data ~pos with
        | Packet.Tip addr, next -> begin
          match block_start_of_addr program addr with
          | Some id ->
            c.pos <- next;
            c.tnt <- [||];
            c.tnt_pos <- 0;
            incr resyncs;
            Some id
          | None -> resync (pos + 1)
        end
        | (Packet.Tnt _ | Packet.End_of_trace), _ -> resync (pos + 1)
        | exception Invalid_argument _ -> resync (pos + 1)
      end
    in
    let rec run id =
      push id;
      if !count < n then step id
    and step id =
      let b = Program.block program id in
      match b.Basic_block.term with
      | Basic_block.Fallthrough next | Basic_block.Jump next -> run next
      | Basic_block.Call { callee; return_to = _ } -> run callee
      | Basic_block.Cond { taken; fallthrough } ->
        if c.tnt_pos < Array.length c.tnt then begin
          let bit = c.tnt.(c.tnt_pos) in
          c.tnt_pos <- c.tnt_pos + 1;
          run (if bit then taken else fallthrough)
        end
        else begin
          let pre = c.pos in
          match Packet.read data ~pos:pre with
          | Packet.Tnt bits, next ->
            c.pos <- next;
            c.tnt <- bits;
            c.tnt_pos <- 1;
            run (if bits.(0) then taken else fallthrough)
          | Packet.Tip _, _ ->
            (* A TIP where bits were due is itself a candidate restart
               point, so rescan from [pre] rather than past it. *)
            record pre Unexpected_packet;
            restart pre
          | Packet.End_of_trace, _ -> record pre Truncated
          | exception Invalid_argument _ ->
            record pre Bad_packet;
            restart (pre + 1)
        end
      | Basic_block.Indirect _ | Basic_block.Indirect_call _ | Basic_block.Return ->
        let pre = c.pos in
        if c.tnt_pos < Array.length c.tnt then begin
          (* Leftover conditional bits at an indirect transfer: the
             pending packet was garbage.  Drop the bits and rescan. *)
          record pre Unexpected_packet;
          c.tnt <- [||];
          c.tnt_pos <- 0;
          restart pre
        end
        else begin
          match Packet.read data ~pos:pre with
          | Packet.Tip addr, next -> begin
            match block_start_of_addr program addr with
            | Some id ->
              c.pos <- next;
              run id
            | None ->
              record pre Bad_tip;
              restart next
          end
          | Packet.Tnt _, next ->
            record pre Unexpected_packet;
            restart next
          | Packet.End_of_trace, _ -> record pre Truncated
          | exception Invalid_argument _ ->
            record pre Bad_packet;
            restart (pre + 1)
        end
      | Basic_block.Halt ->
        record c.pos Past_halt;
        restart c.pos
    and restart pos = match resync pos with Some id -> run id | None -> () in
    (if n > 0 then begin
       let pre = c.pos in
       match Packet.read data ~pos:pre with
       | Packet.Tip addr, next -> begin
         match block_start_of_addr program addr with
         | Some id ->
           c.pos <- next;
           run id
         | None ->
           record pre Bad_tip;
           restart next
       end
       | Packet.Tnt _, next ->
         record pre Unexpected_packet;
         restart next
       | Packet.End_of_trace, _ -> record pre Truncated
       | exception Invalid_argument _ ->
         record pre Bad_packet;
         restart (pre + 1)
     end);
    let trace = Array.sub !buf 0 !count in
    let salvage = if n = 0 then 1.0 else Float.of_int !count /. Float.of_int n in
    { trace; expected = n; salvage; errors = List.rev !errors; resyncs = !resyncs }

let decode program data =
  let r = decode_result program data in
  match r.errors with
  | [] -> r.trace
  | { pos; kind; decoded = _ } :: _ ->
    invalid_arg (Printf.sprintf "Pt.decode: %s at byte %d" (error_kind_name kind) pos)

let compression_ratio program blocks =
  if Array.length blocks = 0 then 0.0
  else begin
    let encoded = encode program blocks in
    Float.of_int (Bytes.length encoded) /. Float.of_int (Array.length blocks)
  end
