module Program = Ripple_isa.Program
module Basic_block = Ripple_isa.Basic_block

(* Classification of a transition for the encoder: what must be recorded
   so the decoder can follow it? *)
type record = Nothing | Tnt_bit of bool | Tip_target

let classify (b : Basic_block.t) ~next =
  match b.Basic_block.term with
  | Basic_block.Fallthrough expected | Basic_block.Jump expected
  | Basic_block.Call { callee = expected; return_to = _ } ->
    if next <> expected then invalid_arg "Pt.encode: broken direct edge";
    Nothing
  | Basic_block.Cond { taken; fallthrough } ->
    if next = taken then Tnt_bit true
    else if next = fallthrough then Tnt_bit false
    else invalid_arg "Pt.encode: broken conditional edge"
  | Basic_block.Indirect _ | Basic_block.Indirect_call _ | Basic_block.Return -> Tip_target
  | Basic_block.Halt -> invalid_arg "Pt.encode: execution continues past halt"

(* The stream opens with an LEB128 block count — the moral equivalent of
   PT's PSB metadata — so the decoder knows where the capture stops even
   when it stops in the middle of statically determined control flow. *)
let write_header buf n =
  let rec emit v =
    let byte = v land 0x7F and rest = v lsr 7 in
    if rest = 0 then Buffer.add_char buf (Char.chr byte)
    else begin
      Buffer.add_char buf (Char.chr (byte lor 0x80));
      emit rest
    end
  in
  emit n

let read_header data =
  let rec take pos shift acc =
    let byte = Char.code (Bytes.get data pos) in
    let acc = acc lor ((byte land 0x7F) lsl shift) in
    if byte land 0x80 <> 0 then take (pos + 1) (shift + 7) acc else (acc, pos + 1)
  in
  take 0 0 0

let encode program blocks =
  let buf = Buffer.create (Array.length blocks) in
  write_header buf (Array.length blocks);
  let pending = ref [] in
  let pending_n = ref 0 in
  let flush_tnt () =
    if !pending_n > 0 then begin
      Packet.write buf (Packet.Tnt (Array.of_list (List.rev !pending)));
      pending := [];
      pending_n := 0
    end
  in
  let push_tnt bit =
    pending := bit :: !pending;
    incr pending_n;
    if !pending_n = Packet.max_tnt_bits then flush_tnt ()
  in
  let n = Array.length blocks in
  if n > 0 then begin
    Packet.write buf (Packet.Tip (Program.block program blocks.(0)).Basic_block.addr);
    for i = 0 to n - 2 do
      let b = Program.block program blocks.(i) in
      match classify b ~next:blocks.(i + 1) with
      | Nothing -> ()
      | Tnt_bit bit -> push_tnt bit
      | Tip_target ->
        flush_tnt ();
        Packet.write buf (Packet.Tip (Program.block program blocks.(i + 1)).Basic_block.addr)
    done
  end;
  flush_tnt ();
  Packet.write buf Packet.End_of_trace;
  Buffer.to_bytes buf

(* Decoder state: a packet cursor plus a TNT bit cursor within the
   current TNT packet. *)
type cursor = {
  data : bytes;
  mutable pos : int;
  mutable tnt : bool array;
  mutable tnt_pos : int;
}

let next_packet c =
  let packet, pos = Packet.read c.data ~pos:c.pos in
  c.pos <- pos;
  packet

let next_tnt c =
  if c.tnt_pos < Array.length c.tnt then begin
    let bit = c.tnt.(c.tnt_pos) in
    c.tnt_pos <- c.tnt_pos + 1;
    bit
  end
  else begin
    match next_packet c with
    | Packet.Tnt bits ->
      c.tnt <- bits;
      c.tnt_pos <- 1;
      bits.(0)
    | Packet.End_of_trace -> invalid_arg "Pt.decode: truncated trace (TNT)"
    | Packet.Tip _ -> invalid_arg "Pt.decode: expected TNT, got TIP"
  end

let next_tip c =
  if c.tnt_pos < Array.length c.tnt then invalid_arg "Pt.decode: unconsumed TNT bits";
  match next_packet c with
  | Packet.Tip addr -> addr
  | Packet.End_of_trace -> invalid_arg "Pt.decode: truncated trace (TIP)"
  | Packet.Tnt _ -> invalid_arg "Pt.decode: expected TIP, got TNT"

let block_of_addr program addr =
  match Program.block_at program addr with
  | Some b when b.Basic_block.addr = addr -> b.Basic_block.id
  | Some _ | None -> invalid_arg "Pt.decode: TIP does not land on a block"

let decode program data =
  let n, pos = read_header data in
  let c = { data; pos; tnt = [||]; tnt_pos = 0 } in
  let ids = Array.make n 0 in
  if n > 0 then begin
    let first =
      match next_packet c with
      | Packet.Tip addr -> block_of_addr program addr
      | Packet.Tnt _ | Packet.End_of_trace ->
        invalid_arg "Pt.decode: trace must start with TIP"
    in
    let rec follow i id =
      ids.(i) <- id;
      if i + 1 < n then begin
        let b = Program.block program id in
        match b.Basic_block.term with
        | Basic_block.Fallthrough next | Basic_block.Jump next -> follow (i + 1) next
        | Basic_block.Call { callee; return_to = _ } -> follow (i + 1) callee
        | Basic_block.Cond { taken; fallthrough } ->
          if next_tnt c then follow (i + 1) taken else follow (i + 1) fallthrough
        | Basic_block.Indirect _ | Basic_block.Indirect_call _ | Basic_block.Return ->
          follow (i + 1) (block_of_addr program (next_tip c))
        | Basic_block.Halt -> invalid_arg "Pt.decode: execution continues past halt"
      end
    in
    follow 0 first
  end;
  ids

let compression_ratio program blocks =
  if Array.length blocks = 0 then 0.0
  else begin
    let encoded = encode program blocks in
    Float.of_int (Bytes.length encoded) /. Float.of_int (Array.length blocks)
  end
