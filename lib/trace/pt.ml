module Program = Ripple_isa.Program
module Basic_block = Ripple_isa.Basic_block

(* Classification of a transition for the encoder: what must be recorded
   so the decoder can follow it? *)
type record = Nothing | Tnt_bit of bool | Tip_target

let classify (b : Basic_block.t) ~next =
  match b.Basic_block.term with
  | Basic_block.Fallthrough expected | Basic_block.Jump expected
  | Basic_block.Call { callee = expected; return_to = _ } ->
    if next <> expected then invalid_arg "Pt.encode: broken direct edge";
    Nothing
  | Basic_block.Cond { taken; fallthrough } ->
    if next = taken then Tnt_bit true
    else if next = fallthrough then Tnt_bit false
    else invalid_arg "Pt.encode: broken conditional edge"
  | Basic_block.Indirect _ | Basic_block.Indirect_call _ | Basic_block.Return -> Tip_target
  | Basic_block.Halt -> invalid_arg "Pt.encode: execution continues past halt"

(* The stream opens with an LEB128 block count — the moral equivalent of
   PT's PSB metadata — so the decoder knows where the capture stops even
   when it stops in the middle of statically determined control flow. *)
let write_header buf n =
  let rec emit v =
    let byte = v land 0x7F and rest = v lsr 7 in
    if rest = 0 then Buffer.add_char buf (Char.chr byte)
    else begin
      Buffer.add_char buf (Char.chr (byte lor 0x80));
      emit rest
    end
  in
  emit n

(* Bounds-checked header read.  A corrupt stream can claim any block
   count; the cap keeps a garbage header from turning into an attempt to
   materialise a multi-gigabyte trace. *)
let max_expected = 1 lsl 24

let read_header_opt data =
  let len = Bytes.length data in
  let rec take pos shift acc =
    if pos >= len || shift > 56 then None
    else begin
      let byte = Char.code (Bytes.get data pos) in
      let acc = acc lor ((byte land 0x7F) lsl shift) in
      if byte land 0x80 <> 0 then take (pos + 1) (shift + 7) acc else Some (acc, pos + 1)
    end
  in
  match take 0 0 0 with
  | Some (n, _) when n < 0 || n > max_expected -> None
  | other -> other

let split_header data =
  match read_header_opt data with
  | Some (n, payload) -> (n, payload)
  | None -> invalid_arg "Pt.split_header: malformed header"

let encode program blocks =
  let buf = Buffer.create (Array.length blocks) in
  write_header buf (Array.length blocks);
  let pending = ref [] in
  let pending_n = ref 0 in
  let flush_tnt () =
    if !pending_n > 0 then begin
      Packet.write buf (Packet.Tnt (Array.of_list (List.rev !pending)));
      pending := [];
      pending_n := 0
    end
  in
  let push_tnt bit =
    pending := bit :: !pending;
    incr pending_n;
    if !pending_n = Packet.max_tnt_bits then flush_tnt ()
  in
  let n = Array.length blocks in
  if n > 0 then begin
    Packet.write buf (Packet.Tip (Program.block program blocks.(0)).Basic_block.addr);
    for i = 0 to n - 2 do
      let b = Program.block program blocks.(i) in
      match classify b ~next:blocks.(i + 1) with
      | Nothing -> ()
      | Tnt_bit bit -> push_tnt bit
      | Tip_target ->
        flush_tnt ();
        Packet.write buf (Packet.Tip (Program.block program blocks.(i + 1)).Basic_block.addr)
    done
  end;
  flush_tnt ();
  Packet.write buf Packet.End_of_trace;
  Buffer.to_bytes buf

type error_kind =
  | Bad_header
  | Bad_packet
  | Unexpected_packet
  | Bad_tip
  | Truncated
  | Past_halt

let error_kind_name = function
  | Bad_header -> "bad-header"
  | Bad_packet -> "bad-packet"
  | Unexpected_packet -> "unexpected-packet"
  | Bad_tip -> "bad-tip"
  | Truncated -> "truncated"
  | Past_halt -> "past-halt"

type decode_error = { pos : int; decoded : int; kind : error_kind }

type recovery = {
  trace : int array;
  expected : int;
  salvage : float;
  errors : decode_error list;
  resyncs : int;
}

let block_start_of_addr program addr =
  match Program.block_at program addr with
  | Some b when b.Basic_block.addr = addr -> Some b.Basic_block.id
  | Some _ | None -> None

(* ------------------------- resumable sessions ------------------------ *)

(* The recovering decoder as an explicit state machine, so it can park
   at a chunk boundary and resume when more bytes arrive.  The states
   are exactly the points where the one-shot decoder consumed input:

     Header      the LEB128 block count is not yet complete
     First       the opening TIP locating the initial block is due
     Cond id     at a conditional with no buffered TNT bits: a packet
                 is due
     Indirect id at an indirect transfer: a TIP is due
     Resync pos  scanning forward from [pos] for a TIP anchor after a
                 recorded fault
     Done        the advertised count was reached, or the stream ended

   Statically determined flow (fall-throughs, direct jumps and calls,
   conditionals whose TNT bits are already buffered) is walked eagerly
   and never parks.  The equivalence with one-shot decoding rests on
   one rule: a packet that runs past the currently available bytes is
   "incomplete" — the session parks — until [finish] declares end of
   stream, at which point it resolves exactly as the one-shot decoder's
   out-of-bounds read would (a [Bad_packet] fault, or a failed header /
   exhausted resync scan). *)
module Session = struct
  type state = Header | First | Cond of int | Indirect of int | Resync of int | Done

  type t = {
    program : Program.t;
    mutable data : bytes;  (** every byte fed so far (positions are absolute) *)
    mutable len : int;
    mutable pos : int;  (** packet cursor *)
    mutable tnt : bool array;  (** buffered TNT bits of the current packet *)
    mutable tnt_pos : int;
    mutable n : int;  (** advertised block count (valid past Header) *)
    mutable state : state;
    mutable blocks : int array;
    mutable count : int;
    mutable drained : int;
    mutable errors_rev : decode_error list;
    mutable n_errors : int;
    mutable drained_errors : int;
    mutable resyncs : int;
    mutable eof : bool;
  }

  let create program =
    {
      program;
      data = Bytes.create 4096;
      len = 0;
      pos = 0;
      tnt = [||];
      tnt_pos = 0;
      n = 0;
      state = Header;
      blocks = Array.make 256 0;
      count = 0;
      drained = 0;
      errors_rev = [];
      n_errors = 0;
      drained_errors = 0;
      resyncs = 0;
      eof = false;
    }

  let record t pos kind =
    t.errors_rev <- { pos; decoded = t.count; kind } :: t.errors_rev;
    t.n_errors <- t.n_errors + 1

  let push t id =
    if t.count = Array.length t.blocks then begin
      let grown = Array.make (2 * t.count) 0 in
      Array.blit t.blocks 0 grown 0 t.count;
      t.blocks <- grown
    end;
    t.blocks.(t.count) <- id;
    t.count <- t.count + 1

  (* Bounds-checked packet read against the bytes fed so far.  The
     distinction the one-shot decoder never needed: [`Incomplete] means
     the packet may still be completed by a future chunk, [`Malformed]
     means no amount of further input can repair it (mirroring the
     [Invalid_argument] raises of {!Packet.read} on in-range bytes). *)
  let read_packet t pos =
    if pos >= t.len then `Incomplete
    else begin
      let byte = Char.code (Bytes.get t.data pos) in
      let tag = byte lsr 6 in
      if tag = 0b00 then begin
        let payload = byte land 0x3F in
        if payload <= 1 then `Malformed
        else begin
          let stop = ref 5 in
          while payload land (1 lsl !stop) = 0 do
            decr stop
          done;
          `Packet (Packet.Tnt (Array.init !stop (fun i -> payload land (1 lsl i) <> 0)), pos + 1)
        end
      end
      else if tag = 0b01 then begin
        let rec take pos shift acc =
          if pos >= t.len then `Incomplete
          else begin
            let byte = Char.code (Bytes.get t.data pos) in
            let acc = acc lor ((byte land 0x7F) lsl shift) in
            if byte land 0x80 <> 0 then take (pos + 1) (shift + 7) acc
            else `Packet (Packet.Tip acc, pos + 1)
          end
        in
        take (pos + 1) 0 0
      end
      else if tag = 0b10 then `Packet (Packet.End_of_trace, pos + 1)
      else `Malformed
    end

  (* Incremental header read: [`Header] when complete, [`Incomplete]
     while the LEB128 still wants bytes, [`Malformed] on overflow or an
     absurd count — the cases [read_header_opt] folds into [None]. *)
  let read_header t =
    let rec take pos shift acc =
      if shift > 56 then `Malformed
      else if pos >= t.len then `Incomplete
      else begin
        let byte = Char.code (Bytes.get t.data pos) in
        let acc = acc lor ((byte land 0x7F) lsl shift) in
        if byte land 0x80 <> 0 then take (pos + 1) (shift + 7) acc
        else if acc < 0 || acc > max_expected then `Malformed
        else `Header (acc, pos + 1)
      end
    in
    take 0 0 0

  (* Drive the machine as far as the available bytes allow.  Each
     iteration either consumes input, advances the resync scan, or
     parks (returns).  [eof] converts every [`Incomplete] into the
     one-shot decoder's terminal behaviour. *)
  let rec advance t =
    match t.state with
    | Done -> ()
    | Header -> begin
      match read_header t with
      | `Header (n, start) ->
        t.n <- n;
        t.pos <- start;
        t.state <- (if n = 0 then Done else First);
        advance t
      | `Incomplete when not t.eof -> ()
      | `Incomplete | `Malformed ->
        record t 0 Bad_header;
        t.state <- Done
    end
    | First -> expect_tip t ~first:true t.pos
    | Indirect _ -> expect_tip t ~first:false t.pos
    | Cond id -> begin
      let b = Program.block t.program id in
      let taken, fallthrough =
        match b.Basic_block.term with
        | Basic_block.Cond { taken; fallthrough } -> (taken, fallthrough)
        | _ -> assert false
      in
      let pre = t.pos in
      match read_packet t pre with
      | `Packet (Packet.Tnt bits, next) ->
        t.pos <- next;
        t.tnt <- bits;
        t.tnt_pos <- 1;
        run t (if bits.(0) then taken else fallthrough)
      | `Packet (Packet.Tip _, _) ->
        (* A TIP where bits were due is itself a candidate restart
           point, so rescan from [pre] rather than past it. *)
        record t pre Unexpected_packet;
        t.state <- Resync pre;
        advance t
      | `Packet (Packet.End_of_trace, _) ->
        record t pre Truncated;
        t.state <- Done
      | `Incomplete when not t.eof -> ()
      | `Incomplete | `Malformed ->
        record t pre Bad_packet;
        t.state <- Resync (pre + 1);
        advance t
    end
    | Resync pos ->
      if pos >= t.len then begin
        if t.eof then t.state <- Done else t.state <- Resync pos
      end
      else if Char.code (Bytes.get t.data pos) <> Packet.tip_tag_byte then begin
        t.state <- Resync (pos + 1);
        advance t
      end
      else begin
        match read_packet t pos with
        | `Packet (Packet.Tip addr, next) -> begin
          match block_start_of_addr t.program addr with
          | Some id ->
            t.pos <- next;
            t.tnt <- [||];
            t.tnt_pos <- 0;
            t.resyncs <- t.resyncs + 1;
            run t id
          | None ->
            t.state <- Resync (pos + 1);
            advance t
        end
        | `Incomplete when not t.eof -> t.state <- Resync pos
        | `Incomplete | `Malformed | `Packet _ ->
          t.state <- Resync (pos + 1);
          advance t
      end

  (* A TIP is due: the opening packet, or an indirect transfer's target. *)
  and expect_tip t ~first pre =
    match read_packet t pre with
    | `Packet (Packet.Tip addr, next) -> begin
      match block_start_of_addr t.program addr with
      | Some id ->
        t.pos <- next;
        run t id
      | None ->
        record t pre Bad_tip;
        t.state <- Resync next;
        advance t
    end
    | `Packet (Packet.Tnt _, next) ->
      record t pre Unexpected_packet;
      t.state <- Resync next;
      advance t
    | `Packet (Packet.End_of_trace, _) ->
      record t pre Truncated;
      t.state <- Done
    | `Incomplete when not t.eof -> t.state <- (if first then First else t.state)
    | `Incomplete | `Malformed ->
      record t pre Bad_packet;
      t.state <- Resync (pre + 1);
      advance t

  (* Append a block and walk statically determined flow until the next
     point that needs a packet (or the advertised count is reached). *)
  and run t id =
    push t id;
    if t.count >= t.n then t.state <- Done
    else begin
      let b = Program.block t.program id in
      match b.Basic_block.term with
      | Basic_block.Fallthrough next | Basic_block.Jump next -> run t next
      | Basic_block.Call { callee; return_to = _ } -> run t callee
      | Basic_block.Cond { taken; fallthrough } ->
        if t.tnt_pos < Array.length t.tnt then begin
          let bit = t.tnt.(t.tnt_pos) in
          t.tnt_pos <- t.tnt_pos + 1;
          run t (if bit then taken else fallthrough)
        end
        else begin
          t.state <- Cond id;
          advance t
        end
      | Basic_block.Indirect _ | Basic_block.Indirect_call _ | Basic_block.Return ->
        if t.tnt_pos < Array.length t.tnt then begin
          (* Leftover conditional bits at an indirect transfer: the
             pending packet was garbage.  Drop the bits and rescan. *)
          record t t.pos Unexpected_packet;
          t.tnt <- [||];
          t.tnt_pos <- 0;
          t.state <- Resync t.pos;
          advance t
        end
        else begin
          t.state <- Indirect id;
          advance t
        end
      | Basic_block.Halt ->
        record t t.pos Past_halt;
        t.state <- Resync t.pos;
        advance t
    end

  let feed t chunk =
    if t.eof then invalid_arg "Pt.Session.feed: session is finished";
    let n = Bytes.length chunk in
    if n > 0 then begin
      if t.len + n > Bytes.length t.data then begin
        let cap = ref (max 4096 (2 * Bytes.length t.data)) in
        while t.len + n > !cap do
          cap := 2 * !cap
        done;
        let grown = Bytes.create !cap in
        Bytes.blit t.data 0 grown 0 t.len;
        t.data <- grown
      end;
      Bytes.blit chunk 0 t.data t.len n;
      t.len <- t.len + n
    end;
    advance t

  let finish t =
    if not t.eof then begin
      t.eof <- true;
      advance t
    end

  let drain t =
    let fresh = Array.sub t.blocks t.drained (t.count - t.drained) in
    t.drained <- t.count;
    fresh

  let drain_errors t =
    let fresh = t.n_errors - t.drained_errors in
    let rec take acc k rest =
      if k = 0 then acc
      else
        match rest with
        | e :: rest -> take (e :: acc) (k - 1) rest
        | [] -> acc
    in
    t.drained_errors <- t.n_errors;
    take [] fresh t.errors_rev

  let decoded t = t.count
  let expected t = t.n
  let errors t = t.n_errors
  let resyncs t = t.resyncs

  let salvage t =
    match t.state with
    | Header -> 0.0
    | _ ->
      if t.n = 0 then if t.n_errors = 0 then 1.0 else 0.0
      else Float.of_int t.count /. Float.of_int t.n

  let finished t = t.state = Done

  let result t =
    {
      trace = Array.sub t.blocks 0 t.count;
      expected = t.n;
      salvage = salvage t;
      errors = List.rev t.errors_rev;
      resyncs = t.resyncs;
    }
end

let decode_result program data =
  let s = Session.create program in
  Session.feed s data;
  Session.finish s;
  Session.result s

let decode program data =
  let r = decode_result program data in
  match r.errors with
  | [] -> r.trace
  | { pos; kind; decoded = _ } :: _ ->
    invalid_arg (Printf.sprintf "Pt.decode: %s at byte %d" (error_kind_name kind) pos)

let compression_ratio program blocks =
  if Array.length blocks = 0 then 0.0
  else begin
    let encoded = encode program blocks in
    Float.of_int (Bytes.length encoded) /. Float.of_int (Array.length blocks)
  end
