(** Trace encoder/decoder: execution ⇄ packet stream.

    [encode] compresses an executed basic-block sequence into the packet
    byte stream the hardware would emit; [decode] reconstructs the exact
    block sequence from the packets plus the static program.  Together
    they realise step 1 of Ripple's pipeline (Fig. 4): the profile that
    reaches the offline analysis is exactly what PT-style tracing can
    reconstruct, no more.

    Real PT streams are lossy — ring buffers overflow, packets truncate
    mid-capture — so the primary decoder here is {!decode_result}: it
    never raises, resynchronizes at the next plausible TIP packet after
    corruption, and reports how much of the advertised execution it
    salvaged.  The strict {!decode} is a thin wrapper that raises if the
    recovery was anything but total. *)

module Program := Ripple_isa.Program

val encode : Program.t -> int array -> bytes
(** [encode program blocks] serialises the block-id execution sequence.
    The first packet is a TIP locating the initial block; conditional
    outcomes become TNT bits; indirect jumps, indirect calls and returns
    become TIPs; direct flow is omitted.  Raises [Invalid_argument] if
    consecutive blocks are not connected in [program]. *)

type error_kind =
  | Bad_header  (** the leading LEB128 block count is malformed or absurd *)
  | Bad_packet  (** undecodable byte where a packet should start *)
  | Unexpected_packet  (** well-formed packet of the wrong kind for this point *)
  | Bad_tip  (** TIP address does not land on a block boundary *)
  | Truncated  (** stream ended before the advertised block count *)
  | Past_halt  (** decoded flow reached a halt with blocks still owed *)

val error_kind_name : error_kind -> string
(** Stable kebab-case name, used in JSON reports. *)

type decode_error = {
  pos : int;  (** byte offset in the stream where the fault was detected *)
  decoded : int;  (** blocks successfully decoded before the fault *)
  kind : error_kind;
}

type recovery = {
  trace : int array;  (** salvaged block ids, in decode order *)
  expected : int;  (** block count advertised by the header (0 if unreadable) *)
  salvage : float;  (** decoded / expected; 1.0 for a clean stream *)
  errors : decode_error list;  (** faults encountered, in stream order *)
  resyncs : int;  (** successful re-synchronizations at a TIP packet *)
}

(** Resumable decoding session: the incremental form of the recovering
    decoder, for consumers that receive a capture in chunks (the
    [ripple-sim serve] daemon).  Feed byte chunks as they arrive; the
    session decodes as far as the available bytes allow and parks
    mid-packet (or mid-TNT, or mid-resync-scan) until the next chunk.
    The chunking is unobservable: for every split of a stream into
    chunks, the final blocks, errors, salvage ratio and resync count are
    identical to a one-shot {!decode_result} of the concatenation —
    {!decode_result} is itself implemented as a one-chunk session.

    A session never raises on malformed input; like the one-shot
    decoder it records structured errors and resynchronizes at the next
    TIP packet landing on a block boundary. *)
module Session : sig
  type t

  val create : Program.t -> t

  val feed : t -> bytes -> unit
  (** Appends a chunk and decodes as far as it allows.  Raises
      [Invalid_argument] if called after {!finish}. *)

  val finish : t -> unit
  (** Signals end of stream: pending partial state (an incomplete
      packet, an unsatisfied resync scan, a half-read header) resolves
      into the same terminal errors the one-shot decoder reports.
      Idempotent. *)

  val drain : t -> int array
  (** Blocks decoded since the previous [drain] (or since [create]).
      Draining does not affect {!result}, which always covers the whole
      session. *)

  val drain_errors : t -> decode_error list
  (** Errors recorded since the previous [drain_errors], in stream
      order. *)

  val decoded : t -> int
  (** Total blocks decoded so far. *)

  val expected : t -> int
  (** The header's advertised block count; 0 while the header is still
      incomplete (or unreadable). *)

  val errors : t -> int
  (** Total decode errors recorded so far. *)

  val resyncs : t -> int

  val salvage : t -> float
  (** [decoded / expected] so far; 0.0 while the header is unread, 1.0
      for a completed empty capture. *)

  val finished : t -> bool
  (** The session is terminal: the advertised block count was reached,
      or {!finish} resolved the tail.  Further [feed]s are ignored by a
      count-complete session. *)

  val result : t -> recovery
  (** Snapshot of the whole session as a {!recovery} record (all blocks
      since [create], independent of {!drain}).  Call after {!finish}
      for the exact one-shot equivalent. *)
end

val decode_result : Program.t -> bytes -> recovery
(** Recovering decode: never raises.  On a fault it records a
    {!decode_error} and scans forward for the next TIP packet whose
    address is an exact block start — the resynchronization anchor,
    playing the role PSB packets do for real PT decoders — then resumes
    from that block with pending TNT state discarded.  On a clean stream
    the result is [decode program data] with [salvage = 1.0] and no
    errors.  Salvage is monotonically non-increasing under byte-prefix
    truncation of the stream.  One-shot wrapper over {!Session}: feed
    the whole buffer, finish, snapshot. *)

val decode : Program.t -> bytes -> int array
(** Strict inverse of {!encode}: [decode program (encode program t) = t].
    Thin wrapper over {!decode_result} that raises [Invalid_argument] on
    the first recorded error. *)

val split_header : bytes -> int * int
(** [(block_count, payload_start)] of a stream — where the fault
    injectors must stop treating bytes as sacred.  Raises
    [Invalid_argument] if the header itself is malformed. *)

val compression_ratio : Program.t -> int array -> float
(** Encoded bytes per executed basic block — the paper's "<1 % overhead"
    claim rests on this being well below one byte per block. *)
