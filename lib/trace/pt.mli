(** Trace encoder/decoder: execution ⇄ packet stream.

    [encode] compresses an executed basic-block sequence into the packet
    byte stream the hardware would emit; [decode] reconstructs the exact
    block sequence from the packets plus the static program.  Together
    they realise step 1 of Ripple's pipeline (Fig. 4): the profile that
    reaches the offline analysis is exactly what PT-style tracing can
    reconstruct, no more. *)

module Program := Ripple_isa.Program

val encode : Program.t -> int array -> bytes
(** [encode program blocks] serialises the block-id execution sequence.
    The first packet is a TIP locating the initial block; conditional
    outcomes become TNT bits; indirect jumps, indirect calls and returns
    become TIPs; direct flow is omitted.  Raises [Invalid_argument] if
    consecutive blocks are not connected in [program]. *)

val decode : Program.t -> bytes -> int array
(** Inverse of {!encode}: [decode program (encode program t) = t].
    Raises [Invalid_argument] on a malformed or truncated stream. *)

val compression_ratio : Program.t -> int array -> float
(** Encoded bytes per executed basic block — the paper's "<1 % overhead"
    claim rests on this being well below one byte per block. *)
