(** Decoded basic-block traces and their expansion into I-cache accesses.

    A trace is the dynamic block-id sequence; expanding each block into
    the cache lines its bytes occupy yields the demand access stream that
    both the offline oracles ({!Ripple_cache.Belady}) and the timing
    simulator replay.  Injected hint instructions live at the end of
    their block, so an instrumented program's blocks naturally expand to
    more lines — the code-bloat effect §IV charges against Ripple. *)

module Program := Ripple_isa.Program

type t = int array
(** Executed block ids, in order. *)

val n_instrs : Program.t -> t -> int
(** Dynamic instruction count, including injected hint instructions. *)

val n_hint_instrs : Program.t -> t -> int
(** Dynamic count of injected hint instructions only. *)

val exec_counts : Program.t -> t -> int array
(** Per-block execution counts, indexed by block id. *)

val demand_stream : Program.t -> t -> Access_stream.t
(** Demand-only I-cache access stream: for each executed block, one
    access per line its bytes (plus hints) touch, in address order.
    Built incrementally into packed chunks ({!Access_stream}), so
    expansion allocates one word per access and nothing else. *)

val illegal_transitions : Program.t -> t -> int
(** Number of consecutive pairs in the trace that the program's static
    CFG cannot produce: a direct edge to the wrong block, a conditional
    to neither arm, an indirect transfer outside its static target set,
    flow past a halt, or an out-of-range id.  [Return] edges are always
    accepted (they resolve dynamically).  Zero for any trace decoded
    from this program. *)

val drift : Program.t -> t -> float
(** {!illegal_transitions} as a fraction of the trace's transitions —
    the signal {!Ripple_core.Pipeline} uses to decide whether a profile
    still describes the program it is about to instrument.  0.0 for
    traces shorter than two blocks. *)

val kernel_fraction : Program.t -> t -> float
(** Fraction of executed blocks that are kernel code. *)
