(** Decoded basic-block traces and their expansion into I-cache accesses.

    A trace is the dynamic block-id sequence; expanding each block into
    the cache lines its bytes occupy yields the demand access stream that
    both the offline oracles ({!Ripple_cache.Belady}) and the timing
    simulator replay.  Injected hint instructions live at the end of
    their block, so an instrumented program's blocks naturally expand to
    more lines — the code-bloat effect §IV charges against Ripple. *)

module Program := Ripple_isa.Program

type t = int array
(** Executed block ids, in order. *)

val n_instrs : Program.t -> t -> int
(** Dynamic instruction count, including injected hint instructions. *)

val n_hint_instrs : Program.t -> t -> int
(** Dynamic count of injected hint instructions only. *)

val exec_counts : Program.t -> t -> int array
(** Per-block execution counts, indexed by block id. *)

val demand_stream : Program.t -> t -> Access_stream.t
(** Demand-only I-cache access stream: for each executed block, one
    access per line its bytes (plus hints) touch, in address order.
    Built incrementally into packed chunks ({!Access_stream}), so
    expansion allocates one word per access and nothing else. *)

val kernel_fraction : Program.t -> t -> float
(** Fraction of executed blocks that are kernel code. *)
