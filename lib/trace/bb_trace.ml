module Program = Ripple_isa.Program
module Basic_block = Ripple_isa.Basic_block
module Access = Ripple_cache.Access

type t = int array

let n_instrs program trace =
  let per_block =
    Array.map Basic_block.total_instrs (Program.blocks program)
  in
  Array.fold_left (fun acc id -> acc + per_block.(id)) 0 trace

let n_hint_instrs program trace =
  let per_block =
    Array.map (fun (b : Basic_block.t) -> Array.length b.Basic_block.hints) (Program.blocks program)
  in
  Array.fold_left (fun acc id -> acc + per_block.(id)) 0 trace

let exec_counts program trace =
  let counts = Array.make (Program.n_blocks program) 0 in
  Array.iter (fun id -> counts.(id) <- counts.(id) + 1) trace;
  counts

let demand_stream program trace =
  (* Pre-pack each block's line accesses once; expanding the trace is
     then a flat copy of ints into the stream builder — no per-access
     allocation, and peak memory is one word per access. *)
  let packed_per_block =
    Array.map
      (fun (b : Basic_block.t) ->
        Array.of_list
          (List.map (fun line -> Access.pack_demand ~line ~block:b.Basic_block.id)
             (Basic_block.lines b)))
      (Program.blocks program)
  in
  let builder = Access_stream.Builder.create () in
  Array.iter
    (fun id ->
      let packed = packed_per_block.(id) in
      for i = 0 to Array.length packed - 1 do
        Access_stream.Builder.add builder (Array.unsafe_get packed i)
      done)
    trace;
  Access_stream.Builder.finish builder

let kernel_fraction program trace =
  if Array.length trace = 0 then 0.0
  else begin
    let kernel = ref 0 in
    Array.iter
      (fun id ->
        if (Program.block program id).Basic_block.privilege = Basic_block.Kernel then incr kernel)
      trace;
    Float.of_int !kernel /. Float.of_int (Array.length trace)
  end
