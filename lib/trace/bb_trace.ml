module Program = Ripple_isa.Program
module Basic_block = Ripple_isa.Basic_block
module Access = Ripple_cache.Access

type t = int array

let n_instrs program trace =
  let per_block =
    Array.map Basic_block.total_instrs (Program.blocks program)
  in
  Array.fold_left (fun acc id -> acc + per_block.(id)) 0 trace

let n_hint_instrs program trace =
  let per_block =
    Array.map (fun (b : Basic_block.t) -> Array.length b.Basic_block.hints) (Program.blocks program)
  in
  Array.fold_left (fun acc id -> acc + per_block.(id)) 0 trace

let exec_counts program trace =
  let counts = Array.make (Program.n_blocks program) 0 in
  Array.iter (fun id -> counts.(id) <- counts.(id) + 1) trace;
  counts

let demand_stream program trace =
  (* Pre-pack each block's line accesses once; expanding the trace is
     then a flat copy of ints into the stream builder — no per-access
     allocation, and peak memory is one word per access. *)
  let packed_per_block =
    Array.map
      (fun (b : Basic_block.t) ->
        Array.of_list
          (List.map (fun line -> Access.pack_demand ~line ~block:b.Basic_block.id)
             (Basic_block.lines b)))
      (Program.blocks program)
  in
  let builder = Access_stream.Builder.create () in
  Array.iter
    (fun id ->
      let packed = packed_per_block.(id) in
      for i = 0 to Array.length packed - 1 do
        Access_stream.Builder.add builder (Array.unsafe_get packed i)
      done)
    trace;
  Access_stream.Builder.finish builder

let illegal_transitions program trace =
  let n_blocks = Program.n_blocks program in
  let illegal = ref 0 in
  let n = Array.length trace in
  for i = 0 to n - 2 do
    let id = trace.(i) and next = trace.(i + 1) in
    let bad =
      if id < 0 || id >= n_blocks || next < 0 || next >= n_blocks then true
      else begin
        match (Program.block program id).Basic_block.term with
        | Basic_block.Fallthrough expected | Basic_block.Jump expected -> next <> expected
        | Basic_block.Call { callee; return_to = _ } -> next <> callee
        | Basic_block.Cond { taken; fallthrough } -> next <> taken && next <> fallthrough
        | Basic_block.Indirect targets ->
          not (Array.exists (fun t -> t = next) targets)
        | Basic_block.Indirect_call { callees; return_to = _ } ->
          not (Array.exists (fun t -> t = next) callees)
        | Basic_block.Return -> false
        | Basic_block.Halt -> true
      end
    in
    if bad then incr illegal
  done;
  !illegal

let drift program trace =
  let n = Array.length trace in
  if n < 2 then 0.0
  else Float.of_int (illegal_transitions program trace) /. Float.of_int (n - 1)

let kernel_fraction program trace =
  if Array.length trace = 0 then 0.0
  else begin
    let kernel = ref 0 in
    Array.iter
      (fun id ->
        if (Program.block program id).Basic_block.privilege = Basic_block.Kernel then incr kernel)
      trace;
    Float.of_int !kernel /. Float.of_int (Array.length trace)
  end
