(** LBR-style sampled profiling (§III-A names Last Branch Record as the
    alternative capture mechanism to Intel PT).

    LBR hardware keeps a ring of the last [depth] taken branches; a
    sampling interrupt every [period] retired blocks snapshots the ring,
    and the profiler reconstructs the short basic-block path covered by
    those branch records (fall-through execution between records is
    recovered from the static program).  The result is a {e sampled,
    partial} view of execution — much cheaper than PT but far less
    complete, which is why the paper profiles with PT.  The ablation
    bench quantifies what Ripple loses when fed LBR samples instead. *)

module Program := Ripple_isa.Program

type sample = {
  at : int;  (** trace index of the sampling interrupt *)
  path : int array;  (** reconstructed block ids, oldest first *)
}

val capture : Program.t -> trace:int array -> period:int -> depth:int -> sample array
(** Samples the execution every [period] blocks; each sample's path
    extends backwards until it has crossed [depth] taken (non-fall-
    through) control transfers.  Deterministic. *)

val stitched_trace : sample array -> int array
(** Concatenation of all sample paths: the degraded stand-in for a full
    trace that a sampling profiler would hand to Ripple's analysis. *)

val coverage_fraction : sample array -> trace_length:int -> float
(** Fraction of dynamic blocks the samples actually observed. *)
