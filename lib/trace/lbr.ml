module Program = Ripple_isa.Program
module Basic_block = Ripple_isa.Basic_block

type sample = { at : int; path : int array }

(* Is the observed transition prev -> next a taken branch (an LBR
   record), or statically-implied fall-through?  Calls and returns are
   taken transfers; a conditional records only on its taken edge. *)
let is_taken_transfer program ~prev ~next =
  match (Program.block program prev).Basic_block.term with
  | Basic_block.Fallthrough _ -> false
  | Basic_block.Cond { taken; fallthrough = _ } -> next = taken
  | Basic_block.Jump _ | Basic_block.Call _ | Basic_block.Indirect _
  | Basic_block.Indirect_call _ | Basic_block.Return | Basic_block.Halt ->
    true

let capture program ~trace ~period ~depth =
  assert (period > 0 && depth > 0);
  let n = Array.length trace in
  let samples = ref [] in
  let i = ref (period - 1) in
  while !i < n do
    let at = !i in
    (* Walk backwards until [depth] taken transfers have been crossed. *)
    let start = ref at in
    let branches = ref 0 in
    while !start > 0 && !branches < depth do
      if is_taken_transfer program ~prev:trace.(!start - 1) ~next:trace.(!start) then
        incr branches;
      decr start
    done;
    samples := { at; path = Array.sub trace !start (at - !start + 1) } :: !samples;
    i := !i + period
  done;
  Array.of_list (List.rev !samples)

let stitched_trace samples =
  let total = Array.fold_left (fun acc s -> acc + Array.length s.path) 0 samples in
  let out = Array.make total 0 in
  let pos = ref 0 in
  Array.iter
    (fun s ->
      Array.blit s.path 0 out !pos (Array.length s.path);
      pos := !pos + Array.length s.path)
    samples;
  out

let coverage_fraction samples ~trace_length =
  if trace_length = 0 then 0.0
  else begin
    let covered = Array.fold_left (fun acc s -> acc + Array.length s.path) 0 samples in
    Float.min 1.0 (Float.of_int covered /. Float.of_int trace_length)
  end
