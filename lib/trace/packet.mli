(** Processor-trace packets, in the spirit of Intel PT (§III-A).

    Hardware control-flow tracing only records what cannot be derived
    from the static program: one taken/not-taken bit per conditional
    branch (batched into TNT packets of up to six bits) and the full
    target address of each taken indirect transfer (TIP packets).
    Everything else — fall-throughs, direct jumps, direct calls — is
    reconstructed by the decoder walking the program image, which is why
    PT's runtime overhead is so low. *)

type t =
  | Tnt of bool array  (** 1–5 conditional outcomes, oldest first *)
  | Tip of Ripple_isa.Addr.t  (** target of an indirect transfer *)
  | End_of_trace

val max_tnt_bits : int
(** 5: two tag bits leave six payload bits, one of which is the stop bit
    (Intel's short-TNT packet fits 6 because its tag is a single bit). *)

val tip_tag_byte : int
(** The first byte of every TIP packet (tag bits only, payload follows
    as LEB128).  Recovering decoders scan for this byte to find the next
    resynchronization point in a corrupt stream, the role PSB packets
    play for real PT decoders. *)

val write : Buffer.t -> t -> unit
(** Serialises one packet.  TNT packets use one byte (two tag bits, a
    stop bit delimiting up to six payload bits); TIP packets use a tag
    byte plus an LEB128 address. *)

val read : bytes -> pos:int -> t * int
(** Deserialises the packet at [pos], returning it and the next
    position.  Raises [Invalid_argument] on a malformed byte. *)

val pp : Format.formatter -> t -> unit
