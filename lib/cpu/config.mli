(** Simulator configuration — the paper's Table II, plus the two
    first-order timing knobs of the trace-driven model.

    The timing model is deliberately simple (DESIGN.md): execution costs
    [cpi_base] cycles per instruction for everything the out-of-order
    back end absorbs, and each L1I demand miss adds its hierarchy
    latency, scaled by [miss_exposure] to credit the front end for the
    fraction of a miss an OoO window can hide.  Relative results — every
    number the paper reports — depend on miss counts and where in the
    hierarchy they land, not on these two constants. *)

module Geometry := Ripple_cache.Geometry

type t = {
  l1i : Geometry.t;
  l2 : Geometry.t;
  l3 : Geometry.t;
  l1_latency : int;  (** cycles, Table II: 3 *)
  l2_latency : int;  (** 12 *)
  l3_latency : int;  (** 36 *)
  memory_latency : int;  (** 260 *)
  frequency_ghz : float;  (** 2.5 *)
  cores_per_socket : int;  (** 20 *)
  cpi_base : float;  (** back-end CPI with a perfect I-cache *)
  hint_cpi : float;
      (** cost of one injected hint instruction: an independent,
          freely-reorderable uop (§III-C) consumes an issue slot of the
          4-wide front end, not a full instruction's latency *)
  frontend_bubble : int;
      (** fixed re-steer/decode bubble added to every L1I miss on top of
          the hierarchy latency *)
  miss_exposure : float;  (** fraction of a miss latency left exposed *)
  ftq_depth : int;  (** FDIP fetch-target queue entries *)
  nlp_degree : int;
  prefetch_latency_blocks : int;
      (** blocks between a prefetch's issue and its fill becoming
          visible — the L2 round trip expressed in fetch-block
          granularity (applies to runahead and reactive prefetchers
          alike) *)
}

val default : t

val miss_penalty : t -> hit_level:[ `L2 | `L3 | `Memory ] -> int
(** Exposed latency of an L1I miss served at the given level (hierarchy
    latency difference plus the front-end bubble), before the
    [miss_exposure] scaling. *)

val pp_table : Format.formatter -> t -> unit
(** Renders Table II. *)
