module Geometry = Ripple_cache.Geometry

type t = {
  l1i : Geometry.t;
  l2 : Geometry.t;
  l3 : Geometry.t;
  l1_latency : int;
  l2_latency : int;
  l3_latency : int;
  memory_latency : int;
  frequency_ghz : float;
  cores_per_socket : int;
  cpi_base : float;
  hint_cpi : float;
  frontend_bubble : int;
  miss_exposure : float;
  ftq_depth : int;
  nlp_degree : int;
  prefetch_latency_blocks : int;
}

let default =
  {
    l1i = Geometry.l1i;
    l2 = Geometry.l2;
    l3 = Geometry.l3;
    l1_latency = 3;
    l2_latency = 12;
    l3_latency = 36;
    memory_latency = 260;
    frequency_ghz = 2.5;
    cores_per_socket = 20;
    cpi_base = 0.80;
    hint_cpi = 0.10;
    frontend_bubble = 3;
    miss_exposure = 0.35;
    ftq_depth = 24;
    nlp_degree = 2;
    prefetch_latency_blocks = 4;
  }

let miss_penalty t ~hit_level =
  t.frontend_bubble
  +
  match hit_level with
  | `L2 -> t.l2_latency - t.l1_latency
  | `L3 -> t.l3_latency - t.l1_latency
  | `Memory -> t.memory_latency - t.l1_latency

let pp_table fmt t =
  let row name value = Format.fprintf fmt "| %-28s | %-32s |@," name value in
  Format.fprintf fmt "@[<v>Table II: Simulator Parameters@,";
  row "CPU" "Haswell-class trace-driven model";
  row "Cores per socket" (string_of_int t.cores_per_socket);
  row "L1 instruction cache" (Format.asprintf "%a" Geometry.pp t.l1i);
  row "L2 unified cache" (Format.asprintf "%a" Geometry.pp t.l2);
  row "L3 unified cache" (Format.asprintf "%a" Geometry.pp t.l3);
  row "All-core turbo frequency" (Printf.sprintf "%.1f GHz" t.frequency_ghz);
  row "L1 I-cache latency" (Printf.sprintf "%d cycles" t.l1_latency);
  row "L2 cache latency" (Printf.sprintf "%d cycles" t.l2_latency);
  row "L3 cache latency" (Printf.sprintf "%d cycles" t.l3_latency);
  row "Memory latency" (Printf.sprintf "%d cycles" t.memory_latency);
  row "Base CPI (model)" (Printf.sprintf "%.2f" t.cpi_base);
  row "Miss exposure (model)" (Printf.sprintf "%.2f" t.miss_exposure);
  row "FDIP FTQ depth" (string_of_int t.ftq_depth);
  row "NLP degree" (string_of_int t.nlp_degree);
  Format.fprintf fmt "@]"
