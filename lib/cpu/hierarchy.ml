module Cache = Ripple_cache.Cache
module Access = Ripple_cache.Access
module Lru = Ripple_cache.Lru

type t = { l2 : Cache.t; l3 : Cache.t }
type served = L2 | L3 | Memory

let create (config : Config.t) =
  {
    l2 = Cache.create ~name:"l2" ~geometry:config.Config.l2 ~policy:Lru.make ();
    l3 = Cache.create ~name:"l3" ~geometry:config.Config.l3 ~policy:Lru.make ();
  }

let fetch t line =
  let acc = Access.pack_demand ~line ~block:(-1) in
  match Cache.access_packed t.l2 acc with
  | Cache.Hit -> L2
  | Cache.Miss -> begin
    match Cache.access_packed t.l3 acc with Cache.Hit -> L3 | Cache.Miss -> Memory
  end

let penalty config = function
  | L2 -> Config.miss_penalty config ~hit_level:`L2
  | L3 -> Config.miss_penalty config ~hit_level:`L3
  | Memory -> Config.miss_penalty config ~hit_level:`Memory

let l2_stats t = Cache.stats t.l2
let l3_stats t = Cache.stats t.l3

let save t =
  let restore_l2 = Cache.save t.l2 and restore_l3 = Cache.save t.l3 in
  fun () ->
    restore_l2 ();
    restore_l3 ()
