(** Trace-driven performance simulation.

    Replays a decoded basic-block trace through a prefetcher, the L1
    I-cache under a chosen replacement policy, and the L2/L3 hierarchy,
    charging [cpi_base] per retired instruction plus the exposed latency
    of every L1I demand miss.  Injected Ripple hints execute at the end
    of their block (invalidating or demoting their target line in the
    L1I only).

    IPC is computed over {e original} instructions (hint instructions
    excluded from the numerator, though they cost cycles), so runs of the
    same trace with and without instrumentation are directly comparable:
    speedup = IPC ratio = cycle ratio for equal work, the paper's metric. *)

module Program := Ripple_isa.Program
module Stats := Ripple_cache.Stats
module Access_stream := Ripple_cache.Access_stream
module Belady := Ripple_cache.Belady
module Policy := Ripple_cache.Policy
module Prefetcher := Ripple_prefetch.Prefetcher

type result = {
  instructions : int;  (** retired, including hint instructions *)
  hint_instructions : int;
  cycles : float;
  ipc : float;  (** original instructions per cycle *)
  demand_misses : int;
  mpki : float;  (** demand misses per kilo original instructions *)
  l1i : Stats.t;
  served_l2 : int;
  served_l3 : int;
  served_memory : int;
}

val result_to_json : result -> Ripple_util.Json.t
(** Machine-readable form of a result (all counters plus the L1I stats
    as a nested object) — the payload of the experiment runner's JSONL
    output.  Deterministic: equal results render byte-identically. *)

val run :
  ?config:Config.t ->
  ?warmup:int ->
  ?obs:Ripple_obs.Run.t ->
  ?on_hint:(at:int -> Ripple_isa.Basic_block.hint -> resident:bool -> unit) ->
  program:Program.t ->
  trace:int array ->
  policy:Policy.factory ->
  prefetcher:(Program.t -> Prefetcher.t) ->
  unit ->
  result
(** Full simulation of [trace] over [program].  [on_hint] fires for every
    executed hint instruction with the trace index and whether its target
    line was resident in the L1I at that moment — the observation point
    for Ripple's replacement-accuracy metric.  [warmup] names a trace
    index before which the caches are exercised but nothing is counted:
    all measurements are steady-state, as in the paper's 100 M-instruction
    steady-state captures.

    [obs] attaches the run to an observability context: the final result
    is folded into the [ripple_sim_*] counters ({!observe_result}), and
    ~16 periodic IPC/MPKI samples land in the [ripple_sim_ipc] /
    [ripple_sim_mpki] series, timestamped in {e virtual} time (the trace
    index) so the series — like every counter — is byte-identical across
    pool sizes. *)

val register_obs : Ripple_obs.Registry.t -> unit
(** Pre-registers the simulator's whole metric vocabulary
    ([ripple_sim_*] counters plus the IPC/MPKI series), fixing the
    snapshot schema even for runs that never fire some events.
    Find-or-create: safe to call repeatedly. *)

val observe_result : Ripple_obs.Run.t -> result -> unit
(** Folds a finished result into the [ripple_sim_*] counters — what
    [run ~obs] does automatically, exposed for paths that compute a
    result without the full simulation loop ({!oracle},
    {!ideal_cache}). *)

val ideal_cache :
  ?config:Config.t -> ?warmup:int -> program:Program.t -> trace:int array -> unit -> result
(** The Fig. 1 limit: an I-cache that never misses. *)

val oracle :
  ?config:Config.t ->
  ?warmup:int ->
  ?stream:Access_stream.t * int array ->
  mode:Belady.mode ->
  program:Program.t ->
  trace:int array ->
  prefetcher:(Program.t -> Prefetcher.t) ->
  unit ->
  result
(** Ideal replacement (MIN or Demand-MIN) over the access stream the
    prefetcher produces.  The stream is recorded under an LRU reference
    run (prefetcher reactions depend on hit/miss outcomes); the oracle
    then replays it offline — the standard construction for
    prefetch-aware replacement limit studies.  [stream] supplies a
    pre-recorded indexed stream (as returned by
    {!record_stream_indexed} for the same config/trace/prefetcher),
    letting callers that run several oracles over one stream — or memo
    it across cells — skip the re-recording; recording is
    deterministic, so the result is identical either way. *)

val record_stream :
  ?config:Config.t ->
  program:Program.t ->
  trace:int array ->
  prefetcher:(Program.t -> Prefetcher.t) ->
  unit ->
  Access_stream.t
(** The demand+prefetch access stream of an LRU reference run — the
    input to both {!oracle} and Ripple's offline analysis.  Recorded
    straight into packed chunks: one word per access, no boxed records,
    so a 10x longer trace costs 10x one-word entries and nothing else. *)

val record_stream_indexed :
  ?config:Config.t ->
  program:Program.t ->
  trace:int array ->
  prefetcher:(Program.t -> Prefetcher.t) ->
  unit ->
  Access_stream.t * int array
(** Like {!record_stream}, additionally returning, per stream entry, the
    index into [trace] of the block being executed when the access was
    issued — the coordinate change Ripple's analysis uses to express
    eviction windows over the basic-block trace. *)

val prefetcher_none : Program.t -> Prefetcher.t
val prefetcher_nlp : ?config:Config.t -> Program.t -> Prefetcher.t
val prefetcher_fdip : ?config:Config.t -> Program.t -> Prefetcher.t
