(** Trace-driven performance simulation.

    Replays a decoded basic-block trace through a prefetcher, the L1
    I-cache under a chosen replacement policy, and the L2/L3 hierarchy,
    charging [cpi_base] per retired instruction plus the exposed latency
    of every L1I demand miss.  Injected Ripple hints execute at the end
    of their block (invalidating or demoting their target line in the
    L1I only).

    IPC is computed over {e original} instructions (hint instructions
    excluded from the numerator, though they cost cycles), so runs of the
    same trace with and without instrumentation are directly comparable:
    speedup = IPC ratio = cycle ratio for equal work, the paper's metric. *)

module Program := Ripple_isa.Program
module Stats := Ripple_cache.Stats
module Access_stream := Ripple_cache.Access_stream
module Belady := Ripple_cache.Belady
module Policy := Ripple_cache.Policy
module Prefetcher := Ripple_prefetch.Prefetcher
module Int_stream := Ripple_util.Int_stream

type result = {
  instructions : int;  (** retired, including hint instructions *)
  hint_instructions : int;
  cycles : float;
  ipc : float;  (** original instructions per cycle *)
  demand_misses : int;
  mpki : float;  (** demand misses per kilo original instructions *)
  l1i : Stats.t;
  served_l2 : int;
  served_l3 : int;
  served_memory : int;
}

val result_to_json : result -> Ripple_util.Json.t
(** Machine-readable form of a result (all counters plus the L1I stats
    as a nested object) — the payload of the experiment runner's JSONL
    output.  Deterministic: equal results render byte-identically. *)

(** A basic-block trace by index.  [Blocks] is the materialized
    [int array] every small driver uses; [Stream] reads block ids out of
    an {!Ripple_util.Int_stream} — which, spill-backed, keeps a
    100 M-block trace out of the heap entirely.  The simulator is
    agnostic: both replay identically. *)
module Trace : sig
  type t = Blocks of int array | Stream of Int_stream.t

  val of_blocks : int array -> t
  val of_stream : Int_stream.t -> t
  val length : t -> int

  val get : t -> int -> int
  (** Unchecked on the [Blocks] case — for loop-bounded callers. *)

  val to_blocks : t -> int array
  (** Materializes a [Stream] trace; the identity on [Blocks]. *)

  val close : t -> unit
  (** Releases a [Stream] trace's backing (unlinking its spill file);
      no-op on [Blocks]. *)
end

(** SimPoint-style sampled simulation: [windows] measurement windows of
    [window_blocks] trace blocks each, placed deterministically from
    [seed] — one per equal segment of the steady-state region
    (stratified, so coverage is spread across phases).  Each window
    replays from the warm-up checkpoint: [warm_blocks] of uncounted ramp
    detrain the checkpoint bias, then the window is measured and its
    counter deltas spliced into the totals.  When the windows cover the
    whole steady-state region, the sampled run degenerates to — and is
    exactly equal to — the full run. *)
module Sampling : sig
  type t = {
    windows : int;
    window_blocks : int;
    warm_blocks : int;
    seed : int;
  }

  val v : ?warm_blocks:int -> ?seed:int -> windows:int -> window_blocks:int -> unit -> t
  (** Defaults: [warm_blocks = 0], [seed = 1].  Raises [Invalid_argument]
      on non-positive [windows] / [window_blocks] or negative
      [warm_blocks]. *)

  type report = {
    spans : (int * int) array;  (** measured [start, end) trace windows *)
    measured_blocks : int;
    total_blocks : int;  (** steady-state blocks, [warmup..n) *)
    coverage : float;  (** measured / total; 1.0 when degenerate *)
  }

  val select : warmup:int -> n:int -> t -> (int * int) array
  (** The window placement itself — deterministic in [(t, warmup, n)];
      exposed so reports and tests can reproduce it. *)

  val report_of_spans : warmup:int -> n:int -> (int * int) array -> report
  val report_to_json : report -> Ripple_util.Json.t
end

val run :
  ?config:Config.t ->
  ?warmup:int ->
  ?obs:Ripple_obs.Run.t ->
  ?on_hint:(at:int -> Ripple_isa.Basic_block.hint -> resident:bool -> unit) ->
  program:Program.t ->
  trace:int array ->
  policy:Policy.factory ->
  prefetcher:(Program.t -> Prefetcher.t) ->
  unit ->
  result
(** Full simulation of [trace] over [program].  [on_hint] fires for every
    executed hint instruction with the trace index and whether its target
    line was resident in the L1I at that moment — the observation point
    for Ripple's replacement-accuracy metric.  [warmup] names a trace
    index before which the caches are exercised but nothing is counted:
    all measurements are steady-state, as in the paper's 100 M-instruction
    steady-state captures.

    [obs] attaches the run to an observability context: the final result
    is folded into the [ripple_sim_*] counters ({!observe_result}), and
    ~16 periodic IPC/MPKI samples land in the [ripple_sim_ipc] /
    [ripple_sim_mpki] series, timestamped in {e virtual} time (the trace
    index) so the series — like every counter — is byte-identical across
    pool sizes. *)

val run_trace :
  ?config:Config.t ->
  ?warmup:int ->
  ?obs:Ripple_obs.Run.t ->
  ?on_hint:(at:int -> Ripple_isa.Basic_block.hint -> resident:bool -> unit) ->
  ?sampling:Sampling.t ->
  program:Program.t ->
  trace:Trace.t ->
  policy:Policy.factory ->
  prefetcher:(Program.t -> Prefetcher.t) ->
  unit ->
  result * Sampling.report option
(** {!run} generalized over the trace representation, with optional
    sampled execution.  Without [sampling] this is exactly [run] (report
    is [None]).  With [sampling], the run warms to [warmup], checkpoints
    the full microarchitectural state (L1I + policy, L2/L3, prefetcher
    and branch predictors, in-flight prefetches), then measures only the
    selected windows, splicing their counter deltas; [on_hint] fires only
    inside measured windows, and the periodic IPC/MPKI series is not
    emitted.  A degenerate sampling (windows covering the whole
    steady-state region) reproduces the full run's result exactly. *)

val register_obs : Ripple_obs.Registry.t -> unit
(** Pre-registers the simulator's whole metric vocabulary
    ([ripple_sim_*] counters plus the IPC/MPKI series), fixing the
    snapshot schema even for runs that never fire some events.
    Find-or-create: safe to call repeatedly. *)

val observe_result : Ripple_obs.Run.t -> result -> unit
(** Folds a finished result into the [ripple_sim_*] counters — what
    [run ~obs] does automatically, exposed for paths that compute a
    result without the full simulation loop ({!oracle},
    {!ideal_cache}). *)

val ideal_cache :
  ?config:Config.t -> ?warmup:int -> program:Program.t -> trace:int array -> unit -> result
(** The Fig. 1 limit: an I-cache that never misses. *)

val ideal_cache_trace :
  ?config:Config.t -> ?warmup:int -> program:Program.t -> trace:Trace.t -> unit -> result
(** {!ideal_cache} over either trace representation. *)

val oracle :
  ?config:Config.t ->
  ?warmup:int ->
  ?stream:Access_stream.t * int array ->
  ?replay:Belady.result ->
  mode:Belady.mode ->
  program:Program.t ->
  trace:int array ->
  prefetcher:(Program.t -> Prefetcher.t) ->
  unit ->
  result
(** Ideal replacement (MIN or Demand-MIN) over the access stream the
    prefetcher produces.  The stream is recorded under an LRU reference
    run (prefetcher reactions depend on hit/miss outcomes); the oracle
    then replays it offline — the standard construction for
    prefetch-aware replacement limit studies.  [stream] supplies a
    pre-recorded indexed stream (as returned by
    {!record_stream_indexed} for the same config/trace/prefetcher),
    letting callers that run several oracles over one stream — or memo
    it across cells — skip the re-recording; recording is
    deterministic, so the result is identical either way.

    [replay] supplies a finished Belady replay (recorded with
    [~record_fills:true], possibly assembled from per-set shards with
    {!Belady.merge}); the Belady pass is then skipped and the recorded
    fill sequence drives the L2/L3 hierarchy instead — byte-identical to
    the inline pass, since fills are replayed in stream order. *)

val oracle_result :
  ?config:Config.t ->
  instructions:int ->
  count_from:int ->
  stream:Access_stream.t ->
  Belady.result ->
  result
(** The assembly step of {!oracle}[ ~replay] on its own: replays the
    recorded fills through a fresh L2/L3 hierarchy and packages the
    Belady counters as a simulation result.  [instructions] is the
    steady-state instruction count of the underlying trace;
    [count_from] the first measured stream index. *)

val stream_count_from : stream_pos:int array -> warmup:int -> int
(** First stream index whose recorded trace position is [>= warmup] —
    the [count_from] boundary shared by {!oracle} and sharded callers. *)

val record_stream :
  ?config:Config.t ->
  program:Program.t ->
  trace:int array ->
  prefetcher:(Program.t -> Prefetcher.t) ->
  unit ->
  Access_stream.t
(** The demand+prefetch access stream of an LRU reference run — the
    input to both {!oracle} and Ripple's offline analysis.  Recorded
    straight into packed chunks: one word per access, no boxed records,
    so a 10x longer trace costs 10x one-word entries and nothing else. *)

val record_stream_indexed :
  ?config:Config.t ->
  program:Program.t ->
  trace:int array ->
  prefetcher:(Program.t -> Prefetcher.t) ->
  unit ->
  Access_stream.t * int array
(** Like {!record_stream}, additionally returning, per stream entry, the
    index into [trace] of the block being executed when the access was
    issued — the coordinate change Ripple's analysis uses to express
    eviction windows over the basic-block trace. *)

val record_stream_indexed_trace :
  ?config:Config.t ->
  ?backing:Int_stream.backing ->
  program:Program.t ->
  trace:Trace.t ->
  prefetcher:(Program.t -> Prefetcher.t) ->
  unit ->
  Access_stream.t * Int_stream.t
(** {!record_stream_indexed} generalized over the trace representation
    and the stream backing: with [~backing:(Spill _)] both the access
    stream and its position index are written through to mmap-backed
    spill files, so recording a 100 M-block trace leaves O(1) heap
    behind. *)

val prefetcher_none : Program.t -> Prefetcher.t
val prefetcher_nlp : ?config:Config.t -> Program.t -> Prefetcher.t
val prefetcher_fdip : ?config:Config.t -> Program.t -> Prefetcher.t
