module Program = Ripple_isa.Program
module Basic_block = Ripple_isa.Basic_block
module Cache = Ripple_cache.Cache
module Stats = Ripple_cache.Stats
module Access = Ripple_cache.Access
module Access_stream = Ripple_cache.Access_stream
module Belady = Ripple_cache.Belady
module Lru = Ripple_cache.Lru
module Prefetcher = Ripple_prefetch.Prefetcher
module Nlp = Ripple_prefetch.Nlp
module Fdip = Ripple_prefetch.Fdip
module Int_stream = Ripple_util.Int_stream
module Prng = Ripple_util.Prng

type result = {
  instructions : int;
  hint_instructions : int;
  cycles : float;
  ipc : float;
  demand_misses : int;
  mpki : float;
  l1i : Stats.t;
  served_l2 : int;
  served_l3 : int;
  served_memory : int;
}

module Json = Ripple_util.Json

let result_to_json (r : result) =
  let l1i = r.l1i in
  Json.Obj
    [
      ("instructions", Json.Int r.instructions);
      ("hint_instructions", Json.Int r.hint_instructions);
      ("cycles", Json.Float r.cycles);
      ("ipc", Json.Float r.ipc);
      ("demand_misses", Json.Int r.demand_misses);
      ("mpki", Json.Float r.mpki);
      ("served_l2", Json.Int r.served_l2);
      ("served_l3", Json.Int r.served_l3);
      ("served_memory", Json.Int r.served_memory);
      ( "l1i",
        Json.Obj
          [
            ("demand_accesses", Json.Int l1i.Stats.demand_accesses);
            ("demand_misses", Json.Int l1i.Stats.demand_misses);
            ("demand_misses_cold", Json.Int l1i.Stats.demand_misses_cold);
            ("prefetch_accesses", Json.Int l1i.Stats.prefetch_accesses);
            ("prefetch_fills", Json.Int l1i.Stats.prefetch_fills);
            ("evictions", Json.Int l1i.Stats.evictions);
            ("replacement_decisions", Json.Int l1i.Stats.replacement_decisions);
            ("hinted_fills", Json.Int l1i.Stats.hinted_fills);
            ("invalidate_hits", Json.Int l1i.Stats.invalidate_hits);
            ("invalidate_misses", Json.Int l1i.Stats.invalidate_misses);
            ("demotes", Json.Int l1i.Stats.demotes);
            ("fill_bypasses", Json.Int l1i.Stats.fill_bypasses);
          ] );
    ]

(* A basic-block trace by index: the materialized [int array] the tests
   and small drivers use, or an [Int_stream] so a 100 M-block trace can
   live in an mmap spill file instead of the heap. *)
module Trace = struct
  type t = Blocks of int array | Stream of Int_stream.t

  let of_blocks a = Blocks a
  let of_stream s = Stream s
  let length = function Blocks a -> Array.length a | Stream s -> Int_stream.length s

  (* Loop-bounded callers only: no bounds check on the array case. *)
  let get t i =
    match t with
    | Blocks a -> Array.unsafe_get a i
    | Stream s -> Int_stream.unsafe_get s i

  let to_blocks = function Blocks a -> a | Stream s -> Int_stream.to_array s
  let close = function Blocks _ -> () | Stream s -> Int_stream.close s
end

(* SimPoint-style sampled simulation: K measurement windows chosen
   deterministically from a seed, one per equal segment of the
   steady-state region, each replayed from the warm-up checkpoint after
   an uncounted ramp. *)
module Sampling = struct
  type t = { windows : int; window_blocks : int; warm_blocks : int; seed : int }

  let v ?(warm_blocks = 0) ?(seed = 1) ~windows ~window_blocks () =
    if windows <= 0 then invalid_arg "Sampling.v: windows must be positive";
    if window_blocks <= 0 then invalid_arg "Sampling.v: window_blocks must be positive";
    if warm_blocks < 0 then invalid_arg "Sampling.v: warm_blocks must be non-negative";
    { windows; window_blocks; warm_blocks; seed }

  type report = {
    spans : (int * int) array;
    measured_blocks : int;
    total_blocks : int;
    coverage : float;
  }

  (* Stratified selection: one window per equal segment of [warmup, n),
     offset uniformly within its segment.  When the requested windows
     cover the whole region the answer degenerates to the full region —
     and the sampled run is then exactly the full run. *)
  let select ~warmup ~n t =
    let span = n - warmup in
    if span <= 0 then [||]
    else if t.windows * t.window_blocks >= span then [| (warmup, n) |]
    else begin
      let seg = span / t.windows in
      let w = min t.window_blocks seg in
      let rng = Prng.create ~seed:t.seed in
      Array.init t.windows (fun i ->
          let base = warmup + (i * seg) in
          let slack = seg - w in
          let off = if slack > 0 then Prng.int rng (slack + 1) else 0 in
          (base + off, base + off + w))
    end

  let report_of_spans ~warmup ~n spans =
    let measured = Array.fold_left (fun acc (s, e) -> acc + e - s) 0 spans in
    let total = max 0 (n - warmup) in
    {
      spans;
      measured_blocks = measured;
      total_blocks = total;
      coverage = (if total = 0 then 1.0 else Float.of_int measured /. Float.of_int total);
    }

  let report_to_json r =
    Json.Obj
      [
        ("windows", Json.Int (Array.length r.spans));
        ( "spans",
          Json.List
            (Array.to_list
               (Array.map (fun (s, e) -> Json.List [ Json.Int s; Json.Int e ]) r.spans))
        );
        ("measured_blocks", Json.Int r.measured_blocks);
        ("total_blocks", Json.Int r.total_blocks);
        ("coverage", Json.Float r.coverage);
      ]
end

module Obs = Ripple_obs

(* The simulator's metric vocabulary.  [register_obs] is find-or-create,
   so callers (the pipeline, the experiment runner) may pre-register the
   whole family to fix a snapshot's schema before any event fires. *)
let obs_counter reg name help = Obs.Registry.counter reg ~help name

let register_obs reg =
  let c name help = ignore (obs_counter reg name help) in
  c "ripple_sim_instructions" "retired instructions, hints included";
  c "ripple_sim_hint_instructions" "retired Ripple hint instructions";
  c "ripple_sim_demand_accesses" "L1I demand accesses";
  c "ripple_sim_demand_misses" "L1I demand misses";
  c "ripple_sim_demand_misses_cold" "compulsory L1I demand misses";
  c "ripple_sim_prefetch_fills" "prefetches that missed and filled";
  c "ripple_sim_evictions" "valid L1I lines displaced by fills";
  c "ripple_sim_replacement_decisions" "fills that picked a victim";
  c "ripple_sim_hinted_fills" "fills into ways freed by a Ripple hint";
  c "ripple_sim_invalidate_hits" "invalidation hints that found their line";
  c "ripple_sim_invalidate_misses" "invalidation hints to an absent line";
  c "ripple_sim_demotes" "demote hints executed";
  c "ripple_sim_fill_bypasses" "misses the policy declined to install";
  (* Set-dueling telemetry: zero unless the policy carries a Dueling
     component, but always registered so the metric vocabulary (and the
     pinned docs/metrics.schema) is identical for every policy. *)
  c "ripple_duel_leader_a_misses" "misses in flavour-A leader sets";
  c "ripple_duel_leader_b_misses" "misses in flavour-B leader sets";
  c "ripple_duel_flips" "follower-selection changes of the policy duel";
  ignore
    (Obs.Registry.gauge reg ~help:"final PSEL of the policy's set duel" "ripple_duel_psel");
  ignore (Obs.Registry.series reg ~help:"periodic IPC over virtual time" "ripple_sim_ipc");
  ignore (Obs.Registry.series reg ~help:"periodic MPKI over virtual time" "ripple_sim_mpki")

let observe_result obs (r : result) =
  let reg = Obs.Run.registry obs in
  register_obs reg;
  let add name v = Obs.Metric.add (Obs.Registry.counter reg name) v in
  add "ripple_sim_instructions" r.instructions;
  add "ripple_sim_hint_instructions" r.hint_instructions;
  add "ripple_sim_demand_accesses" r.l1i.Stats.demand_accesses;
  add "ripple_sim_demand_misses" r.l1i.Stats.demand_misses;
  add "ripple_sim_demand_misses_cold" r.l1i.Stats.demand_misses_cold;
  add "ripple_sim_prefetch_fills" r.l1i.Stats.prefetch_fills;
  add "ripple_sim_evictions" r.l1i.Stats.evictions;
  add "ripple_sim_replacement_decisions" r.l1i.Stats.replacement_decisions;
  add "ripple_sim_hinted_fills" r.l1i.Stats.hinted_fills;
  add "ripple_sim_invalidate_hits" r.l1i.Stats.invalidate_hits;
  add "ripple_sim_invalidate_misses" r.l1i.Stats.invalidate_misses;
  add "ripple_sim_demotes" r.l1i.Stats.demotes;
  add "ripple_sim_fill_bypasses" r.l1i.Stats.fill_bypasses

(* Duel telemetry comes off the live policy, not the result record, so
   only the trace-driven paths that own a cache can emit it. *)
let observe_duel obs l1 =
  match Cache.duel l1 with
  | None -> ()
  | Some d ->
    let reg = Obs.Run.registry obs in
    register_obs reg;
    let add name v = Obs.Metric.add (Obs.Registry.counter reg name) v in
    add "ripple_duel_leader_a_misses" (Ripple_cache.Dueling.a_misses d);
    add "ripple_duel_leader_b_misses" (Ripple_cache.Dueling.b_misses d);
    add "ripple_duel_flips" (Ripple_cache.Dueling.flips d);
    Obs.Metric.set
      (Obs.Registry.gauge reg "ripple_duel_psel")
      (Float.of_int (Ripple_cache.Dueling.psel d))

let prefetcher_none _program = Prefetcher.none

let prefetcher_nlp ?(config = Config.default) _program =
  Nlp.create ~degree:config.Config.nlp_degree ()

let prefetcher_fdip ?(config = Config.default) program =
  Fdip.create ~ftq_depth:config.Config.ftq_depth ~program ()

(* Precomputed per-block expansion so the hot loop allocates nothing. *)
let block_lines program =
  Array.map
    (fun b -> Array.of_list (Basic_block.lines b))
    (Program.blocks program)

let finish ~(config : Config.t) ~instructions ~hint_instructions ~miss_cycles ~l1i ~l2_served
    ~l3_served ~mem_served =
  let original = instructions - hint_instructions in
  let cycles =
    (config.Config.cpi_base *. Float.of_int original)
    +. (config.Config.hint_cpi *. Float.of_int hint_instructions)
    +. (config.Config.miss_exposure *. miss_cycles)
  in
  let ipc = if cycles > 0.0 then Float.of_int original /. cycles else 0.0 in
  {
    instructions;
    hint_instructions;
    cycles;
    ipc;
    demand_misses = l1i.Stats.demand_misses;
    mpki = Stats.mpki l1i ~instructions:original;
    l1i;
    served_l2 = l2_served;
    served_l3 = l3_served;
    served_memory = mem_served;
  }

let run_trace ?(config = Config.default) ?(warmup = 0) ?obs
    ?(on_hint = fun ~at:_ _ ~resident:_ -> ()) ?sampling ~program ~(trace : Trace.t) ~policy
    ~prefetcher () =
  let n = Trace.length trace in
  let l1 = Cache.create ~geometry:config.Config.l1i ~policy () in
  let hierarchy = Hierarchy.create config in
  let pf = prefetcher program in
  let lines = block_lines program in
  let blocks = Program.blocks program in
  let instructions = ref 0 in
  let hint_instructions = ref 0 in
  (* Penalties are integers; accumulating in an int avoids a boxed-float
     store per miss and converts once at the end.  (Bit-identical to
     float accumulation: every partial sum is far below 2^53.) *)
  let miss_cycles = ref 0 in
  let l2_served = ref 0 and l3_served = ref 0 and mem_served = ref 0 in
  (* Sampled runs silence [on_hint] on uncounted ramp blocks so callers'
     accuracy counters line up with the measured windows. *)
  let hints_observed = ref true in
  let complete_prefetch (acc : Access.packed) =
    match Cache.access_packed l1 acc with
    | Cache.Hit -> ()
    | Cache.Miss -> ignore (Hierarchy.fetch hierarchy (Access.packed_line acc))
  in
  (* Issued accesses arrive consed (newest first); completing them in
     issue order without the [List.rev] copy means recursing to the tail
     first.  In-flight lists are bounded by the FTQ/issue width, so the
     recursion depth is small. *)
  let rec complete_all = function
    | [] -> ()
    | acc :: rest ->
      complete_all rest;
      complete_prefetch acc
  in
  (* Prefetches land [prefetch_latency_blocks] blocks after issue (the
     L2 round trip); slot [at mod slots] holds what completes as block
     [at] is fetched. *)
  let delay = max 0 config.Config.prefetch_latency_blocks in
  let slots = delay + 1 in
  let in_flight = Array.make slots [] in
  let flush_due ~at =
    let slot = at mod slots in
    complete_all in_flight.(slot);
    in_flight.(slot) <- []
  in
  let rec issue_all ~at = function
    | [] -> ()
    | (acc : Access.packed) :: rest ->
      let slot = (at + delay) mod slots in
      in_flight.(slot) <- acc :: in_flight.(slot);
      issue_all ~at rest
  in
  let demand ~block line =
    match Cache.access_packed l1 (Access.pack_demand ~line ~block) with
    | Cache.Hit -> false
    | Cache.Miss ->
      let served = Hierarchy.fetch hierarchy line in
      (match served with
      | Hierarchy.L2 -> incr l2_served
      | Hierarchy.L3 -> incr l3_served
      | Hierarchy.Memory -> incr mem_served);
      miss_cycles := !miss_cycles + Hierarchy.penalty config served;
      true
  in
  let reset_counters () =
    Stats.reset (Cache.stats l1);
    miss_cycles := 0;
    instructions := 0;
    hint_instructions := 0;
    l2_served := 0;
    l3_served := 0;
    mem_served := 0
  in
  let step at =
    let id = Trace.get trace at in
    let b = blocks.(id) in
    flush_due ~at;
    issue_all ~at (pf.Prefetcher.on_block b);
    let bl = lines.(id) in
    for i = 0 to Array.length bl - 1 do
      let missed = demand ~block:id bl.(i) in
      issue_all ~at (pf.Prefetcher.on_demand ~line:bl.(i) ~missed)
    done;
    let hints = b.Basic_block.hints in
    for i = 0 to Array.length hints - 1 do
      let hint = hints.(i) in
      let line = Basic_block.hint_line hint in
      if !hints_observed then on_hint ~at hint ~resident:(Cache.contains l1 line);
      (match hint with
      | Basic_block.Invalidate line -> Cache.invalidate l1 line
      | Basic_block.Demote line -> Cache.demote l1 line);
      incr hint_instructions
    done;
    instructions := !instructions + Basic_block.total_instrs b
  in
  match sampling with
  | None ->
    (* Periodic IPC/MPKI samples in *virtual* time (the trace index), so
       the series is a pure function of the run — identical at any pool
       size.  At most ~16 samples per run; the per-block cost without a
       sampler is one match. *)
    let sampler =
      match obs with
      | None -> None
      | Some obs ->
        let reg = Obs.Run.registry obs in
        register_obs reg;
        let ipc_series = Obs.Registry.series reg "ripple_sim_ipc" in
        let mpki_series = Obs.Registry.series reg "ripple_sim_mpki" in
        let every = max 1 (n / 16) in
        Some
          (fun at ->
            if (at + 1) mod every = 0 then begin
              let original = !instructions - !hint_instructions in
              if original > 0 then begin
                let cycles =
                  (config.Config.cpi_base *. Float.of_int original)
                  +. (config.Config.hint_cpi *. Float.of_int !hint_instructions)
                  +. (config.Config.miss_exposure *. Float.of_int !miss_cycles)
                in
                Obs.Metric.sample ipc_series ~at
                  (if cycles > 0.0 then Float.of_int original /. cycles else 0.0);
                Obs.Metric.sample mpki_series ~at
                  (Stats.mpki (Cache.stats l1) ~instructions:original)
              end
            end)
    in
    for at = 0 to n - 1 do
      (* Steady state: warm the caches and predictors, then zero the
         counters at the warm-up boundary. *)
      if at = warmup && warmup > 0 then reset_counters ();
      step at;
      match sampler with Some f -> f at | None -> ()
    done;
    let result =
      finish ~config ~instructions:!instructions ~hint_instructions:!hint_instructions
        ~miss_cycles:(Float.of_int !miss_cycles) ~l1i:(Cache.stats l1)
        ~l2_served:!l2_served ~l3_served:!l3_served ~mem_served:!mem_served
    in
    (match obs with
    | Some o ->
      observe_result o result;
      observe_duel o l1
    | None -> ());
    (result, None)
  | Some (sampling : Sampling.t) ->
    let spans = Sampling.select ~warmup ~n sampling in
    (* Warm phase, then checkpoint: cache + hierarchy + prefetcher +
       in-flight prefetches, restored before every window. *)
    for at = 0 to min warmup n - 1 do
      step at
    done;
    reset_counters ();
    let restore =
      let restore_l1 = Cache.save l1 in
      let restore_hierarchy = Hierarchy.save hierarchy in
      let restore_pf = pf.Prefetcher.save () in
      let in_flight' = Array.copy in_flight in
      fun () ->
        restore_l1 ();
        restore_hierarchy ();
        restore_pf ();
        Array.blit in_flight' 0 in_flight 0 slots
    in
    let total_stats = Stats.create () in
    let t_instr = ref 0 and t_hint = ref 0 and t_miss = ref 0 in
    let t_l2 = ref 0 and t_l3 = ref 0 and t_mem = ref 0 in
    Array.iter
      (fun (w_start, w_end) ->
        restore ();
        (* Uncounted ramp from the checkpoint to the window, detraining
           the checkpoint bias before measurement starts. *)
        hints_observed := false;
        for at = max warmup (w_start - sampling.Sampling.warm_blocks) to w_start - 1 do
          step at
        done;
        hints_observed := true;
        let snap = Stats.copy (Cache.stats l1) in
        let s_instr = !instructions and s_hint = !hint_instructions in
        let s_miss = !miss_cycles in
        let s_l2 = !l2_served and s_l3 = !l3_served and s_mem = !mem_served in
        for at = w_start to w_end - 1 do
          step at
        done;
        t_instr := !t_instr + !instructions - s_instr;
        t_hint := !t_hint + !hint_instructions - s_hint;
        t_miss := !t_miss + !miss_cycles - s_miss;
        t_l2 := !t_l2 + !l2_served - s_l2;
        t_l3 := !t_l3 + !l3_served - s_l3;
        t_mem := !t_mem + !mem_served - s_mem;
        Stats.accumulate_delta ~into:total_stats ~before:snap ~after:(Cache.stats l1))
      spans;
    let result =
      finish ~config ~instructions:!t_instr ~hint_instructions:!t_hint
        ~miss_cycles:(Float.of_int !t_miss) ~l1i:total_stats ~l2_served:!t_l2
        ~l3_served:!t_l3 ~mem_served:!t_mem
    in
    (match obs with
    | Some o ->
      observe_result o result;
      observe_duel o l1
    | None -> ());
    (result, Some (Sampling.report_of_spans ~warmup ~n spans))

let run ?config ?warmup ?obs ?on_hint ~program ~trace ~policy ~prefetcher () =
  fst
    (run_trace ?config ?warmup ?obs ?on_hint ~program ~trace:(Trace.Blocks trace) ~policy
       ~prefetcher ())

let instructions_from_trace ~program ~(trace : Trace.t) ~warmup =
  let per_block = Array.map Basic_block.total_instrs (Program.blocks program) in
  let total = ref 0 in
  for i = warmup to Trace.length trace - 1 do
    total := !total + per_block.(Trace.get trace i)
  done;
  !total

let instructions_from ~program ~trace ~warmup =
  instructions_from_trace ~program ~trace:(Trace.Blocks trace) ~warmup

let ideal_cache_trace ?(config = Config.default) ?(warmup = 0) ~program ~trace () =
  let instructions = instructions_from_trace ~program ~trace ~warmup in
  finish ~config ~instructions ~hint_instructions:0 ~miss_cycles:0.0 ~l1i:(Stats.create ())
    ~l2_served:0 ~l3_served:0 ~mem_served:0

let ideal_cache ?config ?warmup ~program ~trace () =
  ideal_cache_trace ?config ?warmup ~program ~trace:(Trace.Blocks trace) ()

let record_stream_indexed_trace ?(config = Config.default) ?backing ~program
    ~(trace : Trace.t) ~prefetcher () =
  let l1 = Cache.create ~geometry:config.Config.l1i ~policy:Lru.make () in
  let pf = prefetcher program in
  let lines = block_lines program in
  let blocks = Program.blocks program in
  let builder = Access_stream.Builder.create ?backing () in
  let pos = Int_stream.Builder.create ?backing () in
  let emit (acc : Access.packed) ~at =
    Access_stream.Builder.add builder acc;
    Int_stream.Builder.add pos at
  in
  let delay = max 0 config.Config.prefetch_latency_blocks in
  let slots = delay + 1 in
  let in_flight = Array.make slots [] in
  let rec complete_all ~at = function
    | [] -> ()
    | (acc : Access.packed) :: rest ->
      complete_all ~at rest;
      emit acc ~at;
      ignore (Cache.access_packed l1 acc)
  in
  let rec issue_all ~at = function
    | [] -> ()
    | (acc : Access.packed) :: rest ->
      let slot = (at + delay) mod slots in
      in_flight.(slot) <- acc :: in_flight.(slot);
      issue_all ~at rest
  in
  let n = Trace.length trace in
  for at = 0 to n - 1 do
    let id = Trace.get trace at in
    let slot = at mod slots in
    complete_all ~at in_flight.(slot);
    in_flight.(slot) <- [];
    let b = blocks.(id) in
    issue_all ~at (pf.Prefetcher.on_block b);
    let bl = lines.(id) in
    for i = 0 to Array.length bl - 1 do
      let acc = Access.pack_demand ~line:bl.(i) ~block:id in
      emit acc ~at;
      let missed = Cache.access_packed l1 acc = Cache.Miss in
      issue_all ~at (pf.Prefetcher.on_demand ~line:bl.(i) ~missed)
    done
  done;
  (Access_stream.Builder.finish builder, Int_stream.Builder.finish pos)

let record_stream_indexed ?config ~program ~trace ~prefetcher () =
  let stream, pos =
    record_stream_indexed_trace ?config ~program ~trace:(Trace.Blocks trace) ~prefetcher ()
  in
  (stream, Int_stream.to_array pos)

let record_stream ?config ~program ~trace ~prefetcher () =
  fst (record_stream_indexed ?config ~program ~trace ~prefetcher ())

(* Assemble an oracle result from a finished Belady replay: drive the
   L2/L3 hierarchy with the recorded fill sequence (in stream order, as
   [on_fill] would have during the replay) and charge the demand-fill
   penalties of the measured region. *)
let oracle_result ?(config = Config.default) ~instructions ~count_from ~stream
    (res : Belady.result) =
  let hierarchy = Hierarchy.create config in
  let miss_cycles = ref 0 in
  let l2_served = ref 0 and l3_served = ref 0 and mem_served = ref 0 in
  Array.iter
    (fun index ->
      let acc = Access_stream.get stream index in
      let served = Hierarchy.fetch hierarchy (Access.packed_line acc) in
      if Access.packed_is_demand acc && index >= count_from then begin
        (match served with
        | Hierarchy.L2 -> incr l2_served
        | Hierarchy.L3 -> incr l3_served
        | Hierarchy.Memory -> incr mem_served);
        miss_cycles := !miss_cycles + Hierarchy.penalty config served
      end)
    res.Belady.fills;
  let stats = Stats.create () in
  stats.Stats.demand_accesses <- res.Belady.demand_accesses;
  stats.Stats.demand_misses <- res.Belady.demand_misses;
  stats.Stats.demand_misses_cold <- res.Belady.demand_misses_cold;
  stats.Stats.prefetch_accesses <- res.Belady.prefetch_accesses;
  stats.Stats.prefetch_fills <- res.Belady.prefetch_fills;
  stats.Stats.evictions <- res.Belady.n_evictions;
  stats.Stats.replacement_decisions <- res.Belady.n_evictions;
  finish ~config ~instructions ~hint_instructions:0 ~miss_cycles:(Float.of_int !miss_cycles)
    ~l1i:stats ~l2_served:!l2_served ~l3_served:!l3_served ~mem_served:!mem_served

let stream_count_from ~stream_pos ~warmup =
  (* First stream index belonging to the measured region. *)
  let n = Array.length stream_pos in
  let rec find i = if i >= n then n else if stream_pos.(i) >= warmup then i else find (i + 1) in
  if warmup = 0 then 0 else find 0

let oracle ?(config = Config.default) ?(warmup = 0) ?stream ?replay ~mode ~program ~trace
    ~prefetcher () =
  let stream, stream_pos =
    match stream with
    | Some s -> s
    | None -> record_stream_indexed ~config ~program ~trace ~prefetcher ()
  in
  let count_from = stream_count_from ~stream_pos ~warmup in
  let instructions = instructions_from ~program ~trace ~warmup in
  match replay with
  | Some (res : Belady.result) ->
    (* A sharded (or otherwise precomputed) Belady replay: the recorded
       fill sequence substitutes for the inline [on_fill] hierarchy
       drive, byte-identically. *)
    oracle_result ~config ~instructions ~count_from ~stream res
  | None ->
    let hierarchy = Hierarchy.create config in
    let miss_cycles = ref 0 in
    let l2_served = ref 0 and l3_served = ref 0 and mem_served = ref 0 in
    let on_fill ~index (acc : Access.packed) =
      let served = Hierarchy.fetch hierarchy (Access.packed_line acc) in
      if Access.packed_is_demand acc && index >= count_from then begin
        (match served with
        | Hierarchy.L2 -> incr l2_served
        | Hierarchy.L3 -> incr l3_served
        | Hierarchy.Memory -> incr mem_served);
        miss_cycles := !miss_cycles + Hierarchy.penalty config served
      end
    in
    (* The timing replay only needs counters and the fill callback — not
       the boxed eviction records, which would otherwise be the last
       O(n)-in-the-heap structure on the paper-scale oracle path. *)
    let res =
      Belady.simulate ~record_evictions:false ~on_fill ~count_from config.Config.l1i ~mode
        stream
    in
    let stats = Stats.create () in
    stats.Stats.demand_accesses <- res.Belady.demand_accesses;
    stats.Stats.demand_misses <- res.Belady.demand_misses;
    stats.Stats.demand_misses_cold <- res.Belady.demand_misses_cold;
    stats.Stats.prefetch_accesses <- res.Belady.prefetch_accesses;
    stats.Stats.prefetch_fills <- res.Belady.prefetch_fills;
    stats.Stats.evictions <- res.Belady.n_evictions;
    stats.Stats.replacement_decisions <- res.Belady.n_evictions;
    finish ~config ~instructions ~hint_instructions:0
      ~miss_cycles:(Float.of_int !miss_cycles) ~l1i:stats ~l2_served:!l2_served
      ~l3_served:!l3_served ~mem_served:!mem_served
