module Program = Ripple_isa.Program
module Basic_block = Ripple_isa.Basic_block
module Cache = Ripple_cache.Cache
module Stats = Ripple_cache.Stats
module Access = Ripple_cache.Access
module Access_stream = Ripple_cache.Access_stream
module Belady = Ripple_cache.Belady
module Lru = Ripple_cache.Lru
module Prefetcher = Ripple_prefetch.Prefetcher
module Nlp = Ripple_prefetch.Nlp
module Fdip = Ripple_prefetch.Fdip

type result = {
  instructions : int;
  hint_instructions : int;
  cycles : float;
  ipc : float;
  demand_misses : int;
  mpki : float;
  l1i : Stats.t;
  served_l2 : int;
  served_l3 : int;
  served_memory : int;
}

module Json = Ripple_util.Json

let result_to_json (r : result) =
  let l1i = r.l1i in
  Json.Obj
    [
      ("instructions", Json.Int r.instructions);
      ("hint_instructions", Json.Int r.hint_instructions);
      ("cycles", Json.Float r.cycles);
      ("ipc", Json.Float r.ipc);
      ("demand_misses", Json.Int r.demand_misses);
      ("mpki", Json.Float r.mpki);
      ("served_l2", Json.Int r.served_l2);
      ("served_l3", Json.Int r.served_l3);
      ("served_memory", Json.Int r.served_memory);
      ( "l1i",
        Json.Obj
          [
            ("demand_accesses", Json.Int l1i.Stats.demand_accesses);
            ("demand_misses", Json.Int l1i.Stats.demand_misses);
            ("demand_misses_cold", Json.Int l1i.Stats.demand_misses_cold);
            ("prefetch_accesses", Json.Int l1i.Stats.prefetch_accesses);
            ("prefetch_fills", Json.Int l1i.Stats.prefetch_fills);
            ("evictions", Json.Int l1i.Stats.evictions);
            ("replacement_decisions", Json.Int l1i.Stats.replacement_decisions);
            ("hinted_fills", Json.Int l1i.Stats.hinted_fills);
            ("invalidate_hits", Json.Int l1i.Stats.invalidate_hits);
            ("invalidate_misses", Json.Int l1i.Stats.invalidate_misses);
            ("demotes", Json.Int l1i.Stats.demotes);
          ] );
    ]

module Obs = Ripple_obs

(* The simulator's metric vocabulary.  [register_obs] is find-or-create,
   so callers (the pipeline, the experiment runner) may pre-register the
   whole family to fix a snapshot's schema before any event fires. *)
let obs_counter reg name help = Obs.Registry.counter reg ~help name

let register_obs reg =
  let c name help = ignore (obs_counter reg name help) in
  c "ripple_sim_instructions" "retired instructions, hints included";
  c "ripple_sim_hint_instructions" "retired Ripple hint instructions";
  c "ripple_sim_demand_accesses" "L1I demand accesses";
  c "ripple_sim_demand_misses" "L1I demand misses";
  c "ripple_sim_demand_misses_cold" "compulsory L1I demand misses";
  c "ripple_sim_prefetch_fills" "prefetches that missed and filled";
  c "ripple_sim_evictions" "valid L1I lines displaced by fills";
  c "ripple_sim_replacement_decisions" "fills that picked a victim";
  c "ripple_sim_hinted_fills" "fills into ways freed by a Ripple hint";
  c "ripple_sim_invalidate_hits" "invalidation hints that found their line";
  c "ripple_sim_invalidate_misses" "invalidation hints to an absent line";
  c "ripple_sim_demotes" "demote hints executed";
  ignore (Obs.Registry.series reg ~help:"periodic IPC over virtual time" "ripple_sim_ipc");
  ignore (Obs.Registry.series reg ~help:"periodic MPKI over virtual time" "ripple_sim_mpki")

let observe_result obs (r : result) =
  let reg = Obs.Run.registry obs in
  register_obs reg;
  let add name v = Obs.Metric.add (Obs.Registry.counter reg name) v in
  add "ripple_sim_instructions" r.instructions;
  add "ripple_sim_hint_instructions" r.hint_instructions;
  add "ripple_sim_demand_accesses" r.l1i.Stats.demand_accesses;
  add "ripple_sim_demand_misses" r.l1i.Stats.demand_misses;
  add "ripple_sim_demand_misses_cold" r.l1i.Stats.demand_misses_cold;
  add "ripple_sim_prefetch_fills" r.l1i.Stats.prefetch_fills;
  add "ripple_sim_evictions" r.l1i.Stats.evictions;
  add "ripple_sim_replacement_decisions" r.l1i.Stats.replacement_decisions;
  add "ripple_sim_hinted_fills" r.l1i.Stats.hinted_fills;
  add "ripple_sim_invalidate_hits" r.l1i.Stats.invalidate_hits;
  add "ripple_sim_invalidate_misses" r.l1i.Stats.invalidate_misses;
  add "ripple_sim_demotes" r.l1i.Stats.demotes

let prefetcher_none _program = Prefetcher.none

let prefetcher_nlp ?(config = Config.default) _program =
  Nlp.create ~degree:config.Config.nlp_degree ()

let prefetcher_fdip ?(config = Config.default) program =
  Fdip.create ~ftq_depth:config.Config.ftq_depth ~program ()

(* Precomputed per-block expansion so the hot loop allocates nothing. *)
let block_lines program =
  Array.map
    (fun b -> Array.of_list (Basic_block.lines b))
    (Program.blocks program)

let finish ~(config : Config.t) ~instructions ~hint_instructions ~miss_cycles ~l1i ~l2_served
    ~l3_served ~mem_served =
  let original = instructions - hint_instructions in
  let cycles =
    (config.Config.cpi_base *. Float.of_int original)
    +. (config.Config.hint_cpi *. Float.of_int hint_instructions)
    +. (config.Config.miss_exposure *. miss_cycles)
  in
  let ipc = if cycles > 0.0 then Float.of_int original /. cycles else 0.0 in
  {
    instructions;
    hint_instructions;
    cycles;
    ipc;
    demand_misses = l1i.Stats.demand_misses;
    mpki = Stats.mpki l1i ~instructions:original;
    l1i;
    served_l2 = l2_served;
    served_l3 = l3_served;
    served_memory = mem_served;
  }

let run ?(config = Config.default) ?(warmup = 0) ?obs
    ?(on_hint = fun ~at:_ _ ~resident:_ -> ()) ~program ~trace ~policy ~prefetcher () =
  let l1 = Cache.create ~geometry:config.Config.l1i ~policy () in
  let hierarchy = Hierarchy.create config in
  let pf = prefetcher program in
  let lines = block_lines program in
  let blocks = Program.blocks program in
  let instructions = ref 0 in
  let hint_instructions = ref 0 in
  (* Penalties are integers; accumulating in an int avoids a boxed-float
     store per miss and converts once at the end.  (Bit-identical to
     float accumulation: every partial sum is far below 2^53.) *)
  let miss_cycles = ref 0 in
  let l2_served = ref 0 and l3_served = ref 0 and mem_served = ref 0 in
  let complete_prefetch (acc : Access.packed) =
    match Cache.access_packed l1 acc with
    | Cache.Hit -> ()
    | Cache.Miss -> ignore (Hierarchy.fetch hierarchy (Access.packed_line acc))
  in
  (* Issued accesses arrive consed (newest first); completing them in
     issue order without the [List.rev] copy means recursing to the tail
     first.  In-flight lists are bounded by the FTQ/issue width, so the
     recursion depth is small. *)
  let rec complete_all = function
    | [] -> ()
    | acc :: rest ->
      complete_all rest;
      complete_prefetch acc
  in
  (* Prefetches land [prefetch_latency_blocks] blocks after issue (the
     L2 round trip); slot [at mod slots] holds what completes as block
     [at] is fetched. *)
  let delay = max 0 config.Config.prefetch_latency_blocks in
  let slots = delay + 1 in
  let in_flight = Array.make slots [] in
  let flush_due ~at =
    let slot = at mod slots in
    complete_all in_flight.(slot);
    in_flight.(slot) <- []
  in
  let rec issue_all ~at = function
    | [] -> ()
    | (acc : Access.packed) :: rest ->
      let slot = (at + delay) mod slots in
      in_flight.(slot) <- acc :: in_flight.(slot);
      issue_all ~at rest
  in
  let demand ~block line =
    match Cache.access_packed l1 (Access.pack_demand ~line ~block) with
    | Cache.Hit -> false
    | Cache.Miss ->
      let served = Hierarchy.fetch hierarchy line in
      (match served with
      | Hierarchy.L2 -> incr l2_served
      | Hierarchy.L3 -> incr l3_served
      | Hierarchy.Memory -> incr mem_served);
      miss_cycles := !miss_cycles + Hierarchy.penalty config served;
      true
  in
  (* Periodic IPC/MPKI samples in *virtual* time (the trace index), so
     the series is a pure function of the run — identical at any pool
     size.  At most ~16 samples per run; the per-block cost without a
     sampler is one match. *)
  let sampler =
    match obs with
    | None -> None
    | Some obs ->
      let reg = Obs.Run.registry obs in
      register_obs reg;
      let ipc_series = Obs.Registry.series reg "ripple_sim_ipc" in
      let mpki_series = Obs.Registry.series reg "ripple_sim_mpki" in
      let every = max 1 (Array.length trace / 16) in
      Some
        (fun at ->
          if (at + 1) mod every = 0 then begin
            let original = !instructions - !hint_instructions in
            if original > 0 then begin
              let cycles =
                (config.Config.cpi_base *. Float.of_int original)
                +. (config.Config.hint_cpi *. Float.of_int !hint_instructions)
                +. (config.Config.miss_exposure *. Float.of_int !miss_cycles)
              in
              Obs.Metric.sample ipc_series ~at
                (if cycles > 0.0 then Float.of_int original /. cycles else 0.0);
              Obs.Metric.sample mpki_series ~at
                (Stats.mpki (Cache.stats l1) ~instructions:original)
            end
          end)
  in
  Array.iteri
    (fun at id ->
      (* Steady state: warm the caches and predictors, then zero the
         counters at the warm-up boundary. *)
      if at = warmup && warmup > 0 then begin
        Stats.reset (Cache.stats l1);
        miss_cycles := 0;
        instructions := 0;
        hint_instructions := 0;
        l2_served := 0;
        l3_served := 0;
        mem_served := 0
      end;
      let b = blocks.(id) in
      flush_due ~at;
      issue_all ~at (pf.Prefetcher.on_block b);
      let bl = lines.(id) in
      for i = 0 to Array.length bl - 1 do
        let missed = demand ~block:id bl.(i) in
        issue_all ~at (pf.Prefetcher.on_demand ~line:bl.(i) ~missed)
      done;
      let hints = b.Basic_block.hints in
      for i = 0 to Array.length hints - 1 do
        let hint = hints.(i) in
        let line = Basic_block.hint_line hint in
        on_hint ~at hint ~resident:(Cache.contains l1 line);
        (match hint with
        | Basic_block.Invalidate line -> Cache.invalidate l1 line
        | Basic_block.Demote line -> Cache.demote l1 line);
        incr hint_instructions
      done;
      instructions := !instructions + Basic_block.total_instrs b;
      match sampler with Some f -> f at | None -> ())
    trace;
  let result =
    finish ~config ~instructions:!instructions ~hint_instructions:!hint_instructions
      ~miss_cycles:(Float.of_int !miss_cycles) ~l1i:(Cache.stats l1) ~l2_served:!l2_served
      ~l3_served:!l3_served ~mem_served:!mem_served
  in
  (match obs with Some o -> observe_result o result | None -> ());
  result

let instructions_from ~program ~trace ~warmup =
  let per_block = Array.map Basic_block.total_instrs (Program.blocks program) in
  let total = ref 0 in
  for i = warmup to Array.length trace - 1 do
    total := !total + per_block.(trace.(i))
  done;
  !total

let ideal_cache ?(config = Config.default) ?(warmup = 0) ~program ~trace () =
  let instructions = instructions_from ~program ~trace ~warmup in
  finish ~config ~instructions ~hint_instructions:0 ~miss_cycles:0.0 ~l1i:(Stats.create ())
    ~l2_served:0 ~l3_served:0 ~mem_served:0

let record_stream_indexed ?(config = Config.default) ~program ~trace ~prefetcher () =
  let l1 = Cache.create ~geometry:config.Config.l1i ~policy:Lru.make () in
  let pf = prefetcher program in
  let lines = block_lines program in
  let blocks = Program.blocks program in
  let builder = Access_stream.Builder.create () in
  let pos = ref (Array.make 65536 0) in
  let len = ref 0 in
  let emit (acc : Access.packed) ~at =
    if !len = Array.length !pos then begin
      let bigger_pos = Array.make (2 * !len) 0 in
      Array.blit !pos 0 bigger_pos 0 !len;
      pos := bigger_pos
    end;
    Access_stream.Builder.add builder acc;
    !pos.(!len) <- at;
    incr len
  in
  let delay = max 0 config.Config.prefetch_latency_blocks in
  let slots = delay + 1 in
  let in_flight = Array.make slots [] in
  let rec complete_all ~at = function
    | [] -> ()
    | (acc : Access.packed) :: rest ->
      complete_all ~at rest;
      emit acc ~at;
      ignore (Cache.access_packed l1 acc)
  in
  let rec issue_all ~at = function
    | [] -> ()
    | (acc : Access.packed) :: rest ->
      let slot = (at + delay) mod slots in
      in_flight.(slot) <- acc :: in_flight.(slot);
      issue_all ~at rest
  in
  Array.iteri
    (fun at id ->
      let slot = at mod slots in
      complete_all ~at in_flight.(slot);
      in_flight.(slot) <- [];
      let b = blocks.(id) in
      issue_all ~at (pf.Prefetcher.on_block b);
      let bl = lines.(id) in
      for i = 0 to Array.length bl - 1 do
        let acc = Access.pack_demand ~line:bl.(i) ~block:id in
        emit acc ~at;
        let missed = Cache.access_packed l1 acc = Cache.Miss in
        issue_all ~at (pf.Prefetcher.on_demand ~line:bl.(i) ~missed)
      done)
    trace;
  (Access_stream.Builder.finish builder, Array.sub !pos 0 !len)

let record_stream ?config ~program ~trace ~prefetcher () =
  fst (record_stream_indexed ?config ~program ~trace ~prefetcher ())

let oracle ?(config = Config.default) ?(warmup = 0) ?stream ~mode ~program ~trace ~prefetcher
    () =
  let stream, stream_pos =
    match stream with
    | Some s -> s
    | None -> record_stream_indexed ~config ~program ~trace ~prefetcher ()
  in
  (* First stream index belonging to the measured region. *)
  let count_from =
    let n = Array.length stream_pos in
    let rec find i = if i >= n then n else if stream_pos.(i) >= warmup then i else find (i + 1) in
    if warmup = 0 then 0 else find 0
  in
  let hierarchy = Hierarchy.create config in
  let miss_cycles = ref 0 in
  let l2_served = ref 0 and l3_served = ref 0 and mem_served = ref 0 in
  let on_fill ~index (acc : Access.packed) =
    let served = Hierarchy.fetch hierarchy (Access.packed_line acc) in
    if Access.packed_is_demand acc && index >= count_from then begin
      (match served with
      | Hierarchy.L2 -> incr l2_served
      | Hierarchy.L3 -> incr l3_served
      | Hierarchy.Memory -> incr mem_served);
      miss_cycles := !miss_cycles + Hierarchy.penalty config served
    end
  in
  let res = Belady.simulate ~on_fill ~count_from config.Config.l1i ~mode stream in
  let instructions = instructions_from ~program ~trace ~warmup in
  let stats = Stats.create () in
  stats.Stats.demand_accesses <- res.Belady.demand_accesses;
  stats.Stats.demand_misses <- res.Belady.demand_misses;
  stats.Stats.demand_misses_cold <- res.Belady.demand_misses_cold;
  stats.Stats.prefetch_accesses <- res.Belady.prefetch_accesses;
  stats.Stats.prefetch_fills <- res.Belady.prefetch_fills;
  stats.Stats.evictions <- Array.length res.Belady.evictions;
  stats.Stats.replacement_decisions <- Array.length res.Belady.evictions;
  finish ~config ~instructions ~hint_instructions:0 ~miss_cycles:(Float.of_int !miss_cycles)
    ~l1i:stats ~l2_served:!l2_served ~l3_served:!l3_served ~mem_served:!mem_served
