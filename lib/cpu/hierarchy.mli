(** L2/L3 memory hierarchy behind the L1 I-cache.

    Both levels run LRU (replacement innovation in the paper is confined
    to the L1I; §IV "We implement Ripple on the L1 I-cache").  [fetch]
    returns the level that served a missing L1I line and updates both
    levels' contents; prefetch-triggered fetches update contents too but
    the caller charges no cycles for them. *)

module Addr := Ripple_isa.Addr

type t

type served = L2 | L3 | Memory

val create : Config.t -> t

val fetch : t -> Addr.line -> served
(** Serve an L1I miss for [line]: probes L2 then L3, filling both on the
    way back (inclusive-ish behaviour). *)

val penalty : Config.t -> served -> int
(** Exposed cycles of a demand miss served at that level. *)

val l2_stats : t -> Ripple_cache.Stats.t
val l3_stats : t -> Ripple_cache.Stats.t

val save : t -> unit -> unit
(** Deep-copies both levels' state; the thunk restores it (see
    {!Ripple_cache.Cache.save}). *)
