(** Chunked, re-iterable access streams of packed immediate ints.

    The paper's evaluation replays 100 M-instruction steady-state
    captures; at that scale a stream of boxed {!Access.t} records (one
    5-word block per access, plus the spine) dominates peak memory and
    GC time.  This module stores each access as one {!Access.packed}
    immediate int in flat [int array] chunks of {!chunk_entries}
    entries: one word per access, zero per-access allocation while
    producing, consuming or re-consuming the stream.

    Streams are immutable once built, O(1) randomly addressable
    ({!get}), and re-iterable: offline consumers that need several
    passes ({!Belady.simulate}'s backward next-use pass then forward
    replay, the cue-block analysis' two window walks) iterate the same
    stream repeatedly, or hold a {!Cursor} and {!Cursor.rewind} it.
    Iteration order is always stream order, so every pass over the same
    stream observes the identical access sequence — the determinism
    contract of DESIGN.md is carried by construction.

    Storage is backing-polymorphic (it delegates to
    {!Ripple_util.Int_stream}): the default in-heap chunks, or an
    mmap-backed spill file ({!backing}) so paper-scale captures never
    have to live in the heap.  The two backings are observationally
    identical — every accessor below behaves the same regardless of
    where the words are stored. *)

type backing = Ripple_util.Int_stream.backing =
  | Heap
  | Spill of { dir : string option }

type t

val chunk_entries : int
(** Entries per storage chunk (a power of two).  Building an [n]-access
    stream allocates [ceil (n / chunk_entries)] chunks and never copies
    more than one chunk, so peak transient memory stays within one
    chunk of the final footprint. *)

val empty : t

val length : t -> int

val get : t -> int -> Access.packed
(** O(1).  Raises [Invalid_argument] out of bounds. *)

val get_access : t -> int -> Access.t
(** Boxed view of one entry (allocates; diagnostics and tests). *)

val iter : (Access.packed -> unit) -> t -> unit
val iteri : (int -> Access.packed -> unit) -> t -> unit

val iteri_rev : (int -> Access.packed -> unit) -> t -> unit
(** Highest index first — the backward pass oracle consumers build
    next-use tables with. *)

val fold_left : ('a -> Access.packed -> 'a) -> 'a -> t -> 'a

val of_array : ?backing:backing -> Access.t array -> t
val of_list : ?backing:backing -> Access.t list -> t

val to_array : t -> Access.t array
(** Materializes boxed records — intended for tests and small streams
    only; it reintroduces exactly the footprint this module removes. *)

val backing : t -> backing
(** The storage class this stream lives in. *)

val is_spill : t -> bool

val byte_size : t -> int
(** Bytes of backing storage ([8 * length] for either backing). *)

val close : t -> unit
(** Unlinks the spill file backing this stream (idempotent; no-op for
    heap streams).  Reads stay valid until the stream is collected —
    only the directory entry goes away. *)

val raw : t -> Ripple_util.Int_stream.t
(** The underlying int stream (zero-cost; same packed words). *)

val of_raw : Ripple_util.Int_stream.t -> t
(** Wraps an int stream whose entries are packed accesses. *)

(** Incremental producer.  [add] never inspects earlier entries, so
    producers stream straight from their source (block trace, simulator
    replay) without materializing anything else. *)
module Builder : sig
  type stream := t
  type t

  val create : ?backing:backing -> unit -> t
  (** [create ()] builds in the heap; [create ~backing:(Spill _) ()]
      writes through to a spill file one chunk at a time, so building a
      100 M-access stream never holds more than one chunk in memory. *)

  val length : t -> int
  val add : t -> Access.packed -> unit
  val add_access : t -> Access.t -> unit
  val add_demand : t -> line:Ripple_isa.Addr.line -> block:int -> unit
  val add_prefetch : t -> line:Ripple_isa.Addr.line -> block:int -> unit

  val finish : t -> stream
  (** Freezes the accumulated entries.  The builder is reset to empty
      (never aliasing the frozen stream), so it may be reused. *)

  val abort : t -> unit
  (** Discards accumulated entries, removing any partial spill file. *)
end

(** A mutable read position over an immutable stream.  Rewindable, so a
    two-pass consumer can hand the same cursor through both passes. *)
module Cursor : sig
  type stream := t
  type t

  val create : stream -> t
  val pos : t -> int
  val length : t -> int
  val has_next : t -> bool

  val next : t -> Access.packed
  (** Returns the entry at [pos] and advances.  Raises
      [Invalid_argument] past the end ({!has_next} guards). *)

  val peek : t -> Access.packed
  val rewind : t -> unit
  val seek : t -> int -> unit

  val close : t -> unit
  (** {!close} on the underlying stream — unlinks its spill file. *)
end
