(** Static re-reference interval prediction (SRRIP, Jaleel et al. 2010).

    Targets scanning access patterns: new lines are inserted with a long
    predicted re-reference interval and promoted only on re-use.  §II-D
    explains why this misfires on the I-cache: compulsory/scan traffic is
    rare there, so fresh code lines pay an unnecessary eviction penalty. *)

val rrpv_bits : int
(** Width of the re-reference prediction value (2). *)

val rrpv_victim : int array -> ways:int -> set:int -> int
(** Shared victim search over a dense per-slot RRPV array: returns a way
    whose RRPV is saturated, aging the set as needed.  Also used by
    {!Drrip}. *)

val make : Policy.factory
