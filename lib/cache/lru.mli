(** Least-recently-used replacement.

    The baseline policy of every experiment in the paper.  [demote] moves
    a line to the eviction-first position, implementing the §IV
    "reducing LRU priority" variant of Ripple's hint. *)

val make : Policy.factory

val storage_bits : sets:int -> ways:int -> int
(** Metadata accounting used for Table I (the paper charges LRU one bit
    per line). *)
