let history_bits = 16
let table_entries = 1024
let n_tables = 3
let counter_max = 255 (* 8-bit counters, per Table I's 3 KiB accounting *)
let counter_init = 100
let dead_threshold = 106
let victim_buffer_size = 64

(* Cheap avalanche mix for signature and table index hashing. *)
let mix x =
  let x = x * 0x9E3779B1 in
  let x = x lxor (x lsr 15) in
  let x = x * 0x85EBCA77 in
  x lxor (x lsr 13)

let make ?(fixed = true) () ~sets ~ways =
  let history = ref 0 in
  let tables = Array.init n_tables (fun _ -> Array.make table_entries counter_init) in
  let signature = Array.make (sets * ways) 0 in
  let dead = Array.make (sets * ways) false in
  let stamp = Array.make (sets * ways) 0 in
  let clock = ref 0 in
  (* Ring buffer of recently evicted (line, signature) pairs used by the
     premature-eviction fix. *)
  let victims_line = Array.make victim_buffer_size (-1) in
  let victims_sig = Array.make victim_buffer_size 0 in
  let victims_head = ref 0 in
  let current_signature line = mix (line lxor (!history lsl 5)) land 0xFFFF in
  let table_index t s = mix (s + (t * 0x51ED)) land (table_entries - 1) in
  let predict_dead s =
    let sum = ref 0 in
    for t = 0 to n_tables - 1 do
      sum := !sum + tables.(t).(table_index t s)
    done;
    !sum / n_tables >= dead_threshold
  in
  let train s ~towards_dead ~amount =
    for t = 0 to n_tables - 1 do
      let i = table_index t s in
      let v = tables.(t).(i) in
      tables.(t).(i) <-
        (if towards_dead then min counter_max (v + amount) else max 0 (v - amount))
    done
  in
  let update_history line = history := (mix (!history lxor line)) land ((1 lsl history_bits) - 1) in
  let touch ~set ~way (acc : Access.packed) =
    let slot = (set * ways) + way in
    let line = Access.packed_line acc in
    let s = current_signature line in
    signature.(slot) <- s;
    dead.(slot) <- predict_dead s;
    incr clock;
    stamp.(slot) <- !clock;
    if Access.packed_is_demand acc then update_history line
  in
  let on_hit ~set ~way (acc : Access.packed) =
    (* A hit proves the previous signature of this slot was alive. *)
    train signature.((set * ways) + way) ~towards_dead:false ~amount:1;
    touch ~set ~way acc
  in
  let on_fill ~set ~way (acc : Access.packed) =
    if fixed && Access.packed_is_demand acc then begin
      (* Premature-eviction check: was this line evicted recently? *)
      let line = Access.packed_line acc in
      for i = 0 to victim_buffer_size - 1 do
        if victims_line.(i) = line then begin
          train victims_sig.(i) ~towards_dead:false ~amount:4;
          victims_line.(i) <- -1
        end
      done
    end;
    touch ~set ~way acc
  in
  let victim ~set =
    (* Prefer predicted-dead lines; LRU breaks ties and serves as
       fallback. *)
    let best = ref 0 and best_key = ref (max_int, max_int) in
    for way = 0 to ways - 1 do
      let slot = (set * ways) + way in
      let key = ((if dead.(slot) then 0 else 1), stamp.(slot)) in
      if key < !best_key then begin
        best := way;
        best_key := key
      end
    done;
    !best
  in
  let on_eviction ~set ~way ~line =
    let slot = (set * ways) + way in
    train signature.(slot) ~towards_dead:true ~amount:3;
    if fixed then begin
      victims_line.(!victims_head) <- line;
      victims_sig.(!victims_head) <- signature.(slot);
      victims_head := (!victims_head + 1) mod victim_buffer_size
    end
  in
  let storage_bits =
    (n_tables * table_entries * 8) (* prediction tables: 3 KiB *)
    + (sets * ways) (* per-line dead bit: 64 B *)
    + (sets * ways * 16) (* per-line signature: 1 KiB *)
    + history_bits (* history register: 2 B *)
  in
  {
    Policy.name = "ghrp";
    on_hit;
    on_fill;
    fill_decision = Policy.nop_fill_decision;
    may_bypass = false;
    victim;
    on_eviction;
    on_invalidate = Policy.nop_way;
    demote = (fun ~set ~way -> dead.((set * ways) + way) <- true);
    save =
      (fun () ->
        let history' = !history in
        let tables' = Array.map Array.copy tables in
        let signature' = Array.copy signature in
        let dead' = Array.copy dead in
        let stamp' = Array.copy stamp in
        let clock' = !clock in
        let victims_line' = Array.copy victims_line in
        let victims_sig' = Array.copy victims_sig in
        let victims_head' = !victims_head in
        fun () ->
          history := history';
          Array.iteri (fun t src -> Array.blit src 0 tables.(t) 0 table_entries) tables';
          Array.blit signature' 0 signature 0 (Array.length signature);
          Array.blit dead' 0 dead 0 (Array.length dead);
          Array.blit stamp' 0 stamp 0 (Array.length stamp);
          clock := clock';
          Array.blit victims_line' 0 victims_line 0 victim_buffer_size;
          Array.blit victims_sig' 0 victims_sig 0 victim_buffer_size;
          victims_head := victims_head');
    storage_bits;
    duel = None;
  }
