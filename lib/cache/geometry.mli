(** Cache geometry: size, associativity and derived set count.

    Defaults match the paper's Table II Haswell configuration. *)

type t = { size_bytes : int; ways : int }

val v : size_bytes:int -> ways:int -> t
(** Requires the derived set count to be a positive power of two. *)

val sets : t -> int
(** [size_bytes / (ways * line_size)]. *)

val lines : t -> int
(** Total line capacity. *)

val set_of_line : t -> Ripple_isa.Addr.line -> int
(** Set index of a line under modulo placement. *)

val l1i : t
(** 32 KiB, 8-way: the paper's L1 instruction cache. *)

val l1d : t
(** 32 KiB, 8-way. *)

val l2 : t
(** 1 MiB, 16-way unified L2. *)

val l3 : t
(** 10 MiB, 20-way shared L3 — rounded to 8 MiB/16-way so the set count
    stays a power of two (noted in DESIGN.md; only timing-level impact). *)

val pp : Format.formatter -> t -> unit
