module Prng = Ripple_util.Prng

let make ~seed ~sets ~ways =
  let rng = Prng.create ~seed in
  (* demoted.(set) is a way forced to be the next victim, or -1. *)
  let demoted = Array.make sets (-1) in
  let victim ~set =
    if demoted.(set) >= 0 then begin
      let way = demoted.(set) in
      demoted.(set) <- -1;
      way
    end
    else Prng.int rng ways
  in
  {
    Policy.name = "random";
    on_hit = Policy.nop_access;
    on_fill =
      (fun ~set ~way _ -> if demoted.(set) = way then demoted.(set) <- -1);
    fill_decision = Policy.nop_fill_decision;
    may_bypass = false;
    victim;
    on_eviction = Policy.nop_evict;
    on_invalidate = (fun ~set ~way -> if demoted.(set) = way then demoted.(set) <- -1);
    demote = (fun ~set ~way -> demoted.(set) <- way);
    save =
      (fun () ->
        let rng' = Prng.copy rng in
        let demoted' = Array.copy demoted in
        fun () ->
          Prng.copy_into ~src:rng' ~dst:rng;
          Array.blit demoted' 0 demoted 0 (Array.length demoted));
    storage_bits = 0;
    duel = None;
  }
