let rrpv_max = (1 lsl Srrip.rrpv_bits) - 1
let rrpv_long = rrpv_max - 1
let psel_bits = 10
let psel_max = (1 lsl psel_bits) - 1
let brrip_throttle = 32 (* 1-in-32 long insertions in bimodal mode *)

type set_role = Leader_srrip | Leader_brrip | Follower

let make ~sets ~ways =
  let rrpv = Array.make (sets * ways) rrpv_max in
  let psel = ref (psel_max / 2) in
  let brrip_counter = ref 0 in
  (* A handful of leader sets per flavour, spread across the index
     space. *)
  let n_leaders = max 1 (sets / 16) in
  let role set =
    if set mod 16 = 0 && set / 16 < n_leaders then Leader_srrip
    else if set mod 16 = 8 && set / 16 < n_leaders then Leader_brrip
    else Follower
  in
  let use_brrip set =
    match role set with
    | Leader_srrip -> false
    | Leader_brrip -> true
    | Follower -> !psel > psel_max / 2
  in
  let on_fill ~set ~way _ =
    (* A fill means this set just missed: train the duel. *)
    (match role set with
    | Leader_srrip -> psel := min psel_max (!psel + 1)
    | Leader_brrip -> psel := max 0 (!psel - 1)
    | Follower -> ());
    let insertion =
      if use_brrip set then begin
        incr brrip_counter;
        if !brrip_counter mod brrip_throttle = 0 then rrpv_long else rrpv_max
      end
      else rrpv_long
    in
    rrpv.((set * ways) + way) <- insertion
  in
  {
    Policy.name = "drrip";
    on_hit = (fun ~set ~way _ -> rrpv.((set * ways) + way) <- 0);
    on_fill;
    victim = (fun ~set -> Srrip.rrpv_victim rrpv ~ways ~set);
    on_eviction = Policy.nop_evict;
    on_invalidate = (fun ~set ~way -> rrpv.((set * ways) + way) <- rrpv_max);
    demote = (fun ~set ~way -> rrpv.((set * ways) + way) <- rrpv_max);
    save =
      (fun () ->
        let rrpv' = Array.copy rrpv in
        let psel' = !psel and brrip_counter' = !brrip_counter in
        fun () ->
          Array.blit rrpv' 0 rrpv 0 (Array.length rrpv);
          psel := psel';
          brrip_counter := brrip_counter');
    storage_bits = (sets * ways * Srrip.rrpv_bits) + psel_bits;
  }
