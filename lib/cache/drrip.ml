let rrpv_max = (1 lsl Srrip.rrpv_bits) - 1
let rrpv_long = rrpv_max - 1

let make ?(psel_bits = 10) ?(throttle = 32) ?(spacing = 16) () ~sets ~ways =
  if throttle < 1 then invalid_arg "Drrip.make: throttle must be >= 1";
  let rrpv = Array.make (sets * ways) rrpv_max in
  (* Flavour A duels SRRIP insertion, flavour B bimodal (BRRIP)
     insertion; the substrate's defaults are the constants this policy
     always used inline, so the port is byte-identical (pinned test). *)
  let duel = Dueling.make ~sets ~spacing ~psel_bits () in
  let brrip_counter = ref 0 in
  let on_fill ~set ~way _ =
    (* A fill means this set just missed: train the duel. *)
    Dueling.train_miss duel ~set;
    let insertion =
      if Dueling.selects_b duel ~set then begin
        incr brrip_counter;
        if !brrip_counter mod throttle = 0 then rrpv_long else rrpv_max
      end
      else rrpv_long
    in
    rrpv.((set * ways) + way) <- insertion
  in
  {
    Policy.name = "drrip";
    on_hit = (fun ~set ~way _ -> rrpv.((set * ways) + way) <- 0);
    on_fill;
    fill_decision = Policy.nop_fill_decision;
    may_bypass = false;
    victim = (fun ~set -> Srrip.rrpv_victim rrpv ~ways ~set);
    on_eviction = Policy.nop_evict;
    on_invalidate = (fun ~set ~way -> rrpv.((set * ways) + way) <- rrpv_max);
    demote = (fun ~set ~way -> rrpv.((set * ways) + way) <- rrpv_max);
    save =
      (fun () ->
        let rrpv' = Array.copy rrpv in
        let restore_duel = Dueling.save duel in
        let brrip_counter' = !brrip_counter in
        fun () ->
          Array.blit rrpv' 0 rrpv 0 (Array.length rrpv);
          restore_duel ();
          brrip_counter := brrip_counter');
    storage_bits = (sets * ways * Srrip.rrpv_bits) + Dueling.storage_bits duel;
    duel = Some duel;
  }
