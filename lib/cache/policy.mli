(** Replacement-policy interface.

    A policy instance owns the per-set replacement metadata of one cache.
    The cache core ({!Cache}) calls back on hits, fills, evictions,
    hint-invalidations and demotions; [victim] is consulted only when a
    fill finds its set full of valid lines, so policies never have to
    reason about invalid ways.

    [storage_bits] is the on-chip metadata budget of the policy for the
    instantiated geometry, following the accounting of the paper's
    Table I; it is what the Table I bench prints. *)

type fill_decision = [ `Install | `Bypass ]
(** What to do with a missing line: install it (the default for every
    classical policy) or bypass the cache entirely — the line is
    fetched but no way is allocated (streaming-bypass policies). *)

type t = {
  name : string;
  on_hit : set:int -> way:int -> Access.packed -> unit;
      (** A resident line was demand-referenced. *)
  on_fill : set:int -> way:int -> Access.packed -> unit;
      (** A line was installed into [way] (demand or prefetch fill). *)
  fill_decision : set:int -> Access.packed -> fill_decision;
      (** Consulted once per miss, before any way is chosen.  [`Bypass]
          serves the access without installing the line: no victim, no
          eviction, no [on_fill] — the cache core counts it in
          [Stats.fill_bypasses].  Policies that duel on misses must
          train here rather than in [on_fill], so bypassed misses still
          train. *)
  may_bypass : bool;
      (** Whether [fill_decision] can ever return [`Bypass].  Static
          analyses (the abstract cache interpretation) rely on this:
          their must-hit facts assume install-on-miss and are only
          sound for policies where this is [false]; always-miss facts
          hold either way. *)
  victim : set:int -> int;
      (** Way to evict from a full set. *)
  on_eviction : set:int -> way:int -> line:Ripple_isa.Addr.line -> unit;
      (** The chosen victim is leaving the cache (training hook). *)
  on_invalidate : set:int -> way:int -> unit;
      (** A Ripple hint dropped the line in [way]. *)
  demote : set:int -> way:int -> unit;
      (** A Ripple [Demote] hint: make [way] the preferred next victim
          without invalidating it (§IV, "Invalidation vs. reducing LRU
          priority"). *)
  save : unit -> unit -> unit;
      (** [save ()] captures a deep copy of the policy's replacement
          state; the returned thunk restores it.  Checkpointed warm-up
          (sampled simulation) snapshots the cache after the warm-up
          prefix and rewinds to it before each sample window. *)
  storage_bits : int;
  duel : Dueling.t option;
      (** The policy's set-dueling component, if it has one — a typed
          telemetry channel: the simulator reads PSEL, per-flavour
          leader misses and selection flips off it for the
          [ripple_duel_*] metric families.  Policies that set this must
          fold [Dueling.save] into [save]. *)
}

type factory = sets:int -> ways:int -> t
(** Policies are constructed per cache geometry. *)

val nop_access : set:int -> way:int -> Access.packed -> unit
(** Convenience no-op callback. *)

val nop_way : set:int -> way:int -> unit
val nop_evict : set:int -> way:int -> line:Ripple_isa.Addr.line -> unit

val nop_save : unit -> unit -> unit
(** For stateless policies: capturing and restoring are both no-ops. *)

val nop_fill_decision : set:int -> Access.packed -> fill_decision
(** Always [`Install] — the behaviour of every policy that predates the
    hook, and the default for any policy without a bypass story. *)
