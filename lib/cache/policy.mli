(** Replacement-policy interface.

    A policy instance owns the per-set replacement metadata of one cache.
    The cache core ({!Cache}) calls back on hits, fills, evictions,
    hint-invalidations and demotions; [victim] is consulted only when a
    fill finds its set full of valid lines, so policies never have to
    reason about invalid ways.

    [storage_bits] is the on-chip metadata budget of the policy for the
    instantiated geometry, following the accounting of the paper's
    Table I; it is what the Table I bench prints. *)

type t = {
  name : string;
  on_hit : set:int -> way:int -> Access.packed -> unit;
      (** A resident line was demand-referenced. *)
  on_fill : set:int -> way:int -> Access.packed -> unit;
      (** A line was installed into [way] (demand or prefetch fill). *)
  victim : set:int -> int;
      (** Way to evict from a full set. *)
  on_eviction : set:int -> way:int -> line:Ripple_isa.Addr.line -> unit;
      (** The chosen victim is leaving the cache (training hook). *)
  on_invalidate : set:int -> way:int -> unit;
      (** A Ripple hint dropped the line in [way]. *)
  demote : set:int -> way:int -> unit;
      (** A Ripple [Demote] hint: make [way] the preferred next victim
          without invalidating it (§IV, "Invalidation vs. reducing LRU
          priority"). *)
  save : unit -> unit -> unit;
      (** [save ()] captures a deep copy of the policy's replacement
          state; the returned thunk restores it.  Checkpointed warm-up
          (sampled simulation) snapshots the cache after the warm-up
          prefix and rewinds to it before each sample window. *)
  storage_bits : int;
}

type factory = sets:int -> ways:int -> t
(** Policies are constructed per cache geometry. *)

val nop_access : set:int -> way:int -> Access.packed -> unit
(** Convenience no-op callback. *)

val nop_way : set:int -> way:int -> unit
val nop_evict : set:int -> way:int -> line:Ripple_isa.Addr.line -> unit

val nop_save : unit -> unit -> unit
(** For stateless policies: capturing and restoring are both no-ops. *)
