type entry = {
  name : string;
  display : string;
  description : string;
  storage_note : string;
  factory : seed:int -> Policy.factory;
}

let all =
  [
    {
      name = "lru";
      display = "LRU";
      description = "least-recently-used, the baseline of every experiment";
      storage_note = "1 bit per line";
      factory = (fun ~seed:_ -> Lru.make);
    };
    {
      name = "ghrp";
      display = "GHRP";
      description = "global history reuse predictor (Ajorpaz et al. 2018)";
      storage_note = "3 KiB tables, dead bits, signatures, history";
      factory = (fun ~seed:_ -> Ghrp.make ());
    };
    {
      name = "srrip";
      display = "SRRIP";
      description = "static re-reference interval prediction (Jaleel et al. 2010)";
      storage_note = "2 bits per line";
      factory = (fun ~seed:_ -> Srrip.make);
    };
    {
      name = "drrip";
      display = "DRRIP";
      description = "set-dueling SRRIP/bimodal insertion (Jaleel et al. 2010)";
      storage_note = "2 bits per line + PSEL";
      factory = (fun ~seed:_ -> Drrip.make);
    };
    {
      name = "ship";
      display = "SHiP";
      description = "signature-based hit prediction (Wu et al. 2011)";
      storage_note = "SHCT counters + 2 bits per line";
      factory = (fun ~seed:_ -> Ship.make);
    };
    {
      name = "hawkeye";
      display = "Hawkeye/Harmony";
      description = "Hawkeye/Harmony: OPTgen sampling + PC predictor (Jain & Lin 2016)";
      storage_note = "sampler, occupancy vectors, predictor, RRIP counters";
      factory = (fun ~seed:_ -> Hawkeye.make ());
    };
    {
      name = "random";
      display = "Random";
      description = "uniform random victim, zero replacement metadata";
      storage_note = "none";
      factory = (fun ~seed -> Random_policy.make ~seed);
    };
  ]

let names = List.map (fun e -> e.name) all
let find name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun e -> e.name = name) all

let find_exn name =
  match find name with
  | Some e -> e
  | None ->
    invalid_arg
      (Printf.sprintf "Registry.find_exn: unknown policy %S (known: %s)" name
         (String.concat ", " names))

let factory ?(seed = 1234) name = (find_exn name).factory ~seed
