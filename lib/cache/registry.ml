module Param = struct
  type value = Int of int | Float of float | Bool of bool

  type spec = { key : string; doc : string; default : value }

  type set = (string * value) list

  let type_name = function Int _ -> "int" | Float _ -> "float" | Bool _ -> "bool"

  let value_to_string = function
    | Int i -> string_of_int i
    | Float f -> Printf.sprintf "%g" f
    | Bool b -> string_of_bool b

  let value_equal a b =
    match (a, b) with
    | Int a, Int b -> a = b
    | Float a, Float b -> a = b
    | Bool a, Bool b -> a = b
    | _ -> false

  (* Values parse against the *declared* type of the key, so a float
     key accepts "2" but an int key rejects "2.5". *)
  let value_of_string ~like s =
    match like with
    | Int _ -> Option.map (fun i -> Int i) (int_of_string_opt s)
    | Float _ -> Option.map (fun f -> Float f) (float_of_string_opt s)
    | Bool _ -> Option.map (fun b -> Bool b) (bool_of_string_opt s)

  let defaults specs = List.map (fun s -> (s.key, s.default)) specs

  let missing key = invalid_arg (Printf.sprintf "Registry.Param: missing key %S" key)

  let get_int set key =
    match List.assoc_opt key set with
    | Some (Int i) -> i
    | Some v -> invalid_arg (Printf.sprintf "Registry.Param: %S is %s, not int" key (type_name v))
    | None -> missing key

  let get_float set key =
    match List.assoc_opt key set with
    | Some (Float f) -> f
    | Some (Int i) -> Float.of_int i
    | Some v ->
      invalid_arg (Printf.sprintf "Registry.Param: %S is %s, not float" key (type_name v))
    | None -> missing key

  let get_bool set key =
    match List.assoc_opt key set with
    | Some (Bool b) -> b
    | Some v -> invalid_arg (Printf.sprintf "Registry.Param: %S is %s, not bool" key (type_name v))
    | None -> missing key
end

type entry = {
  name : string;
  display : string;
  description : string;
  storage_note : string;
  params : Param.spec list;
  factory : seed:int -> params:Param.set -> Policy.factory;
}

let no_params (f : seed:int -> Policy.factory) ~seed ~params:_ = f ~seed

let all =
  [
    {
      name = "lru";
      display = "LRU";
      description = "least-recently-used, the baseline of every experiment";
      storage_note = "1 bit per line";
      params = [];
      factory = no_params (fun ~seed:_ -> Lru.make);
    };
    {
      name = "ghrp";
      display = "GHRP";
      description = "global history reuse predictor (Ajorpaz et al. 2018)";
      storage_note = "3 KiB tables, dead bits, signatures, history";
      params = [];
      factory = no_params (fun ~seed:_ -> Ghrp.make ());
    };
    {
      name = "srrip";
      display = "SRRIP";
      description = "static re-reference interval prediction (Jaleel et al. 2010)";
      storage_note = "2 bits per line";
      params = [];
      factory = no_params (fun ~seed:_ -> Srrip.make);
    };
    {
      name = "drrip";
      display = "DRRIP";
      description = "set-dueling SRRIP/bimodal insertion (Jaleel et al. 2010)";
      storage_note = "2 bits per line + PSEL";
      params =
        [
          { Param.key = "psel_bits"; doc = "PSEL counter width"; default = Param.Int 10 };
          {
            Param.key = "throttle";
            doc = "bimodal rate: 1-in-N fills insert long";
            default = Param.Int 32;
          };
          { Param.key = "spacing"; doc = "sets between leader sets"; default = Param.Int 16 };
        ];
      factory =
        (fun ~seed:_ ~params ->
          Drrip.make
            ~psel_bits:(Param.get_int params "psel_bits")
            ~throttle:(Param.get_int params "throttle")
            ~spacing:(Param.get_int params "spacing")
            ());
    };
    {
      name = "ship";
      display = "SHiP";
      description = "signature-based hit prediction (Wu et al. 2011)";
      storage_note = "SHCT counters + 2 bits per line";
      params = [];
      factory = no_params (fun ~seed:_ -> Ship.make);
    };
    {
      name = "hawkeye";
      display = "Hawkeye/Harmony";
      description = "Hawkeye/Harmony: OPTgen sampling + PC predictor (Jain & Lin 2016)";
      storage_note = "sampler, occupancy vectors, predictor, RRIP counters";
      params =
        [
          {
            Param.key = "harmony";
            doc = "prefetch-aware (Demand-MIN) OPTgen training";
            default = Param.Bool true;
          };
        ];
      factory =
        (fun ~seed:_ ~params -> Hawkeye.make ~harmony:(Param.get_bool params "harmony") ());
    };
    {
      name = "trrip";
      display = "TRRIP";
      description = "temperature-based RRIP for I-caches (Mehta et al. 2025)";
      storage_note = "2 bits per line + 1 KiB temperature table + PSEL";
      params =
        [
          {
            Param.key = "table_bits";
            doc = "log2 of the temperature-table entries";
            default = Param.Int 12;
          };
          {
            Param.key = "hot";
            doc = "temperature at or above which a PC inserts near-MRU";
            default = Param.Int 2;
          };
        ];
      factory =
        (fun ~seed:_ ~params ->
          Trrip.make
            ~table_bits:(Param.get_int params "table_bits")
            ~hot:(Param.get_int params "hot")
            ());
    };
    {
      name = "ehc-hawkeye";
      display = "EHC-Hawkeye";
      description = "expected-hit-count victim refinement over Hawkeye (Vakil-Ghahani et al. 2018)";
      storage_note = "Hawkeye + hit counters + 768 B EHC table + PSEL";
      params =
        [
          {
            Param.key = "harmony";
            doc = "prefetch-aware (Demand-MIN) OPTgen training";
            default = Param.Bool true;
          };
          {
            Param.key = "max_hits";
            doc = "saturation of the per-line hit counters";
            default = Param.Int 7;
          };
        ];
      factory =
        (fun ~seed:_ ~params ->
          Hawkeye.make
            ~harmony:(Param.get_bool params "harmony")
            ~ehc:true
            ~max_hits:(Param.get_int params "max_hits")
            ());
    };
    {
      name = "ship-sb";
      display = "SHiP-SB";
      description = "SHiP-lite + streaming bypass over dueling insertion";
      storage_note = "64-entry outcome table, signatures, stream detectors + PSEL";
      params =
        [
          {
            Param.key = "bypass";
            doc = "bypass dead-signature fills in streaming sets";
            default = Param.Bool true;
          };
          {
            Param.key = "throttle";
            doc = "bimodal rate: 1-in-N fills insert long";
            default = Param.Int 32;
          };
          {
            Param.key = "stream_window";
            doc = "misses a detected stream keeps the bypass window open";
            default = Param.Int 8;
          };
        ];
      factory =
        (fun ~seed:_ ~params ->
          Ship_sb.make
            ~bypass:(Param.get_bool params "bypass")
            ~throttle:(Param.get_int params "throttle")
            ~stream_window:(Param.get_int params "stream_window")
            ());
    };
    {
      name = "random";
      display = "Random";
      description = "uniform random victim, zero replacement metadata";
      storage_note = "none";
      params = [];
      factory = no_params (fun ~seed -> Random_policy.make ~seed);
    };
  ]

let names = List.map (fun e -> e.name) all

let find name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun e -> e.name = name) all

let find_exn name =
  match find name with
  | Some e -> e
  | None ->
    invalid_arg
      (Printf.sprintf "Registry.find_exn: unknown policy %S (known: %s)" name
         (String.concat ", " names))

(* ------------------------------------------------------------------ *)
(* Policy specs: "name" or "name:key=val,key=val".  '+' is accepted as
   an alternative pair separator so specs survive comma-splitting list
   parsers (e.g. sweep's --policies). *)

type spec = { policy : string; overrides : (string * Param.value) list }

let split_pairs s =
  String.split_on_char ',' s
  |> List.concat_map (String.split_on_char '+')
  |> List.filter (fun p -> p <> "")

let parse_spec str =
  let name, rest =
    match String.index_opt str ':' with
    | None -> (str, None)
    | Some i ->
      (String.sub str 0 i, Some (String.sub str (i + 1) (String.length str - i - 1)))
  in
  match find name with
  | None ->
    Error
      (Printf.sprintf "unknown policy %S (known: %s)" name (String.concat ", " names))
  | Some entry -> (
    let known_keys = List.map (fun (p : Param.spec) -> p.Param.key) entry.params in
    let parse_pair acc pair =
      match acc with
      | Error _ as e -> e
      | Ok overrides -> (
        match String.index_opt pair '=' with
        | None ->
          Error
            (Printf.sprintf "policy %s: malformed parameter %S (expected key=value)"
               entry.name pair)
        | Some i -> (
          let key = String.lowercase_ascii (String.sub pair 0 i) in
          let v = String.sub pair (i + 1) (String.length pair - i - 1) in
          match
            List.find_opt (fun (p : Param.spec) -> p.Param.key = key) entry.params
          with
          | None ->
            Error
              (if known_keys = [] then
                 Printf.sprintf "policy %s takes no parameters (got %S)" entry.name key
               else
                 Printf.sprintf "policy %s: unknown parameter %S (known: %s)" entry.name
                   key
                   (String.concat ", " known_keys))
          | Some p -> (
            match Param.value_of_string ~like:p.Param.default v with
            | None ->
              Error
                (Printf.sprintf "policy %s: parameter %s expects %s, got %S" entry.name
                   key
                   (Param.type_name p.Param.default)
                   v)
            | Some value -> Ok ((key, value) :: List.remove_assoc key overrides))))
    in
    match rest with
    | None -> Ok { policy = entry.name; overrides = [] }
    | Some rest ->
      Result.map
        (fun overrides -> { policy = entry.name; overrides })
        (List.fold_left parse_pair (Ok []) (split_pairs rest)))

let parse_spec_exn str =
  match parse_spec str with Ok s -> s | Error m -> invalid_arg ("Registry.parse_spec: " ^ m)

(* Canonical print form: overrides that differ from the default, sorted
   by key — so "drrip:spacing=16" and "drrip" name the same cell. *)
let spec_to_string { policy; overrides } =
  let entry = find_exn policy in
  let effective =
    List.filter
      (fun (k, v) ->
        match List.find_opt (fun (p : Param.spec) -> p.Param.key = k) entry.params with
        | Some p -> not (Param.value_equal v p.Param.default)
        | None -> true)
      overrides
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  if effective = [] then policy
  else
    policy ^ ":"
    ^ String.concat ","
        (List.map (fun (k, v) -> k ^ "=" ^ Param.value_to_string v) effective)

let spec_params { policy; overrides } =
  let entry = find_exn policy in
  List.map
    (fun (p : Param.spec) ->
      match List.assoc_opt p.Param.key overrides with
      | Some v -> (p.Param.key, v)
      | None -> (p.Param.key, p.Param.default))
    entry.params

let spec_factory ?(seed = 1234) spec =
  let entry = find_exn spec.policy in
  entry.factory ~seed ~params:(spec_params spec)

let factory ?(seed = 1234) str = spec_factory ~seed (parse_spec_exn str)

let canonical str = spec_to_string (parse_spec_exn str)
