module Addr = Ripple_isa.Addr

type mode = Min | Demand_min

type next_ref = Next_demand | Next_prefetch | Never

type eviction = { at : int; line : Addr.line; set : int; last_use : int; next : next_ref }

type result = {
  mode : mode;
  demand_accesses : int;
  demand_misses : int;
  demand_misses_cold : int;
  prefetch_accesses : int;
  prefetch_fills : int;
  evictions : eviction array;
}

let infinity_idx = max_int

(* next_demand.(i) / next_prefetch.(i): index of the next demand/prefetch
   access to the same line, strictly after access i.  One backward pass
   over the packed stream; no access is ever boxed. *)
let next_use_tables (stream : Access_stream.t) =
  let n = Access_stream.length stream in
  let next_demand = Array.make (max n 1) infinity_idx in
  let next_prefetch = Array.make (max n 1) infinity_idx in
  let last_demand = Hashtbl.create 65536 and last_prefetch = Hashtbl.create 65536 in
  Access_stream.iteri_rev
    (fun i acc ->
      let line = Access.packed_line acc in
      (match Hashtbl.find_opt last_demand line with
      | Some j -> next_demand.(i) <- j
      | None -> ());
      (match Hashtbl.find_opt last_prefetch line with
      | Some j -> next_prefetch.(i) <- j
      | None -> ());
      if Access.packed_is_demand acc then Hashtbl.replace last_demand line i
      else Hashtbl.replace last_prefetch line i)
    stream;
  (next_demand, next_prefetch)

let simulate ?(on_fill = fun ~index:_ _ -> ()) ?(count_from = 0) geometry ~mode
    (stream : Access_stream.t) =
  let next_demand, next_prefetch = next_use_tables stream in
  let sets = Geometry.sets geometry and ways = geometry.Geometry.ways in
  (* Per-slot resident line and its most recent access index. *)
  let tags = Array.make (sets * ways) (-1) in
  let last_idx = Array.make (sets * ways) (-1) in
  let seen = Hashtbl.create 65536 in
  let demand_accesses = ref 0 in
  let demand_misses = ref 0 in
  let demand_misses_cold = ref 0 in
  let prefetch_accesses = ref 0 in
  let prefetch_fills = ref 0 in
  let evictions = ref [] in
  let n_evictions = ref 0 in
  (* Way index or [-1]: option results would be the loop's only
     per-access allocation. *)
  let find_way set line =
    let rec go way =
      if way >= ways then -1
      else if tags.((set * ways) + way) = line then way
      else go (way + 1)
    in
    go 0
  in
  let free_way set =
    let rec go way =
      if way >= ways then -1
      else if tags.((set * ways) + way) = -1 then way
      else go (way + 1)
    in
    go 0
  in
  (* Victim selection; see the .mli for the Demand-MIN rule. *)
  let choose_victim set =
    let best_way = ref 0 in
    (match mode with
    | Min ->
      let best_next = ref (-1) in
      for way = 0 to ways - 1 do
        let j = last_idx.((set * ways) + way) in
        let next = min next_demand.(j) next_prefetch.(j) in
        if next > !best_next then begin
          best_next := next;
          best_way := way
        end
      done
    | Demand_min ->
      (* Class A: next reference is a prefetch (or none at all); evict
         the one whose prefetch is farthest.  Class B fallback: farthest
         next demand. *)
      let best_a = ref (-1) and best_a_key = ref (-1) in
      let best_b = ref (-1) and best_b_key = ref (-1) in
      for way = 0 to ways - 1 do
        let j = last_idx.((set * ways) + way) in
        let nd = next_demand.(j) and np = next_prefetch.(j) in
        if np < nd || (nd = infinity_idx && np = infinity_idx) then begin
          if np > !best_a_key || !best_a < 0 then begin
            best_a_key := np;
            best_a := way
          end
        end
        else if nd > !best_b_key then begin
          best_b_key := nd;
          best_b := way
        end
      done;
      best_way := (if !best_a >= 0 then !best_a else !best_b));
    !best_way
  in
  Access_stream.iteri
    (fun i acc ->
      let line = Access.packed_line acc in
      let set = Geometry.set_of_line geometry line in
      let counted = i >= count_from in
      let is_demand = Access.packed_is_demand acc in
      (if is_demand then (if counted then incr demand_accesses)
       else if counted then incr prefetch_accesses);
      let hit_way = find_way set line in
      if hit_way >= 0 then last_idx.((set * ways) + hit_way) <- i
      else begin
        on_fill ~index:i acc;
        (if is_demand then begin
           if counted then incr demand_misses;
           if not (Hashtbl.mem seen line) then begin
             Hashtbl.add seen line ();
             if counted then incr demand_misses_cold
           end
         end
         else begin
           Hashtbl.replace seen line ();
           if counted then incr prefetch_fills
         end);
        let way =
          let free = free_way set in
          if free >= 0 then free
          else begin
            let way = choose_victim set in
            let slot = (set * ways) + way in
            let j = last_idx.(slot) in
            let next =
              let nd = next_demand.(j) and np = next_prefetch.(j) in
              if nd = infinity_idx && np = infinity_idx then Never
              else if np < nd then Next_prefetch
              else Next_demand
            in
            evictions :=
              { at = i; line = tags.(slot); set; last_use = j; next } :: !evictions;
            incr n_evictions;
            way
          end
        in
        let slot = (set * ways) + way in
        tags.(slot) <- line;
        last_idx.(slot) <- i
      end)
    stream;
  {
    mode;
    demand_accesses = !demand_accesses;
    demand_misses = !demand_misses;
    demand_misses_cold = !demand_misses_cold;
    prefetch_accesses = !prefetch_accesses;
    prefetch_fills = !prefetch_fills;
    evictions = Array.of_list (List.rev !evictions);
  }

let mpki result ~instructions =
  if instructions = 0 then 0.0
  else 1000.0 *. Float.of_int result.demand_misses /. Float.of_int instructions
