module Addr = Ripple_isa.Addr
module Scratch = Ripple_util.Int_stream.Scratch

type mode = Min | Demand_min

type next_ref = Next_demand | Next_prefetch | Never

type eviction = { at : int; line : Addr.line; set : int; last_use : int; next : next_ref }

type result = {
  mode : mode;
  demand_accesses : int;
  demand_misses : int;
  demand_misses_cold : int;
  prefetch_accesses : int;
  prefetch_fills : int;
  n_evictions : int;
  evictions : eviction array;
  fills : int array;
}

let infinity_idx = max_int

(* next_demand.(i) / next_prefetch.(i): index of the next demand/prefetch
   access to the same line, strictly after access i.  One backward pass
   over the packed stream; no access is ever boxed.  The tables are
   2 words per access — at 100 M accesses they dominate peak memory, so
   they can live in unlinked mmap scratch instead of the heap, and
   set-sharded runs share one read-only copy across domains. *)
type tables = { next_demand : Scratch.t; next_prefetch : Scratch.t }

let prepare ?backing (stream : Access_stream.t) =
  let n = Access_stream.length stream in
  let next_demand = Scratch.make ?backing (max n 1) infinity_idx in
  let next_prefetch = Scratch.make ?backing (max n 1) infinity_idx in
  let last_demand = Hashtbl.create 65536 and last_prefetch = Hashtbl.create 65536 in
  Access_stream.iteri_rev
    (fun i acc ->
      let line = Access.packed_line acc in
      (match Hashtbl.find_opt last_demand line with
      | Some j -> Scratch.set next_demand i j
      | None -> ());
      (match Hashtbl.find_opt last_prefetch line with
      | Some j -> Scratch.set next_prefetch i j
      | None -> ());
      if Access.packed_is_demand acc then Hashtbl.replace last_demand line i
      else Hashtbl.replace last_prefetch line i)
    stream;
  { next_demand; next_prefetch }

let close_tables t =
  Scratch.close t.next_demand;
  Scratch.close t.next_prefetch

let simulate ?tables ?sets:set_range ?(record_fills = false) ?(record_evictions = true)
    ?(on_fill = fun ~index:_ _ -> ()) ?(count_from = 0) geometry ~mode
    (stream : Access_stream.t) =
  let owned_tables = match tables with None -> Some (prepare stream) | Some _ -> None in
  let tbl = match tables with Some t -> t | None -> Option.get owned_tables in
  let nd j = Scratch.get tbl.next_demand j and np j = Scratch.get tbl.next_prefetch j in
  let sets = Geometry.sets geometry and ways = geometry.Geometry.ways in
  let set_lo, set_hi = match set_range with None -> (0, sets) | Some r -> r in
  if set_lo < 0 || set_hi > sets || set_lo > set_hi then
    invalid_arg
      (Printf.sprintf "Belady.simulate: set range [%d,%d) outside [0,%d)" set_lo set_hi sets);
  (* Per-slot resident line and its most recent access index; only the
     [set_lo, set_hi) slice is ever touched, so sharded runs could slim
     this, but sets*ways words is negligible next to the tables. *)
  let tags = Array.make (sets * ways) (-1) in
  let last_idx = Array.make (sets * ways) (-1) in
  let seen = Hashtbl.create 65536 in
  let demand_accesses = ref 0 in
  let demand_misses = ref 0 in
  let demand_misses_cold = ref 0 in
  let prefetch_accesses = ref 0 in
  let prefetch_fills = ref 0 in
  let evictions = ref [] in
  let n_evictions = ref 0 in
  let fills = ref [||] in
  let fills_len = ref 0 in
  let push_fill i =
    if record_fills then begin
      if !fills_len = Array.length !fills then begin
        let bigger = Array.make (max 64 (2 * !fills_len)) 0 in
        Array.blit !fills 0 bigger 0 !fills_len;
        fills := bigger
      end;
      !fills.(!fills_len) <- i;
      incr fills_len
    end
  in
  (* Way index or [-1]: option results would be the loop's only
     per-access allocation. *)
  let find_way set line =
    let rec go way =
      if way >= ways then -1
      else if tags.((set * ways) + way) = line then way
      else go (way + 1)
    in
    go 0
  in
  let free_way set =
    let rec go way =
      if way >= ways then -1
      else if tags.((set * ways) + way) = -1 then way
      else go (way + 1)
    in
    go 0
  in
  (* Victim selection; see the .mli for the Demand-MIN rule. *)
  let choose_victim set =
    let best_way = ref 0 in
    (match mode with
    | Min ->
      let best_next = ref (-1) in
      for way = 0 to ways - 1 do
        let j = last_idx.((set * ways) + way) in
        let next = min (nd j) (np j) in
        if next > !best_next then begin
          best_next := next;
          best_way := way
        end
      done
    | Demand_min ->
      (* Class A: next reference is a prefetch (or none at all); evict
         the one whose prefetch is farthest.  Class B fallback: farthest
         next demand. *)
      let best_a = ref (-1) and best_a_key = ref (-1) in
      let best_b = ref (-1) and best_b_key = ref (-1) in
      for way = 0 to ways - 1 do
        let j = last_idx.((set * ways) + way) in
        let ndj = nd j and npj = np j in
        if npj < ndj || (ndj = infinity_idx && npj = infinity_idx) then begin
          if npj > !best_a_key || !best_a < 0 then begin
            best_a_key := npj;
            best_a := way
          end
        end
        else if ndj > !best_b_key then begin
          best_b_key := ndj;
          best_b := way
        end
      done;
      best_way := (if !best_a >= 0 then !best_a else !best_b));
    !best_way
  in
  Access_stream.iteri
    (fun i acc ->
      let line = Access.packed_line acc in
      let set = Geometry.set_of_line geometry line in
      if set >= set_lo && set < set_hi then begin
        let counted = i >= count_from in
        let is_demand = Access.packed_is_demand acc in
        (if is_demand then (if counted then incr demand_accesses)
         else if counted then incr prefetch_accesses);
        let hit_way = find_way set line in
        if hit_way >= 0 then last_idx.((set * ways) + hit_way) <- i
        else begin
          on_fill ~index:i acc;
          push_fill i;
          (if is_demand then begin
             if counted then incr demand_misses;
             if not (Hashtbl.mem seen line) then begin
               Hashtbl.add seen line ();
               if counted then incr demand_misses_cold
             end
           end
           else begin
             Hashtbl.replace seen line ();
             if counted then incr prefetch_fills
           end);
          let way =
            let free = free_way set in
            if free >= 0 then free
            else begin
              let way = choose_victim set in
              let slot = (set * ways) + way in
              let j = last_idx.(slot) in
              let next =
                let ndj = nd j and npj = np j in
                if ndj = infinity_idx && npj = infinity_idx then Never
                else if npj < ndj then Next_prefetch
                else Next_demand
              in
              if record_evictions then
                evictions :=
                  { at = i; line = tags.(slot); set; last_use = j; next } :: !evictions;
              incr n_evictions;
              way
            end
          in
          let slot = (set * ways) + way in
          tags.(slot) <- line;
          last_idx.(slot) <- i
        end
      end)
    stream;
  (match owned_tables with Some t -> close_tables t | None -> ());
  {
    mode;
    demand_accesses = !demand_accesses;
    demand_misses = !demand_misses;
    demand_misses_cold = !demand_misses_cold;
    prefetch_accesses = !prefetch_accesses;
    prefetch_fills = !prefetch_fills;
    n_evictions = !n_evictions;
    evictions = Array.of_list (List.rev !evictions);
    fills = Array.sub !fills 0 !fills_len;
  }

let merge = function
  | [] -> invalid_arg "Belady.merge: empty"
  | first :: _ as results ->
      let mode = first.mode in
      List.iter
        (fun r -> if r.mode <> mode then invalid_arg "Belady.merge: mixed modes")
        results;
      let evictions = Array.concat (List.map (fun r -> r.evictions) results) in
      (* Each access index fills at most one set, so [at] / fill indices
         are unique across shards and the merged order is exactly the
         unsharded stream order. *)
      Array.sort (fun a b -> compare a.at b.at) evictions;
      let fills = Array.concat (List.map (fun r -> r.fills) results) in
      Array.sort (fun (a : int) b -> compare a b) fills;
      {
        mode;
        demand_accesses = List.fold_left (fun a r -> a + r.demand_accesses) 0 results;
        demand_misses = List.fold_left (fun a r -> a + r.demand_misses) 0 results;
        demand_misses_cold =
          List.fold_left (fun a r -> a + r.demand_misses_cold) 0 results;
        prefetch_accesses =
          List.fold_left (fun a r -> a + r.prefetch_accesses) 0 results;
        prefetch_fills = List.fold_left (fun a r -> a + r.prefetch_fills) 0 results;
        n_evictions = List.fold_left (fun a r -> a + r.n_evictions) 0 results;
        evictions;
        fills;
      }

let mpki result ~instructions =
  if instructions = 0 then 0.0
  else 1000.0 *. Float.of_int result.demand_misses /. Float.of_int instructions
