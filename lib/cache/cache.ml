module Addr = Ripple_isa.Addr

(* Way state encoding in [state]: *)
let st_cold = 0 (* never held a line *)
let st_hinted = 1 (* emptied by a Ripple invalidation *)
let st_valid = 2

type t = {
  name : string;
  geom : Geometry.t;
  sets : int;
  ways : int;
  tags : int array; (* line number per slot, dense [set * ways + way] *)
  state : int array;
  policy : Policy.t;
  stats : Stats.t;
  seen : (int, unit) Hashtbl.t; (* lines ever referenced, for cold misses *)
}

type result = Hit | Miss

let create ?name ~geometry ~policy () =
  let sets = Geometry.sets geometry and ways = geometry.Geometry.ways in
  let policy = policy ~sets ~ways in
  let name = match name with Some n -> n | None -> policy.Policy.name in
  {
    name;
    geom = geometry;
    sets;
    ways;
    tags = Array.make (sets * ways) (-1);
    state = Array.make (sets * ways) st_cold;
    policy;
    stats = Stats.create ();
    seen = Hashtbl.create 65536;
  }

let geometry t = t.geom
let stats t = t.stats
let policy_name t = t.name
let duel t = t.policy.Policy.duel
let may_bypass t = t.policy.Policy.may_bypass

let slot t set way = (set * t.ways) + way

(* The lookup helpers return the way index or [-1] rather than an
   option, and recurse at top level rather than through an inner [go]:
   both the option result and the capturing closure would otherwise be
   a heap allocation on every cache access. *)
let rec find_way_from t set line way =
  if way >= t.ways then -1
  else begin
    let s = slot t set way in
    if t.state.(s) = st_valid && t.tags.(s) = line then way
    else find_way_from t set line (way + 1)
  end

let find_way t set line = find_way_from t set line 0

let rec find_state_from t set target way =
  if way >= t.ways then -1
  else if t.state.(slot t set way) = target then way
  else find_state_from t set target (way + 1)

let find_state t set target = find_state_from t set target 0

let contains t line =
  let set = Geometry.set_of_line t.geom line in
  find_way t set line >= 0

(* Install [line] into [set]; chooses the fill way per the documented
   priority and updates statistics. *)
let fill t set (acc : Access.packed) =
  let way =
    let cold = find_state t set st_cold in
    if cold >= 0 then cold
    else begin
      let hinted = find_state t set st_hinted in
      if hinted >= 0 then begin
        t.stats.Stats.replacement_decisions <- t.stats.Stats.replacement_decisions + 1;
        t.stats.Stats.hinted_fills <- t.stats.Stats.hinted_fills + 1;
        hinted
      end
      else begin
        let way = t.policy.Policy.victim ~set in
        assert (way >= 0 && way < t.ways);
        let s = slot t set way in
        assert (t.state.(s) = st_valid);
        t.stats.Stats.replacement_decisions <- t.stats.Stats.replacement_decisions + 1;
        t.stats.Stats.evictions <- t.stats.Stats.evictions + 1;
        t.policy.Policy.on_eviction ~set ~way ~line:t.tags.(s);
        way
      end
    end
  in
  let s = slot t set way in
  t.tags.(s) <- Access.packed_line acc;
  t.state.(s) <- st_valid;
  t.policy.Policy.on_fill ~set ~way acc

let access_packed t (acc : Access.packed) =
  let line = Access.packed_line acc in
  let set = Geometry.set_of_line t.geom line in
  if Access.packed_is_demand acc then begin
    t.stats.Stats.demand_accesses <- t.stats.Stats.demand_accesses + 1;
    let way = find_way t set line in
    if way >= 0 then begin
      t.policy.Policy.on_hit ~set ~way acc;
      Hit
    end
    else begin
      t.stats.Stats.demand_misses <- t.stats.Stats.demand_misses + 1;
      if not (Hashtbl.mem t.seen line) then begin
        Hashtbl.add t.seen line ();
        t.stats.Stats.demand_misses_cold <- t.stats.Stats.demand_misses_cold + 1
      end;
      (match t.policy.Policy.fill_decision ~set acc with
      | `Install -> fill t set acc
      | `Bypass -> t.stats.Stats.fill_bypasses <- t.stats.Stats.fill_bypasses + 1);
      Miss
    end
  end
  else begin
    t.stats.Stats.prefetch_accesses <- t.stats.Stats.prefetch_accesses + 1;
    if find_way t set line >= 0 then Hit
    else begin
      Hashtbl.replace t.seen line ();
      (match t.policy.Policy.fill_decision ~set acc with
      | `Install ->
        t.stats.Stats.prefetch_fills <- t.stats.Stats.prefetch_fills + 1;
        fill t set acc
      | `Bypass -> t.stats.Stats.fill_bypasses <- t.stats.Stats.fill_bypasses + 1);
      Miss
    end
  end

let access t (acc : Access.t) = access_packed t (Access.pack acc)

let invalidate t line =
  let set = Geometry.set_of_line t.geom line in
  let way = find_way t set line in
  if way >= 0 then begin
    let s = slot t set way in
    t.state.(s) <- st_hinted;
    t.tags.(s) <- -1;
    t.stats.Stats.invalidate_hits <- t.stats.Stats.invalidate_hits + 1;
    t.policy.Policy.on_invalidate ~set ~way
  end
  else t.stats.Stats.invalidate_misses <- t.stats.Stats.invalidate_misses + 1

let demote t line =
  let set = Geometry.set_of_line t.geom line in
  let way = find_way t set line in
  if way >= 0 then begin
    t.stats.Stats.demotes <- t.stats.Stats.demotes + 1;
    t.policy.Policy.demote ~set ~way
  end
  else t.stats.Stats.invalidate_misses <- t.stats.Stats.invalidate_misses + 1

let flush t =
  Array.fill t.state 0 (Array.length t.state) st_cold;
  Array.fill t.tags 0 (Array.length t.tags) (-1)

let save t =
  let tags' = Array.copy t.tags in
  let state' = Array.copy t.state in
  let stats' = Stats.copy t.stats in
  let seen' = Hashtbl.copy t.seen in
  let restore_policy = t.policy.Policy.save () in
  fun () ->
    Array.blit tags' 0 t.tags 0 (Array.length t.tags);
    Array.blit state' 0 t.state 0 (Array.length t.state);
    Stats.copy_into ~src:stats' ~dst:t.stats;
    Hashtbl.reset t.seen;
    Hashtbl.iter (fun line () -> Hashtbl.replace t.seen line ()) seen';
    restore_policy ()

let resident_lines t =
  let acc = ref [] in
  for s = Array.length t.tags - 1 downto 0 do
    if t.state.(s) = st_valid then acc := t.tags.(s) :: !acc
  done;
  !acc

let occupancy t ~set =
  let n = ref 0 in
  for way = 0 to t.ways - 1 do
    if t.state.(slot t set way) = st_valid then incr n
  done;
  !n
