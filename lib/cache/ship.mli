(** SHiP: signature-based hit prediction (Wu et al., MICRO 2011) — one of
    the learned data-cache policies the paper's related work surveys
    (§VI).

    SHiP associates each fill with a signature (here the hashed line
    address of the access, the I-cache analogue of its PC signature) and
    learns, with a table of saturating counters, whether fills from that
    signature are ever re-referenced.  Fills whose signature predicts
    "no re-reference" insert at distant RRPV, making them the preferred
    victims — SRRIP's insertion policy made signature-adaptive.

    Like the other data-cache policies, it cannot beat LRU on I-cache
    traffic (§II-D): instruction lines are almost all re-referenced, so
    the predictor saturates towards "re-used" and the policy collapses
    into SRRIP. *)

val make : Policy.factory

val table_entries : int
