(** Hawkeye / Harmony replacement (Jain & Lin 2016, 2018).

    Hawkeye replays Belady's optimal policy on sampled access history
    (OPTgen occupancy vectors) and trains a PC-indexed predictor that
    classifies the source of each access as cache-friendly or
    cache-averse; averse lines are inserted eviction-first.  Harmony is
    the prefetch-aware refinement: usage intervals that end in a prefetch
    need not be cached (Demand-MIN), so their PC trains towards averse.

    [~harmony:true] (default) enables the prefetch-aware training.

    [~ehc:true] adds the Expected-Hit-Count victim refinement
    (Vakil-Ghahani et al. 2018): hits per resident line are counted, a
    PC-indexed table learns each source's expected hit count on
    eviction, and victim selection breaks highest-RRPV ties towards the
    line with the fewest expected *remaining* hits.  A {!Dueling}
    component arbitrates plain vs. refined victim selection per set;
    [max_hits] (default 7) saturates the hit counters.

    §II-D explains why this family cannot help the I-cache: an
    instruction PC maps to exactly one line, whose behaviour mixes
    friendly and averse phases, so the predictor collapses to "almost
    everything friendly" and the policy degenerates to LRU — which is
    what this implementation reproduces. *)

val make : ?harmony:bool -> ?ehc:bool -> ?max_hits:int -> unit -> Policy.factory

val predictor_entries : int
val sampler_associativity : int
val ehc_entries : int

val stats_friendly_fraction : unit -> float
(** Fraction of predictor lookups since the last [make] that returned
    cache-friendly — the paper reports > 99 % for I-cache traffic.
    Diagnostic; reset when a new policy instance is created. *)
