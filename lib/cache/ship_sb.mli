(** SHiP-lite with streaming bypass.

    The hardware-budget rendition of SHiP used in the ChampSim
    replacement championships: a 6-bit PC signature indexes a 64-entry
    bank of 2-bit outcome counters (never-reused signatures insert
    eviction-first, proven-reused ones near-MRU), the middle ground
    duels SRRIP against bimodal insertion on the shared {!Dueling}
    substrate — and a per-set stride detector opens a short streaming
    window during which fills from dead signatures *bypass* the cache
    entirely, exercising [Policy.fill_decision].

    The duel is trained in [fill_decision], which the cache core
    consults on every miss, so bypassed misses still vote. *)

val make : ?bypass:bool -> ?throttle:int -> ?stream_window:int -> unit -> Policy.factory
(** [bypass] (default [true]) enables the streaming-bypass path —
    [false] degrades the policy to pure SHiP-lite over DRRIP insertion;
    [throttle] is the bimodal rate (default 32); [stream_window]
    (default 8) is how many misses a detected stream keeps the bypass
    window open.
    @raise Invalid_argument if [throttle] or [stream_window] < 1. *)

val sig_bits : int
val table_entries : int
