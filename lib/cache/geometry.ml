module Addr = Ripple_isa.Addr

type t = { size_bytes : int; ways : int }

let sets t = t.size_bytes / (t.ways * Addr.line_size)
let lines t = t.size_bytes / Addr.line_size

let v ~size_bytes ~ways =
  let t = { size_bytes; ways } in
  let s = sets t in
  assert (s > 0 && s land (s - 1) = 0);
  assert (s * ways * Addr.line_size = size_bytes);
  t

let set_of_line t line = Addr.set_index line ~sets:(sets t)
let l1i = v ~size_bytes:(32 * 1024) ~ways:8
let l1d = v ~size_bytes:(32 * 1024) ~ways:8
let l2 = v ~size_bytes:(1024 * 1024) ~ways:16
let l3 = v ~size_bytes:(8 * 1024 * 1024) ~ways:16

let pp fmt t =
  Format.fprintf fmt "%d KiB, %d-way, %d sets" (t.size_bytes / 1024) t.ways (sets t)
