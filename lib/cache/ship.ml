let table_entries = 4096
let counter_max = 3
let rrpv_max = (1 lsl Srrip.rrpv_bits) - 1
let rrpv_long = rrpv_max - 1

let mix x =
  let x = x * 0x9E3779B1 in
  x lxor (x lsr 16)

let make ~sets ~ways =
  let rrpv = Array.make (sets * ways) rrpv_max in
  (* SHCT: signature hit counters; per-slot bookkeeping of the filling
     signature and whether the line was re-referenced. *)
  let shct = Array.make table_entries 1 in
  let fill_sig = Array.make (sets * ways) 0 in
  let reused = Array.make (sets * ways) false in
  let index signature = mix signature land (table_entries - 1) in
  let on_hit ~set ~way _ =
    let slot = (set * ways) + way in
    if not reused.(slot) then begin
      reused.(slot) <- true;
      let i = index fill_sig.(slot) in
      shct.(i) <- min counter_max (shct.(i) + 1)
    end;
    rrpv.(slot) <- 0
  in
  let on_fill ~set ~way (acc : Access.packed) =
    let slot = (set * ways) + way in
    let pc = Access.packed_pc acc in
    fill_sig.(slot) <- pc;
    reused.(slot) <- false;
    (* Never-reused signatures insert eviction-first. *)
    rrpv.(slot) <- (if shct.(index pc) = 0 then rrpv_max else rrpv_long)
  in
  let on_eviction ~set ~way ~line:_ =
    let slot = (set * ways) + way in
    if not reused.(slot) then begin
      let i = index fill_sig.(slot) in
      shct.(i) <- max 0 (shct.(i) - 1)
    end
  in
  {
    Policy.name = "ship";
    on_hit;
    on_fill;
    fill_decision = Policy.nop_fill_decision;
    may_bypass = false;
    victim = (fun ~set -> Srrip.rrpv_victim rrpv ~ways ~set);
    on_eviction;
    on_invalidate = (fun ~set ~way -> rrpv.((set * ways) + way) <- rrpv_max);
    demote = (fun ~set ~way -> rrpv.((set * ways) + way) <- rrpv_max);
    save =
      (fun () ->
        let rrpv' = Array.copy rrpv in
        let shct' = Array.copy shct in
        let fill_sig' = Array.copy fill_sig in
        let reused' = Array.copy reused in
        fun () ->
          Array.blit rrpv' 0 rrpv 0 (Array.length rrpv);
          Array.blit shct' 0 shct 0 (Array.length shct);
          Array.blit fill_sig' 0 fill_sig 0 (Array.length fill_sig);
          Array.blit reused' 0 reused 0 (Array.length reused));
    storage_bits =
      (sets * ways * Srrip.rrpv_bits) (* RRPV *)
      + (table_entries * 2) (* SHCT *)
      + (sets * ways * 14) (* per-line signature *)
      + (sets * ways) (* reuse bit *);
    duel = None;
  }
