let storage_bits ~sets ~ways = sets * ways

let make ~sets ~ways =
  (* Recency is a per-slot timestamp from a monotonically increasing
     counter; demotion uses a decreasing counter so demoted lines order
     below every genuine reference. *)
  let stamp = Array.make (sets * ways) 0 in
  let clock = ref 0 in
  let demote_clock = ref (-1) in
  let touch ~set ~way =
    incr clock;
    stamp.((set * ways) + way) <- !clock
  in
  let victim ~set =
    let best = ref 0 and best_stamp = ref max_int in
    for way = 0 to ways - 1 do
      let s = stamp.((set * ways) + way) in
      if s < !best_stamp then begin
        best := way;
        best_stamp := s
      end
    done;
    !best
  in
  {
    Policy.name = "lru";
    on_hit = (fun ~set ~way _ -> touch ~set ~way);
    on_fill = (fun ~set ~way _ -> touch ~set ~way);
    fill_decision = Policy.nop_fill_decision;
    may_bypass = false;
    victim;
    on_eviction = Policy.nop_evict;
    on_invalidate = Policy.nop_way;
    demote =
      (fun ~set ~way ->
        stamp.((set * ways) + way) <- !demote_clock;
        decr demote_clock);
    save =
      (fun () ->
        let stamp' = Array.copy stamp in
        let clock' = !clock and demote_clock' = !demote_clock in
        fun () ->
          Array.blit stamp' 0 stamp 0 (Array.length stamp);
          clock := clock';
          demote_clock := demote_clock');
    storage_bits = storage_bits ~sets ~ways;
    duel = None;
  }
