let rrpv_max = (1 lsl Srrip.rrpv_bits) - 1
let rrpv_long = rrpv_max - 1
let sig_bits = 6
let table_entries = 1 lsl sig_bits
let counter_max = 3
let stride_confident = 3

let mix x =
  let x = x * 0x9E3779B1 in
  x lxor (x lsr 16)

let make ?(bypass = true) ?(throttle = 32) ?(stream_window = 8) () ~sets ~ways =
  if throttle < 1 then invalid_arg "Ship_sb.make: throttle must be >= 1";
  if stream_window < 1 then invalid_arg "Ship_sb.make: stream_window must be >= 1";
  let rrpv = Array.make (sets * ways) rrpv_max in
  (* SHiP-lite: a 6-bit PC signature indexes a small bank of 2-bit
     outcome counters; per-slot bookkeeping of the filling signature and
     whether the line was ever re-referenced trains it. *)
  let outcome = Array.make table_entries 1 in
  let fill_sig = Array.make (sets * ways) 0 in
  let reused = Array.make (sets * ways) false in
  let signature pc = mix pc land (table_entries - 1) in
  (* Per-set streaming detector: a stable non-zero stride between
     consecutive misses opens a window of [stream_window] misses during
     which dead-signature fills may bypass the cache entirely. *)
  let last_line = Array.make sets min_int in
  let stride = Array.make sets 0 in
  let confidence = Array.make sets 0 in
  let window = Array.make sets 0 in
  (* Flavour A: SRRIP insertion.  Flavour B: bimodal (BRRIP) insertion.
     Trained in [fill_decision] so bypassed misses still vote. *)
  let duel = Dueling.make ~sets () in
  let brrip_counter = ref 0 in
  let update_stream set line =
    let d = if last_line.(set) = min_int then 0 else line - last_line.(set) in
    last_line.(set) <- line;
    if d <> 0 && d = stride.(set) then
      confidence.(set) <- min stride_confident (confidence.(set) + 1)
    else begin
      stride.(set) <- d;
      confidence.(set) <- 0
    end;
    if confidence.(set) >= stride_confident then window.(set) <- stream_window
    else if window.(set) > 0 then window.(set) <- window.(set) - 1
  in
  let fill_decision ~set (acc : Access.packed) =
    Dueling.train_miss duel ~set;
    update_stream set (Access.packed_line acc);
    if bypass && window.(set) > 0 && outcome.(signature (Access.packed_pc acc)) = 0 then
      `Bypass
    else `Install
  in
  let on_hit ~set ~way _ =
    let slot = (set * ways) + way in
    if not reused.(slot) then begin
      reused.(slot) <- true;
      let i = fill_sig.(slot) in
      outcome.(i) <- min counter_max (outcome.(i) + 1)
    end;
    rrpv.(slot) <- 0
  in
  let on_fill ~set ~way (acc : Access.packed) =
    let slot = (set * ways) + way in
    let s = signature (Access.packed_pc acc) in
    fill_sig.(slot) <- s;
    reused.(slot) <- false;
    let base =
      if Dueling.selects_b duel ~set then begin
        incr brrip_counter;
        if !brrip_counter mod throttle = 0 then rrpv_long else rrpv_max
      end
      else rrpv_long
    in
    (* The outcome counter overrides the duel at its extremes: dead
       signatures insert eviction-first, proven-reused ones near-MRU. *)
    let insertion =
      if outcome.(s) = 0 then rrpv_max
      else if outcome.(s) = counter_max then 0
      else base
    in
    rrpv.(slot) <- insertion
  in
  let on_eviction ~set ~way ~line:_ =
    let slot = (set * ways) + way in
    if not reused.(slot) then begin
      let i = fill_sig.(slot) in
      outcome.(i) <- max 0 (outcome.(i) - 1)
    end
  in
  {
    Policy.name = "ship-sb";
    on_hit;
    on_fill;
    fill_decision;
    may_bypass = bypass;
    victim = (fun ~set -> Srrip.rrpv_victim rrpv ~ways ~set);
    on_eviction;
    on_invalidate = (fun ~set ~way -> rrpv.((set * ways) + way) <- rrpv_max);
    demote = (fun ~set ~way -> rrpv.((set * ways) + way) <- rrpv_max);
    save =
      (fun () ->
        let rrpv' = Array.copy rrpv in
        let outcome' = Array.copy outcome in
        let fill_sig' = Array.copy fill_sig in
        let reused' = Array.copy reused in
        let last_line' = Array.copy last_line in
        let stride' = Array.copy stride in
        let confidence' = Array.copy confidence in
        let window' = Array.copy window in
        let brrip_counter' = !brrip_counter in
        let restore_duel = Dueling.save duel in
        fun () ->
          Array.blit rrpv' 0 rrpv 0 (Array.length rrpv);
          Array.blit outcome' 0 outcome 0 table_entries;
          Array.blit fill_sig' 0 fill_sig 0 (Array.length fill_sig);
          Array.blit reused' 0 reused 0 (Array.length reused);
          Array.blit last_line' 0 last_line 0 sets;
          Array.blit stride' 0 stride 0 sets;
          Array.blit confidence' 0 confidence 0 sets;
          Array.blit window' 0 window 0 sets;
          brrip_counter := brrip_counter';
          restore_duel ());
    storage_bits =
      (sets * ways * Srrip.rrpv_bits) (* RRPV *)
      + (table_entries * 2) (* outcome counters *)
      + (sets * ways * sig_bits) (* per-line signature *)
      + (sets * ways) (* reuse bit *)
      + (sets * (16 + 8 + 2 + 4)) (* stream detector: last line, stride, conf, window *)
      + Dueling.storage_bits duel;
    duel = Some duel;
  }
