let rrpv_max = (1 lsl Srrip.rrpv_bits) - 1
let rrpv_long = rrpv_max - 1
let temp_max = 3

let mix x =
  let x = x * 0x9E3779B1 in
  x lxor (x lsr 16)

let make ?(table_bits = 12) ?(hot = 2) () ~sets ~ways =
  if table_bits < 4 || table_bits > 20 then
    invalid_arg "Trrip.make: table_bits must be in [4,20]";
  if hot < 1 || hot > temp_max then
    invalid_arg (Printf.sprintf "Trrip.make: hot must be in [1,%d]" temp_max);
  let entries = 1 lsl table_bits in
  let rrpv = Array.make (sets * ways) rrpv_max in
  (* Per-PC 2-bit temperature counters: the online stand-in for TRRIP's
     profile-derived code temperature.  A line re-referenced while
     resident heats its fetch PC; a line evicted untouched cools it. *)
  let temp = Array.make entries 1 in
  let fill_pc = Array.make (sets * ways) 0 in
  let reused = Array.make (sets * ways) false in
  let index pc = mix pc land (entries - 1) in
  (* Flavour A: plain SRRIP insertion.  Flavour B: temperature-guided
     insertion.  Followers adopt whichever wins on leader-set misses. *)
  let duel = Dueling.make ~sets () in
  let on_hit ~set ~way _ =
    let slot = (set * ways) + way in
    if not reused.(slot) then begin
      reused.(slot) <- true;
      let i = index fill_pc.(slot) in
      temp.(i) <- min temp_max (temp.(i) + 1)
    end;
    rrpv.(slot) <- 0
  in
  let on_fill ~set ~way (acc : Access.packed) =
    Dueling.train_miss duel ~set;
    let slot = (set * ways) + way in
    let pc = Access.packed_pc acc in
    fill_pc.(slot) <- pc;
    reused.(slot) <- false;
    let insertion =
      if Dueling.selects_b duel ~set then begin
        let t = temp.(index pc) in
        if t >= hot then 1 (* hot code: near-MRU *)
        else if t = 0 then rrpv_max (* cold code: eviction-first *)
        else rrpv_long
      end
      else rrpv_long
    in
    rrpv.(slot) <- insertion
  in
  let on_eviction ~set ~way ~line:_ =
    let slot = (set * ways) + way in
    if not reused.(slot) then begin
      let i = index fill_pc.(slot) in
      temp.(i) <- max 0 (temp.(i) - 1)
    end
  in
  {
    Policy.name = "trrip";
    on_hit;
    on_fill;
    fill_decision = Policy.nop_fill_decision;
    may_bypass = false;
    victim = (fun ~set -> Srrip.rrpv_victim rrpv ~ways ~set);
    on_eviction;
    on_invalidate = (fun ~set ~way -> rrpv.((set * ways) + way) <- rrpv_max);
    demote = (fun ~set ~way -> rrpv.((set * ways) + way) <- rrpv_max);
    save =
      (fun () ->
        let rrpv' = Array.copy rrpv in
        let temp' = Array.copy temp in
        let fill_pc' = Array.copy fill_pc in
        let reused' = Array.copy reused in
        let restore_duel = Dueling.save duel in
        fun () ->
          Array.blit rrpv' 0 rrpv 0 (Array.length rrpv);
          Array.blit temp' 0 temp 0 entries;
          Array.blit fill_pc' 0 fill_pc 0 (Array.length fill_pc);
          Array.blit reused' 0 reused 0 (Array.length reused);
          restore_duel ());
    storage_bits =
      (sets * ways * Srrip.rrpv_bits) (* RRPV *)
      + (entries * 2) (* temperature counters *)
      + (sets * ways * 14) (* per-line fill signature *)
      + (sets * ways) (* reuse bit *)
      + Dueling.storage_bits duel;
    duel = Some duel;
  }
