(** TRRIP: temperature-based re-reference interval prediction for
    instruction caches (Mehta et al. 2025; PAPERS.md).

    The published policy maps profile-derived code *temperature* (how
    hot a function's working set runs) onto RRIP insertion positions.
    This online rendition learns the temperature in hardware instead of
    reading it from a profile: a PC-indexed bank of 2-bit saturating
    counters heats when a line from that PC is re-referenced while
    resident and cools when it is evicted untouched.  Hot PCs insert
    near-MRU (RRPV 1), cold PCs insert eviction-first, everything else
    inserts at SRRIP's long position — and a {!Dueling} component duels
    the temperature-guided insertion against plain SRRIP insertion, so
    the policy can never lose more than its leader sets when the
    temperature signal is wrong for a workload. *)

val make : ?table_bits:int -> ?hot:int -> unit -> Policy.factory
(** [table_bits] sizes the temperature table at [2^table_bits] entries
    (default 12); [hot] is the counter value at or above which a PC
    counts as hot (default 2 of a 0..3 range).
    @raise Invalid_argument if [table_bits] is outside [4..20] or [hot]
    outside [1..3]. *)
