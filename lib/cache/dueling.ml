(* Reusable set-dueling substrate (Qureshi et al. 2007).

   A fixed, sparse subset of sets is dedicated to each of two competing
   flavours ("leaders"); every other set ("followers") adopts whichever
   flavour is currently winning, as tracked by one saturating PSEL
   counter trained on leader-set misses.  The default geometry — one
   leader per flavour every [spacing] sets, a 10-bit PSEL initialised to
   its midpoint — reproduces DRRIP's historical inline constants
   exactly, which the pinned byte-identity test relies on. *)

type role = Leader_a | Leader_b | Follower

type t = {
  spacing : int;
  n_leaders : int;
  psel_bits : int;
  psel_max : int;
  mutable psel : int;
  (* Telemetry: per-flavour leader misses and follower-selection flips,
     surfaced as the ripple_duel_* metric families. *)
  mutable a_misses : int;
  mutable b_misses : int;
  mutable flips : int;
  mutable last_b : bool; (* follower selection at the last training *)
}

let make ~sets ?(spacing = 16) ?(psel_bits = 10) () =
  if spacing < 2 then invalid_arg "Dueling.make: spacing must be >= 2";
  if psel_bits < 1 || psel_bits > 30 then
    invalid_arg "Dueling.make: psel_bits must be in [1,30]";
  let psel_max = (1 lsl psel_bits) - 1 in
  {
    spacing;
    n_leaders = max 1 (sets / spacing);
    psel_bits;
    psel_max;
    psel = psel_max / 2;
    a_misses = 0;
    b_misses = 0;
    flips = 0;
    last_b = false;
  }

let role t ~set =
  let q = set / t.spacing in
  if set mod t.spacing = 0 && q < t.n_leaders then Leader_a
  else if set mod t.spacing = t.spacing / 2 && q < t.n_leaders then Leader_b
  else Follower

let follower_selects_b t = t.psel > t.psel_max / 2

let train_miss t ~set =
  (match role t ~set with
  | Leader_a ->
    t.a_misses <- t.a_misses + 1;
    t.psel <- min t.psel_max (t.psel + 1)
  | Leader_b ->
    t.b_misses <- t.b_misses + 1;
    t.psel <- max 0 (t.psel - 1)
  | Follower -> ());
  let b = follower_selects_b t in
  if b <> t.last_b then begin
    t.flips <- t.flips + 1;
    t.last_b <- b
  end

let selects_b t ~set =
  match role t ~set with
  | Leader_a -> false
  | Leader_b -> true
  | Follower -> follower_selects_b t

let psel t = t.psel
let psel_bits t = t.psel_bits
let a_misses t = t.a_misses
let b_misses t = t.b_misses
let flips t = t.flips
let storage_bits t = t.psel_bits

let save t =
  let psel' = t.psel
  and a' = t.a_misses
  and b' = t.b_misses
  and flips' = t.flips
  and last_b' = t.last_b in
  fun () ->
    t.psel <- psel';
    t.a_misses <- a';
    t.b_misses <- b';
    t.flips <- flips';
    t.last_b <- last_b'
