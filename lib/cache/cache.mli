(** Set-associative cache core with pluggable replacement and support for
    Ripple's [invalidate]/[demote] hint instructions.

    Fill priority on a miss: a cold (never-used) way first, then a way
    freed by a Ripple hint (counted as a software-initiated replacement
    decision — the coverage numerator of §III-C), and only then the
    policy's victim (a hardware replacement decision).

    Prefetch semantics follow the usual front-end model: a prefetch that
    hits is a no-op; a prefetch that misses installs the line tagged as a
    prefetch fill.

    On every miss the policy's [fill_decision] is consulted before a way
    is chosen; [`Bypass] serves the access without installing the line
    (counted in [Stats.fill_bypasses]; bypassed prefetches are not
    prefetch fills). *)

module Addr := Ripple_isa.Addr

type t

type result = Hit | Miss

val create : ?name:string -> geometry:Geometry.t -> policy:Policy.factory -> unit -> t
val geometry : t -> Geometry.t
val stats : t -> Stats.t
val policy_name : t -> string

val duel : t -> Dueling.t option
(** The policy's set-dueling component, when it has one — read-only
    telemetry for the [ripple_duel_*] metric families. *)

val may_bypass : t -> bool
(** Whether the policy's [fill_decision] can ever bypass — static
    must-hit reasoning is unsound for such caches. *)

val access_packed : t -> Access.packed -> result
(** Performs a reference, filling on a miss.  [Hit]/[Miss] reflects
    presence before any fill.  Allocation-free: packed accesses flow to
    the policy callbacks without ever being boxed. *)

val access : t -> Access.t -> result
(** [access t acc = access_packed t (Access.pack acc)] — boxed
    convenience wrapper for tests and small drivers. *)

val contains : t -> Addr.line -> bool
(** Presence test with no side effects. *)

val invalidate : t -> Addr.line -> unit
(** Executes a Ripple [Invalidate] hint: drops the line from this cache
    only (no coherence action, mirroring the proposed instruction). *)

val demote : t -> Addr.line -> unit
(** Executes a Ripple [Demote] hint: asks the policy to make the line the
    preferred next victim. *)

val flush : t -> unit
(** Empties the cache and replacement state is left to age out naturally;
    statistics are preserved. *)

val save : t -> unit -> unit
(** [save t] deep-copies the complete cache state — contents, way
    states, statistics, cold-miss history and policy metadata — and
    returns a thunk that restores it.  The restore may run any number of
    times: checkpointed warm-up rewinds to the same snapshot before
    every sampled window. *)

val resident_lines : t -> Addr.line list
(** All currently valid lines (diagnostics and tests). *)

val occupancy : t -> set:int -> int
(** Number of valid ways in a set. *)
