(** Cache access descriptors.

    Every L1 I-cache reference is either a {e demand} fetch (the core
    actually executes bytes from the line) or a {e prefetch} issued by the
    front-end prefetcher.  The distinction is what prefetch-aware
    replacement (Demand-MIN, Harmony) and the paper's Observations #1/#2
    hinge on: only demand misses cost cycles, and wastefully prefetched
    lines should be evicted first. *)

module Addr := Ripple_isa.Addr

type kind = Demand | Prefetch

type t = {
  line : Addr.line;  (** the referenced I-cache line *)
  kind : kind;
  pc : int;
      (** identity of the access source used by learning policies — for
          instruction fetch this is the accessed line itself (the paper's
          §II-D observation that a PC maps to exactly one I-cache line) *)
  block : int;  (** id of the basic block being fetched, for profiling *)
}

val demand : line:Addr.line -> block:int -> t
val prefetch : line:Addr.line -> block:int -> t

val is_demand : t -> bool
val is_prefetch : t -> bool

val pp : Format.formatter -> t -> unit
