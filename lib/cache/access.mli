(** Cache access descriptors.

    Every L1 I-cache reference is either a {e demand} fetch (the core
    actually executes bytes from the line) or a {e prefetch} issued by the
    front-end prefetcher.  The distinction is what prefetch-aware
    replacement (Demand-MIN, Harmony) and the paper's Observations #1/#2
    hinge on: only demand misses cost cycles, and wastefully prefetched
    lines should be evicted first. *)

module Addr := Ripple_isa.Addr

type kind = Demand | Prefetch

type t = {
  line : Addr.line;  (** the referenced I-cache line *)
  kind : kind;
  pc : int;
      (** identity of the access source used by learning policies — for
          instruction fetch this is the accessed line itself (the paper's
          §II-D observation that a PC maps to exactly one I-cache line) *)
  block : int;  (** id of the basic block being fetched, for profiling *)
}

val demand : line:Addr.line -> block:int -> t
val prefetch : line:Addr.line -> block:int -> t

val is_demand : t -> bool
val is_prefetch : t -> bool

val pp : Format.formatter -> t -> unit

(** {1 Packed form}

    The same information squeezed into one immediate [int], so access
    streams can live in flat [int array] chunks ({!Access_stream}) and
    the simulator's hot loops allocate nothing per access.  Layout (63
    usable bits on 64-bit OCaml):

    {v bit 0        kind (0 = demand, 1 = prefetch)
       bits 1-22    block id biased by +1 (so the prefetchers' "no
                    block" id of -1 packs as 0)
       bits 23-62   cache-line number v}

    [pc] is not stored: both constructors above pin [pc = line] (the
    paper's one-PC-one-line observation, §II-D), so it is recomputed on
    unpacking.  Packing is exact for every value the constructors can
    build; [pack]/[unpack] round-trip. *)

type packed = int

val max_packed_line : int
(** Largest packable line number, [2^40 - 1] — ample for the simulated
    address space ({!Ripple_isa.Addr}). *)

val max_packed_block : int
(** Largest packable block id, [2^22 - 2] (the same bound
    {!Ripple_core.Cue_block} assumes); [-1] is also packable. *)

val pack_demand : line:Addr.line -> block:int -> packed
val pack_prefetch : line:Addr.line -> block:int -> packed
val pack : t -> packed
val unpack : packed -> t

val packed_line : packed -> Addr.line
val packed_pc : packed -> int
val packed_block : packed -> int
val packed_kind : packed -> kind
val packed_is_demand : packed -> bool
val packed_is_prefetch : packed -> bool

val pp_packed : Format.formatter -> packed -> unit
