(* Chunked, re-iterable packed access streams.  See the .mli. *)

let chunk_bits = 16
let chunk_entries = 1 lsl chunk_bits
let chunk_mask = chunk_entries - 1

type t = { chunks : int array array; length : int }

let empty = { chunks = [||]; length = 0 }
let length t = t.length

let get t i =
  if i < 0 || i >= t.length then
    invalid_arg (Printf.sprintf "Access_stream.get: index %d out of bounds [0,%d)" i t.length);
  Array.unsafe_get (Array.unsafe_get t.chunks (i lsr chunk_bits)) (i land chunk_mask)

let get_access t i = Access.unpack (get t i)

let iteri f t =
  let i = ref 0 in
  let n = t.length in
  let n_chunks = Array.length t.chunks in
  for c = 0 to n_chunks - 1 do
    let chunk = Array.unsafe_get t.chunks c in
    let stop = min (Array.length chunk) (n - !i) in
    for k = 0 to stop - 1 do
      f !i (Array.unsafe_get chunk k);
      incr i
    done
  done

let iter f t = iteri (fun _ p -> f p) t

let iteri_rev f t =
  for c = Array.length t.chunks - 1 downto 0 do
    let chunk = Array.unsafe_get t.chunks c in
    let base = c lsl chunk_bits in
    let stop = min (Array.length chunk) (t.length - base) in
    for k = stop - 1 downto 0 do
      f (base + k) (Array.unsafe_get chunk k)
    done
  done

let fold_left f init t =
  let acc = ref init in
  iter (fun p -> acc := f !acc p) t;
  !acc

module Builder = struct
  type stream = t

  type t = {
    mutable chunks : int array array; (* all but the last are full *)
    mutable last : int array;
    mutable last_len : int; (* filled entries of [last] *)
    mutable full_len : int; (* total entries in [chunks] *)
  }

  let create () = { chunks = [||]; last = [||]; last_len = 0; full_len = 0 }
  let length b = b.full_len + b.last_len

  let add b p =
    if b.last_len = Array.length b.last then begin
      (* [last] is full (or the initial empty array): retire it. *)
      if b.last_len > 0 then begin
        let n = Array.length b.chunks in
        let bigger = Array.make (n + 1) b.last in
        Array.blit b.chunks 0 bigger 0 n;
        b.chunks <- bigger;
        b.full_len <- b.full_len + b.last_len
      end;
      b.last <- Array.make chunk_entries 0;
      b.last_len <- 0
    end;
    Array.unsafe_set b.last b.last_len p;
    b.last_len <- b.last_len + 1

  let add_access b acc = add b (Access.pack acc)
  let add_demand b ~line ~block = add b (Access.pack_demand ~line ~block)
  let add_prefetch b ~line ~block = add b (Access.pack_prefetch ~line ~block)

  let finish b : stream =
    let length = length b in
    let chunks =
      if b.last_len = 0 then b.chunks
      else begin
        let n = Array.length b.chunks in
        let all = Array.make (n + 1) b.last in
        Array.blit b.chunks 0 all 0 n;
        (* Trim the tail chunk so the stream owns no slack. *)
        all.(n) <- (if b.last_len = chunk_entries then b.last else Array.sub b.last 0 b.last_len);
        all
      end
    in
    (* Reset so reusing the builder cannot alias the frozen chunks. *)
    b.chunks <- [||];
    b.last <- [||];
    b.last_len <- 0;
    b.full_len <- 0;
    { chunks; length }
end

let of_array accesses =
  let b = Builder.create () in
  Array.iter (fun acc -> Builder.add_access b acc) accesses;
  Builder.finish b

let of_list accesses =
  let b = Builder.create () in
  List.iter (fun acc -> Builder.add_access b acc) accesses;
  Builder.finish b

let to_array t = Array.init t.length (fun i -> get_access t i)

module Cursor = struct
  type stream = t
  type t = { stream : stream; mutable pos : int }

  let create stream = { stream; pos = 0 }
  let pos c = c.pos
  let length c = c.stream.length
  let has_next c = c.pos < c.stream.length

  let next c =
    let p = get c.stream c.pos in
    c.pos <- c.pos + 1;
    p

  let peek c = get c.stream c.pos
  let rewind c = c.pos <- 0

  let seek c pos =
    if pos < 0 || pos > c.stream.length then
      invalid_arg (Printf.sprintf "Access_stream.Cursor.seek: %d out of [0,%d]" pos c.stream.length);
    c.pos <- pos
end
