(* Packed access streams over backing-polymorphic [Int_stream]s.  See
   the .mli. *)

module Int_stream = Ripple_util.Int_stream

type backing = Int_stream.backing = Heap | Spill of { dir : string option }

type t = Int_stream.t

let chunk_entries = Int_stream.chunk_entries
let empty = Int_stream.empty
let length = Int_stream.length

let get t i =
  if i < 0 || i >= Int_stream.length t then
    invalid_arg
      (Printf.sprintf "Access_stream.get: index %d out of bounds [0,%d)" i
         (Int_stream.length t));
  Int_stream.unsafe_get t i

let get_access t i = Access.unpack (get t i)

let iter = Int_stream.iter
let iteri = Int_stream.iteri
let iteri_rev = Int_stream.iteri_rev
let fold_left = Int_stream.fold_left
let backing t = if Int_stream.is_spill t then Spill { dir = None } else Heap
let is_spill = Int_stream.is_spill
let byte_size = Int_stream.byte_size
let close = Int_stream.close
let raw t = t
let of_raw t = t

module Builder = struct
  type _stream = t
  type t = Int_stream.Builder.t

  let create ?backing () = Int_stream.Builder.create ?backing ()
  let length = Int_stream.Builder.length
  let add = Int_stream.Builder.add
  let add_access b acc = add b (Access.pack acc)
  let add_demand b ~line ~block = add b (Access.pack_demand ~line ~block)
  let add_prefetch b ~line ~block = add b (Access.pack_prefetch ~line ~block)
  let finish : t -> _stream = Int_stream.Builder.finish
  let abort = Int_stream.Builder.abort
end

let of_array ?backing accesses =
  let b = Builder.create ?backing () in
  Array.iter (fun acc -> Builder.add_access b acc) accesses;
  Builder.finish b

let of_list ?backing accesses =
  let b = Builder.create ?backing () in
  List.iter (fun acc -> Builder.add_access b acc) accesses;
  Builder.finish b

let to_array t = Array.init (length t) (fun i -> get_access t i)

module Cursor = struct
  type _stream = t
  type t = Int_stream.Cursor.t

  let create = Int_stream.Cursor.create
  let pos = Int_stream.Cursor.pos
  let length = Int_stream.Cursor.length
  let has_next = Int_stream.Cursor.has_next
  let next = Int_stream.Cursor.next
  let peek = Int_stream.Cursor.peek
  let rewind = Int_stream.Cursor.rewind

  let seek c pos =
    let n = length c in
    if pos < 0 || pos > n then
      invalid_arg (Printf.sprintf "Access_stream.Cursor.seek: %d out of [0,%d]" pos n);
    Int_stream.Cursor.seek c pos

  let close = Int_stream.Cursor.close
end
