let predictor_entries = 2048
let counter_max = 7
let friendly_threshold = 4
let sampler_associativity = 64 (* history depth per sampled set: 8x ways *)
let rrpv_max = 7

let mix x =
  let x = x * 0x9E3779B1 in
  let x = x lxor (x lsr 16) in
  let x = x * 0xC2B2AE35 in
  x lxor (x lsr 13)

(* Diagnostic: how often the predictor says "friendly". *)
let friendly_lookups = ref 0
let total_lookups = ref 0

let stats_friendly_fraction () =
  if !total_lookups = 0 then 0.0
  else Float.of_int !friendly_lookups /. Float.of_int !total_lookups

(* One sampled set's OPTgen state: a bounded access history plus an
   occupancy vector over the same time window. *)
type sampler = {
  lines : int array; (* line per entry, -1 free *)
  pcs : int array;
  times : int array;
  mutable clock : int; (* per-set access count, the OPTgen time quanta *)
  occupancy : int array; (* ring over the last [sampler_associativity] quanta *)
}

let ehc_entries = 2048

let make ?(harmony = true) ?(ehc = false) ?(max_hits = 7) () ~sets ~ways =
  friendly_lookups := 0;
  total_lookups := 0;
  if max_hits < 1 then invalid_arg "Hawkeye.make: max_hits must be >= 1";
  let predictor = Array.make predictor_entries friendly_threshold in
  let rrpv = Array.make (sets * ways) rrpv_max in
  let last_pc = Array.make (sets * ways) 0 in
  (* EHC refinement (Vakil-Ghahani et al. 2018): count hits per resident
     line, learn a per-PC expected hit count on eviction, and break
     highest-RRPV victim ties towards the line with the fewest expected
     remaining hits.  A set duel arbitrates plain vs. refined victim
     selection; with every tie equal it degenerates to plain Hawkeye. *)
  let hits = Array.make (sets * ways) 0 in
  let ehc_table = Array.make ehc_entries 0 in
  let ehc_duel = if ehc then Some (Dueling.make ~sets ()) else None in
  let ehc_index pc = mix pc land (ehc_entries - 1) in
  let sample_every = 4 in
  let samplers =
    Array.init (sets / sample_every) (fun _ ->
        {
          lines = Array.make sampler_associativity (-1);
          pcs = Array.make sampler_associativity 0;
          times = Array.make sampler_associativity 0;
          clock = 0;
          occupancy = Array.make sampler_associativity 0;
        })
  in
  let sampler_of set = if set mod sample_every = 1 then Some samplers.(set / sample_every) else None in
  let predictor_index pc = mix pc land (predictor_entries - 1) in
  let predict_friendly pc =
    incr total_lookups;
    let friendly = predictor.(predictor_index pc) >= friendly_threshold in
    if friendly then incr friendly_lookups;
    friendly
  in
  let train pc ~friendly =
    let i = predictor_index pc in
    predictor.(i) <-
      (if friendly then min counter_max (predictor.(i) + 1) else max 0 (predictor.(i) - 1))
  in
  (* OPTgen: decide whether Belady (or Demand-MIN under Harmony) would
     have kept [line] across its last usage interval, and train the PC
     that opened the interval accordingly. *)
  let optgen_access sampler (acc : Access.packed) =
    let now = sampler.clock in
    sampler.clock <- now + 1;
    sampler.occupancy.(now mod sampler_associativity) <- 0;
    let line = Access.packed_line acc in
    let found = ref (-1) in
    for i = 0 to sampler_associativity - 1 do
      if sampler.lines.(i) = line then found := i
    done;
    (if !found >= 0 then begin
       let i = !found in
       let t_prev = sampler.times.(i) in
       if now - t_prev < sampler_associativity then begin
         if harmony && Access.packed_is_prefetch acc then
           (* Demand-MIN: an interval closed by a prefetch need not be
              cached — the prefetch re-fetches the line for free. *)
           train sampler.pcs.(i) ~friendly:false
         else begin
           let fits = ref true in
           for q = t_prev to now - 1 do
             if sampler.occupancy.(q mod sampler_associativity) >= ways then fits := false
           done;
           if !fits then begin
             for q = t_prev to now - 1 do
               let slot = q mod sampler_associativity in
               sampler.occupancy.(slot) <- sampler.occupancy.(slot) + 1
             done;
             train sampler.pcs.(i) ~friendly:true
           end
           else train sampler.pcs.(i) ~friendly:false
         end
       end
     end
     else begin
       (* Find a free or oldest entry to (re)use. *)
       let slot = ref 0 and oldest = ref max_int in
       for i = 0 to sampler_associativity - 1 do
         if sampler.lines.(i) = -1 then begin
           if !oldest > -1 then begin
             oldest := -1;
             slot := i
           end
         end
         else if !oldest <> -1 && sampler.times.(i) < !oldest then begin
           oldest := sampler.times.(i);
           slot := i
         end
       done;
       found := !slot
     end);
    let i = !found in
    sampler.lines.(i) <- line;
    sampler.pcs.(i) <- Access.packed_pc acc;
    sampler.times.(i) <- now
  in
  let place ~set ~way (acc : Access.packed) =
    let slot = (set * ways) + way in
    let pc = Access.packed_pc acc in
    last_pc.(slot) <- pc;
    if predict_friendly pc then begin
      (* Friendly: most recent, and age the other friendly lines. *)
      for w = 0 to ways - 1 do
        let s = (set * ways) + w in
        if w <> way && rrpv.(s) < rrpv_max - 1 then rrpv.(s) <- rrpv.(s) + 1
      done;
      rrpv.(slot) <- 0
    end
    else rrpv.(slot) <- rrpv_max
  in
  let observe ~set (acc : Access.packed) =
    match sampler_of set with Some s -> optgen_access s acc | None -> ()
  in
  let on_hit ~set ~way acc =
    let slot = (set * ways) + way in
    hits.(slot) <- min max_hits (hits.(slot) + 1);
    observe ~set acc;
    place ~set ~way acc
  in
  let on_fill ~set ~way acc =
    (match ehc_duel with Some d -> Dueling.train_miss d ~set | None -> ());
    hits.((set * ways) + way) <- 0;
    observe ~set acc;
    place ~set ~way acc
  in
  let plain_victim ~set =
    let best = ref 0 and best_rrpv = ref (-1) in
    for way = 0 to ways - 1 do
      let r = rrpv.((set * ways) + way) in
      if r > !best_rrpv then begin
        best := way;
        best_rrpv := r
      end
    done;
    !best
  in
  (* Among the ways tied at the highest RRPV, pick the fewest expected
     remaining hits (EHC[pc] - hits so far); ties resolve to the lowest
     way, i.e. plain Hawkeye's choice. *)
  let ehc_victim ~set =
    let best_rrpv = ref (-1) in
    for way = 0 to ways - 1 do
      let r = rrpv.((set * ways) + way) in
      if r > !best_rrpv then best_rrpv := r
    done;
    let best = ref (-1) and best_remaining = ref max_int in
    for way = 0 to ways - 1 do
      let slot = (set * ways) + way in
      if rrpv.(slot) = !best_rrpv then begin
        let remaining = max 0 (ehc_table.(ehc_index last_pc.(slot)) - hits.(slot)) in
        if remaining < !best_remaining then begin
          best := way;
          best_remaining := remaining
        end
      end
    done;
    !best
  in
  let victim ~set =
    match ehc_duel with
    | Some d when Dueling.selects_b d ~set -> ehc_victim ~set
    | Some _ | None -> plain_victim ~set
  in
  let on_eviction ~set ~way ~line:_ =
    let slot = (set * ways) + way in
    (* Learn the PC's expected hit count as a rounding running average
       of the counts its lines actually achieved. *)
    (if ehc then
       let i = ehc_index last_pc.(slot) in
       ehc_table.(i) <- (ehc_table.(i) + hits.(slot) + 1) lsr 1);
    (* Evicting a still-friendly line means the prediction
       over-committed: detrain its source.  Only sampled sets train, so
       positive (OPTgen) and negative (eviction) evidence stay in
       balance. *)
    if set mod sample_every = 1 && rrpv.(slot) < rrpv_max then
      train last_pc.(slot) ~friendly:false
  in
  (* Table I accounting: 3 KiB predictor, 1 KiB sampler (~200 entries),
     1 KiB occupancy vectors, plus 3-bit RRIP counters per line. *)
  let storage_bits =
    (3 * 1024 * 8) (* predictor *)
    + (200 * 40) (* sampler entries *)
    + (1024 * 8) (* occupancy vectors *)
    + (sets * ways * 3) (* RRIP counters: 192 B *)
    + (match ehc_duel with
      | Some d -> (ehc_entries * 3) + (sets * ways * 3) + Dueling.storage_bits d
      | None -> 0)
  in
  {
    Policy.name = (if ehc then "ehc-hawkeye" else if harmony then "harmony" else "hawkeye");
    on_hit;
    on_fill;
    fill_decision = Policy.nop_fill_decision;
    may_bypass = false;
    victim;
    on_eviction;
    on_invalidate = Policy.nop_way;
    demote = (fun ~set ~way -> rrpv.((set * ways) + way) <- rrpv_max);
    save =
      (fun () ->
        (* [friendly_lookups]/[total_lookups] are module-level
           diagnostics, deliberately not part of the checkpoint. *)
        let predictor' = Array.copy predictor in
        let rrpv' = Array.copy rrpv in
        let last_pc' = Array.copy last_pc in
        let hits' = Array.copy hits in
        let ehc_table' = Array.copy ehc_table in
        let restore_duel = match ehc_duel with Some d -> Dueling.save d | None -> Policy.nop_save () in
        let samplers' =
          Array.map
            (fun s ->
              {
                lines = Array.copy s.lines;
                pcs = Array.copy s.pcs;
                times = Array.copy s.times;
                clock = s.clock;
                occupancy = Array.copy s.occupancy;
              })
            samplers
        in
        fun () ->
          Array.blit predictor' 0 predictor 0 predictor_entries;
          Array.blit rrpv' 0 rrpv 0 (Array.length rrpv);
          Array.blit last_pc' 0 last_pc 0 (Array.length last_pc);
          Array.blit hits' 0 hits 0 (Array.length hits);
          Array.blit ehc_table' 0 ehc_table 0 ehc_entries;
          restore_duel ();
          Array.iteri
            (fun i s' ->
              let s = samplers.(i) in
              Array.blit s'.lines 0 s.lines 0 sampler_associativity;
              Array.blit s'.pcs 0 s.pcs 0 sampler_associativity;
              Array.blit s'.times 0 s.times 0 sampler_associativity;
              s.clock <- s'.clock;
              Array.blit s'.occupancy 0 s.occupancy 0 sampler_associativity)
            samplers');
    storage_bits;
    duel = ehc_duel;
  }
