(** The single name → replacement-policy catalogue.

    Every hardware policy the system can simulate is registered here
    once, with the description, Table-I storage note and typed parameter
    schema that user-facing surfaces print.  The CLI's [--policy] parser
    and help text, the bench's Table I, and the experiment runner's spec
    resolution all read this table, so adding a policy in one place
    makes it available everywhere — the name → constructor match can no
    longer drift between front ends.

    Policies are addressed by *specs*: ["drrip"] or
    ["drrip:psel_bits=8,throttle=16"].  [parse_spec] validates both the
    name and every key/value against the schema; [spec_to_string]
    canonicalises (default-valued overrides dropped, keys sorted) so the
    same cell always prints the same string in JSONL rows.

    Factories take a [seed] so stochastic policies (Random) are
    reproducible from an experiment spec; deterministic policies ignore
    it. *)

(** Typed policy parameters. *)
module Param : sig
  type value = Int of int | Float of float | Bool of bool

  type spec = {
    key : string;  (** lowercase identifier, e.g. ["psel_bits"] *)
    doc : string;  (** one-line summary for help text *)
    default : value;  (** also fixes the key's type *)
  }

  type set = (string * value) list
  (** A resolved parameter set: every declared key bound exactly once. *)

  val type_name : value -> string
  val value_to_string : value -> string
  val value_equal : value -> value -> bool

  val value_of_string : like:value -> string -> value option
  (** Parse [s] at the type of [like]; [None] on type mismatch.  A float
      key accepts integer literals; an int key does not accept floats. *)

  val defaults : spec list -> set

  val get_int : set -> string -> int
  (** @raise Invalid_argument if the key is absent or not an int. *)

  val get_float : set -> string -> float
  (** Accepts an [Int] binding too (widened).
      @raise Invalid_argument if the key is absent or boolean. *)

  val get_bool : set -> string -> bool
  (** @raise Invalid_argument if the key is absent or not a bool. *)
end

type entry = {
  name : string;  (** CLI-facing identifier, lowercase *)
  display : string;  (** print form, e.g. ["SHiP"], ["Hawkeye/Harmony"] *)
  description : string;  (** one-line summary for help text *)
  storage_note : string;  (** Table I replacement-metadata note *)
  params : Param.spec list;  (** the policy's tunable knobs, possibly empty *)
  factory : seed:int -> params:Param.set -> Policy.factory;
      (** [params] must bind every declared key; resolve specs through
          {!spec_factory} (or {!factory}) rather than calling this
          directly. *)
}

val all : entry list
(** Every registered policy, in Table I order (LRU first). *)

val names : string list

val find : string -> entry option
(** Case-insensitive lookup by bare [name] (no parameters). *)

val find_exn : string -> entry
(** @raise Invalid_argument on unknown names, listing the known ones. *)

(** A parsed policy spec: a registry name plus parameter overrides. *)
type spec = { policy : string; overrides : (string * Param.value) list }

val parse_spec : string -> (spec, string) result
(** Parse ["name"] or ["name:key=val,key=val"].  ['+'] is accepted as an
    alternative pair separator (so specs survive comma-splitting list
    parsers, e.g. sweep's [--policies]).  Unknown names and unknown keys
    both error listing the known ones; values are checked against the
    key's declared type. *)

val parse_spec_exn : string -> spec
(** @raise Invalid_argument with the [parse_spec] error message. *)

val spec_to_string : spec -> string
(** Canonical form: overrides equal to their default are dropped and the
    rest print sorted by key, so equal cells render equal strings. *)

val canonical : string -> string
(** [canonical s = spec_to_string (parse_spec_exn s)].
    @raise Invalid_argument on invalid specs. *)

val spec_params : spec -> Param.set
(** The fully resolved parameter set: declared defaults overlaid with
    the spec's overrides. *)

val spec_factory : ?seed:int -> spec -> Policy.factory
(** Resolve and apply in one step ([seed] defaults to 1234, the
    historical fixed seed of the bench). *)

val factory : ?seed:int -> string -> Policy.factory
(** [factory str] parses [str] as a spec and resolves it.
    @raise Invalid_argument on unknown names, unknown keys or ill-typed
    values. *)
