(** The single name → replacement-policy catalogue.

    Every hardware policy the system can simulate is registered here
    once, with the description and Table-I storage note that user-facing
    surfaces print.  The CLI's [--policy] parser and help text, the
    bench's Table I, and the experiment runner's spec resolution all
    read this table, so adding a policy in one place makes it available
    everywhere — the name → constructor match can no longer drift
    between front ends.

    Factories take a [seed] so stochastic policies (Random) are
    reproducible from an experiment spec; deterministic policies ignore
    it. *)

type entry = {
  name : string;  (** CLI-facing identifier, lowercase *)
  display : string;  (** print form, e.g. ["SHiP"], ["Hawkeye/Harmony"] *)
  description : string;  (** one-line summary for help text *)
  storage_note : string;  (** Table I replacement-metadata note *)
  factory : seed:int -> Policy.factory;
}

val all : entry list
(** Every registered policy, in Table I order (LRU first). *)

val names : string list

val find : string -> entry option
(** Case-insensitive lookup by [name]. *)

val find_exn : string -> entry
(** @raise Invalid_argument on unknown names, listing the known ones. *)

val factory : ?seed:int -> string -> Policy.factory
(** [factory name] resolves and applies in one step ([seed] defaults
    to 1234, the historical fixed seed of the bench).
    @raise Invalid_argument on unknown names. *)
