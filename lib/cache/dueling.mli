(** Reusable set-dueling substrate (Qureshi et al., "Adaptive insertion
    policies", 2007).

    Two flavours, [A] and [B], compete: a sparse fixed subset of sets
    leads each flavour, a saturating PSEL counter counts leader-set
    misses (an [A]-leader miss votes for [B] being better and vice
    versa — here, per DRRIP convention, an [A]-leader miss increments
    PSEL and [B] wins while PSEL is above its midpoint), and follower
    sets adopt the winner.  DRRIP, TRRIP and SHiP-SB all instantiate
    this one component instead of carrying private leader/PSEL logic.

    The default [spacing]/[psel_bits] reproduce the constants DRRIP has
    always used, so porting it onto this substrate is byte-identical
    (pinned by a test). *)

type t

type role = Leader_a | Leader_b | Follower

val make : sets:int -> ?spacing:int -> ?psel_bits:int -> unit -> t
(** One leader per flavour in each of the first [max 1 (sets/spacing)]
    aligned groups of [spacing] sets: set [k*spacing] leads [A], set
    [k*spacing + spacing/2] leads [B].  [spacing] defaults to 16,
    [psel_bits] to 10; PSEL starts at its midpoint.
    @raise Invalid_argument if [spacing < 2] or [psel_bits] is not in
    [1..30]. *)

val role : t -> set:int -> role

val train_miss : t -> set:int -> unit
(** Record a miss in [set]: an [A]-leader miss increments PSEL
    (saturating), a [B]-leader miss decrements it (floored at 0),
    follower misses train nothing.  Also maintains the flip counter. *)

val selects_b : t -> set:int -> bool
(** Which flavour [set] should use right now: leaders are pinned to
    their own flavour; followers pick [B] iff PSEL is above its
    midpoint. *)

val psel : t -> int
val psel_bits : t -> int

val a_misses : t -> int
(** Misses observed in flavour-[A] leader sets since creation. *)

val b_misses : t -> int

val flips : t -> int
(** How often the follower selection changed — a high rate means the
    duel never settles. *)

val storage_bits : t -> int
(** Hardware cost of the component itself: the PSEL counter.  (Leader
    membership is an address decode, not storage.) *)

val save : t -> unit -> unit
(** [save t] snapshots PSEL and the telemetry counters; the returned
    thunk restores them.  Policies must compose this into their own
    [Policy.save] so sampled simulation's checkpoint rewind restores
    the duel along with the replacement state. *)
