type t = {
  mutable demand_accesses : int;
  mutable demand_misses : int;
  mutable demand_misses_cold : int;
  mutable prefetch_accesses : int;
  mutable prefetch_fills : int;
  mutable evictions : int;
  mutable replacement_decisions : int;
  mutable hinted_fills : int;
  mutable invalidate_hits : int;
  mutable invalidate_misses : int;
  mutable demotes : int;
  mutable fill_bypasses : int;
}

let create () =
  {
    demand_accesses = 0;
    demand_misses = 0;
    demand_misses_cold = 0;
    prefetch_accesses = 0;
    prefetch_fills = 0;
    evictions = 0;
    replacement_decisions = 0;
    hinted_fills = 0;
    invalidate_hits = 0;
    invalidate_misses = 0;
    demotes = 0;
    fill_bypasses = 0;
  }

let reset t =
  t.demand_accesses <- 0;
  t.demand_misses <- 0;
  t.demand_misses_cold <- 0;
  t.prefetch_accesses <- 0;
  t.prefetch_fills <- 0;
  t.evictions <- 0;
  t.replacement_decisions <- 0;
  t.hinted_fills <- 0;
  t.invalidate_hits <- 0;
  t.invalidate_misses <- 0;
  t.demotes <- 0;
  t.fill_bypasses <- 0

let copy t =
  {
    demand_accesses = t.demand_accesses;
    demand_misses = t.demand_misses;
    demand_misses_cold = t.demand_misses_cold;
    prefetch_accesses = t.prefetch_accesses;
    prefetch_fills = t.prefetch_fills;
    evictions = t.evictions;
    replacement_decisions = t.replacement_decisions;
    hinted_fills = t.hinted_fills;
    invalidate_hits = t.invalidate_hits;
    invalidate_misses = t.invalidate_misses;
    demotes = t.demotes;
    fill_bypasses = t.fill_bypasses;
  }

let copy_into ~src ~dst =
  dst.demand_accesses <- src.demand_accesses;
  dst.demand_misses <- src.demand_misses;
  dst.demand_misses_cold <- src.demand_misses_cold;
  dst.prefetch_accesses <- src.prefetch_accesses;
  dst.prefetch_fills <- src.prefetch_fills;
  dst.evictions <- src.evictions;
  dst.replacement_decisions <- src.replacement_decisions;
  dst.hinted_fills <- src.hinted_fills;
  dst.invalidate_hits <- src.invalidate_hits;
  dst.invalidate_misses <- src.invalidate_misses;
  dst.demotes <- src.demotes;
  dst.fill_bypasses <- src.fill_bypasses

let accumulate_delta ~into ~before ~after =
  into.demand_accesses <- into.demand_accesses + after.demand_accesses - before.demand_accesses;
  into.demand_misses <- into.demand_misses + after.demand_misses - before.demand_misses;
  into.demand_misses_cold <-
    into.demand_misses_cold + after.demand_misses_cold - before.demand_misses_cold;
  into.prefetch_accesses <-
    into.prefetch_accesses + after.prefetch_accesses - before.prefetch_accesses;
  into.prefetch_fills <- into.prefetch_fills + after.prefetch_fills - before.prefetch_fills;
  into.evictions <- into.evictions + after.evictions - before.evictions;
  into.replacement_decisions <-
    into.replacement_decisions + after.replacement_decisions - before.replacement_decisions;
  into.hinted_fills <- into.hinted_fills + after.hinted_fills - before.hinted_fills;
  into.invalidate_hits <-
    into.invalidate_hits + after.invalidate_hits - before.invalidate_hits;
  into.invalidate_misses <-
    into.invalidate_misses + after.invalidate_misses - before.invalidate_misses;
  into.demotes <- into.demotes + after.demotes - before.demotes;
  into.fill_bypasses <- into.fill_bypasses + after.fill_bypasses - before.fill_bypasses

let total_accesses t = t.demand_accesses + t.prefetch_accesses

let mpki t ~instructions =
  if instructions = 0 then 0.0
  else 1000.0 *. Float.of_int t.demand_misses /. Float.of_int instructions

let demand_miss_ratio t =
  if t.demand_accesses = 0 then 0.0
  else Float.of_int t.demand_misses /. Float.of_int t.demand_accesses

let coverage t =
  if t.replacement_decisions = 0 then 0.0
  else Float.of_int t.hinted_fills /. Float.of_int t.replacement_decisions

let pp fmt t =
  Format.fprintf fmt
    "@[demand %d/%d miss (%d cold), prefetch %d (%d fills), evict %d, repl %d, hinted %d,@ \
     inval %d+%d, demote %d, bypass %d@]"
    t.demand_misses t.demand_accesses t.demand_misses_cold t.prefetch_accesses t.prefetch_fills
    t.evictions t.replacement_decisions t.hinted_fills t.invalidate_hits t.invalidate_misses
    t.demotes t.fill_bypasses
