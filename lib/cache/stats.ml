type t = {
  mutable demand_accesses : int;
  mutable demand_misses : int;
  mutable demand_misses_cold : int;
  mutable prefetch_accesses : int;
  mutable prefetch_fills : int;
  mutable evictions : int;
  mutable replacement_decisions : int;
  mutable hinted_fills : int;
  mutable invalidate_hits : int;
  mutable invalidate_misses : int;
  mutable demotes : int;
}

let create () =
  {
    demand_accesses = 0;
    demand_misses = 0;
    demand_misses_cold = 0;
    prefetch_accesses = 0;
    prefetch_fills = 0;
    evictions = 0;
    replacement_decisions = 0;
    hinted_fills = 0;
    invalidate_hits = 0;
    invalidate_misses = 0;
    demotes = 0;
  }

let reset t =
  t.demand_accesses <- 0;
  t.demand_misses <- 0;
  t.demand_misses_cold <- 0;
  t.prefetch_accesses <- 0;
  t.prefetch_fills <- 0;
  t.evictions <- 0;
  t.replacement_decisions <- 0;
  t.hinted_fills <- 0;
  t.invalidate_hits <- 0;
  t.invalidate_misses <- 0;
  t.demotes <- 0

let total_accesses t = t.demand_accesses + t.prefetch_accesses

let mpki t ~instructions =
  if instructions = 0 then 0.0
  else 1000.0 *. Float.of_int t.demand_misses /. Float.of_int instructions

let demand_miss_ratio t =
  if t.demand_accesses = 0 then 0.0
  else Float.of_int t.demand_misses /. Float.of_int t.demand_accesses

let coverage t =
  if t.replacement_decisions = 0 then 0.0
  else Float.of_int t.hinted_fills /. Float.of_int t.replacement_decisions

let pp fmt t =
  Format.fprintf fmt
    "@[demand %d/%d miss (%d cold), prefetch %d (%d fills), evict %d, repl %d, hinted %d,@ \
     inval %d+%d, demote %d@]"
    t.demand_misses t.demand_accesses t.demand_misses_cold t.prefetch_accesses t.prefetch_fills
    t.evictions t.replacement_decisions t.hinted_fills t.invalidate_hits t.invalidate_misses
    t.demotes
