(** Offline optimal replacement: Belady's MIN and the prefetch-aware
    Demand-MIN revision (Jain & Lin 2018, as revised by the Ripple paper).

    Given the complete access stream, MIN evicts the resident line whose
    next reference (of any kind) lies farthest in the future.  Demand-MIN
    refines this under prefetching: a line whose next reference is a
    prefetch can be evicted for free — the prefetch will re-fetch it
    without a demand miss — so Demand-MIN first evicts the line
    {e prefetched} farthest in the future (counting never-referenced-again
    lines as prefetched at infinity), and only if no resident line's next
    reference is a prefetch does it fall back to the line {e demanded}
    farthest in the future.

    The simulation also records every eviction together with the victim's
    last-use position: these [(last_use, at)] intervals are exactly the
    {e eviction windows} of Ripple's §III-B analysis. *)

module Addr := Ripple_isa.Addr

type mode = Min | Demand_min

type next_ref = Next_demand | Next_prefetch | Never
(** What happens to a victim line after its eviction: re-demanded,
    re-prefetched first (Demand-MIN's "free" evictions), or never seen
    again. *)

type eviction = {
  at : int;  (** index of the access whose fill triggered the eviction *)
  line : Addr.line;  (** the victim *)
  set : int;
  last_use : int;  (** index of the victim's most recent access *)
  next : next_ref;
}

type result = {
  mode : mode;
  demand_accesses : int;
  demand_misses : int;
  demand_misses_cold : int;
  prefetch_accesses : int;
  prefetch_fills : int;
  n_evictions : int;
      (** total evictions over the whole replay — always counted, even
          when the boxed records were not kept *)
  evictions : eviction array;
      (** in increasing [at] order; empty when [record_evictions] was
          [false] *)
  fills : int array;
      (** stream indices of every filling access (demand misses and
          prefetch fills), increasing — empty unless [record_fills] was
          set; sharded runs record them so a merged result can replay
          the memory hierarchy in exact stream order. *)
}

type tables
(** Precomputed next-use tables for one stream: 2 words per access, the
    oracle's entire O(n) working set.  Prepared once, they are read-only
    and safely shared across domains — every shard of a set-sharded run
    reads the same copy — and with a [Spill] backing they live in
    unlinked mmap scratch instead of the heap. *)

val prepare : ?backing:Access_stream.backing -> Access_stream.t -> tables
val close_tables : tables -> unit

val simulate :
  ?tables:tables ->
  ?sets:int * int ->
  ?record_fills:bool ->
  ?record_evictions:bool ->
  ?on_fill:(index:int -> Access.packed -> unit) ->
  ?count_from:int ->
  Geometry.t ->
  mode:mode ->
  Access_stream.t ->
  result
(** Full offline replay over a packed {!Access_stream}.  O(n·ways) time,
    O(n) space for the next-use tables; the backward next-use pass and
    the forward replay both iterate the stream without boxing a single
    access.  [on_fill] is invoked for every access that misses and fills
    (demand misses and prefetch fills), in stream order — the timing
    model uses it to drive the L2/L3 hierarchy under the oracle
    policies.  [count_from] restricts the counters (not the simulation,
    and not the recorded evictions) to accesses at or beyond that stream
    index — steady-state measurement after a cache warm-up.

    [tables] reuses next-use tables from {!prepare} (they are left open);
    without it the tables are built and released internally.  [sets]
    restricts the replay to cache sets in [\[lo, hi)]: lines partition
    by set, so counters, evictions and fills of disjoint ranges are
    disjoint and {!merge} reassembles the exact unsharded result.
    [record_fills] captures the fill indices in [result.fills].
    [record_evictions] (default [true]) keeps the boxed eviction
    records; callers that only need counters and fills — the oracle
    timing replay, set-sharded runs — pass [false] so the replay's heap
    stays O(1) in the stream length ([result.n_evictions] still carries
    the tally). *)

val merge : result list -> result
(** Reassembles per-set-range shard results (counters summed, evictions
    and fills re-sorted into stream order).  Because every access lands
    in exactly one set, merging the shards of a partition of [\[0,
    sets)] is byte-identical to the unsharded replay. *)

val mpki : result -> instructions:int -> float
