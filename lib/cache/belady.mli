(** Offline optimal replacement: Belady's MIN and the prefetch-aware
    Demand-MIN revision (Jain & Lin 2018, as revised by the Ripple paper).

    Given the complete access stream, MIN evicts the resident line whose
    next reference (of any kind) lies farthest in the future.  Demand-MIN
    refines this under prefetching: a line whose next reference is a
    prefetch can be evicted for free — the prefetch will re-fetch it
    without a demand miss — so Demand-MIN first evicts the line
    {e prefetched} farthest in the future (counting never-referenced-again
    lines as prefetched at infinity), and only if no resident line's next
    reference is a prefetch does it fall back to the line {e demanded}
    farthest in the future.

    The simulation also records every eviction together with the victim's
    last-use position: these [(last_use, at)] intervals are exactly the
    {e eviction windows} of Ripple's §III-B analysis. *)

module Addr := Ripple_isa.Addr

type mode = Min | Demand_min

type next_ref = Next_demand | Next_prefetch | Never
(** What happens to a victim line after its eviction: re-demanded,
    re-prefetched first (Demand-MIN's "free" evictions), or never seen
    again. *)

type eviction = {
  at : int;  (** index of the access whose fill triggered the eviction *)
  line : Addr.line;  (** the victim *)
  set : int;
  last_use : int;  (** index of the victim's most recent access *)
  next : next_ref;
}

type result = {
  mode : mode;
  demand_accesses : int;
  demand_misses : int;
  demand_misses_cold : int;
  prefetch_accesses : int;
  prefetch_fills : int;
  evictions : eviction array;  (** in increasing [at] order *)
}

val simulate :
  ?on_fill:(index:int -> Access.packed -> unit) ->
  ?count_from:int ->
  Geometry.t ->
  mode:mode ->
  Access_stream.t ->
  result
(** Full offline replay over a packed {!Access_stream}.  O(n·ways) time,
    O(n) space for the next-use tables; the backward next-use pass and
    the forward replay both iterate the stream without boxing a single
    access.  [on_fill] is invoked for every access that misses and fills
    (demand misses and prefetch fills), in stream order — the timing
    model uses it to drive the L2/L3 hierarchy under the oracle
    policies.  [count_from] restricts the counters (not the simulation,
    and not the recorded evictions) to accesses at or beyond that stream
    index — steady-state measurement after a cache warm-up. *)

val mpki : result -> instructions:int -> float
