(** Dynamic re-reference interval prediction (DRRIP, Jaleel et al. 2010).

    Set-dueling between SRRIP insertion and bimodal (thrash-resistant)
    insertion, built on the shared {!Dueling} substrate, with a PSEL
    counter arbitrating for follower sets.  Like SRRIP it brings nothing
    for I-cache traffic (§II-D): data-center code neither scans nor
    thrashes in the cyclic-reuse sense DRRIP detects. *)

val make : ?psel_bits:int -> ?throttle:int -> ?spacing:int -> unit -> Policy.factory
(** [throttle] is the bimodal rate (1-in-[throttle] fills insert long,
    default 32); [psel_bits] (default 10) and [spacing] (default 16) are
    the {!Dueling} geometry.  The defaults reproduce the historical
    inline implementation bit for bit. *)
