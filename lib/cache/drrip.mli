(** Dynamic re-reference interval prediction (DRRIP, Jaleel et al. 2010).

    Set-dueling between SRRIP insertion and bimodal (thrash-resistant)
    insertion, with a PSEL counter arbitrating for follower sets.  Like
    SRRIP it brings nothing for I-cache traffic (§II-D): data-center code
    neither scans nor thrashes in the cyclic-reuse sense DRRIP detects. *)

val make : Policy.factory
