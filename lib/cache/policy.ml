type fill_decision = [ `Install | `Bypass ]

type t = {
  name : string;
  on_hit : set:int -> way:int -> Access.packed -> unit;
  on_fill : set:int -> way:int -> Access.packed -> unit;
  fill_decision : set:int -> Access.packed -> fill_decision;
  may_bypass : bool;
  victim : set:int -> int;
  on_eviction : set:int -> way:int -> line:Ripple_isa.Addr.line -> unit;
  on_invalidate : set:int -> way:int -> unit;
  demote : set:int -> way:int -> unit;
  save : unit -> unit -> unit;
  storage_bits : int;
  duel : Dueling.t option;
}

type factory = sets:int -> ways:int -> t

let nop_access ~set:_ ~way:_ _ = ()
let nop_way ~set:_ ~way:_ = ()
let nop_evict ~set:_ ~way:_ ~line:_ = ()
let nop_save () () = ()
let nop_fill_decision ~set:_ _ = `Install
