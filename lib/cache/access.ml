module Addr = Ripple_isa.Addr

type kind = Demand | Prefetch
type t = { line : Addr.line; kind : kind; pc : int; block : int }

let demand ~line ~block = { line; kind = Demand; pc = line; block }
let prefetch ~line ~block = { line; kind = Prefetch; pc = line; block }
let is_demand t = t.kind = Demand
let is_prefetch t = t.kind = Prefetch

let pp fmt t =
  Format.fprintf fmt "%s %a (bb%d)"
    (match t.kind with Demand -> "D" | Prefetch -> "P")
    Addr.pp_line t.line t.block
