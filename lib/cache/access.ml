module Addr = Ripple_isa.Addr

type kind = Demand | Prefetch
type t = { line : Addr.line; kind : kind; pc : int; block : int }

let demand ~line ~block = { line; kind = Demand; pc = line; block }
let prefetch ~line ~block = { line; kind = Prefetch; pc = line; block }
let is_demand t = t.kind = Demand
let is_prefetch t = t.kind = Prefetch

let pp fmt t =
  Format.fprintf fmt "%s %a (bb%d)"
    (match t.kind with Demand -> "D" | Prefetch -> "P")
    Addr.pp_line t.line t.block

(* ------------------------------ packed ------------------------------ *)

type packed = int

let block_bits = 22
let max_packed_line = (1 lsl 40) - 1
let max_packed_block = (1 lsl block_bits) - 2
let block_mask = (1 lsl block_bits) - 1

let check ~line ~block =
  if line < 0 || line > max_packed_line then
    invalid_arg (Printf.sprintf "Access.pack: line %d out of range" line);
  if block < -1 || block > max_packed_block then
    invalid_arg (Printf.sprintf "Access.pack: block %d out of range" block)

let pack_demand ~line ~block =
  check ~line ~block;
  (line lsl (block_bits + 1)) lor ((block + 1) lsl 1)

let pack_prefetch ~line ~block =
  check ~line ~block;
  (line lsl (block_bits + 1)) lor ((block + 1) lsl 1) lor 1

let pack t =
  match t.kind with
  | Demand -> pack_demand ~line:t.line ~block:t.block
  | Prefetch -> pack_prefetch ~line:t.line ~block:t.block

let packed_line p = p lsr (block_bits + 1)
let packed_pc = packed_line
let packed_block p = ((p lsr 1) land block_mask) - 1
let packed_is_demand p = p land 1 = 0
let packed_is_prefetch p = p land 1 = 1
let packed_kind p = if packed_is_demand p then Demand else Prefetch

let unpack p =
  let line = packed_line p and block = packed_block p in
  { line; kind = packed_kind p; pc = line; block }

let pp_packed fmt p = pp fmt (unpack p)
