(** Global history reuse predictor (GHRP, Ajorpaz et al. 2018) — the only
    prior replacement policy designed for the I-cache/BTB.

    GHRP hashes the accessed line with a global history of recent fetch
    lines into a signature, and a bank of saturating counter tables
    predicts whether a cached line is dead.  Victim selection prefers
    predicted-dead lines (LRU among equals).

    §II-D of the Ripple paper notes a flaw: baseline GHRP grows more
    confident that a line is dead after every eviction even when the
    eviction was premature.  [~fixed:true] (the default, matching the
    paper's modified GHRP) tracks recently evicted lines and, when one is
    re-demanded soon after eviction, retrains its signature towards
    alive. *)

val make : ?fixed:bool -> unit -> Policy.factory

val history_bits : int
val table_entries : int
val n_tables : int
