(** Random replacement.

    The zero-metadata policy: Ripple-Random (§IV) shows that with
    Ripple's software invalidations even random replacement beats an LRU
    baseline, eliminating all replacement metadata from hardware.
    [demote] pins the demoted way as the next victim, giving the demote
    hint a meaning even without recency state. *)

val make : seed:int -> Policy.factory
