let rrpv_bits = 2
let rrpv_max = (1 lsl rrpv_bits) - 1 (* 3 *)
let rrpv_long = rrpv_max - 1 (* insertion value: 2 *)

(* Shared victim search over an rrpv array: find a way at rrpv_max, aging
   the whole set until one appears.  Guaranteed to terminate because each
   aging round strictly increases the set maximum. *)
let rrpv_victim rrpv ~ways ~set =
  let base = set * ways in
  let rec find () =
    let found = ref (-1) in
    (let way = ref 0 in
     while !found < 0 && !way < ways do
       if rrpv.(base + !way) = rrpv_max then found := !way;
       incr way
     done);
    if !found >= 0 then !found
    else begin
      for way = 0 to ways - 1 do
        rrpv.(base + way) <- min rrpv_max (rrpv.(base + way) + 1)
      done;
      find ()
    end
  in
  find ()

let make ~sets ~ways =
  let rrpv = Array.make (sets * ways) rrpv_max in
  {
    Policy.name = "srrip";
    on_hit = (fun ~set ~way _ -> rrpv.((set * ways) + way) <- 0);
    on_fill = (fun ~set ~way _ -> rrpv.((set * ways) + way) <- rrpv_long);
    fill_decision = Policy.nop_fill_decision;
    may_bypass = false;
    victim = (fun ~set -> rrpv_victim rrpv ~ways ~set);
    on_eviction = Policy.nop_evict;
    on_invalidate = (fun ~set ~way -> rrpv.((set * ways) + way) <- rrpv_max);
    demote = (fun ~set ~way -> rrpv.((set * ways) + way) <- rrpv_max);
    save =
      (fun () ->
        let rrpv' = Array.copy rrpv in
        fun () -> Array.blit rrpv' 0 rrpv 0 (Array.length rrpv));
    storage_bits = sets * ways * rrpv_bits;
    duel = None;
  }
