(** Cache event counters.

    One record per simulated cache, updated by {!Cache}.  The distinction
    between demand and prefetch traffic, and between cold (compulsory)
    and replacement misses, feeds the paper's MPKI analyses (§II-D
    measures compulsory MPKI to explain why scan-oriented policies cannot
    help the I-cache).  The hinted-fill counters feed Ripple's
    replacement-coverage metric (§III-C). *)

type t = {
  mutable demand_accesses : int;
  mutable demand_misses : int;
  mutable demand_misses_cold : int;  (** first-ever reference to the line *)
  mutable prefetch_accesses : int;
  mutable prefetch_fills : int;  (** prefetches that missed and filled *)
  mutable evictions : int;  (** valid lines displaced by fills *)
  mutable replacement_decisions : int;
      (** fills that had to pick a victim: evictions plus fills into
          hint-invalidated ways (the denominators of coverage) *)
  mutable hinted_fills : int;
      (** fills that landed in a way freed by a Ripple hint — replacement
          decisions initiated by software (coverage numerator) *)
  mutable invalidate_hits : int;  (** hint executions that found the line *)
  mutable invalidate_misses : int;  (** hint executions to an absent line *)
  mutable demotes : int;
  mutable fill_bypasses : int;
      (** misses the policy chose not to install ([`Bypass] from
          [Policy.fill_decision]) — streaming-bypass traffic *)
}

val create : unit -> t
val reset : t -> unit

val copy : t -> t
(** Independent snapshot. *)

val copy_into : src:t -> dst:t -> unit
(** Overwrites [dst]'s counters with [src]'s (checkpoint restore). *)

val accumulate_delta : into:t -> before:t -> after:t -> unit
(** [into += after - before], field-wise — splices one sampled window's
    counter growth into a running total. *)

val total_accesses : t -> int

val mpki : t -> instructions:int -> float
(** Demand misses per kilo-instruction. *)

val demand_miss_ratio : t -> float

val coverage : t -> float
(** Fraction of replacement decisions initiated by Ripple invalidations
    ([hinted_fills / replacement_decisions]); 0 when no decisions. *)

val pp : Format.formatter -> t -> unit
