type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable mn : float;
  mutable mx : float;
}

let create () = { n = 0; mean = 0.0; m2 = 0.0; mn = Float.nan; mx = Float.nan }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. Float.of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if t.n = 1 then begin
    t.mn <- x;
    t.mx <- x
  end
  else begin
    if x < t.mn then t.mn <- x;
    if x > t.mx then t.mx <- x
  end

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.mean
let stddev t = if t.n < 2 then 0.0 else sqrt (t.m2 /. Float.of_int (t.n - 1))
let min t = t.mn
let max t = t.mx

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

let mean_of xs = mean (of_list xs)

let geomean_of xs =
  match xs with
  | [] -> 0.0
  | _ ->
    let logs = List.map (fun x -> if x > 0.0 then log x else 0.0) xs in
    exp (mean_of logs)
