type align = Left | Right

type row = Cells of string list | Sep

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ~title ~columns =
  { title; headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  assert (List.length cells = List.length t.headers);
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all_cells = t.headers :: List.filter_map (function Cells c -> Some c | Sep -> None) rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let note_row cells =
    List.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) cells
  in
  List.iter note_row all_cells;
  let buf = Buffer.create 1024 in
  let pad align width s =
    let fill = String.make (width - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let emit_cells ?(aligns = t.aligns) cells =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i (a, c) ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad a widths.(i) c))
      (List.combine aligns cells);
    Buffer.add_string buf " |\n"
  in
  let emit_sep () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  emit_sep ();
  emit_cells ~aligns:(List.map (fun _ -> Left) t.headers) t.headers;
  emit_sep ();
  List.iter (function Cells c -> emit_cells c | Sep -> emit_sep ()) rows;
  emit_sep ();
  Buffer.contents buf

let print t = print_string (render t)

let fpct x = Printf.sprintf "%+.2f%%" (100.0 *. x)
let fnum x = Printf.sprintf "%.3f" x
