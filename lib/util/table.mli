(** Plain-text table rendering for the benchmark harness.

    The paper's figures are bar charts over the nine applications; the
    harness reproduces each one as an aligned text table with an average
    row, which is the form the repository's EXPERIMENTS.md records. *)

type align = Left | Right

type t

val create : title:string -> columns:(string * align) list -> t
(** [create ~title ~columns] starts an empty table.  Each column is a
    header plus an alignment for its cells. *)

val add_row : t -> string list -> unit
(** Appends a row.  The row length must equal the number of columns. *)

val add_sep : t -> unit
(** Appends a horizontal separator (e.g. before an average row). *)

val render : t -> string
(** The fully formatted table, ending in a newline. *)

val print : t -> unit
(** [print t] writes {!render} to [stdout]. *)

val fpct : float -> string
(** Formats a ratio as a signed percentage with two decimals,
    e.g. [fpct 0.0213 = "+2.13%"]. *)

val fnum : float -> string
(** Formats a float with three significant decimals. *)
