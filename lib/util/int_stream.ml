(* Backing-polymorphic chunked int streams.  See the .mli. *)

let chunk_bits = 16
let chunk_entries = 1 lsl chunk_bits
let chunk_mask = chunk_entries - 1
let word_bytes = 8

type backing = Heap | Spill of { dir : string option }

let spill ?dir () = Spill { dir }
let backing_name = function Heap -> "heap" | Spill _ -> "mmap"

let backing_of_string = function
  | "heap" -> Ok Heap
  | "mmap" | "spill" -> Ok (Spill { dir = None })
  | s -> Error (Printf.sprintf "unknown backing %S (expected heap or mmap)" s)

(* ---- Spill-file registry -------------------------------------------- *)

type spill_file = { path : string; mutable unlinked : bool }

(* All spill files created by this process and not yet unlinked, so
   failure paths ([Spill.sweep]) can clean up capture files they never
   saw being created.  The lock also serializes the [unlinked] flag, so
   close / finaliser / sweep races unlink exactly once. *)
let registry : (string, spill_file) Hashtbl.t = Hashtbl.create 7
let registry_lock = Mutex.create ()

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let register_spill sf = with_registry (fun () -> Hashtbl.replace registry sf.path sf)

let unlink_spill sf =
  let fresh =
    with_registry (fun () ->
        if sf.unlinked then false
        else begin
          sf.unlinked <- true;
          Hashtbl.remove registry sf.path;
          true
        end)
  in
  if fresh then try Sys.remove sf.path with Sys_error _ -> ()

module Spill = struct
  let live () =
    with_registry (fun () -> Hashtbl.fold (fun p _ acc -> p :: acc) registry [])
    |> List.sort String.compare

  let sweep () =
    let files =
      with_registry (fun () -> Hashtbl.fold (fun _ sf acc -> sf :: acc) registry [])
    in
    List.iter unlink_spill files;
    List.length files
end

(* ---- Streams -------------------------------------------------------- *)

type map1 = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
type mapped = { arr : map1; file : spill_file }

type storage =
  | Chunks of int array array (* all but the last are [chunk_entries] long *)
  | Map of mapped

type t = { storage : storage; length : int }

let empty = { storage = Chunks [||]; length = 0 }
let length t = t.length

let unsafe_get t i =
  match t.storage with
  | Chunks chunks ->
      Array.unsafe_get (Array.unsafe_get chunks (i lsr chunk_bits)) (i land chunk_mask)
  | Map m -> Bigarray.Array1.unsafe_get m.arr i

let get t i =
  if i < 0 || i >= t.length then
    invalid_arg (Printf.sprintf "Int_stream.get: index %d out of bounds [0,%d)" i t.length);
  unsafe_get t i

let iteri f t =
  match t.storage with
  | Chunks chunks ->
      let i = ref 0 in
      let n = t.length in
      for c = 0 to Array.length chunks - 1 do
        let chunk = Array.unsafe_get chunks c in
        let stop = min (Array.length chunk) (n - !i) in
        for k = 0 to stop - 1 do
          f !i (Array.unsafe_get chunk k);
          incr i
        done
      done
  | Map m ->
      for i = 0 to t.length - 1 do
        f i (Bigarray.Array1.unsafe_get m.arr i)
      done

let iter f t = iteri (fun _ p -> f p) t

let iteri_rev f t =
  match t.storage with
  | Chunks chunks ->
      for c = Array.length chunks - 1 downto 0 do
        let chunk = Array.unsafe_get chunks c in
        let base = c lsl chunk_bits in
        let stop = min (Array.length chunk) (t.length - base) in
        for k = stop - 1 downto 0 do
          f (base + k) (Array.unsafe_get chunk k)
        done
      done
  | Map m ->
      for i = t.length - 1 downto 0 do
        f i (Bigarray.Array1.unsafe_get m.arr i)
      done

let fold_left f init t =
  let acc = ref init in
  iter (fun p -> acc := f !acc p) t;
  !acc

let is_spill t = match t.storage with Map _ -> true | Chunks _ -> false

let spill_path t =
  match t.storage with
  | Map m when not m.file.unlinked -> Some m.file.path
  | Map _ | Chunks _ -> None

let byte_size t = word_bytes * t.length

let close t =
  match t.storage with Map m -> unlink_spill m.file | Chunks _ -> ()

(* ---- Builder -------------------------------------------------------- *)

module Builder = struct
  type stream = t

  type t = {
    backing : backing;
    (* heap storage under construction *)
    mutable chunks : int array array; (* all but the last are full *)
    mutable last : int array;
    mutable last_len : int; (* filled entries of [last] *)
    mutable full_len : int; (* total entries already retired *)
    (* spill storage under construction: [buf] holds the unflushed tail
       chunk as packed native-endian words *)
    buf : Bytes.t;
    mutable chan : out_channel option;
    mutable file : spill_file option;
  }

  let create ?(backing = Heap) () =
    let buf =
      match backing with
      | Heap -> Bytes.empty
      | Spill _ -> Bytes.create (chunk_entries * word_bytes)
    in
    { backing; chunks = [||]; last = [||]; last_len = 0; full_len = 0;
      buf; chan = None; file = None }

  let backing b = b.backing
  let length b = b.full_len + b.last_len

  let spill_chan b =
    match b.chan with
    | Some chan -> chan
    | None ->
        let dir = match b.backing with Spill { dir } -> dir | Heap -> None in
        let path = Filename.temp_file ?temp_dir:dir "ripple-spill-" ".bin" in
        let sf = { path; unlinked = false } in
        register_spill sf;
        let chan = open_out_bin path in
        b.file <- Some sf;
        b.chan <- Some chan;
        chan

  let add b p =
    match b.backing with
    | Heap ->
        if b.last_len = Array.length b.last then begin
          (* [last] is full (or the initial empty array): retire it. *)
          if b.last_len > 0 then begin
            let n = Array.length b.chunks in
            let bigger = Array.make (n + 1) b.last in
            Array.blit b.chunks 0 bigger 0 n;
            b.chunks <- bigger;
            b.full_len <- b.full_len + b.last_len
          end;
          b.last <- Array.make chunk_entries 0;
          b.last_len <- 0
        end;
        Array.unsafe_set b.last b.last_len p;
        b.last_len <- b.last_len + 1
    | Spill _ ->
        Bytes.set_int64_ne b.buf (b.last_len * word_bytes) (Int64.of_int p);
        b.last_len <- b.last_len + 1;
        if b.last_len = chunk_entries then begin
          output (spill_chan b) b.buf 0 (chunk_entries * word_bytes);
          b.full_len <- b.full_len + b.last_len;
          b.last_len <- 0
        end

  let reset b =
    b.chunks <- [||];
    b.last <- [||];
    b.last_len <- 0;
    b.full_len <- 0;
    b.chan <- None;
    b.file <- None

  let abort b =
    (match b.chan with Some chan -> close_out_noerr chan | None -> ());
    (match b.file with Some sf -> unlink_spill sf | None -> ());
    reset b

  let map_stream file ~length =
    let fd = Unix.openfile file.path [ Unix.O_RDONLY ] 0 in
    let arr =
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          Bigarray.array1_of_genarray
            (Unix.map_file fd Bigarray.int Bigarray.c_layout false [| length |]))
    in
    let m = { arr; file } in
    (* Backstop: a dropped stream must not leak its capture file even if
       no one called [close]. *)
    Gc.finalise (fun (m : mapped) -> unlink_spill m.file) m;
    { storage = Map m; length }

  let finish b : stream =
    match b.backing with
    | Heap ->
        let length = length b in
        let chunks =
          if b.last_len = 0 then b.chunks
          else begin
            let n = Array.length b.chunks in
            let all = Array.make (n + 1) b.last in
            Array.blit b.chunks 0 all 0 n;
            (* Trim the tail chunk so the stream owns no slack. *)
            all.(n) <-
              (if b.last_len = chunk_entries then b.last
               else Array.sub b.last 0 b.last_len);
            all
          end
        in
        (* Reset so reusing the builder cannot alias the frozen chunks. *)
        reset b;
        { storage = Chunks chunks; length }
    | Spill _ ->
        let length = length b in
        if length = 0 then begin
          abort b;
          empty
        end
        else begin
          let chan = spill_chan b in
          if b.last_len > 0 then output chan b.buf 0 (b.last_len * word_bytes);
          close_out chan;
          let file = Option.get b.file in
          let stream =
            match map_stream file ~length with
            | s -> s
            | exception e ->
                unlink_spill file;
                raise e
          in
          reset b;
          stream
        end
end

let of_array ?backing xs =
  let b = Builder.create ?backing () in
  Array.iter (Builder.add b) xs;
  Builder.finish b

let to_array t = Array.init t.length (unsafe_get t)

(* ---- Cursor --------------------------------------------------------- *)

module Cursor = struct
  type stream = t
  type t = { stream : stream; mutable pos : int }

  let create stream = { stream; pos = 0 }
  let pos c = c.pos
  let length c = c.stream.length
  let has_next c = c.pos < c.stream.length

  let next c =
    let p = get c.stream c.pos in
    c.pos <- c.pos + 1;
    p

  let peek c = get c.stream c.pos
  let rewind c = c.pos <- 0

  let seek c pos =
    if pos < 0 || pos > c.stream.length then
      invalid_arg
        (Printf.sprintf "Int_stream.Cursor.seek: %d out of [0,%d]" pos c.stream.length);
    c.pos <- pos

  let close c = close c.stream
end

(* ---- Scratch -------------------------------------------------------- *)

module Scratch = struct
  type t = Sheap of int array | Smap of map1

  let make ?(backing = Heap) n x =
    if n < 0 then invalid_arg "Int_stream.Scratch.make";
    match backing with
    | Heap -> Sheap (Array.make n x)
    | Spill _ when n = 0 -> Sheap [||]
    | Spill { dir } ->
        let path = Filename.temp_file ?temp_dir:dir "ripple-scratch-" ".bin" in
        let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
        let arr =
          Fun.protect
            ~finally:(fun () -> Unix.close fd)
            (fun () ->
              (* Unlink before use: the mapping needs no name, so a
                 scratch can never outlive the process as a stray file. *)
              (try Sys.remove path with Sys_error _ -> ());
              Unix.ftruncate fd (n * word_bytes);
              Bigarray.array1_of_genarray
                (Unix.map_file fd Bigarray.int Bigarray.c_layout true [| n |]))
        in
        Bigarray.Array1.fill arr x;
        Smap arr

  let length = function
    | Sheap a -> Array.length a
    | Smap a -> Bigarray.Array1.dim a

  let get t i =
    match t with Sheap a -> a.(i) | Smap a -> Bigarray.Array1.get a i

  let set t i x =
    match t with Sheap a -> a.(i) <- x | Smap a -> Bigarray.Array1.set a i x

  let close _ = ()
end
