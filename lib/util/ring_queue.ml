type 'a t = {
  buf : 'a array;
  mutable head : int; (* index of front element *)
  mutable len : int;
}

let create ~capacity ~dummy =
  assert (capacity > 0);
  { buf = Array.make capacity dummy; head = 0; len = 0 }

let capacity t = Array.length t.buf
let length t = t.len
let is_empty t = t.len = 0
let is_full t = t.len = Array.length t.buf

let push t x =
  if is_full t then false
  else begin
    let tail = (t.head + t.len) mod Array.length t.buf in
    t.buf.(tail) <- x;
    t.len <- t.len + 1;
    true
  end

let push_overwrite t x =
  if is_full t then begin
    t.buf.(t.head) <- x;
    t.head <- (t.head + 1) mod Array.length t.buf
  end
  else ignore (push t x)

let pop t =
  if t.len = 0 then None
  else begin
    let x = t.buf.(t.head) in
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.len <- t.len - 1;
    Some x
  end

let peek t = if t.len = 0 then None else Some t.buf.(t.head)

let pop_or t ~default =
  if t.len = 0 then default
  else begin
    let x = t.buf.(t.head) in
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.len <- t.len - 1;
    x
  end

let peek_or t ~default = if t.len = 0 then default else t.buf.(t.head)
let clear t = t.len <- 0

let iter f t =
  let n = Array.length t.buf in
  for i = 0 to t.len - 1 do
    f t.buf.((t.head + i) mod n)
  done

let to_list t =
  let acc = ref [] in
  iter (fun x -> acc := x :: !acc) t;
  List.rev !acc

let copy t = { buf = Array.copy t.buf; head = t.head; len = t.len }

let copy_into ~src ~dst =
  assert (Array.length src.buf = Array.length dst.buf);
  Array.blit src.buf 0 dst.buf 0 (Array.length src.buf);
  dst.head <- src.head;
  dst.len <- src.len
