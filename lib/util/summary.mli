(** Streaming summary statistics.

    A tiny Welford accumulator plus aggregate helpers used throughout the
    benchmark harness when averaging per-application results. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** Arithmetic mean; 0 when empty. *)

val stddev : t -> float
(** Sample standard deviation; 0 when fewer than two observations. *)

val min : t -> float
(** Minimum observation; [nan] when empty. *)

val max : t -> float
(** Maximum observation; [nan] when empty. *)

val of_list : float list -> t

val mean_of : float list -> float
(** Arithmetic mean of a list; 0 when empty. *)

val geomean_of : float list -> float
(** Geometric mean of positive values; 0 when empty.  Used for speedup
    ratios where the paper reports multiplicative averages. *)
