type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ----------------------------- printing ----------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal form that parses back to the same float: try
   increasing precision.  %.17g always round-trips for finite doubles. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let rec try_prec p =
      if p > 17 then Printf.sprintf "%.17g" f
      else
        let s = Printf.sprintf "%.*g" p f in
        if float_of_string s = f then s else try_prec (p + 1)
    in
    try_prec 15

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if not (Float.is_finite f) then Buffer.add_string buf "null"
    else Buffer.add_string buf (float_repr f)
  | String s -> escape_to buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ----------------------------- parsing ------------------------------ *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape");
        (match s.[!pos] with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          let code = try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape" in
          (* Only BMP code points below 0x80 are emitted unescaped by the
             printer; decode the rest as UTF-8. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end;
          pos := !pos + 4
        | c -> fail (Printf.sprintf "bad escape %C" c));
        advance ();
        loop ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let floaty = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok in
    if floaty then
      match float_of_string_opt tok with Some f -> Float f | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with Some f -> Float f | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Fail (!pos, "trailing garbage"));
    v
  with
  | v -> Ok v
  | exception Fail (p, msg) -> Error (Printf.sprintf "at offset %d: %s" p msg)

(* ------------------------------ access ------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
  | String a, String b -> String.equal a b
  | List a, List b -> List.length a = List.length b && List.for_all2 equal a b
  | Obj a, Obj b ->
    List.length a = List.length b
    && List.for_all2 (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb) a b
  | _ -> false
