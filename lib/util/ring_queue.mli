(** Bounded FIFO queue over a circular buffer.

    Used for the FDIP fetch-target queue and the GHRP history register,
    both of which are fixed-capacity hardware structures: pushing into a
    full queue either drops the push or overwrites the oldest entry,
    depending on the chosen semantics. *)

type 'a t

val create : capacity:int -> dummy:'a -> 'a t
(** [create ~capacity ~dummy] is an empty queue holding at most
    [capacity] elements.  [dummy] initialises the backing store and is
    never observable.  Requires [capacity > 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val push : 'a t -> 'a -> bool
(** [push q x] enqueues [x] at the back; returns [false] (and does
    nothing) if the queue is full. *)

val push_overwrite : 'a t -> 'a -> unit
(** Like {!push} but evicts the oldest element when full. *)

val pop : 'a t -> 'a option
(** Dequeues the front element. *)

val peek : 'a t -> 'a option
(** Front element without removing it. *)

val pop_or : 'a t -> default:'a -> 'a
(** Like {!pop} but returns [default] when empty instead of wrapping in
    an option — the hot-loop variant; it never allocates. *)

val peek_or : 'a t -> default:'a -> 'a
(** Like {!peek} but returns [default] when empty; never allocates. *)

val clear : 'a t -> unit
(** Empties the queue (used on pipeline flush / branch mispredict). *)

val iter : ('a -> unit) -> 'a t -> unit
(** Front-to-back iteration. *)

val to_list : 'a t -> 'a list
(** Front-to-back contents. *)

val copy : 'a t -> 'a t
(** Independent snapshot (shallow: elements are shared). *)

val copy_into : src:'a t -> dst:'a t -> unit
(** Overwrites [dst]'s contents and position with [src]'s — the restore
    half of a checkpoint taken with {!copy}.  Requires equal
    capacities. *)
