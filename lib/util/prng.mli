(** Deterministic pseudo-random number generation.

    All stochastic components of the simulator (workload executors, the
    Random replacement policy, tie-breaking) draw from an explicit
    generator state so that every experiment is reproducible from a seed.
    The implementation is SplitMix64 (for seeding) feeding xoshiro256**,
    which has a 256-bit state and passes BigCrush. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator deterministically from [seed].
    Equal seeds always yield equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val copy_into : src:t -> dst:t -> unit
(** Overwrites [dst]'s state with [src]'s — the restore half of a
    checkpoint taken with {!copy}. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]; the two
    streams are statistically independent.  Used to give each workload
    component its own stream so adding draws to one component does not
    perturb another. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val geometric : t -> p:float -> int
(** [geometric t ~p] draws the number of failures before the first success
    of a Bernoulli([p]) process; mean [(1-p)/p].  Requires [0 < p <= 1]. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] draws from a Zipf distribution over [\[0, n)] with
    exponent [s] via inverse-CDF on a precomputed table-free approximation
    (rejection-inversion).  Skewed towards small indices — used to model
    hot/cold code regions. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
