type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64: used only to expand a seed into the xoshiro state, as
   recommended by the xoshiro authors. *)
let splitmix_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  (* xoshiro must not be seeded with the all-zero state. *)
  let s3 = if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then 1L else s3 in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let copy_into ~src ~dst =
  dst.s0 <- src.s0;
  dst.s1 <- src.s1;
  dst.s2 <- src.s2;
  dst.s3 <- src.s3

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) in
  create ~seed

(* Uniform int in [0, n) by rejection on the top 62 bits to stay within
   OCaml's native positive int range. *)
let int t n =
  assert (n > 0);
  let mask = 0x3FFF_FFFF_FFFF_FFFF in
  let rec draw () =
    let v = Int64.to_int (bits64 t) land mask in
    let lim = mask - (mask mod n) in
    if v < lim then v mod n else draw ()
  in
  draw ()

let float t x =
  (* 53 uniform mantissa bits. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  Float.of_int v /. 9007199254740992.0 *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let geometric t ~p =
  assert (p > 0.0 && p <= 1.0);
  if p >= 1.0 then 0
  else
    let u = float t 1.0 in
    (* Avoid log 0. *)
    let u = if u <= 0.0 then Float.min_float else u in
    let k = Float.to_int (Float.log u /. Float.log (1.0 -. p)) in
    if k < 0 then 0 else k

(* Rejection-inversion sampling for the Zipf distribution, after
   W. Hörmann & G. Derflinger, "Rejection-inversion to generate variates
   from monotone discrete distributions" (1996). *)
let zipf t ~n ~s =
  assert (n > 0);
  if n = 1 then 0
  else begin
    let s = if s <= 0.0 then 0.01 else s in
    let h x = if Float.abs (1.0 -. s) < 1e-9 then Float.log x else (Float.pow x (1.0 -. s)) /. (1.0 -. s) in
    let h_inv x =
      if Float.abs (1.0 -. s) < 1e-9 then Float.exp x
      else Float.pow ((1.0 -. s) *. x) (1.0 /. (1.0 -. s))
    in
    let nf = Float.of_int n in
    let hx0 = h 0.5 -. 1.0 in
    let hn = h (nf +. 0.5) in
    let rec draw () =
      let u = hx0 +. (float t 1.0 *. (hn -. hx0)) in
      let x = h_inv u in
      let k = Float.to_int (x +. 0.5) in
      let k = if k < 1 then 1 else if k > n then n else k in
      let kf = Float.of_int k in
      if u >= h (kf +. 0.5) -. (1.0 /. Float.pow kf s) then k - 1 else draw ()
    in
    draw ()
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
