(** Minimal JSON values, hand-rolled (no external dependency).

    The printer is deterministic — object fields are emitted in the
    order given, floats in a shortest round-tripping decimal form — so
    two runs that compute the same values produce byte-identical output.
    That property is what lets the experiment runner promise identical
    JSONL for [--jobs 1] and [--jobs N] ({!Ripple_exp}), and what makes
    result files diffable across PRs.

    The parser accepts standard JSON (sufficient for everything the
    printer emits); it exists so results can be read back and checked
    in round-trip tests, not as a general-purpose validator. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (no insignificant whitespace), deterministic rendering.
    Non-finite floats render as [null] — JSON has no spelling for
    them. *)

val to_buffer : Buffer.t -> t -> unit

val parse : string -> (t, string) result
(** Parses one JSON value (surrounding whitespace allowed).  Numbers
    with a ['.'], ['e'] or ['E'] become [Float], others [Int].  Returns
    [Error msg] with a position on malformed input. *)

val member : string -> t -> t option
(** [member key (Obj _)] looks up [key]; [None] on other constructors. *)

val equal : t -> t -> bool
(** Structural equality, with object fields compared order-sensitively
    and floats bitwise (so [nan] = [nan], matching round-trip use). *)
