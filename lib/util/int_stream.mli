(** Chunked, re-iterable streams of immediate ints with a pluggable
    storage {!backing}: the in-heap [int array] chunks the packed access
    streams have always used, or an mmap-backed spill file so
    paper-scale (100 M-access) streams never have to live in the heap.

    Both backings share one packed word format — one native-endian
    64-bit word per entry — so a stream is byte-identical regardless of
    where it is stored, and consumers ({!get}, {!iteri}, {!Cursor})
    cannot observe the backing.  Spill files are ordinary temp files:
    they are unlinked on {!close} (and {!Cursor.close}), swept by
    {!Spill.sweep} on failure paths, and backstopped by a GC finaliser,
    so no run leaks capture files.

    {!Scratch} is the read-write sibling: a fixed-size int array that
    may live in an anonymous (pre-unlinked) mapping, for O(n) working
    tables — Belady next-use tables, stream position indexes — that
    would otherwise dominate peak heap at 100 M accesses. *)

type backing =
  | Heap  (** [int array] chunks; the default. *)
  | Spill of { dir : string option }
      (** An mmap-backed temp file under [dir] (default: the system temp
          directory). *)

val spill : ?dir:string -> unit -> backing

val backing_name : backing -> string
(** ["heap"] or ["mmap"]. *)

val backing_of_string : string -> (backing, string) Stdlib.result
(** Parses ["heap"] / ["mmap"] (or ["spill"]); [Error] otherwise. *)

type t

val chunk_entries : int
(** Entries per heap storage chunk (a power of two); also the spill
    Builder's write-buffer size in entries. *)

val empty : t
val length : t -> int

val get : t -> int -> int
(** O(1) for both backings.  Raises [Invalid_argument] out of bounds. *)

val unsafe_get : t -> int -> int
(** {!get} without the bounds check — hot replay loops only. *)

val iter : (int -> unit) -> t -> unit
val iteri : (int -> int -> unit) -> t -> unit

val iteri_rev : (int -> int -> unit) -> t -> unit
(** Highest index first. *)

val fold_left : ('a -> int -> 'a) -> 'a -> t -> 'a

val of_array : ?backing:backing -> int array -> t
val to_array : t -> int array

val is_spill : t -> bool

val spill_path : t -> string option
(** The stream's spill file, while it is still linked. *)

val byte_size : t -> int
(** Bytes of backing storage: [8 * length] for both backings. *)

val close : t -> unit
(** Unlinks the spill file (idempotent; no-op for heap streams).  The
    mapping — and therefore every read — stays valid until the stream
    is garbage collected; only the directory entry goes away. *)

(** Incremental producer.  The heap path retires full chunks as today;
    the spill path buffers one chunk of packed words and writes it
    through to the spill file, so building never holds more than one
    chunk in the heap. *)
module Builder : sig
  type stream := t
  type t

  val create : ?backing:backing -> unit -> t
  val backing : t -> backing
  val length : t -> int
  val add : t -> int -> unit

  val finish : t -> stream
  (** Freezes the accumulated entries (mapping the spill file read-only)
      and resets the builder for reuse. *)

  val abort : t -> unit
  (** Discards the accumulated entries, removing any partial spill
      file.  The builder may be reused. *)
end

(** A mutable read position over an immutable stream. *)
module Cursor : sig
  type stream := t
  type t

  val create : stream -> t
  val pos : t -> int
  val length : t -> int
  val has_next : t -> bool

  val next : t -> int
  val peek : t -> int
  val rewind : t -> unit
  val seek : t -> int -> unit

  val close : t -> unit
  (** {!close} on the underlying stream. *)
end

(** The process-wide registry of live (still-linked) spill files. *)
module Spill : sig
  val live : unit -> string list
  (** Paths of spill files created by this process and not yet
      unlinked, sorted. *)

  val sweep : unit -> int
  (** Unlinks every live spill file and returns how many went away —
      the failure-path cleanup hook ({!Ripple_exp.Report.write_jsonl},
      daemon session teardown).  Safe while streams are still in use:
      mappings survive the unlink. *)
end

(** Fixed-size read-write int arrays with the same backing choice.
    Spill scratch files are unlinked immediately after mapping (they
    never need a name), so they can never leak. *)
module Scratch : sig
  type t

  val make : ?backing:backing -> int -> int -> t
  (** [make n x] is an [n]-entry scratch filled with [x] (cf.
      [Array.make]). *)

  val length : t -> int
  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val close : t -> unit
end
