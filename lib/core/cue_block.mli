(** Cue-block selection (§III-B, Fig. 5).

    For every eviction window, Ripple scores each basic block executed
    inside it by the conditional probability that the victim line is
    (ideally) evicted given that the block executes:

    {v P(evict V | exec B) = windows of V containing B / executions of B v}

    The window's cue block is the candidate with the highest probability
    (ties broken arbitrarily); an invalidation is injected only when that
    probability clears the invalidation threshold (§III-C).

    Window walks are bounded by [scan_limit] distinct candidate blocks
    and [step_limit] stream entries per window: candidates that signal an
    eviction reliably execute close to the eviction point, and the bound
    keeps the analysis linear in the trace — the same engineering the
    paper's "up to 10 minutes" offline analysis implies. *)

module Addr := Ripple_isa.Addr
module Access_stream := Ripple_cache.Access_stream

type decision = {
  cue_block : int;  (** block to instrument *)
  victim : Addr.line;  (** line its hint evicts *)
  probability : float;  (** the selected conditional probability *)
  windows : int;  (** eviction windows this decision covers *)
}

val default_scan_limit : int
val default_step_limit : int

val default_min_support : int
(** Minimum eviction windows a (cue, victim) pair must cover to be worth
    its code bloat: pairs observed once in the profile are statistical
    noise (an execution count of one makes any probability trivially 1)
    and would be pure static/dynamic overhead. *)

(** Where each eviction window's candidacy ended — the per-reason drop
    accounting the aggregate decision count used to hide.  Every window
    lands in exactly one bucket:
    [no_candidate + below_support + below_threshold + selected = total]. *)
type drops = {
  windows_total : int;
  no_candidate : int;  (** window walk found no executed candidate *)
  below_support : int;  (** best pair covered fewer than [min_support] windows *)
  below_threshold : int;  (** best probability under the invalidation threshold *)
  selected : int;  (** window contributed to a kept decision *)
}

val analyze_report :
  ?scan_limit:int ->
  ?step_limit:int ->
  ?min_support:int ->
  stream:Access_stream.t ->
  windows:Eviction_window.t array ->
  exec_counts:int array ->
  threshold:float ->
  unit ->
  decision list * drops
(** Like {!analyze}, also reporting why windows fell out of selection. *)

val analyze :
  ?scan_limit:int ->
  ?step_limit:int ->
  ?min_support:int ->
  stream:Access_stream.t ->
  windows:Eviction_window.t array ->
  exec_counts:int array ->
  threshold:float ->
  unit ->
  decision list
(** [windows] must be in stream coordinates over [stream];
    [exec_counts.(b)] is block [b]'s execution count in the profiled
    trace.  Decisions are deduplicated per (cue block, victim) pair. *)
