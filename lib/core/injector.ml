module Program = Ripple_isa.Program
module Basic_block = Ripple_isa.Basic_block
module Addr = Ripple_isa.Addr

type mode = Invalidate | Demote

type placement = { block : int; line : Addr.line; probability : float; windows : int }

type stats = {
  injected : int;
  skipped_jit : int;
  skipped_cap : int;
  blocks_touched : int;
  placements : placement list;
}

let default_max_hints_per_block = 3

let inject ?(mode = Invalidate) ?(skip_jit = true) ?(max_hints_per_block = default_max_hints_per_block)
    ~program ~decisions () =
  let n = Program.n_blocks program in
  let per_block = Array.make n [] in
  let skipped_jit = ref 0 in
  List.iter
    (fun (d : Cue_block.decision) ->
      let b = Program.block program d.Cue_block.cue_block in
      if skip_jit && b.Basic_block.jit then incr skipped_jit
      else per_block.(d.Cue_block.cue_block) <- d :: per_block.(d.Cue_block.cue_block))
    decisions;
  let skipped_cap = ref 0 in
  let injected = ref 0 in
  let blocks_touched = ref 0 in
  let kept_of ds =
    let sorted =
      List.sort
        (fun (a : Cue_block.decision) b -> compare b.Cue_block.probability a.Cue_block.probability)
        ds
    in
    let kept, dropped =
      List.filteri (fun i _ -> i < max_hints_per_block) sorted,
      max 0 (List.length sorted - max_hints_per_block)
    in
    skipped_cap := !skipped_cap + dropped;
    kept
  in
  let kept_decisions = Array.map kept_of per_block in
  let victim_lines =
    Array.map (List.map (fun (d : Cue_block.decision) -> d.Cue_block.victim)) kept_decisions
  in
  Array.iter
    (fun vs ->
      if vs <> [] then begin
        incr blocks_touched;
        injected := !injected + List.length vs
      end)
    victim_lines;
  let as_hint line = match mode with Invalidate -> Basic_block.Invalidate line | Demote -> Basic_block.Demote line in
  (* First layout pass with old-layout operands: hint counts fix the new
     layout, which yields the remap; then re-express operands in the new
     layout and lay out again (identical geometry). *)
  let hints_old = Array.map (List.map as_hint) victim_lines in
  let provisional, remap = Program.with_hints program ~hints:hints_old in
  let remap_line line = Addr.line_of (remap (Addr.base_of_line line)) in
  let hints_new = Array.map (List.map (fun line -> as_hint (remap_line line))) victim_lines in
  let instrumented, _ = Program.with_hints program ~hints:hints_new in
  assert (Program.static_bytes provisional = Program.static_bytes instrumented);
  (* Provenance, in injection order (block id, then the within-block
     probability-descending order the hints were materialised in), with
     operands expressed in the final layout. *)
  let placements =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun block ds ->
              List.map
                (fun (d : Cue_block.decision) ->
                  {
                    block;
                    line = remap_line d.Cue_block.victim;
                    probability = d.Cue_block.probability;
                    windows = d.Cue_block.windows;
                  })
                ds)
            kept_decisions))
  in
  ( instrumented,
    remap,
    {
      injected = !injected;
      skipped_jit = !skipped_jit;
      skipped_cap = !skipped_cap;
      blocks_touched = !blocks_touched;
      placements;
    } )
