(** Eviction windows (§III-B).

    An eviction window of cache line [A] spans from the last access to
    [A] to the access that triggers [A]'s eviction under the ideal
    replacement policy; the basic blocks executed inside it are the
    candidate cue blocks from which Ripple may signal the eviction.
    Windows come straight out of the {!Ripple_cache.Belady} replay and
    can be re-expressed in trace coordinates (block-occurrence indices)
    for metrics that observe executed blocks rather than cache accesses. *)

module Addr := Ripple_isa.Addr
module Belady := Ripple_cache.Belady

type t = {
  victim : Addr.line;
  start : int;  (** position of the victim's last access (exclusive) *)
  stop : int;  (** position of the eviction-triggering access (inclusive) *)
}

val of_evictions : ?demand_covered_only:bool -> Belady.eviction array -> t array
(** Windows in stream coordinates, in eviction order.
    [demand_covered_only] keeps only windows whose victim's next
    reference is a demand access (or none at all): under Demand-MIN the
    remaining windows are "paid for" by a future prefetch the hardware
    oracle knows about but a software invalidation cannot rely on —
    injecting for them risks real misses, one of the coverage gaps of
    §IV. *)

val to_trace_coords : t array -> stream_pos:int array -> t array
(** Re-expresses each window using [stream_pos], the per-stream-entry
    trace index from {!Ripple_cpu.Simulator.record_stream_indexed}. *)

val to_trace_coords_with : t array -> pos:(int -> int) -> t array
(** {!to_trace_coords} over an arbitrary position lookup — e.g. a
    spill-backed {!Ripple_util.Int_stream} index, which this way never
    has to materialize in the heap. *)

val count_for : t array -> line:Addr.line -> int

(** Per-line interval membership with monotone queries: build once, then
    ask whether position [at] falls inside one of [line]'s windows, with
    [at] non-decreasing across calls for any given line. *)
module Index : sig
  type window := t
  type t

  val create : window array -> t
  val mem : t -> line:Addr.line -> at:int -> bool
end
