(** End-to-end Ripple (Fig. 4): profile → eviction analysis → injection →
    instrumented binary, plus the instrumented-run evaluation that yields
    the paper's metrics — all behind the single {!run} façade.

    Profiling goes through the PT-style encoder/decoder round trip — the
    analysis only ever sees what hardware tracing can reconstruct.  The
    ideal-policy replay uses MIN when no prefetcher is configured and
    prefetch-aware Demand-MIN otherwise, over the access stream the
    configured prefetcher actually produces.

    Every run is observable: the six stages (decode → profile → belady →
    cue-select → inject → simulate) open spans in a {!Ripple_obs.Run.t},
    and each stage's counters land in its registry.  The returned
    {!outcome} carries a deterministic {!Ripple_obs.Snapshot.t} of it. *)

module Program := Ripple_isa.Program
module Pt := Ripple_trace.Pt
module Policy := Ripple_cache.Policy
module Belady := Ripple_cache.Belady
module Prefetcher := Ripple_prefetch.Prefetcher
module Config := Ripple_cpu.Config
module Simulator := Ripple_cpu.Simulator
module Obs := Ripple_obs

type prefetch = No_prefetch | Nlp | Fdip

val prefetch_name : prefetch -> string
val prefetcher_of : ?config:Config.t -> prefetch -> Program.t -> Prefetcher.t
val belady_mode_of : prefetch -> Belady.mode

(** The degradation ladder: how much of a profile's authority survives
    contact with the binary it is about to instrument.  [Full] applies
    every decision; [Safe_only] keeps only hints the static analysis
    ({!Ripple_analysis.Invalidation_check}) proves harmless; [Hints_off]
    ships the binary untouched, so behaviour is exactly the baseline
    replacement policy.  The ladder only engages when
    {!Options.t.degrade} is set — legacy callers get [Full]
    unconditionally. *)
module Degrade : sig
  type level = Full | Safe_only | Hints_off

  val level_name : level -> string
  (** ["full"], ["safe-only"], ["off"]. *)

  type t = {
    level : level;
    fingerprint_ok : bool;  (** profile layout matches the target binary *)
    salvage : float;  (** fraction of the profile capture recovered *)
    drift : float;  (** illegal-transition fraction vs. the target CFG *)
    stripped : int;  (** hints removed by the safe-only filter *)
  }

  val full : t
  (** The no-degradation record legacy paths report. *)

  val to_json : t -> Ripple_util.Json.t
end

type analysis = {
  threshold : float;
  n_windows : int;  (** ideal-policy eviction windows in the profile *)
  n_decisions : int;  (** deduplicated (cue, victim) injections *)
  drops : Cue_block.drops;  (** per-reason window drop accounting *)
  injection : Injector.stats;
  lint : Ripple_analysis.Lint.summary option;
      (** static-verifier report on the instrumented binary; [Some] iff
          {!Options.t.verify} was set *)
  degrade : Degrade.t;  (** which rung of the ladder was applied, and why *)
}

(** An evaluation request: simulate the instrumented binary on [trace]
    under [policy], counting only past the [warmup] trace index.
    Attached to {!Options.t.eval} to make {!run} produce an
    {!outcome.evaluation}. *)
module Eval : sig
  type t = { trace : Simulator.Trace.t; policy : Policy.factory; warmup : int }

  val v : ?warmup:int -> trace:int array -> policy:Policy.factory -> unit -> t
  (** [warmup] defaults to 0. *)

  val v_trace : ?warmup:int -> trace:Simulator.Trace.t -> policy:Policy.factory -> unit -> t
  (** Like {!v} over either trace representation — the out-of-core entry
      point for spill-backed ({!Ripple_util.Int_stream}) traces. *)
end

(** Instrumentation knobs, gathered into one plain record.  Build a
    variant with a record update over {!Options.default}:

    {[ Pipeline.run
         { Pipeline.Options.default with threshold = 0.65; pt_roundtrip = false }
         ~source (Trace profile_trace) ]}

    There are deliberately no [with_*] combinators — OCaml's [{ r with
    field = v }] is the update idiom, and a flat record keeps every
    option greppable and exhaustively matchable.

    Note [t] contains a closure when [eval] is set: compare options
    structurally by field, never with polymorphic equality. *)
module Options : sig
  type t = {
    config : Config.t;
    threshold : float;
        (** invalidation threshold (§III-C); 0.5 is the centre of the
            paper's best 45–65 % band *)
    mode : Injector.mode;  (** invalidate (paper default) or demote *)
    skip_jit : bool;  (** drop decisions whose cue block is JIT code *)
    max_hints_per_block : int;
    scan_limit : int;  (** cue-candidate bound per eviction window *)
    min_support : int;  (** min windows a (cue, victim) pair must cover *)
    exclude_prefetch_covered : bool;
        (** skip windows whose victim's next reference is a prefetch — a
            conservative variant for miss-triggered prefetchers
            (evaluated by the ablation bench) *)
    pt_roundtrip : bool;
        (** pass the profile through the PT codec; disable for stitched
            LBR samples ({!Ripple_trace.Lbr}), which are not a single
            legal control-flow path *)
    verify : bool;
        (** run the static verifier ({!Ripple_analysis.Lint}) over the
            instrumented binary and attach its summary to the analysis
            record — the lint gate that catches harmful or redundant
            injections before a sweep spends hours on them *)
    degrade : bool;
        (** engage the degradation ladder ({!Degrade}): step down to
            safe-only hints or no hints when the profile's fingerprint,
            salvage ratio or drift says it no longer describes the
            target binary.  Off by default: legacy callers (including
            stitched LBR profiles, which are deliberately not a legal
            path) keep full-trust behaviour *)
    proven_safe : bool;
        (** harden the ladder's [Safe_only] rung from a denylist to an
            allowlist: instead of stripping only hints the path-search
            classifier flags (harmful/redundant), keep only hints the
            abstract interpretation ({!Ripple_analysis.Abs_cache})
            positively proves safe — dead, persistent-set, or
            guaranteed-pressure verdicts.  Off by default (the legacy
            denylist) *)
    min_salvage : float;
        (** below this salvage ratio the profile is discarded outright
            ([Hints_off]); default 0.5 *)
    drift_safe : float;
        (** above this illegal-transition fraction only verified-safe
            hints survive; default 0.02 *)
    drift_off : float;
        (** above this the profile is discarded outright; default 0.15 *)
    prefetch : prefetch;  (** front-end prefetcher; default [Fdip] *)
    eval : Eval.t option;
        (** when set, {!run} simulates the instrumented binary and fills
            {!outcome.evaluation}; default [None] *)
    search : float list;
        (** per-application threshold candidates (§III-C): when
            non-empty, {!run} runs the pipeline once per candidate and
            keeps the best-IPC outcome (requires [eval]); default [[]] *)
    backing : Ripple_cache.Access_stream.backing;
        (** where recorded access streams (and the Belady working
            tables) live: [Heap] (default) or [Spill], which writes
            through to unlinked mmap files so the analysis heap stays
            O(windows) even on 100 M-block profiles.  Results are
            byte-identical across backings *)
    sampling : Simulator.Sampling.t option;
        (** when set, the evaluation run is sampled
            ({!Ripple_cpu.Simulator.run_trace}): checkpointed warm-up
            plus K measured windows, with the coverage report attached
            to {!evaluation}; default [None] (full replay) *)
  }

  val default : t
end

type profile = {
  trace : int array;  (** decoded block sequence *)
  source : Program.t;  (** the layout the profile was collected on *)
  salvage : float;  (** fraction of the capture recovered (1.0 = clean) *)
  pt_errors : int;  (** decode errors survived to produce [trace] *)
}
(** A profile artifact: the decoded trace plus everything the
    degradation ladder needs to decide how far to trust it.  [source]
    carries the layout fingerprint implicitly — hint line operands are
    computed on [source] and only valid on binaries with the same
    fingerprint. *)

type input =
  | Trace of int array
      (** an already-decoded block trace of the source binary itself;
          round-trips through the PT codec unless
          {!Options.t.pt_roundtrip} is off *)
  | Pt_bytes of bytes  (** a raw PT-style capture, decoded recoveringly *)
  | Pt_session of Pt.Session.t
      (** a live incremental decoding session ({!Ripple_trace.Pt.Session}):
          the streaming path the [ripple-sim serve] daemon feeds.  The
          session is snapshotted as-is — callers normally
          {!Pt.Session.finish} it first so salvage and errors are
          final *)
  | Profile of profile
      (** a pre-built artifact, possibly from a different layout — the
          decoupled-profile path the degradation ladder judges *)

val profile_of : source:Program.t -> input -> profile
(** Profile construction over the same [input] variant {!run} takes:
    [Trace t] wraps an already-decoded trace (salvage 1.0, no errors);
    [Pt_bytes data] is a recovering decode
    ({!Ripple_trace.Pt.decode_result}) of a possibly corrupt stream —
    never raises, the salvage ratio and error count land in the artifact
    for the ladder to judge; [Pt_session s] snapshots a live session the
    same way; [Profile p] is the identity.  For a partial capture whose
    salvage is known out of band, build the (public) {!profile} record
    directly. *)

type evaluation = {
  result : Simulator.result;  (** performance of the instrumented run *)
  coverage : float;  (** §III-C replacement-coverage *)
  accuracy : float;  (** §III-C replacement-accuracy *)
  hint_execs : int;  (** dynamic hint executions *)
  static_overhead : float;  (** extra static instructions, fraction *)
  dynamic_overhead : float;  (** extra dynamic instructions, fraction *)
  sample : Simulator.Sampling.report option;
      (** coverage report of a sampled evaluation; [Some] iff
          {!Options.t.sampling} was set *)
}

val evaluation_to_json : evaluation -> Ripple_util.Json.t
(** Machine-readable form of an evaluation: the simulator result
    ({!Ripple_cpu.Simulator.result_to_json}) plus the Ripple metrics.
    Deterministic; the JSONL payload of Ripple cells in sweeps. *)

type outcome = {
  program : Program.t;  (** the instrumented binary *)
  analysis : analysis;
  evaluation : evaluation option;  (** [Some] iff {!Options.t.eval} was *)
  obs : Obs.Run.t;
      (** the live observability context the run recorded into — spans
          carry wall-clock durations, so render it ({!Ripple_obs.Export})
          but never diff it *)
  metrics : Obs.Snapshot.t;
      (** deterministic view of [obs]: metric values plus span structure,
          no durations — byte-identical across pool sizes and reruns *)
}

val register_metrics : Obs.Registry.t -> unit
(** Registers the pipeline's complete metric vocabulary (including the
    simulator family) in [reg], find-or-create.  {!run} does this
    implicitly; long-lived consumers that scrape a registry before any
    run has happened (the [ripple-sim serve] daemon) call it up front so
    every snapshot carries the full schema [docs/metrics.schema] pins. *)

val run : ?obs:Obs.Run.t -> Options.t -> source:Program.t -> input -> outcome
(** The façade: profile acquisition → eviction analysis → cue-block
    selection → link-time injection — and, per {!Options.t.eval} /
    [search], evaluation and per-application threshold selection — as
    one call.  [source] is the binary being shipped; [input] is where
    the profile comes from.  [obs] attaches the run to an existing
    observability context (e.g. a per-cell runner span); a fresh one is
    created otherwise.

    Raises [Invalid_argument] if [search] is non-empty while [eval] is
    [None] (threshold selection needs an IPC to rank by). *)
