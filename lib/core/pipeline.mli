(** End-to-end Ripple (Fig. 4): profile → eviction analysis → injection →
    instrumented binary, plus the instrumented-run evaluation that yields
    the paper's metrics.

    Profiling goes through the PT-style encoder/decoder round trip — the
    analysis only ever sees what hardware tracing can reconstruct.  The
    ideal-policy replay uses MIN when no prefetcher is configured and
    prefetch-aware Demand-MIN otherwise, over the access stream the
    configured prefetcher actually produces. *)

module Program := Ripple_isa.Program
module Policy := Ripple_cache.Policy
module Belady := Ripple_cache.Belady
module Prefetcher := Ripple_prefetch.Prefetcher
module Config := Ripple_cpu.Config
module Simulator := Ripple_cpu.Simulator

type prefetch = No_prefetch | Nlp | Fdip

val prefetch_name : prefetch -> string
val prefetcher_of : ?config:Config.t -> prefetch -> Program.t -> Prefetcher.t
val belady_mode_of : prefetch -> Belady.mode

type analysis = {
  threshold : float;
  n_windows : int;  (** ideal-policy eviction windows in the profile *)
  n_decisions : int;  (** deduplicated (cue, victim) injections *)
  injection : Injector.stats;
}

val instrument :
  ?config:Config.t ->
  ?threshold:float ->
  ?mode:Injector.mode ->
  ?skip_jit:bool ->
  ?max_hints_per_block:int ->
  ?scan_limit:int ->
  ?min_support:int ->
  ?exclude_prefetch_covered:bool ->
  ?pt_roundtrip:bool ->
  program:Program.t ->
  profile_trace:int array ->
  prefetch:prefetch ->
  unit ->
  Program.t * analysis
(** [threshold] defaults to 0.5, the centre of the paper's best 45–65 %
    band.  [exclude_prefetch_covered] (default false) skips windows whose
    victim's next reference is a prefetch — a conservative variant for
    miss-triggered prefetchers whose re-fetches an invalidation could
    itself prevent (evaluated by the ablation bench).  [pt_roundtrip]
    (default true) passes the profile through the PT codec; disable it
    for stitched LBR samples ({!Ripple_trace.Lbr}), which are not a
    single legal control-flow path. *)

type evaluation = {
  result : Simulator.result;  (** performance of the instrumented run *)
  coverage : float;  (** §III-C replacement-coverage *)
  accuracy : float;  (** §III-C replacement-accuracy *)
  hint_execs : int;  (** dynamic hint executions *)
  static_overhead : float;  (** extra static instructions, fraction *)
  dynamic_overhead : float;  (** extra dynamic instructions, fraction *)
}

val evaluate :
  ?config:Config.t ->
  ?warmup:int ->
  original:Program.t ->
  instrumented:Program.t ->
  trace:int array ->
  policy:Policy.factory ->
  prefetch:prefetch ->
  unit ->
  evaluation
(** Runs the instrumented program on [trace] under [policy], counting
    only past the [warmup] trace index (steady state); accuracy is
    judged against the ideal policy's eviction windows recomputed on the
    evaluation stream: a hint execution is accurate when it fires inside
    one of its victim's ideal eviction windows (so the ideal policy would
    have evicted the line too). *)

val search_threshold :
  ?config:Config.t ->
  ?warmup:int ->
  ?candidates:float list ->
  ?mode:Injector.mode ->
  ?exclude_prefetch_covered:bool ->
  program:Program.t ->
  profile_trace:int array ->
  eval_trace:int array ->
  policy:Policy.factory ->
  prefetch:prefetch ->
  unit ->
  float * evaluation
(** Per-application threshold selection (§III-C): evaluates each
    candidate (default [0.45; 0.55; 0.65]) and returns the best-IPC one
    with its evaluation. *)
