(** End-to-end Ripple (Fig. 4): profile → eviction analysis → injection →
    instrumented binary, plus the instrumented-run evaluation that yields
    the paper's metrics.

    Profiling goes through the PT-style encoder/decoder round trip — the
    analysis only ever sees what hardware tracing can reconstruct.  The
    ideal-policy replay uses MIN when no prefetcher is configured and
    prefetch-aware Demand-MIN otherwise, over the access stream the
    configured prefetcher actually produces. *)

module Program := Ripple_isa.Program
module Policy := Ripple_cache.Policy
module Belady := Ripple_cache.Belady
module Prefetcher := Ripple_prefetch.Prefetcher
module Config := Ripple_cpu.Config
module Simulator := Ripple_cpu.Simulator

type prefetch = No_prefetch | Nlp | Fdip

val prefetch_name : prefetch -> string
val prefetcher_of : ?config:Config.t -> prefetch -> Program.t -> Prefetcher.t
val belady_mode_of : prefetch -> Belady.mode

type analysis = {
  threshold : float;
  n_windows : int;  (** ideal-policy eviction windows in the profile *)
  n_decisions : int;  (** deduplicated (cue, victim) injections *)
  drops : Cue_block.drops;  (** per-reason window drop accounting *)
  injection : Injector.stats;
  lint : Ripple_analysis.Lint.summary option;
      (** static-verifier report on the instrumented binary; [Some] iff
          {!Options.t.verify} was set *)
}

(** Instrumentation knobs, gathered into one plain record.  Build a
    variant with a record update over {!Options.default}:

    {[ Pipeline.instrument_with
         { Pipeline.Options.default with threshold = 0.65; pt_roundtrip = false }
         ~program ~profile_trace ~prefetch ]}

    There are deliberately no [with_*] combinators — OCaml's [{ r with
    field = v }] is the update idiom, and a flat record keeps every
    option greppable and exhaustively matchable. *)
module Options : sig
  type t = {
    config : Config.t;
    threshold : float;
        (** invalidation threshold (§III-C); 0.5 is the centre of the
            paper's best 45–65 % band *)
    mode : Injector.mode;  (** invalidate (paper default) or demote *)
    skip_jit : bool;  (** drop decisions whose cue block is JIT code *)
    max_hints_per_block : int;
    scan_limit : int;  (** cue-candidate bound per eviction window *)
    min_support : int;  (** min windows a (cue, victim) pair must cover *)
    exclude_prefetch_covered : bool;
        (** skip windows whose victim's next reference is a prefetch — a
            conservative variant for miss-triggered prefetchers
            (evaluated by the ablation bench) *)
    pt_roundtrip : bool;
        (** pass the profile through the PT codec; disable for stitched
            LBR samples ({!Ripple_trace.Lbr}), which are not a single
            legal control-flow path *)
    verify : bool;
        (** run the static verifier ({!Ripple_analysis.Lint}) over the
            instrumented binary and attach its summary to the analysis
            record — the lint gate that catches harmful or redundant
            injections before a sweep spends hours on them *)
  }

  val default : t
end

val instrument_with :
  Options.t ->
  program:Program.t ->
  profile_trace:int array ->
  prefetch:prefetch ->
  Program.t * analysis
(** Profile → eviction analysis → cue-block selection → link-time
    injection, under [Options]. *)

type evaluation = {
  result : Simulator.result;  (** performance of the instrumented run *)
  coverage : float;  (** §III-C replacement-coverage *)
  accuracy : float;  (** §III-C replacement-accuracy *)
  hint_execs : int;  (** dynamic hint executions *)
  static_overhead : float;  (** extra static instructions, fraction *)
  dynamic_overhead : float;  (** extra dynamic instructions, fraction *)
}

val evaluation_to_json : evaluation -> Ripple_util.Json.t
(** Machine-readable form of an evaluation: the simulator result
    ({!Ripple_cpu.Simulator.result_to_json}) plus the Ripple metrics.
    Deterministic; the JSONL payload of Ripple cells in sweeps. *)

val evaluate :
  ?config:Config.t ->
  ?warmup:int ->
  original:Program.t ->
  instrumented:Program.t ->
  trace:int array ->
  policy:Policy.factory ->
  prefetch:prefetch ->
  unit ->
  evaluation
(** Runs the instrumented program on [trace] under [policy], counting
    only past the [warmup] trace index (steady state); accuracy is
    judged against the ideal policy's eviction windows recomputed on the
    evaluation stream: a hint execution is accurate when it fires inside
    one of its victim's ideal eviction windows (so the ideal policy would
    have evicted the line too). *)

val search_threshold :
  ?config:Config.t ->
  ?warmup:int ->
  ?candidates:float list ->
  ?mode:Injector.mode ->
  ?exclude_prefetch_covered:bool ->
  program:Program.t ->
  profile_trace:int array ->
  eval_trace:int array ->
  policy:Policy.factory ->
  prefetch:prefetch ->
  unit ->
  float * evaluation
(** Per-application threshold selection (§III-C): evaluates each
    candidate (default [0.45; 0.55; 0.65]) and returns the best-IPC one
    with its evaluation. *)
